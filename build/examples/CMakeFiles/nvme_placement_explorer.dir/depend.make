# Empty dependencies file for nvme_placement_explorer.
# This may be replaced when dependencies are built.
