file(REMOVE_RECURSE
  "CMakeFiles/nvme_placement_explorer.dir/nvme_placement_explorer.cpp.o"
  "CMakeFiles/nvme_placement_explorer.dir/nvme_placement_explorer.cpp.o.d"
  "nvme_placement_explorer"
  "nvme_placement_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_placement_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
