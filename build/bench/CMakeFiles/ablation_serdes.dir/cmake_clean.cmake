file(REMOVE_RECURSE
  "CMakeFiles/ablation_serdes.dir/ablation_serdes.cc.o"
  "CMakeFiles/ablation_serdes.dir/ablation_serdes.cc.o.d"
  "ablation_serdes"
  "ablation_serdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_serdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
