# Empty compiler generated dependencies file for ablation_serdes.
# This may be replaced when dependencies are built.
