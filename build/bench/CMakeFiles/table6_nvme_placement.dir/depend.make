# Empty dependencies file for table6_nvme_placement.
# This may be replaced when dependencies are built.
