file(REMOVE_RECURSE
  "CMakeFiles/table6_nvme_placement.dir/table6_nvme_placement.cc.o"
  "CMakeFiles/table6_nvme_placement.dir/table6_nvme_placement.cc.o.d"
  "table6_nvme_placement"
  "table6_nvme_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_nvme_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
