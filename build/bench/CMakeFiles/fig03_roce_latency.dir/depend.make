# Empty dependencies file for fig03_roce_latency.
# This may be replaced when dependencies are built.
