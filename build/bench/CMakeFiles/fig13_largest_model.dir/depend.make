# Empty dependencies file for fig13_largest_model.
# This may be replaced when dependencies are built.
