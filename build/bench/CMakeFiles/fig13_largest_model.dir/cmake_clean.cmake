file(REMOVE_RECURSE
  "CMakeFiles/fig13_largest_model.dir/fig13_largest_model.cc.o"
  "CMakeFiles/fig13_largest_model.dir/fig13_largest_model.cc.o.d"
  "fig13_largest_model"
  "fig13_largest_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_largest_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
