file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvme_scaling.dir/ablation_nvme_scaling.cc.o"
  "CMakeFiles/ablation_nvme_scaling.dir/ablation_nvme_scaling.cc.o.d"
  "ablation_nvme_scaling"
  "ablation_nvme_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvme_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
