# Empty dependencies file for ablation_nvme_scaling.
# This may be replaced when dependencies are built.
