# Empty dependencies file for fig05_timelines.
# This may be replaced when dependencies are built.
