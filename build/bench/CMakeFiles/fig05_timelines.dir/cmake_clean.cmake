file(REMOVE_RECURSE
  "CMakeFiles/fig05_timelines.dir/fig05_timelines.cc.o"
  "CMakeFiles/fig05_timelines.dir/fig05_timelines.cc.o.d"
  "fig05_timelines"
  "fig05_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
