# Empty compiler generated dependencies file for table5_sensitivity.
# This may be replaced when dependencies are built.
