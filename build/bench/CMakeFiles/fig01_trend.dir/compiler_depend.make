# Empty compiler generated dependencies file for fig01_trend.
# This may be replaced when dependencies are built.
