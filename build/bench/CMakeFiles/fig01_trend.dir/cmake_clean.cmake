file(REMOVE_RECURSE
  "CMakeFiles/fig01_trend.dir/fig01_trend.cc.o"
  "CMakeFiles/fig01_trend.dir/fig01_trend.cc.o.d"
  "fig01_trend"
  "fig01_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
