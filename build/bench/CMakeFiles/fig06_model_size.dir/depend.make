# Empty dependencies file for fig06_model_size.
# This may be replaced when dependencies are built.
