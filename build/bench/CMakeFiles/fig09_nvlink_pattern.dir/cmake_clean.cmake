file(REMOVE_RECURSE
  "CMakeFiles/fig09_nvlink_pattern.dir/fig09_nvlink_pattern.cc.o"
  "CMakeFiles/fig09_nvlink_pattern.dir/fig09_nvlink_pattern.cc.o.d"
  "fig09_nvlink_pattern"
  "fig09_nvlink_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nvlink_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
