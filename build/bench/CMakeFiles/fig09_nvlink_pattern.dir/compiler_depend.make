# Empty compiler generated dependencies file for fig09_nvlink_pattern.
# This may be replaced when dependencies are built.
