file(REMOVE_RECURSE
  "CMakeFiles/fig04_stress_test.dir/fig04_stress_test.cc.o"
  "CMakeFiles/fig04_stress_test.dir/fig04_stress_test.cc.o.d"
  "fig04_stress_test"
  "fig04_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
