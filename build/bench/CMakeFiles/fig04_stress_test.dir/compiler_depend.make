# Empty compiler generated dependencies file for fig04_stress_test.
# This may be replaced when dependencies are built.
