file(REMOVE_RECURSE
  "CMakeFiles/fig11_consolidation.dir/fig11_consolidation.cc.o"
  "CMakeFiles/fig11_consolidation.dir/fig11_consolidation.cc.o.d"
  "fig11_consolidation"
  "fig11_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
