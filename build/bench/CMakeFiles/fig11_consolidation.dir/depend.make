# Empty dependencies file for fig11_consolidation.
# This may be replaced when dependencies are built.
