# Empty compiler generated dependencies file for fig12_offload_patterns.
# This may be replaced when dependencies are built.
