# Empty dependencies file for fig08_tradeoff.
# This may be replaced when dependencies are built.
