file(REMOVE_RECURSE
  "CMakeFiles/fig08_tradeoff.dir/fig08_tradeoff.cc.o"
  "CMakeFiles/fig08_tradeoff.dir/fig08_tradeoff.cc.o.d"
  "fig08_tradeoff"
  "fig08_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
