# Empty compiler generated dependencies file for fig10_dualnode_patterns.
# This may be replaced when dependencies are built.
