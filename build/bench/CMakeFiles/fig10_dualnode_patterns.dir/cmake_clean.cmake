file(REMOVE_RECURSE
  "CMakeFiles/fig10_dualnode_patterns.dir/fig10_dualnode_patterns.cc.o"
  "CMakeFiles/fig10_dualnode_patterns.dir/fig10_dualnode_patterns.cc.o.d"
  "fig10_dualnode_patterns"
  "fig10_dualnode_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dualnode_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
