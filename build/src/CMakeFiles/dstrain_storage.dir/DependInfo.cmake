
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/aio_engine.cc" "src/CMakeFiles/dstrain_storage.dir/storage/aio_engine.cc.o" "gcc" "src/CMakeFiles/dstrain_storage.dir/storage/aio_engine.cc.o.d"
  "/root/repo/src/storage/nvme_device.cc" "src/CMakeFiles/dstrain_storage.dir/storage/nvme_device.cc.o" "gcc" "src/CMakeFiles/dstrain_storage.dir/storage/nvme_device.cc.o.d"
  "/root/repo/src/storage/placement.cc" "src/CMakeFiles/dstrain_storage.dir/storage/placement.cc.o" "gcc" "src/CMakeFiles/dstrain_storage.dir/storage/placement.cc.o.d"
  "/root/repo/src/storage/volume.cc" "src/CMakeFiles/dstrain_storage.dir/storage/volume.cc.o" "gcc" "src/CMakeFiles/dstrain_storage.dir/storage/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
