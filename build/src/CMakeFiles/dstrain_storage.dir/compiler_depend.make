# Empty compiler generated dependencies file for dstrain_storage.
# This may be replaced when dependencies are built.
