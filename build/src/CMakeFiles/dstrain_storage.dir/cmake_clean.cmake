file(REMOVE_RECURSE
  "CMakeFiles/dstrain_storage.dir/storage/aio_engine.cc.o"
  "CMakeFiles/dstrain_storage.dir/storage/aio_engine.cc.o.d"
  "CMakeFiles/dstrain_storage.dir/storage/nvme_device.cc.o"
  "CMakeFiles/dstrain_storage.dir/storage/nvme_device.cc.o.d"
  "CMakeFiles/dstrain_storage.dir/storage/placement.cc.o"
  "CMakeFiles/dstrain_storage.dir/storage/placement.cc.o.d"
  "CMakeFiles/dstrain_storage.dir/storage/volume.cc.o"
  "CMakeFiles/dstrain_storage.dir/storage/volume.cc.o.d"
  "libdstrain_storage.a"
  "libdstrain_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
