file(REMOVE_RECURSE
  "libdstrain_storage.a"
)
