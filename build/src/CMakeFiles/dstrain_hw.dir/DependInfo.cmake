
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cc" "src/CMakeFiles/dstrain_hw.dir/hw/cluster.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/cluster.cc.o.d"
  "/root/repo/src/hw/link.cc" "src/CMakeFiles/dstrain_hw.dir/hw/link.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/link.cc.o.d"
  "/root/repo/src/hw/node_builder.cc" "src/CMakeFiles/dstrain_hw.dir/hw/node_builder.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/node_builder.cc.o.d"
  "/root/repo/src/hw/routing.cc" "src/CMakeFiles/dstrain_hw.dir/hw/routing.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/routing.cc.o.d"
  "/root/repo/src/hw/serdes.cc" "src/CMakeFiles/dstrain_hw.dir/hw/serdes.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/serdes.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/CMakeFiles/dstrain_hw.dir/hw/topology.cc.o" "gcc" "src/CMakeFiles/dstrain_hw.dir/hw/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
