# Empty dependencies file for dstrain_hw.
# This may be replaced when dependencies are built.
