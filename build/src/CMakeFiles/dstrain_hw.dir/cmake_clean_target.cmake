file(REMOVE_RECURSE
  "libdstrain_hw.a"
)
