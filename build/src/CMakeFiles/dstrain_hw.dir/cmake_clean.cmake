file(REMOVE_RECURSE
  "CMakeFiles/dstrain_hw.dir/hw/cluster.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/cluster.cc.o.d"
  "CMakeFiles/dstrain_hw.dir/hw/link.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/link.cc.o.d"
  "CMakeFiles/dstrain_hw.dir/hw/node_builder.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/node_builder.cc.o.d"
  "CMakeFiles/dstrain_hw.dir/hw/routing.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/routing.cc.o.d"
  "CMakeFiles/dstrain_hw.dir/hw/serdes.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/serdes.cc.o.d"
  "CMakeFiles/dstrain_hw.dir/hw/topology.cc.o"
  "CMakeFiles/dstrain_hw.dir/hw/topology.cc.o.d"
  "libdstrain_hw.a"
  "libdstrain_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
