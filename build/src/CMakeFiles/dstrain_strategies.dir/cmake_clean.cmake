file(REMOVE_RECURSE
  "CMakeFiles/dstrain_strategies.dir/strategies/ddp.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/ddp.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/hybrid_zero.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/hybrid_zero.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/iteration_plan.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/iteration_plan.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/megatron.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/megatron.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/strategy.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/strategy.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero_infinity.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero_infinity.cc.o.d"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero_offload.cc.o"
  "CMakeFiles/dstrain_strategies.dir/strategies/zero_offload.cc.o.d"
  "libdstrain_strategies.a"
  "libdstrain_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
