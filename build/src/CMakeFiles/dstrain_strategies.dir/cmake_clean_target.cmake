file(REMOVE_RECURSE
  "libdstrain_strategies.a"
)
