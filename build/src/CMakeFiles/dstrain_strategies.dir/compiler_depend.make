# Empty compiler generated dependencies file for dstrain_strategies.
# This may be replaced when dependencies are built.
