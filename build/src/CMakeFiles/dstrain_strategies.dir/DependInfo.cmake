
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategies/ddp.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/ddp.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/ddp.cc.o.d"
  "/root/repo/src/strategies/hybrid_zero.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/hybrid_zero.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/hybrid_zero.cc.o.d"
  "/root/repo/src/strategies/iteration_plan.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/iteration_plan.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/iteration_plan.cc.o.d"
  "/root/repo/src/strategies/megatron.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/megatron.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/megatron.cc.o.d"
  "/root/repo/src/strategies/strategy.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/strategy.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/strategy.cc.o.d"
  "/root/repo/src/strategies/zero.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero.cc.o.d"
  "/root/repo/src/strategies/zero_infinity.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero_infinity.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero_infinity.cc.o.d"
  "/root/repo/src/strategies/zero_offload.cc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero_offload.cc.o" "gcc" "src/CMakeFiles/dstrain_strategies.dir/strategies/zero_offload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_memplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
