# Empty compiler generated dependencies file for dstrain_util.
# This may be replaced when dependencies are built.
