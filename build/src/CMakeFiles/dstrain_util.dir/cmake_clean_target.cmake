file(REMOVE_RECURSE
  "libdstrain_util.a"
)
