file(REMOVE_RECURSE
  "CMakeFiles/dstrain_util.dir/util/args.cc.o"
  "CMakeFiles/dstrain_util.dir/util/args.cc.o.d"
  "CMakeFiles/dstrain_util.dir/util/logging.cc.o"
  "CMakeFiles/dstrain_util.dir/util/logging.cc.o.d"
  "CMakeFiles/dstrain_util.dir/util/stats.cc.o"
  "CMakeFiles/dstrain_util.dir/util/stats.cc.o.d"
  "CMakeFiles/dstrain_util.dir/util/strings.cc.o"
  "CMakeFiles/dstrain_util.dir/util/strings.cc.o.d"
  "CMakeFiles/dstrain_util.dir/util/table.cc.o"
  "CMakeFiles/dstrain_util.dir/util/table.cc.o.d"
  "CMakeFiles/dstrain_util.dir/util/units.cc.o"
  "CMakeFiles/dstrain_util.dir/util/units.cc.o.d"
  "libdstrain_util.a"
  "libdstrain_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
