# Empty dependencies file for dstrain_core.
# This may be replaced when dependencies are built.
