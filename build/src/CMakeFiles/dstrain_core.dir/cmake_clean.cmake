file(REMOVE_RECURSE
  "CMakeFiles/dstrain_core.dir/core/energy.cc.o"
  "CMakeFiles/dstrain_core.dir/core/energy.cc.o.d"
  "CMakeFiles/dstrain_core.dir/core/experiment.cc.o"
  "CMakeFiles/dstrain_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/dstrain_core.dir/core/presets.cc.o"
  "CMakeFiles/dstrain_core.dir/core/presets.cc.o.d"
  "CMakeFiles/dstrain_core.dir/core/report.cc.o"
  "CMakeFiles/dstrain_core.dir/core/report.cc.o.d"
  "libdstrain_core.a"
  "libdstrain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
