file(REMOVE_RECURSE
  "libdstrain_core.a"
)
