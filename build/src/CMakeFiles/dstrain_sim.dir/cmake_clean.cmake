file(REMOVE_RECURSE
  "CMakeFiles/dstrain_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/dstrain_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/dstrain_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/dstrain_sim.dir/sim/simulation.cc.o.d"
  "libdstrain_sim.a"
  "libdstrain_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
