file(REMOVE_RECURSE
  "libdstrain_sim.a"
)
