# Empty compiler generated dependencies file for dstrain_sim.
# This may be replaced when dependencies are built.
