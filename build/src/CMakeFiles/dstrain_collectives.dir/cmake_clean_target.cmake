file(REMOVE_RECURSE
  "libdstrain_collectives.a"
)
