file(REMOVE_RECURSE
  "CMakeFiles/dstrain_collectives.dir/collectives/algorithms.cc.o"
  "CMakeFiles/dstrain_collectives.dir/collectives/algorithms.cc.o.d"
  "CMakeFiles/dstrain_collectives.dir/collectives/communicator.cc.o"
  "CMakeFiles/dstrain_collectives.dir/collectives/communicator.cc.o.d"
  "CMakeFiles/dstrain_collectives.dir/collectives/volume.cc.o"
  "CMakeFiles/dstrain_collectives.dir/collectives/volume.cc.o.d"
  "libdstrain_collectives.a"
  "libdstrain_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
