# Empty dependencies file for dstrain_collectives.
# This may be replaced when dependencies are built.
