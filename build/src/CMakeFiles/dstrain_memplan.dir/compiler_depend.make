# Empty compiler generated dependencies file for dstrain_memplan.
# This may be replaced when dependencies are built.
