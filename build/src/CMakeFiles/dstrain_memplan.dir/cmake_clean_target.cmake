file(REMOVE_RECURSE
  "libdstrain_memplan.a"
)
