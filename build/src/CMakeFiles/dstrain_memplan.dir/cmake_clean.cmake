file(REMOVE_RECURSE
  "CMakeFiles/dstrain_memplan.dir/memplan/capacity_solver.cc.o"
  "CMakeFiles/dstrain_memplan.dir/memplan/capacity_solver.cc.o.d"
  "CMakeFiles/dstrain_memplan.dir/memplan/composition.cc.o"
  "CMakeFiles/dstrain_memplan.dir/memplan/composition.cc.o.d"
  "CMakeFiles/dstrain_memplan.dir/memplan/footprint.cc.o"
  "CMakeFiles/dstrain_memplan.dir/memplan/footprint.cc.o.d"
  "libdstrain_memplan.a"
  "libdstrain_memplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_memplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
