
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memplan/capacity_solver.cc" "src/CMakeFiles/dstrain_memplan.dir/memplan/capacity_solver.cc.o" "gcc" "src/CMakeFiles/dstrain_memplan.dir/memplan/capacity_solver.cc.o.d"
  "/root/repo/src/memplan/composition.cc" "src/CMakeFiles/dstrain_memplan.dir/memplan/composition.cc.o" "gcc" "src/CMakeFiles/dstrain_memplan.dir/memplan/composition.cc.o.d"
  "/root/repo/src/memplan/footprint.cc" "src/CMakeFiles/dstrain_memplan.dir/memplan/footprint.cc.o" "gcc" "src/CMakeFiles/dstrain_memplan.dir/memplan/footprint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
