file(REMOVE_RECURSE
  "libdstrain_net.a"
)
