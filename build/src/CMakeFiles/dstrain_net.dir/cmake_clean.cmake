file(REMOVE_RECURSE
  "CMakeFiles/dstrain_net.dir/net/flow.cc.o"
  "CMakeFiles/dstrain_net.dir/net/flow.cc.o.d"
  "CMakeFiles/dstrain_net.dir/net/flow_scheduler.cc.o"
  "CMakeFiles/dstrain_net.dir/net/flow_scheduler.cc.o.d"
  "CMakeFiles/dstrain_net.dir/net/stress_test.cc.o"
  "CMakeFiles/dstrain_net.dir/net/stress_test.cc.o.d"
  "CMakeFiles/dstrain_net.dir/net/transfer_manager.cc.o"
  "CMakeFiles/dstrain_net.dir/net/transfer_manager.cc.o.d"
  "CMakeFiles/dstrain_net.dir/net/verbs.cc.o"
  "CMakeFiles/dstrain_net.dir/net/verbs.cc.o.d"
  "libdstrain_net.a"
  "libdstrain_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
