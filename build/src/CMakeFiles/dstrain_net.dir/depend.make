# Empty dependencies file for dstrain_net.
# This may be replaced when dependencies are built.
