
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cc" "src/CMakeFiles/dstrain_net.dir/net/flow.cc.o" "gcc" "src/CMakeFiles/dstrain_net.dir/net/flow.cc.o.d"
  "/root/repo/src/net/flow_scheduler.cc" "src/CMakeFiles/dstrain_net.dir/net/flow_scheduler.cc.o" "gcc" "src/CMakeFiles/dstrain_net.dir/net/flow_scheduler.cc.o.d"
  "/root/repo/src/net/stress_test.cc" "src/CMakeFiles/dstrain_net.dir/net/stress_test.cc.o" "gcc" "src/CMakeFiles/dstrain_net.dir/net/stress_test.cc.o.d"
  "/root/repo/src/net/transfer_manager.cc" "src/CMakeFiles/dstrain_net.dir/net/transfer_manager.cc.o" "gcc" "src/CMakeFiles/dstrain_net.dir/net/transfer_manager.cc.o.d"
  "/root/repo/src/net/verbs.cc" "src/CMakeFiles/dstrain_net.dir/net/verbs.cc.o" "gcc" "src/CMakeFiles/dstrain_net.dir/net/verbs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
