file(REMOVE_RECURSE
  "CMakeFiles/dstrain_model.dir/model/flops.cc.o"
  "CMakeFiles/dstrain_model.dir/model/flops.cc.o.d"
  "CMakeFiles/dstrain_model.dir/model/memory.cc.o"
  "CMakeFiles/dstrain_model.dir/model/memory.cc.o.d"
  "CMakeFiles/dstrain_model.dir/model/parallelism.cc.o"
  "CMakeFiles/dstrain_model.dir/model/parallelism.cc.o.d"
  "CMakeFiles/dstrain_model.dir/model/size_ladder.cc.o"
  "CMakeFiles/dstrain_model.dir/model/size_ladder.cc.o.d"
  "CMakeFiles/dstrain_model.dir/model/transformer.cc.o"
  "CMakeFiles/dstrain_model.dir/model/transformer.cc.o.d"
  "libdstrain_model.a"
  "libdstrain_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
