
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/flops.cc" "src/CMakeFiles/dstrain_model.dir/model/flops.cc.o" "gcc" "src/CMakeFiles/dstrain_model.dir/model/flops.cc.o.d"
  "/root/repo/src/model/memory.cc" "src/CMakeFiles/dstrain_model.dir/model/memory.cc.o" "gcc" "src/CMakeFiles/dstrain_model.dir/model/memory.cc.o.d"
  "/root/repo/src/model/parallelism.cc" "src/CMakeFiles/dstrain_model.dir/model/parallelism.cc.o" "gcc" "src/CMakeFiles/dstrain_model.dir/model/parallelism.cc.o.d"
  "/root/repo/src/model/size_ladder.cc" "src/CMakeFiles/dstrain_model.dir/model/size_ladder.cc.o" "gcc" "src/CMakeFiles/dstrain_model.dir/model/size_ladder.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/CMakeFiles/dstrain_model.dir/model/transformer.cc.o" "gcc" "src/CMakeFiles/dstrain_model.dir/model/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
