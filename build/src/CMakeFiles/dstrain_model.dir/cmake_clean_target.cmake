file(REMOVE_RECURSE
  "libdstrain_model.a"
)
