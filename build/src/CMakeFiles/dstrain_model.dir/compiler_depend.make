# Empty compiler generated dependencies file for dstrain_model.
# This may be replaced when dependencies are built.
