# Empty compiler generated dependencies file for dstrain_telemetry.
# This may be replaced when dependencies are built.
