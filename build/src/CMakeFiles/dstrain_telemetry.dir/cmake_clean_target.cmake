file(REMOVE_RECURSE
  "libdstrain_telemetry.a"
)
