file(REMOVE_RECURSE
  "CMakeFiles/dstrain_telemetry.dir/telemetry/probe.cc.o"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/probe.cc.o.d"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/series.cc.o"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/series.cc.o.d"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/summary.cc.o"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/summary.cc.o.d"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/timeline.cc.o"
  "CMakeFiles/dstrain_telemetry.dir/telemetry/timeline.cc.o.d"
  "libdstrain_telemetry.a"
  "libdstrain_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
