
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/probe.cc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/probe.cc.o" "gcc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/probe.cc.o.d"
  "/root/repo/src/telemetry/series.cc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/series.cc.o" "gcc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/series.cc.o.d"
  "/root/repo/src/telemetry/summary.cc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/summary.cc.o" "gcc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/summary.cc.o.d"
  "/root/repo/src/telemetry/timeline.cc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/timeline.cc.o" "gcc" "src/CMakeFiles/dstrain_telemetry.dir/telemetry/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
