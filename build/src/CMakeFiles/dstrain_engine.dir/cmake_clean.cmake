file(REMOVE_RECURSE
  "CMakeFiles/dstrain_engine.dir/engine/executor.cc.o"
  "CMakeFiles/dstrain_engine.dir/engine/executor.cc.o.d"
  "CMakeFiles/dstrain_engine.dir/engine/iteration_result.cc.o"
  "CMakeFiles/dstrain_engine.dir/engine/iteration_result.cc.o.d"
  "CMakeFiles/dstrain_engine.dir/engine/trace_export.cc.o"
  "CMakeFiles/dstrain_engine.dir/engine/trace_export.cc.o.d"
  "libdstrain_engine.a"
  "libdstrain_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
