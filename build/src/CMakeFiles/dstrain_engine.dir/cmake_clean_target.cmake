file(REMOVE_RECURSE
  "libdstrain_engine.a"
)
