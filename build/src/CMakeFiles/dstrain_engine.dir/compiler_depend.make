# Empty compiler generated dependencies file for dstrain_engine.
# This may be replaced when dependencies are built.
