file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/aio_engine_test.cc.o"
  "CMakeFiles/test_storage.dir/storage/aio_engine_test.cc.o.d"
  "CMakeFiles/test_storage.dir/storage/nvme_device_test.cc.o"
  "CMakeFiles/test_storage.dir/storage/nvme_device_test.cc.o.d"
  "CMakeFiles/test_storage.dir/storage/placement_test.cc.o"
  "CMakeFiles/test_storage.dir/storage/placement_test.cc.o.d"
  "CMakeFiles/test_storage.dir/storage/volume_test.cc.o"
  "CMakeFiles/test_storage.dir/storage/volume_test.cc.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
