file(REMOVE_RECURSE
  "CMakeFiles/test_strategies.dir/strategies/ddp_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/ddp_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/hybrid_zero_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/hybrid_zero_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/iteration_plan_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/iteration_plan_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/megatron_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/megatron_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/zero_infinity_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/zero_infinity_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/zero_offload_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/zero_offload_test.cc.o.d"
  "CMakeFiles/test_strategies.dir/strategies/zero_test.cc.o"
  "CMakeFiles/test_strategies.dir/strategies/zero_test.cc.o.d"
  "test_strategies"
  "test_strategies.pdb"
  "test_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
