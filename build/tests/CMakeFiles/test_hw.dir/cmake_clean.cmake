file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/cluster_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/cluster_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/link_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/link_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/routing_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/routing_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/serdes_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/serdes_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/topology_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/topology_test.cc.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
