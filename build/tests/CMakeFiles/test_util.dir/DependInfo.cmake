
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/args_test.cc" "tests/CMakeFiles/test_util.dir/util/args_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/args_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/test_util.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/strings_test.cc" "tests/CMakeFiles/test_util.dir/util/strings_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/strings_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/test_util.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cc.o.d"
  "/root/repo/tests/util/units_test.cc" "tests/CMakeFiles/test_util.dir/util/units_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dstrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_memplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dstrain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
