file(REMOVE_RECURSE
  "CMakeFiles/test_memplan.dir/memplan/capacity_solver_test.cc.o"
  "CMakeFiles/test_memplan.dir/memplan/capacity_solver_test.cc.o.d"
  "CMakeFiles/test_memplan.dir/memplan/composition_test.cc.o"
  "CMakeFiles/test_memplan.dir/memplan/composition_test.cc.o.d"
  "CMakeFiles/test_memplan.dir/memplan/footprint_test.cc.o"
  "CMakeFiles/test_memplan.dir/memplan/footprint_test.cc.o.d"
  "test_memplan"
  "test_memplan.pdb"
  "test_memplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
