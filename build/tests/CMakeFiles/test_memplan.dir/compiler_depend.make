# Empty compiler generated dependencies file for test_memplan.
# This may be replaced when dependencies are built.
