# Empty compiler generated dependencies file for dstrain_cli.
# This may be replaced when dependencies are built.
