file(REMOVE_RECURSE
  "CMakeFiles/dstrain_cli.dir/dstrain_cli.cc.o"
  "CMakeFiles/dstrain_cli.dir/dstrain_cli.cc.o.d"
  "dstrain"
  "dstrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dstrain_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
