/**
 * @file
 * Paper Table V: sensitivity of throughput to model size — each
 * configuration swept over the paper's model-size ladder up to its
 * own achieved maximum, reporting aggregate TFLOP/s per cell.
 */

#include <iostream>

#include "bench_common.hh"
#include "memplan/capacity_solver.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Table V — sensitivity of throughput to model size");

    // The paper's column sizes (subset of the ladder; 13.5 excluded
    // as it only appears in dual-node Fig. 6).
    const double sizes[] = {0.7, 1.4, 2.9,  4.4,  5.2,  5.5,  6.0, 6.6,
                            7.8, 8.9, 11.4, 14.2, 20.6, 26.9, 33.3};

    std::vector<std::string> headers = {"Config."};
    for (double s : sizes)
        headers.push_back(csprintf("%.1f", s));
    TextTable table(std::move(headers));

    const ClusterSpec cluster = xe8545Cluster(1);
    for (const StrategyConfig &s : sensitivityLineup()) {
        const CapacityResult cap = solveMaxModel(s, cluster, 16);
        std::vector<std::string> row = {s.displayName()};
        for (double billions : sizes) {
            if (billions > cap.entry.billions + 1e-9) {
                row.push_back("");
                continue;
            }
            const ExperimentReport r =
                bench::runPaperCase(1, s, billions, /*iterations=*/3);
            row.push_back(csprintf("%.0f", r.tflops));
        }
        table.addRow(std::move(row));
    }
    std::cout << table << "\n"
              << "Shape check vs the paper: throughput grows with "
                 "model size (better\namortization); the offload "
                 "rows stay flat across sizes; ZeRO-3 with NVMe\n"
                 "offload is flat and storage-bound (~30-40 "
                 "TFLOP/s).\n";
    return 0;
}
