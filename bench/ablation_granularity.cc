/**
 * @file
 * Ablation: ZeRO-3 fetch granularity. The per-gather software
 * overhead (kZero3FetchOverhead) means coarser fetch blocks amortize
 * better but prefetch less; this sweep shows the trade-off the
 * DeepSpeed prefetch tuning knobs navigate.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Ablation — ZeRO-3 parameter-fetch granularity "
                  "(6.6B, single node)");

    TextTable table({"Fetch blocks", "Gathers per iter",
                     "TFLOP/s", "Iteration (s)"});
    std::vector<std::string> labels;
    std::vector<double> tputs;
    for (int blocks : {6, 12, 24, 48, 96}) {
        ExperimentConfig cfg =
            paperExperiment(1, StrategyConfig::zero(3), 6.6);
        cfg.tuning.max_blocks = blocks;
        bench::applyRunSettings(cfg, 3);
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();
        table.addRow({
            csprintf("%d", blocks),
            csprintf("%d", 2 * blocks),  // fwd + bwd gathers
            csprintf("%.1f", r.tflops),
            csprintf("%.2f", r.iteration_time),
        });
        labels.push_back(csprintf("%d blocks", blocks));
        tputs.push_back(r.tflops);
    }
    std::cout << table << "\n" << barChart(labels, tputs, "TFLOP/s");
    std::cout << "\nFiner granularity buys overlap but pays the "
                 "per-fetch coordination cost —\nthe reason "
                 "DeepSpeed exposes prefetch/persistence thresholds "
                 "for stage 3.\n";
    return 0;
}
