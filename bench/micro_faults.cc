/**
 * @file
 * JSON-emitting micro-benchmark of the fault-injection subsystem:
 * the FlowScheduler::setCapacity() fast path under dense capacity
 * churn, a faulted experiment end to end (with a same-seed
 * reproducibility check), and serial vs parallel sweep determinism
 * under an active FaultPlan.
 *
 * Output is one JSON object per line so the bench trajectory can be
 * recorded and diffed across revisions:
 *
 *   ./micro_faults [--waves W] [--per-wave F] [--toggles T] [--jobs N]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/sweep_runner.hh"
#include "net/flow_scheduler.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

/**
 * Dense flows with periodic capacity churn: every RoCE direction is
 * repeatedly degraded to 25% and restored while waves of contending
 * flows come and go, exercising the slow (re-waterfill) and fast
 * (slack-to-slack) setCapacity paths together.
 */
bench::JsonObject
capacityChurnScenario(int waves, int per_wave, int toggles)
{
    bench::Stopwatch watch;
    Simulation sim;
    Cluster cluster(xe8545Cluster(2));
    FlowScheduler sched(sim, cluster.topology());

    std::vector<ResourceId> roce;
    for (const Resource &r : cluster.topology().resources())
        if (r.cls == LinkClass::Roce)
            roce.push_back(r.id);

    int done = 0;
    for (int w = 0; w < waves; ++w) {
        sim.events().schedule(w * 0.01, [&, w] {
            for (int i = 0; i < per_wave; ++i) {
                FlowSpec spec;
                const int src = (i + w) % 8;
                int dst = (i * 3 + w) % 8;
                if (dst == src)
                    dst = (dst + 1) % 8;
                spec.route = cluster.router().route(
                    cluster.gpuByRank(src), cluster.gpuByRank(dst));
                spec.bytes = 1e8 + 1e6 * i;
                spec.on_complete = [&done] { ++done; };
                sched.start(std::move(spec));
            }
        });
    }
    for (int t = 0; t < toggles; ++t) {
        sim.events().schedule(0.005 + t * 0.02, [&] {
            for (ResourceId rid : roce) {
                const Resource &r = cluster.topology().resource(rid);
                const bool degraded =
                    r.capacity < r.nominal_capacity;
                sched.setCapacity(rid, degraded
                                           ? r.nominal_capacity
                                           : r.nominal_capacity * 0.25);
            }
        });
    }
    sim.run();
    const double secs = watch.seconds();
    const FlowScheduler::Stats &stats = sched.stats();

    bench::JsonObject json;
    json.add("scenario", std::string("capacity_churn"))
        .add("flows", done)
        .add("toggles", toggles)
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs)
        .add("capacity_updates", stats.capacity_updates)
        .add("fast_capacity_updates", stats.fast_capacity_updates)
        .add("recomputes", stats.recomputes)
        .add("fast_starts", stats.fast_starts)
        .add("fast_finishes", stats.fast_finishes);
    return json;
}

/** The faulted dual-node ZeRO-3 configuration all scenarios share. */
ExperimentConfig
faultedConfig()
{
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::zero(3), 6.6);
    bench::applyRunSettings(cfg, 4);
    std::vector<ConfigError> errors;
    cfg.faults = parseFaultSpec(
        "degrade@6+3:roce:0.25,straggler@9+2:rank3:0.7", &errors);
    DSTRAIN_ASSERT(errors.empty(), "bench fault spec invalid");
    return cfg;
}

/**
 * End-to-end faulted experiment: wall time, the measured slowdown,
 * and a same-seed reproducibility check (two runs, one fingerprint).
 */
bench::JsonObject
faultedExperiment()
{
    bench::Stopwatch watch;
    const ExperimentReport first = runExperiment(faultedConfig());
    const double secs = watch.seconds();
    const ExperimentReport second = runExperiment(faultedConfig());

    double max_slowdown = 1.0;
    for (const FaultImpact &im : first.faults)
        max_slowdown = std::max(max_slowdown, im.iteration_slowdown);

    bench::JsonObject json;
    json.add("scenario", std::string("faulted_experiment"))
        .add("faults", static_cast<std::uint64_t>(first.faults.size()))
        .add("wall_seconds", secs)
        .add("iteration_time", first.iteration_time)
        .add("max_iteration_slowdown", max_slowdown)
        .add("reproducible", reportFingerprint(first) ==
                                 reportFingerprint(second));
    return json;
}

/**
 * Serial vs parallel sweep over faulted configs: the FaultPlan rides
 * inside each ExperimentConfig, so jobs=N must reproduce jobs=1
 * bit-for-bit.
 */
bench::JsonObject
faultedSweep(int jobs)
{
    std::vector<ExperimentConfig> points;
    for (int i = 0; i < 4; ++i)
        points.push_back(faultedConfig());

    bench::Stopwatch watch;
    const std::vector<ExperimentReport> serial =
        SweepRunner(1).run(points);
    const double serial_secs = watch.seconds();

    watch.reset();
    const std::vector<ExperimentReport> parallel =
        SweepRunner(jobs).run(points);
    const double parallel_secs = watch.seconds();

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        identical = reportFingerprint(serial[i]) ==
                    reportFingerprint(parallel[i]);
    }

    bench::JsonObject json;
    json.add("scenario", std::string("faulted_sweep"))
        .add("points", static_cast<std::uint64_t>(serial.size()))
        .add("jobs", jobs)
        .add("jobs1_wall_seconds", serial_secs)
        .add("jobsN_wall_seconds", parallel_secs)
        .add("reports_identical", identical);
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_faults",
                   "fault-injection micro-benchmarks (JSON per line)");
    args.addOption("waves", "60", "capacity-churn scenario waves");
    args.addOption("per-wave", "64", "flows per wave");
    args.addOption("toggles", "30", "capacity toggle rounds");
    args.addOption("jobs", "0",
                   "sweep worker threads (0 = one per hardware "
                   "thread)");
    if (!args.parse(argc, argv))
        return 1;

    setLogLevel(LogLevel::Silent);  // keep stdout pure JSON
    std::cout << capacityChurnScenario(args.getInt("waves"),
                                       args.getInt("per-wave"),
                                       args.getInt("toggles"))
                     .str()
              << "\n";
    std::cout << faultedExperiment().str() << "\n";
    std::cout << faultedSweep(SweepRunner(args.getInt("jobs")).jobs())
                     .str()
              << "\n";
    return 0;
}
