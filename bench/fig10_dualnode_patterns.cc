/**
 * @file
 * Paper Fig. 10: dual-node bandwidth-utilization patterns on (top to
 * bottom) NVLink, PCIe-GPU, PCIe-NIC and RoCE for each
 * configuration at its largest dual-node model. Megatron-LM shows
 * near-constant utilization; the ZeRO stages show the
 * peak-and-trough bursts the paper calls out.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 10 — dual-node bandwidth patterns");

    const LinkClass classes[] = {LinkClass::NvLink, LinkClass::PcieGpu,
                                 LinkClass::PcieNic, LinkClass::Roce};

    for (const StrategyConfig &s : comparisonLineup(2)) {
        ExperimentConfig cfg = paperExperiment(2, s);
        bench::applyRunSettings(cfg, /*iterations=*/8, /*warmup=*/2);
        // The per-iteration sparklines re-probe with an ad-hoc bucket
        // width, which needs the full segment history.
        cfg.telemetry.retain_segments = true;
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();

        std::cout << "\n"
                  << s.displayName() << " @ " << r.model.billions
                  << "B (iter " << formatTime(r.iteration_time)
                  << ")\n";
        for (LinkClass cls : classes) {
            const BandwidthSeries series = probeClassBandwidth(
                exp.cluster().topology(), cls,
                r.execution.measured_begin, r.execution.measured_end,
                r.iteration_time / 40.0);
            const BandwidthSummary sum = series.summary();
            std::cout << csprintf("  %-9s |%s| avg %6.2f GBps peak "
                                  "%6.2f\n",
                                  linkClassName(cls),
                                  sparkline(series.values, 60).c_str(),
                                  sum.avg / units::GBps,
                                  sum.peak / units::GBps);
        }
    }
    std::cout << "\nMegatron-LM's solid bars = constant transfer "
                 "pattern (prone to the IOD SerDes\ncontention); "
                 "ZeRO's bursts = the peak-and-trough pattern the "
                 "paper observes.\n";
    return 0;
}
