/**
 * @file
 * Paper Fig. 8: the trade-off between achieved model size (x) and
 * compute throughput (y) for single- and dual-node training,
 * rendered as a labeled ASCII scatter plot. The paper's takeaways:
 * ZeRO-2 is the single-node sweet spot; ZeRO-3 maximizes dual-node
 * model size while keeping throughput.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hh"

using namespace dstrain;

namespace {

struct Point {
    std::string label;
    double billions;
    double tflops;
};

void
scatter(const std::vector<Point> &points)
{
    const int width = 64;
    const int height = 16;
    double max_x = 0.0;
    double max_y = 0.0;
    for (const Point &p : points) {
        max_x = std::max(max_x, p.billions);
        max_y = std::max(max_y, p.tflops);
    }
    max_x *= 1.1;
    max_y *= 1.1;

    std::vector<std::string> grid(
        height, std::string(static_cast<std::size_t>(width), ' '));
    char marker = 'A';
    for (const Point &p : points) {
        const int col = std::min(
            width - 1, static_cast<int>(p.billions / max_x * width));
        const int row =
            height - 1 -
            std::min(height - 1,
                     static_cast<int>(p.tflops / max_y * height));
        grid[static_cast<std::size_t>(row)]
            [static_cast<std::size_t>(col)] = marker++;
    }
    std::cout << csprintf("TFLOP/s (max %.0f)\n", max_y / 1.1);
    for (const std::string &row : grid)
        std::cout << " |" << row << "\n";
    std::cout << " +" << std::string(width, '-')
              << csprintf("> model size (max %.1fB)\n", max_x / 1.1);
    marker = 'A';
    for (const Point &p : points) {
        std::cout << csprintf("   %c = %-26s (%.1fB, %.0f TFLOP/s)\n",
                              marker++, p.label.c_str(), p.billions,
                              p.tflops);
    }
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 8 — throughput vs. achieved model size trade-off");

    for (int nodes : {1, 2}) {
        std::cout << "\n--- " << (nodes == 1 ? "Single" : "Dual")
                  << " node ---\n";
        std::vector<Point> points;
        for (const StrategyConfig &s : comparisonLineup(nodes)) {
            const ExperimentReport r = bench::runPaperCase(nodes, s);
            points.push_back(
                Point{s.displayName(), r.model.billions, r.tflops});
        }
        scatter(points);
    }
    std::cout << "\nSweet spots, as in the paper: ZeRO-2 single-node "
                 "(throughput at near-max size);\nZeRO-3 dual-node "
                 "(largest model while holding throughput).\n";
    return 0;
}
