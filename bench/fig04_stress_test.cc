/**
 * @file
 * Paper Fig. 4: the CPU-RoCE and GPU-RoCE bandwidth stress tests
 * (four bidirectional perftest instances) with the average and peak
 * bandwidth attained on every interconnect along the path, plus the
 * achieved fraction of the theoretical RoCE rate against the paper's
 * measurements (93% / 47% / 52% / 42%).
 */

#include <iostream>

#include "bench_common.hh"
#include "net/stress_test.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 4 — inter-node bandwidth stress test");

    struct Case {
        const char *name;
        bool gpu_direct;
        bool cross_socket;
        double paper_fraction;
    };
    const Case cases[] = {
        {"CPU-RoCE same-socket", false, false, 0.93},
        {"CPU-RoCE cross-socket", false, true, 0.47},
        {"GPU-RoCE same-socket", true, false, 0.52},
        {"GPU-RoCE cross-socket", true, true, 0.42},
    };

    TextTable table({"Scenario", "RoCE avg (GBps)", "RoCE peak",
                     "% of theoretical (paper)", "DRAM avg",
                     "xGMI avg", "PCIe-GPU avg", "PCIe-NIC avg"});
    for (const Case &c : cases) {
        StressConfig cfg;
        cfg.gpu_direct = c.gpu_direct;
        cfg.cross_socket = c.cross_socket;
        const StressResult r = runRoceStressTest(cfg);
        table.addRow({
            c.name,
            csprintf("%.1f", r.roce.avg / units::GBps),
            csprintf("%.1f", r.roce.peak / units::GBps),
            csprintf("%.1f%% (%.0f%%)", 100.0 * r.roceFraction(),
                     100.0 * c.paper_fraction),
            csprintf("%.1f", r.dram.avg / units::GBps),
            csprintf("%.1f", r.xgmi.avg / units::GBps),
            csprintf("%.1f", r.pcie_gpu.avg / units::GBps),
            csprintf("%.1f", r.pcie_nic.avg / units::GBps),
        });
    }
    std::cout << table << "\n"
              << "Degradation whenever the path crosses two sets of "
                 "IOD SerDes, as the paper\nhypothesizes "
                 "(Sec. III-C4); memory-controller-to-SerDes paths "
                 "run at line rate.\n";
    return 0;
}
