/**
 * @file
 * Ablation: what if the DeepSpeed the paper measured (0.7.x, which
 * reduces gradients after the backward pass) had overlapped its
 * ZeRO-1/2 gradient reduction with the backward pass the way newer
 * releases do? Quantifies how much of the dual-node ZeRO-vs-DDP gap
 * is schedule, not hardware.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

namespace {

double
runTput(int nodes, int stage, bool overlap)
{
    ExperimentConfig cfg =
        dstrain::paperExperiment(nodes, StrategyConfig::zero(stage));
    cfg.tuning.overlap_grad_reduction = overlap;
    dstrain::bench::applyRunSettings(cfg, 3);
    Experiment exp(std::move(cfg));
    return exp.run().tflops;
}

} // namespace

int
main()
{
    bench::banner("Ablation — ZeRO-1/2 gradient-reduction overlap "
                  "(paper-era vs. modern schedule)");

    TextTable table({"Configuration", "Post-backward (paper era)",
                     "Overlapped (modern)", "Gain"});
    for (int nodes : {1, 2}) {
        for (int stage : {1, 2}) {
            const double post = runTput(nodes, stage, false);
            const double over = runTput(nodes, stage, true);
            table.addRow({
                csprintf("ZeRO-%d, %d node(s)", stage, nodes),
                csprintf("%.1f TFLOP/s", post),
                csprintf("%.1f TFLOP/s", over),
                csprintf("%+.1f%%", 100.0 * (over / post - 1.0)),
            });
        }
    }
    std::cout << table << "\n"
              << "Overlap matters most where the reduction is "
                 "slowest — the dual-node runs over\nRoCE — which is "
                 "exactly the regime where the paper found DeepSpeed "
                 "trailing DDP.\n";
    return 0;
}
