/**
 * @file
 * Paper Fig. 5: single-iteration execution timelines for the nine
 * configurations training the 1.4 B model on one node — DDP,
 * Megatron-LM, ZeRO-1/2/3, ZeRO-1/2 with CPU optimizer offload, and
 * ZeRO-3 with 2x NVMe offload (optimizer, and optimizer+parameter).
 * Prints the measured iteration time next to the paper's, and an
 * ASCII timeline of the final iteration.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "telemetry/timeline.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 5 — iteration timelines @ 1.4B, single node");

    struct Case {
        StrategyConfig strategy;
        double paper_seconds;
    };
    const std::vector<Case> cases = {
        {StrategyConfig::ddp(), 0.471},
        {paperMegatron(1), 0.736},
        {StrategyConfig::zero(1), 0.412},
        {StrategyConfig::zero(2), 0.404},
        {StrategyConfig::zero(3), 0.696},
        {StrategyConfig::zeroOffloadCpu(1), 1.38},
        {StrategyConfig::zeroOffloadCpu(2), 1.22},
        {StrategyConfig::zeroInfinityNvme(false), 5.2},
        {StrategyConfig::zeroInfinityNvme(true), 5.9},
    };

    for (const Case &c : cases) {
        ExperimentReport r = bench::runPaperCase(1, c.strategy, 1.4);
        std::cout << "\n"
                  << r.strategy.displayName() << ": iteration "
                  << formatTime(r.iteration_time) << " (paper "
                  << formatTime(c.paper_seconds) << ")\n";
        const auto &ends = r.execution.iteration_ends;
        const SimTime begin = ends[ends.size() - 2];
        std::cout << renderTimeline(r.execution.spans, 4, begin,
                                    r.execution.measured_end);
    }
    std::cout << "\nOffloaded configurations show the GPUs idle (.) "
                 "while the host row runs the\nCPU Adam step — the "
                 "paper's observation that offload only pays off for "
                 "models\ntoo large to fit without it.\n";
    return 0;
}
