/**
 * @file
 * Paper Fig. 6: achieved model size (billions of parameters) for
 * DDP, Megatron-LM and ZeRO-1/2/3 in single-node (a) and dual-node
 * (b) training. Every configuration is simulated end-to-end (the
 * capacity solver resolves the size, the executor confirms it runs),
 * with the points dispatched through the parallel SweepRunner:
 *
 *   ./fig06_model_size [--jobs N]
 */

#include <iostream>
#include <map>
#include <string>

#include "bench_common.hh"
#include "core/sweep_runner.hh"
#include "util/args.hh"

using namespace dstrain;

int
main(int argc, char **argv)
{
    ArgParser args("fig06_model_size",
                   "achieved model size, single- and dual-node");
    args.addOption("jobs", "1",
                   "worker threads (0 = one per hardware thread)");
    if (!args.parse(argc, argv))
        return 1;

    bench::banner("Fig. 6 — achieved model size (B parameters)");

    const std::map<std::string, double> paper_single = {
        {"DDP", 1.4},    {"Megatron-LM", 5.5}, {"ZeRO-1", 4.4},
        {"ZeRO-2", 5.2}, {"ZeRO-3", 6.6},
    };
    const std::map<std::string, double> paper_dual = {
        {"DDP", 1.4},    {"Megatron-LM", 11.4}, {"ZeRO-1", 6.4},
        {"ZeRO-2", 8.5}, {"ZeRO-3", 13.5},
    };

    // One sweep over both node counts; results come back in config
    // order regardless of the job count.
    std::vector<ExperimentConfig> configs;
    for (int nodes : {1, 2}) {
        for (const StrategyConfig &s : comparisonLineup(nodes)) {
            ExperimentConfig cfg = paperExperiment(nodes, s);
            bench::applyRunSettings(cfg);
            configs.push_back(std::move(cfg));
        }
    }

    SweepRunner runner(args.getInt("jobs"));
    bench::Stopwatch watch;
    const std::vector<ExperimentReport> reports =
        runner.run(std::move(configs));
    const double sweep_secs = watch.seconds();

    std::size_t next = 0;
    for (int nodes : {1, 2}) {
        const auto &paper = nodes == 1 ? paper_single : paper_dual;
        std::cout << "\n--- " << (nodes == 1 ? "Single" : "Dual")
                  << " node ---\n";
        TextTable table({"Configuration", "Achieved size (B)",
                         "Paper (B)", "Max layers",
                         "GPU bytes/GPU (GB)", "TFLOP/s"});
        std::vector<std::string> labels;
        std::vector<double> sizes;
        for (const StrategyConfig &s : comparisonLineup(nodes)) {
            const ExperimentReport &r = reports[next++];
            const std::string kind_name = strategyKindName(s.kind);
            table.addRow({
                s.displayName(),
                csprintf("%.1f", r.model.billions),
                csprintf("%.1f", paper.at(kind_name)),
                csprintf("%d", r.model.layers),
                csprintf("%.1f",
                         r.footprint.gpu_per_gpu / units::GB),
                csprintf("%.0f", r.tflops),
            });
            labels.push_back(s.displayName());
            sizes.push_back(r.model.billions);
        }
        std::cout << table << "\n"
                  << barChart(labels, sizes, "B params");
    }
    std::cout << csprintf("\nsweep: %zu points, %d job(s), %.2f s "
                          "wall-clock\n",
                          reports.size(), runner.jobs(), sweep_secs);
    return 0;
}
