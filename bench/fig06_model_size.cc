/**
 * @file
 * Paper Fig. 6: achieved model size (billions of parameters) for
 * DDP, Megatron-LM and ZeRO-1/2/3 in single-node (a) and dual-node
 * (b) training, via the capacity solver.
 */

#include <iostream>
#include <map>
#include <string>

#include "bench_common.hh"
#include "memplan/capacity_solver.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 6 — achieved model size (B parameters)");

    const std::map<std::string, double> paper_single = {
        {"DDP", 1.4},    {"Megatron-LM", 5.5}, {"ZeRO-1", 4.4},
        {"ZeRO-2", 5.2}, {"ZeRO-3", 6.6},
    };
    const std::map<std::string, double> paper_dual = {
        {"DDP", 1.4},    {"Megatron-LM", 11.4}, {"ZeRO-1", 6.4},
        {"ZeRO-2", 8.5}, {"ZeRO-3", 13.5},
    };

    for (int nodes : {1, 2}) {
        const auto &paper = nodes == 1 ? paper_single : paper_dual;
        std::cout << "\n--- " << (nodes == 1 ? "Single" : "Dual")
                  << " node ---\n";
        TextTable table({"Configuration", "Achieved size (B)",
                         "Paper (B)", "Max layers",
                         "GPU bytes/GPU (GB)"});
        std::vector<std::string> labels;
        std::vector<double> sizes;
        for (const StrategyConfig &s : comparisonLineup(nodes)) {
            const CapacityResult r =
                solveMaxModel(s, xe8545Cluster(nodes), 16);
            const std::string kind_name = strategyKindName(s.kind);
            table.addRow({
                s.displayName(),
                csprintf("%.1f", r.entry.billions),
                csprintf("%.1f", paper.at(kind_name)),
                csprintf("%d", r.max_layers),
                csprintf("%.1f", r.footprint.gpu_per_gpu / units::GB),
            });
            labels.push_back(s.displayName());
            sizes.push_back(r.entry.billions);
        }
        std::cout << table << "\n"
                  << barChart(labels, sizes, "B params");
    }
    return 0;
}
