/**
 * @file
 * JSON-emitting micro-benchmark of the checkpoint/recovery subsystem:
 * checkpoint overhead (with a no-op fingerprint-identity check), a
 * nodedown-recovery experiment end to end (reproducibility plus
 * serial-vs-parallel sweep determinism), and a checkpoint-interval
 * sweep locating the goodput-optimal interval next to the Young/Daly
 * estimate.
 *
 * Output is one JSON object per line so the bench trajectory can be
 * recorded and diffed across revisions:
 *
 *   ./micro_recovery [--iterations N] [--points P] [--jobs N]
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/sweep_runner.hh"
#include "recovery/checkpoint.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

/** The dual-node ZeRO-3 configuration all scenarios share. */
ExperimentConfig
baseConfig(int iterations)
{
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::zero(3), 6.6);
    bench::applyRunSettings(cfg, iterations);
    return cfg;
}

/**
 * Checkpoint cost: a clean run against a checkpointed run, plus the
 * subsystem's no-op guarantee — a disabled policy with no hard
 * faults must leave the report fingerprint bit-identical.
 */
bench::JsonObject
checkpointOverheadScenario(int iterations)
{
    bench::Stopwatch watch;
    const ExperimentReport plain = runExperiment(baseConfig(iterations));

    ExperimentConfig noop = baseConfig(iterations);
    noop.recovery.policy = RecoveryPolicyKind::Elastic;
    noop.recovery.detect_delay = 0.111;  // must not matter
    const ExperimentReport idle = runExperiment(std::move(noop));

    ExperimentConfig ckpt = baseConfig(iterations);
    ckpt.recovery.checkpoint.every_iterations = 2;
    const ExperimentReport checked = runExperiment(std::move(ckpt));
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("checkpoint_overhead"))
        .add("iterations", iterations)
        .add("wall_seconds", secs)
        .add("noop_fingerprint_identical",
             reportFingerprint(plain) == reportFingerprint(idle))
        .add("checkpoints", checked.recovery.checkpoints)
        .add("checkpoint_bytes", checked.recovery.checkpoint_bytes)
        .add("checkpoint_overhead", checked.recovery.checkpoint_overhead)
        .add("goodput_tflops", checked.recovery.goodput_tflops)
        .add("throughput_tflops", checked.recovery.throughput_tflops)
        .add("goodput_le_throughput",
             checked.recovery.goodput_tflops <=
                 checked.recovery.throughput_tflops + 1e-9);
    return json;
}

/** Checkpointed config with a nodedown at @p begin seconds. */
ExperimentConfig
faultedConfig(int iterations, double begin)
{
    ExperimentConfig cfg = baseConfig(iterations);
    cfg.recovery.checkpoint.every_iterations = 2;
    std::vector<ConfigError> errors;
    cfg.faults =
        parseFaultSpec(csprintf("nodedown@%g:n1", begin), &errors);
    DSTRAIN_ASSERT(errors.empty(), "bench fault spec invalid");
    return cfg;
}

/**
 * End-to-end nodedown recovery: same-seed reproducibility and
 * serial-vs-parallel sweep determinism with the recovery machinery
 * active, plus the goodput accounting of the first run.
 */
bench::JsonObject
nodedownRecoveryScenario(int iterations, int points, int jobs)
{
    // Aim the fault mid-window using a clean run's measured span.
    const ExperimentReport clean = runExperiment(baseConfig(iterations));
    const double mid = clean.execution.measured_begin +
                       0.5 * (clean.execution.measured_end -
                              clean.execution.measured_begin);

    bench::Stopwatch watch;
    const ExperimentReport first =
        runExperiment(faultedConfig(iterations, mid));
    const double secs = watch.seconds();
    const ExperimentReport second =
        runExperiment(faultedConfig(iterations, mid));

    std::vector<ExperimentConfig> sweep;
    for (int i = 0; i < points; ++i)
        sweep.push_back(faultedConfig(iterations, mid + 0.5 * i));
    const std::vector<ExperimentReport> serial =
        SweepRunner(1).run(sweep);
    const std::vector<ExperimentReport> parallel =
        SweepRunner(jobs).run(sweep);
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        identical = reportFingerprint(serial[i]) ==
                    reportFingerprint(parallel[i]);
    }

    bench::JsonObject json;
    json.add("scenario", std::string("nodedown_recovery"))
        .add("iterations", iterations)
        .add("wall_seconds", secs)
        .add("reproducible", reportFingerprint(first) ==
                                 reportFingerprint(second))
        .add("sweep_points", static_cast<std::uint64_t>(serial.size()))
        .add("sweep_jobs", jobs)
        .add("sweep_identical", identical)
        .add("recoveries", first.recovery.recoveries)
        .add("lost_iterations", first.recovery.lost_iterations)
        .add("time_to_recover", first.recovery.time_to_recover)
        .add("goodput_tflops", first.recovery.goodput_tflops)
        .add("throughput_tflops", first.recovery.throughput_tflops)
        .add("goodput_le_throughput",
             first.recovery.goodput_tflops <=
                 first.recovery.throughput_tflops + 1e-9);
    return json;
}

/**
 * Checkpoint-interval sweep under a fixed nodedown: where does
 * simulated goodput peak, and how close is the Young/Daly estimate
 * tau = sqrt(2 * delta * MTBF) computed from the simulated
 * checkpoint cost?
 */
bench::JsonObject
optimalIntervalScenario(int iterations, int jobs)
{
    const ExperimentReport clean = runExperiment(baseConfig(iterations));
    const double mid = clean.execution.measured_begin +
                       0.5 * (clean.execution.measured_end -
                              clean.execution.measured_begin);

    const int ks[] = {1, 2, 3, 4};
    std::vector<ExperimentConfig> sweep;
    for (int k : ks) {
        ExperimentConfig cfg = faultedConfig(iterations, mid);
        cfg.recovery.checkpoint.every_iterations = k;
        sweep.push_back(std::move(cfg));
    }
    bench::Stopwatch watch;
    const std::vector<ExperimentReport> reports =
        SweepRunner(jobs).run(sweep);
    const double secs = watch.seconds();

    int best_k = 0;
    double best_goodput = -1.0;
    std::string curve;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const RecoveryReport &rc = reports[i].recovery;
        if (rc.goodput_tflops > best_goodput) {
            best_goodput = rc.goodput_tflops;
            best_k = ks[i];
        }
        if (!curve.empty())
            curve += ",";
        curve += csprintf("{\"every_iterations\":%d,\"goodput\":%.6g,"
                          "\"overhead\":%.6g}",
                          ks[i], rc.goodput_tflops,
                          rc.checkpoint_overhead);
    }

    // Young/Daly from the simulated per-checkpoint cost: delta is the
    // mean checkpoint stall, MTBF the single injected failure over
    // the measured span.
    const RecoveryReport &densest = reports[0].recovery;
    const double delta =
        densest.checkpoints > 0
            ? densest.checkpoint_time / densest.checkpoints
            : 0.0;
    const double span = clean.execution.measured_end -
                        clean.execution.measured_begin;
    const double tau =
        delta > 0.0 ? youngDalyInterval(delta, span) : 0.0;

    bench::JsonObject json;
    json.add("scenario", std::string("optimal_interval"))
        .add("wall_seconds", secs)
        .add("best_every_iterations", best_k)
        .add("best_goodput_tflops", best_goodput)
        .add("young_daly_delta", delta)
        .add("young_daly_mtbf", span)
        .add("young_daly_interval", tau)
        .add("iteration_time", clean.iteration_time)
        .addRaw("curve", "[" + curve + "]");
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_recovery",
                   "checkpoint/recovery micro-benchmarks (JSON per "
                   "line)");
    args.addOption("iterations", "6", "training iterations per run");
    args.addOption("points", "3", "nodedown sweep points");
    args.addOption("jobs", "0",
                   "sweep worker threads (0 = one per hardware "
                   "thread)");
    if (!args.parse(argc, argv))
        return 1;

    setLogLevel(LogLevel::Silent);  // keep stdout pure JSON
    const int iterations = args.getInt("iterations");
    const int jobs = SweepRunner(args.getInt("jobs")).jobs();
    std::cout << checkpointOverheadScenario(iterations).str() << "\n";
    std::cout << nodedownRecoveryScenario(iterations,
                                          args.getInt("points"), jobs)
                     .str()
              << "\n";
    std::cout << optimalIntervalScenario(iterations, jobs).str()
              << "\n";
    return 0;
}
