/**
 * @file
 * Extension: energy per iteration and tokens per joule across the
 * paper's configurations — quantifying the environmental-impact
 * motivation of the paper's introduction (which cites the concern
 * but reports no energy numbers). Uses the utilization-based power
 * model of core/energy.hh.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/energy.hh"

using namespace dstrain;

namespace {

void
runRow(TextTable &table, std::vector<std::string> &labels,
       std::vector<double> &tokens_per_joule, int nodes,
       const StrategyConfig &s, double billions = 0.0)
{
    ExperimentConfig cfg = paperExperiment(nodes, s, billions);
    bench::applyRunSettings(cfg, 3);
    Experiment exp(std::move(cfg));
    const ExperimentReport r = exp.run();
    const EnergyReport e = estimateEnergy(r, exp.config());
    table.addRow({
        csprintf("%s, %d node(s)", s.displayName().c_str(), nodes),
        csprintf("%.1f", r.model.billions),
        csprintf("%.1f", r.tflops),
        csprintf("%.1f", e.joules_per_iteration / 1e3),
        csprintf("%.2f", e.avg_power_watts / 1e3),
        csprintf("%.2f", e.tokens_per_joule),
        csprintf("%.0f%%", 100.0 * e.gpu_busy_fraction),
    });
    labels.push_back(
        csprintf("%s %dn", s.displayName().c_str(), nodes));
    tokens_per_joule.push_back(e.tokens_per_joule);
}

} // namespace

int
main()
{
    bench::banner("Extension — energy per iteration and tokens/J");

    TextTable table({"Configuration", "Model (B)", "TFLOP/s",
                     "kJ/iter", "Avg power (kW)", "Tokens/J",
                     "GPU busy"});
    std::vector<std::string> labels;
    std::vector<double> tpj;

    for (const StrategyConfig &s : comparisonLineup(1))
        runRow(table, labels, tpj, 1, s);
    runRow(table, labels, tpj, 2, paperMegatron(2));
    runRow(table, labels, tpj, 2, StrategyConfig::zero(3));
    runRow(table, labels, tpj, 1, StrategyConfig::zeroOffloadCpu(2),
           11.4);
    runRow(table, labels, tpj, 1, StrategyConfig::zeroInfinityNvme(false),
           11.4);

    std::cout << table << "\n"
              << barChart(labels, tpj, "tokens/J") << "\n";
    std::cout
        << "Offload trades energy for capacity: idle GPUs still burn "
           "their floor power\nwhile the CPU or the drives work — the "
           "flip side of the paper's consolidation\nstory that only "
           "an energy model exposes.\n";
    return 0;
}
