/**
 * @file
 * JSON-emitting micro-benchmark of the telemetry engine: dense rate
 * churn over a Table IV-class topology, recorded two ways —
 *
 *  - legacy: full segment retention, end-of-run segment sweep
 *    (bucketizeRateLogs via probeAllClasses);
 *  - streaming: online bucket accumulators, no retention, warm-up
 *    truncation at the measurement boundary.
 *
 * Reports per mode the churn and probe wall times, segments/buckets
 * retained and telemetry memory, plus a bitwise identity check of
 * the two probes. Each density runs the same window with 4x the rate
 * changes, so probe-time scaling with segment count is visible
 * directly.
 *
 *   ./micro_telemetry [--resources N] [--changes C] [--bucket B]
 */

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "telemetry/probe.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

/** Deterministic uniform [0,1) generator (no std::random churn). */
struct Lcg {
    std::uint64_t state;

    double
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((state >> 11) & 0xffffff) /
               static_cast<double>(0x1000000);
    }
};

/** @p per_class resources of every Table IV class across two nodes. */
Topology
buildTopology(int per_class)
{
    Topology topo;
    for (int i = 0; i < per_class; ++i) {
        int cls_i = 0;
        for (LinkClass cls : tableIvClasses()) {
            topo.addResource(cls, 100e9,
                             csprintf("r%d.c%d", i, cls_i++), i % 2, 0);
        }
    }
    return topo;
}

struct ModeResult {
    double churn_seconds = 0.0;
    double probe_seconds = 0.0;
    TelemetryStats stats;
    std::vector<BandwidthSeries> series;
};

/**
 * Run the dense-churn scenario in one mode. Both modes replay the
 * identical rate sequence (same LCG seed); the streaming mode
 * truncates warm-up history and arms the accumulators at the
 * measurement boundary, exactly like Executor::beginMeasurement.
 */
ModeResult
runMode(bool streaming, int per_class, int changes, SimTime dt,
        SimTime bucket, int warm_changes, int probe_reps)
{
    Topology topo = buildTopology(per_class);
    if (streaming)
        topo.setRetainSegments(false);

    const SimTime warm_t = warm_changes * dt;
    const SimTime end_t = changes * dt;
    Lcg rng{12345};

    ModeResult result;
    bench::Stopwatch watch;
    for (int s = 0; s < changes; ++s) {
        if (s == warm_changes && streaming) {
            topo.dropLogsBefore(warm_t);
            topo.armStreams(warm_t, bucket);
        }
        const SimTime t = s * dt;
        for (Resource &r : topo.resources()) {
            // ~30% idle so rate-0 gaps interleave with activity.
            const double u = rng.next();
            r.log.setRate(t, u < 0.3 ? 0.0 : u * 80e9);
        }
    }
    topo.finalizeLogs(end_t);
    result.churn_seconds = watch.seconds();
    result.stats = topo.telemetryStats();

    watch.reset();
    for (int rep = 0; rep < probe_reps; ++rep)
        result.series = probeAllClasses(topo, warm_t, end_t, bucket);
    result.probe_seconds = watch.seconds() / probe_reps;
    return result;
}

bool
identicalSeries(const std::vector<BandwidthSeries> &a,
                const std::vector<BandwidthSeries> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].begin != b[i].begin || a[i].bucket != b[i].bucket ||
            a[i].values != b[i].values)
            return false;
    }
    return true;
}

bench::JsonObject
modeJson(const char *density, const char *mode, int resources,
         int changes, const ModeResult &r)
{
    bench::JsonObject json;
    json.add("scenario", std::string("telemetry_churn"))
        .add("density", std::string(density))
        .add("mode", std::string(mode))
        .add("resources", resources)
        .add("rate_changes", changes)
        .add("segments_retained", r.stats.segments_retained)
        .add("stream_buckets", r.stats.stream_buckets)
        .add("buckets_touched", r.stats.buckets_touched)
        .add("memory_bytes", r.stats.memory_bytes)
        .add("churn_wall_seconds", r.churn_seconds)
        .add("probe_wall_seconds", r.probe_seconds);
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_telemetry",
                   "telemetry-engine micro-benchmarks (JSON per line)");
    args.addOption("resources", "8",
                   "resources per Table IV class (7 classes)");
    args.addOption("changes", "20000",
                   "rate-change sweeps over the 5 s run");
    args.addOption("bucket", "0.01", "probe bucket width (seconds)");
    args.addOption("probe-reps", "5", "probe repetitions to average");
    if (!args.parse(argc, argv))
        return 1;

    setLogLevel(LogLevel::Silent);  // keep stdout pure JSON

    const int per_class = args.getInt("resources");
    const int base_changes = args.getInt("changes");
    const SimTime bucket = args.getDouble("bucket");
    const int reps = args.getInt("probe-reps");
    const int n_resources = per_class * 7;
    const SimTime duration = 5.0;

    // The 4x density packs four times the rate changes into the same
    // window: identical buckets, 4x segments — any probe-time growth
    // between densities is pure segment-count scaling.
    const struct {
        const char *name;
        int factor;
    } densities[] = {{"base", 1}, {"4x", 4}};

    for (const auto &d : densities) {
        const int changes = base_changes * d.factor;
        const SimTime dt = duration / changes;
        const int warm = changes / 10;

        const ModeResult legacy = runMode(
            false, per_class, changes, dt, bucket, warm, reps);
        const ModeResult streaming = runMode(
            true, per_class, changes, dt, bucket, warm, reps);

        std::cout << modeJson(d.name, "legacy", n_resources, changes,
                              legacy)
                         .str()
                  << "\n";
        bench::JsonObject stream_json = modeJson(
            d.name, "streaming", n_resources, changes, streaming);
        stream_json
            .add("identical_to_legacy",
                 identicalSeries(legacy.series, streaming.series))
            .add("memory_ratio",
                 static_cast<double>(legacy.stats.memory_bytes) /
                     static_cast<double>(streaming.stats.memory_bytes))
            .add("probe_speedup",
                 legacy.probe_seconds / streaming.probe_seconds);
        std::cout << stream_json.str() << "\n";
    }
    return 0;
}
