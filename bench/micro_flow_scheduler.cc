/**
 * @file
 * JSON-emitting micro-benchmark of the simulator hot paths: the
 * flow scheduler's fair-share solving (dense contended scenarios
 * under both the region-scoped and the global solver), the event
 * queue's schedule/cancel/pop churn, and the SweepRunner's jobs=1 vs
 * jobs=N wall-clock on a small experiment sweep (with a byte-identity
 * check of the two result sets).
 *
 * Output is one JSON object per line so the bench trajectory can be
 * recorded and diffed across revisions:
 *
 *   ./micro_flow_scheduler [--jobs N] [--waves W] [--per-wave F]
 *                          [--big-waves W] [--big-per-wave F]
 *                          [--skip-sweep]
 */

#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "core/sweep_runner.hh"
#include "net/flow_scheduler.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

const char *
solverName(FlowSolverMode mode)
{
    return mode == FlowSolverMode::Region ? "region" : "global";
}

/** Region-solver telemetry shared by every scheduler scenario. */
void
addSolverStats(bench::JsonObject &json, const FlowScheduler &sched)
{
    const FlowScheduler::Stats &stats = sched.stats();
    json.add("solver", std::string(solverName(sched.solverMode())))
        .add("recomputes", stats.recomputes)
        .add("fast_starts", stats.fast_starts)
        .add("fast_finishes", stats.fast_finishes)
        .add("rate_updates", stats.rate_updates)
        .add("region_solves", stats.region_solves)
        .add("region_peak", stats.region_peak)
        .add("region_avg_flows",
             stats.region_solves
                 ? static_cast<double>(stats.region_flows) /
                       static_cast<double>(stats.region_solves)
                 : 0.0)
        .add("completion_index_updates", stats.completion_index_updates)
        .add("completion_scans_avoided", stats.completion_scans_avoided)
        .add("batched_events", stats.batched_events)
        .add("parallel_component_solves",
             stats.parallel_component_solves)
        .add("stalled_parks", stats.stalled_parks);
    // Histogram bucket k counts region solves with [2^k, 2^(k+1))
    // flows; rendered as a JSON array aligned with bucket index.
    std::ostringstream hist;
    hist << "[";
    for (std::size_t k = 0; k < FlowScheduler::kRegionHistBuckets; ++k)
        hist << (k ? "," : "") << stats.region_hist[k];
    hist << "]";
    json.addRaw("region_hist", hist.str());
}

/**
 * Dense-flow scenario: waves of contending flows across the
 * dual-node cluster, so completions and admissions constantly
 * overlap and the scheduler mixes full recomputes with the
 * incremental paths.
 */
bench::JsonObject
denseFlowScenario(int waves, int per_wave, FlowSolverMode mode)
{
    bench::Stopwatch watch;
    Simulation sim;
    Cluster cluster(xe8545Cluster(2));
    FlowScheduler sched(sim, cluster.topology(), mode);

    int done = 0;
    for (int w = 0; w < waves; ++w) {
        sim.events().schedule(w * 0.01, [&, w] {
            // The wave is one DES event posting per_wave
            // same-timestamp starts: batch them so the storm closes
            // one region and solves once instead of per_wave times.
            FlowScheduler::ScopedBatch batch(sched);
            for (int i = 0; i < per_wave; ++i) {
                FlowSpec spec;
                const int src = (i + w) % 8;
                int dst = (i * 3 + w) % 8;
                if (dst == src)
                    dst = (dst + 1) % 8;
                spec.route = cluster.router().route(
                    cluster.gpuByRank(src), cluster.gpuByRank(dst));
                spec.bytes = 1e8 + 1e6 * i;
                spec.on_complete = [&done] { ++done; };
                sched.start(std::move(spec));
            }
        });
    }
    sim.run();
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("dense_flows"))
        .add("flows", done)
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs);
    addSolverStats(json, sched);
    return json;
}

/**
 * Dense spine-leaf scenario: a 96-node leaf-spine fabric whose
 * topology holds O(10^3) directed links (24x16 trunks plus two host
 * uplinks per node, each duplex), with waves of cross-leaf flows
 * spread over the trunks by per-flow ECMP. Tracks events/sec on a
 * link set two orders of magnitude denser than the dual-node
 * scenario; the region solver's win over the global pass shows up
 * here first.
 */
bench::JsonObject
spineLeafScenario(int waves, int per_wave, FlowSolverMode mode)
{
    bench::Stopwatch watch;
    Simulation sim;
    ClusterSpec spec = xe8545Cluster(96);
    spec.fabric.kind = FabricKind::SpineLeaf;
    spec.fabric.leaves = 24;
    spec.fabric.spines = 16;
    const int world = spec.totalGpus();
    Cluster cluster(std::move(spec));
    FlowScheduler sched(sim, cluster.topology(), mode);
    int done = 0;
    for (int w = 0; w < waves; ++w) {
        sim.events().schedule(w * 0.01, [&, w] {
            // The wave is one DES event posting per_wave
            // same-timestamp starts: batch them so the storm closes
            // one region and solves once instead of per_wave times.
            FlowScheduler::ScopedBatch batch(sched);
            for (int i = 0; i < per_wave; ++i) {
                FlowSpec spec;
                const int src = (i * 7 + w) % world;
                // Jump half the world so src and dst land on
                // different leaves and the flow crosses the spines.
                int dst = (src + world / 2 + i) % world;
                if (dst == src)
                    dst = (dst + 1) % world;
                spec.route = cluster.router().routeForFlow(
                    cluster.gpuByRank(src), cluster.gpuByRank(dst),
                    static_cast<std::uint64_t>(i));
                spec.bytes = 1e8 + 1e6 * i;
                spec.on_complete = [&done] { ++done; };
                sched.start(std::move(spec));
            }
        });
    }
    sim.run();
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("spine_leaf_dense"))
        .add("links", cluster.topology().halfLinkCount())
        .add("switches",
             static_cast<std::uint64_t>(cluster.switches().size()))
        .add("flows", done)
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs);
    addSolverStats(json, sched);
    return json;
}

/**
 * O(10^4)-link fat-tree scenario: 256 XE8545 nodes on a k=16 fat
 * tree (4 pods, 32 edge + 32 agg + 64 core switches, >10^4 directed
 * links), with waves of cross-pod flows ECMP-spread over the core.
 * Intractable under the global solver at this size — every event
 * would re-waterfill a thousand flows — so this scenario is the
 * region solver's existence proof: per-event cost tracks the region
 * (a few flows around two edge switches), not the cluster.
 */
bench::JsonObject
fatTree10kScenario(int waves, int per_wave, FlowSolverMode mode)
{
    bench::Stopwatch watch;
    Simulation sim;
    ClusterSpec spec = xe8545Cluster(256);
    spec.fabric.kind = FabricKind::FatTree;
    spec.fabric.fat_tree_k = 16;
    const int world = spec.totalGpus();
    Cluster cluster(std::move(spec));
    FlowScheduler sched(sim, cluster.topology(), mode);
    int done = 0;
    for (int w = 0; w < waves; ++w) {
        sim.events().schedule(w * 0.01, [&, w] {
            // The wave is one DES event posting per_wave
            // same-timestamp starts: batch them so the storm closes
            // one region and solves once instead of per_wave times.
            FlowScheduler::ScopedBatch batch(sched);
            for (int i = 0; i < per_wave; ++i) {
                FlowSpec spec;
                const int src = (i * 13 + w * 7) % world;
                // Jump half the world: src and dst land in different
                // pods, so the flow crosses edge, agg and core tiers.
                int dst = (src + world / 2 + i) % world;
                if (dst == src)
                    dst = (dst + 1) % world;
                spec.route = cluster.router().routeForFlow(
                    cluster.gpuByRank(src), cluster.gpuByRank(dst),
                    static_cast<std::uint64_t>(i * 31 + w));
                spec.bytes = 1e8 + 1e6 * i;
                spec.on_complete = [&done] { ++done; };
                sched.start(std::move(spec));
            }
        });
    }
    sim.run();
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("fat_tree_10k"))
        .add("links", cluster.topology().halfLinkCount())
        .add("switches",
             static_cast<std::uint64_t>(cluster.switches().size()))
        .add("flows", done)
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs);
    addSolverStats(json, sched);
    return json;
}

/**
 * O(10^5)-link fat-tree scenario: 2048 XE8545 nodes on a k=32 fat
 * tree (8 pods, 128 edge + 128 agg + 256 core switches, ~10^5
 * directed links). Few, small waves: the scenario exists to prove
 * the per-event machinery stays sublinear at this link count (and to
 * complete under sanitizers in CI), not to saturate the fabric.
 */
bench::JsonObject
fatTree100kScenario(int waves, int per_wave, FlowSolverMode mode)
{
    bench::Stopwatch watch;
    Simulation sim;
    ClusterSpec spec = xe8545Cluster(2048);
    spec.fabric.kind = FabricKind::FatTree;
    spec.fabric.fat_tree_k = 32;
    const int world = spec.totalGpus();
    Cluster cluster(std::move(spec));
    FlowScheduler sched(sim, cluster.topology(), mode);
    int done = 0;
    for (int w = 0; w < waves; ++w) {
        sim.events().schedule(w * 0.01, [&, w] {
            FlowScheduler::ScopedBatch batch(sched);
            for (int i = 0; i < per_wave; ++i) {
                FlowSpec spec;
                const int src = (i * 17 + w * 11) % world;
                int dst = (src + world / 2 + i) % world;
                if (dst == src)
                    dst = (dst + 1) % world;
                spec.route = cluster.router().routeForFlow(
                    cluster.gpuByRank(src), cluster.gpuByRank(dst),
                    static_cast<std::uint64_t>(i * 37 + w));
                spec.bytes = 1e8 + 1e6 * i;
                spec.on_complete = [&done] { ++done; };
                sched.start(std::move(spec));
            }
        });
    }
    sim.run();
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("fat_tree_100k"))
        .add("links", cluster.topology().halfLinkCount())
        .add("switches",
             static_cast<std::uint64_t>(cluster.switches().size()))
        .add("flows", done)
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs);
    addSolverStats(json, sched);
    return json;
}

/** Event-queue churn: schedule bursts, cancel half, pop the rest. */
bench::JsonObject
eventQueueChurn()
{
    constexpr int kRounds = 200;
    constexpr int kBurst = 2000;
    bench::Stopwatch watch;
    EventQueue q;
    std::uint64_t ops = 0;
    int fired = 0;
    for (int r = 0; r < kRounds; ++r) {
        EventId ids[kBurst];
        const SimTime base = q.now();
        for (int i = 0; i < kBurst; ++i) {
            ids[i] = q.schedule(base + 1e-6 * (i % 97 + 1),
                                [&fired] { ++fired; });
        }
        for (int i = 0; i < kBurst; i += 2)
            q.cancel(ids[i]);
        q.run();
        ops += 2 * kBurst + kBurst / 2;  // schedule + pop + cancel
    }
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("event_queue_churn"))
        .add("ops", ops)
        .add("executed", q.executedCount())
        .add("wall_seconds", secs)
        .add("ops_per_sec", ops / secs);
    return json;
}

/** The sweep used for the jobs=1 vs jobs=N comparison. */
std::vector<ExperimentConfig>
sweepPoints()
{
    std::vector<ExperimentConfig> configs;
    for (const StrategyConfig &s : comparisonLineup(1)) {
        ExperimentConfig cfg = paperExperiment(1, s);
        bench::applyRunSettings(cfg, 3);
        configs.push_back(std::move(cfg));
    }
    return configs;
}

bench::JsonObject
sweepComparison(int jobs)
{
    bench::Stopwatch watch;
    const std::vector<ExperimentReport> serial =
        SweepRunner(1).run(sweepPoints());
    const double serial_secs = watch.seconds();

    watch.reset();
    const std::vector<ExperimentReport> parallel =
        SweepRunner(jobs).run(sweepPoints());
    const double parallel_secs = watch.seconds();

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        identical = reportFingerprint(serial[i]) ==
                    reportFingerprint(parallel[i]);
    }

    bench::JsonObject json;
    json.add("scenario", std::string("sweep_jobs"))
        .add("points", static_cast<std::uint64_t>(serial.size()))
        .add("jobs", jobs)
        .add("jobs1_wall_seconds", serial_secs)
        .add("jobsN_wall_seconds", parallel_secs)
        .add("speedup", serial_secs / parallel_secs)
        .add("reports_identical", identical);
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_flow_scheduler",
                   "hot-path micro-benchmarks (JSON per line)");
    args.addOption("jobs", "0",
                   "sweep worker threads (0 = one per hardware "
                   "thread)");
    args.addOption("waves", "60", "dense-flow scenario waves");
    args.addOption("per-wave", "64", "flows per wave");
    args.addOption("big-waves", "12", "fat_tree_10k scenario waves");
    args.addOption("big-per-wave", "24",
                   "fat_tree_10k flows per wave");
    args.addOption("huge-waves", "6", "fat_tree_100k scenario waves");
    args.addOption("huge-per-wave", "16",
                   "fat_tree_100k flows per wave");
    args.addFlag("skip-100k",
                 "skip the fat_tree_100k scenario (largest topology)");
    args.addFlag("skip-sweep",
                 "skip the SweepRunner jobs comparison (slowest "
                 "scenario; sanitizer smoke runs)");
    if (!args.parse(argc, argv))
        return 1;

    setLogLevel(LogLevel::Silent);  // keep stdout pure JSON
    const int waves = args.getInt("waves");
    const int per_wave = args.getInt("per-wave");
    // Region (the default) and Global on the same workloads: the
    // events/sec ratio in the JSONL is the solver speedup.
    for (FlowSolverMode mode :
         {FlowSolverMode::Region, FlowSolverMode::Global}) {
        std::cout << denseFlowScenario(waves, per_wave, mode).str()
                  << "\n";
        std::cout << spineLeafScenario(waves, per_wave, mode).str()
                  << "\n";
    }
    // The O(10^4)-link scenario runs region-only: the global pass at
    // this scale is exactly the cost this PR removes.
    std::cout << fatTree10kScenario(args.getInt("big-waves"),
                                    args.getInt("big-per-wave"),
                                    FlowSolverMode::Region)
                     .str()
              << "\n";
    if (!args.getFlag("skip-100k")) {
        std::cout << fatTree100kScenario(args.getInt("huge-waves"),
                                         args.getInt("huge-per-wave"),
                                         FlowSolverMode::Region)
                         .str()
                  << "\n";
    }
    std::cout << eventQueueChurn().str() << "\n";
    if (!args.getFlag("skip-sweep")) {
        std::cout << sweepComparison(
                         SweepRunner(args.getInt("jobs")).jobs())
                         .str()
                  << "\n";
    }
    return 0;
}
