/**
 * @file
 * JSON-emitting micro-benchmark of the collective-algorithm library:
 * back-to-back collectives per (algorithm, op, cluster shape) cell,
 * tracking simulator events/sec and the fabric bytes each schedule
 * puts on the wire. The grid pins the scheduling cost of every
 * family — ring, pairwise, tree and the two-level hierarchical
 * decomposition — so an algorithm change that bloats round counts or
 * flow churn shows up as an events/sec regression in CI
 * (tools/perf_guard.py, baseline bench/baselines/micro_collectives.jsonl).
 *
 * Output is one JSON object per line:
 *
 *   ./micro_collectives [--reps N] [--payload-gb G]
 *
 * The event_queue_churn record is the machine-speed canary
 * perf_guard.py divides out before scoring (see micro_flow_scheduler).
 */

#include <functional>
#include <iostream>

#include "bench_common.hh"
#include "collectives/volume.hh"
#include "net/flow_scheduler.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

/**
 * One grid cell: @p reps collectives of @p op under @p algo, chained
 * back to back (each launches from the previous one's completion
 * callback) over the world group of a @p nodes-node cluster.
 */
bench::JsonObject
collectiveScenario(const std::string &name, int nodes, CollectiveOp op,
                   CollectiveAlgo algo, int reps, Bytes payload)
{
    bench::Stopwatch watch;
    Simulation sim;
    ClusterSpec spec;
    spec.nodes = nodes;
    const int ranks = spec.totalGpus();
    Cluster cluster(std::move(spec));
    FlowScheduler flows(sim, cluster.topology());
    TransferManager tm(sim, cluster, flows);
    CollectiveEngine coll(tm);
    const CommGroup group = CommGroup::worldOf(ranks);

    CollectiveOptions opts;
    opts.algorithm = algo;
    int remaining = reps;
    std::function<void()> issue = [&] {
        if (remaining == 0)
            return;
        --remaining;
        switch (op) {
          case CollectiveOp::AllReduce:
            coll.allReduce(group, payload, issue, opts);
            break;
          case CollectiveOp::ReduceScatter:
            coll.reduceScatter(group, payload, issue, opts);
            break;
          case CollectiveOp::AllGather:
            coll.allGather(group, payload, issue, opts);
            break;
          case CollectiveOp::AllToAll:
            coll.allToAll(group, payload, issue, opts);
            break;
          case CollectiveOp::Broadcast:
            coll.broadcast(group, 0, payload, issue, opts);
            break;
          case CollectiveOp::Reduce:
            coll.reduce(group, 0, payload, issue, opts);
            break;
        }
    };
    issue();
    sim.run();
    const double secs = watch.seconds();

    // The concrete algorithm and closed-form traffic that ran, from
    // the engine's own accounting (one usage row per scenario).
    Bytes fabric = 0.0;
    std::string ran = "none";
    for (const CollectiveUsage &u : coll.usage()) {
        fabric += u.fabric_bytes;
        ran = collectiveAlgoName(u.algo);
    }

    bench::JsonObject json;
    json.add("scenario", name)
        .add("op", std::string(collectiveOpName(op)))
        .add("algorithm", ran)
        .add("ranks", ranks)
        .add("nodes", nodes)
        .add("collectives", coll.completedCount())
        .add("fabric_bytes", fabric)
        .add("sim_seconds", sim.now())
        .add("events", sim.events().executedCount())
        .add("wall_seconds", secs)
        .add("events_per_sec", sim.events().executedCount() / secs);
    return json;
}

/**
 * Machine-speed canary, identical in shape to the one in
 * micro_flow_scheduler: pure event-queue churn with no collective
 * code in the loop, used by perf_guard.py to normalize away
 * shared-runner slowdowns.
 */
bench::JsonObject
eventQueueChurn()
{
    constexpr int kRounds = 200;
    constexpr int kBurst = 2000;
    bench::Stopwatch watch;
    EventQueue q;
    std::uint64_t ops = 0;
    int fired = 0;
    for (int r = 0; r < kRounds; ++r) {
        EventId ids[kBurst];
        const SimTime base = q.now();
        for (int i = 0; i < kBurst; ++i) {
            ids[i] = q.schedule(base + 1e-6 * (i % 97 + 1),
                                [&fired] { ++fired; });
        }
        for (int i = 0; i < kBurst; i += 2)
            q.cancel(ids[i]);
        q.run();
        ops += 2 * kBurst + kBurst / 2;  // schedule + pop + cancel
    }
    const double secs = watch.seconds();

    bench::JsonObject json;
    json.add("scenario", std::string("event_queue_churn"))
        .add("ops", ops)
        .add("executed", q.executedCount())
        .add("wall_seconds", secs)
        .add("ops_per_sec", ops / secs);
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_collectives",
                   "collective-algorithm micro-benchmarks "
                   "(JSON per line)");
    args.addOption("reps", "40",
                   "back-to-back collectives per grid cell");
    args.addOption("payload-gb", "0.5",
                   "per-collective logical payload (GB)");
    if (!args.parse(argc, argv))
        return 1;

    setLogLevel(LogLevel::Silent);  // keep stdout pure JSON
    const int reps = args.getInt("reps");
    const Bytes payload = args.getDouble("payload-gb") * 1e9;

    // Intra-node grid: every family that can schedule the op on one
    // 4-GPU node.
    std::cout << collectiveScenario("allreduce_ring_n1", 1,
                                    CollectiveOp::AllReduce,
                                    CollectiveAlgo::Ring, reps, payload)
                     .str()
              << "\n";
    std::cout << collectiveScenario("allreduce_pairwise_n1", 1,
                                    CollectiveOp::AllReduce,
                                    CollectiveAlgo::Pairwise, reps,
                                    payload)
                     .str()
              << "\n";
    std::cout << collectiveScenario("allreduce_tree_n1", 1,
                                    CollectiveOp::AllReduce,
                                    CollectiveAlgo::Tree, reps, payload)
                     .str()
              << "\n";
    std::cout << collectiveScenario("alltoall_pairwise_n1", 1,
                                    CollectiveOp::AllToAll,
                                    CollectiveAlgo::Pairwise, reps,
                                    payload)
                     .str()
              << "\n";

    // Dual-node grid: the flat ring vs the two-level decomposition —
    // the pair whose RoCE footprints the paper's regimes distinguish.
    std::cout << collectiveScenario("allreduce_ring_n2", 2,
                                    CollectiveOp::AllReduce,
                                    CollectiveAlgo::Ring, reps, payload)
                     .str()
              << "\n";
    std::cout << collectiveScenario("allreduce_hierarchical_n2", 2,
                                    CollectiveOp::AllReduce,
                                    CollectiveAlgo::Hierarchical, reps,
                                    payload)
                     .str()
              << "\n";
    std::cout << collectiveScenario("allgather_hierarchical_n2", 2,
                                    CollectiveOp::AllGather,
                                    CollectiveAlgo::Hierarchical, reps,
                                    payload)
                     .str()
              << "\n";

    std::cout << eventQueueChurn().str() << "\n";
    return 0;
}
