/**
 * @file
 * Paper Table IV: aggregate bidirectional per-node bandwidth
 * utilization (average, 90th percentile, peak) on every interconnect
 * class, for all six sections of the table: single-node, dual-node,
 * CPU-offload consolidation, ZeRO-Infinity with 1x and 2x NVMe, and
 * the largest-model offload configurations.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

namespace {

void
section(TextTable &table, const std::string &title)
{
    table.addSeparator();
    std::vector<std::string> row = {"-- " + title + " --"};
    row.resize(1 + tableIvClasses().size() * 3, "");
    table.addRow(std::move(row));
    table.addSeparator();
}

void
runRow(TextTable &table, ExperimentConfig cfg, const std::string &name)
{
    dstrain::bench::applyRunSettings(cfg, 4);
    Experiment exp(std::move(cfg));
    ExperimentReport r = exp.run();
    BandwidthRow row = r.bandwidth;
    row.config = name;
    addBandwidthRow(table, row);
}

} // namespace

int
main()
{
    bench::banner("Table IV — bandwidth utilization "
                  "(avg / 90th / peak, GBps, per node)");

    TextTable table = makeBandwidthTable();

    section(table, "Single node (Sec. IV-E1)");
    for (const StrategyConfig &s : comparisonLineup(1))
        runRow(table, paperExperiment(1, s), s.displayName());

    section(table, "Dual nodes (Sec. IV-E2)");
    for (const StrategyConfig &s : comparisonLineup(2))
        runRow(table, paperExperiment(2, s), s.displayName());

    section(table, "Consolidate with ZeRO-Offload (Sec. V-A)");
    runRow(table,
           paperExperiment(1, StrategyConfig::zeroOffloadCpu(2), 11.4),
           "ZeRO-2 (CPU)");
    runRow(table,
           paperExperiment(1, StrategyConfig::zeroOffloadCpu(3), 11.4),
           "ZeRO-3 (CPU)");

    for (char placement : {'A', 'B'}) {
        section(table, csprintf("ZeRO-Infinity (%dx NVMe) (Sec. V-B)",
                                placement == 'A' ? 1 : 2));
        for (bool params_too : {false, true}) {
            ExperimentConfig cfg = paperExperiment(
                1, StrategyConfig::zeroInfinityNvme(params_too), 11.4);
            cfg.placement = nvmePlacementConfig(placement);
            runRow(table, std::move(cfg),
                   params_too ? "Optimizer & Parameter" : "Optimizer");
        }
    }

    section(table, "Largest single-node model (Sec. V-C)");
    runRow(table, paperExperiment(1, StrategyConfig::zeroOffloadCpu(1)),
           "ZeRO-1 (CPU)");
    runRow(table, paperExperiment(1, StrategyConfig::zeroOffloadCpu(2)),
           "ZeRO-2 (CPU)");
    runRow(table,
           paperExperiment(1, StrategyConfig::zeroInfinityNvme(true)),
           "ZeRO-3 (2x NVMe)");

    std::cout << table << "\n"
              << "Shapes to compare with the paper's Table IV: NVLink "
                 "dominates single-node;\nPCIe/RoCE/xGMI wake up "
                 "dual-node; DRAM+xGMI carry CPU offload; PCIe-NVME\n"
                 "bursts appear only for ZeRO-Infinity.\n";
    return 0;
}
