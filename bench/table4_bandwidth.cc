/**
 * @file
 * Paper Table IV: aggregate bidirectional per-node bandwidth
 * utilization (average, 90th percentile, peak) on every interconnect
 * class, for all six sections of the table: single-node, dual-node,
 * CPU-offload consolidation, ZeRO-Infinity with 1x and 2x NVMe, and
 * the largest-model offload configurations. All rows run as one
 * sweep through the parallel SweepRunner:
 *
 *   ./table4_bandwidth [--jobs N]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/sweep_runner.hh"
#include "util/args.hh"

using namespace dstrain;

namespace {

/** The whole table, flattened: section boundaries plus sweep points. */
struct Row {
    std::string section;  ///< non-empty: a section header row
    std::string name;     ///< configuration label for sweep points
};

void
addSection(TextTable &table, const std::string &title)
{
    table.addSeparator();
    std::vector<std::string> row = {"-- " + title + " --"};
    row.resize(1 + tableIvClasses().size() * 3, "");
    table.addRow(std::move(row));
    table.addSeparator();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("table4_bandwidth",
                   "Table IV bandwidth utilization rows");
    args.addOption("jobs", "1",
                   "worker threads (0 = one per hardware thread)");
    if (!args.parse(argc, argv))
        return 1;

    bench::banner("Table IV — bandwidth utilization "
                  "(avg / 90th / peak, GBps, per node)");

    std::vector<Row> rows;
    std::vector<ExperimentConfig> configs;
    auto section = [&](const std::string &title) {
        rows.push_back(Row{title, ""});
    };
    auto point = [&](ExperimentConfig cfg, const std::string &name) {
        bench::applyRunSettings(cfg, 4);
        rows.push_back(Row{"", name});
        configs.push_back(std::move(cfg));
    };

    section("Single node (Sec. IV-E1)");
    for (const StrategyConfig &s : comparisonLineup(1))
        point(paperExperiment(1, s), s.displayName());

    section("Dual nodes (Sec. IV-E2)");
    for (const StrategyConfig &s : comparisonLineup(2))
        point(paperExperiment(2, s), s.displayName());

    section("Consolidate with ZeRO-Offload (Sec. V-A)");
    point(paperExperiment(1, StrategyConfig::zeroOffloadCpu(2), 11.4),
          "ZeRO-2 (CPU)");
    point(paperExperiment(1, StrategyConfig::zeroOffloadCpu(3), 11.4),
          "ZeRO-3 (CPU)");

    for (char placement : {'A', 'B'}) {
        section(csprintf("ZeRO-Infinity (%dx NVMe) (Sec. V-B)",
                         placement == 'A' ? 1 : 2));
        for (bool params_too : {false, true}) {
            ExperimentConfig cfg = paperExperiment(
                1, StrategyConfig::zeroInfinityNvme(params_too), 11.4);
            cfg.placement = nvmePlacementConfig(placement);
            point(std::move(cfg),
                  params_too ? "Optimizer & Parameter" : "Optimizer");
        }
    }

    section("Largest single-node model (Sec. V-C)");
    point(paperExperiment(1, StrategyConfig::zeroOffloadCpu(1)),
          "ZeRO-1 (CPU)");
    point(paperExperiment(1, StrategyConfig::zeroOffloadCpu(2)),
          "ZeRO-2 (CPU)");
    point(paperExperiment(1, StrategyConfig::zeroInfinityNvme(true)),
          "ZeRO-3 (2x NVMe)");

    SweepRunner runner(args.getInt("jobs"));
    bench::Stopwatch watch;
    const std::vector<ExperimentReport> reports =
        runner.run(std::move(configs));
    const double sweep_secs = watch.seconds();

    TextTable table = makeBandwidthTable();
    std::size_t next = 0;
    for (const Row &row : rows) {
        if (!row.section.empty()) {
            addSection(table, row.section);
            continue;
        }
        BandwidthRow bw = reports[next++].bandwidth;
        bw.config = row.name;
        addBandwidthRow(table, bw);
    }

    std::cout << table << "\n"
              << "Shapes to compare with the paper's Table IV: NVLink "
                 "dominates single-node;\nPCIe/RoCE/xGMI wake up "
                 "dual-node; DRAM+xGMI carry CPU offload; PCIe-NVME\n"
                 "bursts appear only for ZeRO-Infinity.\n"
              << csprintf("\nsweep: %zu points, %d job(s), %.2f s "
                          "wall-clock\n",
                          reports.size(), runner.jobs(), sweep_secs);
    return 0;
}
