/**
 * @file
 * Extension: hybrid ZeRO + tensor parallelism (paper Sec. II-C
 * mentions DeepSpeed's hybrid support [119] but never evaluates it).
 * Compares pure ZeRO-2, pure Megatron-LM and the hybrid at matched
 * model sizes on both cluster shapes, asking the question the paper
 * leaves open: does splitting the model *and* the optimizer beat
 * either alone?
 */

#include <iostream>

#include "bench_common.hh"
#include "memplan/capacity_solver.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Extension — hybrid ZeRO-2 + tensor parallelism");

    for (int nodes : {1, 2}) {
        std::cout << "\n--- " << (nodes == 1 ? "Single" : "Dual")
                  << " node ---\n";
        const std::vector<StrategyConfig> lineup = {
            StrategyConfig::zero(2),
            paperMegatron(nodes),
            StrategyConfig::hybridZero(2, 2),
            StrategyConfig::hybridZero(2, 4),
        };
        TextTable table({"Configuration", "Max model (B)", "TFLOP/s",
                         "Iter (s)"});
        for (const StrategyConfig &s : lineup) {
            const CapacityResult cap =
                solveMaxModel(s, xe8545Cluster(nodes), 16);
            const ExperimentReport r = bench::runPaperCase(
                nodes, s, cap.entry.billions, 3);
            table.addRow({
                s.displayName(),
                csprintf("%.1f", cap.entry.billions),
                csprintf("%.1f", r.tflops),
                csprintf("%.2f", r.iteration_time),
            });
        }
        std::cout << table;
    }
    std::cout
        << "\nFindings in the spirit of the paper: the hybrid buys "
           "Megatron-class capacity\nwith ZeRO-class optimizer "
           "sharding, but inherits the tensor-parallel\nall-reduces "
           "— so like Megatron-LM it should never span nodes.\n";
    return 0;
}
