/**
 * @file
 * Paper Fig. 7: compute throughput (aggregate TFLOP/s, DeepSpeed
 * FLOPS-profiler convention) for each configuration training its
 * largest achievable model, single-node (a) and dual-node (b).
 */

#include <iostream>
#include <map>
#include <string>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 7 — compute throughput at max model size");

    const std::map<std::string, double> paper_single = {
        {"DDP", 438.0},    {"Megatron-LM", 331.0}, {"ZeRO-1", 391.0},
        {"ZeRO-2", 524.0}, {"ZeRO-3", 381.0},
    };
    const std::map<std::string, double> paper_dual = {
        {"DDP", 640.0},    {"Megatron-LM", 121.0}, {"ZeRO-1", 395.0},
        {"ZeRO-2", 424.0}, {"ZeRO-3", 458.0},
    };

    double ddp_dual = 0.0;
    double mlm_dual = 0.0;
    for (int nodes : {1, 2}) {
        const auto &paper = nodes == 1 ? paper_single : paper_dual;
        std::cout << "\n--- " << (nodes == 1 ? "Single" : "Dual")
                  << " node ---\n";
        TextTable table({"Configuration", "Model (B)",
                         "TFLOP/s (paper)", "Iteration (s)"});
        std::vector<std::string> labels;
        std::vector<double> tputs;
        for (const StrategyConfig &s : comparisonLineup(nodes)) {
            const ExperimentReport r = bench::runPaperCase(nodes, s);
            table.addRow({
                s.displayName(),
                csprintf("%.1f", r.model.billions),
                bench::vsPaper(r.tflops,
                               paper.at(strategyKindName(s.kind))),
                csprintf("%.3f", r.iteration_time),
            });
            labels.push_back(s.displayName());
            tputs.push_back(r.tflops);
            if (nodes == 2 && s.kind == StrategyKind::Ddp)
                ddp_dual = r.tflops;
            if (nodes == 2 && s.kind == StrategyKind::Megatron)
                mlm_dual = r.tflops;
        }
        std::cout << table << "\n" << barChart(labels, tputs, "TFLOP/s");
    }

    std::cout << csprintf(
        "\nDual-node Megatron-LM achieves %.2fx of DDP (paper: 0.19x) "
        "— the inter-node\ntensor-parallel all-reduces ride the "
        "weakest link.\n",
        mlm_dual / ddp_dual);
    return 0;
}
