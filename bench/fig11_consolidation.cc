/**
 * @file
 * Paper Fig. 11: consolidating dual-node training into a single
 * node. The 11.4 B model that needs Megatron-LM across two nodes is
 * trained on ONE node with ZeRO-Offload (CPU) and ZeRO-Infinity
 * (1x and 2x NVMe), comparing compute throughput (a) and memory
 * usage/composition (b).
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 11 — consolidating dual nodes into one "
                  "(11.4B model)");

    std::vector<ExperimentReport> reports;
    std::vector<std::string> labels;
    std::vector<double> tputs;
    std::vector<double> papers;

    auto record = [&](ExperimentReport r, const std::string &label,
                      double paper) {
        labels.push_back(label);
        tputs.push_back(r.tflops);
        papers.push_back(paper);
        reports.push_back(std::move(r));
    };

    record(bench::runPaperCase(2, paperMegatron(2), 11.4),
           "Megatron-LM dual-node", 121.0);
    record(bench::runPaperCase(1, StrategyConfig::zeroOffloadCpu(2),
                               11.4),
           "ZeRO-2 + CPU offload", 191.0);
    record(bench::runPaperCase(1, StrategyConfig::zeroOffloadCpu(3),
                               11.4),
           "ZeRO-3 + CPU offload", 126.0);

    for (bool params_too : {false, true}) {
        for (char placement : {'A', 'B'}) {
            ExperimentConfig cfg = paperExperiment(
                1, StrategyConfig::zeroInfinityNvme(params_too), 11.4);
            cfg.placement = nvmePlacementConfig(placement);
            bench::applyRunSettings(cfg, 3);
            Experiment exp(std::move(cfg));
            const double paper =
                params_too ? (placement == 'A' ? 15.8 : 24.5)
                           : (placement == 'A' ? 20.4 : 38.1);
            record(exp.run(),
                   csprintf("ZeRO-Inf %s, %dx NVMe",
                            params_too ? "opt+param" : "opt",
                            placement == 'A' ? 1 : 2),
                   paper);
        }
    }

    std::cout << "\n(a) Compute throughput:\n";
    TextTable table({"Configuration", "TFLOP/s (paper)", "Iter (s)"});
    for (std::size_t i = 0; i < reports.size(); ++i) {
        table.addRow({labels[i], bench::vsPaper(tputs[i], papers[i]),
                      csprintf("%.2f", reports[i].iteration_time)});
    }
    std::cout << table << "\n" << barChart(labels, tputs, "TFLOP/s");

    std::cout << "\n(b) Memory usage and composition:\n"
              << compositionTable(reports) << "\n";

    std::cout << csprintf(
        "Single-node ZeRO-2+CPU vs dual-node Megatron-LM: %.1f%% "
        "higher throughput\n(paper: 57.8%% higher) — consolidation "
        "wins when the fabric is the bottleneck.\n",
        100.0 * (tputs[1] / tputs[0] - 1.0));
    return 0;
}
