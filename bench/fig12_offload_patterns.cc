/**
 * @file
 * Paper Fig. 12: bandwidth-utilization patterns (top to bottom:
 * NVLink, PCIe-GPU, PCIe-NVME, xGMI, DRAM) for single-node training
 * with ZeRO-Offload (CPU) and ZeRO-Infinity (NVMe) at the 11.4 B
 * consolidation model. CPU offload lights up DRAM and PCIe-GPU with
 * a peak-and-trough pattern; NVMe offload adds the PCIe-NVME bursts
 * the paper attributes to the drive DRAM cache.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 12 — offload bandwidth patterns @ 11.4B");

    const LinkClass classes[] = {LinkClass::NvLink, LinkClass::PcieGpu,
                                 LinkClass::PcieNvme, LinkClass::Xgmi,
                                 LinkClass::Dram};

    struct Case {
        StrategyConfig strategy;
        char placement;
    };
    const Case cases[] = {
        {StrategyConfig::zeroOffloadCpu(2), 'B'},
        {StrategyConfig::zeroOffloadCpu(3), 'B'},
        {StrategyConfig::zeroInfinityNvme(false), 'B'},
        {StrategyConfig::zeroInfinityNvme(true), 'B'},
    };

    for (const Case &c : cases) {
        ExperimentConfig cfg = paperExperiment(1, c.strategy, 11.4);
        cfg.placement = nvmePlacementConfig(c.placement);
        bench::applyRunSettings(cfg, /*iterations=*/6, /*warmup=*/2);
        // The per-iteration sparklines re-probe with an ad-hoc bucket
        // width, which needs the full segment history.
        cfg.telemetry.retain_segments = true;
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();

        std::cout << "\n"
                  << r.strategy.displayName() << " (iter "
                  << formatTime(r.iteration_time) << ")\n";
        for (LinkClass cls : classes) {
            const BandwidthSeries series = probeClassBandwidth(
                exp.cluster().topology(), cls,
                r.execution.measured_begin, r.execution.measured_end,
                r.iteration_time / 40.0);
            const BandwidthSummary sum = series.summary();
            std::cout << csprintf("  %-9s |%s| avg %6.2f GBps peak "
                                  "%6.2f\n",
                                  linkClassName(cls),
                                  sparkline(series.values, 60).c_str(),
                                  sum.avg / units::GBps,
                                  sum.peak / units::GBps);
        }
    }
    std::cout << "\nWhile the GPUs idle, the CPUs compute the "
                 "optimizer: DRAM and xGMI carry the\nload for CPU "
                 "offload; PCIe-NVME takes over for ZeRO-Infinity.\n";
    return 0;
}
