/**
 * @file
 * Paper Fig. 9: the NVLink bandwidth-utilization pattern during
 * single-node training at each configuration's largest model.
 * Prints a sparkline of the aggregate bidirectional NVLink rate over
 * the measurement window plus the avg/90th/peak summary against the
 * paper's Table IV values.
 */

#include <iostream>
#include <map>
#include <string>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 9 — NVLink utilization pattern, single node");

    // Paper Table IV single-node NVLink (avg, peak) in GBps.
    const std::map<std::string, std::pair<double, double>> paper = {
        {"DDP", {83.0, 94.8}},    {"Megatron-LM", {241.0, 267.0}},
        {"ZeRO-1", {111.0, 147.0}}, {"ZeRO-2", {97.3, 117.0}},
        {"ZeRO-3", {99.7, 121.0}},
    };

    for (const StrategyConfig &s : comparisonLineup(1)) {
        ExperimentConfig cfg = paperExperiment(1, s);
        bench::applyRunSettings(cfg, /*iterations=*/10, /*warmup=*/2);
        // The per-iteration sparkline re-probes with an ad-hoc bucket
        // width, which needs the full segment history.
        cfg.telemetry.retain_segments = true;
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();

        const BandwidthSeries series = probeClassBandwidth(
            exp.cluster().topology(), LinkClass::NvLink,
            r.execution.measured_begin, r.execution.measured_end,
            r.iteration_time / 40.0);
        const BandwidthSummary sum = series.summary();
        const auto &[p_avg, p_peak] = paper.at(strategyKindName(s.kind));

        std::cout << "\n"
                  << s.displayName() << " @ " << r.model.billions
                  << "B\n  |" << sparkline(series.values, 76) << "|\n"
                  << csprintf("  avg %.1f GBps (paper %.1f), 90th "
                              "%.1f, peak %.1f (paper %.1f)\n",
                              sum.avg / units::GBps, p_avg,
                              sum.p90 / units::GBps,
                              sum.peak / units::GBps, p_peak);
    }
    std::cout << "\nMegatron-LM sustains the highest NVLink load "
                 "(~3x DDP, as in the paper);\nDeepSpeed stages sit "
                 "between DDP and Megatron-LM.\n";
    return 0;
}
