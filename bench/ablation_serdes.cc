/**
 * @file
 * Ablation: how much of the paper's dual-node story is the EPYC IOD
 * SerDes contention? Re-runs the dual-node lineup and the worst
 * NVMe-placement case with the contention model disabled (an ideal
 * crossbar), quantifying the hypothesis of paper Sec. III-C4.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

namespace {

double
runTput(int nodes, const StrategyConfig &s, double billions,
        bool serdes, char placement = 'B')
{
    ExperimentConfig cfg = dstrain::paperExperiment(nodes, s, billions);
    cfg.cluster.node.model_serdes_contention = serdes;
    cfg.placement = nvmePlacementConfig(placement);
    dstrain::bench::applyRunSettings(cfg, 3);
    Experiment exp(std::move(cfg));
    return exp.run().tflops;
}

} // namespace

int
main()
{
    bench::banner("Ablation — IOD SerDes contention on vs. off");

    TextTable table({"Configuration", "With contention (TFLOP/s)",
                     "Ideal crossbar", "Speedup if fixed"});
    struct Case {
        const char *name;
        int nodes;
        StrategyConfig strategy;
        double billions;
        char placement;
    };
    const Case cases[] = {
        {"Megatron-LM dual-node @11.4B", 2, paperMegatron(2), 11.4,
         'B'},
        {"ZeRO-3 dual-node @13.5B", 2, StrategyConfig::zero(3), 13.5,
         'B'},
        {"DDP dual-node @1.4B", 2, StrategyConfig::ddp(), 1.4, 'B'},
        {"ZeRO-Inf placement E @33.3B", 1,
         StrategyConfig::zeroInfinityNvme(true), 33.3, 'E'},
    };
    for (const Case &c : cases) {
        const double with_c =
            runTput(c.nodes, c.strategy, c.billions, true, c.placement);
        const double ideal =
            runTput(c.nodes, c.strategy, c.billions, false,
                    c.placement);
        table.addRow({c.name, csprintf("%.1f", with_c),
                      csprintf("%.1f", ideal),
                      csprintf("%.2fx", ideal / with_c)});
    }
    std::cout << table << "\n"
              << "The contention model is load-bearing exactly where "
                 "the paper says it is:\ninter-node training and "
                 "RAID0 volumes spanning sockets. Single-socket\n"
                 "storage paths and NVLink traffic are untouched by "
                 "the ablation.\n";
    return 0;
}
