/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself — not a
 * paper artifact, but the performance guardrail that keeps the
 * reproduction runs (hundreds of simulated iterations) fast.
 */

#include <benchmark/benchmark.h>

#include "collectives/communicator.hh"
#include "core/presets.hh"
#include "net/flow_scheduler.hh"
#include "sim/event_queue.hh"

using namespace dstrain;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        int fired = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(static_cast<SimTime>(i) * 1e-6,
                       [&fired] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FlowSchedulerFairShare(benchmark::State &state)
{
    const int flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulation sim;
        Cluster cluster(xe8545Cluster(2));
        FlowScheduler sched(sim, cluster.topology());
        for (int i = 0; i < flows; ++i) {
            FlowSpec spec;
            const int src = i % 4;
            const int dst = 4 + i % 4;
            spec.route = cluster.router().route(
                cluster.gpuByRank(src), cluster.gpuByRank(dst));
            spec.bytes = 1e9;
            spec.tag = "bench";
            sched.start(std::move(spec));
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowSchedulerFairShare)->Arg(16)->Arg(128);

void
BM_RingAllReduce(benchmark::State &state)
{
    const int ranks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulation sim;
        Cluster cluster(xe8545Cluster(ranks > 4 ? 2 : 1));
        FlowScheduler sched(sim, cluster.topology());
        TransferManager tm(sim, cluster, sched);
        CollectiveEngine coll(tm);
        bool done = false;
        coll.allReduce(CommGroup::worldOf(ranks), 1e9,
                       [&done] { done = true; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(4)->Arg(8);

void
BM_FullExperimentIteration(benchmark::State &state)
{
    for (auto _ : state) {
        ExperimentConfig cfg =
            paperExperiment(1, StrategyConfig::zero(2), 1.4);
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        ExperimentReport r = exp.run();
        benchmark::DoNotOptimize(r.tflops);
    }
}
BENCHMARK(BM_FullExperimentIteration);

} // namespace

BENCHMARK_MAIN();
