/**
 * @file
 * Paper Fig. 3: average RoCE latency for SEND / RDMA READ /
 * RDMA WRITE over message sizes from 2 B to 8 MiB, same-socket vs
 * cross-socket. The paper's envelope: same-socket under 6 us and
 * cross-socket under 40 us (~7x) for messages below 64 kB.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "net/verbs.hh"

using namespace dstrain;

int
main()
{
    bench::banner(
        "Fig. 3 — RoCE latency vs. message size (SEND / RDMA READ / "
        "RDMA WRITE)");

    const NodeSpec spec;  // XE8545 defaults
    const std::vector<VerbsOp> ops = {VerbsOp::Send, VerbsOp::RdmaRead,
                                      VerbsOp::RdmaWrite};

    TextTable table({"Message size", "SEND same (us)", "SEND cross",
                     "READ same", "READ cross", "WRITE same",
                     "WRITE cross"});
    bool envelope_ok = true;
    for (Bytes size = 2.0; size <= 8.0 * units::MiB; size *= 4.0) {
        std::vector<std::string> row = {formatBytes(size)};
        for (VerbsOp op : ops) {
            const SimTime same = verbsLatency(
                op, size, SocketPlacement::SameSocket, spec);
            const SimTime cross = verbsLatency(
                op, size, SocketPlacement::CrossSocket, spec);
            row.push_back(csprintf("%.2f", same / units::us));
            row.push_back(csprintf("%.2f", cross / units::us));
            if (size < 64.0 * units::KiB) {
                envelope_ok = envelope_ok && same < 6.0 * units::us &&
                              cross < 40.0 * units::us;
            }
        }
        table.addRow(std::move(row));
    }
    std::cout << table << "\n";
    std::cout << "Paper envelope (<64 kB: same-socket <6 us, "
                 "cross-socket <40 us): "
              << (envelope_ok ? "REPRODUCED" : "VIOLATED") << "\n";
    return 0;
}
