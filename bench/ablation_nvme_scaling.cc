/**
 * @file
 * Ablation / extension: NVMe aggregate-bandwidth scaling for
 * ZeRO-Infinity, 1 to 8 drives, testing the paper's Sec. V-E
 * future-work prediction that populating all eight PCIe slots would
 * make NVMe offload "potentially comparable to CPU offload".
 * Placement H (8 drives, four socket-local RAID0 pairs) is our
 * extension of the paper's Fig. 14.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Ablation — NVMe scaling vs. the CPU-offload bar "
                  "(11.4B model)");

    // The bar the paper predicts 8 drives could reach.
    const ExperimentReport cpu_bar = bench::runPaperCase(
        1, StrategyConfig::zeroOffloadCpu(2), 11.4, 3);

    TextTable table({"Placement", "Drives", "TFLOP/s",
                     "% of ZeRO-2+CPU", "Iter (s)"});
    std::vector<std::string> labels;
    std::vector<double> tputs;
    for (char id : {'A', 'B', 'F', 'H'}) {
        const NvmePlacement placement = nvmePlacementConfig(id);
        ExperimentConfig cfg = paperExperiment(
            1, StrategyConfig::zeroInfinityNvme(false), 11.4);
        cfg.placement = placement;
        bench::applyRunSettings(cfg, 3);
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();
        table.addRow({
            std::string(1, id) + ": " + placement.description,
            csprintf("%zu", placement.drives.size()),
            csprintf("%.1f", r.tflops),
            csprintf("%.0f%%", 100.0 * r.tflops / cpu_bar.tflops),
            csprintf("%.1f", r.iteration_time),
        });
        labels.push_back(std::string(1, id));
        tputs.push_back(r.tflops);
    }
    labels.push_back("ZeRO-2+CPU bar");
    tputs.push_back(cpu_bar.tflops);

    std::cout << table << "\n" << barChart(labels, tputs, "TFLOP/s");
    std::cout << csprintf(
        "\nPaper prediction check: 8 socket-local drives reach %.0f%% "
        "of the CPU-offload\nthroughput (%.0f vs %.0f TFLOP/s) — "
        "\"comparable\" within the optimizer-phase\ngap that CPU "
        "offload never pays.\n",
        100.0 * tputs[3] / cpu_bar.tflops, tputs[3], cpu_bar.tflops);
    return 0;
}
