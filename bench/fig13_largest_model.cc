/**
 * @file
 * Paper Fig. 13: the largest model a single node can train with
 * offloading — achieved size (a), compute throughput (b) and memory
 * usage/composition (c) for ZeRO-Offload on ZeRO-1/2 and
 * ZeRO-Infinity on ZeRO-3 with the dual-NVMe scratch volume.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Fig. 13 — largest single-node model with "
                  "offloading");

    struct Paper {
        double billions;
        double tflops;
    };
    const Paper paper[] = {{8.9, 155.3}, {14.2, 180.2}, {33.3, 37.16}};

    std::vector<ExperimentReport> reports;
    std::vector<std::string> labels;
    std::vector<double> sizes;
    std::vector<double> tputs;
    int i = 0;
    for (const StrategyConfig &s : largestModelLineup()) {
        const ExperimentReport r =
            bench::runPaperCase(1, s, /*billions=*/0.0,
                                /*iterations=*/3);
        std::cout << summarizeReport(r)
                  << csprintf("   (paper: %.1fB, %.1f TFLOP/s)\n",
                              paper[i].billions, paper[i].tflops);
        labels.push_back(r.strategy.displayName());
        sizes.push_back(r.model.billions);
        tputs.push_back(r.tflops);
        reports.push_back(std::move(r));
        ++i;
    }

    std::cout << "\n(a) Achieved model size:\n"
              << barChart(labels, sizes, "B params") << "\n"
              << "(b) Compute throughput:\n"
              << barChart(labels, tputs, "TFLOP/s") << "\n"
              << "(c) Memory composition:\n"
              << compositionTable(reports) << "\n";

    std::cout << csprintf(
        "ZeRO-Infinity fits a model %.1fx larger than Megatron-LM "
        "can on one node\n(paper: 6x of 5.5B); the NVMe aggregate "
        "bandwidth caps its throughput.\n",
        sizes.back() / 5.5);
    return 0;
}
