/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: canned
 * run settings, paper reference values for side-by-side printing,
 * and small formatting utilities.
 */

#ifndef DSTRAIN_BENCH_BENCH_COMMON_HH
#define DSTRAIN_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/report.hh"
#include "util/logging.hh"

namespace dstrain::bench {

/** Wall-clock stopwatch for bench timing. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Minimal JSON object builder for machine-readable bench output
 * (keys and string values are emitted verbatim — callers pass plain
 * identifiers, not arbitrary text needing escapes).
 */
class JsonObject
{
  public:
    JsonObject &
    add(const std::string &key, double value)
    {
        return addRaw(key, csprintf("%.6g", value));
    }

    JsonObject &
    add(const std::string &key, std::uint64_t value)
    {
        return addRaw(key,
                      csprintf("%llu",
                               static_cast<unsigned long long>(value)));
    }

    JsonObject &
    add(const std::string &key, int value)
    {
        return addRaw(key, csprintf("%d", value));
    }

    JsonObject &
    add(const std::string &key, bool value)
    {
        return addRaw(key, value ? "true" : "false");
    }

    JsonObject &
    add(const std::string &key, const std::string &value)
    {
        return addRaw(key, "\"" + value + "\"");
    }

    /** Nest a pre-rendered JSON value (object, array, number). */
    JsonObject &
    addRaw(const std::string &key, const std::string &json)
    {
        if (!body_.empty())
            body_ += ",";
        body_ += "\"" + key + "\":" + json;
        return *this;
    }

    std::string str() const { return "{" + body_ + "}"; }

  private:
    std::string body_;
};

/** Standard iteration settings for the reproduction runs. */
inline void
applyRunSettings(ExperimentConfig &cfg, int iterations = 4,
                 int warmup = 1)
{
    cfg.iterations = iterations;
    cfg.warmup = warmup;
}

/** Run one paper configuration with the standard settings. */
inline ExperimentReport
runPaperCase(int nodes, const StrategyConfig &strategy,
             double billions = 0.0, int iterations = 4)
{
    ExperimentConfig cfg = paperExperiment(nodes, strategy, billions);
    applyRunSettings(cfg, iterations);
    Experiment exp(std::move(cfg));
    return exp.run();
}

/** Print a bench banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n============================================"
                 "====================\n"
              << title << "\n"
              << "============================================"
                 "====================\n";
}

/** "measured (paper X)" cell helper. */
inline std::string
vsPaper(double measured, double paper, const char *fmt = "%.1f")
{
    return csprintf(fmt, measured) + " (paper " +
           csprintf(fmt, paper) + ")";
}

} // namespace dstrain::bench

#endif // DSTRAIN_BENCH_BENCH_COMMON_HH
