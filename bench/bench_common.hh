/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: canned
 * run settings, paper reference values for side-by-side printing,
 * and small formatting utilities.
 */

#ifndef DSTRAIN_BENCH_BENCH_COMMON_HH
#define DSTRAIN_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/report.hh"
#include "util/logging.hh"

namespace dstrain::bench {

/** Standard iteration settings for the reproduction runs. */
inline void
applyRunSettings(ExperimentConfig &cfg, int iterations = 4,
                 int warmup = 1)
{
    cfg.iterations = iterations;
    cfg.warmup = warmup;
}

/** Run one paper configuration with the standard settings. */
inline ExperimentReport
runPaperCase(int nodes, const StrategyConfig &strategy,
             double billions = 0.0, int iterations = 4)
{
    ExperimentConfig cfg = paperExperiment(nodes, strategy, billions);
    applyRunSettings(cfg, iterations);
    Experiment exp(std::move(cfg));
    return exp.run();
}

/** Print a bench banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n============================================"
                 "====================\n"
              << title << "\n"
              << "============================================"
                 "====================\n";
}

/** "measured (paper X)" cell helper. */
inline std::string
vsPaper(double measured, double paper, const char *fmt = "%.1f")
{
    return csprintf(fmt, measured) + " (paper " +
           csprintf(fmt, paper) + ")";
}

} // namespace dstrain::bench

#endif // DSTRAIN_BENCH_BENCH_COMMON_HH
