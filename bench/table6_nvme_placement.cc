/**
 * @file
 * Paper Table VI / Fig. 14: ZeRO-Infinity throughput against the
 * seven NVMe drive-placement configurations A-G for the 33.3 B
 * model, with the xGMI and PCIe-NVME bandwidth that explains the
 * differences.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"

using namespace dstrain;

int
main()
{
    bench::banner("Table VI — ZeRO-Infinity vs NVMe placement "
                  "(33.3B model)");

    const std::map<char, double> paper_tput = {
        {'A', 19.6},  {'B', 37.16}, {'C', 35.43}, {'D', 40.22},
        {'E', 51.22}, {'F', 64.61}, {'G', 65.16},
    };

    TextTable table({"Config", "Drives (sockets)", "Volumes",
                     "TFLOP/s (paper)", "xGMI avg (GBps)",
                     "xGMI peak", "PCIe-NVME avg", "PCIe-NVME peak"});
    std::vector<std::string> labels;
    std::vector<double> tputs;
    for (const NvmePlacement &placement : allNvmePlacements()) {
        ExperimentConfig cfg = paperExperiment(
            1, StrategyConfig::zeroInfinityNvme(true), 33.3);
        cfg.placement = placement;
        bench::applyRunSettings(cfg, 3);
        Experiment exp(std::move(cfg));
        const ExperimentReport r = exp.run();

        std::string sockets;
        for (const NvmeDriveSpec &d : placement.drives)
            sockets += csprintf("%d", d.socket);
        const auto &classes = tableIvClasses();
        BandwidthSummary xgmi;
        BandwidthSummary nvme;
        for (std::size_t i = 0; i < classes.size(); ++i) {
            if (classes[i] == LinkClass::Xgmi)
                xgmi = r.bandwidth.per_class[i];
            if (classes[i] == LinkClass::PcieNvme)
                nvme = r.bandwidth.per_class[i];
        }
        table.addRow({
            std::string(1, placement.id),
            sockets,
            csprintf("%zu", placement.volumes.size()),
            bench::vsPaper(r.tflops, paper_tput.at(placement.id)),
            csprintf("%.2f", xgmi.avg / units::GBps),
            csprintf("%.2f", xgmi.peak / units::GBps),
            csprintf("%.2f", nvme.avg / units::GBps),
            csprintf("%.2f", nvme.peak / units::GBps),
        });
        labels.push_back(std::string(1, placement.id) + ": " +
                         placement.description);
        tputs.push_back(r.tflops);
    }
    std::cout << table << "\n" << barChart(labels, tputs, "TFLOP/s");
    std::cout << "\nPaper's recommendation reproduced: RAID0 volumes "
                 "spanning sockets (C, E) lose\nthroughput to the "
                 "contended IOD crossbar; socket-local volumes (D, "
                 "F, G) win.\n";
    return 0;
}
