/**
 * @file
 * Paper Fig. 1: the growth of large-language-model size versus the
 * growth of single-GPU memory capacity. The paper plots public data;
 * this bench regenerates the same series (sizes in billions of
 * parameters, GPU memory in GB) and the headline ratio the paper
 * quotes: ~1000x model growth vs ~5x memory growth over 2018-2020.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hh"

using namespace dstrain;

namespace {

struct ModelPoint {
    const char *name;
    int year;
    double billions;
};

struct GpuPoint {
    const char *name;
    int year;
    double memory_gb;
};

const std::vector<ModelPoint> kModels = {
    {"ELMo", 2018, 0.094},        {"BERT-Large", 2018, 0.34},
    {"GPT-2", 2019, 1.5},         {"Megatron-LM", 2019, 8.3},
    {"T5-11B", 2019, 11.0},       {"Turing-NLG", 2020, 17.2},
    {"GPT-3", 2020, 175.0},       {"MT-NLG 530B", 2022, 530.0},
    {"GPT-4 (est.)", 2023, 1760.0},
};

const std::vector<GpuPoint> kGpus = {
    {"Tesla V100 16GB", 2017, 16.0}, {"Tesla V100 32GB", 2018, 32.0},
    {"A100 40GB", 2020, 40.0},       {"A100 80GB", 2020, 80.0},
    {"H100 80GB", 2023, 80.0},
};

} // namespace

int
main()
{
    bench::banner("Fig. 1 — LLM size vs. single-GPU memory trend");

    TextTable models({"Model", "Year", "Params (B)",
                      "Min GPUs to hold states (40GB A100)"});
    for (const ModelPoint &m : kModels) {
        // 16 bytes/param of mixed-precision model states.
        const double state_gb = 16.0 * m.billions;
        models.addRow({m.name, csprintf("%d", m.year),
                       csprintf("%.3f", m.billions),
                       csprintf("%.0f", std::ceil(state_gb / 40.0))});
    }
    std::cout << models << "\n";

    TextTable gpus({"GPU", "Year", "Memory (GB)"});
    for (const GpuPoint &g : kGpus)
        gpus.addRow({g.name, csprintf("%d", g.year),
                     csprintf("%.0f", g.memory_gb)});
    std::cout << gpus << "\n";

    const double model_growth = 175.0 / 0.094;  // ELMo'18 -> GPT-3'20
    const double mem_growth = 80.0 / 16.0;      // V100'17 -> A100'20
    std::cout << csprintf(
        "Model growth 2018-2020: %.0fx (paper: ~1000x). GPU memory "
        "growth: %.0fx (paper: 5x).\n",
        model_growth, mem_growth);
    return 0;
}
