/**
 * @file
 * Integration tests for checkpoint/restore and hard-failure recovery:
 * no-op guarantees, determinism, restart and elastic policies, and
 * the goodput accounting invariants.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep_runner.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

/** A small, fast experiment: 1.4B ZeRO-1 on two nodes. */
ExperimentConfig
baseConfig(int iterations = 5)
{
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::zero(1), 1.4);
    cfg.iterations = iterations;
    cfg.warmup = 1;
    return cfg;
}

/** Mid-measurement-window fault time for @p cfg (via a clean run). */
SimTime
midWindow(const ExperimentConfig &cfg)
{
    ExperimentConfig clean = cfg;
    clean.faults = FaultPlan{};
    clean.recovery = RecoveryConfig{};
    const ExperimentReport r = runExperiment(std::move(clean));
    return r.execution.measured_begin +
           0.5 * (r.execution.measured_end -
                  r.execution.measured_begin);
}

FaultPlan
hardFaultAt(const std::string &kind_target, SimTime begin)
{
    std::vector<ConfigError> errors;
    FaultPlan plan =
        parseFaultSpec(csprintf("%s@%g:%s",
                                kind_target.substr(
                                    0, kind_target.find(':')).c_str(),
                                begin,
                                kind_target.substr(
                                    kind_target.find(':') + 1).c_str()),
                       &errors);
    EXPECT_TRUE(errors.empty()) << formatConfigErrors(errors);
    return plan;
}

/** The goodput <= throughput invariant plus basic sanity. */
void
expectSaneRecovery(const ExperimentReport &r)
{
    ASSERT_TRUE(r.recovery.active);
    EXPECT_LE(r.recovery.goodput_tflops,
              r.recovery.throughput_tflops + 1e-9);
    EXPECT_GE(r.recovery.goodput_tflops, 0.0);
    EXPECT_GE(r.recovery.checkpoint_overhead, 0.0);
    EXPECT_LE(r.recovery.checkpoint_overhead, 1.0);
    EXPECT_GE(r.recovery.checkpoint_time, 0.0);
    EXPECT_GE(r.recovery.recovery_time, 0.0);
    EXPECT_GE(r.recovery.lost_time, 0.0);
}

TEST(RecoveryTest, DisabledPolicyIsBitIdenticalToPlainRun)
{
    // A disabled checkpoint policy with no hard faults must not
    // perturb the run in any way, whatever the other recovery knobs
    // say — the acceptance criterion for the whole subsystem.
    const ExperimentReport plain = runExperiment(baseConfig());

    ExperimentConfig cfg = baseConfig();
    cfg.recovery.policy = RecoveryPolicyKind::Elastic;
    cfg.recovery.detect_delay = 0.123;
    cfg.recovery.rendezvous = 4.5;
    const ExperimentReport noop = runExperiment(std::move(cfg));

    EXPECT_FALSE(noop.recovery.active);
    EXPECT_EQ(reportFingerprint(plain), reportFingerprint(noop));
}

TEST(RecoveryTest, CheckpointedRunCommitsAndAccounts)
{
    ExperimentConfig cfg = baseConfig(6);
    cfg.recovery.checkpoint.every_iterations = 2;
    const ExperimentReport r = runExperiment(std::move(cfg));

    expectSaneRecovery(r);
    // Boundaries 2 and 4 are due (never after the final iteration).
    EXPECT_EQ(r.recovery.checkpoints, 2);
    EXPECT_EQ(r.recovery.recoveries, 0);
    EXPECT_EQ(r.recovery.lost_iterations, 0);
    EXPECT_DOUBLE_EQ(r.recovery.lost_time, 0.0);
    EXPECT_GT(r.recovery.checkpoint_time, 0.0);
    EXPECT_GT(r.recovery.checkpoint_overhead, 0.0);
    // Bytes: 14 B/param per committed checkpoint.
    EXPECT_NEAR(r.recovery.checkpoint_bytes,
                2 * 14.0 * static_cast<double>(r.model.params),
                1e-3 * r.recovery.checkpoint_bytes);
    // Checkpoint holds stretch the run.
    EXPECT_EQ(r.execution.iteration_ends.size(), 6u);
    EXPECT_LT(r.recovery.goodput_tflops, r.recovery.throughput_tflops);
}

TEST(RecoveryTest, CheckpointedRunIsDeterministic)
{
    auto once = [] {
        ExperimentConfig cfg = baseConfig(5);
        cfg.recovery.checkpoint.every_iterations = 2;
        return reportFingerprint(runExperiment(std::move(cfg)));
    };
    EXPECT_EQ(once(), once());
}

TEST(RecoveryTest, IntervalPolicyCheckpoints)
{
    // A tiny interval is due at (almost) every boundary; a huge one
    // never fires.
    ExperimentConfig tiny = baseConfig(5);
    tiny.recovery.checkpoint.interval = 1e-3;
    const ExperimentReport often = runExperiment(std::move(tiny));
    ASSERT_TRUE(often.recovery.active);
    EXPECT_EQ(often.recovery.checkpoints, 4);  // every boundary but last

    ExperimentConfig huge = baseConfig(5);
    huge.recovery.checkpoint.interval = 1e9;
    const ExperimentReport never = runExperiment(std::move(huge));
    ASSERT_TRUE(never.recovery.active);
    EXPECT_EQ(never.recovery.checkpoints, 0);
    EXPECT_DOUBLE_EQ(never.recovery.checkpoint_time, 0.0);
}

TEST(RecoveryTest, NodedownRestartReplaysFromCheckpoint)
{
    ExperimentConfig cfg = baseConfig(6);
    cfg.recovery.checkpoint.every_iterations = 2;
    const SimTime mid = midWindow(cfg);
    cfg.faults = hardFaultAt("nodedown:n1", mid);

    Experiment exp(std::move(cfg));
    const ExperimentReport r = exp.run();

    expectSaneRecovery(r);
    EXPECT_EQ(r.recovery.recoveries, 1);
    EXPECT_GT(r.recovery.time_to_recover, 0.0);
    EXPECT_GT(r.recovery.recovery_time, 0.0);
    EXPECT_GT(r.recovery.lost_time, 0.0);
    // The run still commits every configured iteration.
    EXPECT_EQ(r.execution.iteration_ends.size(), 6u);
    // Byte conservation held across the abort (verifyConservation
    // ran inside run()); every started transfer is accounted. The
    // fault may land during a checkpoint hold with nothing in
    // flight, so aborted == 0 is legitimate.
    const TransferManager::Stats &stats = exp.transfers().stats();
    EXPECT_EQ(stats.conservation_violations, 0u);
    EXPECT_EQ(stats.started, stats.completed + stats.aborted);
}

TEST(RecoveryTest, NodedownRestartIsDeterministic)
{
    auto once = [] {
        ExperimentConfig cfg = baseConfig(6);
        cfg.recovery.checkpoint.every_iterations = 2;
        cfg.faults = hardFaultAt("nodedown:n1", 20.0);
        return reportFingerprint(runExperiment(std::move(cfg)));
    };
    EXPECT_EQ(once(), once());
}

TEST(RecoveryTest, GpudownRestartRecovers)
{
    ExperimentConfig cfg = baseConfig(6);
    cfg.recovery.checkpoint.every_iterations = 2;
    const SimTime mid = midWindow(cfg);
    cfg.faults = hardFaultAt("gpudown:rank3", mid);

    const ExperimentReport r = runExperiment(std::move(cfg));
    expectSaneRecovery(r);
    EXPECT_EQ(r.recovery.recoveries, 1);
    EXPECT_EQ(r.execution.iteration_ends.size(), 6u);
}

TEST(RecoveryTest, ElasticContinuesOnSurvivors)
{
    ExperimentConfig cfg = baseConfig(6);
    cfg.recovery.checkpoint.every_iterations = 2;
    cfg.recovery.policy = RecoveryPolicyKind::Elastic;
    const SimTime mid = midWindow(cfg);
    cfg.faults = hardFaultAt("nodedown:n1", mid);

    const ExperimentReport r = runExperiment(std::move(cfg));
    expectSaneRecovery(r);
    EXPECT_EQ(r.recovery.recoveries, 1);
    EXPECT_EQ(r.execution.iteration_ends.size(), 6u);
    // Post-fault iterations run on half the GPUs: the committed
    // per-iteration FLOPs drop.
    ASSERT_EQ(r.execution.iteration_flops.size(), 6u);
    EXPECT_LT(r.execution.iteration_flops.back(),
              r.execution.iteration_flops.front());
}

TEST(RecoveryTest, NodedownWithoutCheckpointReplaysFromScratch)
{
    ExperimentConfig cfg = baseConfig(5);
    const SimTime mid = midWindow(cfg);
    cfg.faults = hardFaultAt("nodedown:n1", mid);

    const ExperimentReport r = runExperiment(std::move(cfg));
    expectSaneRecovery(r);
    EXPECT_EQ(r.recovery.checkpoints, 0);
    EXPECT_EQ(r.recovery.recoveries, 1);
    // Everything that had completed is lost.
    EXPECT_GE(r.recovery.lost_iterations, 1);
    EXPECT_EQ(r.execution.iteration_ends.size(), 5u);
}

TEST(RecoveryTest, SweepFingerprintsMatchSerialAndParallel)
{
    // The acceptance criterion: a checkpointed + nodedown run is
    // deterministic under the parallel sweep runner — serial and
    // parallel execution produce bit-identical fingerprints.
    auto sweep = [](int jobs) {
        std::vector<ExperimentConfig> configs;
        for (int i = 0; i < 3; ++i) {
            ExperimentConfig cfg = baseConfig(6);
            cfg.recovery.checkpoint.every_iterations = 2;
            cfg.faults = hardFaultAt("nodedown:n1", 18.0 + 2.0 * i);
            configs.push_back(std::move(cfg));
        }
        SweepRunner runner(jobs);
        std::vector<std::string> prints;
        for (const ExperimentReport &r :
             runner.run(std::move(configs)))
            prints.push_back(reportFingerprint(r));
        return prints;
    };
    EXPECT_EQ(sweep(1), sweep(3));
}

TEST(RecoveryTest, ValidateCatchesBadCombinations)
{
    // Elastic without a checkpoint policy.
    ExperimentConfig cfg = baseConfig();
    cfg.recovery.policy = RecoveryPolicyKind::Elastic;
    cfg.faults = hardFaultAt("nodedown:n1", 5.0);
    EXPECT_FALSE(cfg.validate().empty());

    // Elastic with a gpudown fault.
    ExperimentConfig gd = baseConfig();
    gd.recovery.policy = RecoveryPolicyKind::Elastic;
    gd.recovery.checkpoint.every_iterations = 2;
    gd.faults = hardFaultAt("gpudown:rank0", 5.0);
    EXPECT_FALSE(gd.validate().empty());

    // nodedown on a single-node cluster.
    ExperimentConfig single =
        paperExperiment(1, StrategyConfig::zero(1), 1.4);
    single.faults = hardFaultAt("nodedown:n0", 5.0);
    EXPECT_FALSE(single.validate().empty());

    // Hard fault with a duration.
    std::vector<ConfigError> errors;
    parseFaultSpec("nodedown@3+1:n1", &errors);
    EXPECT_FALSE(errors.empty());

    // All fine: restart + checkpoint + nodedown on two nodes.
    ExperimentConfig ok = baseConfig();
    ok.recovery.checkpoint.every_iterations = 2;
    ok.faults = hardFaultAt("nodedown:n1", 5.0);
    EXPECT_TRUE(ok.validate().empty())
        << formatConfigErrors(ok.validate());
}

TEST(RecoveryTest, RecoveryReportRendering)
{
    ExperimentConfig cfg = baseConfig(6);
    cfg.recovery.checkpoint.every_iterations = 2;
    cfg.faults = hardFaultAt("nodedown:n1", 20.0);
    const ExperimentReport r = runExperiment(std::move(cfg));

    EXPECT_FALSE(summarizeRecovery(r.recovery).empty());
    EXPECT_EQ(summarizeRecovery(RecoveryReport{}), "");
    const std::string table = recoveryTable({r}).render();
    EXPECT_NE(table.find("Goodput"), std::string::npos);
    // The fingerprint carries the recovery section only when active.
    EXPECT_NE(reportFingerprint(r).find("|recovery="),
              std::string::npos);
}

} // namespace
} // namespace dstrain
