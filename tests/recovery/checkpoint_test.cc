/**
 * @file
 * Tests for the checkpoint policy spec and sizing arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "recovery/checkpoint.hh"

namespace dstrain {
namespace {

CheckpointPolicy
parsePolicyOk(const std::string &spec)
{
    std::vector<ConfigError> errors;
    const CheckpointPolicy policy = parseCheckpointSpec(spec, &errors);
    EXPECT_TRUE(errors.empty())
        << spec << ": " << formatConfigErrors(errors);
    return policy;
}

TEST(CheckpointPolicyTest, ParsesIntervalAndIterationSpecs)
{
    const CheckpointPolicy secs = parsePolicyOk("2.5s");
    EXPECT_DOUBLE_EQ(secs.interval, 2.5);
    EXPECT_EQ(secs.every_iterations, 0);
    EXPECT_TRUE(secs.enabled());

    const CheckpointPolicy bare = parsePolicyOk("1.5");
    EXPECT_DOUBLE_EQ(bare.interval, 1.5);

    const CheckpointPolicy iters = parsePolicyOk("3i");
    EXPECT_EQ(iters.every_iterations, 3);
    EXPECT_DOUBLE_EQ(iters.interval, 0.0);
    EXPECT_TRUE(iters.enabled());

    EXPECT_FALSE(parsePolicyOk("off").enabled());
    EXPECT_FALSE(parsePolicyOk("").enabled());
    EXPECT_FALSE(parsePolicyOk("  off  ").enabled());
}

TEST(CheckpointPolicyTest, StrRoundTrips)
{
    EXPECT_EQ(parsePolicyOk("2.5s").str(), "2.5s");
    EXPECT_EQ(parsePolicyOk("3i").str(), "3i");
    EXPECT_EQ(parsePolicyOk("off").str(), "off");
    EXPECT_EQ(parsePolicyOk(parsePolicyOk("4i").str()).str(), "4i");
}

TEST(CheckpointPolicyTest, RejectsMalformedSpecs)
{
    const char *const bad[] = {
        "x", "-1", "0", "0i", "0s", "2.5i", "2.5si", "s", "i",
        "1.5x", "nan", "inf", "--2",
    };
    for (const char *spec : bad) {
        std::vector<ConfigError> errors;
        const CheckpointPolicy policy =
            parseCheckpointSpec(spec, &errors);
        EXPECT_FALSE(errors.empty())
            << "'" << spec << "' parsed without error";
        EXPECT_FALSE(policy.enabled())
            << "'" << spec << "' yielded an enabled policy";
    }
}

TEST(CheckpointPolicyTest, ValidateRejectsConflictsAndRanges)
{
    CheckpointPolicy both;
    both.interval = 1.0;
    both.every_iterations = 2;
    EXPECT_FALSE(both.validate().empty());

    CheckpointPolicy negative;
    negative.interval = -1.0;
    EXPECT_FALSE(negative.validate().empty());

    EXPECT_TRUE(CheckpointPolicy{}.validate().empty());
}

TEST(CheckpointSizingTest, EveryStrategyPersistsFourteenBytesPerParam)
{
    // fp16 params (2 B) + fp32 optimizer (12 B): whatever the
    // partitioning, the aggregate must be 14 B/param.
    const std::int64_t params = 1'000'000'000;
    const Bytes expect = 14.0 * 1e9;
    const StrategyConfig strategies[] = {
        StrategyConfig::ddp(),          StrategyConfig::megatron(4, 1),
        StrategyConfig::zero(1),        StrategyConfig::zero(2),
        StrategyConfig::zero(3),        StrategyConfig::zeroOffloadCpu(2),
        StrategyConfig::zeroInfinityNvme(true),
    };
    for (const StrategyConfig &s : strategies) {
        EXPECT_NEAR(checkpointTotalBytes(s, params, 8), expect, 1.0)
            << s.displayName();
    }
}

TEST(CheckpointSizingTest, ShardDistributionFollowsPartitioning)
{
    const std::int64_t params = 1'000'000'000;
    const double p = 1e9;

    // DDP: rank 0 writes everything, the replicas nothing.
    EXPECT_NEAR(checkpointShardBytes(StrategyConfig::ddp(), params, 8, 0),
                14.0 * p, 1.0);
    EXPECT_DOUBLE_EQ(
        checkpointShardBytes(StrategyConfig::ddp(), params, 8, 7), 0.0);

    // Megatron tp=4: the first replica's 4 ranks split one copy.
    const StrategyConfig mt = StrategyConfig::megatron(4, 1);
    EXPECT_NEAR(checkpointShardBytes(mt, params, 8, 0), 14.0 * p / 4,
                1.0);
    EXPECT_DOUBLE_EQ(checkpointShardBytes(mt, params, 8, 5), 0.0);

    // ZeRO-1: optimizer sharded over all 8, params whole on rank 0.
    const StrategyConfig z1 = StrategyConfig::zero(1);
    EXPECT_NEAR(checkpointShardBytes(z1, params, 8, 0),
                12.0 * p / 8 + 2.0 * p, 1.0);
    EXPECT_NEAR(checkpointShardBytes(z1, params, 8, 3), 12.0 * p / 8,
                1.0);

    // ZeRO-3: everything equally sharded.
    const StrategyConfig z3 = StrategyConfig::zero(3);
    for (int r = 0; r < 8; ++r) {
        EXPECT_NEAR(checkpointShardBytes(z3, params, 8, r),
                    14.0 * p / 8, 1.0);
    }
}

TEST(CheckpointSizingTest, YoungDalyInterval)
{
    // tau = sqrt(2 * delta * MTBF).
    EXPECT_DOUBLE_EQ(youngDalyInterval(30.0, 86400.0),
                     std::sqrt(2.0 * 30.0 * 86400.0));
    EXPECT_DOUBLE_EQ(youngDalyInterval(0.5, 2.0), std::sqrt(2.0));
    // Longer MTBF -> longer interval (monotone).
    EXPECT_LT(youngDalyInterval(30.0, 3600.0),
              youngDalyInterval(30.0, 86400.0));
}

} // namespace
} // namespace dstrain
