/**
 * @file
 * Tests for the NVMe drive model: cache absorption/drain behavior.
 */

#include <gtest/gtest.h>

#include "storage/nvme_device.hh"

namespace dstrain {
namespace {

class NvmeDeviceTest : public testing::Test
{
  protected:
    NvmeDeviceTest() : cluster_(ClusterSpec{}) {}

    Cluster cluster_;
};

TEST_F(NvmeDeviceTest, ResolvesComponentsAndRates)
{
    NvmeDevice dev(cluster_, 0, 0, NvmeCacheConfig{});
    EXPECT_NE(dev.controller(), kNoComponent);
    EXPECT_NE(dev.media(), kNoComponent);
    EXPECT_DOUBLE_EQ(dev.mediaRate(), 3.3e9);
    EXPECT_EQ(dev.socket(), 1);  // paper default: scratch on CPU1
}

TEST_F(NvmeDeviceTest, SmallWritesFullyAbsorbed)
{
    NvmeDevice dev(cluster_, 0, 0, NvmeCacheConfig{});
    const Bytes burst = dev.absorbWrite(0.0, 1e9);
    EXPECT_DOUBLE_EQ(burst, 1e9);
    EXPECT_DOUBLE_EQ(dev.cacheFill(0.0), 1e9);
}

TEST_F(NvmeDeviceTest, LargeWritesOverflowToMedia)
{
    NvmeCacheConfig cfg;
    cfg.capacity = 1.5e9;
    NvmeDevice dev(cluster_, 0, 0, cfg);
    const Bytes burst = dev.absorbWrite(0.0, 10e9);
    EXPECT_DOUBLE_EQ(burst, 1.5e9);  // cache-sized burst only
}

TEST_F(NvmeDeviceTest, CacheDrainsAtMediaRate)
{
    NvmeCacheConfig cfg;
    cfg.capacity = 1.5e9;
    NvmeDevice dev(cluster_, 0, 0, cfg);
    dev.absorbWrite(0.0, 1.5e9);
    EXPECT_DOUBLE_EQ(dev.cacheFill(0.0), 1.5e9);
    // After 0.2 s at 3.3 GBps the cache drained 0.66 GB.
    EXPECT_NEAR(dev.cacheFill(0.2), 1.5e9 - 0.66e9, 1e3);
    // Fully drained (and clamped) after enough time.
    EXPECT_DOUBLE_EQ(dev.cacheFill(10.0), 0.0);
}

TEST_F(NvmeDeviceTest, BackToBackWritesSeeLessCache)
{
    NvmeCacheConfig cfg;
    cfg.capacity = 1.5e9;
    NvmeDevice dev(cluster_, 0, 0, cfg);
    EXPECT_DOUBLE_EQ(dev.absorbWrite(0.0, 1.0e9), 1.0e9);
    // Immediately after, only 0.5 GB of cache remains.
    EXPECT_DOUBLE_EQ(dev.absorbWrite(0.0, 1.0e9), 0.5e9);
}

TEST_F(NvmeDeviceTest, UnknownDriveIsFatal)
{
    EXPECT_EXIT(NvmeDevice(cluster_, 0, 9, NvmeCacheConfig{}),
                testing::ExitedWithCode(1), "no NVMe drive");
}

} // namespace
} // namespace dstrain
