/**
 * @file
 * Tests for the async-IO engine: reads ride the media constraint,
 * writes burst into the cache, cross-socket IO consumes xGMI and
 * the IOD crossbar.
 */

#include <gtest/gtest.h>

#include "storage/aio_engine.hh"

namespace dstrain {
namespace {

class AioEngineTest : public testing::Test
{
  protected:
    AioEngineTest()
        : cluster_(ClusterSpec{}), flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_), aio_(tm_)
    {
    }

    Bytes
    classBytes(LinkClass cls)
    {
        flows_.finalizeLogs();
        Bytes total = 0.0;
        for (const Resource &r : cluster_.topology().resources())
            if (r.cls == cls)
                total += r.log.totalBytes();
        return total;
    }

    StorageIo
    io(bool write, Bytes bytes, int socket)
    {
        StorageIo req;
        req.write = write;
        req.bytes = bytes;
        req.node = 0;
        req.socket = socket;
        req.tag = "test-io";
        return req;
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
    AioEngine aio_;
};

TEST_F(AioEngineTest, ReadRunsAtMediaRate)
{
    // 6.6 GB read from a 3.3 GBps media: ~2 s.
    bool done = false;
    auto req = io(false, 6.6e9, 1);
    req.on_done = [&] { done = true; };
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(sim_.now(), 2.0, 0.01);
    EXPECT_EQ(aio_.completedCount(), 1u);
}

TEST_F(AioEngineTest, SmallWriteBurstsAtPcieRate)
{
    // 1 GB write fits the cache: runs at PCIe x4 (6.56 GBps) speed,
    // far faster than media.
    auto req = io(true, 1e9, 1);
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_LT(sim_.now(), 0.25);
    EXPECT_NEAR(classBytes(LinkClass::NvmeMedia), 0.0, 1.0);
}

TEST_F(AioEngineTest, LargeWriteSplitsCacheAndMedia)
{
    // 10 GB write: 1.5 GB burst + 8.5 GB sustained through media.
    auto req = io(true, 10e9, 1);
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_NEAR(classBytes(LinkClass::NvmeMedia), 8.5e9, 1e6);
    // Sustained part at 3.3 GBps dominates: ~2.6 s.
    EXPECT_NEAR(sim_.now(), 8.5 / 3.3, 0.1);
}

TEST_F(AioEngineTest, LocalIoAvoidsXgmiAndXbar)
{
    auto req = io(false, 2e9, 1);  // drives live on socket 1
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_DOUBLE_EQ(classBytes(LinkClass::Xgmi), 0.0);
    EXPECT_DOUBLE_EQ(classBytes(LinkClass::IodXbar), 0.0);
}

TEST_F(AioEngineTest, CrossSocketIoConsumesXgmiAndXbar)
{
    auto req = io(false, 2e9, 0);  // issue from socket 0
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_NEAR(classBytes(LinkClass::Xgmi), 2e9, 1e5);
    EXPECT_NEAR(classBytes(LinkClass::IodXbar), 2e9, 1e5);
}

TEST_F(AioEngineTest, ConcurrentIosShareMedia)
{
    int done = 0;
    for (int i = 0; i < 2; ++i) {
        auto req = io(false, 3.3e9, 1);
        req.on_done = [&] { ++done; };
        aio_.submit(0, std::move(req));
    }
    sim_.run();
    EXPECT_EQ(done, 2);
    // 6.6 GB total through one 3.3 GBps media: ~2 s.
    EXPECT_NEAR(sim_.now(), 2.0, 0.01);
}

TEST_F(AioEngineTest, SubmitLatencyApplied)
{
    auto req = io(false, 1.0, 1);  // tiny IO: latency dominates
    aio_.submit(0, std::move(req));
    sim_.run();
    EXPECT_GE(sim_.now(), aio_.config().submit_latency);
}

TEST_F(AioEngineTest, DeviceRegistryReusesState)
{
    NvmeDevice &a = aio_.device(0, 0);
    NvmeDevice &b = aio_.device(0, 0);
    EXPECT_EQ(&a, &b);
    NvmeDevice &c = aio_.device(0, 1);
    EXPECT_NE(&a, &c);
}

} // namespace
} // namespace dstrain
