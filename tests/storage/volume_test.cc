/**
 * @file
 * Tests for storage volumes: RAID0 striping and aggregate rates.
 */

#include <gtest/gtest.h>

#include "storage/volume.hh"

namespace dstrain {
namespace {

class VolumeTest : public testing::Test
{
  protected:
    VolumeTest()
        : cluster_(ClusterSpec{}), flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_), aio_(tm_)
    {
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
    AioEngine aio_;
};

TEST_F(VolumeTest, SingleDriveVolumePassesThrough)
{
    StorageVolume vol(aio_, 0, VolumeSpec{"nvme0", {0}});
    bool done = false;
    StorageIo io;
    io.write = false;
    io.bytes = 3.3e9;
    io.node = 0;
    io.socket = 1;
    io.on_done = [&] { done = true; };
    vol.io(std::move(io));
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(sim_.now(), 1.0, 0.01);
    EXPECT_DOUBLE_EQ(vol.aggregateMediaRate(), 3.3e9);
}

TEST_F(VolumeTest, Raid0DoublesReadBandwidth)
{
    StorageVolume vol(aio_, 0, VolumeSpec{"md0", {0, 1}});
    EXPECT_DOUBLE_EQ(vol.aggregateMediaRate(), 6.6e9);
    bool done = false;
    StorageIo io;
    io.write = false;
    io.bytes = 6.6e9;
    io.node = 0;
    io.socket = 1;
    io.on_done = [&] { done = true; };
    vol.io(std::move(io));
    sim_.run();
    EXPECT_TRUE(done);
    // Striped halves run in parallel: ~1 s instead of 2 s.
    EXPECT_NEAR(sim_.now(), 1.0, 0.01);
}

TEST_F(VolumeTest, StripeWaitsForSlowestMember)
{
    // One member on the remote socket gets a degraded PCIe path but
    // the same media; the volume completes when both halves land.
    ClusterSpec spec;
    spec.node.nvme_drives = {NvmeDriveSpec{0}, NvmeDriveSpec{1}};
    Simulation sim;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    TransferManager tm(sim, cluster, flows);
    AioEngine aio(tm);
    StorageVolume vol(aio, 0, VolumeSpec{"md0", {0, 1}});

    SimTime done_at = 0.0;
    StorageIo io;
    io.write = false;
    io.bytes = 6.6e9;
    io.node = 0;
    io.socket = 1;  // drive 0 (socket 0) is the remote member
    io.on_done = [&] { done_at = sim.now(); };
    vol.io(std::move(io));
    sim.run();
    // Remote member limited by the degraded PCIe x4 (2.94 GBps):
    // 3.3 GB / 2.94 GBps > the local member's 1.0 s.
    EXPECT_NEAR(done_at, 3.3 / 2.94, 0.05);
}

TEST_F(VolumeTest, DeathOnEmptyVolume)
{
    EXPECT_DEATH(StorageVolume(aio_, 0, VolumeSpec{"empty", {}}),
                 "no drives");
}

TEST_F(VolumeTest, DeathOnWrongNode)
{
    StorageVolume vol(aio_, 0, VolumeSpec{"nvme0", {0}});
    StorageIo io;
    io.write = false;
    io.bytes = 1.0;
    io.node = 1;
    io.socket = 0;
    EXPECT_DEATH(vol.io(std::move(io)), "node");
}

} // namespace
} // namespace dstrain
