/**
 * @file
 * Tests for the paper's NVMe placement configurations A-G
 * (Fig. 14).
 */

#include <gtest/gtest.h>

#include "storage/placement.hh"

namespace dstrain {
namespace {

TEST(PlacementTest, AllSevenExist)
{
    const auto all = allNvmePlacements();
    ASSERT_EQ(all.size(), 7u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].id, static_cast<char>('A' + i));
}

TEST(PlacementTest, DriveCountsMatchFig14)
{
    EXPECT_EQ(nvmePlacementConfig('A').drives.size(), 1u);
    EXPECT_EQ(nvmePlacementConfig('B').drives.size(), 2u);
    EXPECT_EQ(nvmePlacementConfig('C').drives.size(), 2u);
    EXPECT_EQ(nvmePlacementConfig('D').drives.size(), 2u);
    EXPECT_EQ(nvmePlacementConfig('E').drives.size(), 4u);
    EXPECT_EQ(nvmePlacementConfig('F').drives.size(), 4u);
    EXPECT_EQ(nvmePlacementConfig('G').drives.size(), 4u);
}

TEST(PlacementTest, VolumeGroupings)
{
    EXPECT_EQ(nvmePlacementConfig('B').volumes.size(), 1u);
    EXPECT_EQ(nvmePlacementConfig('D').volumes.size(), 2u);
    EXPECT_EQ(nvmePlacementConfig('E').volumes.size(), 1u);
    EXPECT_EQ(nvmePlacementConfig('F').volumes.size(), 2u);
    EXPECT_EQ(nvmePlacementConfig('G').volumes.size(), 4u);
    // E's single RAID0 spans all four drives.
    EXPECT_EQ(nvmePlacementConfig('E').volumes[0].drives.size(), 4u);
}

TEST(PlacementTest, SocketSpans)
{
    auto spans_sockets = [](const NvmePlacement &p,
                            const VolumeSpec &v) {
        int first = p.drives[static_cast<std::size_t>(
                                 v.drives.front())]
                        .socket;
        for (int d : v.drives)
            if (p.drives[static_cast<std::size_t>(d)].socket != first)
                return true;
        return false;
    };
    const auto b = nvmePlacementConfig('B');
    EXPECT_FALSE(spans_sockets(b, b.volumes[0]));
    const auto c = nvmePlacementConfig('C');
    EXPECT_TRUE(spans_sockets(c, c.volumes[0]));
    const auto e = nvmePlacementConfig('E');
    EXPECT_TRUE(spans_sockets(e, e.volumes[0]));
    const auto f = nvmePlacementConfig('F');
    EXPECT_FALSE(spans_sockets(f, f.volumes[0]));
    EXPECT_FALSE(spans_sockets(f, f.volumes[1]));
}

TEST(PlacementTest, RankMappingLocality)
{
    // D/F/G map each rank to a volume on its own socket.
    for (char id : {'D', 'F'}) {
        const auto p = nvmePlacementConfig(id);
        EXPECT_EQ(p.volumeForRank(0), 0) << id;
        EXPECT_EQ(p.volumeForRank(1), 0) << id;
        EXPECT_EQ(p.volumeForRank(2), 1) << id;
        EXPECT_EQ(p.volumeForRank(3), 1) << id;
    }
    const auto g = nvmePlacementConfig('G');
    for (int r = 0; r < 4; ++r)
        EXPECT_EQ(g.volumeForRank(r), r);
    // Wrap-around for hypothetical extra local ranks.
    EXPECT_EQ(g.volumeForRank(5), 1);
}

TEST(PlacementTest, ApplyInstallsDrives)
{
    NodeSpec spec;
    applyPlacement(nvmePlacementConfig('G'), spec);
    ASSERT_EQ(spec.nvme_drives.size(), 4u);
    EXPECT_EQ(spec.nvme_drives[0].socket, 0);
    EXPECT_EQ(spec.nvme_drives[3].socket, 1);
}

TEST(PlacementTest, ExtensionHEightLocalDrives)
{
    const auto h = nvmePlacementConfig('H');
    ASSERT_EQ(h.drives.size(), 8u);
    ASSERT_EQ(h.volumes.size(), 4u);
    for (const VolumeSpec &v : h.volumes) {
        ASSERT_EQ(v.drives.size(), 2u);
        // Each RAID0 pair is socket-local.
        EXPECT_EQ(h.drives[static_cast<std::size_t>(v.drives[0])].socket,
                  h.drives[static_cast<std::size_t>(v.drives[1])].socket);
    }
    // H is an extension: not part of the paper's A-G sweep.
    for (const NvmePlacement &p : allNvmePlacements())
        EXPECT_NE(p.id, 'H');
}

TEST(PlacementDeathTest, UnknownIdIsFatal)
{
    EXPECT_EXIT(nvmePlacementConfig('Z'), testing::ExitedWithCode(1),
                "unknown NVMe placement");
}

} // namespace
} // namespace dstrain
