/**
 * @file
 * Tests for the per-strategy memory footprints: partitioning
 * arithmetic, offload placement, and monotonicity properties.
 */

#include <gtest/gtest.h>

#include "memplan/footprint.hh"

namespace dstrain {
namespace {

const MemoryCalibration kCal;

MemoryFootprint
fp(const StrategyConfig &s, int layers, int gpus = 4, int nodes = 1)
{
    return computeFootprint(TransformerConfig::gpt2Like(layers), s,
                            gpus, nodes, 16, kCal);
}

TEST(FootprintTest, DdpHoldsEverythingPerGpu)
{
    const auto cfg = TransformerConfig::gpt2Like(26);
    const double p = static_cast<double>(cfg.parameterCount());
    const MemoryFootprint f = fp(StrategyConfig::ddp(), 26);
    // 16 bytes of states + 2 bytes of bucket + activations.
    EXPECT_GT(f.gpu_per_gpu, 18.0 * p);
    EXPECT_LT(f.gpu_per_gpu, 19.0 * p);
    EXPECT_DOUBLE_EQ(f.nvme_per_node, 0.0);
}

TEST(FootprintTest, HeterogeneousClusterSizedByWidestNode)
{
    // 2x4-GPU + 1x8-GPU nodes: 16 GPUs on 3 nodes does not divide
    // evenly, so the shape must come from the cluster spec — and the
    // per-node CPU share is sized for the 8-GPU node (the bound the
    // capacity solver checks against every node's budget).
    ClusterSpec cluster;
    NodeGroup small;
    small.count = 2;
    small.node.gpus = 4;
    NodeGroup big;
    big.count = 1;
    big.node.gpus = 8;
    cluster.groups = {small, big};
    ASSERT_EQ(cluster.totalGpus(), 16);

    const auto cfg = TransformerConfig::gpt2Like(26);
    const MemoryFootprint het = computeFootprint(
        cfg, StrategyConfig::zero(3), cluster, 16, kCal);
    ClusterSpec uniform;
    uniform.nodes = 2;
    uniform.node.gpus = 8;
    const MemoryFootprint wide = computeFootprint(
        cfg, StrategyConfig::zero(3), uniform, 16, kCal);
    // Same world size is not required for the CPU share: it tracks
    // the widest node's rank count.
    EXPECT_DOUBLE_EQ(het.cpu_per_node, wide.cpu_per_node);

    // Homogeneous spec: both overloads agree exactly.
    const MemoryFootprint by_ints = computeFootprint(
        cfg, StrategyConfig::zero(3), 16, 2, 16, kCal);
    EXPECT_DOUBLE_EQ(wide.gpu_per_gpu, by_ints.gpu_per_gpu);
    EXPECT_DOUBLE_EQ(wide.cpu_per_node, by_ints.cpu_per_node);
    EXPECT_DOUBLE_EQ(wide.nvme_per_node, by_ints.nvme_per_node);
}

TEST(FootprintTest, ZeroStagesShrinkPerGpuBytes)
{
    const int layers = 56;  // 2.9B
    const Bytes ddp = fp(StrategyConfig::ddp(), layers).gpu_per_gpu;
    const Bytes z1 = fp(StrategyConfig::zero(1), layers).gpu_per_gpu;
    const Bytes z2 = fp(StrategyConfig::zero(2), layers).gpu_per_gpu;
    const Bytes z3 = fp(StrategyConfig::zero(3), layers).gpu_per_gpu;
    EXPECT_GT(ddp, z1);
    EXPECT_GT(z1, z2);
    EXPECT_GT(z2, z3);
}

TEST(FootprintTest, ZeroScalesWithDataParallelDegree)
{
    const int layers = 56;
    const Bytes n4 =
        fp(StrategyConfig::zero(3), layers, 4, 1).gpu_per_gpu;
    const Bytes n8 =
        fp(StrategyConfig::zero(3), layers, 8, 2).gpu_per_gpu;
    EXPECT_GT(n4, n8);
}

TEST(FootprintTest, MegatronDividesStatesByModelParallel)
{
    const int layers = 56;
    const auto p = static_cast<double>(
        TransformerConfig::gpt2Like(layers).parameterCount());
    const Bytes mp4 =
        fp(StrategyConfig::megatron(4, 1), layers).gpu_per_gpu;
    // States: 16 P / 4 = 4 bytes/param plus the (heavy, calibrated)
    // Megatron activations.
    EXPECT_GT(mp4, 4.0 * p);
    EXPECT_LT(mp4, 8.0 * p);
}

TEST(FootprintTest, CpuOffloadMovesOptimizerToHost)
{
    const int layers = 56;
    const MemoryFootprint plain = fp(StrategyConfig::zero(2), layers);
    const MemoryFootprint off =
        fp(StrategyConfig::zeroOffloadCpu(2), layers);
    EXPECT_LT(off.gpu_per_gpu, plain.gpu_per_gpu);
    EXPECT_GT(off.cpu_per_node, plain.cpu_per_node);
    EXPECT_DOUBLE_EQ(off.nvme_per_node, 0.0);
}

TEST(FootprintTest, NvmeOffloadUsesAllThreeTiers)
{
    const int layers = 225;  // 11.4B
    const MemoryFootprint f =
        fp(StrategyConfig::zeroInfinityNvme(true), layers);
    EXPECT_GT(f.gpu_per_gpu, 0.0);
    EXPECT_GT(f.cpu_per_node, 0.0);
    EXPECT_GT(f.nvme_per_node, 0.0);
    // NVMe holds roughly the optimizer partition (+params).
    const auto p = static_cast<double>(
        TransformerConfig::gpt2Like(layers).parameterCount());
    EXPECT_GT(f.nvme_per_node, 10.0 * p);
}

TEST(FootprintTest, AggregateHelpers)
{
    MemoryFootprint f;
    f.gpu_per_gpu = 10.0;
    f.cpu_per_node = 100.0;
    f.nvme_per_node = 1000.0;
    EXPECT_DOUBLE_EQ(f.gpuTotal(4), 40.0);
    EXPECT_DOUBLE_EQ(f.cpuTotal(2), 200.0);
    EXPECT_DOUBLE_EQ(f.grandTotal(4, 2), 40.0 + 200.0 + 2000.0);
}

TEST(FootprintTest, GpuBudgetSubtractsOverheads)
{
    EXPECT_NEAR(kCal.gpuBudget(40.0 * units::GiB), 39.7e9, 0.1e9);
}

/** Property: footprints grow monotonically with depth. */
class FootprintMonotone : public testing::TestWithParam<int>
{
};

TEST_P(FootprintMonotone, GrowsWithLayers)
{
    const auto lineup = std::vector<StrategyConfig>{
        StrategyConfig::ddp(),
        StrategyConfig::megatron(4, 1),
        StrategyConfig::zero(1),
        StrategyConfig::zero(2),
        StrategyConfig::zero(3),
        StrategyConfig::zeroOffloadCpu(2),
        StrategyConfig::zeroInfinityNvme(true),
    };
    const StrategyConfig &s =
        lineup[static_cast<std::size_t>(GetParam())];
    Bytes prev_gpu = 0.0;
    Bytes prev_total = 0.0;
    for (int layers : {10, 20, 40, 80, 160, 320}) {
        const MemoryFootprint f = fp(s, layers);
        EXPECT_GE(f.gpu_per_gpu, prev_gpu) << layers;
        const Bytes total = f.grandTotal(4, 1);
        EXPECT_GE(total, prev_total) << layers;
        prev_gpu = f.gpu_per_gpu;
        prev_total = total;
    }
}

INSTANTIATE_TEST_SUITE_P(Strategies, FootprintMonotone,
                         testing::Range(0, 7));

} // namespace
} // namespace dstrain
