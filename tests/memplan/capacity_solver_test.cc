/**
 * @file
 * Tests for the capacity solver — including the headline
 * reproduction of paper Fig. 6's achieved model sizes.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "memplan/capacity_solver.hh"

namespace dstrain {
namespace {

TEST(CapacitySolverTest, PaperFig6SingleNode)
{
    const ClusterSpec cluster = xe8545Cluster(1);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::ddp(), cluster, 16).entry.billions,
        1.4);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(paperMegatron(1), cluster, 16).entry.billions,
        5.5);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(1), cluster, 16)
            .entry.billions,
        4.4);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(2), cluster, 16)
            .entry.billions,
        5.2);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(3), cluster, 16)
            .entry.billions,
        6.6);
}

TEST(CapacitySolverTest, PaperFig6DualNode)
{
    const ClusterSpec cluster = xe8545Cluster(2);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::ddp(), cluster, 16).entry.billions,
        1.4);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(paperMegatron(2), cluster, 16).entry.billions,
        11.4);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(1), cluster, 16)
            .entry.billions,
        6.4);
    // Known deviation: the paper reports 8.5 for dual-node ZeRO-2;
    // the memory model lands one rung lower (see EXPERIMENTS.md).
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(2), cluster, 16)
            .entry.billions,
        7.8);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zero(3), cluster, 16)
            .entry.billions,
        13.5);
}

TEST(CapacitySolverTest, PaperFig13Offload)
{
    const ClusterSpec cluster = xe8545Cluster(1);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zeroOffloadCpu(1), cluster, 16)
            .entry.billions,
        8.9);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zeroOffloadCpu(2), cluster, 16)
            .entry.billions,
        14.2);
    EXPECT_DOUBLE_EQ(
        solveMaxModel(StrategyConfig::zeroInfinityNvme(true), cluster,
                      16)
            .entry.billions,
        33.3);
}

TEST(CapacitySolverTest, FitsClusterConsistentWithSolve)
{
    const ClusterSpec cluster = xe8545Cluster(1);
    const CapacityResult r =
        solveMaxModel(StrategyConfig::zero(2), cluster, 16);
    EXPECT_TRUE(fitsCluster(TransformerConfig::gpt2Like(r.entry.layers),
                            StrategyConfig::zero(2), cluster, 16));
    EXPECT_FALSE(
        fitsCluster(TransformerConfig::gpt2Like(r.max_layers + 1),
                    StrategyConfig::zero(2), cluster, 16));
}

TEST(CapacitySolverTest, MoreGpuMemoryFitsMore)
{
    ClusterSpec small = xe8545Cluster(1);
    ClusterSpec big = xe8545Cluster(1);
    big.node.gpu_memory = 80.0 * units::GiB;
    EXPECT_GT(
        solveMaxModel(StrategyConfig::ddp(), big, 16).entry.billions,
        solveMaxModel(StrategyConfig::ddp(), small, 16).entry.billions);
}

TEST(CapacitySolverTest, BiggerBatchFitsLess)
{
    const ClusterSpec cluster = xe8545Cluster(1);
    const auto small_batch =
        solveMaxModel(StrategyConfig::zero(3), cluster, 16);
    const auto big_batch =
        solveMaxModel(StrategyConfig::zero(3), cluster, 256);
    EXPECT_LE(big_batch.max_layers, small_batch.max_layers);
}

TEST(CapacitySolverTest, HostMemoryCapsOffload)
{
    ClusterSpec cluster = xe8545Cluster(1);
    cluster.node.cpu_memory = 128.0 * units::GiB;
    const auto capped =
        solveMaxModel(StrategyConfig::zeroOffloadCpu(2), cluster, 16);
    EXPECT_LT(capped.entry.billions, 14.2);
}

TEST(CapacitySolverDeathTest, ImpossibleClusterIsFatal)
{
    ClusterSpec cluster = xe8545Cluster(1);
    cluster.node.gpu_memory = 1.0 * units::GiB;
    EXPECT_EXIT(solveMaxModel(StrategyConfig::ddp(), cluster, 16),
                testing::ExitedWithCode(1), "cannot fit");
}

} // namespace
} // namespace dstrain
