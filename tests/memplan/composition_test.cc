/**
 * @file
 * Tests for the memory-composition reports.
 */

#include <gtest/gtest.h>

#include "memplan/composition.hh"

namespace dstrain {
namespace {

TEST(CompositionTest, AggregatesOverCluster)
{
    MemoryFootprint f;
    f.gpu_per_gpu = 30e9;
    f.cpu_per_node = 300e9;
    f.nvme_per_node = 100e9;
    const MemoryComposition c = composeMemory("test", f, 8, 2);
    EXPECT_EQ(c.label, "test");
    EXPECT_DOUBLE_EQ(c.gpu, 240e9);
    EXPECT_DOUBLE_EQ(c.cpu, 600e9);
    EXPECT_DOUBLE_EQ(c.nvme, 200e9);
    EXPECT_DOUBLE_EQ(c.total(), 1040e9);
}

TEST(CompositionTest, SharesSumToOne)
{
    MemoryFootprint f;
    f.gpu_per_gpu = 10e9;
    f.cpu_per_node = 50e9;
    f.nvme_per_node = 15e9;
    const MemoryComposition c = composeMemory("x", f, 4, 1);
    EXPECT_NEAR(c.gpuShare() + c.cpuShare() + c.nvmeShare(), 1.0,
                1e-12);
}

TEST(CompositionTest, EmptyCompositionHasZeroShares)
{
    const MemoryComposition c;
    EXPECT_DOUBLE_EQ(c.gpuShare(), 0.0);
    EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(CompositionTest, CellFormat)
{
    EXPECT_EQ(compositionCell(127e9, 0.265), "127 GB (26.5%)");
}

} // namespace
} // namespace dstrain
