/**
 * @file
 * Tests for the Table IV-style summary rendering.
 */

#include <gtest/gtest.h>

#include "telemetry/summary.hh"

namespace dstrain {
namespace {

TEST(SummaryTest, TableHasThreeColumnsPerClass)
{
    TextTable table = makeBandwidthTable();
    BandwidthRow row;
    row.config = "test";
    row.per_class.resize(tableIvClasses().size());
    row.per_class[0] = BandwidthSummary{1.5e9, 2.5e9, 3.5e9};
    addBandwidthRow(table, row);
    const std::string out = table.render();
    EXPECT_NE(out.find("DRAM avg"), std::string::npos);
    EXPECT_NE(out.find("RoCE peak"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("3.50"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 1u);
}

TEST(SummaryTest, MeasureRowCoversAllClasses)
{
    Topology topo;
    ComponentId a =
        topo.addComponent(ComponentKind::CpuIod, "a", 0, 0, 0);
    ComponentId b = topo.addComponent(ComponentKind::Gpu, "b", 0, 0, 0);
    auto [fwd, rev] = topo.addDuplexLink(LinkClass::PcieGpu, 32e9, a, b,
                                         PortKind::SerDes,
                                         PortKind::Device, 0.0, "l");
    (void)rev;
    topo.resource(fwd).log.setRate(0.0, 10e9);
    topo.finalizeLogs(1.0);

    const BandwidthRow row =
        measureBandwidthRow("cfg", topo, 0.0, 1.0, 0.1);
    EXPECT_EQ(row.config, "cfg");
    ASSERT_EQ(row.per_class.size(), tableIvClasses().size());
    // PCIe-GPU is index 2 in the table order.
    EXPECT_NEAR(row.per_class[2].avg, 10e9, 1e3);
    EXPECT_DOUBLE_EQ(row.per_class[0].avg, 0.0);
}

} // namespace
} // namespace dstrain
