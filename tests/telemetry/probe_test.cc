/**
 * @file
 * Tests for the per-class bandwidth probes.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "telemetry/probe.hh"

namespace dstrain {
namespace {

TEST(ProbeTest, TableIvClassOrder)
{
    const auto &classes = tableIvClasses();
    ASSERT_EQ(classes.size(), 7u);
    EXPECT_EQ(classes.front(), LinkClass::Dram);
    EXPECT_EQ(classes.back(), LinkClass::Roce);
}

TEST(ProbeTest, AggregatesBothDirections)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    // Opposite-direction flows on the same NVLink pair.
    for (int dir = 0; dir < 2; ++dir) {
        FlowSpec spec;
        spec.route = cluster.router().route(
            cluster.gpuByRank(dir), cluster.gpuByRank(1 - dir));
        spec.bytes = 80e9;
        flows.start(std::move(spec));
    }
    sim.run();
    flows.finalizeLogs();
    const BandwidthSeries s = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.1);
    // 2 x 80 GBps while active: bidirectional sum.
    EXPECT_NEAR(s.summary().peak, 160e9, 1e6);
}

TEST(ProbeTest, PerNodeDivisionForMultiNode)
{
    Simulation sim;
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    // Symmetric flows: one NVLink flow in each node.
    for (int node = 0; node < 2; ++node) {
        FlowSpec fs;
        fs.route = cluster.router().route(
            cluster.gpuByRank(node * 4), cluster.gpuByRank(node * 4 + 1));
        fs.bytes = 8e9;
        flows.start(std::move(fs));
    }
    sim.run();
    flows.finalizeLogs();
    // Per-node view: each node carried 80 GBps, not 160.
    const BandwidthSeries all = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.01);
    EXPECT_NEAR(all.summary().peak, 80e9, 1e6);
    // Single-node view matches.
    const BandwidthSeries n0 = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.01,
        0);
    EXPECT_NEAR(n0.summary().peak, 80e9, 1e6);
}

TEST(ProbeTest, QuietClassesReadZero)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    FlowSpec fs;
    fs.route = cluster.router().route(cluster.gpuByRank(0),
                                      cluster.gpuByRank(1));
    fs.bytes = 1e9;
    flows.start(std::move(fs));
    sim.run();
    flows.finalizeLogs();
    const BandwidthSummary dram = summarizeClassBandwidth(
        cluster.topology(), LinkClass::Dram, 0.0, sim.now());
    EXPECT_DOUBLE_EQ(dram.avg, 0.0);
    EXPECT_DOUBLE_EQ(dram.peak, 0.0);
}

} // namespace
} // namespace dstrain
