/**
 * @file
 * Tests for the per-class bandwidth probes.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "telemetry/probe.hh"

namespace dstrain {
namespace {

TEST(ProbeTest, TableIvClassOrder)
{
    const auto &classes = tableIvClasses();
    ASSERT_EQ(classes.size(), 7u);
    EXPECT_EQ(classes.front(), LinkClass::Dram);
    EXPECT_EQ(classes.back(), LinkClass::Roce);
}

TEST(ProbeTest, AggregatesBothDirections)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    // Opposite-direction flows on the same NVLink pair.
    for (int dir = 0; dir < 2; ++dir) {
        FlowSpec spec;
        spec.route = cluster.router().route(
            cluster.gpuByRank(dir), cluster.gpuByRank(1 - dir));
        spec.bytes = 80e9;
        flows.start(std::move(spec));
    }
    sim.run();
    flows.finalizeLogs();
    const BandwidthSeries s = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.1);
    // 2 x 80 GBps while active: bidirectional sum.
    EXPECT_NEAR(s.summary().peak, 160e9, 1e6);
}

TEST(ProbeTest, PerNodeDivisionForMultiNode)
{
    Simulation sim;
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    // Symmetric flows: one NVLink flow in each node.
    for (int node = 0; node < 2; ++node) {
        FlowSpec fs;
        fs.route = cluster.router().route(
            cluster.gpuByRank(node * 4), cluster.gpuByRank(node * 4 + 1));
        fs.bytes = 8e9;
        flows.start(std::move(fs));
    }
    sim.run();
    flows.finalizeLogs();
    // Per-node view: each node carried 80 GBps, not 160.
    const BandwidthSeries all = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.01);
    EXPECT_NEAR(all.summary().peak, 80e9, 1e6);
    // Single-node view matches.
    const BandwidthSeries n0 = probeClassBandwidth(
        cluster.topology(), LinkClass::NvLink, 0.0, sim.now(), 0.01,
        0);
    EXPECT_NEAR(n0.summary().peak, 80e9, 1e6);
}

TEST(ProbeTest, QuietClassesReadZero)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    FlowSpec fs;
    fs.route = cluster.router().route(cluster.gpuByRank(0),
                                      cluster.gpuByRank(1));
    fs.bytes = 1e9;
    flows.start(std::move(fs));
    sim.run();
    flows.finalizeLogs();
    const BandwidthSummary dram = summarizeClassBandwidth(
        cluster.topology(), LinkClass::Dram, 0.0, sim.now());
    EXPECT_DOUBLE_EQ(dram.avg, 0.0);
    EXPECT_DOUBLE_EQ(dram.peak, 0.0);
}

/** Start the AggregatesBothDirections flow pattern on @p cluster. */
void
runOppositeNvLinkFlows(Simulation &sim, Cluster &cluster,
                       FlowScheduler &flows)
{
    for (int dir = 0; dir < 2; ++dir) {
        FlowSpec spec;
        spec.route = cluster.router().route(
            cluster.gpuByRank(dir), cluster.gpuByRank(1 - dir));
        spec.bytes = 80e9;
        flows.start(std::move(spec));
    }
    sim.run();
    flows.finalizeLogs();
}

TEST(ProbeTest, ProbeAllClassesMatchesPerClassProbes)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    runOppositeNvLinkFlows(sim, cluster, flows);

    const std::vector<BandwidthSeries> all = probeAllClasses(
        cluster.topology(), 0.0, sim.now(), 0.1);
    const auto &classes = tableIvClasses();
    ASSERT_EQ(all.size(), classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c) {
        const BandwidthSeries one = probeClassBandwidth(
            cluster.topology(), classes[c], 0.0, sim.now(), 0.1);
        ASSERT_EQ(all[c].values.size(), one.values.size())
            << linkClassName(classes[c]);
        for (std::size_t b = 0; b < one.values.size(); ++b) {
            EXPECT_EQ(all[c].values[b], one.values[b])
                << linkClassName(classes[c]) << " bucket " << b;
        }
    }
}

TEST(ProbeTest, StreamedProbeMatchesSegmentSweep)
{
    // Two identical simulations: A streams into online buckets with
    // retention off; B keeps segments and sweeps them at probe time.
    // The published series must be bitwise identical.
    Simulation sim_a;
    Cluster cluster_a{ClusterSpec{}};
    cluster_a.topology().setRetainSegments(false);
    cluster_a.topology().armStreams(0.0, 0.1);
    FlowScheduler flows_a(sim_a, cluster_a.topology());
    runOppositeNvLinkFlows(sim_a, cluster_a, flows_a);

    Simulation sim_b;
    Cluster cluster_b{ClusterSpec{}};
    FlowScheduler flows_b(sim_b, cluster_b.topology());
    runOppositeNvLinkFlows(sim_b, cluster_b, flows_b);
    ASSERT_EQ(sim_a.now(), sim_b.now());

    const std::vector<BandwidthSeries> streamed = probeAllClasses(
        cluster_a.topology(), 0.0, sim_a.now(), 0.1);
    const std::vector<BandwidthSeries> swept = probeAllClasses(
        cluster_b.topology(), 0.0, sim_b.now(), 0.1);
    ASSERT_EQ(streamed.size(), swept.size());
    for (std::size_t c = 0; c < swept.size(); ++c) {
        ASSERT_EQ(streamed[c].values.size(), swept[c].values.size());
        for (std::size_t b = 0; b < swept[c].values.size(); ++b)
            EXPECT_EQ(streamed[c].values[b], swept[c].values[b]);
    }

    const TelemetryStats stats = cluster_a.topology().telemetryStats();
    EXPECT_EQ(stats.segments_retained, 0u);
    EXPECT_GT(stats.buckets_touched, 0u);
    EXPECT_GT(cluster_b.topology().telemetryStats().segments_retained,
              0u);
}

} // namespace
} // namespace dstrain
