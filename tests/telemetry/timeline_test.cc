/**
 * @file
 * Tests for the ASCII timeline renderer.
 */

#include <gtest/gtest.h>

#include "telemetry/timeline.hh"

namespace dstrain {
namespace {

TaskSpan
span(int rank, TaskKind kind, ComputePhase phase, SimTime b, SimTime e)
{
    TaskSpan s;
    s.rank = rank;
    s.kind = kind;
    s.phase = phase;
    s.begin = b;
    s.end = e;
    return s;
}

TEST(TimelineTest, Glyphs)
{
    EXPECT_EQ(phaseGlyph(ComputePhase::Forward), 'F');
    EXPECT_EQ(phaseGlyph(ComputePhase::Backward), 'B');
    EXPECT_EQ(phaseGlyph(ComputePhase::Optimizer), 'O');
    EXPECT_EQ(phaseGlyph(ComputePhase::Communication), 'C');
    EXPECT_EQ(phaseGlyph(ComputePhase::Io), 'I');
    EXPECT_EQ(phaseGlyph(ComputePhase::Idle), '.');
}

TEST(TimelineTest, RendersRowsPerRankPlusHost)
{
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 0.0, 0.5),
        span(1, TaskKind::GpuCompute, ComputePhase::Backward, 0.5,
             1.0),
        span(-1, TaskKind::CpuOptimizer, ComputePhase::Optimizer, 0.0,
             1.0),
    };
    TimelineOptions opts;
    opts.width = 10;
    const std::string out = renderTimeline(spans, 2, 0.0, 1.0, opts);
    // gpu0 forward in the first half, gpu1 backward in the second.
    EXPECT_NE(out.find("gpu0  |FFFFF"), std::string::npos);
    EXPECT_NE(out.find("BBBBB|"), std::string::npos);
    EXPECT_NE(out.find("host  |OOOOOOOOOO|"), std::string::npos);
}

TEST(TimelineTest, ComputeWinsOverCommInOverlap)
{
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::Collective, ComputePhase::Communication, 0.0,
             1.0),
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 0.0, 1.0),
    };
    TimelineOptions opts;
    opts.width = 4;
    const std::string out = renderTimeline(spans, 1, 0.0, 1.0, opts);
    EXPECT_NE(out.find("|FFFF|"), std::string::npos);
}

TEST(TimelineTest, SpansOutsideWindowIgnored)
{
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 2.0, 3.0),
    };
    TimelineOptions opts;
    opts.width = 4;
    opts.include_host = false;
    const std::string out = renderTimeline(spans, 1, 0.0, 1.0, opts);
    EXPECT_NE(out.find("|....|"), std::string::npos);
}

TEST(TimelineTest, SpanEndingOnSlotBoundaryPaintsOneSlot)
{
    // A span exactly one slot wide, ending exactly on a slot
    // boundary: it must paint only its own slot, not also the slot
    // that starts at its end time.
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 1.0, 2.0),
    };
    TimelineOptions opts;
    opts.width = 4;
    opts.include_host = false;
    const std::string out = renderTimeline(spans, 1, 0.0, 4.0, opts);
    EXPECT_NE(out.find("|.F..|"), std::string::npos) << out;
}

TEST(TimelineDeathTest, BadWindowRejected)
{
    EXPECT_DEATH(renderTimeline({}, 1, 1.0, 1.0), "empty timeline");
}

} // namespace
} // namespace dstrain
