/**
 * @file
 * Tests for the rate-log bucketing.
 */

#include <gtest/gtest.h>

#include "telemetry/series.hh"

namespace dstrain {
namespace {

TEST(SeriesTest, ConstantRateFillsBuckets)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.finalize(1.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 0.0, 1.0, 0.25);
    ASSERT_EQ(s.values.size(), 4u);
    for (double v : s.values)
        EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(SeriesTest, PartialOverlapWeighted)
{
    RateLog log;
    log.setRate(0.0, 0.0);
    log.setRate(0.5, 20.0);  // active only in the second half
    log.finalize(1.0);
    const BandwidthSeries s = bucketizeRateLogs({&log}, 0.0, 1.0, 1.0);
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_DOUBLE_EQ(s.values[0], 10.0);  // time-weighted average
}

TEST(SeriesTest, MultipleLogsSum)
{
    RateLog a;
    a.setRate(0.0, 3.0);
    a.finalize(1.0);
    RateLog b;
    b.setRate(0.0, 4.0);
    b.finalize(1.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&a, &b}, 0.0, 1.0, 0.5);
    for (double v : s.values)
        EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(SeriesTest, WindowClipsHistory)
{
    RateLog log;
    log.setRate(0.0, 8.0);
    log.finalize(10.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 4.0, 6.0, 1.0);
    ASSERT_EQ(s.values.size(), 2u);
    EXPECT_DOUBLE_EQ(s.values[0], 8.0);
    EXPECT_DOUBLE_EQ(s.values[1], 8.0);
}

TEST(SeriesTest, SummaryMatchesSamples)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(1.0, 30.0);
    log.finalize(2.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 0.0, 2.0, 1.0);
    const BandwidthSummary sum = s.summary();
    EXPECT_DOUBLE_EQ(sum.avg, 20.0);
    EXPECT_DOUBLE_EQ(sum.peak, 30.0);
}

TEST(SeriesTest, BytesConservedAcrossBucketSizes)
{
    RateLog log;
    log.setRate(0.0, 5.0);
    log.setRate(0.7, 15.0);
    log.setRate(1.3, 2.0);
    log.finalize(3.0);
    for (SimTime bucket : {0.1, 0.25, 0.5, 1.0}) {
        const BandwidthSeries s =
            bucketizeRateLogs({&log}, 0.0, 3.0, bucket);
        double integrated = 0.0;
        for (double v : s.values)
            integrated += v * bucket;
        EXPECT_NEAR(integrated, log.totalBytes(), 1e-9) << bucket;
    }
}

/** One rate change in the oracle replay below. */
struct Change {
    SimTime t;
    Bps rate;
};

/**
 * Replay the same rate sequence into a retained log (legacy segment
 * sweep) and a streamed log (online accumulator armed on the probe
 * grid), then demand the two series be bitwise identical. This is
 * the oracle for the streaming engine's exact partial-bucket carry.
 */
void
expectStreamMatchesSweep(const std::vector<Change> &changes,
                         SimTime finalize_at, SimTime begin,
                         SimTime end, SimTime bucket)
{
    RateLog retained;
    RateLog streamed;
    streamed.setRetainSegments(false);
    streamed.armStream(begin, bucket);
    for (const Change &c : changes) {
        retained.setRate(c.t, c.rate);
        streamed.setRate(c.t, c.rate);
    }
    retained.finalize(finalize_at);
    streamed.finalize(finalize_at);
    ASSERT_TRUE(streamed.streamCovers(begin, end, bucket));

    const BandwidthSeries sweep =
        bucketizeRateLogs({&retained}, begin, end, bucket);
    const BandwidthSeries stream =
        sumStreamedBuckets({&streamed}, begin, end, bucket);
    ASSERT_EQ(stream.values.size(), sweep.values.size());
    for (std::size_t b = 0; b < sweep.values.size(); ++b)
        EXPECT_EQ(stream.values[b], sweep.values[b]) << b;
}

TEST(StreamSeriesTest, SegmentStraddlingWindowStart)
{
    // History begins before the armed window; legacy clips the
    // straddling segment, streaming clips in fold(). Note the
    // streamed log is armed at 0.35 but the rate opened at 0.0 —
    // legacy sees the full segment and clips it to the window.
    expectStreamMatchesSweep({{0.0, 5.0}, {0.8, 2.0}}, 1.15, 0.35,
                             1.15, 0.2);
}

TEST(StreamSeriesTest, SegmentEndingExactlyAtWindowEnd)
{
    expectStreamMatchesSweep({{0.0, 4.0}, {0.5, 9.0}}, 1.0, 0.0, 1.0,
                             0.25);
}

TEST(StreamSeriesTest, RateZeroGapsSkipped)
{
    expectStreamMatchesSweep(
        {{0.0, 10.0}, {0.3, 0.0}, {0.55, 6.0}, {0.8, 0.0}}, 1.2, 0.0,
        1.2, 0.1);
}

TEST(StreamSeriesTest, BucketNotDividingWindow)
{
    // 1.0 / 0.3 is not integral: the last bucket is partial on the
    // grid, and ceil() decides the bucket count in both paths.
    expectStreamMatchesSweep({{0.0, 7.0}, {0.45, 12.0}}, 1.0, 0.0,
                             1.0, 0.3);
}

TEST(StreamSeriesTest, MidBucketPartialCarry)
{
    // Several changes inside one bucket exercise the exact
    // partial-bucket carry (each change deposits its fraction).
    expectStreamMatchesSweep(
        {{0.0, 3.0}, {0.12, 8.0}, {0.31, 1.0}, {0.33, 20.0}}, 0.5,
        0.0, 0.5, 0.5);
}

TEST(StreamSeriesTest, MultiLogSumsBitIdentical)
{
    RateLog ra, rb, sa, sb;
    for (RateLog *log : {&sa, &sb}) {
        log->setRetainSegments(false);
        log->armStream(0.0, 0.25);
    }
    for (RateLog *log : {&ra, &sa}) {
        log->setRate(0.0, 3.125);
        log->setRate(0.4, 11.5);
        log->finalize(1.0);
    }
    for (RateLog *log : {&rb, &sb}) {
        log->setRate(0.1, 0.7);
        log->setRate(0.6, 0.0);
        log->finalize(1.0);
    }
    const BandwidthSeries sweep =
        bucketizeRateLogs({&ra, &rb}, 0.0, 1.0, 0.25);
    const BandwidthSeries stream =
        sumStreamedBuckets({&sa, &sb}, 0.0, 1.0, 0.25);
    ASSERT_EQ(stream.values.size(), sweep.values.size());
    for (std::size_t b = 0; b < sweep.values.size(); ++b)
        EXPECT_EQ(stream.values[b], sweep.values[b]) << b;
}

TEST(StreamSeriesTest, StreamCoverageGuard)
{
    RateLog log;
    log.setRetainSegments(false);
    log.armStream(0.0, 0.1);
    log.setRate(0.0, 5.0);
    log.finalize(2.0);
    EXPECT_TRUE(log.streamCovers(0.0, 2.0, 0.1));
    // History extends past the requested end: the accumulator folded
    // [1,2) into the grid, so a [0,1) probe cannot reuse it.
    EXPECT_FALSE(log.streamCovers(0.0, 1.0, 0.1));
    // Mismatched grid (different bucket or origin).
    EXPECT_FALSE(log.streamCovers(0.0, 2.0, 0.2));
    EXPECT_FALSE(log.streamCovers(0.1, 2.0, 0.1));
}

TEST(SeriesDeathTest, BadWindowRejected)
{
    RateLog log;
    EXPECT_DEATH(bucketizeRateLogs({&log}, 1.0, 1.0, 0.1),
                 "empty telemetry window");
    EXPECT_DEATH(bucketizeRateLogs({&log}, 0.0, 1.0, 0.0), "bucket");
}

} // namespace
} // namespace dstrain
