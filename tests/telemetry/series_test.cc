/**
 * @file
 * Tests for the rate-log bucketing.
 */

#include <gtest/gtest.h>

#include "telemetry/series.hh"

namespace dstrain {
namespace {

TEST(SeriesTest, ConstantRateFillsBuckets)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.finalize(1.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 0.0, 1.0, 0.25);
    ASSERT_EQ(s.values.size(), 4u);
    for (double v : s.values)
        EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(SeriesTest, PartialOverlapWeighted)
{
    RateLog log;
    log.setRate(0.0, 0.0);
    log.setRate(0.5, 20.0);  // active only in the second half
    log.finalize(1.0);
    const BandwidthSeries s = bucketizeRateLogs({&log}, 0.0, 1.0, 1.0);
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_DOUBLE_EQ(s.values[0], 10.0);  // time-weighted average
}

TEST(SeriesTest, MultipleLogsSum)
{
    RateLog a;
    a.setRate(0.0, 3.0);
    a.finalize(1.0);
    RateLog b;
    b.setRate(0.0, 4.0);
    b.finalize(1.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&a, &b}, 0.0, 1.0, 0.5);
    for (double v : s.values)
        EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(SeriesTest, WindowClipsHistory)
{
    RateLog log;
    log.setRate(0.0, 8.0);
    log.finalize(10.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 4.0, 6.0, 1.0);
    ASSERT_EQ(s.values.size(), 2u);
    EXPECT_DOUBLE_EQ(s.values[0], 8.0);
    EXPECT_DOUBLE_EQ(s.values[1], 8.0);
}

TEST(SeriesTest, SummaryMatchesSamples)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(1.0, 30.0);
    log.finalize(2.0);
    const BandwidthSeries s =
        bucketizeRateLogs({&log}, 0.0, 2.0, 1.0);
    const BandwidthSummary sum = s.summary();
    EXPECT_DOUBLE_EQ(sum.avg, 20.0);
    EXPECT_DOUBLE_EQ(sum.peak, 30.0);
}

TEST(SeriesTest, BytesConservedAcrossBucketSizes)
{
    RateLog log;
    log.setRate(0.0, 5.0);
    log.setRate(0.7, 15.0);
    log.setRate(1.3, 2.0);
    log.finalize(3.0);
    for (SimTime bucket : {0.1, 0.25, 0.5, 1.0}) {
        const BandwidthSeries s =
            bucketizeRateLogs({&log}, 0.0, 3.0, bucket);
        double integrated = 0.0;
        for (double v : s.values)
            integrated += v * bucket;
        EXPECT_NEAR(integrated, log.totalBytes(), 1e-9) << bucket;
    }
}

TEST(SeriesDeathTest, BadWindowRejected)
{
    RateLog log;
    EXPECT_DEATH(bucketizeRateLogs({&log}, 1.0, 1.0, 0.1),
                 "empty telemetry window");
    EXPECT_DEATH(bucketizeRateLogs({&log}, 0.0, 1.0, 0.0), "bucket");
}

} // namespace
} // namespace dstrain
