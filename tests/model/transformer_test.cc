/**
 * @file
 * Tests for the transformer parameter accounting.
 */

#include <gtest/gtest.h>

#include "model/transformer.hh"

namespace dstrain {
namespace {

TEST(TransformerTest, PaperArchitectureDefaults)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(24);
    EXPECT_EQ(cfg.layers, 24);
    EXPECT_EQ(cfg.hidden, 2048);
    EXPECT_EQ(cfg.heads, 16);
    EXPECT_EQ(cfg.seq_len, 256);
    EXPECT_EQ(cfg.max_pos, 1024);
    EXPECT_EQ(cfg.vocab, 50257);
}

TEST(TransformerTest, LayerParameterFormula)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(1);
    const std::int64_t h = 2048;
    EXPECT_EQ(cfg.layerParameterCount(), 12 * h * h + 13 * h);
    EXPECT_EQ(cfg.embeddingParameterCount(),
              50257 * h + 1024 * h + 2 * h);
}

TEST(TransformerTest, TotalIsLinearInLayers)
{
    const auto one = TransformerConfig::gpt2Like(1).parameterCount();
    const auto two = TransformerConfig::gpt2Like(2).parameterCount();
    const auto ten = TransformerConfig::gpt2Like(10).parameterCount();
    const std::int64_t per_layer = two - one;
    EXPECT_EQ(ten, one + 9 * per_layer);
}

TEST(TransformerTest, PaperSizesRealizable)
{
    // 26 layers is ~1.4 B parameters (the paper's DDP maximum).
    const auto p = TransformerConfig::gpt2Like(26).parameterCount();
    EXPECT_NEAR(static_cast<double>(p), 1.4e9, 0.05e9);
}

TEST(LayersForTargetTest, InvertsParameterCount)
{
    for (int layers : {1, 5, 26, 107, 659}) {
        const auto params =
            TransformerConfig::gpt2Like(layers).parameterCount();
        EXPECT_EQ(layersForParameterTarget(params), layers);
    }
}

TEST(LayersForTargetTest, RoundsToNearest)
{
    const auto p26 = TransformerConfig::gpt2Like(26).parameterCount();
    EXPECT_EQ(layersForParameterTarget(p26 + 1000), 26);
}

TEST(TransformerDeathTest, RejectsNonPositiveLayers)
{
    EXPECT_DEATH(TransformerConfig::gpt2Like(0), "at least one layer");
}

TEST(LayersForTargetDeathTest, RejectsTinyTargets)
{
    EXPECT_EXIT(layersForParameterTarget(1000),
                testing::KilledBySignal(SIGABRT), "below");
}

} // namespace
} // namespace dstrain
