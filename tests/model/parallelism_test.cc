/**
 * @file
 * Tests for the strategy configuration and its Table I validation
 * rules.
 */

#include <gtest/gtest.h>

#include "model/parallelism.hh"

namespace dstrain {
namespace {

TEST(StrategyConfigTest, FactoriesAndNames)
{
    EXPECT_EQ(StrategyConfig::ddp().displayName(), "DDP");
    EXPECT_EQ(StrategyConfig::zero(2).displayName(), "ZeRO-2");
    EXPECT_EQ(StrategyConfig::zeroOffloadCpu(3).displayName(),
              "ZeRO-3 (CPU)");
    EXPECT_EQ(StrategyConfig::zeroInfinityNvme(false).displayName(),
              "ZeRO-3 (NVME opt)");
    EXPECT_EQ(StrategyConfig::zeroInfinityNvme(true).displayName(),
              "ZeRO-3 (NVME opt+param)");
    EXPECT_EQ(StrategyConfig::megatron(4, 2).displayName(),
              "Megatron-LM (TP=4,PP=2)");
}

TEST(StrategyConfigTest, ModelParallelSizes)
{
    EXPECT_EQ(StrategyConfig::ddp().modelParallelSize(), 1);
    EXPECT_EQ(StrategyConfig::megatron(4, 2).modelParallelSize(), 8);
    EXPECT_EQ(StrategyConfig::megatron(4, 1).dataParallelSize(8), 2);
    EXPECT_EQ(StrategyConfig::zero(3).dataParallelSize(8), 8);
}

TEST(StrategyConfigDeathTest, BadDegreeSplit)
{
    EXPECT_DEATH(StrategyConfig::megatron(3, 1).dataParallelSize(8),
                 "divisible");
}

TEST(ValidateStrategyTest, TableOneRules)
{
    // Legal: every ZeRO stage with CPU offload; ZeRO-3 with NVMe.
    validateStrategy(StrategyConfig::zeroOffloadCpu(1));
    validateStrategy(StrategyConfig::zeroOffloadCpu(2));
    validateStrategy(StrategyConfig::zeroInfinityNvme(true));
    validateStrategy(StrategyConfig::megatron(8, 1));
    SUCCEED();
}

TEST(ValidateStrategyDeathTest, IllegalCombinations)
{
    StrategyConfig ddp_offload = StrategyConfig::ddp();
    ddp_offload.offload = OffloadTarget::Cpu;
    EXPECT_EXIT(validateStrategy(ddp_offload),
                testing::ExitedWithCode(1), "does not support");

    StrategyConfig z1_nvme = StrategyConfig::zero(1);
    z1_nvme.offload = OffloadTarget::Nvme;
    EXPECT_EXIT(validateStrategy(z1_nvme), testing::ExitedWithCode(1),
                "requires ZeRO-3");

    StrategyConfig params_no_target = StrategyConfig::zero(3);
    params_no_target.offload_params = true;
    EXPECT_EXIT(validateStrategy(params_no_target),
                testing::ExitedWithCode(1), "offload target");

    StrategyConfig tp_on_ddp = StrategyConfig::ddp();
    tp_on_ddp.tensor_parallel = 2;
    EXPECT_EXIT(validateStrategy(tp_on_ddp),
                testing::ExitedWithCode(1),
                "Megatron-LM, hybrid ZeRO-1/2 or the 3D hybrid");
}

TEST(StrategyConfigDeathTest, BadStageIsFatal)
{
    EXPECT_EXIT(StrategyConfig::zero(4), testing::ExitedWithCode(1),
                "stage");
}

} // namespace
} // namespace dstrain
