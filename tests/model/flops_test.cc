/**
 * @file
 * Tests for the FLOP accounting against the 2*P*T rule of thumb and
 * the DeepSpeed profiler convention.
 */

#include <gtest/gtest.h>

#include "model/flops.hh"

namespace dstrain {
namespace {

TEST(FlopsTest, ForwardApproximatelyTwoPT)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(26);
    const std::int64_t tokens = 4096;
    const Flops fwd = forwardFlops(cfg, tokens);
    const double two_pt =
        2.0 * static_cast<double>(cfg.parameterCount()) * tokens;
    // The matmul count tracks 2*P*T within ~10% (embeddings don't
    // matmul; attention adds the s*h term).
    EXPECT_NEAR(fwd / two_pt, 1.0, 0.1);
}

TEST(FlopsTest, IterationMultipliers)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(12);
    const Flops fwd = forwardFlops(cfg, 1000);
    EXPECT_DOUBLE_EQ(iterationFlops(cfg, 1000, false), 3.0 * fwd);
    EXPECT_DOUBLE_EQ(iterationFlops(cfg, 1000, true), 4.0 * fwd);
}

TEST(FlopsTest, LinearInTokens)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(12);
    EXPECT_DOUBLE_EQ(forwardFlops(cfg, 2000),
                     2.0 * forwardFlops(cfg, 1000));
}

TEST(FlopsTest, AchievedTflopsConvention)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(26);
    const std::int64_t tokens = 16384;
    const SimTime iter = 0.419;
    // DDP @1.4B at the paper's numbers lands near 438 TFLOP/s.
    EXPECT_NEAR(achievedTflops(cfg, tokens, iter), 438.0, 25.0);
}

TEST(FlopsDeathTest, RejectsBadInputs)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(1);
    EXPECT_DEATH(forwardFlops(cfg, 0), "positive token");
    EXPECT_DEATH(achievedTflops(cfg, 100, 0.0), "iteration time");
}

} // namespace
} // namespace dstrain
