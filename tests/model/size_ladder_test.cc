/**
 * @file
 * Tests for the paper's model-size ladder.
 */

#include <gtest/gtest.h>

#include "model/size_ladder.hh"

namespace dstrain {
namespace {

TEST(SizeLadderTest, AscendingAndAccurate)
{
    const auto &ladder = paperSizeLadder();
    ASSERT_GE(ladder.size(), 15u);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GT(ladder[i].billions, ladder[i - 1].billions);
        EXPECT_GT(ladder[i].layers, ladder[i - 1].layers);
    }
    for (const LadderEntry &e : ladder) {
        // Each rung realizes its nominal size within 5%.
        EXPECT_NEAR(static_cast<double>(e.params), e.billions * 1e9,
                    0.05 * e.billions * 1e9)
            << e.billions;
    }
}

TEST(SizeLadderTest, ContainsThePaperHeadlineSizes)
{
    for (double b : {1.4, 5.5, 6.6, 11.4, 13.5, 14.2, 33.3}) {
        const LadderEntry &e = ladderEntryFor(b);
        EXPECT_DOUBLE_EQ(e.billions, b);
    }
}

TEST(SizeLadderTest, NearestSnapping)
{
    EXPECT_DOUBLE_EQ(ladderEntryFor(1.5).billions, 1.4);
    EXPECT_DOUBLE_EQ(ladderEntryFor(33.0).billions, 33.3);
}

TEST(SizeLadderTest, LargestAtMost)
{
    const LadderEntry &at_26 = largestLadderEntryAtMost(26);
    EXPECT_DOUBLE_EQ(at_26.billions, 1.4);
    const LadderEntry &at_1000 = largestLadderEntryAtMost(1000);
    EXPECT_DOUBLE_EQ(at_1000.billions, 33.3);
    // Between rungs: snap down.
    const LadderEntry &e = largestLadderEntryAtMost(
        ladderEntryFor(5.2).layers + 1);
    EXPECT_DOUBLE_EQ(e.billions, 5.2);
}

TEST(SizeLadderTest, ConfigForBillions)
{
    const TransformerConfig cfg = configForBillions(1.4);
    EXPECT_EQ(cfg.layers, ladderEntryFor(1.4).layers);
}

TEST(SizeLadderTest, Labels)
{
    EXPECT_EQ(ladderLabel(ladderEntryFor(1.4)), "1.4B");
}

TEST(SizeLadderDeathTest, OffLadderIsFatal)
{
    EXPECT_EXIT(ladderEntryFor(500.0), testing::ExitedWithCode(1),
                "no ladder entry");
    EXPECT_EXIT(largestLadderEntryAtMost(1), testing::ExitedWithCode(1),
                "smallest rung");
}

} // namespace
} // namespace dstrain
