/**
 * @file
 * Tests for the model-state and activation memory primitives.
 */

#include <gtest/gtest.h>

#include "model/memory.hh"

namespace dstrain {
namespace {

TEST(ModelStateTest, SixteenBytesPerParam)
{
    const ModelStateBytes m = modelStateBytes(1'000'000'000);
    EXPECT_DOUBLE_EQ(m.fp16_params, 2e9);
    EXPECT_DOUBLE_EQ(m.fp16_grads, 2e9);
    EXPECT_DOUBLE_EQ(m.fp32_optimizer, 12e9);
    EXPECT_DOUBLE_EQ(m.total(), 16e9);
}

TEST(ModelStateDeathTest, RejectsNonPositive)
{
    EXPECT_DEATH(modelStateBytes(0), "parameter count");
}

TEST(ActivationTest, BoundaryBytesFormula)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(1);
    // fp16 boundary: 2 bytes * batch * seq * hidden.
    EXPECT_DOUBLE_EQ(activationBytesPerLayer(cfg, 16, 1.0),
                     2.0 * 16 * 256 * 2048);
    EXPECT_DOUBLE_EQ(activationBytesPerLayer(cfg, 16, 2.0),
                     2.0 * activationBytesPerLayer(cfg, 16, 1.0));
}

TEST(ActivationTest, LinearInBatch)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(1);
    EXPECT_DOUBLE_EQ(activationBytesPerLayer(cfg, 32, 2.0),
                     2.0 * activationBytesPerLayer(cfg, 16, 2.0));
}

TEST(ActivationDeathTest, RejectsBadArgs)
{
    const TransformerConfig cfg = TransformerConfig::gpt2Like(1);
    EXPECT_DEATH(activationBytesPerLayer(cfg, 0, 2.0), "batch");
    EXPECT_DEATH(activationBytesPerLayer(cfg, 16, 0.0), "workspace");
}

} // namespace
} // namespace dstrain
