/**
 * @file
 * Tests for the report-rendering helpers.
 */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace dstrain {
namespace {

ExperimentReport
fakeReport()
{
    ExperimentReport r;
    r.strategy = StrategyConfig::zero(2);
    r.model = ladderEntryFor(5.2);
    r.iteration_time = 1.234;
    r.tflops = 524.0;
    r.footprint.gpu_per_gpu = 38.1e9;
    r.footprint.cpu_per_node = 22e9;
    r.composition = composeMemory("ZeRO-2", r.footprint, 4, 1);
    r.bandwidth.config = "ZeRO-2";
    r.bandwidth.per_class.resize(tableIvClasses().size());
    return r;
}

TEST(ReportTest, SummaryLineContents)
{
    const std::string line = summarizeReport(fakeReport());
    EXPECT_NE(line.find("ZeRO-2"), std::string::npos);
    EXPECT_NE(line.find("5.2"), std::string::npos);
    EXPECT_NE(line.find("524.0"), std::string::npos);
}

TEST(ReportTest, ComparisonTableOneRowPerReport)
{
    const TextTable t = comparisonTable({fakeReport(), fakeReport()});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_NE(t.render().find("38.1"), std::string::npos);
}

TEST(ReportTest, CompositionTableShares)
{
    const TextTable t = compositionTable({fakeReport()});
    const std::string out = t.render();
    EXPECT_NE(out.find("GB"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(ReportTest, BarChartScalesToMax)
{
    const std::string chart =
        barChart({"a", "b"}, {50.0, 100.0}, "u", 10);
    // "b" gets the full 10 hashes; "a" gets 5.
    EXPECT_NE(chart.find("##########"), std::string::npos);
    EXPECT_NE(chart.find("#####"), std::string::npos);
    EXPECT_NE(chart.find("100.0 u"), std::string::npos);
}

TEST(ReportTest, BarChartHandlesZeros)
{
    const std::string chart = barChart({"z"}, {0.0}, "u", 10);
    EXPECT_NE(chart.find("0.0 u"), std::string::npos);
}

TEST(SparklineTest, ScalesAndDownsamples)
{
    std::vector<double> v(100, 0.0);
    for (std::size_t i = 50; i < 100; ++i)
        v[i] = 10.0;
    const std::string line = sparkline(v, 10);
    ASSERT_EQ(line.size(), 10u);
    EXPECT_EQ(line.substr(0, 5), "     ");
    EXPECT_EQ(line.substr(5, 5), "@@@@@");
}

TEST(SparklineTest, EmptyAndFlatInputs)
{
    EXPECT_EQ(sparkline({}, 10), "");
    const std::string flat = sparkline({5.0, 5.0, 5.0}, 3);
    EXPECT_EQ(flat, "@@@");
}

} // namespace
} // namespace dstrain
