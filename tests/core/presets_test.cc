/**
 * @file
 * Tests for the paper-configuration presets.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace dstrain {
namespace {

TEST(PresetsTest, Xe8545Defaults)
{
    const ClusterSpec spec = xe8545Cluster(2);
    EXPECT_EQ(spec.nodes, 2);
    EXPECT_EQ(spec.node.gpus, 4);
    EXPECT_DOUBLE_EQ(spec.node.gpu_memory, 40.0 * units::GiB);
    EXPECT_DOUBLE_EQ(spec.node.gpu_peak_fp16, 312e12);
    EXPECT_EQ(spec.totalGpus(), 8);
}

TEST(PresetsTest, PaperMegatronDegrees)
{
    EXPECT_EQ(paperMegatron(1).modelParallelSize(), 4);
    EXPECT_EQ(paperMegatron(2).modelParallelSize(), 8);
}

TEST(PresetsTest, LineupsMatchThePaperFigures)
{
    EXPECT_EQ(comparisonLineup(1).size(), 5u);
    EXPECT_EQ(comparisonLineup(2).size(), 5u);
    EXPECT_EQ(consolidationLineup().size(), 4u);
    EXPECT_EQ(largestModelLineup().size(), 3u);
    EXPECT_EQ(sensitivityLineup().size(), 8u);
    for (const StrategyConfig &s : sensitivityLineup())
        validateStrategy(s);
}

TEST(PresetsTest, PaperExperimentWiresThrough)
{
    const ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::zero(3), 11.4);
    EXPECT_EQ(cfg.cluster.nodes, 2);
    EXPECT_EQ(cfg.strategy.kind, StrategyKind::Zero3);
    EXPECT_DOUBLE_EQ(cfg.model_billions, 11.4);
    EXPECT_EQ(cfg.batch_per_gpu, 16);
}

} // namespace
} // namespace dstrain
