/**
 * @file
 * Tests for the experiment facade.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/report.hh"

namespace dstrain {
namespace {

TEST(ExperimentTest, ResolvesExplicitModelSize)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::ddp(), 1.4);
    Experiment exp(std::move(cfg));
    EXPECT_DOUBLE_EQ(exp.model().billions, 1.4);
}

TEST(ExperimentTest, SolvesMaxWhenZero)
{
    ExperimentConfig cfg = paperExperiment(1, StrategyConfig::zero(3));
    Experiment exp(std::move(cfg));
    EXPECT_DOUBLE_EQ(exp.model().billions, 6.6);
}

TEST(ExperimentTest, RunProducesConsistentReport)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::zero(2), 1.4);
    cfg.iterations = 3;
    cfg.warmup = 1;
    Experiment exp(std::move(cfg));
    const ExperimentReport r = exp.run();

    EXPECT_GT(r.tflops, 0.0);
    EXPECT_GT(r.iteration_time, 0.0);
    EXPECT_EQ(r.execution.iteration_ends.size(), 3u);
    EXPECT_EQ(r.bandwidth.per_class.size(), tableIvClasses().size());
    EXPECT_GT(r.footprint.gpu_per_gpu, 0.0);
    EXPECT_GT(r.composition.total(), 0.0);
    EXPECT_FALSE(r.execution.spans.empty());
    // tflops consistent with the raw execution record.
    EXPECT_NEAR(r.tflops, r.execution.achievedTflops(), 1e-9);
}

TEST(ExperimentTest, DeterministicAcrossIdenticalRuns)
{
    auto once = [] {
        ExperimentConfig cfg =
            paperExperiment(1, StrategyConfig::zero(1), 1.4);
        cfg.iterations = 3;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().iteration_time;
    };
    EXPECT_DOUBLE_EQ(once(), once());
}

TEST(ExperimentTest, NvmeStrategyInstallsPlacementDrives)
{
    ExperimentConfig cfg = paperExperiment(
        1, StrategyConfig::zeroInfinityNvme(true), 1.4);
    cfg.placement = nvmePlacementConfig('G');
    Experiment exp(std::move(cfg));
    EXPECT_EQ(exp.config().cluster.node.nvme_drives.size(), 4u);
    const ExperimentReport r = exp.run();
    EXPECT_GT(r.tflops, 0.0);
}

TEST(ExperimentTest, RunExperimentConvenience)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::ddp(), 0.7);
    cfg.iterations = 2;
    cfg.warmup = 1;
    const ExperimentReport r = runExperiment(std::move(cfg));
    EXPECT_GT(r.tflops, 100.0);
}

TEST(ExperimentTest, StreamingTelemetryMatchesLegacyFingerprint)
{
    // The streaming engine (online buckets, no retention) must
    // publish a report bit-identical to the legacy segment sweep.
    ExperimentConfig streaming =
        paperExperiment(1, StrategyConfig::zero(2), 1.4);
    streaming.iterations = 3;
    streaming.warmup = 1;

    ExperimentConfig legacy =
        paperExperiment(1, StrategyConfig::zero(2), 1.4);
    legacy.iterations = 3;
    legacy.warmup = 1;
    legacy.telemetry.streaming = false;
    legacy.telemetry.retain_segments = true;

    const ExperimentReport a = runExperiment(std::move(streaming));
    const ExperimentReport b = runExperiment(std::move(legacy));
    EXPECT_EQ(reportFingerprint(a), reportFingerprint(b));
    EXPECT_EQ(a.telemetry.segments_retained, 0u);
    EXPECT_GT(b.telemetry.segments_retained, 0u);
}

TEST(ExperimentDeathTest, DoubleRunRejected)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::ddp(), 0.7);
    cfg.iterations = 2;
    cfg.warmup = 1;
    Experiment exp(std::move(cfg));
    exp.run();
    EXPECT_DEATH(exp.run(), "twice");
}

} // namespace
} // namespace dstrain
