/**
 * @file
 * Tests for the parallel sweep runner and the determinism
 * regression suite: a report must be a pure function of its config
 * (bit-identical across repeat runs and across job counts), results
 * must come back in config order, and the progress callback must be
 * complete and serialized.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep_runner.hh"

namespace dstrain {
namespace {

/** A small, fast sweep covering distinct strategies and node counts. */
std::vector<ExperimentConfig>
smallSweep()
{
    std::vector<ExperimentConfig> configs;
    for (int nodes : {1, 2}) {
        for (const StrategyConfig &s :
             {StrategyConfig::zero(1), StrategyConfig::zero(3)}) {
            ExperimentConfig cfg = paperExperiment(nodes, s, 1.4);
            cfg.iterations = 3;
            cfg.warmup = 1;
            configs.push_back(std::move(cfg));
        }
    }
    return configs;
}

TEST(DeterminismTest, SameSeedGivesBitIdenticalReports)
{
    // The determinism regression for the incremental scheduler: two
    // runs of the same config must agree on every float bit.
    ExperimentConfig cfg = paperExperiment(1, StrategyConfig::zero(3));
    cfg.iterations = 3;
    cfg.warmup = 1;
    const std::string a = reportFingerprint(runExperiment(cfg));
    const std::string b = reportFingerprint(runExperiment(cfg));
    EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsStillDeterministic)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::zero(2), 1.4);
    cfg.iterations = 2;
    cfg.warmup = 1;
    cfg.seed = 7;
    const std::string a = reportFingerprint(runExperiment(cfg));
    const std::string b = reportFingerprint(runExperiment(cfg));
    EXPECT_EQ(a, b);
}

TEST(SweepRunnerTest, ResolvesJobCounts)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1);
    EXPECT_EQ(SweepRunner(1).jobs(), 1);
    EXPECT_EQ(SweepRunner(4).jobs(), 4);
}

TEST(SweepRunnerTest, EmptySweepReturnsEmpty)
{
    EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

TEST(SweepRunnerTest, ResultsComeBackInConfigOrder)
{
    const std::vector<ExperimentReport> reports =
        SweepRunner(4).run(smallSweep());
    ASSERT_EQ(reports.size(), 4u);
    // smallSweep order: zero1, zero3 (single node), zero1, zero3.
    EXPECT_EQ(reports[0].strategy.displayName(), "ZeRO-1");
    EXPECT_EQ(reports[1].strategy.displayName(), "ZeRO-3");
    EXPECT_EQ(reports[2].strategy.displayName(), "ZeRO-1");
    EXPECT_EQ(reports[3].strategy.displayName(), "ZeRO-3");
}

TEST(SweepRunnerTest, ParallelSweepIsBitIdenticalToSerial)
{
    // The acceptance property: --jobs 4 must be byte-identical to
    // --jobs 1 (each experiment owns its simulation; the pool only
    // changes wall-clock interleaving).
    const std::vector<ExperimentReport> serial =
        SweepRunner(1).run(smallSweep());
    const std::vector<ExperimentReport> parallel =
        SweepRunner(4).run(smallSweep());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(reportFingerprint(serial[i]),
                  reportFingerprint(parallel[i]))
            << "sweep point " << i << " diverged across job counts";
    }
}

TEST(SweepRunnerTest, ProgressReportsEveryPointExactlyOnce)
{
    std::set<std::size_t> seen;
    std::size_t last_done = 0;
    std::size_t calls = 0;
    SweepRunner(4).run(
        smallSweep(),
        [&](std::size_t done, std::size_t total, std::size_t index) {
            // Serialized by the runner: no torn counters.
            ++calls;
            EXPECT_EQ(total, 4u);
            EXPECT_GE(done, 1u);
            EXPECT_LE(done, 4u);
            EXPECT_GT(done, last_done);
            last_done = done;
            EXPECT_TRUE(seen.insert(index).second)
                << "index " << index << " reported twice";
        });
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(seen.size(), 4u);
}

} // namespace
} // namespace dstrain
