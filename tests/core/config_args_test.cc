/**
 * @file
 * Tests for the shared flag-to-ExperimentConfig plumbing.
 */

#include <gtest/gtest.h>

#include "core/config_args.hh"
#include "strategies/strategy.hh"

namespace dstrain {
namespace {

/** An ArgParser with the experiment options, already parsed. */
ArgParser
parsedArgs(std::vector<const char *> argv)
{
    ArgParser args("dstrain", "test");
    addExperimentOptions(args);
    argv.insert(argv.begin(), "dstrain");
    EXPECT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));
    return args;
}

TEST(ConfigArgsTest, DefaultsProduceValidConfig)
{
    const ArgParser args = parsedArgs({});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    EXPECT_EQ(parsed.config.cluster.nodes, 1);
    EXPECT_TRUE(parsed.config.faults.empty());
    EXPECT_TRUE(parsed.config.validate().empty());
}

TEST(ConfigArgsTest, FlagsReachTheConfig)
{
    const ArgParser args = parsedArgs(
        {"--nodes", "2", "--strategy", "zero2-cpu", "--batch", "8",
         "--bucket", "0.2", "--placement", "G", "--retain-segments"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    EXPECT_EQ(parsed.config.cluster.nodes, 2);
    EXPECT_EQ(parsed.config.batch_per_gpu, 8);
    EXPECT_DOUBLE_EQ(parsed.config.telemetry.bucket, 0.2);
    EXPECT_TRUE(parsed.config.telemetry.retain_segments);
    EXPECT_EQ(parsed.config.placement.id, 'G');
}

TEST(ConfigArgsTest, FaultSpecIsParsed)
{
    const ArgParser args = parsedArgs(
        {"--faults", "degrade@1+0.5:roce:0.4,straggler@2:rank3:0.7"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    ASSERT_EQ(parsed.config.faults.events.size(), 2u);
    EXPECT_EQ(parsed.config.faults.events[0].kind,
              FaultKind::LinkDegrade);
    EXPECT_EQ(parsed.config.faults.events[1].target, "rank3");
}

TEST(ConfigArgsTest, FabricFlagIsParsed)
{
    const ArgParser args = parsedArgs(
        {"--nodes", "8", "--fabric", "fat-tree:k=8,oversub=2"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    EXPECT_EQ(parsed.config.cluster.fabric.kind, FabricKind::FatTree);
    EXPECT_EQ(parsed.config.cluster.fabric.fat_tree_k, 8);
    EXPECT_DOUBLE_EQ(parsed.config.cluster.fabric.oversubscription,
                     2.0);

    const ArgParser bad = parsedArgs({"--fabric", "torus"});
    EXPECT_FALSE(experimentFromArgs(bad).ok());
}

TEST(ConfigArgsTest, NodesSpecBuildsGroups)
{
    const ArgParser args = parsedArgs(
        {"--nodes-spec", "2:gpus=4,nics=2;1:gpus=8,nics=4"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    ASSERT_EQ(parsed.config.cluster.groups.size(), 2u);
    EXPECT_EQ(parsed.config.cluster.nodeCount(), 3);
    EXPECT_EQ(parsed.config.cluster.totalGpus(), 16);

    const ArgParser bad = parsedArgs({"--nodes-spec", "2:frobs=1"});
    EXPECT_FALSE(experimentFromArgs(bad).ok());
}

TEST(ConfigArgsTest, ErrorsAreCollectedNotFatal)
{
    const ArgParser args =
        parsedArgs({"--placement", "Z", "--bucket", "0",
                    "--faults", "degrade@1:bogus-class:0.5"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    EXPECT_FALSE(parsed.ok());
    // One error per problem, each naming its field.
    EXPECT_GE(parsed.errors.size(), 3u);
    bool placement = false, bucket = false, fault = false;
    for (const ConfigError &e : parsed.errors) {
        placement |= e.field == "placement";
        bucket |= e.field == "telemetry.bucket";
        fault |= e.field.rfind("faults", 0) == 0;
    }
    EXPECT_TRUE(placement);
    EXPECT_TRUE(bucket);
    EXPECT_TRUE(fault);
}

TEST(ConfigArgsTest, UnknownStrategyIsAnError)
{
    const ArgParser args = parsedArgs({"--strategy", "zero9"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_EQ(parsed.errors.size(), 1u);
    EXPECT_EQ(parsed.errors[0].field, "strategy");
}

TEST(ConfigArgsTest, StrategyNamesRoundTrip)
{
    for (const char *name :
         {"ddp", "megatron", "zero1", "zero2", "zero3", "zero1-cpu",
          "zero2-cpu", "zero3-cpu", "zero3-nvme", "zero3-nvme-params",
          "fsdp", "moe", "hybrid3d"}) {
        EXPECT_TRUE(parseStrategyName(name).has_value()) << name;
    }
    EXPECT_FALSE(parseStrategyName("zero9").has_value());
}

TEST(ConfigArgsTest, RegistryDrivesNamesAndHelp)
{
    // Every registered name parses, round-trips through create(),
    // and appears in the help string.
    const std::string help = strategyNameHelp();
    for (const std::string &name : Strategy::names()) {
        const auto cfg = parseStrategyName(name);
        ASSERT_TRUE(cfg.has_value()) << name;
        EXPECT_NE(help.find(name), std::string::npos) << name;
        const auto strategy = Strategy::create(*cfg);
        ASSERT_NE(strategy, nullptr) << name;
        EXPECT_EQ(strategy->config().kind, cfg->kind) << name;
    }
    EXPECT_GE(Strategy::names().size(), 13u);
}

TEST(ConfigArgsTest, CollectiveAlgoFlagReachesTheConfig)
{
    const ArgParser args = parsedArgs(
        {"--collective-algo", "hierarchical,all-to-all=pairwise"});
    const ParsedExperiment parsed = experimentFromArgs(args);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    EXPECT_EQ(parsed.config.collective_algos.default_algo,
              CollectiveAlgo::Hierarchical);
    EXPECT_EQ(parsed.config.collective_algos.requestedFor(
                  CollectiveOp::AllToAll),
              CollectiveAlgo::Pairwise);

    const ArgParser bad = parsedArgs({"--collective-algo", "mesh"});
    const ParsedExperiment bad_parsed = experimentFromArgs(bad);
    ASSERT_FALSE(bad_parsed.ok());
    EXPECT_EQ(bad_parsed.errors[0].field, "collective-algo");
}

TEST(ConfigArgsTest, ExpertsFlagIsMoeOnly)
{
    const ArgParser moe =
        parsedArgs({"--strategy", "moe", "--experts", "4"});
    const ParsedExperiment parsed = experimentFromArgs(moe);
    ASSERT_TRUE(parsed.ok()) << formatConfigErrors(parsed.errors);
    EXPECT_EQ(parsed.config.strategy.kind, StrategyKind::Moe);
    EXPECT_EQ(parsed.config.strategy.experts, 4);

    const ArgParser bad =
        parsedArgs({"--strategy", "ddp", "--experts", "4"});
    EXPECT_FALSE(experimentFromArgs(bad).ok());
}

} // namespace
} // namespace dstrain
