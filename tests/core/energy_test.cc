/**
 * @file
 * Tests for the energy-model extension.
 */

#include <gtest/gtest.h>

#include "core/energy.hh"
#include "core/presets.hh"

namespace dstrain {
namespace {

std::pair<ExperimentReport, ExperimentConfig>
runOne(int nodes, const StrategyConfig &s, double billions)
{
    ExperimentConfig cfg = paperExperiment(nodes, s, billions);
    cfg.iterations = 3;
    cfg.warmup = 1;
    Experiment exp(cfg);
    return {exp.run(), cfg};
}

TEST(EnergyTest, BreakdownSumsAndPowerIsPlausible)
{
    auto [report, cfg] = runOne(1, StrategyConfig::ddp(), 1.4);
    const EnergyReport e = estimateEnergy(report, cfg);
    EXPECT_NEAR(e.gpu_joules + e.cpu_joules + e.storage_joules +
                    e.platform_joules,
                e.joules_per_iteration, 1e-6);
    // One XE8545 idles above ~0.7 kW and peaks below ~2.6 kW.
    EXPECT_GT(e.avg_power_watts, 700.0);
    EXPECT_LT(e.avg_power_watts, 2600.0);
    EXPECT_GT(e.tokens_per_joule, 0.0);
    EXPECT_GT(e.gpu_busy_fraction, 0.5);  // DDP keeps GPUs busy
    EXPECT_LE(e.gpu_busy_fraction, 1.0);
}

TEST(EnergyTest, OffloadDropsGpuBusyAndTokensPerJoule)
{
    auto [plain, plain_cfg] =
        runOne(1, StrategyConfig::zero(2), 5.2);
    auto [off, off_cfg] =
        runOne(1, StrategyConfig::zeroOffloadCpu(2), 5.2);
    const EnergyReport pe = estimateEnergy(plain, plain_cfg);
    const EnergyReport oe = estimateEnergy(off, off_cfg);
    EXPECT_LT(oe.gpu_busy_fraction, pe.gpu_busy_fraction);
    EXPECT_LT(oe.tokens_per_joule, pe.tokens_per_joule);
    EXPECT_GT(oe.cpu_busy_fraction, pe.cpu_busy_fraction);
}

TEST(EnergyTest, TwoNodesDrawRoughlyTwice)
{
    auto [one, one_cfg] = runOne(1, StrategyConfig::ddp(), 1.4);
    auto [two, two_cfg] = runOne(2, StrategyConfig::ddp(), 1.4);
    const double p1 = estimateEnergy(one, one_cfg).avg_power_watts;
    const double p2 = estimateEnergy(two, two_cfg).avg_power_watts;
    EXPECT_GT(p2, 1.6 * p1);
    EXPECT_LT(p2, 2.4 * p1);
}

TEST(EnergyTest, PowerModelKnobsMatter)
{
    auto [report, cfg] = runOne(1, StrategyConfig::ddp(), 1.4);
    PowerModel hungry;
    hungry.gpu_busy = 800.0;
    EXPECT_GT(estimateEnergy(report, cfg, hungry).joules_per_iteration,
              estimateEnergy(report, cfg).joules_per_iteration);
}

TEST(EnergyTest, SummaryLine)
{
    auto [report, cfg] = runOne(1, StrategyConfig::ddp(), 1.4);
    const std::string line =
        summarizeEnergy(estimateEnergy(report, cfg));
    EXPECT_NE(line.find("kJ/iter"), std::string::npos);
    EXPECT_NE(line.find("tokens/J"), std::string::npos);
}

} // namespace
} // namespace dstrain
