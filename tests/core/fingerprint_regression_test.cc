/**
 * @file
 * Bit-identity regression oracle: the seeded presets must reproduce
 * the exact reports captured on the pre-refactor tree, under BOTH
 * fair-share solvers.
 *
 * Each golden value is the FNV-1a-64 hash of reportFingerprint() for
 * one preset run (3 iterations, 1 warmup), captured before the fabric
 * generalization and unchanged since. A mismatch means simulated
 * behavior changed — event order, link capacities, routing, solver
 * arithmetic, anything — which it must never do. The default-solver
 * lineups exercise the region-scoped incremental solver (the
 * default); the GlobalOracle lineups pin the full-pass oracle to the
 * same hashes, which is the bit-exactness contract between the two
 * (DESIGN.md "Performance architecture").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "collectives/algorithms.hh"
#include "core/presets.hh"
#include "core/report.hh"

namespace dstrain {
namespace {

/** FNV-1a-64 of the report fingerprint (matches the capture tool). */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
runHash(int nodes, const StrategyConfig &strategy, double billions,
        FlowSolverMode solver = FlowSolverMode::Region,
        bool verify = false, bool completion_index = true,
        int solver_threads = 1)
{
    ExperimentConfig cfg = paperExperiment(nodes, strategy, billions);
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.flow_solver = solver;
    cfg.verify_fair_share = verify;
    cfg.use_completion_index = completion_index;
    cfg.solver_threads = solver_threads;
    const ExperimentReport report = runExperiment(std::move(cfg));
    return fnv1a64(reportFingerprint(report));
}

TEST(FingerprintRegression, SingleNodeLineup)
{
    EXPECT_EQ(runHash(1, StrategyConfig::ddp(), 0.0),
              0xdfff91522c6d7b5full);
    EXPECT_EQ(runHash(1, paperMegatron(1), 0.0), 0x3ab98365ca0ec6b1ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(1), 0.0),
              0xff8b3880f5ea455eull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(2), 0.0),
              0x2d50256a449d56e5ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(3), 0.0),
              0x9dd372e8dbae9ea5ull);
}

TEST(FingerprintRegression, DualNodeLineup)
{
    EXPECT_EQ(runHash(2, StrategyConfig::ddp(), 0.0),
              0x0b7a72c8312a4dbeull);
    EXPECT_EQ(runHash(2, paperMegatron(2), 0.0), 0x2a38f9b3622d8434ull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(1), 0.0),
              0x048a684eb2d7ce7aull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(2), 0.0),
              0x12e8a1145cc02716ull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(3), 0.0),
              0x250b601e5ae1fffdull);
}

TEST(FingerprintRegression, OffloadLineup)
{
    // Re-captured once for the anchored-settling scheduler (flows now
    // settle in one multiply-subtract per constant-rate span instead
    // of piecewise at every event — mathematically equal, different in
    // the last float bit). Only the offload presets moved: they are
    // the ones with long-lived flows spanning many scheduler events.
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(2), 11.4),
              0x58f078e5ebdfba74ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(3), 11.4),
              0x464f8a60f5f83cc1ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroInfinityNvme(false), 11.4),
              0xdefe6c99743556a4ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroInfinityNvme(true), 11.4),
              0xd1105c2a033ddf8dull);
}

TEST(FingerprintRegression, GlobalOracleSingleNodeLineup)
{
    const auto G = FlowSolverMode::Global;
    EXPECT_EQ(runHash(1, StrategyConfig::ddp(), 0.0, G),
              0xdfff91522c6d7b5full);
    EXPECT_EQ(runHash(1, paperMegatron(1), 0.0, G),
              0x3ab98365ca0ec6b1ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(1), 0.0, G),
              0xff8b3880f5ea455eull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(2), 0.0, G),
              0x2d50256a449d56e5ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zero(3), 0.0, G),
              0x9dd372e8dbae9ea5ull);
}

TEST(FingerprintRegression, GlobalOracleDualNodeLineup)
{
    const auto G = FlowSolverMode::Global;
    EXPECT_EQ(runHash(2, StrategyConfig::ddp(), 0.0, G),
              0x0b7a72c8312a4dbeull);
    EXPECT_EQ(runHash(2, paperMegatron(2), 0.0, G),
              0x2a38f9b3622d8434ull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(1), 0.0, G),
              0x048a684eb2d7ce7aull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(2), 0.0, G),
              0x12e8a1145cc02716ull);
    EXPECT_EQ(runHash(2, StrategyConfig::zero(3), 0.0, G),
              0x250b601e5ae1fffdull);
}

TEST(FingerprintRegression, GlobalOracleOffloadLineup)
{
    const auto G = FlowSolverMode::Global;
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(2), 11.4, G),
              0x58f078e5ebdfba74ull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(3), 11.4, G),
              0x464f8a60f5f83cc1ull);
    EXPECT_EQ(
        runHash(1, StrategyConfig::zeroInfinityNvme(false), 11.4, G),
        0xdefe6c99743556a4ull);
    EXPECT_EQ(
        runHash(1, StrategyConfig::zeroInfinityNvme(true), 11.4, G),
        0xd1105c2a033ddf8dull);
}

TEST(FingerprintRegression, VerifyModeMatchesAndChecksEveryEvent)
{
    // --verify-fair-share runs the global oracle after every scheduler
    // event and fatal()s on any bitwise divergence: surviving the run
    // with the golden hash proves the region solver exact end to end
    // on the busiest dual-node preset.
    EXPECT_EQ(runHash(2, StrategyConfig::zero(3), 0.0,
                      FlowSolverMode::Region, true),
              0x250b601e5ae1fffdull);
}

TEST(FingerprintRegression, LegacyCompletionScanLineup)
{
    // Disabling the completion index re-enables the legacy full scan
    // over stored finish times. The stored times are the same values
    // either way, so the busiest presets of each lineup must pin the
    // exact golden hashes.
    const auto R = FlowSolverMode::Region;
    EXPECT_EQ(runHash(2, StrategyConfig::zero(3), 0.0, R, false, false),
              0x250b601e5ae1fffdull);
    EXPECT_EQ(runHash(2, StrategyConfig::ddp(), 0.0, R, false, false),
              0x0b7a72c8312a4dbeull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(3), 11.4, R,
                      false, false),
              0x464f8a60f5f83cc1ull);
}

TEST(FingerprintRegression, ParallelComponentSolveLineup)
{
    // solver_threads > 1 fills independent components on a pool and
    // commits in canonical component order — bit-identical to the
    // serial fill, so the same goldens must hold.
    const auto R = FlowSolverMode::Region;
    EXPECT_EQ(
        runHash(2, StrategyConfig::zero(3), 0.0, R, false, true, 3),
        0x250b601e5ae1fffdull);
    EXPECT_EQ(runHash(2, StrategyConfig::ddp(), 0.0, R, false, true, 3),
              0x0b7a72c8312a4dbeull);
    EXPECT_EQ(runHash(1, StrategyConfig::zeroOffloadCpu(3), 11.4, R,
                      false, true, 3),
              0x464f8a60f5f83cc1ull);
}

TEST(FingerprintRegression, ExplicitRingAlgoMatchesDefaultGolden)
{
    // `--collective-algo ring` pins every collective to the ring
    // family the engine has always modeled: the run must stay
    // bit-identical to the pre-library golden (and the fingerprint
    // must not sprout a collectives section for all-ring runs).
    std::string err;
    const auto spec = parseCollectiveAlgoSpec("ring", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::ddp(), 0.0);
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.collective_algos = *spec;
    const ExperimentReport report = runExperiment(std::move(cfg));
    EXPECT_EQ(fnv1a64(reportFingerprint(report)),
              0x0b7a72c8312a4dbeull);
}

TEST(FingerprintRegression, ResilienceOnHealthyFabricMatchesGolden)
{
    // Enabling the degraded-mode resilience layer on a clean run
    // changes nothing: no fault ever fires, so no route is
    // invalidated, no watchdog trips, every counter stays zero and
    // the fingerprint grows no resilience section. The busiest
    // dual-node preset must pin the exact golden hash.
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::zero(3), 0.0);
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.resilience.enabled = true;
    const ExperimentReport report = runExperiment(std::move(cfg));
    EXPECT_FALSE(report.resilience.any());
    EXPECT_EQ(fnv1a64(reportFingerprint(report)),
              0x250b601e5ae1fffdull);
}

TEST(FingerprintRegression, EcmpOffMatchesEcmpOnSingleSwitch)
{
    // Every route on the single-switch fabric has exactly one
    // shortest path, so disabling ECMP must change nothing.
    ExperimentConfig cfg =
        paperExperiment(2, StrategyConfig::ddp(), 0.0);
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.cluster.fabric.ecmp = false;
    const ExperimentReport report = runExperiment(std::move(cfg));
    EXPECT_EQ(fnv1a64(reportFingerprint(report)),
              0x0b7a72c8312a4dbeull);
}

} // namespace
} // namespace dstrain
