/**
 * @file
 * Tests for the simulation context.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace dstrain {
namespace {

TEST(SimulationTest, StartsAtTimeZero)
{
    Simulation sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulationTest, RunAdvancesToLastEvent)
{
    Simulation sim;
    sim.events().schedule(2.5, [] {});
    EXPECT_DOUBLE_EQ(sim.run(), 2.5);
    EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(SimulationTest, RunUntilDelegates)
{
    Simulation sim;
    bool ran = false;
    sim.events().schedule(10.0, [&] { ran = true; });
    sim.runUntil(5.0);
    EXPECT_FALSE(ran);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, SeededRngIsDeterministic)
{
    Simulation a(123);
    Simulation b(123);
    EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(SimulationTest, EventLimitConfigurable)
{
    Simulation sim;
    EXPECT_EQ(sim.eventLimit(), 200'000'000u);
    sim.setEventLimit(10);
    EXPECT_EQ(sim.eventLimit(), 10u);
    // Under the limit: no panic.
    sim.events().schedule(1.0, [] {});
    sim.run();
    sim.checkEventLimit();
}

TEST(SimulationDeathTest, EventLimitPanics)
{
    Simulation sim;
    sim.setEventLimit(3);
    for (int i = 0; i < 10; ++i)
        sim.events().schedule(static_cast<SimTime>(i), [] {});
    sim.run();
    EXPECT_DEATH(sim.checkEventLimit(), "event limit");
}

} // namespace
} // namespace dstrain
