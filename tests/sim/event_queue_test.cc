/**
 * @file
 * Tests for the discrete-event queue: ordering, FIFO tie-breaking,
 * cancellation semantics, runUntil, and a determinism property
 * sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/rng.hh"

namespace dstrain {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    EXPECT_DOUBLE_EQ(q.run(), 3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ClockAdvancesDuringRun)
{
    EventQueue q;
    SimTime seen = -1.0;
    q.schedule(5.0, [&] { seen = q.now(); });
    q.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueueTest, ScheduleAfterUsesNow)
{
    EventQueue q;
    SimTime fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(3.0, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, EventIdZeroIsNeverIssued)
{
    // FlowScheduler (and other callers) use EventId 0 as a "no
    // pending event" sentinel; the very first id issued by a fresh
    // queue — and every id after slot recycling — must be nonzero.
    EventQueue q;
    const EventId first = q.schedule(1.0, [] {});
    EXPECT_NE(first, 0u);
    q.run();
    for (int i = 0; i < 4; ++i) {
        const EventId id = q.schedule(2.0 + i, [] {});  // reuses slot 0
        EXPECT_NE(id, 0u);
        q.run();
    }
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, DoubleCancelAndStaleCancelAreNoops)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    q.run();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueueTest, CancelExecutedEventIsRejected)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.executedCount(), 1u);
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(5.0, [&] { order.push_back(5); });
    q.runUntil(3.0);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(EventQueueTest, StepRunsExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1.0, [&] { ++count; });
    q.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, CancelAfterExecuteWithReusedSlots)
{
    // After an event executes, its slot is recycled; a stale cancel
    // with the old id must not kill the slot's new occupant.
    EventQueue q;
    EventId first = q.schedule(1.0, [] {});
    q.run();
    bool ran = false;
    q.schedule(2.0, [&] { ran = true; });  // likely reuses the slot
    EXPECT_FALSE(q.cancel(first));         // stale id: generation moved
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelTwiceThenReuseSlot)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    int count = 0;
    q.schedule(1.0, [&] { ++count; });
    EXPECT_FALSE(q.cancel(id));  // still stale after new schedules
    q.run();
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, InterleavedScheduleCancelAtEqualTimestamps)
{
    // Ten events at the same time; cancel every other one, then
    // schedule more at the same timestamp. Survivors must run in
    // exact insertion order.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(q.schedule(1.0, [&order, i] {
            order.push_back(i);
        }));
    for (int i = 0; i < 10; i += 2)
        EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    for (int i = 10; i < 14; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    EXPECT_EQ(q.size(), 9u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 10, 11, 12, 13}));
}

TEST(EventQueueTest, CancelOwnIdInsideCallbackIsRejected)
{
    EventQueue q;
    EventId id = 0;
    bool cancelled = false;
    id = q.schedule(1.0, [&] { cancelled = q.cancel(id); });
    q.run();
    EXPECT_FALSE(cancelled);  // already executing == executed
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelFromCallbackAtSameTimestamp)
{
    // An event cancelling a later event scheduled at the same time.
    EventQueue q;
    bool victim_ran = false;
    EventId victim = 0;
    q.schedule(1.0, [&] { EXPECT_TRUE(q.cancel(victim)); });
    victim = q.schedule(1.0, [&] { victim_ran = true; });
    q.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_EQ(q.executedCount(), 1u);
}

TEST(EventQueueTest, UnknownSlotAndForeignGenerationRejected)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(12345));                  // unknown slot
    EventId id = q.schedule(1.0, [] {});
    EXPECT_FALSE(q.cancel(id + (1ull << 32)));      // wrong generation
    EXPECT_TRUE(q.cancel(id));
}

/** Property: random interleaved schedule/cancel stays consistent. */
class EventChurnProperty : public testing::TestWithParam<int>
{
};

TEST_P(EventChurnProperty, LiveCountMatchesExecutions)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    EventQueue q;
    std::vector<EventId> pending;
    int fired = 0;
    int expected = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        if (!pending.empty() && rng.below(3) == 0) {
            const std::size_t pick = rng.below(pending.size());
            if (q.cancel(pending[pick]))
                --expected;
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        } else {
            const SimTime when = q.now() + rng.uniform(0.0, 10.0);
            pending.push_back(
                q.schedule(when, [&fired] { ++fired; }));
            ++expected;
        }
        if (rng.below(10) == 0) {
            while (q.step()) {
            }
            pending.clear();
        }
    }
    q.run();
    EXPECT_EQ(fired, expected);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventChurnProperty,
                         testing::Range(1, 9));

TEST(EventQueueDeathTest, PastSchedulingRejected)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(1.0, [] {}), "past");
}

/** Property: random schedules execute in nondecreasing time order. */
class EventOrderProperty : public testing::TestWithParam<int>
{
};

TEST_P(EventOrderProperty, NondecreasingExecution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    EventQueue q;
    std::vector<SimTime> fired;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const SimTime when = rng.uniform(0.0, 100.0);
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty,
                         testing::Range(1, 11));

TEST(EventQueueTest, RescheduleMovesEventWithoutCopyingCallback)
{
    // The completion-index path moves the single pending completion
    // event instead of cancel+schedule; the callback must survive and
    // fire exactly once at the new time.
    EventQueue q;
    int fired = 0;
    const EventId id = q.schedule(5.0, [&] { fired += 1; });
    const EventId moved = q.reschedule(id, 2.0);
    EXPECT_NE(moved, id);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RescheduleLaterDelaysExecution)
{
    EventQueue q;
    std::vector<int> order;
    EventId a = q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    a = q.reschedule(a, 3.0);
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_FALSE(q.cancel(a));  // executed: id is dead
}

TEST(EventQueueTest, RescheduleRunsAfterEventsAlreadyPendingThere)
{
    // A rescheduled event takes a fresh sequence number: it lands
    // *behind* events already queued at the target timestamp, exactly
    // like a cancel + re-schedule would.
    EventQueue q;
    std::vector<int> order;
    q.schedule(2.0, [&] { order.push_back(1); });
    const EventId id = q.schedule(1.0, [&] { order.push_back(2); });
    q.reschedule(id, 2.0);
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(EventQueueTest, RescheduleInvalidatesTheOldId)
{
    EventQueue q;
    int fired = 0;
    const EventId id = q.schedule(4.0, [&] { fired += 1; });
    const EventId moved = q.reschedule(id, 1.0);
    // The old id no longer names a pending event; cancelling it is a
    // safe no-op and does not disturb the moved event.
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired, 1);
    // The new id executed, so it is dead too.
    EXPECT_FALSE(q.cancel(moved));
}

TEST(EventQueueTest, RescheduledEventCanBeCancelled)
{
    EventQueue q;
    int fired = 0;
    const EventId id = q.schedule(1.0, [&] { fired += 1; });
    const EventId moved = q.reschedule(id, 2.0);
    EXPECT_TRUE(q.cancel(moved));
    q.schedule(3.0, [] {});
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, RepeatedReschedulesKeepOneLiveEvent)
{
    // The scheduler reschedules the completion event many times per
    // run; the heap may hold stale entries but size() must stay 1 and
    // only the final time fires.
    EventQueue q;
    int fired = 0;
    EventId id = q.schedule(10.0, [&] { fired += 1; });
    for (int i = 0; i < 100; ++i)
        id = q.reschedule(id, 10.0 + i);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 109.0);
}

} // namespace
} // namespace dstrain
