/**
 * @file
 * Tests for the discrete-event queue: ordering, FIFO tie-breaking,
 * cancellation semantics, runUntil, and a determinism property
 * sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/rng.hh"

namespace dstrain {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    EXPECT_DOUBLE_EQ(q.run(), 3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ClockAdvancesDuringRun)
{
    EventQueue q;
    SimTime seen = -1.0;
    q.schedule(5.0, [&] { seen = q.now(); });
    q.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueueTest, ScheduleAfterUsesNow)
{
    EventQueue q;
    SimTime fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(3.0, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, DoubleCancelAndStaleCancelAreNoops)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    q.run();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueueTest, CancelExecutedEventIsRejected)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.executedCount(), 1u);
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(5.0, [&] { order.push_back(5); });
    q.runUntil(3.0);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(EventQueueTest, StepRunsExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1.0, [&] { ++count; });
    q.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeathTest, PastSchedulingRejected)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(1.0, [] {}), "past");
}

/** Property: random schedules execute in nondecreasing time order. */
class EventOrderProperty : public testing::TestWithParam<int>
{
};

TEST_P(EventOrderProperty, NondecreasingExecution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    EventQueue q;
    std::vector<SimTime> fired;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const SimTime when = rng.uniform(0.0, 100.0);
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty,
                         testing::Range(1, 11));

} // namespace
} // namespace dstrain
