/**
 * @file
 * Chaos-fuzz harness: seeded random fault plans thrown at full
 * experiments across every generated fabric shape and three strategy
 * families, with the resilience layer on.
 *
 * Each scenario draws a FaultPlan from a SplitMix64 stream: exactly
 * one "kill" event (linkdown or flap) aimed at a redundant failure
 * domain, plus up to two soft degrades. Plans are random but safe by
 * construction — the kill always lands on one member of a redundant
 * pair (one rail of two, one spine of two, one aggregation switch of
 * two), so at least one live inter-node path survives and the run
 * must complete.
 *
 * Three properties are asserted per scenario:
 *   - no deadlock: the experiment finishes and reports a positive
 *     iteration time (byte conservation is fatal()-checked inside
 *     Experiment::run on every run);
 *   - the damage was real: at least one resilience counter moved;
 *   - bit-identical replay: re-running the same seed reproduces the
 *     exact report fingerprint.
 *
 * Set CHAOS_FUZZ_JSONL=<path> to append one JSON line per scenario
 * (seed, plan, fingerprint, counters) — CI uploads this artifact.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/presets.hh"
#include "core/report.hh"
#include "fault/fault_plan.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace dstrain {
namespace {

/** FNV-1a-64 of the report fingerprint (matches the capture tool). */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct ChaosScenario {
    const char *name;      ///< gtest instance name (alphanumeric)
    const char *fabric;    ///< "rail" | "spine-leaf" | "fat-tree"
    int nodes;
    const char *strategy;  ///< "ddp" | "zero3" | "fsdp"
    std::uint64_t seed;
};

StrategyConfig
strategyByName(const std::string &name)
{
    if (name == "ddp")
        return StrategyConfig::ddp();
    if (name == "zero3")
        return StrategyConfig::zero(3);
    if (name == "fsdp")
        return StrategyConfig::fsdp();
    ADD_FAILURE() << "unknown strategy " << name;
    return StrategyConfig::ddp();
}

FabricSpec
fabricByName(const std::string &name)
{
    FabricSpec spec;
    if (name == "rail") {
        spec.kind = FabricKind::Rail;
    } else if (name == "spine-leaf") {
        spec.kind = FabricKind::SpineLeaf;
        spec.leaves = 2;
        spec.spines = 2;
    } else if (name == "fat-tree") {
        spec.kind = FabricKind::FatTree;
        spec.fat_tree_k = 4;
    } else {
        ADD_FAILURE() << "unknown fabric " << name;
    }
    return spec;
}

/**
 * Draw a random-but-safe fault plan for @p fabric from @p rng.
 *
 * The kill target is one member of the fabric's redundant pair:
 * rail0/rail1 on the rail fabric; sw2/sw3 on both spine-leaf
 * (leaves=2 puts the two spines at ordinals 2 and 3) and the
 * single-pod fat-tree (edges are sw0/sw1, the two aggregation
 * switches sw2/sw3). Killing either member leaves the other as a
 * live inter-node path. Kill times stay inside the first iteration
 * so the damage always lands mid-collective.
 */
std::string
randomPlan(const std::string &fabric, Rng &rng)
{
    const std::string kill_target =
        fabric == "rail"
            ? csprintf("rail%d", static_cast<int>(rng.below(2)))
            : csprintf("sw%d", static_cast<int>(2 + rng.below(2)));
    const double kill_at = rng.uniform(0.002, 0.02);
    std::string plan =
        rng.below(2) == 0
            ? csprintf("linkdown@%.4g:%s", kill_at, kill_target.c_str())
            : csprintf("flap@%.4g+%.4g:%s", kill_at,
                       rng.uniform(0.01, 0.05), kill_target.c_str());
    const std::uint64_t degrades = rng.below(3);
    for (std::uint64_t i = 0; i < degrades; ++i) {
        plan += csprintf(",degrade@%.4g+%.4g:%s:%.2f",
                         rng.uniform(0.002, 0.03),
                         rng.uniform(0.01, 0.08),
                         rng.below(2) == 0 ? "roce" : "nvlink",
                         rng.uniform(0.3, 0.8));
    }
    return plan;
}

ExperimentConfig
scenarioConfig(const ChaosScenario &sc, const std::string &plan)
{
    ExperimentConfig cfg = paperExperiment(
        sc.nodes, strategyByName(sc.strategy), /*billions=*/1.2);
    cfg.iterations = 2;
    cfg.warmup = 0;
    cfg.cluster.fabric = fabricByName(sc.fabric);
    cfg.resilience.enabled = true;
    std::vector<ConfigError> errors;
    cfg.faults = parseFaultSpec(plan, &errors);
    EXPECT_TRUE(errors.empty())
        << plan << ": " << formatConfigErrors(errors);
    return cfg;
}

void
appendJsonl(const ChaosScenario &sc, const std::string &plan,
            std::uint64_t hash, const ResilienceStats &rs)
{
    const char *path = std::getenv("CHAOS_FUZZ_JSONL");
    if (path == nullptr || *path == '\0')
        return;
    std::ofstream out(path, std::ios::app);
    out << csprintf(
        "{\"scenario\":\"%s\",\"seed\":\"0x%llx\",\"fabric\":\"%s\","
        "\"nodes\":%d,\"strategy\":\"%s\",\"plan\":\"%s\","
        "\"fingerprint\":\"0x%016llx\",\"route_invalidations\":%llu,"
        "\"reconvergence_waits\":%llu,\"collective_timeouts\":%llu,"
        "\"collective_fallbacks\":%llu,\"comm_shrinks\":%llu}\n",
        sc.name, static_cast<unsigned long long>(sc.seed), sc.fabric,
        sc.nodes, sc.strategy, plan.c_str(),
        static_cast<unsigned long long>(hash),
        static_cast<unsigned long long>(rs.route_invalidations),
        static_cast<unsigned long long>(rs.reconvergence_waits),
        static_cast<unsigned long long>(rs.collective_timeouts),
        static_cast<unsigned long long>(rs.collective_fallbacks),
        static_cast<unsigned long long>(rs.comm_shrinks));
}

class ChaosFuzz : public testing::TestWithParam<ChaosScenario>
{};

TEST_P(ChaosFuzz, SurvivesAndReplaysBitIdentically)
{
    const ChaosScenario &sc = GetParam();
    Rng rng(sc.seed);
    const std::string plan = randomPlan(sc.fabric, rng);
    SCOPED_TRACE(csprintf("seed 0x%llx plan '%s'",
                          static_cast<unsigned long long>(sc.seed),
                          plan.c_str()));

    const ExperimentReport first =
        runExperiment(scenarioConfig(sc, plan));
    EXPECT_GT(first.iteration_time, 0.0);
    EXPECT_TRUE(first.resilience.any())
        << "the plan damaged nothing the resilience layer saw";
    const std::uint64_t hash = fnv1a64(reportFingerprint(first));
    appendJsonl(sc, plan, hash, first.resilience);

    // Same seed, fresh experiment: the replay must be bit-identical,
    // counters included.
    const ExperimentReport again =
        runExperiment(scenarioConfig(sc, plan));
    EXPECT_EQ(fnv1a64(reportFingerprint(again)), hash);
    EXPECT_EQ(again.resilience.route_invalidations,
              first.resilience.route_invalidations);
    EXPECT_EQ(again.resilience.collective_timeouts,
              first.resilience.collective_timeouts);
    EXPECT_EQ(again.resilience.collective_fallbacks,
              first.resilience.collective_fallbacks);
}

// Twelve seeded scenarios: the full fabric x strategy grid plus one
// extra seed per fabric. Seeds are arbitrary but frozen — CI replays
// these exact plans every run.
INSTANTIATE_TEST_SUITE_P(
    Seeded, ChaosFuzz,
    testing::Values(
        ChaosScenario{"RailDdp", "rail", 2, "ddp", 0xc4a0501ull},
        ChaosScenario{"RailZero3", "rail", 2, "zero3", 0xc4a0502ull},
        ChaosScenario{"RailFsdp", "rail", 2, "fsdp", 0xc4a0503ull},
        ChaosScenario{"SpineLeafDdp", "spine-leaf", 2, "ddp",
                      0xc4a0504ull},
        ChaosScenario{"SpineLeafZero3", "spine-leaf", 2, "zero3",
                      0xc4a0505ull},
        ChaosScenario{"SpineLeafFsdp", "spine-leaf", 2, "fsdp",
                      0xc4a0506ull},
        ChaosScenario{"FatTreeDdp", "fat-tree", 4, "ddp",
                      0xc4a0507ull},
        ChaosScenario{"FatTreeZero3", "fat-tree", 4, "zero3",
                      0xc4a0508ull},
        ChaosScenario{"FatTreeFsdp", "fat-tree", 4, "fsdp",
                      0xc4a0509ull},
        ChaosScenario{"RailDdpReseed", "rail", 2, "ddp",
                      0xc4a050aull},
        ChaosScenario{"SpineLeafZero3Reseed", "spine-leaf", 2,
                      "zero3", 0xc4a050bull},
        ChaosScenario{"FatTreeFsdpReseed", "fat-tree", 4, "fsdp",
                      0xc4a050cull}),
    [](const testing::TestParamInfo<ChaosScenario> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace dstrain
