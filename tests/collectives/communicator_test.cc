/**
 * @file
 * Tests for the collective engine: completion, traffic volumes on
 * the fabric, channel pinning, and timing against the analytic ring
 * formulas.
 */

#include <gtest/gtest.h>

#include "collectives/algorithms.hh"
#include "collectives/volume.hh"

namespace dstrain {
namespace {

class CollectiveTest : public testing::Test
{
  protected:
    explicit CollectiveTest(int nodes = 1)
        : cluster_(makeSpec(nodes)), flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_), coll_(tm_)
    {
    }

    static ClusterSpec
    makeSpec(int nodes)
    {
        ClusterSpec spec;
        spec.nodes = nodes;
        return spec;
    }

    Bytes
    fabricBytes(LinkClass cls)
    {
        flows_.finalizeLogs();
        Bytes total = 0.0;
        for (const Resource &r : cluster_.topology().resources())
            if (r.cls == cls)
                total += r.log.totalBytes();
        return total;
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
    CollectiveEngine coll_;
};

class DualNodeCollectiveTest : public CollectiveTest
{
  protected:
    DualNodeCollectiveTest() : CollectiveTest(2) {}
};

TEST_F(CollectiveTest, WorldOfBuildsContiguousRanks)
{
    const CommGroup g = CommGroup::worldOf(4);
    EXPECT_EQ(g.size(), 4);
    EXPECT_EQ(g.ranks, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(CollectiveTest, AllReduceCompletesWithRightVolume)
{
    const Bytes payload = 4e9;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(4), payload,
                    [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(coll_.completedCount(), 1u);
    // Ring all-reduce total fabric traffic: 2 (N-1) S.
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 6.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, ReduceScatterAndAllGatherVolumes)
{
    const Bytes payload = 4e9;
    coll_.reduceScatter(CommGroup::worldOf(4), payload, nullptr);
    sim_.run();
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 3.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, AllReduceTimeMatchesAnalyticRing)
{
    const Bytes payload = 8e9;
    coll_.allReduce(CommGroup::worldOf(4), payload, nullptr);
    sim_.run();
    // NVLink pair effective: 100 GBps * 0.8.
    const SimTime ideal = ringCollectiveIdealTime(
        CollectiveOp::AllReduce, 4, payload, 80e9);
    EXPECT_NEAR(sim_.now(), ideal, ideal * 0.02);
}

TEST_F(CollectiveTest, BroadcastCompletes)
{
    bool done = false;
    coll_.broadcast(CommGroup::worldOf(4), 2, 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 3e9, 1e4);
}

TEST_F(CollectiveTest, ReduceCompletes)
{
    bool done = false;
    coll_.reduce(CommGroup::worldOf(4), 0, 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
}

TEST_F(CollectiveTest, PointToPoint)
{
    bool done = false;
    coll_.pointToPoint(0, 3, 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 1e9, 1e3);
}

TEST_F(CollectiveTest, SubgroupOnlyTouchesItsLinks)
{
    CommGroup pair;
    pair.ranks = {0, 1};
    coll_.allReduce(pair, 1e9, nullptr);
    sim_.run();
    flows_.finalizeLogs();
    for (const Resource &r : cluster_.topology().resources()) {
        if (r.cls == LinkClass::NvLink &&
            r.label.find("nvlink0-1") == std::string::npos) {
            EXPECT_DOUBLE_EQ(r.log.totalBytes(), 0.0) << r.label;
        }
    }
}

TEST_F(DualNodeCollectiveTest, SpanningGroupUsesRoce)
{
    coll_.allReduce(CommGroup::worldOf(8), 1e9, nullptr);
    sim_.run();
    EXPECT_GT(fabricBytes(LinkClass::Roce), 1e9);
}

TEST_F(DualNodeCollectiveTest, PinnedChannelsTouchBothNicsAndXgmi)
{
    CollectiveOptions opts;
    opts.channels = 2;
    coll_.allReduce(CommGroup::worldOf(8), 4e9, nullptr, opts);
    sim_.run();
    flows_.finalizeLogs();
    // Channel 1 pins to NIC1: socket-0 GPUs must cross xGMI.
    Bytes xgmi = 0.0;
    int nics_used = 0;
    for (const Resource &r : cluster_.topology().resources()) {
        if (r.cls == LinkClass::Xgmi)
            xgmi += r.log.totalBytes();
        if (r.cls == LinkClass::Roce && r.log.totalBytes() > 0)
            ++nics_used;
    }
    EXPECT_GT(xgmi, 0.0);
    EXPECT_EQ(nics_used, 8);  // all NIC links in both directions
}

TEST_F(DualNodeCollectiveTest, UnpinnedAvoidsXgmi)
{
    CollectiveOptions opts;
    opts.pin_channels_to_nics = false;
    coll_.allReduce(CommGroup::worldOf(8), 4e9, nullptr, opts);
    sim_.run();
    EXPECT_DOUBLE_EQ(fabricBytes(LinkClass::Xgmi), 0.0);
}

TEST_F(CollectiveTest, BandwidthFactorSlowsCollective)
{
    coll_.allReduce(CommGroup::worldOf(4), 4e9, nullptr);
    sim_.run();
    const SimTime fast = sim_.now();

    Simulation sim2;
    Cluster cluster2(makeSpec(1));
    FlowScheduler flows2(sim2, cluster2.topology());
    TransferManager tm2(sim2, cluster2, flows2);
    CollectiveEngine coll2(tm2);
    CollectiveOptions opts;
    opts.bandwidth_factor = 0.5;
    coll2.allReduce(CommGroup::worldOf(4), 4e9, nullptr, opts);
    sim2.run();
    EXPECT_NEAR(sim2.now(), 2.0 * fast, fast * 0.05);
}

TEST_F(CollectiveTest, PairwiseAllReduceMatchesRingVolume)
{
    // Different schedule, same fabric bytes: pairwise exchange moves
    // 2 (N-1) S just like the ring (every intra-node pair has a
    // direct NVLink, so logical hops == fabric traffic).
    const Bytes payload = 4e9;
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Pairwise;
    coll_.allReduce(CommGroup::worldOf(4), payload, nullptr, opts);
    sim_.run();
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 6.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, TreeAllReduceMatchesRingVolume)
{
    const Bytes payload = 4e9;
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Tree;
    coll_.allReduce(CommGroup::worldOf(4), payload, nullptr, opts);
    sim_.run();
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 6.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, TreeReduceScatterMatchesRingVolume)
{
    const Bytes payload = 4e9;
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Tree;
    coll_.reduceScatter(CommGroup::worldOf(4), payload, nullptr, opts);
    sim_.run();
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 3.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, AllToAllVolumeAndCompletion)
{
    // (N-1)/N of every rank's payload leaves the GPU: (N-1) S total.
    const Bytes payload = 4e9;
    bool done = false;
    coll_.allToAll(CommGroup::worldOf(4), payload, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(fabricBytes(LinkClass::NvLink), 3.0 * payload,
                payload * 1e-6);
}

TEST_F(CollectiveTest, UsageRecordsConcreteAlgorithms)
{
    const Bytes payload = 1e9;
    coll_.allReduce(CommGroup::worldOf(4), payload, nullptr);
    // The ring default cannot run all-to-all; usage must show the
    // pairwise fallback that actually ran, not the requested ring.
    coll_.allToAll(CommGroup::worldOf(4), payload, nullptr);
    sim_.run();

    ASSERT_EQ(coll_.usage().size(), 2u);
    const CollectiveUsage &ar = coll_.usage()[0];
    EXPECT_EQ(ar.op, CollectiveOp::AllReduce);
    EXPECT_EQ(ar.algo, CollectiveAlgo::Ring);
    EXPECT_EQ(ar.invocations, 1u);
    EXPECT_DOUBLE_EQ(ar.payload_bytes, payload);
    EXPECT_DOUBLE_EQ(ar.fabric_bytes,
                     collectiveTotalVolume(CollectiveOp::AllReduce, 4,
                                           payload));
    const CollectiveUsage &a2a = coll_.usage()[1];
    EXPECT_EQ(a2a.op, CollectiveOp::AllToAll);
    EXPECT_EQ(a2a.algo, CollectiveAlgo::Pairwise);
    EXPECT_DOUBLE_EQ(a2a.fabric_bytes,
                     collectiveTotalVolume(CollectiveOp::AllToAll, 4,
                                           payload));
}

TEST_F(CollectiveTest, EngineSpecDrivesAutoInvocations)
{
    std::string err;
    const auto spec = parseCollectiveAlgoSpec("pairwise", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    coll_.setAlgoSpec(*spec);
    coll_.allReduce(CommGroup::worldOf(4), 1e9, nullptr);
    // Per-invocation options still win over the engine spec.
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Ring;
    coll_.allReduce(CommGroup::worldOf(4), 1e9, nullptr, opts);
    sim_.run();

    ASSERT_EQ(coll_.usage().size(), 2u);
    EXPECT_EQ(coll_.usage()[0].algo, CollectiveAlgo::Pairwise);
    EXPECT_EQ(coll_.usage()[1].algo, CollectiveAlgo::Ring);
}

/** RoCE bytes of one dual-node 8-rank all-reduce under @p algo. */
Bytes
dualNodeRoceBytes(CollectiveAlgo algo)
{
    Simulation sim;
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    TransferManager tm(sim, cluster, flows);
    CollectiveEngine coll(tm);
    CollectiveOptions opts;
    opts.algorithm = algo;
    coll.allReduce(CommGroup::worldOf(8), 4e9, nullptr, opts);
    sim.run();
    flows.finalizeLogs();
    Bytes total = 0.0;
    for (const Resource &r : cluster.topology().resources())
        if (r.cls == LinkClass::Roce)
            total += r.log.totalBytes();
    return total;
}

TEST_F(DualNodeCollectiveTest, HierarchicalCutsRoceByClosedForm)
{
    // The measured RoCE ratio between the hierarchical and flat-ring
    // all-reduce must match the collectiveInterNodeBytes closed form:
    // 2 (M-1) vs 2 (N-1) M / N payloads, = 4/7 on 2 nodes x 4 GPUs.
    const double measured =
        dualNodeRoceBytes(CollectiveAlgo::Hierarchical) /
        dualNodeRoceBytes(CollectiveAlgo::Ring);
    const double closed =
        collectiveInterNodeBytes(CollectiveOp::AllReduce,
                                 CollectiveAlgo::Hierarchical, 2, 4,
                                 1e9) /
        collectiveInterNodeBytes(CollectiveOp::AllReduce,
                                 CollectiveAlgo::Ring, 2, 4, 1e9);
    EXPECT_NEAR(measured, closed, 0.01);
    EXPECT_NEAR(closed, 4.0 / 7.0, 1e-12);
}

TEST_F(CollectiveTest, DeathOnSingletonGroup)
{
    CommGroup solo;
    solo.ranks = {0};
    EXPECT_DEATH(coll_.allReduce(solo, 1.0, nullptr), ">= 2");
}

} // namespace
} // namespace dstrain
