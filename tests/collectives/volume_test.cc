/**
 * @file
 * Tests for the closed-form collective volume/time formulas,
 * including the ZeRO paper's communication-volume claims.
 */

#include <gtest/gtest.h>

#include "collectives/volume.hh"

namespace dstrain {
namespace {

TEST(VolumeTest, AllReduceClassicFormula)
{
    // 2 (N-1)/N per rank.
    EXPECT_DOUBLE_EQ(
        collectiveSendVolumePerRank(CollectiveOp::AllReduce, 4, 100.0),
        150.0);
    EXPECT_DOUBLE_EQ(
        collectiveTotalVolume(CollectiveOp::AllReduce, 4, 100.0),
        600.0);
}

TEST(VolumeTest, ReduceScatterAndAllGatherHalveAllReduce)
{
    for (int n : {2, 4, 8, 16}) {
        const Bytes ar = collectiveSendVolumePerRank(
            CollectiveOp::AllReduce, n, 64.0);
        const Bytes rs = collectiveSendVolumePerRank(
            CollectiveOp::ReduceScatter, n, 64.0);
        const Bytes ag = collectiveSendVolumePerRank(
            CollectiveOp::AllGather, n, 64.0);
        EXPECT_DOUBLE_EQ(rs + ag, ar);
        EXPECT_DOUBLE_EQ(rs, ag);
    }
}

TEST(VolumeTest, ZeroStageVolumeClaims)
{
    // Paper Sec. II-C: ZeRO-1/2 keep DDP's volume; ZeRO-3 adds 50%.
    const int n = 8;
    const Bytes grads = 1.0;
    const Bytes params = 1.0;
    const Bytes ddp =
        collectiveSendVolumePerRank(CollectiveOp::AllReduce, n, grads);
    const Bytes zero2 =
        collectiveSendVolumePerRank(CollectiveOp::ReduceScatter, n,
                                    grads) +
        collectiveSendVolumePerRank(CollectiveOp::AllGather, n, params);
    // ZeRO-3: gather params twice (fwd+bwd) + reduce-scatter grads.
    const Bytes zero3 =
        2.0 * collectiveSendVolumePerRank(CollectiveOp::AllGather, n,
                                          params) +
        collectiveSendVolumePerRank(CollectiveOp::ReduceScatter, n,
                                    grads);
    EXPECT_DOUBLE_EQ(zero2, ddp);
    EXPECT_DOUBLE_EQ(zero3, 1.5 * ddp);
}

TEST(VolumeTest, RingIdealTimes)
{
    const Bps bw = 100.0;
    EXPECT_DOUBLE_EQ(ringCollectiveIdealTime(CollectiveOp::AllGather, 4,
                                             400.0, bw),
                     3.0);
    EXPECT_DOUBLE_EQ(ringCollectiveIdealTime(CollectiveOp::AllReduce, 4,
                                             400.0, bw),
                     6.0);
    // Broadcast pipeline with 8 slices over 4 ranks.
    EXPECT_DOUBLE_EQ(ringCollectiveIdealTime(CollectiveOp::Broadcast, 4,
                                             800.0, bw),
                     10.0);
}

TEST(VolumeDeathTest, TooFewRanks)
{
    EXPECT_DEATH(
        collectiveSendVolumePerRank(CollectiveOp::AllReduce, 1, 1.0),
        ">= 2");
}

/** Parameterized: volumes scale linearly in bytes. */
class VolumeLinearity : public testing::TestWithParam<int>
{
};

TEST_P(VolumeLinearity, LinearInBytes)
{
    const int n = GetParam();
    for (int op = 0; op < 5; ++op) {
        const auto c = static_cast<CollectiveOp>(op);
        const Bytes v1 = collectiveSendVolumePerRank(c, n, 10.0);
        const Bytes v2 = collectiveSendVolumePerRank(c, n, 20.0);
        EXPECT_DOUBLE_EQ(v2, 2.0 * v1);
    }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, VolumeLinearity,
                         testing::Values(2, 3, 4, 8, 16));

} // namespace
} // namespace dstrain
