/**
 * @file
 * Parameterized scaling laws of the simulated collectives: measured
 * completion time tracks the analytic ring formulas across group
 * sizes and payloads, and total fabric traffic follows the
 * closed-form volume accounting.
 */

#include <gtest/gtest.h>

#include "collectives/algorithms.hh"
#include "collectives/volume.hh"

namespace dstrain {
namespace {

struct ScalingCase {
    int ranks;
    int nodes;
    double payload_gb;
};

class CollectiveScaling : public testing::TestWithParam<ScalingCase>
{
};

TEST_P(CollectiveScaling, AllReduceTracksAnalyticRing)
{
    const ScalingCase c = GetParam();
    ClusterSpec spec;
    spec.nodes = c.nodes;
    Simulation sim;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    TransferManager tm(sim, cluster, flows);
    CollectiveEngine coll(tm);

    CommGroup group = CommGroup::worldOf(c.ranks);
    CollectiveOptions opts;
    opts.channels = 1;  // single ring for a clean analytic match
    opts.pin_channels_to_nics = false;
    coll.allReduce(group, c.payload_gb * 1e9, nullptr, opts);
    sim.run();

    const Bps bottleneck =
        TopologyView(cluster).ringBottleneckBandwidth(group);
    const SimTime ideal = ringCollectiveIdealTime(
        CollectiveOp::AllReduce, c.ranks, c.payload_gb * 1e9,
        bottleneck);
    EXPECT_NEAR(sim.now(), ideal, ideal * 0.05)
        << c.ranks << " ranks, " << c.payload_gb << " GB";

    // Fabric conservation: 2 (N-1) S bytes total. Each ring hop is a
    // single NVLink link intra-node, so the identity is exact there;
    // inter-node hops traverse several resources (PCIe, NIC, RoCE),
    // so only the single-node cases assert it.
    if (c.nodes == 1) {
        flows.finalizeLogs();
        Bytes total = 0.0;
        for (const Resource &r : cluster.topology().resources())
            total += r.log.totalBytes();
        EXPECT_NEAR(total,
                    collectiveTotalVolume(CollectiveOp::AllReduce,
                                          c.ranks,
                                          c.payload_gb * 1e9),
                    c.payload_gb * 1e9 * 1e-6 + 100.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GroupsAndPayloads, CollectiveScaling,
    testing::Values(ScalingCase{2, 1, 1.0}, ScalingCase{3, 1, 2.0},
                    ScalingCase{4, 1, 4.0}, ScalingCase{4, 1, 0.5},
                    ScalingCase{8, 2, 4.0}, ScalingCase{8, 2, 1.0}));

TEST(CollectiveScalingTest, TimeLinearInPayload)
{
    auto time_for = [](Bytes bytes) {
        Simulation sim;
        Cluster cluster{ClusterSpec{}};
        FlowScheduler flows(sim, cluster.topology());
        TransferManager tm(sim, cluster, flows);
        CollectiveEngine coll(tm);
        coll.allGather(CommGroup::worldOf(4), bytes, nullptr);
        sim.run();
        return sim.now();
    };
    const SimTime t1 = time_for(2e9);
    const SimTime t2 = time_for(4e9);
    EXPECT_NEAR(t2 / t1, 2.0, 0.02);
}

TEST(CollectiveScalingTest, TwoChannelsHalveInterNodeTime)
{
    auto time_for = [](int channels) {
        Simulation sim;
        ClusterSpec spec;
        spec.nodes = 2;
        Cluster cluster(spec);
        FlowScheduler flows(sim, cluster.topology());
        TransferManager tm(sim, cluster, flows);
        CollectiveEngine coll(tm);
        CollectiveOptions opts;
        opts.channels = channels;
        coll.allReduce(CommGroup::worldOf(8), 8e9, nullptr, opts);
        sim.run();
        return sim.now();
    };
    // The two rings ride independent NICs, so wall time halves.
    EXPECT_NEAR(time_for(1) / time_for(2), 2.0, 0.1);
}

} // namespace
} // namespace dstrain
