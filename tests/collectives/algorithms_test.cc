/**
 * @file
 * Tests for the topology-aware collective helpers.
 */

#include <gtest/gtest.h>

#include "collectives/algorithms.hh"

namespace dstrain {
namespace {

ClusterSpec
dualSpec()
{
    ClusterSpec spec;
    spec.nodes = 2;
    return spec;
}

TEST(AlgorithmsTest, NodeMajorOrderingStable)
{
    Cluster cluster(dualSpec());
    CommGroup shuffled;
    shuffled.ranks = {5, 0, 7, 2, 4, 1, 6, 3};
    const CommGroup ordered = orderNodeMajor(shuffled, cluster);
    // Node-0 ranks first, preserving their relative order.
    EXPECT_EQ(ordered.ranks,
              (std::vector<int>{0, 2, 1, 3, 5, 7, 4, 6}));
}

TEST(AlgorithmsTest, InterNodeHopCounts)
{
    Cluster cluster(dualSpec());
    EXPECT_EQ(interNodeHops(CommGroup::worldOf(8), cluster), 2);
    CommGroup intra;
    intra.ranks = {0, 1, 2, 3};
    EXPECT_EQ(interNodeHops(intra, cluster), 0);
    CommGroup alternating;
    alternating.ranks = {0, 4, 1, 5};  // worst case: every hop crosses
    EXPECT_EQ(interNodeHops(alternating, cluster), 4);
}

TEST(AlgorithmsTest, BottleneckIsNvlinkIntraNode)
{
    Cluster cluster(ClusterSpec{});
    CommGroup g = CommGroup::worldOf(4);
    // NVLink pair effective bandwidth.
    EXPECT_NEAR(ringBottleneckBandwidth(g, cluster), 80e9, 1e6);
}

TEST(AlgorithmsTest, BottleneckIsRoceAcrossNodes)
{
    Cluster cluster(dualSpec());
    CommGroup g = CommGroup::worldOf(8);
    // The GPU-to-remote-GPU route: degraded PCIe SerDes hops,
    // 26.24 GBps * 0.248.
    EXPECT_NEAR(ringBottleneckBandwidth(g, cluster),
                32e9 * 0.82 * 0.248, 1e7);
}

} // namespace
} // namespace dstrain
