/**
 * @file
 * Tests for the topology view and the pluggable collective-algorithm
 * library: node-major ordering, ring bottlenecks, channel
 * auto-selection, per-algorithm byte conservation against the
 * closed-form volumes, the support matrix, the `auto` selection
 * policy and its fallback chain, and the `--collective-algo` grammar.
 */

#include <gtest/gtest.h>

#include "collectives/algorithms.hh"
#include "collectives/volume.hh"

namespace dstrain {
namespace {

ClusterSpec
dualSpec()
{
    ClusterSpec spec;
    spec.nodes = 2;
    return spec;
}

Bytes
totalHopBytes(const std::vector<CollectiveRound> &rounds)
{
    Bytes total = 0.0;
    for (const CollectiveRound &round : rounds)
        for (const CollectiveHop &hop : round)
            total += hop.bytes;
    return total;
}

Bytes
interNodeHopBytes(const std::vector<CollectiveRound> &rounds,
                  const TopologyView &view)
{
    Bytes total = 0.0;
    for (const CollectiveRound &round : rounds)
        for (const CollectiveHop &hop : round)
            if (view.nodeOfRank(hop.src_rank) !=
                view.nodeOfRank(hop.dst_rank))
                total += hop.bytes;
    return total;
}

TEST(TopologyViewTest, NodeMajorOrderingStable)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    CommGroup shuffled;
    shuffled.ranks = {5, 0, 7, 2, 4, 1, 6, 3};
    const CommGroup ordered = view.orderNodeMajor(shuffled);
    // Node-0 ranks first, preserving their relative order.
    EXPECT_EQ(ordered.ranks,
              (std::vector<int>{0, 2, 1, 3, 5, 7, 4, 6}));
}

TEST(TopologyViewTest, InterNodeHopCounts)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    EXPECT_EQ(view.interNodeHops(CommGroup::worldOf(8)), 2);
    CommGroup intra;
    intra.ranks = {0, 1, 2, 3};
    EXPECT_EQ(view.interNodeHops(intra), 0);
    CommGroup alternating;
    alternating.ranks = {0, 4, 1, 5};  // worst case: every hop crosses
    EXPECT_EQ(view.interNodeHops(alternating), 4);
}

TEST(TopologyViewTest, BottleneckIsNvlinkIntraNode)
{
    Cluster cluster(ClusterSpec{});
    TopologyView view(cluster);
    // NVLink pair effective bandwidth.
    EXPECT_NEAR(view.ringBottleneckBandwidth(CommGroup::worldOf(4)),
                80e9, 1e6);
}

TEST(TopologyViewTest, BottleneckIsRoceAcrossNodes)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    // The GPU-to-remote-GPU route: degraded PCIe SerDes hops,
    // 26.24 GBps * 0.248.
    EXPECT_NEAR(view.ringBottleneckBandwidth(CommGroup::worldOf(8)),
                32e9 * 0.82 * 0.248, 1e7);
}

TEST(TopologyViewTest, NodeDecomposition)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    const CommGroup world = CommGroup::worldOf(8);
    EXPECT_EQ(view.nodesOf(world), (std::vector<int>{0, 1}));
    EXPECT_TRUE(view.spansNodes(world));
    EXPECT_EQ(view.ranksOnNode(world, 1).ranks,
              (std::vector<int>{4, 5, 6, 7}));
    EXPECT_TRUE(view.uniformRanksPerNode(world));

    CommGroup lopsided;
    lopsided.ranks = {0, 1, 2, 4};  // 3 ranks on node 0, 1 on node 1
    EXPECT_FALSE(view.uniformRanksPerNode(lopsided));

    CommGroup intra;
    intra.ranks = {0, 1, 2, 3};
    EXPECT_FALSE(view.spansNodes(intra));
    EXPECT_EQ(view.nodesOf(intra), (std::vector<int>{0}));
}

TEST(TopologyViewTest, DeprecatedWrappersMatchViewMethods)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    CommGroup g;
    g.ranks = {6, 1, 4, 3};
    EXPECT_EQ(orderNodeMajor(g, cluster).ranks,
              view.orderNodeMajor(g).ranks);
    EXPECT_EQ(interNodeHops(g, cluster), view.interNodeHops(g));
    EXPECT_DOUBLE_EQ(ringBottleneckBandwidth(g, cluster),
                     view.ringBottleneckBandwidth(g));
}

TEST(TopologyViewTest, ResolveChannelsAutoPolicy)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    CommGroup intra;
    intra.ranks = {0, 1, 2, 3};
    // Auto: one ring intra-node, one per NIC across nodes.
    EXPECT_EQ(resolveChannels(intra, 0, view), 1);
    EXPECT_EQ(resolveChannels(CommGroup::worldOf(8), 0, view), 2);
    // An explicit request always wins.
    EXPECT_EQ(resolveChannels(CommGroup::worldOf(8), 3, view), 3);
}

TEST(CollectiveAlgorithmTest, RoundsConserveClosedFormVolume)
{
    // Every (algorithm, op, group) combination the library supports
    // must put exactly collectiveTotalVolume bytes on the wire —
    // ring, pairwise, tree and hierarchical schedules all move the
    // same logical payload, only along different routes.
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    const Bytes share = 1e9;

    const CollectiveAlgo algos[] = {
        CollectiveAlgo::Ring, CollectiveAlgo::Pairwise,
        CollectiveAlgo::Tree, CollectiveAlgo::Hierarchical};
    const CollectiveOp ops[] = {
        CollectiveOp::AllReduce, CollectiveOp::ReduceScatter,
        CollectiveOp::AllGather, CollectiveOp::Broadcast,
        CollectiveOp::Reduce,    CollectiveOp::AllToAll};
    CommGroup three;
    three.ranks = {0, 1, 2};
    const CommGroup groups[] = {CommGroup::worldOf(8),
                                CommGroup::worldOf(4), three};

    int combos = 0;
    for (const CollectiveAlgo algo : algos) {
        const CollectiveAlgorithm &impl = collectiveAlgorithm(algo);
        for (const CollectiveOp op : ops) {
            for (const CommGroup &g : groups) {
                if (!impl.supports(op, g, view))
                    continue;
                const auto rounds =
                    impl.rounds(op, g, share, g.ranks[0], view);
                EXPECT_NEAR(totalHopBytes(rounds),
                            collectiveTotalVolume(op, g.size(), share),
                            share * 1e-9)
                    << impl.name() << " " << collectiveOpName(op)
                    << " n=" << g.size();
                ++combos;
            }
        }
    }
    // 4 algorithms x up to 6 ops x 3 groups, minus the unsupported
    // cells — make sure the sweep actually exercised the library.
    EXPECT_GE(combos, 30);
}

TEST(CollectiveAlgorithmTest, HierarchicalCutsInterNodeBytes)
{
    // The point of the two-level schedule: on 2 nodes x 4 GPUs the
    // flat ring ships 2(N-1)/N = 3.5 payloads across RoCE where the
    // hierarchical all-reduce ships 2(M-1) = 2. Both must match the
    // collectiveInterNodeBytes closed form exactly.
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    const CommGroup world = CommGroup::worldOf(8);
    const Bytes share = 1e9;

    for (const CollectiveOp op :
         {CollectiveOp::AllReduce, CollectiveOp::ReduceScatter,
          CollectiveOp::AllGather}) {
        for (const CollectiveAlgo algo :
             {CollectiveAlgo::Ring, CollectiveAlgo::Hierarchical}) {
            const CollectiveAlgorithm &impl = collectiveAlgorithm(algo);
            const CommGroup ordered = view.orderNodeMajor(world);
            const auto rounds = impl.rounds(op, ordered, share, 0, view);
            EXPECT_NEAR(interNodeHopBytes(rounds, view),
                        collectiveInterNodeBytes(op, algo, 2, 4, share),
                        share * 1e-9)
                << impl.name() << " " << collectiveOpName(op);
        }
    }
    EXPECT_LT(collectiveInterNodeBytes(CollectiveOp::AllReduce,
                                       CollectiveAlgo::Hierarchical, 2,
                                       4, share),
              collectiveInterNodeBytes(CollectiveOp::AllReduce,
                                       CollectiveAlgo::Ring, 2, 4,
                                       share));
}

TEST(CollectiveAlgorithmTest, SupportMatrix)
{
    Cluster cluster(dualSpec());
    TopologyView view(cluster);
    const CommGroup world8 = CommGroup::worldOf(8);
    const CommGroup world4 = CommGroup::worldOf(4);
    CommGroup three;
    three.ranks = {0, 1, 2};
    CommGroup lopsided;
    lopsided.ranks = {0, 1, 2, 4};

    const CollectiveAlgorithm &ring =
        collectiveAlgorithm(CollectiveAlgo::Ring);
    const CollectiveAlgorithm &pairwise =
        collectiveAlgorithm(CollectiveAlgo::Pairwise);
    const CollectiveAlgorithm &tree =
        collectiveAlgorithm(CollectiveAlgo::Tree);
    const CollectiveAlgorithm &hier =
        collectiveAlgorithm(CollectiveAlgo::Hierarchical);

    // Ring covers everything except all-to-all.
    EXPECT_TRUE(ring.supports(CollectiveOp::Broadcast, three, view));
    EXPECT_FALSE(ring.supports(CollectiveOp::AllToAll, world4, view));

    // Pairwise is the canonical all-to-all but has no rooted ops.
    EXPECT_TRUE(pairwise.supports(CollectiveOp::AllToAll, world4, view));
    EXPECT_FALSE(
        pairwise.supports(CollectiveOp::Broadcast, world4, view));
    EXPECT_FALSE(pairwise.supports(CollectiveOp::Reduce, world4, view));

    // Tree: rooted ops and all-reduce at any size; recursive
    // halving/doubling needs a power-of-two group.
    EXPECT_TRUE(tree.supports(CollectiveOp::AllReduce, three, view));
    EXPECT_TRUE(
        tree.supports(CollectiveOp::ReduceScatter, world4, view));
    EXPECT_FALSE(
        tree.supports(CollectiveOp::ReduceScatter, three, view));
    EXPECT_FALSE(tree.supports(CollectiveOp::AllGather, three, view));

    // Hierarchical needs a uniform multi-node group and only runs
    // the bandwidth ops.
    EXPECT_TRUE(hier.supports(CollectiveOp::AllReduce, world8, view));
    EXPECT_FALSE(hier.supports(CollectiveOp::AllReduce, world4, view));
    EXPECT_FALSE(
        hier.supports(CollectiveOp::AllReduce, lopsided, view));
    EXPECT_FALSE(hier.supports(CollectiveOp::Broadcast, world8, view));
}

TEST(CollectiveAlgorithmTest, AutoPolicyIsTopologyAware)
{
    Cluster dual(dualSpec());
    TopologyView dual_view(dual);
    Cluster single(ClusterSpec{});
    TopologyView single_view(single);
    const Bytes big = 1e9;
    const Bytes tiny = 4096.0;

    // Multi-node bandwidth ops take the two-level decomposition.
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::AllReduce,
                                        CommGroup::worldOf(8), big,
                                        dual_view),
              CollectiveAlgo::Hierarchical);
    // Intra-node stays on the ring for big payloads...
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::AllReduce,
                                        CommGroup::worldOf(4), big,
                                        single_view),
              CollectiveAlgo::Ring);
    // ...but small payloads are latency-bound: log2 N tree rounds.
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::AllReduce,
                                        CommGroup::worldOf(4), tiny,
                                        single_view),
              CollectiveAlgo::Tree);
    // All-to-all is always pairwise; rooted ops tree beyond 2 ranks.
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::AllToAll,
                                        CommGroup::worldOf(4), big,
                                        single_view),
              CollectiveAlgo::Pairwise);
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::Broadcast,
                                        CommGroup::worldOf(4), big,
                                        single_view),
              CollectiveAlgo::Tree);
    CommGroup pair;
    pair.ranks = {0, 1};
    EXPECT_EQ(chooseCollectiveAlgorithm(CollectiveOp::Broadcast, pair,
                                        big, single_view),
              CollectiveAlgo::Ring);
}

TEST(CollectiveAlgorithmTest, ResolutionFallsBackDeterministically)
{
    Cluster single(ClusterSpec{});
    TopologyView view(single);
    const CommGroup world4 = CommGroup::worldOf(4);
    CommGroup three;
    three.ranks = {0, 1, 2};

    // Hierarchical cannot run intra-node: falls back to ring.
    EXPECT_EQ(resolveCollectiveAlgorithm(CollectiveOp::AllGather,
                                         world4, 1e9,
                                         CollectiveAlgo::Hierarchical,
                                         view),
              CollectiveAlgo::Ring);
    // Tree reduce-scatter needs a power of two: falls back to ring.
    EXPECT_EQ(resolveCollectiveAlgorithm(CollectiveOp::ReduceScatter,
                                         three, 1e9,
                                         CollectiveAlgo::Tree, view),
              CollectiveAlgo::Ring);
    // Ring cannot run all-to-all: falls back to pairwise.
    EXPECT_EQ(resolveCollectiveAlgorithm(CollectiveOp::AllToAll, world4,
                                         1e9, CollectiveAlgo::Ring,
                                         view),
              CollectiveAlgo::Pairwise);
    // A supported explicit request sticks.
    EXPECT_EQ(resolveCollectiveAlgorithm(CollectiveOp::AllReduce,
                                         world4, 1e9,
                                         CollectiveAlgo::Pairwise,
                                         view),
              CollectiveAlgo::Pairwise);
    // Auto resolves to a concrete supported algorithm.
    const CollectiveAlgo resolved = resolveCollectiveAlgorithm(
        CollectiveOp::AllReduce, world4, 1e9, CollectiveAlgo::Auto,
        view);
    EXPECT_NE(resolved, CollectiveAlgo::Auto);
    EXPECT_TRUE(collectiveAlgorithm(resolved).supports(
        CollectiveOp::AllReduce, world4, view));
}

TEST(CollectiveAlgorithmTest, ParseAlgoNames)
{
    EXPECT_EQ(parseCollectiveAlgo("ring"), CollectiveAlgo::Ring);
    EXPECT_EQ(parseCollectiveAlgo("pairwise"), CollectiveAlgo::Pairwise);
    EXPECT_EQ(parseCollectiveAlgo("tree"), CollectiveAlgo::Tree);
    EXPECT_EQ(parseCollectiveAlgo("hierarchical"),
              CollectiveAlgo::Hierarchical);
    EXPECT_EQ(parseCollectiveAlgo("auto"), CollectiveAlgo::Auto);
    EXPECT_FALSE(parseCollectiveAlgo("mesh").has_value());
    EXPECT_FALSE(parseCollectiveAlgo("Ring").has_value());
}

TEST(CollectiveAlgorithmTest, ParseSpecGrammar)
{
    std::string err;
    auto spec = parseCollectiveAlgoSpec(
        "ring,allreduce=hierarchical,all-to-all=pairwise", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->default_algo, CollectiveAlgo::Ring);
    EXPECT_EQ(spec->requestedFor(CollectiveOp::AllReduce),
              CollectiveAlgo::Hierarchical);
    EXPECT_EQ(spec->requestedFor(CollectiveOp::AllToAll),
              CollectiveAlgo::Pairwise);
    // Un-overridden ops fall through to the default.
    EXPECT_EQ(spec->requestedFor(CollectiveOp::AllGather),
              CollectiveAlgo::Ring);

    // A bare name sets the default; both op spellings parse.
    spec = parseCollectiveAlgoSpec("tree", &err);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->requestedFor(CollectiveOp::Reduce),
              CollectiveAlgo::Tree);
    spec = parseCollectiveAlgoSpec("reduce-scatter=tree", &err);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->requestedFor(CollectiveOp::ReduceScatter),
              CollectiveAlgo::Tree);

    // The empty spec keeps the shipped (all-ring) defaults.
    spec = parseCollectiveAlgoSpec("", &err);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->default_algo, CollectiveAlgo::Ring);
}

TEST(CollectiveAlgorithmTest, ParseSpecRejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseCollectiveAlgoSpec("mesh", &err).has_value());
    EXPECT_NE(err.find("mesh"), std::string::npos);
    EXPECT_FALSE(
        parseCollectiveAlgoSpec("gemm=ring", &err).has_value());
    EXPECT_NE(err.find("gemm"), std::string::npos);
    EXPECT_FALSE(
        parseCollectiveAlgoSpec("allreduce=", &err).has_value());
    EXPECT_FALSE(parseCollectiveAlgoSpec("ring,,tree", &err).has_value());
    EXPECT_NE(err.find("empty"), std::string::npos);
}

} // namespace
} // namespace dstrain
