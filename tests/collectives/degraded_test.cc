/**
 * @file
 * Collectives on a damaged fabric: every schedule family must survive
 * a mid-operation capacity-zero cut (rerouted by the stranded-flow
 * scan or rescued by the round watchdog), the hierarchical schedule
 * must fall back when its NVLink-domain assumption is cut, and the
 * elastic shrink must reform groups over surviving ranks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "collectives/communicator.hh"
#include "net/resilience.hh"

namespace dstrain {
namespace {

/** RoCE direction-resources touching NIC slot @p nic on any node. */
std::vector<ResourceId>
railResources(const Topology &topo, int nic)
{
    std::vector<ResourceId> rids;
    for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
        const HalfLink &hl = topo.halfLink(static_cast<HalfLinkId>(h));
        if (hl.cls != LinkClass::Roce)
            continue;
        const Component &from = topo.component(hl.from);
        const Component &to = topo.component(hl.to);
        const bool hit =
            (from.kind == ComponentKind::Nic && from.index == nic) ||
            (to.kind == ComponentKind::Nic && to.index == nic);
        if (hit && std::find(rids.begin(), rids.end(), hl.resource) ==
                       rids.end()) {
            rids.push_back(hl.resource);
        }
    }
    return rids;
}

class DegradedCollectiveTest : public testing::Test
{
  protected:
    DegradedCollectiveTest()
        : sim_(1), cluster_(makeSpec()),
          flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_), coll_(tm_)
    {
        cluster_.router().setAvoidDeadLinks(true);
        ResilienceConfig cfg;
        cfg.enabled = true;
        rc_ = std::make_unique<ResilienceCoordinator>(
            sim_, cluster_.router(), cfg);
        tm_.setResilience(rc_.get());
        tm_.configureRetry(RetryPolicy{true});
        coll_.configureResilience(rc_.get());
    }

    static ClusterSpec
    makeSpec()
    {
        ClusterSpec spec;
        spec.nodes = 2;
        return spec;
    }

    /**
     * Drop @p rids to capacity zero the way the injector does: one
     * scheduler batch, a bus publish, and (unless the test wants the
     * watchdog alone to act) a transfer-manager notification that
     * schedules the stranded-flow scan.
     */
    void
    kill(const std::vector<ResourceId> &rids, bool notify_tm = true)
    {
        std::vector<std::pair<ResourceId, Bps>> batch;
        for (ResourceId rid : rids)
            batch.emplace_back(rid, 0.0);
        flows_.setCapacities(batch);
        rc_->bus().publish(rids);
        if (notify_tm)
            tm_.notifyCapacityChange();
    }

    void
    killAt(SimTime when, std::vector<ResourceId> rids,
           bool notify_tm = true)
    {
        sim_.events().schedule(
            when, [this, rids = std::move(rids), notify_tm] {
                kill(rids, notify_tm);
            });
    }

    Bytes
    fabricBytes(LinkClass cls)
    {
        flows_.finalizeLogs();
        Bytes total = 0.0;
        for (const Resource &r : cluster_.topology().resources())
            if (r.cls == cls)
                total += r.log.totalBytes();
        return total;
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
    CollectiveEngine coll_;
    std::unique_ptr<ResilienceCoordinator> rc_;
};

TEST_F(DegradedCollectiveTest, RingSurvivesMidOpRailKill)
{
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Ring;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 2e9, [&] { done = true; },
                    opts);
    killAt(2e-3, railResources(cluster_.topology(), 0));
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().route_invalidations, 1u);
}

TEST_F(DegradedCollectiveTest, PairwiseSurvivesMidOpRailKill)
{
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Pairwise;
    bool done = false;
    coll_.allToAll(CommGroup::worldOf(8), 2e9, [&] { done = true; },
                   opts);
    killAt(2e-3, railResources(cluster_.topology(), 0));
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().route_invalidations, 1u);
}

TEST_F(DegradedCollectiveTest, TreeSurvivesMidOpRailKill)
{
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Tree;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 2e9, [&] { done = true; },
                    opts);
    killAt(2e-3, railResources(cluster_.topology(), 0));
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().route_invalidations, 1u);
}

TEST_F(DegradedCollectiveTest, HierarchicalSurvivesMidOpRailKill)
{
    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Hierarchical;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 2e9, [&] { done = true; },
                    opts);
    killAt(2e-3, railResources(cluster_.topology(), 0));
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().route_invalidations, 1u);
}

TEST_F(DegradedCollectiveTest, WatchdogRescuesStalledRound)
{
    // Cut exactly the RoCE links the ring's inter-node hops route
    // over, without notifying the transfer manager: no stranded-flow
    // scan runs, so only the round watchdog can rescue the stall.
    const Router &router = cluster_.router();
    std::vector<ResourceId> used;
    for (const auto &[s, d] : {std::pair<int, int>{3, 4}, {7, 0}}) {
        const Route r = router.routeForFlow(cluster_.gpuByRank(s),
                                            cluster_.gpuByRank(d), 0);
        for (HalfLinkId hid : r.hops) {
            const HalfLink &hl = cluster_.topology().halfLink(hid);
            if (hl.cls == LinkClass::Roce &&
                std::find(used.begin(), used.end(), hl.resource) ==
                    used.end()) {
                used.push_back(hl.resource);
            }
        }
    }
    ASSERT_FALSE(used.empty());

    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Ring;
    opts.channels = 1;
    opts.pin_channels_to_nics = false;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 8e8, [&] { done = true; },
                    opts);
    killAt(1e-3, used, /*notify_tm=*/false);
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().collective_timeouts, 1u);
}

TEST_F(DegradedCollectiveTest, HierarchicalFallsBackOnNvlinkCut)
{
    // Kill one NVLink direction on node 0: the hierarchical
    // schedule's intra-node-domain assumption is cut, so the engine
    // must re-resolve to a structure-free family instead of wedging.
    std::vector<ResourceId> cut;
    for (const Resource &res : cluster_.topology().resources()) {
        if (res.cls == LinkClass::NvLink && res.node == 0) {
            cut.push_back(res.id);
            break;
        }
    }
    ASSERT_FALSE(cut.empty());
    kill(cut);

    CollectiveOptions opts;
    opts.algorithm = CollectiveAlgo::Hierarchical;
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 1e9, [&] { done = true; },
                    opts);
    sim_.run();
    EXPECT_TRUE(done);
    tm_.verifyConservation();
    EXPECT_GE(rc_->stats().collective_fallbacks, 1u);
    // The usage table records what actually ran, not what was asked.
    bool ran_hierarchical = false;
    for (const CollectiveUsage &u : coll_.usage())
        ran_hierarchical |= u.algo == CollectiveAlgo::Hierarchical;
    EXPECT_FALSE(ran_hierarchical);
}

TEST_F(DegradedCollectiveTest, ElasticShrinkReformsGroupOverSurvivors)
{
    // Node 1's ranks (4..7) die; a group still naming them must run
    // over the survivors only — all traffic stays intra-node.
    coll_.markRanksDead({4, 5, 6, 7});
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_GE(rc_->stats().comm_shrinks, 1u);
    EXPECT_EQ(fabricBytes(LinkClass::Roce), 0.0);
}

TEST_F(DegradedCollectiveTest, DeadRootBroadcastPicksSurvivor)
{
    coll_.markRanksDead({4, 5, 6, 7});
    bool done = false;
    coll_.broadcast(CommGroup::worldOf(8), /*root=*/5, 1e9,
                    [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(fabricBytes(LinkClass::Roce), 0.0);
}

TEST_F(DegradedCollectiveTest, GroupShrunkBelowTwoCompletesTrivially)
{
    coll_.markRanksDead({1, 2, 3, 4, 5, 6, 7});
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(fabricBytes(LinkClass::NvLink), 0.0);
}

TEST_F(DegradedCollectiveTest, ClearDeadRanksRestoresFullGroup)
{
    coll_.markRanksDead({4, 5, 6, 7});
    coll_.clearDeadRanks();
    bool done = false;
    coll_.allReduce(CommGroup::worldOf(8), 1e9, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_GT(fabricBytes(LinkClass::Roce), 0.0);
}

} // namespace
} // namespace dstrain
