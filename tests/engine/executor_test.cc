/**
 * @file
 * Tests for the plan executor: per-kind task semantics, GPU/CPU
 * serialization, dependencies, iteration chaining, spans, and
 * determinism.
 */

#include <gtest/gtest.h>

#include "engine/executor.hh"

namespace dstrain {
namespace {

class ExecutorTest : public testing::Test
{
  protected:
    ExecutorTest()
        : cluster_(ClusterSpec{}), flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_), coll_(tm_), aio_(tm_),
          exec_(sim_, cluster_, flows_, tm_, coll_, aio_)
    {
        exec_.configureStorage(nvmePlacementConfig('B'));
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
    CollectiveEngine coll_;
    AioEngine aio_;
    Executor exec_;
};

TEST_F(ExecutorTest, GpuComputeDurationFollowsEfficiencyCurve)
{
    IterationPlan plan;
    plan.setModelLayers(24);
    // 1e12 FLOPs at 312 TFLOP/s * eff(24).
    plan.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "c");
    const IterationResult r = exec_.run(plan, 2, 1);
    const double eff = exec_.calibration().gemmEfficiency(24);
    const SimTime expected =
        1e12 / (312e12 * eff) + exec_.calibration().iteration_fixed;
    EXPECT_NEAR(r.avgIterationTime(), expected, 1e-6);
}

TEST_F(ExecutorTest, EfficiencyGrowsWithDepth)
{
    const EngineCalibration cal;
    EXPECT_LT(cal.gemmEfficiency(12), cal.gemmEfficiency(100));
    EXPECT_LT(cal.gemmEfficiency(100), cal.gemm_eff_max);
    EXPECT_NEAR(cal.gemmEfficiency(26), 0.38, 0.01);
}

TEST_F(ExecutorTest, SameRankComputeSerializes)
{
    IterationPlan plan;
    plan.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "a");
    plan.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "b");
    const IterationResult serial = exec_.run(plan, 2, 1);

    Simulation sim2;
    Cluster cluster2{ClusterSpec{}};
    FlowScheduler flows2(sim2, cluster2.topology());
    TransferManager tm2(sim2, cluster2, flows2);
    CollectiveEngine coll2(tm2);
    AioEngine aio2(tm2);
    Executor exec2(sim2, cluster2, flows2, tm2, coll2, aio2);
    IterationPlan parallel;
    parallel.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "a");
    parallel.gpuCompute(1, 1e12, ComputePhase::Forward, {}, "b");
    const IterationResult par = exec2.run(parallel, 2, 1);

    EXPECT_NEAR(serial.avgIterationTime(),
                2.0 * par.avgIterationTime() -
                    exec_.calibration().iteration_fixed,
                1e-6);
}

TEST_F(ExecutorTest, DependenciesRespected)
{
    IterationPlan plan;
    const int a = plan.gpuCompute(0, 1e12, ComputePhase::Forward, {},
                                  "a");
    const int b =
        plan.gpuCompute(1, 1e12, ComputePhase::Forward, {a}, "b");
    (void)b;
    const IterationResult r = exec_.run(plan, 1, 0);
    // b waits for a: two sequential durations despite two GPUs.
    const double eff = exec_.calibration().gemmEfficiency(24);
    EXPECT_NEAR(r.avgIterationTime(),
                2.0 * 1e12 / (312e12 * eff) +
                    exec_.calibration().iteration_fixed,
                1e-6);
}

TEST_F(ExecutorTest, CpuOptimizerUsesAdamRate)
{
    IterationPlan plan;
    plan.cpuOptimizer(0, 0, 1.5e9, {}, "adam");
    const IterationResult r = exec_.run(plan, 1, 0);
    // 1.5e9 params at 1.5e9 params/s ~ 1 s (+ fixed overhead).
    EXPECT_NEAR(r.avgIterationTime(),
                1.0 + exec_.calibration().iteration_fixed, 0.01);
}

TEST_F(ExecutorTest, CpuOptimizerSerializesPerSocket)
{
    IterationPlan plan;
    plan.cpuOptimizer(0, 0, 1.5e9, {}, "a");
    plan.cpuOptimizer(0, 0, 1.5e9, {}, "b");
    const IterationResult r = exec_.run(plan, 1, 0);
    EXPECT_GT(r.avgIterationTime(), 1.9);
}

TEST_F(ExecutorTest, HostTransferRidesPcie)
{
    IterationPlan plan;
    // 26.24 GB at PCIe x16 effective (26.24 GBps): ~1 s.
    plan.hostTransfer(0, 26.24e9, true, {}, "d2h");
    const IterationResult r = exec_.run(plan, 1, 0);
    EXPECT_NEAR(r.avgIterationTime(), 1.0, 0.05);
}

TEST_F(ExecutorTest, NvmeIoThroughConfiguredVolume)
{
    IterationPlan plan;
    // Rank 2 sits on socket 1 next to the drives: 6.6 GB read from
    // the 2-drive RAID0 (6.6 GBps aggregate) takes ~1 s.
    plan.nvmeIo(2, 0, 6.6e9, false, {}, "rd");
    const IterationResult r = exec_.run(plan, 1, 0);
    EXPECT_NEAR(r.avgIterationTime(), 1.0, 0.05);
}

TEST_F(ExecutorTest, CrossSocketNvmeIoPaysTheXbar)
{
    IterationPlan plan;
    // Rank 0 (socket 0) reading the socket-1 RAID0: the two striped
    // flows share the 4.7 GBps IOD crossbar pool.
    plan.nvmeIo(0, 0, 6.6e9, false, {}, "rd");
    const IterationResult r = exec_.run(plan, 1, 0);
    EXPECT_NEAR(r.avgIterationTime(), 6.6 / 4.7, 0.07);
}

TEST_F(ExecutorTest, CollectiveTaskCompletes)
{
    IterationPlan plan;
    plan.collective(CollectiveOp::AllReduce, CommGroup::worldOf(4),
                    8e9, {}, "ar");
    const IterationResult r = exec_.run(plan, 1, 0);
    EXPECT_GT(r.avgIterationTime(), 0.05);
}

TEST_F(ExecutorTest, IterationsChainAndWarmupExcluded)
{
    IterationPlan plan;
    plan.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "c");
    const IterationResult r = exec_.run(plan, 5, 2);
    EXPECT_EQ(r.iteration_ends.size(), 5u);
    EXPECT_EQ(r.measuredIterations(), 3);
    EXPECT_DOUBLE_EQ(r.measured_begin, r.iteration_ends[1]);
    for (std::size_t i = 1; i < r.iteration_ends.size(); ++i)
        EXPECT_GT(r.iteration_ends[i], r.iteration_ends[i - 1]);
}

TEST_F(ExecutorTest, SpansRecordedForFinalIteration)
{
    IterationPlan plan;
    plan.gpuCompute(0, 1e12, ComputePhase::Forward, {}, "c");
    plan.collective(CollectiveOp::AllReduce, CommGroup::worldOf(4),
                    1e9, {0}, "ar");
    const IterationResult r = exec_.run(plan, 3, 1);
    // 1 compute span + 4 per-rank collective spans.
    EXPECT_EQ(r.spans.size(), 5u);
    for (const TaskSpan &s : r.spans) {
        EXPECT_GE(s.begin, r.iteration_ends[1]);
        EXPECT_LE(s.end, r.measured_end);
        EXPECT_LT(s.begin, s.end);
    }
}

TEST_F(ExecutorTest, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Simulation sim;
        Cluster cluster{ClusterSpec{}};
        FlowScheduler flows(sim, cluster.topology());
        TransferManager tm(sim, cluster, flows);
        CollectiveEngine coll(tm);
        AioEngine aio(tm);
        Executor exec(sim, cluster, flows, tm, coll, aio);
        IterationPlan plan;
        const int c =
            plan.gpuCompute(0, 5e12, ComputePhase::Forward, {}, "c");
        plan.collective(CollectiveOp::AllReduce, CommGroup::worldOf(4),
                        3e9, {c}, "ar");
        return exec.run(plan, 4, 1).avgIterationTime();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(ExecutorTest, StreamingRunRetainsNoSegments)
{
    IterationPlan plan;
    plan.hostTransfer(0, 26.24e9, true, {}, "d2h");
    exec_.run(plan, 3, 1);
    const TelemetryStats stats = cluster_.topology().telemetryStats();
    EXPECT_EQ(stats.segments_retained, 0u);
    EXPECT_GT(stats.buckets_touched, 0u);
    EXPECT_GT(stats.stream_buckets, 0u);
}

TEST_F(ExecutorTest, RetainSegmentsConfigKeepsHistory)
{
    TelemetryConfig telemetry;
    telemetry.retain_segments = true;
    exec_.configureTelemetry(telemetry);
    IterationPlan plan;
    plan.hostTransfer(0, 26.24e9, true, {}, "d2h");
    exec_.run(plan, 3, 1);
    const TelemetryStats stats = cluster_.topology().telemetryStats();
    EXPECT_GT(stats.segments_retained, 0u);
}

TEST_F(ExecutorTest, DeathOnBadIterationCounts)
{
    IterationPlan plan;
    plan.gpuCompute(0, 1.0, ComputePhase::Forward, {}, "c");
    EXPECT_DEATH(exec_.run(plan, 0, 0), "iteration counts");
    EXPECT_DEATH(exec_.run(plan, 2, 2), "iteration counts");
}

} // namespace
} // namespace dstrain
