/**
 * @file
 * Tests for the iteration-result helpers.
 */

#include <gtest/gtest.h>

#include "engine/iteration_result.hh"

namespace dstrain {
namespace {

TEST(IterationResultTest, WindowAccounting)
{
    IterationResult r;
    r.iteration_ends = {1.0, 2.0, 3.0, 4.0};
    r.measured_begin = 1.0;
    r.measured_end = 4.0;
    r.flops_per_iteration = 3e12;
    EXPECT_EQ(r.measuredIterations(), 3);
    EXPECT_DOUBLE_EQ(r.avgIterationTime(), 1.0);
    EXPECT_DOUBLE_EQ(r.achievedTflops(), 3.0);
}

TEST(IterationResultTest, NoWarmup)
{
    IterationResult r;
    r.iteration_ends = {2.0, 4.0};
    r.measured_begin = 0.0;
    r.measured_end = 4.0;
    r.flops_per_iteration = 4e12;
    EXPECT_EQ(r.measuredIterations(), 2);
    EXPECT_DOUBLE_EQ(r.avgIterationTime(), 2.0);
    EXPECT_DOUBLE_EQ(r.achievedTflops(), 2.0);
}

TEST(IterationResultDeathTest, EmptyWindowIsFatal)
{
    IterationResult r;
    r.measured_begin = 1.0;
    r.measured_end = 1.0;
    EXPECT_DEATH(r.avgIterationTime(), "no measured iterations");
}

} // namespace
} // namespace dstrain
