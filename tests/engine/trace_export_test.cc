/**
 * @file
 * Tests for the Chrome-trace exporter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/trace_export.hh"

namespace dstrain {
namespace {

TaskSpan
span(int rank, TaskKind kind, ComputePhase phase, SimTime b, SimTime e,
     const std::string &label)
{
    TaskSpan s;
    s.rank = rank;
    s.kind = kind;
    s.phase = phase;
    s.begin = b;
    s.end = e;
    s.label = label;
    return s;
}

TEST(JsonEscapeTest, SpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceExportTest, EmitsEventsAndThreadNames)
{
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 0.0, 0.5,
             "fwd r0"),
        span(-1, TaskKind::CpuOptimizer, ComputePhase::Optimizer, 0.5,
             1.0, "cpu adam"),
    };
    const std::string json = renderChromeTrace(spans);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"fwd r0\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"fwd\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gpu0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"host\""), std::string::npos);
    // 0.5 s -> 500000 us duration.
    EXPECT_NE(json.find("\"dur\":500000.000"), std::string::npos);
}

TEST(TraceExportTest, WindowClipsSpans)
{
    std::vector<TaskSpan> spans = {
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 0.0, 0.5,
             "early"),
        span(0, TaskKind::GpuCompute, ComputePhase::Forward, 2.0, 2.5,
             "late"),
    };
    TraceOptions opts;
    opts.begin = 1.0;
    opts.end = 3.0;
    const std::string json = renderChromeTrace(spans, opts);
    EXPECT_EQ(json.find("early"), std::string::npos);
    EXPECT_NE(json.find("late"), std::string::npos);
}

TEST(TraceExportTest, WritesFile)
{
    const std::string path = testing::TempDir() + "dstrain_trace.json";
    std::vector<TaskSpan> spans = {
        span(1, TaskKind::GpuCompute, ComputePhase::Backward, 0.0, 1.0,
             "bwd"),
    };
    ASSERT_TRUE(writeChromeTrace(path, spans));
    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::string contents((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("bwd"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceExportTest, BadPathWarnsAndReturnsFalse)
{
    EXPECT_FALSE(
        writeChromeTrace("/nonexistent-dir/trace.json", {}));
}

} // namespace
} // namespace dstrain
