/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace dstrain {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, BelowBounded)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

} // namespace
} // namespace dstrain
