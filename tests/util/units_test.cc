/**
 * @file
 * Tests for unit conversions and formatting.
 */

#include <gtest/gtest.h>

#include "util/units.hh"

namespace dstrain {
namespace {

TEST(UnitsTest, DecimalSizes)
{
    EXPECT_DOUBLE_EQ(units::KB, 1e3);
    EXPECT_DOUBLE_EQ(units::GB, 1e9);
    EXPECT_DOUBLE_EQ(units::GiB, 1073741824.0);
    EXPECT_DOUBLE_EQ(units::Gbps, 125e6);
}

TEST(FormatBytesTest, PicksSuffix)
{
    EXPECT_EQ(formatBytes(500), "500 B");
    EXPECT_EQ(formatBytes(2.5 * units::KB), "2.50 kB");
    EXPECT_EQ(formatBytes(3.0 * units::MB), "3.00 MB");
    EXPECT_EQ(formatBytes(40.0 * units::GB), "40.00 GB");
    EXPECT_EQ(formatBytes(3.2 * units::TB), "3.20 TB");
}

TEST(FormatBandwidthTest, GbpsAndMbps)
{
    EXPECT_EQ(formatBandwidth(25.0 * units::GBps), "25.00 GBps");
    EXPECT_EQ(formatBandwidth(5.0 * units::MBps), "5.00 MBps");
}

TEST(FormatTimeTest, AdaptiveUnits)
{
    EXPECT_EQ(formatTime(2.5), "2.500 s");
    EXPECT_EQ(formatTime(1.5e-3), "1.500 ms");
    EXPECT_EQ(formatTime(42e-6), "42.000 us");
    EXPECT_EQ(formatTime(90e-9), "90.0 ns");
}

TEST(FormatParamsTest, BillionsAndMillions)
{
    EXPECT_EQ(formatParams(1400000000), "1.4 B");
    EXPECT_EQ(formatParams(94000000), "94.0 M");
    EXPECT_EQ(formatParams(123), "123");
}

} // namespace
} // namespace dstrain
