/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/args.hh"

namespace dstrain {
namespace {

ArgParser
makeParser()
{
    ArgParser args("prog", "test program");
    args.addOption("nodes", "1", "node count");
    args.addOption("model", "6.6", "model size");
    args.addFlag("csv", "emit csv");
    return args;
}

TEST(ArgParserTest, DefaultsApply)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_EQ(args.get("nodes"), "1");
    EXPECT_EQ(args.getInt("nodes"), 1);
    EXPECT_DOUBLE_EQ(args.getDouble("model"), 6.6);
    EXPECT_FALSE(args.getFlag("csv"));
    EXPECT_FALSE(args.provided("nodes"));
}

TEST(ArgParserTest, SpaceAndEqualsForms)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--nodes", "2", "--model=11.4",
                          "--csv"};
    ASSERT_TRUE(args.parse(5, argv));
    EXPECT_EQ(args.getInt("nodes"), 2);
    EXPECT_DOUBLE_EQ(args.getDouble("model"), 11.4);
    EXPECT_TRUE(args.getFlag("csv"));
    EXPECT_TRUE(args.provided("nodes"));
}

TEST(ArgParserTest, PositionalsCollected)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "alpha", "--nodes", "2", "beta"};
    ASSERT_TRUE(args.parse(5, argv));
    EXPECT_EQ(args.positional(),
              (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgParserTest, UnknownOptionRejected)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--bogus", "1"};
    EXPECT_FALSE(args.parse(3, argv));
}

TEST(ArgParserTest, MissingValueRejected)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--nodes"};
    EXPECT_FALSE(args.parse(2, argv));
}

TEST(ArgParserTest, FlagWithValueRejected)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--csv=yes"};
    EXPECT_FALSE(args.parse(2, argv));
}

TEST(ArgParserTest, HelpShortCircuits)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(args.parse(2, argv));
    EXPECT_NE(args.helpText().find("--nodes"), std::string::npos);
    EXPECT_NE(args.helpText().find("node count"), std::string::npos);
}

TEST(ArgParserDeathTest, MalformedNumbersFatal)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--nodes", "two"};
    ASSERT_TRUE(args.parse(3, argv));
    EXPECT_EXIT(args.getInt("nodes"), testing::ExitedWithCode(1),
                "integer");
}

TEST(ArgParserDeathTest, UndeclaredAccessPanics)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_DEATH(args.get("nope"), "undeclared");
}

} // namespace
} // namespace dstrain
