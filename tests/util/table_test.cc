/**
 * @file
 * Tests for the table and CSV writers.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace dstrain {
namespace {

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable t({"Config", "TFLOP/s"});
    t.addRow({"DDP", "438"});
    t.addRow({"ZeRO-2", "524"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Config"), std::string::npos);
    EXPECT_NE(out.find("DDP"), std::string::npos);
    EXPECT_NE(out.find("524"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTableTest, NumericCellsRightAligned)
{
    TextTable t({"Name", "Value"});
    t.addRow({"x", "5"});
    t.addRow({"longer-name", "12345"});
    const std::string out = t.render();
    // "5" must be right-aligned in its 5-wide column: "|     5 |".
    EXPECT_NE(out.find("|     5 |"), std::string::npos);
    // text stays left-aligned.
    EXPECT_NE(out.find("| x "), std::string::npos);
}

TEST(TextTableTest, SeparatorDoesNotCountAsRow)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTableDeathTest, RowArityChecked)
{
    TextTable t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TextTableTest, CsvEscaping)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");

    TextTable t({"Name", "Note"});
    t.addRow({"x", "a,b"});
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "Name,Note\nx,\"a,b\"\n");
}

TEST(TextTableTest, TitlePrinted)
{
    TextTable t({"A"});
    t.setTitle("My Table");
    t.addRow({"1"});
    EXPECT_EQ(t.render().rfind("My Table", 0), 0u);
}

} // namespace
} // namespace dstrain
