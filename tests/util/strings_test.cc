/**
 * @file
 * Tests for the string utilities.
 */

#include <gtest/gtest.h>

#include "util/strings.hh"

namespace dstrain {
namespace {

TEST(SplitTest, BasicAndEdgeCases)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split(",x,", ','),
              (std::vector<std::string>{"", "x", ""}));
}

TEST(JoinTest, RoundTripsWithSplit)
{
    const std::vector<std::string> parts = {"one", "two", "three"};
    EXPECT_EQ(join(parts, "-"), "one-two-three");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(PadTest, RightAndLeft)
{
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("abcdef", 3), "abc");
    EXPECT_EQ(padLeft("abcdef", 3), "abc");
    EXPECT_EQ(padRight("", 2), "  ");
}

TEST(TrimTest, Whitespace)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(StartsWithTest, Prefixes)
{
    EXPECT_TRUE(startsWith("dstrain", "ds"));
    EXPECT_TRUE(startsWith("dstrain", ""));
    EXPECT_FALSE(startsWith("ds", "dstrain"));
    EXPECT_FALSE(startsWith("dstrain", "tr"));
}

TEST(ToLowerTest, Ascii)
{
    EXPECT_EQ(toLower("ZeRO-3"), "zero-3");
    EXPECT_EQ(toLower(""), "");
}

} // namespace
} // namespace dstrain
