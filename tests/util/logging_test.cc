/**
 * @file
 * Tests for the logging/formatting facilities.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace dstrain {
namespace {

TEST(CsprintfTest, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(csprintf("%s-%c", "abc", 'x'), "abc-x");
}

TEST(CsprintfTest, HandlesLongStrings)
{
    const std::string big(10000, 'y');
    EXPECT_EQ(csprintf("%s", big.c_str()).size(), big.size());
}

TEST(CsprintfTest, EmptyFormat)
{
    EXPECT_EQ(csprintf("%s", ""), "");
}

TEST(LogLevelTest, RoundTrips)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(original);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("intentional test panic %d", 42), "panic");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("intentional test fatal"),
                testing::ExitedWithCode(1), "fatal");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(DSTRAIN_ASSERT(1 == 2, "math broke: %d", 7),
                 "assertion");
}

TEST(LoggingTest, AssertMacroPassesOnTrue)
{
    DSTRAIN_ASSERT(2 + 2 == 4, "never printed");
    SUCCEED();
}

} // namespace
} // namespace dstrain
