/**
 * @file
 * Tests for the statistics helpers, including a parameterized sweep
 * over percentile values (property: monotone in p, bounded by
 * min/max).
 */

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/stats.hh"

namespace dstrain {
namespace {

TEST(SampleSeriesTest, EmptyIsAllZero)
{
    SampleSeries s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleSeriesTest, SingleSample)
{
    SampleSeries s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSeriesTest, KnownValues)
{
    SampleSeries s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(90), 4.6);
    EXPECT_DOUBLE_EQ(s.summary().peak, 5.0);
}

TEST(SampleSeriesTest, OrderInvariant)
{
    SampleSeries a;
    SampleSeries b;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        a.add(v);
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        b.add(v);
    EXPECT_DOUBLE_EQ(a.percentile(90), b.percentile(90));
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(PercentileDeathTest, RejectsOutOfRange)
{
    std::vector<double> v = {1.0};
    EXPECT_DEATH(percentileOf(v, -1.0), "out of range");
    EXPECT_DEATH(percentileOf(v, 101.0), "out of range");
}

/** Property sweep: percentile is monotone and bounded. */
class PercentileProperty : public testing::TestWithParam<int>
{
};

TEST_P(PercentileProperty, MonotoneAndBounded)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    SampleSeries s;
    const int n = 1 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n; ++i)
        s.add(rng.uniform(-50.0, 50.0));

    double prev = s.percentile(0.0);
    EXPECT_DOUBLE_EQ(prev, s.min());
    for (double p = 5.0; p <= 100.0; p += 5.0) {
        const double cur = s.percentile(p);
        EXPECT_GE(cur, prev) << "p=" << p;
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(s.percentile(100.0), s.max());
    EXPECT_GE(s.mean(), s.min());
    EXPECT_LE(s.mean(), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         testing::Range(1, 21));

} // namespace
} // namespace dstrain
