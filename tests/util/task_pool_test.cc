/**
 * @file
 * Tests for the persistent worker pool behind parallel component
 * fills: exact index coverage, worker-id ranges, job reuse, and the
 * degenerate sizes the flow scheduler actually hits (empty solves,
 * single-component regions, serial pools).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/task_pool.hh"

namespace dstrain {
namespace {

TEST(TaskPoolTest, CoversEveryIndexExactlyOnce)
{
    TaskPool pool(3);
    EXPECT_EQ(pool.workers(), 4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i, int) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, WorkerIdsStayInRange)
{
    TaskPool pool(2);
    std::atomic<bool> bad{false};
    pool.parallelFor(500, [&](std::size_t, int worker) {
        if (worker < 0 || worker >= pool.workers())
            bad.store(true, std::memory_order_relaxed);
    });
    EXPECT_FALSE(bad.load());
}

TEST(TaskPoolTest, ZeroIndicesIsANoop)
{
    TaskPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t, int) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPoolTest, SerialPoolRunsEverythingOnTheCaller)
{
    // threads == 0 still yields a working pool: the calling thread is
    // always executor 0, exactly the shape solver_threads=1 builds.
    TaskPool pool(0);
    EXPECT_EQ(pool.workers(), 1);
    std::vector<int> hits(64, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i, int worker) {
        EXPECT_EQ(worker, 0);
        hits[i] += 1;
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(TaskPoolTest, ReusableAcrossManyJobs)
{
    // The scheduler issues one parallelFor per solved event; the pool
    // must survive thousands of wake/drain cycles without losing
    // indices.
    TaskPool pool(2);
    std::atomic<long> sum{0};
    long expected = 0;
    for (int job = 0; job < 200; ++job) {
        const std::size_t n = static_cast<std::size_t>(1 + job % 7);
        for (std::size_t i = 0; i < n; ++i)
            expected += static_cast<long>(i);
        pool.parallelFor(n, [&](std::size_t i, int) {
            sum.fetch_add(static_cast<long>(i),
                          std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), expected);
}

TEST(TaskPoolTest, PerWorkerScratchSeesNoSharing)
{
    // Callers key per-thread scratch off the worker id; two indices
    // running on the same worker must observe each other's writes in
    // program order (the drain loop is sequential per worker).
    TaskPool pool(3);
    std::vector<std::vector<std::size_t>> per_worker(
        static_cast<std::size_t>(pool.workers()));
    pool.parallelFor(300, [&](std::size_t i, int worker) {
        per_worker[static_cast<std::size_t>(worker)].push_back(i);
    });
    std::size_t total = 0;
    for (const auto &v : per_worker)
        total += v.size();
    EXPECT_EQ(total, 300u);
}

} // namespace
} // namespace dstrain
