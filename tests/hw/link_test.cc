/**
 * @file
 * Tests for link primitives: class names/efficiencies and the
 * RateLog piecewise-constant history.
 */

#include <gtest/gtest.h>

#include "hw/link.hh"

namespace dstrain {
namespace {

TEST(LinkClassTest, NamesMatchPaperColumns)
{
    EXPECT_STREQ(linkClassName(LinkClass::Dram), "DRAM");
    EXPECT_STREQ(linkClassName(LinkClass::Xgmi), "xGMI");
    EXPECT_STREQ(linkClassName(LinkClass::PcieGpu), "PCIe-GPU");
    EXPECT_STREQ(linkClassName(LinkClass::PcieNvme), "PCIe-NVME");
    EXPECT_STREQ(linkClassName(LinkClass::PcieNic), "PCIe-NIC");
    EXPECT_STREQ(linkClassName(LinkClass::NvLink), "NVLink");
    EXPECT_STREQ(linkClassName(LinkClass::Roce), "RoCE");
}

TEST(LinkClassTest, EfficienciesInUnitInterval)
{
    for (int i = 0; i < kNumLinkClasses; ++i) {
        const auto cls = static_cast<LinkClass>(i);
        const double eff = linkClassEfficiency(cls);
        EXPECT_GT(eff, 0.0) << linkClassName(cls);
        EXPECT_LE(eff, 1.0) << linkClassName(cls);
    }
    // RoCE calibrated to the paper's 93% stress result.
    EXPECT_DOUBLE_EQ(linkClassEfficiency(LinkClass::Roce), 0.93);
}

TEST(RateLogTest, RecordsSegments)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(2.0, 20.0);
    log.finalize(5.0);
    ASSERT_EQ(log.segments().size(), 2u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(log.segments()[0].end, 2.0);
    EXPECT_DOUBLE_EQ(log.segments()[0].rate, 10.0);
    EXPECT_DOUBLE_EQ(log.segments()[1].rate, 20.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 10.0 * 2.0 + 20.0 * 3.0);
}

TEST(RateLogTest, NoopOnUnchangedRate)
{
    RateLog log;
    log.setRate(0.0, 5.0);
    log.setRate(1.0, 5.0);  // no-op
    log.finalize(2.0);
    EXPECT_EQ(log.segments().size(), 1u);
}

TEST(RateLogTest, ZeroRateSegmentsAreDroppedFromInitial)
{
    RateLog log;
    // Rate stays 0 until t=3, then 7.
    log.setRate(3.0, 7.0);
    log.finalize(4.0);
    // The initial zero-rate stretch becomes a closed 0-rate segment.
    ASSERT_EQ(log.segments().size(), 2u);
    EXPECT_DOUBLE_EQ(log.segments()[0].rate, 0.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 7.0);
}

TEST(RateLogTest, FinalizeIdempotentAtSameTime)
{
    RateLog log;
    log.setRate(0.0, 1.0);
    log.finalize(2.0);
    log.finalize(2.0);
    EXPECT_EQ(log.segments().size(), 1u);
}

TEST(RateLogTest, DropBeforeTruncates)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(2.0, 20.0);
    log.finalize(4.0);
    log.dropBefore(2.0);
    ASSERT_EQ(log.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 2.0);

    log.clear();
    EXPECT_TRUE(log.segments().empty());
    EXPECT_DOUBLE_EQ(log.currentRate(), 0.0);
}

TEST(RateLogTest, DropBeforeClipsStraddlingSegment)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.finalize(4.0);
    log.dropBefore(1.0);
    ASSERT_EQ(log.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 1.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 30.0);
}

} // namespace
} // namespace dstrain
