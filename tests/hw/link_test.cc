/**
 * @file
 * Tests for link primitives: class names/efficiencies and the
 * RateLog piecewise-constant history.
 */

#include <gtest/gtest.h>

#include "hw/link.hh"

namespace dstrain {
namespace {

TEST(LinkClassTest, NamesMatchPaperColumns)
{
    EXPECT_STREQ(linkClassName(LinkClass::Dram), "DRAM");
    EXPECT_STREQ(linkClassName(LinkClass::Xgmi), "xGMI");
    EXPECT_STREQ(linkClassName(LinkClass::PcieGpu), "PCIe-GPU");
    EXPECT_STREQ(linkClassName(LinkClass::PcieNvme), "PCIe-NVME");
    EXPECT_STREQ(linkClassName(LinkClass::PcieNic), "PCIe-NIC");
    EXPECT_STREQ(linkClassName(LinkClass::NvLink), "NVLink");
    EXPECT_STREQ(linkClassName(LinkClass::Roce), "RoCE");
}

TEST(LinkClassTest, EfficienciesInUnitInterval)
{
    for (int i = 0; i < kNumLinkClasses; ++i) {
        const auto cls = static_cast<LinkClass>(i);
        const double eff = linkClassEfficiency(cls);
        EXPECT_GT(eff, 0.0) << linkClassName(cls);
        EXPECT_LE(eff, 1.0) << linkClassName(cls);
    }
    // RoCE calibrated to the paper's 93% stress result.
    EXPECT_DOUBLE_EQ(linkClassEfficiency(LinkClass::Roce), 0.93);
}

TEST(RateLogTest, RecordsSegments)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(2.0, 20.0);
    log.finalize(5.0);
    ASSERT_EQ(log.segments().size(), 2u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(log.segments()[0].end, 2.0);
    EXPECT_DOUBLE_EQ(log.segments()[0].rate, 10.0);
    EXPECT_DOUBLE_EQ(log.segments()[1].rate, 20.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 10.0 * 2.0 + 20.0 * 3.0);
}

TEST(RateLogTest, NoopOnUnchangedRate)
{
    RateLog log;
    log.setRate(0.0, 5.0);
    log.setRate(1.0, 5.0);  // no-op
    log.finalize(2.0);
    EXPECT_EQ(log.segments().size(), 1u);
}

TEST(RateLogTest, ZeroRateSegmentsAreDroppedFromInitial)
{
    RateLog log;
    // Rate stays 0 until t=3, then 7.
    log.setRate(3.0, 7.0);
    log.finalize(4.0);
    // The initial zero-rate stretch becomes a closed 0-rate segment.
    ASSERT_EQ(log.segments().size(), 2u);
    EXPECT_DOUBLE_EQ(log.segments()[0].rate, 0.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 7.0);
}

TEST(RateLogTest, FinalizeIdempotentAtSameTime)
{
    RateLog log;
    log.setRate(0.0, 1.0);
    log.finalize(2.0);
    log.finalize(2.0);
    EXPECT_EQ(log.segments().size(), 1u);
}

TEST(RateLogTest, DropBeforeTruncates)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.setRate(2.0, 20.0);
    log.finalize(4.0);
    log.dropBefore(2.0);
    ASSERT_EQ(log.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 2.0);

    log.clear();
    EXPECT_TRUE(log.segments().empty());
    EXPECT_DOUBLE_EQ(log.currentRate(), 0.0);
}

TEST(RateLogTest, DropBeforeClipsStraddlingSegment)
{
    RateLog log;
    log.setRate(0.0, 10.0);
    log.finalize(4.0);
    log.dropBefore(1.0);
    ASSERT_EQ(log.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(log.segments()[0].begin, 1.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 30.0);
}

TEST(RateLogTest, StreamedBucketsAccumulateOnline)
{
    RateLog log;
    log.setRetainSegments(false);
    log.armStream(0.0, 0.5);
    log.setRate(0.0, 10.0);
    log.setRate(1.0, 0.0);
    log.finalize(2.0);

    EXPECT_TRUE(log.segments().empty());
    EXPECT_TRUE(log.streamArmed());
    // The trailing idle interval [1,2) deposits nothing, so the
    // folded-history mark stays at the last nonzero-rate close: a
    // window ending anywhere at or after 1.0 is fully covered.
    EXPECT_DOUBLE_EQ(log.streamEnd(), 1.0);
    EXPECT_TRUE(log.streamCovers(0.0, 1.0, 0.5));
    EXPECT_TRUE(log.streamCovers(0.0, 2.0, 0.5));
    ASSERT_GE(log.streamValues().size(), 2u);
    // Rate 10 fills buckets [0,0.5) and [0.5,1.0) completely.
    EXPECT_DOUBLE_EQ(log.streamValues()[0], 10.0);
    EXPECT_DOUBLE_EQ(log.streamValues()[1], 10.0);
    for (std::size_t b = 2; b < log.streamValues().size(); ++b)
        EXPECT_DOUBLE_EQ(log.streamValues()[b], 0.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 10.0);
    EXPECT_GT(log.bucketsTouched(), 0u);
}

TEST(RateLogTest, UnretainedDropBeforeResetsBytes)
{
    RateLog log;
    log.setRetainSegments(false);
    log.setRate(0.0, 10.0);
    log.setRate(2.0, 4.0);  // closes [0,2) @ 10
    log.dropBefore(2.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 0.0);
    log.finalize(3.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 4.0);
    EXPECT_TRUE(log.segments().empty());
}

TEST(RateLogTest, MemoryBytesTracksRetention)
{
    RateLog retained;
    RateLog streamed;
    streamed.setRetainSegments(false);
    streamed.armStream(0.0, 0.1);
    for (int i = 0; i < 100; ++i) {
        const SimTime t = i * 0.01;
        const Bps rate = (i % 3 == 0) ? 0.0 : 1e9 + i;
        retained.setRate(t, rate);
        streamed.setRate(t, rate);
    }
    retained.finalize(1.0);
    streamed.finalize(1.0);

    EXPECT_TRUE(streamed.segments().empty());
    EXPECT_FALSE(retained.segments().empty());
    EXPECT_GT(retained.memoryBytes(), streamed.memoryBytes());
}

TEST(RateLogTest, RearmResetsStreamState)
{
    RateLog log;
    log.setRetainSegments(false);
    log.armStream(0.0, 0.5);
    log.setRate(0.0, 8.0);
    log.setRate(1.0, 0.0);
    // Truncate the warm-up and re-arm on the measurement boundary.
    log.dropBefore(1.0);
    log.armStream(1.0, 0.5);
    log.setRate(1.5, 6.0);
    log.finalize(2.0);

    EXPECT_DOUBLE_EQ(log.streamBegin(), 1.0);
    EXPECT_DOUBLE_EQ(log.streamEnd(), 2.0);
    ASSERT_GE(log.streamValues().size(), 2u);
    EXPECT_DOUBLE_EQ(log.streamValues()[0], 0.0);
    EXPECT_DOUBLE_EQ(log.streamValues()[1], 6.0);
    for (std::size_t b = 2; b < log.streamValues().size(); ++b)
        EXPECT_DOUBLE_EQ(log.streamValues()[b], 0.0);
    EXPECT_DOUBLE_EQ(log.totalBytes(), 3.0);
}

} // namespace
} // namespace dstrain
