/**
 * @file
 * Tests for the SerDes contention model — the calibration table that
 * reproduces paper Fig. 4.
 */

#include <gtest/gtest.h>

#include "hw/serdes.hh"

namespace dstrain {
namespace {

TEST(SerdesTest, NoCrossingsNoDegradation)
{
    EXPECT_DOUBLE_EQ(serdesDegradation({}), 1.0);
}

TEST(SerdesTest, SingleCrossingFactors)
{
    EXPECT_DOUBLE_EQ(serdesSingleCrossingFactor(SerdesSide::Pcie,
                                                SerdesSide::Pcie),
                     0.495);
    EXPECT_DOUBLE_EQ(serdesSingleCrossingFactor(SerdesSide::Xgmi,
                                                SerdesSide::Pcie),
                     0.448);
    EXPECT_DOUBLE_EQ(serdesSingleCrossingFactor(SerdesSide::Pcie,
                                                SerdesSide::Xgmi),
                     0.448);
    EXPECT_DOUBLE_EQ(serdesSingleCrossingFactor(SerdesSide::Xgmi,
                                                SerdesSide::Xgmi),
                     0.47);
}

TEST(SerdesTest, TwoCrossingCalibration)
{
    // Same-socket GPUDirect: both ends PCIe-PCIe -> 52% of RoCE line
    // via 26.2 GBps effective PCIe: 0.248 * 26.2 = 6.5 per flow.
    const std::vector<SerdesCrossing> gpu_same = {
        {SerdesSide::Pcie, SerdesSide::Pcie},
        {SerdesSide::Pcie, SerdesSide::Pcie},
    };
    EXPECT_DOUBLE_EQ(serdesDegradation(gpu_same), 0.248);

    // Any xGMI leg in a two-crossing path costs more (47%).
    const std::vector<SerdesCrossing> cpu_cross = {
        {SerdesSide::Xgmi, SerdesSide::Pcie},
        {SerdesSide::Pcie, SerdesSide::Xgmi},
    };
    EXPECT_DOUBLE_EQ(serdesDegradation(cpu_cross), 0.224);
}

TEST(SerdesTest, ManyCrossingsFlatFloor)
{
    const std::vector<SerdesCrossing> gpu_cross = {
        {SerdesSide::Pcie, SerdesSide::Xgmi},
        {SerdesSide::Xgmi, SerdesSide::Pcie},
        {SerdesSide::Pcie, SerdesSide::Xgmi},
        {SerdesSide::Xgmi, SerdesSide::Pcie},
    };
    EXPECT_DOUBLE_EQ(serdesDegradation(gpu_cross), 0.2);
}

TEST(SerdesTest, DegradationMonotoneInCrossingCount)
{
    std::vector<SerdesCrossing> crossings;
    double prev = serdesDegradation(crossings);
    for (int i = 0; i < 5; ++i) {
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Pcie});
        const double cur = serdesDegradation(crossings);
        EXPECT_LE(cur, prev) << "crossings=" << crossings.size();
        EXPECT_GT(cur, 0.0);
        prev = cur;
    }
}

} // namespace
} // namespace dstrain
