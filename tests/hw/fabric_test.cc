/**
 * @file
 * Tests for the fabric generators: shapes, switch counts, failure
 * domain labels, spec parsing and the single-switch default.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"

namespace dstrain {
namespace {

ClusterSpec
specWithFabric(int nodes, FabricSpec fabric)
{
    ClusterSpec spec;
    spec.nodes = nodes;
    spec.fabric = fabric;
    return spec;
}

TEST(FabricTest, SingleSwitchDefault)
{
    const Cluster cluster(specWithFabric(2, FabricSpec{}));
    ASSERT_EQ(cluster.switches().size(), 1u);
    EXPECT_EQ(cluster.fabric().rackCount(), 1);
    EXPECT_EQ(cluster.rackOfNode(0), 0);
    EXPECT_EQ(cluster.rackOfNode(1), 0);
    EXPECT_EQ(cluster.fabric().rails, 0);
    EXPECT_EQ(cluster.topology().component(cluster.ethernetSwitch()).name,
              "sw0");
}

TEST(FabricTest, SingleNodeBuildsNoSwitch)
{
    const Cluster cluster(specWithFabric(1, FabricSpec{}));
    EXPECT_TRUE(cluster.switches().empty());
    EXPECT_EQ(cluster.ethernetSwitch(), kNoComponent);
}

TEST(FabricTest, FatTreeShape)
{
    FabricSpec fabric;
    fabric.kind = FabricKind::FatTree;
    fabric.fat_tree_k = 4;
    // k=4, oversub=1: 2 hosts per edge; 8 nodes -> 4 edges -> 2 pods
    // (2 edges each) -> 4 cores.
    const Cluster cluster(specWithFabric(8, fabric));
    // 2 pods x (2 edge + 2 agg) + 4 cores = 12 switches.
    EXPECT_EQ(cluster.switches().size(), 12u);
    EXPECT_EQ(cluster.fabric().rackCount(), 4);
    EXPECT_EQ(cluster.rackOfNode(0), 0);
    EXPECT_EQ(cluster.rackOfNode(1), 0);
    EXPECT_EQ(cluster.rackOfNode(2), 1);
    EXPECT_EQ(cluster.rackOfNode(7), 3);
}

TEST(FabricTest, FatTreeSinglePodSkipsCores)
{
    FabricSpec fabric;
    fabric.kind = FabricKind::FatTree;
    fabric.fat_tree_k = 4;
    // 4 nodes -> 2 edges -> 1 pod: 2 edge + 2 agg, no cores.
    const Cluster cluster(specWithFabric(4, fabric));
    EXPECT_EQ(cluster.switches().size(), 4u);
    EXPECT_EQ(cluster.fabric().rackCount(), 2);
}

TEST(FabricTest, FatTreeOversubscriptionPacksMoreHostsPerEdge)
{
    FabricSpec fabric;
    fabric.kind = FabricKind::FatTree;
    fabric.fat_tree_k = 4;
    fabric.oversubscription = 2.0;  // 4 hosts per edge
    const Cluster cluster(specWithFabric(8, fabric));
    // 8 nodes -> 2 edges -> 1 pod: no cores.
    EXPECT_EQ(cluster.switches().size(), 4u);
    EXPECT_EQ(cluster.fabric().rackCount(), 2);
    EXPECT_EQ(cluster.rackOfNode(3), 0);
    EXPECT_EQ(cluster.rackOfNode(4), 1);
}

TEST(FabricTest, RailFabricOneSwitchPerNicIndex)
{
    FabricSpec fabric;
    fabric.kind = FabricKind::Rail;
    const Cluster cluster(specWithFabric(4, fabric));
    // Default nodes carry 2 NICs -> 2 rail switches.
    EXPECT_EQ(cluster.switches().size(), 2u);
    EXPECT_EQ(cluster.fabric().rails, 2);
    EXPECT_EQ(cluster.fabric().rackCount(), 1);
}

TEST(FabricTest, SpineLeafShape)
{
    FabricSpec fabric;
    fabric.kind = FabricKind::SpineLeaf;
    fabric.leaves = 2;
    fabric.spines = 3;
    const Cluster cluster(specWithFabric(4, fabric));
    EXPECT_EQ(cluster.switches().size(), 5u);
    // Nodes block-assigned to leaves; the leaf is the rack.
    EXPECT_EQ(cluster.fabric().rackCount(), 2);
    EXPECT_EQ(cluster.rackOfNode(0), 0);
    EXPECT_EQ(cluster.rackOfNode(1), 0);
    EXPECT_EQ(cluster.rackOfNode(2), 1);
    EXPECT_EQ(cluster.rackOfNode(3), 1);
}

TEST(FabricTest, GeneratedFabricRunsTraffic)
{
    // A trunked fabric still routes host to host: GPU on node 0 to
    // GPU on node 7 crosses edge -> agg (-> core -> agg) -> edge.
    FabricSpec fabric;
    fabric.kind = FabricKind::FatTree;
    fabric.fat_tree_k = 4;
    const Cluster cluster(specWithFabric(8, fabric));
    const Route &r = cluster.router().route(cluster.gpuByRank(0),
                                            cluster.gpuByRank(28));
    // gpu-cpu-nic + edge/agg/core/agg/edge + nic-cpu-gpu = 10 hops.
    EXPECT_EQ(r.hops.size(), 10u);
    EXPECT_GT(r.rate_cap, 0.0);
}

TEST(FabricParseTest, RoundTrips)
{
    std::vector<ConfigError> errors;
    const FabricSpec ft =
        parseFabricSpec("fat-tree:k=8,oversub=2", &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(ft.kind, FabricKind::FatTree);
    EXPECT_EQ(ft.fat_tree_k, 8);
    EXPECT_DOUBLE_EQ(ft.oversubscription, 2.0);

    const FabricSpec sl =
        parseFabricSpec("spine-leaf:leaves=4,spines=2", &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(sl.kind, FabricKind::SpineLeaf);
    EXPECT_EQ(sl.leaves, 4);
    EXPECT_EQ(sl.spines, 2);

    EXPECT_EQ(parseFabricSpec("single", &errors).kind,
              FabricKind::SingleSwitch);
    EXPECT_EQ(parseFabricSpec("rail", &errors).kind, FabricKind::Rail);
    EXPECT_TRUE(errors.empty());
}

TEST(FabricParseTest, EcmpKeys)
{
    std::vector<ConfigError> errors;
    const FabricSpec spec =
        parseFabricSpec("fat-tree:k=4,ecmp=off,seed=7,paths=4",
                        &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_FALSE(spec.ecmp);
    EXPECT_EQ(spec.ecmp_seed, 7u);
    EXPECT_EQ(spec.max_paths, 4);
}

TEST(FabricParseTest, RejectsBadSpecs)
{
    std::vector<ConfigError> errors;
    parseFabricSpec("torus", &errors);
    ASSERT_FALSE(errors.empty());
    errors.clear();

    parseFabricSpec("fat-tree:k=3", &errors);  // odd radix
    EXPECT_FALSE(errors.empty());
    errors.clear();

    parseFabricSpec("single:k=4", &errors);  // key of another kind
    EXPECT_FALSE(errors.empty());
    errors.clear();

    parseFabricSpec("spine-leaf:leaves=0", &errors);
    EXPECT_FALSE(errors.empty());
}

TEST(FabricParseTest, SpecStringRoundTripsThroughStr)
{
    std::vector<ConfigError> errors;
    const FabricSpec spec =
        parseFabricSpec("fat-tree:k=8,oversub=2", &errors);
    ASSERT_TRUE(errors.empty());
    const FabricSpec again = parseFabricSpec(spec.str(), &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(again.kind, spec.kind);
    EXPECT_EQ(again.fat_tree_k, spec.fat_tree_k);
    EXPECT_DOUBLE_EQ(again.oversubscription, spec.oversubscription);
}

} // namespace
} // namespace dstrain
