/**
 * @file
 * Tests for the topology graph.
 */

#include <gtest/gtest.h>

#include "hw/topology.hh"
#include "util/units.hh"

namespace dstrain {
namespace {

TEST(TopologyTest, AddComponentAssignsIdsAndTracksNodes)
{
    Topology topo;
    ComponentId a = topo.addComponent(ComponentKind::CpuIod, "cpu0", 0,
                                      0, 0);
    ComponentId b =
        topo.addComponent(ComponentKind::Gpu, "gpu0", 1, 0, 0);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(topo.componentCount(), 2u);
    EXPECT_EQ(topo.nodeCount(), 2);
    EXPECT_EQ(topo.component(b).name, "gpu0");
}

TEST(TopologyTest, DuplexLinkCreatesTwoResources)
{
    Topology topo;
    ComponentId a = topo.addComponent(ComponentKind::CpuIod, "a", 0, 0,
                                      0);
    ComponentId b = topo.addComponent(ComponentKind::Gpu, "b", 0, 0, 0);
    auto [fwd, rev] = topo.addDuplexLink(
        LinkClass::PcieGpu, 32.0 * units::GBps, a, b, PortKind::SerDes,
        PortKind::Device, 1e-9, "pcie");
    EXPECT_NE(fwd, rev);
    EXPECT_EQ(topo.resourceCount(), 2u);
    EXPECT_EQ(topo.halfLinkCount(), 2u);
    EXPECT_EQ(topo.resource(fwd).label, "pcie.fwd");
    EXPECT_DOUBLE_EQ(topo.resource(rev).capacity, 32.0 * units::GBps);
    // One outgoing link in each direction.
    EXPECT_EQ(topo.outgoing(a).size(), 1u);
    EXPECT_EQ(topo.outgoing(b).size(), 1u);
}

TEST(TopologyTest, SharedLinkUsesOneResource)
{
    Topology topo;
    ComponentId a = topo.addComponent(ComponentKind::CpuIod, "a", 0, 0,
                                      0);
    ComponentId b =
        topo.addComponent(ComponentKind::DramPool, "d", 0, 0, 0);
    ResourceId res = topo.addSharedLink(LinkClass::Dram,
                                        204.8 * units::GBps, a, b,
                                        PortKind::MemCtrl,
                                        PortKind::Device, 1e-9, "dram");
    EXPECT_EQ(topo.resourceCount(), 1u);
    EXPECT_EQ(topo.halfLinkCount(), 2u);
    EXPECT_EQ(topo.halfLink(0).resource, res);
    EXPECT_EQ(topo.halfLink(1).resource, res);
}

TEST(TopologyTest, FindAndFilterByKind)
{
    Topology topo;
    topo.addComponent(ComponentKind::Gpu, "g0", 0, 0, 0);
    topo.addComponent(ComponentKind::Gpu, "g1", 0, 0, 1);
    topo.addComponent(ComponentKind::Gpu, "g2", 1, 0, 0);
    topo.addComponent(ComponentKind::Nic, "n", 0, 0, 0);

    EXPECT_EQ(topo.componentsOfKind(ComponentKind::Gpu).size(), 3u);
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::Gpu, 0).size(), 2u);
    EXPECT_EQ(topo.findComponent(ComponentKind::Gpu, 1, 0), 2);
    EXPECT_EQ(topo.findComponent(ComponentKind::Gpu, 2, 0),
              kNoComponent);
}

TEST(TopologyDeathTest, InvalidIdsRejected)
{
    Topology topo;
    EXPECT_DEATH(topo.component(0), "bad component");
    ComponentId a =
        topo.addComponent(ComponentKind::CpuIod, "a", 0, 0, 0);
    EXPECT_DEATH(topo.addResource(LinkClass::Dram, 0.0, "zero", 0, 0),
                 "positive capacity");
    ResourceId r =
        topo.addResource(LinkClass::Dram, 1.0, "one", 0, 0);
    EXPECT_DEATH(topo.addHalfLink(r, a, a, PortKind::MemCtrl,
                                  PortKind::MemCtrl, LinkClass::Dram,
                                  0.0),
                 "self-link");
}

TEST(TopologyTest, FinalizeLogsClosesAll)
{
    Topology topo;
    ComponentId a =
        topo.addComponent(ComponentKind::CpuIod, "a", 0, 0, 0);
    ComponentId b = topo.addComponent(ComponentKind::Gpu, "b", 0, 0, 0);
    auto [fwd, rev] = topo.addDuplexLink(LinkClass::PcieGpu, 1.0, a, b,
                                         PortKind::SerDes,
                                         PortKind::Device, 0.0, "l");
    topo.resource(fwd).log.setRate(0.0, 0.5);
    topo.finalizeLogs(2.0);
    EXPECT_EQ(topo.resource(fwd).log.segments().size(), 1u);
    // The untouched reverse log closes with one zero-rate segment.
    ASSERT_EQ(topo.resource(rev).log.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(topo.resource(rev).log.segments()[0].rate, 0.0);
}

} // namespace
} // namespace dstrain
