/**
 * @file
 * Tests for route computation over the XE8545 topology: path shapes,
 * SerDes-crossing detection, rate caps and waypoint routing.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"

namespace dstrain {
namespace {

class RoutingTest : public testing::Test
{
  protected:
    RoutingTest()
        : cluster_(makeSpec())
    {
    }

    static ClusterSpec
    makeSpec()
    {
        ClusterSpec spec;
        spec.nodes = 2;
        return spec;
    }

    Cluster cluster_;
};

TEST_F(RoutingTest, GpuPeersUseDirectNvlink)
{
    const Route &r = cluster_.router().route(cluster_.gpuByRank(0),
                                             cluster_.gpuByRank(1));
    ASSERT_EQ(r.hops.size(), 1u);
    EXPECT_EQ(cluster_.topology()
                  .resource(cluster_.topology()
                                .halfLink(r.hops[0])
                                .resource)
                  .cls,
              LinkClass::NvLink);
    EXPECT_TRUE(r.crossings.empty());
    EXPECT_DOUBLE_EQ(r.serdes_factor, 1.0);
}

TEST_F(RoutingTest, GpuToRemoteGpuCrossesFabric)
{
    // Rank 0 (node 0) to rank 4 (node 1, local index 0).
    const Route &r = cluster_.router().route(cluster_.gpuByRank(0),
                                             cluster_.gpuByRank(4));
    // gpu -> cpu -> nic -> switch -> nic -> cpu -> gpu = 6 hops.
    EXPECT_EQ(r.hops.size(), 6u);
    // Both IODs cross PCIe-to-PCIe (GPUDirect on both ends).
    EXPECT_EQ(r.crossings.size(), 2u);
    EXPECT_DOUBLE_EQ(r.serdes_factor, 0.248);
}

TEST_F(RoutingTest, DramToLocalNvmeIsCrossingFree)
{
    // Default drives attach to socket 1.
    const NodeHandles &n0 = cluster_.node(0);
    const Route &r =
        cluster_.router().route(n0.drams[1], n0.nvmes[0]);
    EXPECT_EQ(r.hops.size(), 2u);  // dram -> cpu -> drive
    EXPECT_TRUE(r.crossings.empty());
}

TEST_F(RoutingTest, DramToRemoteSocketNvmeCrossesOnce)
{
    const NodeHandles &n0 = cluster_.node(0);
    const Route &r =
        cluster_.router().route(n0.drams[0], n0.nvmes[0]);
    EXPECT_EQ(r.hops.size(), 3u);  // dram -> cpu0 -> cpu1 -> drive
    ASSERT_EQ(r.crossings.size(), 1u);
    EXPECT_EQ(r.crossings[0].ingress, SerdesSide::Xgmi);
    EXPECT_EQ(r.crossings[0].egress, SerdesSide::Pcie);
    // Cap: degraded PCIe x4 (8 * 0.82 * 0.448) ~ 2.94 GBps.
    EXPECT_NEAR(r.rate_cap, 8e9 * 0.82 * 0.448, 1e6);
}

TEST_F(RoutingTest, MediaRouteEndsBehindController)
{
    const NodeHandles &n0 = cluster_.node(0);
    const Route &r =
        cluster_.router().route(n0.drams[1], n0.nvme_medias[0]);
    EXPECT_EQ(r.hops.size(), 3u);  // dram -> cpu -> drive -> media
    // The media hop is the bottleneck (3.3 GBps < PCIe x4).
    EXPECT_NEAR(r.rate_cap, 3.3e9, 1e6);
}

TEST_F(RoutingTest, RouteViaPinsTheNic)
{
    const NodeHandles &n0 = cluster_.node(0);
    const NodeHandles &n1 = cluster_.node(1);
    // GPU 0 sits on socket 0; pin its egress to NIC 1 (socket 1).
    Route r = cluster_.router().routeVia(n0.gpus[0], n0.nics[1],
                                         n1.gpus[0]);
    // gpu -> cpu0 -> cpu1 -> nic1 -> sw -> nic -> cpu -> gpu = 7 hops
    EXPECT_EQ(r.hops.size(), 7u);
    EXPECT_GE(r.crossings.size(), 3u);
    EXPECT_DOUBLE_EQ(r.serdes_factor, 0.2);
}

TEST_F(RoutingTest, RouteVia2PinsBothNics)
{
    const NodeHandles &n0 = cluster_.node(0);
    const NodeHandles &n1 = cluster_.node(1);
    Route r = cluster_.router().routeVia2(n0.drams[0], n0.nics[1],
                                          n1.nics[1], n1.drams[0]);
    // Two xGMI-involving crossings, one per node.
    EXPECT_EQ(r.crossings.size(), 2u);
    EXPECT_DOUBLE_EQ(r.serdes_factor, 0.224);
}

TEST_F(RoutingTest, RoutesAreCachedAndStable)
{
    const Route &a = cluster_.router().route(cluster_.gpuByRank(0),
                                             cluster_.gpuByRank(5));
    const Route &b = cluster_.router().route(cluster_.gpuByRank(0),
                                             cluster_.gpuByRank(5));
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.hops, b.hops);
}

TEST_F(RoutingTest, LatencyIsSumOfHops)
{
    const Route &r = cluster_.router().route(cluster_.gpuByRank(0),
                                             cluster_.gpuByRank(1));
    EXPECT_NEAR(r.latency, 700e-9, 1e-12);  // one NVLink hop
}

TEST(RoutingAblationTest, SerdesAblationLiftsTheCaps)
{
    ClusterSpec spec;
    spec.nodes = 2;
    spec.node.model_serdes_contention = false;
    Cluster ideal(spec);
    const Route &r = ideal.router().route(ideal.gpuByRank(0),
                                          ideal.gpuByRank(4));
    // Crossings are still reported, but the cap is the plain
    // bottleneck (the RoCE hop).
    EXPECT_EQ(r.crossings.size(), 2u);
    EXPECT_NEAR(r.rate_cap, 25e9 * 0.93, 1e6);
}

TEST(EcmpTest, SingleSwitchHasUniquePathsAndMatchesPlainRoute)
{
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    const ComponentId src = cluster.gpuByRank(0);
    const ComponentId dst = cluster.gpuByRank(4);
    const auto &paths = cluster.router().equalCostRoutes(src, dst);
    ASSERT_EQ(paths.size(), 1u);
    // Degenerate ECMP must return the plain route's cache entry —
    // the bit-identity guarantee for the default fabric.
    for (std::uint64_t key = 0; key < 8; ++key) {
        EXPECT_EQ(&cluster.router().routeForFlow(src, dst, key),
                  &cluster.router().route(src, dst));
    }
}

TEST(EcmpTest, SpineLeafEnumeratesOnePathPerSpine)
{
    ClusterSpec spec;
    spec.nodes = 4;
    spec.fabric.kind = FabricKind::SpineLeaf;
    spec.fabric.leaves = 2;
    spec.fabric.spines = 4;
    Cluster cluster(spec);
    // Ranks 0 and 12 live on nodes 0 and 3 — different leaves, so
    // every spine offers one equal-cost path.
    const ComponentId src = cluster.gpuByRank(0);
    const ComponentId dst = cluster.gpuByRank(12);
    const auto &paths = cluster.router().equalCostRoutes(src, dst);
    EXPECT_EQ(paths.size(), 4u);
    for (const Route &r : paths)
        EXPECT_EQ(r.hops.size(),
                  cluster.router().route(src, dst).hops.size());

    // Same-leaf traffic has a unique path through the shared leaf.
    EXPECT_EQ(cluster.router()
                  .equalCostRoutes(cluster.gpuByRank(0),
                                   cluster.gpuByRank(4))
                  .size(),
              1u);
}

TEST(EcmpTest, SelectionIsDeterministicAndKeyed)
{
    ClusterSpec spec;
    spec.nodes = 4;
    spec.fabric.kind = FabricKind::SpineLeaf;
    spec.fabric.leaves = 2;
    spec.fabric.spines = 4;
    Cluster a(spec);
    Cluster b(spec);
    const int src_rank = 0;
    const int dst_rank = 12;
    bool spread = false;
    for (std::uint64_t key = 0; key < 16; ++key) {
        const Route &ra = a.router().routeForFlow(
            a.gpuByRank(src_rank), a.gpuByRank(dst_rank), key);
        const Route &rb = b.router().routeForFlow(
            b.gpuByRank(src_rank), b.gpuByRank(dst_rank), key);
        // Identical clusters pick identical paths for the same key.
        ASSERT_EQ(ra.hops.size(), rb.hops.size());
        for (std::size_t h = 0; h < ra.hops.size(); ++h)
            EXPECT_EQ(ra.hops[h], rb.hops[h]);
        // Repeat calls are stable.
        EXPECT_EQ(&ra, &a.router().routeForFlow(a.gpuByRank(src_rank),
                                                a.gpuByRank(dst_rank),
                                                key));
        if (ra.hops != a.router()
                           .routeForFlow(a.gpuByRank(src_rank),
                                         a.gpuByRank(dst_rank), 0)
                           .hops) {
            spread = true;
        }
    }
    // 16 keys over 4 equal-cost paths: the hash must not collapse
    // every flow onto one spine.
    EXPECT_TRUE(spread);
}

TEST(EcmpTest, DisabledEcmpFallsBackToPlainRoutes)
{
    ClusterSpec spec;
    spec.nodes = 4;
    spec.fabric.kind = FabricKind::SpineLeaf;
    spec.fabric.leaves = 2;
    spec.fabric.spines = 4;
    spec.fabric.ecmp = false;
    Cluster cluster(spec);
    const ComponentId src = cluster.gpuByRank(0);
    const ComponentId dst = cluster.gpuByRank(12);
    for (std::uint64_t key = 0; key < 8; ++key) {
        EXPECT_EQ(&cluster.router().routeForFlow(src, dst, key),
                  &cluster.router().route(src, dst));
    }
}

TEST(RoutingDeathTest, SelfRouteRejected)
{
    Cluster cluster(ClusterSpec{});
    EXPECT_DEATH(
        cluster.router().route(cluster.gpuByRank(0),
                               cluster.gpuByRank(0)),
        "itself");
}

} // namespace
} // namespace dstrain
