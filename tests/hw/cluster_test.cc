/**
 * @file
 * Tests for the cluster builder against the paper's Table II/III
 * hardware inventory.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"

namespace dstrain {
namespace {

TEST(ClusterTest, SingleNodeInventory)
{
    Cluster cluster(ClusterSpec{});
    const Topology &topo = cluster.topology();
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::CpuIod).size(), 2u);
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::DramPool).size(),
              2u);
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::Gpu).size(), 4u);
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::Nic).size(), 2u);
    EXPECT_EQ(topo.componentsOfKind(ComponentKind::NvmeDrive).size(),
              2u);  // the paper's 2 scratch drives
    EXPECT_EQ(cluster.ethernetSwitch(), kNoComponent);
}

TEST(ClusterTest, DualNodeAddsSwitchAndRoce)
{
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    EXPECT_NE(cluster.ethernetSwitch(), kNoComponent);
    int roce = 0;
    for (const Resource &r : cluster.topology().resources())
        if (r.cls == LinkClass::Roce)
            ++roce;
    // 2 nodes x 2 NICs x 2 directions.
    EXPECT_EQ(roce, 8);
}

TEST(ClusterTest, RankMapping)
{
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    EXPECT_EQ(cluster.spec().totalGpus(), 8);
    EXPECT_EQ(cluster.nodeOfRank(0), 0);
    EXPECT_EQ(cluster.nodeOfRank(7), 1);
    EXPECT_EQ(cluster.localOfRank(6), 2);
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(cluster.rankOfGpu(cluster.gpuByRank(r)), r);
}

TEST(ClusterTest, GpuSocketsSplitPerPaperFig2)
{
    NodeSpec spec;
    EXPECT_EQ(gpuSocket(spec, 0), 0);
    EXPECT_EQ(gpuSocket(spec, 1), 0);
    EXPECT_EQ(gpuSocket(spec, 2), 1);
    EXPECT_EQ(gpuSocket(spec, 3), 1);
}

TEST(ClusterTest, NvlinkMeshIsComplete)
{
    Cluster cluster(ClusterSpec{});
    int nvlink = 0;
    for (const Resource &r : cluster.topology().resources())
        if (r.cls == LinkClass::NvLink)
            ++nvlink;
    // C(4,2)=6 pairs x 2 directions.
    EXPECT_EQ(nvlink, 12);
    // Each pair: 4 links x 25 GBps per direction.
    for (const Resource &r : cluster.topology().resources()) {
        if (r.cls == LinkClass::NvLink) {
            EXPECT_DOUBLE_EQ(r.capacity, 100e9);
        }
    }
}

TEST(ClusterTest, TableIiiCapacities)
{
    Cluster cluster(ClusterSpec{});
    double dram = 0.0;
    double xgmi_dir = 0.0;
    for (const Resource &r : cluster.topology().resources()) {
        if (r.cls == LinkClass::Dram && r.socket == 0)
            dram = r.capacity;
        if (r.cls == LinkClass::Xgmi)
            xgmi_dir = r.capacity;
    }
    EXPECT_DOUBLE_EQ(dram, 8 * 25.6e9);   // 8 channels per socket
    EXPECT_DOUBLE_EQ(xgmi_dir, 3 * 36e9); // 3 IFIS links per dir
}

TEST(ClusterTest, CustomDrivePlacementRespected)
{
    ClusterSpec spec;
    spec.node.nvme_drives = {NvmeDriveSpec{0}, NvmeDriveSpec{0},
                             NvmeDriveSpec{1}, NvmeDriveSpec{1}};
    Cluster cluster(spec);
    const auto drives =
        cluster.topology().componentsOfKind(ComponentKind::NvmeDrive);
    ASSERT_EQ(drives.size(), 4u);
    EXPECT_EQ(cluster.topology().component(drives[0]).socket, 0);
    EXPECT_EQ(cluster.topology().component(drives[3]).socket, 1);
}

TEST(ClusterGroupsTest, HeterogeneousGroupsBuildAndIndex)
{
    ClusterSpec spec;
    NodeGroup small;
    small.count = 2;
    small.node.gpus = 2;
    NodeGroup big;
    big.count = 1;
    big.node.gpus = 4;
    spec.groups = {small, big};

    Cluster cluster(spec);
    EXPECT_EQ(cluster.nodeCount(), 3);
    EXPECT_EQ(cluster.spec().totalGpus(), 8);
    EXPECT_EQ(cluster.gpusOfNode(0), 2);
    EXPECT_EQ(cluster.gpusOfNode(2), 4);
    EXPECT_EQ(cluster.nodeSpec(2).gpus, 4);

    // Rank tables: node-major with per-node widths.
    EXPECT_EQ(cluster.nodeOfRank(0), 0);
    EXPECT_EQ(cluster.nodeOfRank(3), 1);
    EXPECT_EQ(cluster.nodeOfRank(4), 2);
    EXPECT_EQ(cluster.localOfRank(7), 3);
    EXPECT_EQ(cluster.rankOf(2, 3), 7);
    EXPECT_EQ(cluster.rankOf(1, 1), 3);
    for (int r = 0; r < 8; ++r) {
        EXPECT_EQ(cluster.rankOf(cluster.nodeOfRank(r),
                                 cluster.localOfRank(r)),
                  r);
        EXPECT_EQ(cluster.rankOfGpu(cluster.gpuByRank(r)), r);
    }
}

TEST(ClusterGroupsTest, PerGroupNicCountsReachTheFabric)
{
    ClusterSpec spec;
    NodeGroup dense;
    dense.count = 1;
    dense.node.nics = 4;
    dense.node.sockets = 2;
    NodeGroup plain;
    plain.count = 1;  // node defaults: 2 NICs
    spec.groups = {dense, plain};
    Cluster cluster(spec);
    EXPECT_EQ(cluster.node(0).nics.size(), 4u);
    EXPECT_EQ(cluster.node(1).nics.size(), 2u);
}

TEST(ClusterGroupsTest, ParseNodesSpec)
{
    std::vector<ConfigError> errors;
    NodeSpec base;
    const auto groups = parseNodesSpec(
        "2:gpus=4,nics=2;1:gpus=8,nics=4,roce=50", base, &errors);
    ASSERT_TRUE(errors.empty()) << formatConfigErrors(errors);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].count, 2);
    EXPECT_EQ(groups[0].node.gpus, 4);
    EXPECT_EQ(groups[1].count, 1);
    EXPECT_EQ(groups[1].node.gpus, 8);
    EXPECT_EQ(groups[1].node.nics, 4);
    EXPECT_DOUBLE_EQ(groups[1].node.roce_per_dir, 50 * units::GBps);

    parseNodesSpec("0:gpus=4", base, &errors);
    EXPECT_FALSE(errors.empty());
    errors.clear();
    parseNodesSpec("2:frobs=4", base, &errors);
    EXPECT_FALSE(errors.empty());
}

TEST(ClusterDeathTest, BadRankRejected)
{
    Cluster cluster(ClusterSpec{});
    EXPECT_DEATH(cluster.gpuByRank(4), "bad gpu rank");
    EXPECT_DEATH(cluster.node(1), "bad node");
}

} // namespace
} // namespace dstrain
