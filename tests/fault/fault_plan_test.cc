/**
 * @file
 * Tests for FaultPlan parsing, validation and rendering.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.hh"

namespace dstrain {
namespace {

FaultPlan
parseOk(const std::string &spec)
{
    std::vector<ConfigError> errors;
    FaultPlan plan = parseFaultSpec(spec, &errors);
    EXPECT_TRUE(errors.empty())
        << spec << ": " << formatConfigErrors(errors);
    return plan;
}

std::vector<ConfigError>
parseBad(const std::string &spec)
{
    std::vector<ConfigError> errors;
    parseFaultSpec(spec, &errors);
    EXPECT_FALSE(errors.empty()) << spec << " parsed unexpectedly";
    return errors;
}

TEST(FaultPlanTest, ParsesEveryKind)
{
    const FaultPlan plan = parseOk(
        "degrade@1+0.5:roce:0.4,flap@2+0.2:roce/n1,"
        "nicdown@1+1:n0.nic1,straggler@0+2:rank3:0.6,nvme@1:n0:0.5");
    ASSERT_EQ(plan.events.size(), 5u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::LinkDegrade);
    EXPECT_EQ(plan.events[1].kind, FaultKind::LinkFlap);
    EXPECT_EQ(plan.events[2].kind, FaultKind::NicFailover);
    EXPECT_EQ(plan.events[3].kind, FaultKind::GpuStraggler);
    EXPECT_EQ(plan.events[4].kind, FaultKind::NvmeDegrade);

    EXPECT_DOUBLE_EQ(plan.events[0].begin, 1.0);
    EXPECT_DOUBLE_EQ(plan.events[0].duration, 0.5);
    EXPECT_DOUBLE_EQ(plan.events[0].fraction, 0.4);
    EXPECT_EQ(plan.events[1].target, "roce/n1");
    EXPECT_DOUBLE_EQ(plan.events[4].duration, 0.0);  // rest of run
}

TEST(FaultPlanTest, StrRoundTrips)
{
    const std::string spec =
        "degrade@1+0.5:roce:0.4,nicdown@1+1:n0.nic1,"
        "straggler@0+2:rank3:0.6";
    const FaultPlan plan = parseOk(spec);
    EXPECT_EQ(plan.str(), spec);

    // Parsing the rendering again reproduces the same plan.
    const FaultPlan again = parseOk(plan.str());
    ASSERT_EQ(again.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i)
        EXPECT_EQ(again.events[i].str(), plan.events[i].str());
}

TEST(FaultPlanTest, DefaultsWhenOmitted)
{
    const FaultPlan plan = parseOk("degrade@3:nvlink");
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.events[0].begin, 3.0);
    EXPECT_DOUBLE_EQ(plan.events[0].duration, 0.0);
    EXPECT_DOUBLE_EQ(plan.events[0].fraction, 0.5);
    EXPECT_TRUE(plan.retry.enabled);
}

TEST(FaultPlanTest, ParsesLinkDown)
{
    const FaultPlan plan =
        parseOk("linkdown@2:rail1,linkdown@3:sw0,"
                "linkdown@1:roce/rack0,linkdown@4:nvlink/n1");
    ASSERT_EQ(plan.events.size(), 4u);
    for (const FaultEvent &ev : plan.events) {
        EXPECT_EQ(ev.kind, FaultKind::LinkDown);
        EXPECT_DOUBLE_EQ(ev.duration, 0.0);
        EXPECT_FALSE(isHardFault(ev.kind));
    }
    EXPECT_EQ(plan.events[0].target, "rail1");
    EXPECT_EQ(plan.events[0].str(), "linkdown@2:rail1");

    // Round-trip through the rendering.
    const FaultPlan again = parseOk(plan.str());
    ASSERT_EQ(again.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i)
        EXPECT_EQ(again.events[i].str(), plan.events[i].str());
}

TEST(FaultPlanTest, LinkDownRejectsDurationFractionAndBadTargets)
{
    parseBad("linkdown@2+1:rail1");      // permanent: no duration
    parseBad("linkdown@2:rail1:0.5");    // takes no fraction
    parseBad("linkdown@2:rank3");        // link targets only
    parseBad("linkdown@2:n0.nic1");      // nicdown's namespace
    parseBad("linkdown@2:warp-core");    // unknown class
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan)
{
    EXPECT_TRUE(parseOk("").empty());
    EXPECT_TRUE(parseOk(" , ,").empty());
    EXPECT_FALSE(parseOk("degrade@1:roce").empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    parseBad("degrade");                       // missing @
    parseBad("degrade@1");                     // missing target
    parseBad("meteor@1:roce");                 // unknown kind
    parseBad("degrade@x:roce");                // bad begin
    parseBad("degrade@1+y:roce");              // bad duration
    parseBad("degrade@1:roce:2.0");            // fraction > 1
    parseBad("degrade@1:roce:0");              // fraction 0
    parseBad("degrade@1:warp-core:0.5");       // unknown class
    parseBad("flap@1:roce:0.5");               // flap takes no fraction
    parseBad("nicdown@1:nic1");                // missing node scope
    parseBad("straggler@1:gpu3:0.5");          // rank<k> expected
    parseBad("degrade@1:roce:0.5:extra");      // too many fields
}

TEST(FaultPlanTest, ErrorsNameTheOffendingItem)
{
    const auto errors = parseBad("degrade@1:roce:0.4,meteor@1:roce");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].field, "faults[1] at char 19 ('meteor@1:roce')");
    EXPECT_NE(errors[0].message.find("unknown kind"),
              std::string::npos);
}

TEST(FaultPlanTest, ErrorPositionSkipsLeadingWhitespace)
{
    // The reported character offset points at the item itself, not
    // the separator/whitespace before it.
    const auto errors = parseBad("degrade@1:roce,  meteor@2:roce");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].field, "faults[1] at char 17 ('meteor@2:roce')");

    const auto first = parseBad("meteor@1:roce");
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].field, "faults[0] at char 0 ('meteor@1:roce')");
}

TEST(FaultPlanTest, MalformedSpecsNeverCrashAndNeverSkip)
{
    // Every malformed item must surface as a ConfigError — never a
    // crash, never a silently dropped event.
    const char *const bad[] = {
        "@", ":", "@@", "degrade@@1:roce", "degrade@1::",
        "degrade@1+:roce", "degrade@1:roce:", "degrade@1:roce:nan",
        "degrade@1:roce:inf", "degrade@1e999:roce", "nodedown@1:n",
        "gpudown@1:rank", "gpudown@1:rankx", "nodedown@1:nx",
        "@1:roce", "degrade@:roce", "+1@2:roce",
    };
    for (const char *spec : bad) {
        std::vector<ConfigError> errors;
        parseFaultSpec(spec, &errors);
        EXPECT_FALSE(errors.empty())
            << "'" << spec << "' parsed without error";
    }
}

TEST(FaultPlanTest, ParsesHardFaults)
{
    const FaultPlan plan = parseOk("gpudown@3:rank2,nodedown@4:n1");
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::GpuDown);
    EXPECT_EQ(plan.events[0].target, "rank2");
    EXPECT_EQ(plan.events[1].kind, FaultKind::NodeDown);
    EXPECT_EQ(plan.events[1].target, "n1");
    EXPECT_TRUE(isHardFault(FaultKind::GpuDown));
    EXPECT_TRUE(isHardFault(FaultKind::NodeDown));
    EXPECT_FALSE(isHardFault(FaultKind::LinkDegrade));
    EXPECT_TRUE(hasHardFaults(plan));
    EXPECT_FALSE(hasHardFaults(parseOk("degrade@1:roce")));

    // Hard-fault specs round-trip through str().
    const FaultPlan again = parseOk(plan.str());
    ASSERT_EQ(again.events.size(), 2u);
    EXPECT_EQ(again.events[0].str(), plan.events[0].str());
}

TEST(FaultPlanTest, HardFaultsRejectDurationAndFraction)
{
    // Permanent failures take no window or fraction.
    parseBad("gpudown@3+1:rank2");
    parseBad("nodedown@3+1:n1");
    parseBad("gpudown@3:rank2:0.5");
    parseBad("nodedown@3:n1:0.5");
    // Target grammar: rank<k> for gpudown, n<k> for nodedown.
    parseBad("gpudown@3:n1");
    parseBad("nodedown@3:rank2");
}

TEST(FaultPlanTest, FabricTargetNamespacesParse)
{
    const FaultPlan plan = parseOk(
        "degrade@1+1:rail1:0.3,flap@2+0.5:sw3,"
        "degrade@1:roce/rack0:0.5");
    ASSERT_EQ(plan.events.size(), 3u);
    EXPECT_EQ(plan.events[0].target, "rail1");
    EXPECT_EQ(plan.events[1].target, "sw3");
    EXPECT_EQ(plan.events[2].target, "roce/rack0");
}

TEST(FaultPlanTest, FabricTargetNamespacesRejectBadSpellings)
{
    parseBad("degrade@1:rail:0.5");       // missing rail index
    parseBad("degrade@1:roce/sw0:0.5");   // switch is not a scope
    parseBad("flap@1:rack0");             // rack alone is no namespace
    const auto errors = parseBad("degrade@1:bogus:0.5");
    // The message teaches the namespaces (satellite of the fabric
    // refactor: no bare "unknown target").
    EXPECT_NE(errors[0].message.find("rail<r>"), std::string::npos);
    EXPECT_NE(errors[0].message.find("sw<j>"), std::string::npos);
    EXPECT_NE(errors[0].message.find("rack<k>"), std::string::npos);
}

TEST(FaultPlanTest, ValidateChecksRangesAndRetry)
{
    FaultPlan plan;
    FaultEvent ev;
    ev.kind = FaultKind::LinkDegrade;
    ev.begin = -1.0;
    ev.target = "roce";
    plan.events.push_back(ev);
    plan.retry.detect_delay = 0.0;
    const auto errors = plan.validate();
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_EQ(errors[0].field, "faults.events[0]");
    EXPECT_EQ(errors[1].field, "faults.retry.detect_delay");

    // Retry parameters are irrelevant (and unchecked) with no events.
    FaultPlan empty;
    empty.retry.backoff = -1.0;
    EXPECT_TRUE(empty.validate().empty());
}

} // namespace
} // namespace dstrain
