/**
 * @file
 * End-to-end tests of the fault-injection subsystem through the
 * Experiment facade: impact measurement, telemetry visibility,
 * determinism (same seed, serial vs parallel), and liveness under
 * link flaps and NIC failures during collectives.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep_runner.hh"
#include "telemetry/probe.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

/** Silence the fault apply/clear inform() chatter. */
class FaultInjectorTest : public testing::Test
{
  protected:
    FaultInjectorTest() { setLogLevel(LogLevel::Silent); }
    ~FaultInjectorTest() override { setLogLevel(LogLevel::Normal); }

    /** The shared scenario: dual-node ZeRO-3, short run. */
    static ExperimentConfig
    baseConfig()
    {
        ExperimentConfig cfg =
            paperExperiment(2, StrategyConfig::zero(3), 6.6);
        cfg.iterations = 4;
        cfg.warmup = 1;
        return cfg;
    }

    /** baseConfig() plus a parsed fault spec. */
    static ExperimentConfig
    faultedConfig(const std::string &spec)
    {
        ExperimentConfig cfg = baseConfig();
        std::vector<ConfigError> errors;
        cfg.faults = parseFaultSpec(spec, &errors);
        EXPECT_TRUE(errors.empty()) << formatConfigErrors(errors);
        return cfg;
    }
};

TEST_F(FaultInjectorTest, EmptyPlanIsBitIdentical)
{
    const ExperimentReport plain = runExperiment(baseConfig());
    ExperimentConfig cfg = baseConfig();
    cfg.faults = FaultPlan{};  // explicitly empty
    const ExperimentReport with_empty = runExperiment(std::move(cfg));
    EXPECT_EQ(reportFingerprint(plain), reportFingerprint(with_empty));
}

TEST_F(FaultInjectorTest, DegradeMeasurablyImpactsTheRun)
{
    const ExperimentReport clean = runExperiment(baseConfig());

    // Aim a 60% RoCE degrade at the middle of the measured window.
    const SimTime mb = clean.execution.measured_begin;
    const SimTime me = clean.execution.measured_end;
    ExperimentConfig cfg = baseConfig();
    FaultEvent ev;
    ev.kind = FaultKind::LinkDegrade;
    ev.begin = mb + 0.3 * (me - mb);
    ev.duration = 0.3 * (me - mb);
    ev.target = "roce";
    ev.fraction = 0.4;
    cfg.faults.events.push_back(ev);
    cfg.telemetry.retain_segments = true;

    Experiment exp(std::move(cfg));
    const ExperimentReport faulted = exp.run();

    // The run slowed down, reproducibly.
    EXPECT_GT(faulted.iteration_time, clean.iteration_time);
    ASSERT_EQ(faulted.faults.size(), 1u);
    const FaultImpact &im = faulted.faults[0];
    EXPECT_TRUE(im.restored);
    EXPECT_GT(im.iteration_slowdown, 1.0);

    // Every RoCE direction reports the degraded capacity and a
    // during-average at or below it (and below the clean periods).
    ASSERT_FALSE(im.links.empty());
    for (const LinkImpact &li : im.links) {
        EXPECT_DOUBLE_EQ(li.faulted, li.nominal * 0.4);
        EXPECT_GT(li.avg_before, 0.0);
        EXPECT_LT(li.avg_during, li.avg_before);
        EXPECT_LE(li.avg_during, li.faulted * 1.0001);
    }

    // The degraded window is visible in the Table IV-style telemetry:
    // RoCE averaged over the fault window sits below the same span of
    // the clean run's rate.
    const BandwidthSeries during = probeClassBandwidth(
        exp.cluster().topology(), LinkClass::Roce, im.applied_at,
        im.restored_at, 0.05);
    double peak = 0.0;
    for (double v : during.values)
        peak = std::max(peak, v);
    // Aggregate bidirectional per-node: 4 directions x faulted cap
    // bounds the per-bucket value.
    EXPECT_LE(peak,
              4.0 * im.links[0].faulted * 1.0001);
}

TEST_F(FaultInjectorTest, SameSeedSameFingerprint)
{
    const char *spec = "degrade@6+3:roce:0.25,straggler@9+2:rank3:0.7";
    const ExperimentReport a = runExperiment(faultedConfig(spec));
    const ExperimentReport b = runExperiment(faultedConfig(spec));
    const std::string fp = reportFingerprint(a);
    EXPECT_EQ(fp, reportFingerprint(b));
    // The fault section participates in the fingerprint.
    EXPECT_NE(fp.find("|faults="), std::string::npos);
}

TEST_F(FaultInjectorTest, SerialAndParallelSweepsAgree)
{
    const char *specs[] = {
        "degrade@6+3:roce:0.25",
        "flap@7+0.3:roce/n1",
        "nicdown@6+2:n0.nic1",
        "straggler@6+4:rank5:0.6",
    };
    std::vector<ExperimentConfig> points;
    for (const char *s : specs)
        points.push_back(faultedConfig(s));

    const std::vector<ExperimentReport> serial =
        SweepRunner(1).run(points);
    const std::vector<ExperimentReport> parallel =
        SweepRunner(4).run(points);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(reportFingerprint(serial[i]),
                  reportFingerprint(parallel[i]))
            << specs[i];
    }
}

TEST_F(FaultInjectorTest, FlapDuringCollectiveNeitherDeadlocksNorLeaks)
{
    // A full RoCE blackout mid-collective: the run must complete (the
    // flows freeze and resume, or reroute) with nothing left behind.
    ExperimentConfig cfg =
        faultedConfig("flap@6+0.5:roce,nicdown@9+1:n0.nic0");
    Experiment exp(std::move(cfg));
    const ExperimentReport report = exp.run();

    EXPECT_EQ(report.execution.iteration_ends.size(), 4u);
    EXPECT_EQ(exp.transfers().inFlight(), 0u);
    EXPECT_EQ(exp.flows().activeCount(), 0u);
    ASSERT_EQ(report.faults.size(), 2u);
    EXPECT_TRUE(report.faults[0].restored);
    EXPECT_TRUE(report.faults[1].restored);
    // The blackout shows as zero capacity in the impact record.
    for (const LinkImpact &li : report.faults[0].links)
        EXPECT_DOUBLE_EQ(li.faulted, 0.0);
}

TEST_F(FaultInjectorTest, StragglerSlowsOnlyItsIterations)
{
    const ExperimentReport clean = runExperiment(baseConfig());
    const ExperimentReport faulted =
        runExperiment(faultedConfig("straggler@6+4:rank0:0.5"));
    EXPECT_GT(faulted.iteration_time, clean.iteration_time);
    ASSERT_EQ(faulted.faults.size(), 1u);
    EXPECT_TRUE(faulted.faults[0].links.empty());
    EXPECT_GT(faulted.faults[0].iteration_slowdown, 1.0);
}

TEST_F(FaultInjectorTest, UnresolvableTargetDiesLoudly)
{
    EXPECT_DEATH(runExperiment(faultedConfig("straggler@1:rank99:0.5")),
                 "rank99");
    EXPECT_DEATH(runExperiment(faultedConfig("nicdown@1+1:n5.nic0")),
                 "n5.nic0");
}

TEST_F(FaultInjectorTest, FabricTargetsResolveOnTheDefaultCluster)
{
    // rail1 on the default two-node cluster: NIC 1's duplex uplink on
    // each node = 4 directed RoCE resources.
    const ExperimentReport rail =
        runExperiment(faultedConfig("degrade@1+1:rail1:0.5"));
    ASSERT_EQ(rail.faults.size(), 1u);
    EXPECT_EQ(rail.faults[0].links.size(), 4u);

    // sw0 is the only switch: everything RoCE hangs off it (2 nodes x
    // 2 NICs x 2 directions).
    const ExperimentReport sw =
        runExperiment(faultedConfig("degrade@1+1:sw0:0.5"));
    ASSERT_EQ(sw.faults.size(), 1u);
    EXPECT_EQ(sw.faults[0].links.size(), 8u);

    // The flat fabric has one rack holding both nodes, so the rack
    // scope covers the same links as the bare class.
    const ExperimentReport rack =
        runExperiment(faultedConfig("degrade@1+1:roce/rack0:0.5"));
    ASSERT_EQ(rack.faults.size(), 1u);
    EXPECT_EQ(rack.faults[0].links.size(), 8u);
}

TEST_F(FaultInjectorTest, FabricTargetErrorsTeachTheNamespaces)
{
    EXPECT_DEATH(runExperiment(faultedConfig("degrade@1+1:rail7:0.5")),
                 "valid target namespaces");
    EXPECT_DEATH(runExperiment(faultedConfig("flap@1+1:sw9")),
                 "valid target namespaces");
    // An out-of-range rack gets the precise bound, not the generic
    // namespace listing.
    EXPECT_DEATH(
        runExperiment(faultedConfig("degrade@1+1:roce/rack3:0.5")),
        "no such rack");
}

TEST_F(FaultInjectorTest, InvalidPlanFailsValidation)
{
    ExperimentConfig cfg = baseConfig();
    FaultEvent ev;
    ev.kind = FaultKind::LinkDegrade;
    ev.begin = 1.0;
    ev.target = "not-a-class";
    cfg.faults.events.push_back(ev);
    EXPECT_FALSE(cfg.validate().empty());
    EXPECT_DEATH(runExperiment(std::move(cfg)), "invalid");
}

} // namespace
} // namespace dstrain
