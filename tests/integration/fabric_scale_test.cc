/**
 * @file
 * Scale test for the generated fabrics: a 64-node fat-tree cluster
 * builds, routes, and runs DDP iterations end to end — and keeps
 * running when a whole rail goes down mid-iteration (the stranded
 * flows fail over to the surviving NIC via the retry policy).
 *
 * Byte conservation is asserted inside runExperiment() for every run
 * (TransferManager::verifyConservation), so completing at all means
 * no transfer lost bytes across the fault.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/report.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

class FabricScaleTest : public testing::Test
{
  protected:
    FabricScaleTest() { setLogLevel(LogLevel::Silent); }
    ~FabricScaleTest() override { setLogLevel(LogLevel::Normal); }

    /** 64 nodes x 2 GPUs on a k=8 fat-tree (16 edges, 4 pods). */
    static ExperimentConfig
    fatTreeConfig()
    {
        ExperimentConfig cfg =
            paperExperiment(64, StrategyConfig::ddp(), 1.4);
        cfg.cluster.node.gpus = 2;  // keep the flow count tractable
        cfg.cluster.fabric.kind = FabricKind::FatTree;
        cfg.cluster.fabric.fat_tree_k = 8;
        cfg.iterations = 2;
        cfg.warmup = 1;
        return cfg;
    }
};

TEST_F(FabricScaleTest, FatTree64NodeDdpRuns)
{
    ASSERT_TRUE(fatTreeConfig().validate().empty());
    const ExperimentReport report = runExperiment(fatTreeConfig());
    EXPECT_GT(report.iteration_time, 0.0);
    EXPECT_GT(report.tflops, 0.0);
}

TEST_F(FabricScaleTest, FatTree64NodeSurvivesRailFlap)
{
    ExperimentConfig cfg = fatTreeConfig();
    std::vector<ConfigError> errors;
    // Rail 1 (NIC 1 of all 64 nodes) drops mid-run; pinned channels
    // reroute through NIC 0 and the run must still complete with
    // every byte accounted for.
    cfg.faults = parseFaultSpec("flap@0.05+0.1:rail1", &errors);
    ASSERT_TRUE(errors.empty()) << formatConfigErrors(errors);

    const ExperimentReport clean = runExperiment(fatTreeConfig());
    const ExperimentReport faulted = runExperiment(std::move(cfg));
    ASSERT_EQ(faulted.faults.size(), 1u);
    // The flap hit one RoCE uplink per node, both directions.
    EXPECT_EQ(faulted.faults[0].links.size(), 128u);
    EXPECT_GE(faulted.iteration_time, clean.iteration_time);
}

TEST_F(FabricScaleTest, EcmpEnumeratesInterPodDiversity)
{
    ClusterSpec spec;
    spec.nodes = 64;
    spec.node.gpus = 2;
    spec.fabric.kind = FabricKind::FatTree;
    spec.fabric.fat_tree_k = 8;
    Cluster cluster(spec);
    // Nodes 0 and 63 sit in different pods: 4 aggs x 4 cores of
    // equal-cost diversity, capped by max_paths.
    const auto &paths = cluster.router().equalCostRoutes(
        cluster.gpuByRank(0), cluster.gpuByRank(127));
    EXPECT_GT(paths.size(), 1u);
    EXPECT_LE(paths.size(),
              static_cast<std::size_t>(spec.fabric.max_paths));
}

} // namespace
} // namespace dstrain
