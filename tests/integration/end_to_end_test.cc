/**
 * @file
 * Cross-cutting end-to-end tests: every strategy runs to completion
 * on every cluster shape it supports, the simulation stays
 * deterministic, scaling knobs behave sanely, and failure injection
 * (impossible hardware) is caught cleanly.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace dstrain {
namespace {

/** Parameterized over (strategy index, nodes). */
class EveryStrategyRuns
    : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static std::vector<StrategyConfig>
    allStrategies()
    {
        return {
            StrategyConfig::ddp(),
            StrategyConfig::megatron(4, 1),
            StrategyConfig::megatron(2, 2),
            StrategyConfig::zero(1),
            StrategyConfig::zero(2),
            StrategyConfig::zero(3),
            StrategyConfig::zeroOffloadCpu(1),
            StrategyConfig::zeroOffloadCpu(2),
            StrategyConfig::zeroOffloadCpu(3),
            StrategyConfig::zeroInfinityNvme(false),
            StrategyConfig::zeroInfinityNvme(true),
            StrategyConfig::fsdp(),
            StrategyConfig::moe(),
            StrategyConfig::moe(2),
            StrategyConfig::hybrid3d(2, 1),
            StrategyConfig::hybrid3d(2, 2),
        };
    }
};

TEST_P(EveryStrategyRuns, CompletesAndReportsSaneNumbers)
{
    const auto [idx, nodes] = GetParam();
    const StrategyConfig s =
        allStrategies()[static_cast<std::size_t>(idx)];
    ExperimentConfig cfg = paperExperiment(nodes, s, 1.4);
    cfg.iterations = 2;
    cfg.warmup = 1;
    Experiment exp(std::move(cfg));
    const ExperimentReport r = exp.run();
    EXPECT_GT(r.tflops, 1.0);
    EXPECT_LT(r.tflops, 312.0 * 4 * nodes);  // below aggregate peak
    EXPECT_GT(r.iteration_time, 0.0);
    EXPECT_FALSE(r.execution.spans.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesBothShapes, EveryStrategyRuns,
    testing::Combine(testing::Range(0, 16), testing::Values(1, 2)));

TEST(EndToEndTest, MoreIterationsRefineNotChangeSteadyState)
{
    auto avg = [](int iters) {
        ExperimentConfig cfg =
            paperExperiment(1, StrategyConfig::zero(2), 1.4);
        cfg.iterations = iters;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().iteration_time;
    };
    // Steady state: per-iteration time independent of run length.
    EXPECT_NEAR(avg(3), avg(6), avg(3) * 0.01);
}

TEST(EndToEndTest, SlowerFabricHurtsDualNodeZero)
{
    // On the paper's cluster the IOD SerDes path (not the 200 Gbps
    // wire) limits inter-node flows, so upgrading the NIC alone does
    // not help — but a 40 GbE-class fabric (5 GBps/dir) drops below
    // the SerDes cap and becomes the bottleneck.
    auto tput = [](Bps roce) {
        ExperimentConfig cfg =
            paperExperiment(2, StrategyConfig::zero(3), 6.6);
        cfg.cluster.node.roce_per_dir = roce;
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().tflops;
    };
    EXPECT_GT(tput(25e9), tput(5e9));
    // 200 Gbps vs 100 Gbps: both above the SerDes cap, no change.
    EXPECT_NEAR(tput(25e9), tput(12.5e9), tput(25e9) * 0.01);
}

TEST(EndToEndTest, MoreNvmeBandwidthHelpsInfinity)
{
    auto tput = [](Bps media) {
        ExperimentConfig cfg = paperExperiment(
            1, StrategyConfig::zeroInfinityNvme(false), 5.2);
        for (NvmeDriveSpec &d : cfg.placement.drives)
            d.media_rate = media;
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().tflops;
    };
    EXPECT_GT(tput(6.6e9), 1.5 * tput(1.65e9));
}

TEST(EndToEndTest, SlowCpuAdamHurtsOffload)
{
    auto tput = [](double rate) {
        ExperimentConfig cfg = paperExperiment(
            1, StrategyConfig::zeroOffloadCpu(2), 5.2);
        cfg.engine_cal.cpu_adam_params_per_sec = rate;
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().tflops;
    };
    EXPECT_GT(tput(3e9), tput(0.75e9));
}

TEST(EndToEndTest, PlanGranularityBarelyMovesResults)
{
    // ZeRO-2's schedule has no per-block software costs, so its
    // modeled time must be insensitive to plan granularity. (ZeRO-3
    // is excluded on purpose: its per-fetch overhead genuinely
    // scales with the fetch count.)
    auto iter_time = [](int blocks) {
        ExperimentConfig cfg =
            paperExperiment(1, StrategyConfig::zero(2), 2.9);
        cfg.tuning.max_blocks = blocks;
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().iteration_time;
    };
    EXPECT_NEAR(iter_time(12), iter_time(48), iter_time(12) * 0.05);
}

TEST(EndToEndTest, OversizedModelWarnsButRuns)
{
    // Simulating a model the memory model says cannot fit is allowed
    // for what-if studies (a warning is logged).
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::ddp(), 5.5);
    cfg.iterations = 2;
    cfg.warmup = 1;
    Experiment exp(std::move(cfg));
    EXPECT_GT(exp.run().tflops, 0.0);
}

TEST(EndToEndTest, SerdesAblationSpeedsUpDualNode)
{
    auto tput = [](bool serdes) {
        ExperimentConfig cfg =
            paperExperiment(2, StrategyConfig::zero(3), 6.6);
        cfg.cluster.node.model_serdes_contention = serdes;
        cfg.iterations = 2;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        return exp.run().tflops;
    };
    EXPECT_GT(tput(false), 1.1 * tput(true));
}

TEST(EndToEndTest, OverlapHelpsMostAcrossNodes)
{
    auto gain = [](int nodes) {
        auto tput = [nodes](bool overlap) {
            ExperimentConfig cfg =
                paperExperiment(nodes, StrategyConfig::zero(2), 1.4);
            cfg.tuning.overlap_grad_reduction = overlap;
            cfg.iterations = 2;
            cfg.warmup = 1;
            Experiment exp(std::move(cfg));
            return exp.run().tflops;
        };
        return tput(true) / tput(false);
    };
    EXPECT_GT(gain(1), 1.0);
    EXPECT_GT(gain(2), gain(1));
}

TEST(EndToEndTest, EightLocalDrivesApproachCpuOffload)
{
    // The paper's Sec. V-E prediction, as a regression guard.
    ExperimentConfig nvme = paperExperiment(
        1, StrategyConfig::zeroInfinityNvme(false), 11.4);
    nvme.placement = nvmePlacementConfig('H');
    nvme.iterations = 2;
    nvme.warmup = 1;
    Experiment nvme_exp(std::move(nvme));
    const double h = nvme_exp.run().tflops;

    ExperimentConfig cpu = paperExperiment(
        1, StrategyConfig::zeroOffloadCpu(2), 11.4);
    cpu.iterations = 2;
    cpu.warmup = 1;
    Experiment cpu_exp(std::move(cpu));
    const double bar = cpu_exp.run().tflops;
    EXPECT_GT(h, 0.5 * bar);
    EXPECT_LT(h, bar);
}

TEST(EndToEndDeathTest, HopelessHardwareIsFatal)
{
    ExperimentConfig cfg = paperExperiment(1, StrategyConfig::ddp());
    cfg.cluster.node.gpu_memory = 0.5 * units::GiB;
    EXPECT_EXIT(Experiment exp(std::move(cfg)),
                testing::ExitedWithCode(1), "cannot fit");
}

} // namespace
} // namespace dstrain
