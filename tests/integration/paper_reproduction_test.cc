/**
 * @file
 * Integration tests asserting the paper's headline quantitative
 * claims end to end — these are the "does the reproduction hold"
 * regression guards. Tolerances are generous where the paper itself
 * is noisy; orderings are asserted strictly.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/presets.hh"

namespace dstrain {
namespace {

ExperimentReport
run(int nodes, const StrategyConfig &s, double billions = 0.0,
    char placement = 'B')
{
    ExperimentConfig cfg = paperExperiment(nodes, s, billions);
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.placement = nvmePlacementConfig(placement);
    Experiment exp(std::move(cfg));
    return exp.run();
}

TEST(PaperReproduction, SingleNodeThroughputShape)
{
    std::map<StrategyKind, double> tput;
    for (const StrategyConfig &s : comparisonLineup(1))
        tput[s.kind] = run(1, s).tflops;

    // Paper Fig. 7-a values: 438 / 331 / 391 / 524 / 381.
    EXPECT_NEAR(tput[StrategyKind::Ddp], 438.0, 45.0);
    EXPECT_NEAR(tput[StrategyKind::Megatron], 331.0, 45.0);
    EXPECT_NEAR(tput[StrategyKind::Zero2], 524.0, 60.0);
    // Orderings: ZeRO-2 above DDP; Megatron-LM and ZeRO-3 trail.
    EXPECT_GT(tput[StrategyKind::Zero2], tput[StrategyKind::Ddp]);
    EXPECT_GT(tput[StrategyKind::Ddp], tput[StrategyKind::Megatron]);
    EXPECT_GT(tput[StrategyKind::Zero2], tput[StrategyKind::Zero3]);
    EXPECT_GT(tput[StrategyKind::Zero1], tput[StrategyKind::Zero3]);
}

TEST(PaperReproduction, DualNodeMegatronCollapses)
{
    const double ddp = run(2, StrategyConfig::ddp()).tflops;
    const double mlm = run(2, paperMegatron(2)).tflops;
    // Paper: Megatron-LM dual-node achieves ~0.19x of DDP.
    EXPECT_NEAR(ddp, 640.0, 80.0);
    EXPECT_NEAR(mlm, 121.0, 35.0);
    EXPECT_LT(mlm / ddp, 0.30);
}

TEST(PaperReproduction, DualNodeZeroBeatsMegatron)
{
    const double mlm = run(2, paperMegatron(2)).tflops;
    for (int stage : {1, 2, 3}) {
        const double z = run(2, StrategyConfig::zero(stage)).tflops;
        // Paper: ZeRO gives 3.26x-3.78x Megatron's throughput.
        EXPECT_GT(z / mlm, 2.5) << "stage " << stage;
        EXPECT_LT(z / mlm, 6.0) << "stage " << stage;
    }
}

TEST(PaperReproduction, ConsolidationBeatsDualNodeMegatron)
{
    // Paper Sec. V-A: single-node ZeRO-2+CPU trains the 11.4B model
    // ~57.8% faster than dual-node Megatron-LM.
    const double mlm = run(2, paperMegatron(2), 11.4).tflops;
    const double z2cpu =
        run(1, StrategyConfig::zeroOffloadCpu(2), 11.4).tflops;
    const double z3cpu =
        run(1, StrategyConfig::zeroOffloadCpu(3), 11.4).tflops;
    EXPECT_GT(z2cpu / mlm, 1.3);
    EXPECT_GT(z2cpu, z3cpu);  // ZeRO-2 offload is the recommendation
}

TEST(PaperReproduction, SecondNvmeDriveNearlyDoublesThroughput)
{
    // Paper Sec. V-B: 20.4 -> 38.1 TFLOP/s (optimizer offload).
    const double one =
        run(1, StrategyConfig::zeroInfinityNvme(false), 11.4, 'A')
            .tflops;
    const double two =
        run(1, StrategyConfig::zeroInfinityNvme(false), 11.4, 'B')
            .tflops;
    EXPECT_GT(two / one, 1.5);
    EXPECT_LT(two / one, 2.25);
    // Parameter offload costs extra throughput.
    const double both =
        run(1, StrategyConfig::zeroInfinityNvme(true), 11.4, 'B')
            .tflops;
    EXPECT_LT(both, two);
}

TEST(PaperReproduction, TableSixPlacementOrdering)
{
    std::map<char, double> tput;
    for (char id : {'A', 'B', 'E', 'F', 'G'}) {
        tput[id] = run(1, StrategyConfig::zeroInfinityNvme(true), 33.3,
                       id)
                       .tflops;
    }
    // A (one drive) is the floor; B roughly doubles it.
    EXPECT_GT(tput['B'] / tput['A'], 1.7);
    // RAID0 spanning sockets (E) loses to socket-local volumes (F/G).
    EXPECT_LT(tput['E'], 0.85 * tput['F']);
    // Four local drives beat two (paper: >60% gain).
    EXPECT_GT(tput['F'] / tput['B'], 1.5);
    EXPECT_NEAR(tput['G'], tput['F'], 0.15 * tput['F']);
}

TEST(PaperReproduction, ThroughputGrowsWithModelSize)
{
    // Paper Table V / Sec. V-D: more local work per GPU helps.
    const double small = run(1, StrategyConfig::zero(2), 1.4).tflops;
    const double large = run(1, StrategyConfig::zero(2), 5.2).tflops;
    EXPECT_GT(large, small);
}

TEST(PaperReproduction, OffloadThroughputFlatAcrossSizes)
{
    const double at2 =
        run(1, StrategyConfig::zeroOffloadCpu(2), 2.9).tflops;
    const double at11 =
        run(1, StrategyConfig::zeroOffloadCpu(2), 11.4).tflops;
    EXPECT_NEAR(at11 / at2, 1.0, 0.15);
}

TEST(PaperReproduction, MegatronDominatesNvlinkUtilization)
{
    const ExperimentReport ddp = run(1, StrategyConfig::ddp());
    const ExperimentReport mlm = run(1, paperMegatron(1));
    std::size_t nvlink_idx = 0;
    for (std::size_t i = 0; i < tableIvClasses().size(); ++i)
        if (tableIvClasses()[i] == LinkClass::NvLink)
            nvlink_idx = i;
    const double ddp_avg = ddp.bandwidth.per_class[nvlink_idx].avg;
    const double mlm_avg = mlm.bandwidth.per_class[nvlink_idx].avg;
    // Paper: ~300% more NVLink traffic for Megatron-LM.
    EXPECT_GT(mlm_avg / ddp_avg, 2.0);
    EXPECT_LT(mlm_avg / ddp_avg, 4.5);
}

TEST(PaperReproduction, DualNodeWakesUpXgmiAndRoce)
{
    const ExperimentReport single = run(1, StrategyConfig::zero(3));
    const ExperimentReport dual = run(2, StrategyConfig::zero(3));
    std::size_t xgmi = 0;
    std::size_t roce = 0;
    for (std::size_t i = 0; i < tableIvClasses().size(); ++i) {
        if (tableIvClasses()[i] == LinkClass::Xgmi)
            xgmi = i;
        if (tableIvClasses()[i] == LinkClass::Roce)
            roce = i;
    }
    EXPECT_DOUBLE_EQ(single.bandwidth.per_class[roce].avg, 0.0);
    EXPECT_GT(dual.bandwidth.per_class[roce].avg, 1e9);
    EXPECT_GT(dual.bandwidth.per_class[xgmi].avg,
              single.bandwidth.per_class[xgmi].avg);
}

TEST(PaperReproduction, OffloadIdlesGpusWhileHostComputes)
{
    // Fig. 5's qualitative observation: with CPU offload the GPUs
    // sit idle while the host runs the Adam step.
    const ExperimentReport r =
        run(1, StrategyConfig::zeroOffloadCpu(2), 1.4);
    const auto &ends = r.execution.iteration_ends;
    const SimTime window = ends.back() - ends[ends.size() - 2];

    SimTime host_busy = 0.0;
    SimTime gpu_compute = 0.0;
    for (const TaskSpan &s : r.execution.spans) {
        if (s.kind == TaskKind::CpuOptimizer)
            host_busy += s.end - s.begin;
        if (s.kind == TaskKind::GpuCompute)
            gpu_compute += s.end - s.begin;
    }
    // The host optimizer dominates the iteration...
    EXPECT_GT(host_busy, 0.3 * window);
    // ...while the four GPUs average well under half utilization.
    EXPECT_LT(gpu_compute / 4.0, 0.5 * window);
}

} // namespace
} // namespace dstrain
