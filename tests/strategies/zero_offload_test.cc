/**
 * @file
 * Tests for the ZeRO-Offload plan builders: host staging volumes,
 * CPU optimizer placement, and stage differences.
 */

#include <gtest/gtest.h>

#include "strategies/zero_offload.hh"

namespace dstrain {
namespace {

class ZeroOffloadPlanTest : public testing::Test
{
  protected:
    ZeroOffloadPlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(int stage, int layers = 26)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(layers),
                        16, nvmePlacementConfig('B'), PlanTuning{}};
        return Strategy::create(StrategyConfig::zeroOffloadCpu(stage))
            ->buildIteration(ctx);
    }

    Cluster cluster_;
};

TEST_F(ZeroOffloadPlanTest, OptimizerRunsOnCpuNotGpu)
{
    const IterationPlan plan = build(2);
    int cpu_adam = 0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::CpuOptimizer)
            ++cpu_adam;
        if (t.kind == TaskKind::GpuCompute) {
            EXPECT_NE(t.phase, ComputePhase::Optimizer) << t.label;
        }
    }
    EXPECT_EQ(cpu_adam, 4);  // one shard per rank
}

TEST_F(ZeroOffloadPlanTest, CpuWorkPinnedToGpuSockets)
{
    const IterationPlan plan = build(2);
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::CpuOptimizer)
            continue;
        EXPECT_EQ(t.node, 0);
        EXPECT_TRUE(t.socket == 0 || t.socket == 1);
    }
}

TEST_F(ZeroOffloadPlanTest, HostTrafficMatchesShards)
{
    const IterationPlan plan = build(2);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    Bytes down = 0.0;
    Bytes up = 0.0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::HostTransfer)
            continue;
        (t.to_host ? down : up) += t.bytes;
    }
    // Gradient shards down (2P total) and fp16 params back (2P).
    EXPECT_NEAR(down, 2.0 * p, 1e3);
    EXPECT_NEAR(up, 2.0 * p, 1e3);
}

TEST_F(ZeroOffloadPlanTest, Stage1DownloadsAfterFullReduction)
{
    const IterationPlan plan = build(1);
    int last_collective = -1;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::Collective &&
            t.op == CollectiveOp::AllReduce)
            last_collective = std::max(last_collective, t.id);
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::HostTransfer && t.to_host) {
            EXPECT_GT(t.id, last_collective);
        }
    }
}

TEST_F(ZeroOffloadPlanTest, Stage3StillGathersParameters)
{
    const IterationPlan plan = build(3);
    Bytes gathered = 0.0;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::Collective &&
            t.op == CollectiveOp::AllGather)
            gathered += t.bytes;
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    EXPECT_NEAR(gathered, 4.0 * p, 1e3);
}

TEST_F(ZeroOffloadPlanTest, NoNvmeWork)
{
    for (int stage : {1, 2, 3}) {
        const IterationPlan plan = build(stage);
        for (const PlanTask &t : plan.tasks())
            EXPECT_NE(t.kind, TaskKind::NvmeIo);
        plan.validate();
    }
}

} // namespace
} // namespace dstrain
