/**
 * @file
 * Tests for the 3D hybrid (DP x TP x PP + ZeRO) plan builder: the
 * ZeRO-style reduce-scatter / all-gather pair across the DP axis,
 * optimizer sharding over every rank, and the dp == 1 degenerate
 * case collapsing to the pure Megatron schedule.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "strategies/hybrid3d.hh"

namespace dstrain {
namespace {

IterationPlan
buildPlan(int nodes, int tp, int pp)
{
    ClusterSpec spec;
    spec.nodes = nodes;
    Cluster cluster(spec);
    PlanContext ctx{cluster, TransformerConfig::gpt2Like(26), 16,
                    nvmePlacementConfig('B'), PlanTuning{}};
    return Strategy::create(StrategyConfig::hybrid3d(tp, pp))
        ->buildIteration(ctx);
}

TEST(Hybrid3dPlanTest, DpAxisReduceScattersAndRegathersParams)
{
    // 8 GPUs, mp = 4 -> dp = 2: each of the mp positions
    // reduce-scatters its 2P/mp gradient shard across the replicas
    // and all-gathers the fresh parameters after the optimizer.
    const IterationPlan plan = buildPlan(2, 2, 2);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    Bytes rs = 0.0, ag = 0.0;
    int rs_count = 0, ag_count = 0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective)
            continue;
        if (t.label.find("h3d dp-rs") != std::string::npos) {
            rs += t.bytes;
            ++rs_count;
            EXPECT_EQ(t.group.size(), 2);  // the dp replicas
        } else if (t.label.find("h3d dp-ag") != std::string::npos) {
            ag += t.bytes;
            ++ag_count;
        }
    }
    EXPECT_EQ(rs_count, 4);  // one per model-parallel position
    EXPECT_EQ(ag_count, 4);
    EXPECT_NEAR(rs, 2.0 * p, 1e3);
    EXPECT_NEAR(ag, 2.0 * p, 1e3);
}

TEST(Hybrid3dPlanTest, ParameterGatherFollowsOptimizer)
{
    const IterationPlan plan = buildPlan(2, 2, 2);
    int max_adam = -1;
    for (const PlanTask &t : plan.tasks())
        if (t.phase == ComputePhase::Optimizer)
            max_adam = std::max(max_adam, t.id);
    ASSERT_GE(max_adam, 0);
    for (const PlanTask &t : plan.tasks()) {
        if (t.label.find("h3d dp-ag") != std::string::npos) {
            EXPECT_GT(t.id, max_adam);
        }
    }
}

TEST(Hybrid3dPlanTest, OptimizerShardedAcrossAllAxes)
{
    // Every rank owns 1/(mp x dp) = 1/8 of the states: total work
    // still sums to one optimizer pass over the model.
    const IterationPlan plan = buildPlan(2, 2, 2);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    double opt_flops = 0.0;
    for (const PlanTask &t : plan.tasks())
        if (t.phase == ComputePhase::Optimizer)
            opt_flops += t.flops;
    EXPECT_NEAR(opt_flops, kGpuOptimizerFlopsPerParam * p,
                opt_flops * 1e-9);
}

TEST(Hybrid3dPlanTest, PureModelParallelSkipsDpCollectives)
{
    // 4 GPUs, mp = 4 -> dp = 1: no replicas, so the DP-axis
    // reduce-scatter / all-gather pair must vanish while the TP
    // activation all-reduces stay.
    const IterationPlan plan = buildPlan(1, 2, 2);
    bool has_tp_ar = false;
    for (const PlanTask &t : plan.tasks()) {
        EXPECT_EQ(t.label.find("h3d dp-"), std::string::npos)
            << t.label;
        has_tp_ar |= t.label.find("h3d tp-ar") != std::string::npos;
    }
    EXPECT_TRUE(has_tp_ar);
}

TEST(Hybrid3dPlanTest, PipelineStagesChainMicrobatches)
{
    // GPipe dependency: stage 1's first microbatch waits on stage
    // 0's, so its forward compute must depend (transitively) on a
    // stage-0 task. Spot-check the direct dependency ids are valid
    // and the plan validates with 26 layers of metadata.
    const IterationPlan plan = buildPlan(2, 2, 2);
    plan.validate();
    EXPECT_EQ(plan.modelLayers(), 26);
    EXPECT_GT(plan.size(), 0u);
}

} // namespace
} // namespace dstrain
