/**
 * @file
 * Tests for the FSDP plan builder: ZeRO-3-shaped communication volume
 * at full bandwidth, the bounded prefetch window, and — end to end —
 * the gather-of-block-L+1-overlaps-compute-of-block-L timeline the
 * strategy exists to produce.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/presets.hh"
#include "strategies/fsdp.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

class FsdpPlanTest : public testing::Test
{
  protected:
    FsdpPlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(PlanTuning tuning = {})
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(26), 16,
                        nvmePlacementConfig('B'), tuning};
        return Strategy::create(StrategyConfig::fsdp())
            ->buildIteration(ctx);
    }

    static const PlanTask *
    findTask(const IterationPlan &plan, const std::string &label)
    {
        for (const PlanTask &t : plan.tasks())
            if (t.label == label)
                return &t;
        return nullptr;
    }

    Cluster cluster_;
};

TEST_F(FsdpPlanTest, Zero3ShapedVolumeAtFullBandwidth)
{
    const IterationPlan plan = build();
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    Bytes ag = 0.0, rs = 0.0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective)
            continue;
        if (t.op == CollectiveOp::AllGather) {
            ag += t.bytes;
            // The FSDP contrast with ZeRO-3: flat per-block shards
            // gathered at full fabric bandwidth, no fetch overhead.
            EXPECT_DOUBLE_EQ(t.comm_bw_factor, 1.0);
            EXPECT_DOUBLE_EQ(t.extra_latency, 0.0);
        } else if (t.op == CollectiveOp::ReduceScatter) {
            rs += t.bytes;
        }
    }
    // fwd + bwd re-gather = 2 x 2P; per-block grad scatter = 2P.
    EXPECT_NEAR(ag, 4.0 * p, 1e3);
    EXPECT_NEAR(rs, 2.0 * p, 1e3);
}

TEST_F(FsdpPlanTest, GatherInsidePrefetchWindowSkipsComputeGate)
{
    const IterationPlan plan = build();
    // With the default window of 2, the gathers of blocks 1 and 2
    // wait only on the gather chain — NOT on any forward compute —
    // so they overlap block 0's compute.
    for (int b : {1, 2}) {
        const PlanTask *ag =
            findTask(plan, csprintf("fsdp fwd ag b%d", b));
        ASSERT_NE(ag, nullptr);
        ASSERT_EQ(ag->deps.size(), 1u);
        EXPECT_EQ(plan.tasks()[static_cast<std::size_t>(ag->deps[0])]
                      .label,
                  csprintf("fsdp fwd ag b%d", b - 1));
    }
}

TEST_F(FsdpPlanTest, GatherBeyondWindowGatesOnCompute)
{
    const int n = cluster_.spec().totalGpus();
    const IterationPlan plan = build();
    // Block 3 sits past the window: its gather must wait for every
    // rank to consume block 0, bounding live gathered shards.
    const PlanTask *ag = findTask(plan, "fsdp fwd ag b3");
    ASSERT_NE(ag, nullptr);
    ASSERT_EQ(ag->deps.size(), static_cast<std::size_t>(1 + n));
    int compute_gates = 0;
    for (const int dep : ag->deps) {
        const PlanTask &d =
            plan.tasks()[static_cast<std::size_t>(dep)];
        if (d.kind == TaskKind::GpuCompute) {
            EXPECT_EQ(d.label, csprintf("fwd r%d b0", d.rank));
            ++compute_gates;
        }
    }
    EXPECT_EQ(compute_gates, n);

    // Shrinking the window moves the gate closer.
    PlanTuning tight;
    tight.fsdp_prefetch = 1;
    const IterationPlan plan1 = build(tight);
    const PlanTask *ag2 = findTask(plan1, "fsdp fwd ag b2");
    ASSERT_NE(ag2, nullptr);
    EXPECT_EQ(ag2->deps.size(), static_cast<std::size_t>(1 + n));
}

TEST_F(FsdpPlanTest, BackwardRegathersInReverseWithChainedScatter)
{
    const IterationPlan plan = build();
    // Parameters reshard after the forward: every block re-gathers
    // in the backward, and each block's reduce-scatter chains after
    // its backward compute.
    const PlanTask *bwd_ag = findTask(plan, "fsdp bwd ag b0");
    ASSERT_NE(bwd_ag, nullptr);
    const PlanTask *rs = findTask(plan, "fsdp rs b0");
    ASSERT_NE(rs, nullptr);
    bool gated_on_bwd = false;
    for (const int dep : rs->deps)
        gated_on_bwd |=
            plan.tasks()[static_cast<std::size_t>(dep)].phase ==
            ComputePhase::Backward;
    EXPECT_TRUE(gated_on_bwd);
}

TEST_F(FsdpPlanTest, OptimizerShardedAcrossRanks)
{
    const IterationPlan plan = build();
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    double opt_flops = 0.0;
    for (const PlanTask &t : plan.tasks())
        if (t.phase == ComputePhase::Optimizer)
            opt_flops += t.flops;
    EXPECT_NEAR(opt_flops, kGpuOptimizerFlopsPerParam * p,
                opt_flops * 1e-9);
}

TEST(FsdpExecutionTest, PrefetchOverlapsGatherWithForwardCompute)
{
    // The acceptance criterion: in the executed timeline, the
    // all-gather of block L+1 runs while block L computes.
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::fsdp(), 1.4);
    cfg.iterations = 2;
    cfg.warmup = 1;
    const ExperimentReport r = runExperiment(std::move(cfg));

    const TaskSpan *ag1 = nullptr;
    const TaskSpan *fwd0 = nullptr;
    for (const TaskSpan &s : r.execution.spans) {
        if (s.label == "fsdp fwd ag b1")
            ag1 = &s;
        if (s.label == "fwd r0 b0")
            fwd0 = &s;
    }
    ASSERT_NE(ag1, nullptr);
    ASSERT_NE(fwd0, nullptr);
    // Strict overlap: the gather starts before the compute ends and
    // vice versa.
    EXPECT_LT(ag1->begin, fwd0->end);
    EXPECT_LT(fwd0->begin, ag1->end);
}

} // namespace
} // namespace dstrain
