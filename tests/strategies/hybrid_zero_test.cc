/**
 * @file
 * Tests for the hybrid ZeRO + tensor-parallel extension.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "model/flops.hh"
#include "memplan/capacity_solver.hh"
#include "strategies/hybrid_zero.hh"

namespace dstrain {
namespace {

class HybridZeroTest : public testing::Test
{
  protected:
    HybridZeroTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(int stage, int tp, int layers = 26)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(layers),
                        16, nvmePlacementConfig('B'), PlanTuning{}};
        return Strategy::create(StrategyConfig::hybridZero(stage, tp))
            ->buildIteration(ctx);
    }

    Cluster cluster_;
};

TEST_F(HybridZeroTest, ConfigIdentity)
{
    const StrategyConfig c = StrategyConfig::hybridZero(2, 2);
    EXPECT_TRUE(c.isHybridZero());
    EXPECT_EQ(c.modelParallelSize(), 2);
    EXPECT_EQ(c.dataParallelSize(4), 2);
    EXPECT_EQ(c.displayName(), "ZeRO-2 +TP=2");
    validateStrategy(c);
    EXPECT_FALSE(StrategyConfig::zero(2).isHybridZero());
    EXPECT_FALSE(StrategyConfig::megatron(2, 1).isHybridZero());
}

TEST_F(HybridZeroTest, IllegalVariantsFatal)
{
    EXPECT_DEATH(StrategyConfig::hybridZero(3, 2), "stages 1 and 2");
    StrategyConfig c = StrategyConfig::hybridZero(2, 2);
    c.offload = OffloadTarget::Cpu;
    EXPECT_EXIT(validateStrategy(c), testing::ExitedWithCode(1),
                "offloading");
}

TEST_F(HybridZeroTest, PlanMixesTpAndDpCollectives)
{
    const IterationPlan plan = build(2, 2);  // tp=2, dp=2 on 4 GPUs
    int tp_ars = 0;
    int dp_reductions = 0;
    int dp_gathers = 0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective)
            continue;
        ASSERT_EQ(t.group.size(), 2);
        if (t.op == CollectiveOp::AllReduce &&
            t.label.find("tp-ar") != std::string::npos) {
            ++tp_ars;
            // TP groups are consecutive ranks.
            EXPECT_EQ(t.group.ranks[1], t.group.ranks[0] + 1);
        }
        if (t.op == CollectiveOp::ReduceScatter) {
            ++dp_reductions;
            // DP position groups are strided by tp.
            EXPECT_EQ(t.group.ranks[1], t.group.ranks[0] + 2);
        }
        if (t.op == CollectiveOp::AllGather)
            ++dp_gathers;
    }
    EXPECT_GT(tp_ars, 0);
    EXPECT_EQ(dp_reductions, 2);  // one per TP position
    EXPECT_EQ(dp_gathers, 2);
}

TEST_F(HybridZeroTest, Stage1AllReducesAcrossReplicas)
{
    const IterationPlan plan = build(1, 2);
    bool found = false;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective &&
            t.label.find("grad red") != std::string::npos) {
            EXPECT_EQ(t.op, CollectiveOp::AllReduce);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(HybridZeroTest, FullTpDegenerateCaseHasNoDpCollectives)
{
    const IterationPlan plan = build(2, 4);  // dp = 1
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective) {
            EXPECT_NE(t.label.find("tp-ar"), std::string::npos)
                << t.label;
        }
    }
    plan.validate();
}

TEST_F(HybridZeroTest, ExecutedFlopsMatchConvention)
{
    const IterationPlan plan = build(2, 2);
    // 2 replicas x (16 x 2) sequences each = global tokens 16384.
    const auto cfg = TransformerConfig::gpt2Like(26);
    const Flops fwd = forwardFlops(cfg, 16384);
    const double p = static_cast<double>(cfg.parameterCount());
    EXPECT_NEAR(plan.totalGpuFlops(),
                4.0 * fwd + kGpuOptimizerFlopsPerParam * p,
                plan.totalGpuFlops() * 1e-9);
}

TEST_F(HybridZeroTest, CapacitySitsBetweenZeroAndMegatron)
{
    const ClusterSpec cluster = xe8545Cluster(1);
    const double z2 =
        solveMaxModel(StrategyConfig::zero(2), cluster, 16)
            .entry.billions;
    const double hybrid =
        solveMaxModel(StrategyConfig::hybridZero(2, 4), cluster, 16)
            .entry.billions;
    // Splitting the states 4 ways fits more than plain ZeRO-2.
    EXPECT_GT(hybrid, z2);
}

TEST_F(HybridZeroTest, RunsEndToEnd)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::hybridZero(2, 2), 1.4);
    cfg.iterations = 2;
    cfg.warmup = 1;
    Experiment exp(std::move(cfg));
    const ExperimentReport r = exp.run();
    EXPECT_GT(r.tflops, 10.0);
}

} // namespace
} // namespace dstrain
