/**
 * @file
 * Tests for the iteration-plan task graph.
 */

#include <gtest/gtest.h>

#include "strategies/iteration_plan.hh"

namespace dstrain {
namespace {

TEST(IterationPlanTest, BuildersAssignSequentialIds)
{
    IterationPlan plan;
    const int a =
        plan.gpuCompute(0, 100.0, ComputePhase::Forward, {}, "a");
    const int b = plan.gpuCompute(0, 100.0, ComputePhase::Backward,
                                  {a}, "b");
    const int c = plan.barrier({a, b}, "c");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(c, 2);
    EXPECT_EQ(plan.size(), 3u);
    plan.validate();
}

TEST(IterationPlanTest, FlopAndByteTotals)
{
    IterationPlan plan;
    plan.gpuCompute(0, 100.0, ComputePhase::Forward, {}, "f");
    plan.gpuCompute(1, 200.0, ComputePhase::Backward, {}, "b");
    plan.collective(CollectiveOp::AllReduce, CommGroup::worldOf(4),
                    50.0, {}, "ar");
    plan.hostTransfer(0, 10.0, true, {}, "ht");
    EXPECT_DOUBLE_EQ(plan.totalGpuFlops(), 300.0);
    EXPECT_DOUBLE_EQ(plan.totalCollectiveBytes(), 50.0);
}

TEST(IterationPlanTest, ModelLayersDefaultAndOverride)
{
    IterationPlan plan;
    EXPECT_EQ(plan.modelLayers(), 24);
    plan.setModelLayers(107);
    EXPECT_EQ(plan.modelLayers(), 107);
}

TEST(IterationPlanDeathTest, ForwardDependencyRejected)
{
    IterationPlan plan;
    PlanTask t;
    t.kind = TaskKind::Barrier;
    t.deps = {5};  // future task
    EXPECT_DEATH(plan.add(std::move(t)), "invalid/future");
}

TEST(IterationPlanDeathTest, ValidateCatchesBadFields)
{
    IterationPlan plan;
    PlanTask t;
    t.kind = TaskKind::GpuCompute;
    t.rank = -1;  // invalid
    t.flops = 1.0;
    plan.add(std::move(t));
    EXPECT_DEATH(plan.validate(), "bad compute task");
}

TEST(IterationPlanTest, KindAndPhaseNames)
{
    EXPECT_STREQ(taskKindName(TaskKind::GpuCompute), "gpu-compute");
    EXPECT_STREQ(taskKindName(TaskKind::NvmeIo), "nvme-io");
    EXPECT_STREQ(computePhaseName(ComputePhase::Forward), "fwd");
    EXPECT_STREQ(computePhaseName(ComputePhase::Io), "io");
}

TEST(IterationPlanTest, CollectiveCarriesTuning)
{
    IterationPlan plan;
    const int id = plan.collective(
        CollectiveOp::AllGather, CommGroup::worldOf(2), 10.0, {}, "ag",
        /*pin_channels=*/false, /*extra_latency=*/2e-3,
        /*bw_factor=*/0.3);
    const PlanTask &t = plan.tasks()[static_cast<std::size_t>(id)];
    EXPECT_FALSE(t.pin_channels);
    EXPECT_DOUBLE_EQ(t.extra_latency, 2e-3);
    EXPECT_DOUBLE_EQ(t.comm_bw_factor, 0.3);
}

} // namespace
} // namespace dstrain
