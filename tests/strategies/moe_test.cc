/**
 * @file
 * Tests for the MoE expert-parallel plan builder: expert-parallel
 * sizing, the dispatch/combine all-to-all volume against the
 * closed-form token arithmetic, expert-gradient replication, and the
 * engine-level usage accounting (all-to-alls run pairwise).
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "strategies/moe.hh"

namespace dstrain {
namespace {

class MoePlanTest : public testing::Test
{
  protected:
    MoePlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(int experts = 0)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(26), 16,
                        nvmePlacementConfig('B'), PlanTuning{}};
        return Strategy::create(StrategyConfig::moe(experts))
            ->buildIteration(ctx);
    }

    Cluster cluster_;
};

TEST_F(MoePlanTest, ExpertParallelSizing)
{
    const MoeStrategy all(StrategyConfig::moe());
    EXPECT_EQ(all.expertParallelSize(4), 4);
    const MoeStrategy two(StrategyConfig::moe(2));
    EXPECT_EQ(two.expertParallelSize(4), 2);
    // More experts than GPUs: one expert per GPU.
    const MoeStrategy many(StrategyConfig::moe(8));
    EXPECT_EQ(many.expertParallelSize(4), 4);
}

TEST(MoeDeathTest, IndivisibleExpertCountIsFatal)
{
    const MoeStrategy three(StrategyConfig::moe(3));
    EXPECT_DEATH(three.expertParallelSize(4), "divisible");
}

TEST_F(MoePlanTest, AllToAllVolumeMatchesTokenArithmetic)
{
    const TransformerConfig model = TransformerConfig::gpt2Like(26);
    const IterationPlan plan = build(2);  // ep = 2, 2 expert groups
    std::vector<const PlanTask *> a2a;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::Collective &&
            t.op == CollectiveOp::AllToAll)
            a2a.push_back(&t);
    ASSERT_FALSE(a2a.empty());

    // dispatch + combine, per block, per group, fwd + bwd.
    const int groups = 2;
    ASSERT_EQ(a2a.size() % (2u * 2u * groups), 0u);
    const int blocks =
        static_cast<int>(a2a.size()) / (2 * 2 * groups);

    // Every token's fp16 hidden vector crosses its expert group once
    // per exchange per MoE layer.
    const Bytes expected = static_cast<Bytes>(16) * model.seq_len *
                           model.hidden * 2.0 * model.layers / blocks;
    for (const PlanTask *t : a2a) {
        EXPECT_NEAR(t->bytes, expected, expected * 1e-12);
        EXPECT_EQ(t->group.size(), 2);
    }
}

TEST_F(MoePlanTest, ExpertGradientsReplicateAcrossGroups)
{
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    const IterationPlan plan = build(2);  // 2 groups of ep = 2
    Bytes shared_ar = 0.0, expert_ar = 0.0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective ||
            t.op != CollectiveOp::AllReduce)
            continue;
        if (t.label.find("expert-ar") != std::string::npos)
            expert_ar += t.bytes;
        else
            shared_ar += t.bytes;
    }
    // Shared fraction all-reduces over the world; each of the ep
    // expert positions all-reduces its 1/ep slice across the replicas.
    EXPECT_NEAR(shared_ar, 2.0 * p * kMoeSharedFraction, 1e3);
    EXPECT_NEAR(expert_ar, 2.0 * p * (1.0 - kMoeSharedFraction), 1e3);
}

TEST_F(MoePlanTest, SingleGroupSkipsExpertReplication)
{
    // experts = 0: one expert per GPU, a single group — expert grads
    // are fully sharded, nothing to replicate.
    const IterationPlan plan = build(0);
    for (const PlanTask &t : plan.tasks())
        EXPECT_EQ(t.label.find("expert-ar"), std::string::npos);
}

TEST(MoeExecutionTest, AllToAllsRunPairwiseWithClosedFormFabric)
{
    ExperimentConfig cfg =
        paperExperiment(1, StrategyConfig::moe(), 1.4);
    cfg.iterations = 2;
    cfg.warmup = 1;
    const ExperimentReport r = runExperiment(std::move(cfg));

    const CollectiveUsage *a2a = nullptr;
    for (const CollectiveUsage &u : r.collectives)
        if (u.op == CollectiveOp::AllToAll)
            a2a = &u;
    ASSERT_NE(a2a, nullptr);
    // Ring cannot schedule all-to-all: the engine must record the
    // pairwise schedule that actually ran.
    EXPECT_EQ(a2a->algo, CollectiveAlgo::Pairwise);
    EXPECT_GT(a2a->invocations, 0u);
    // (N-1)/N of every payload byte crosses the fabric; ep = 4 here.
    EXPECT_NEAR(a2a->fabric_bytes, 3.0 * a2a->payload_bytes,
                a2a->payload_bytes * 1e-9);
}

} // namespace
} // namespace dstrain
