/**
 * @file
 * Tests for the Megatron-LM plan builder: TP groups, pipeline
 * structure, DP gradient reduction and volumes.
 */

#include <gtest/gtest.h>

#include "model/flops.hh"
#include "strategies/megatron.hh"

namespace dstrain {
namespace {

IterationPlan
build(int nodes, int tp, int pp, int layers)
{
    ClusterSpec spec;
    spec.nodes = nodes;
    Cluster cluster(spec);
    PlanContext ctx{cluster, TransformerConfig::gpt2Like(layers), 16,
                    nvmePlacementConfig('B'), PlanTuning{}};
    return Strategy::create(StrategyConfig::megatron(tp, pp))
        ->buildIteration(ctx);
}

TEST(MegatronPlanTest, TpCollectivesStayInGroup)
{
    const IterationPlan plan = build(1, 4, 1, 26);
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective)
            continue;
        EXPECT_EQ(t.group.size(), 4);
        EXPECT_EQ(t.op, CollectiveOp::AllReduce);
    }
}

TEST(MegatronPlanTest, ComputeSplitsAcrossModelParallelRanks)
{
    const IterationPlan plan = build(1, 4, 1, 26);
    const auto cfg = TransformerConfig::gpt2Like(26);
    // One replica processes 16 x 4 sequences; executed flops match
    // the profiler convention (plus optimizer shards).
    const Flops expected =
        iterationFlops(cfg, 16384, true) +
        kGpuOptimizerFlopsPerParam *
            static_cast<double>(cfg.parameterCount());
    EXPECT_NEAR(plan.totalGpuFlops(), expected, expected * 1e-9);
}

TEST(MegatronPlanTest, BackwardCarriesRecomputeAllReduces)
{
    const IterationPlan plan = build(1, 4, 1, 26);
    Bytes fwd_ar = 0.0;
    Bytes bwd_ar = 0.0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind != TaskKind::Collective)
            continue;
        if (t.label.find("fwd") != std::string::npos)
            fwd_ar += t.bytes;
        else if (t.label.find("bwd") != std::string::npos)
            bwd_ar += t.bytes;
    }
    EXPECT_GT(fwd_ar, 0.0);
    EXPECT_NEAR(bwd_ar, 2.0 * fwd_ar, fwd_ar * 1e-9);
}

TEST(MegatronPlanTest, DataParallelReplicasAllReduceGradients)
{
    // 8 GPUs, TP=4 -> DP=2: expect per-position gradient all-reduces
    // over 2-rank groups.
    const IterationPlan plan = build(2, 4, 1, 26);
    int dp_ars = 0;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective && t.group.size() == 2) {
            ++dp_ars;
            EXPECT_EQ(t.op, CollectiveOp::AllReduce);
        }
    }
    EXPECT_EQ(dp_ars, 4);  // one per model-parallel position
}

TEST(MegatronPlanTest, PipelineAddsMicrobatchCells)
{
    const IterationPlan with_pp = build(1, 2, 2, 26);
    const IterationPlan no_pp = build(1, 4, 1, 26);
    // Same total compute either way.
    EXPECT_NEAR(with_pp.totalGpuFlops(), no_pp.totalGpuFlops(),
                no_pp.totalGpuFlops() * 1e-9);
    with_pp.validate();
}

TEST(MegatronPlanTest, DualNodeTpSpansNodes)
{
    const IterationPlan plan = build(2, 8, 1, 225);
    bool found_spanning = false;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective && t.group.size() == 8)
            found_spanning = true;
    }
    EXPECT_TRUE(found_spanning);
}

} // namespace
} // namespace dstrain
