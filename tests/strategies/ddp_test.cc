/**
 * @file
 * Tests for the DDP plan builder: compute totals, communication
 * volume, and overlap structure.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "model/flops.hh"
#include "strategies/ddp.hh"

namespace dstrain {
namespace {

class DdpPlanTest : public testing::Test
{
  protected:
    DdpPlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(int layers)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(layers),
                        16, nvmePlacementConfig('B'), PlanTuning{}};
        return Strategy::create(StrategyConfig::ddp())
            ->buildIteration(ctx);
    }

    Cluster cluster_;
};

TEST_F(DdpPlanTest, ExecutedFlopsMatchProfilerConvention)
{
    const IterationPlan plan = build(26);
    const auto cfg = TransformerConfig::gpt2Like(26);
    // fwd + recompute + bwd per rank, 4 ranks, plus the optimizer.
    const Flops expected =
        iterationFlops(cfg, 16384, /*with_recompute=*/true) +
        4.0 * kGpuOptimizerFlopsPerParam *
            static_cast<double>(cfg.parameterCount());
    EXPECT_NEAR(plan.totalGpuFlops(), expected, expected * 1e-9);
}

TEST_F(DdpPlanTest, CommunicatesExactlyTheGradients)
{
    const IterationPlan plan = build(26);
    const auto cfg = TransformerConfig::gpt2Like(26);
    EXPECT_NEAR(plan.totalCollectiveBytes(),
                2.0 * static_cast<double>(cfg.parameterCount()),
                1e3);
    // All-reduce only.
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective) {
            EXPECT_EQ(t.op, CollectiveOp::AllReduce);
        }
    }
}

TEST_F(DdpPlanTest, BucketsOverlapBackward)
{
    const IterationPlan plan = build(26);
    // The first all-reduce bucket must NOT depend on any rank's last
    // backward block (that's what overlapping means).
    std::vector<int> last_bwd;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::GpuCompute &&
            t.phase == ComputePhase::Backward)
            last_bwd.push_back(t.id);
    std::sort(last_bwd.begin(), last_bwd.end());
    const std::vector<int> tail(last_bwd.end() - 4, last_bwd.end());
    const PlanTask *first_ar = nullptr;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective) {
            first_ar = &t;
            break;
        }
    }
    ASSERT_NE(first_ar, nullptr);
    for (int dep : first_ar->deps) {
        EXPECT_EQ(std::find(tail.begin(), tail.end(), dep),
                  tail.end());
    }
}

TEST_F(DdpPlanTest, NoHostOrNvmeWork)
{
    const IterationPlan plan = build(26);
    for (const PlanTask &t : plan.tasks()) {
        EXPECT_NE(t.kind, TaskKind::HostTransfer);
        EXPECT_NE(t.kind, TaskKind::CpuOptimizer);
        EXPECT_NE(t.kind, TaskKind::NvmeIo);
    }
}

TEST_F(DdpPlanTest, EveryRankGetsOptimizer)
{
    const IterationPlan plan = build(12);
    int optimizers = 0;
    for (const PlanTask &t : plan.tasks())
        if (t.phase == ComputePhase::Optimizer)
            ++optimizers;
    EXPECT_EQ(optimizers, 4);
}

TEST_F(DdpPlanTest, LayerMetadataRecorded)
{
    EXPECT_EQ(build(26).modelLayers(), 26);
}

} // namespace
} // namespace dstrain
