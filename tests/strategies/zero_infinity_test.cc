/**
 * @file
 * Tests for the ZeRO-Infinity plan builder: NVMe swap volumes, rank
 * to volume mapping, and the optimizer/parameter offload variants.
 */

#include <gtest/gtest.h>

#include "strategies/zero_infinity.hh"

namespace dstrain {
namespace {

class ZeroInfinityPlanTest : public testing::Test
{
  protected:
    ZeroInfinityPlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(bool params_too, char placement = 'B', int layers = 26)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(layers),
                        16, nvmePlacementConfig(placement),
                        PlanTuning{}};
        return Strategy::create(
                   StrategyConfig::zeroInfinityNvme(params_too))
            ->buildIteration(ctx);
    }

    static Bytes
    nvmeBytes(const IterationPlan &plan, bool writes)
    {
        Bytes total = 0.0;
        for (const PlanTask &t : plan.tasks())
            if (t.kind == TaskKind::NvmeIo && t.io_write == writes)
                total += t.bytes;
        return total;
    }

    Cluster cluster_;
};

TEST_F(ZeroInfinityPlanTest, OptimizerSwapIsTwelveBytesEachWay)
{
    const IterationPlan plan = build(false);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    EXPECT_NEAR(nvmeBytes(plan, false), 12.0 * p, 1e3);
    EXPECT_NEAR(nvmeBytes(plan, true), 12.0 * p, 1e3);
}

TEST_F(ZeroInfinityPlanTest, ParameterOffloadAddsPageTraffic)
{
    const IterationPlan opt = build(false);
    const IterationPlan both = build(true);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    // Params read twice (fwd+bwd page-ins) and written once.
    EXPECT_NEAR(nvmeBytes(both, false) - nvmeBytes(opt, false),
                4.0 * p, 1e3);
    EXPECT_NEAR(nvmeBytes(both, true) - nvmeBytes(opt, true), 2.0 * p,
                1e3);
}

TEST_F(ZeroInfinityPlanTest, SwapPipelineIsChunked)
{
    PlanTuning tuning;
    tuning.nvme_chunks = 8;
    PlanContext ctx{cluster_, TransformerConfig::gpt2Like(26), 16,
                    nvmePlacementConfig('B'), tuning};
    const IterationPlan plan =
        Strategy::create(StrategyConfig::zeroInfinityNvme(false))
            ->buildIteration(ctx);
    int reads = 0;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::NvmeIo && !t.io_write)
            ++reads;
    EXPECT_EQ(reads, 4 * 8);  // ranks x chunks
}

TEST_F(ZeroInfinityPlanTest, RankVolumeMappingFollowsPlacement)
{
    const IterationPlan plan = build(false, 'G');
    const NvmePlacement g = nvmePlacementConfig('G');
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::NvmeIo) {
            EXPECT_EQ(t.volume, g.volumeForRank(t.rank));
        }
    }
}

TEST_F(ZeroInfinityPlanTest, SingleVolumePlacementUsesVolumeZero)
{
    const IterationPlan plan = build(false, 'B');
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::NvmeIo) {
            EXPECT_EQ(t.volume, 0);
        }
    }
}

TEST_F(ZeroInfinityPlanTest, CpuAdamPresentAndSharded)
{
    const IterationPlan plan = build(false);
    double adam_params = 0.0;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::CpuOptimizer)
            adam_params += t.cpu_params;
    EXPECT_NEAR(adam_params,
                static_cast<double>(TransformerConfig::gpt2Like(26)
                                        .parameterCount()),
                1.0);
}

TEST_F(ZeroInfinityPlanTest, ValidatesForAllVariants)
{
    for (bool params_too : {false, true}) {
        for (char placement : {'A', 'D', 'G'}) {
            const IterationPlan plan = build(params_too, placement);
            plan.validate();
            EXPECT_GT(plan.size(), 0u);
        }
    }
}

} // namespace
} // namespace dstrain
