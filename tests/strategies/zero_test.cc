/**
 * @file
 * Tests for the ZeRO stage 1-3 plan builders: per-stage collective
 * mixes and the +50% stage-3 volume claim.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "strategies/zero.hh"

namespace dstrain {
namespace {

class ZeroPlanTest : public testing::Test
{
  protected:
    ZeroPlanTest() : cluster_(ClusterSpec{}) {}

    IterationPlan
    build(int stage, int layers = 26)
    {
        PlanContext ctx{cluster_, TransformerConfig::gpt2Like(layers),
                        16, nvmePlacementConfig('B'), PlanTuning{}};
        return Strategy::create(StrategyConfig::zero(stage))
            ->buildIteration(ctx);
    }

    static Bytes
    bytesOf(const IterationPlan &plan, CollectiveOp op)
    {
        Bytes total = 0.0;
        for (const PlanTask &t : plan.tasks())
            if (t.kind == TaskKind::Collective && t.op == op)
                total += t.bytes;
        return total;
    }

    Cluster cluster_;
};

TEST_F(ZeroPlanTest, Stage1AllReducesAndGathers)
{
    const IterationPlan plan = build(1);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::AllReduce), 2.0 * p, 1e3);
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::AllGather), 2.0 * p, 1e3);
    EXPECT_DOUBLE_EQ(bytesOf(plan, CollectiveOp::ReduceScatter), 0.0);
}

TEST_F(ZeroPlanTest, Stage2ReduceScattersInstead)
{
    const IterationPlan plan = build(2);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    EXPECT_DOUBLE_EQ(bytesOf(plan, CollectiveOp::AllReduce), 0.0);
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::ReduceScatter), 2.0 * p,
                1e3);
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::AllGather), 2.0 * p, 1e3);
}

TEST_F(ZeroPlanTest, Stage3GathersTwiceAndScattersOnce)
{
    const IterationPlan plan = build(3);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    // fwd + bwd gathers = 2 x 2P; grads reduce-scatter = 2P.
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::AllGather), 4.0 * p, 1e3);
    EXPECT_NEAR(bytesOf(plan, CollectiveOp::ReduceScatter), 2.0 * p,
                1e3);
}

TEST_F(ZeroPlanTest, Stage3GathersCarryFetchCosts)
{
    const IterationPlan plan = build(3);
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective &&
            t.op == CollectiveOp::AllGather) {
            EXPECT_DOUBLE_EQ(t.extra_latency, kZero3FetchOverhead);
            EXPECT_DOUBLE_EQ(t.comm_bw_factor,
                             kZero3GatherBandwidthFactor);
        }
    }
}

TEST_F(ZeroPlanTest, Stage12ReductionWaitsForBackward)
{
    // DeepSpeed 0.7 semantics: reductions start after the full
    // backward pass (the paper's peak-and-trough pattern).
    const IterationPlan plan = build(2);
    int last_bwd = -1;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::GpuCompute &&
            t.phase == ComputePhase::Backward)
            last_bwd = std::max(last_bwd, t.id);
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective) {
            EXPECT_GT(t.id, last_bwd);
        }
    }
}

TEST_F(ZeroPlanTest, OverlapKnobGatesBucketsOnTheirBlocks)
{
    PlanTuning tuning;
    tuning.overlap_grad_reduction = true;
    PlanContext ctx{cluster_, TransformerConfig::gpt2Like(26), 16,
                    nvmePlacementConfig('B'), tuning};
    const IterationPlan plan =
        Strategy::create(StrategyConfig::zero(2))->buildIteration(ctx);
    // The first reduction bucket no longer waits for the last
    // backward block of any rank.
    std::vector<int> bwd_ids;
    for (const PlanTask &t : plan.tasks())
        if (t.kind == TaskKind::GpuCompute &&
            t.phase == ComputePhase::Backward)
            bwd_ids.push_back(t.id);
    std::sort(bwd_ids.begin(), bwd_ids.end());
    const std::vector<int> tail(bwd_ids.end() - 4, bwd_ids.end());
    const PlanTask *first_red = nullptr;
    for (const PlanTask &t : plan.tasks()) {
        if (t.kind == TaskKind::Collective) {
            first_red = &t;
            break;
        }
    }
    ASSERT_NE(first_red, nullptr);
    for (int dep : first_red->deps)
        EXPECT_EQ(std::find(tail.begin(), tail.end(), dep), tail.end());
}

TEST_F(ZeroPlanTest, OptimizerShardedAcrossRanks)
{
    const IterationPlan plan = build(2);
    const double p = static_cast<double>(
        TransformerConfig::gpt2Like(26).parameterCount());
    double opt_flops = 0.0;
    for (const PlanTask &t : plan.tasks())
        if (t.phase == ComputePhase::Optimizer)
            opt_flops += t.flops;
    // 4 ranks x P/4 = P parameters' worth of optimizer work total.
    EXPECT_NEAR(opt_flops, kGpuOptimizerFlopsPerParam * p,
                opt_flops * 1e-9);
}

TEST_F(ZeroPlanTest, PlansValidateAndCarryMetadata)
{
    for (int stage : {1, 2, 3}) {
        const IterationPlan plan = build(stage, 40);
        plan.validate();
        EXPECT_EQ(plan.modelLayers(), 40);
        EXPECT_GT(plan.size(), 0u);
    }
}

} // namespace
} // namespace dstrain
