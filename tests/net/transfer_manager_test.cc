/**
 * @file
 * Tests for the transfer manager: latency handling, via-pinning,
 * rate factors and accounting.
 */

#include <gtest/gtest.h>

#include "net/transfer_manager.hh"

namespace dstrain {
namespace {

class TransferManagerTest : public testing::Test
{
  protected:
    TransferManagerTest()
        : cluster_(makeSpec()), flows_(sim_, cluster_.topology()),
          tm_(sim_, cluster_, flows_)
    {
    }

    static ClusterSpec
    makeSpec()
    {
        ClusterSpec spec;
        spec.nodes = 2;
        return spec;
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
    TransferManager tm_;
};

TEST_F(TransferManagerTest, CompletesAndCounts)
{
    bool done = false;
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 1e9,
              [&] { done = true; });
    EXPECT_EQ(tm_.startedCount(), 1u);
    EXPECT_EQ(tm_.inFlight(), 1u);
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(tm_.completedCount(), 1u);
    EXPECT_EQ(tm_.inFlight(), 0u);
}

TEST_F(TransferManagerTest, LatencyDelaysFlowStart)
{
    // 1 byte over NVLink: duration ~ link latency + transfer time.
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 2.0,
              nullptr);
    sim_.run();
    EXPECT_GE(sim_.now(), 700e-9);  // the NVLink hop latency
}

TEST_F(TransferManagerTest, RateFactorSlowsTransfer)
{
    // NVLink effective 80 GBps; factor 0.5 -> 40 GBps.
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 40e9,
              nullptr, TransferOptions{});
    sim_.run();
    const SimTime full_speed = sim_.now();

    Simulation sim2;
    Cluster cluster2(makeSpec());
    FlowScheduler flows2(sim2, cluster2.topology());
    TransferManager tm2(sim2, cluster2, flows2);
    TransferOptions opts;
    opts.rate_factor = 0.5;
    tm2.start(cluster2.gpuByRank(0), cluster2.gpuByRank(1), 40e9,
              nullptr, std::move(opts));
    sim2.run();
    EXPECT_NEAR(sim2.now(), 2.0 * full_speed, 1e-3);
}

TEST_F(TransferManagerTest, ViaChangesThePath)
{
    // Pin node-0 GPU0's egress through NIC1 (the cross-socket NIC):
    // xGMI must carry traffic.
    TransferOptions opts;
    opts.waypoints = {cluster_.node(0).nics[1]};
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(4), 1e9,
              nullptr, std::move(opts));
    sim_.run();
    flows_.finalizeLogs();
    Bytes xgmi = 0.0;
    for (const Resource &r : cluster_.topology().resources())
        if (r.cls == LinkClass::Xgmi)
            xgmi += r.log.totalBytes();
    EXPECT_NEAR(xgmi, 1e9, 1e6);
}

TEST_F(TransferManagerTest, DefaultPathAvoidsXgmi)
{
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(4), 1e9,
              nullptr);
    sim_.run();
    flows_.finalizeLogs();
    for (const Resource &r : cluster_.topology().resources()) {
        if (r.cls == LinkClass::Xgmi) {
            EXPECT_DOUBLE_EQ(r.log.totalBytes(), 0.0);
        }
    }
}

class TransferRetryTest : public TransferManagerTest
{
  protected:
    /** Scale every link direction touching one NIC (0 = down). */
    void
    setNicCapacityFactor(int node, int nic, double factor)
    {
        const ComponentId id = cluster_.node(node).nics[nic];
        Topology &topo = cluster_.topology();
        for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
            const HalfLink &hl =
                topo.halfLink(static_cast<HalfLinkId>(h));
            if (hl.from != id && hl.to != id)
                continue;
            const Resource &r = topo.resource(hl.resource);
            flows_.setCapacity(hl.resource,
                               r.nominal_capacity * factor);
        }
    }
};

TEST_F(TransferRetryTest, ReroutesAroundDownedNic)
{
    RetryPolicy policy;
    policy.enabled = true;
    tm_.configureRetry(policy);

    // Pin the inter-node transfer through n0.nic0, then kill that NIC
    // mid-flight: the manager must cancel the stranded flow and
    // relaunch the remaining bytes through n0.nic1.
    TransferOptions opts;
    opts.waypoints = {cluster_.node(0).nics[0]};
    bool done = false;
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(4), 10e9,
              [&] { done = true; }, std::move(opts));
    sim_.events().schedule(0.05, [&] {
        setNicCapacityFactor(0, 0, 0.0);
        tm_.notifyCapacityChange();
    });
    sim_.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(tm_.rerouteCount(), 1u);
    EXPECT_EQ(tm_.inFlight(), 0u);
    EXPECT_EQ(flows_.activeCount(), 0u);

    // The relaunched flow really moved through the alternate NIC.
    flows_.finalizeLogs();
    const ComponentId nic1 = cluster_.node(0).nics[1];
    Bytes through_nic1 = 0.0;
    Topology &topo = cluster_.topology();
    for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
        const HalfLink &hl = topo.halfLink(static_cast<HalfLinkId>(h));
        if (hl.from == nic1 || hl.to == nic1)
            through_nic1 += topo.resource(hl.resource).log.totalBytes();
    }
    EXPECT_GT(through_nic1, 0.0);
}

TEST_F(TransferRetryTest, ParkedTransferResumesOnRestore)
{
    // With zero retries allowed the stranded transfer is parked at
    // rate zero; restoring the link lets it finish on its own.
    RetryPolicy policy;
    policy.enabled = true;
    policy.max_retries = 0;
    tm_.configureRetry(policy);

    TransferOptions opts;
    opts.waypoints = {cluster_.node(0).nics[0]};
    bool done = false;
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(4), 10e9,
              [&] { done = true; }, std::move(opts));
    sim_.events().schedule(0.05, [&] {
        setNicCapacityFactor(0, 0, 0.0);
        tm_.notifyCapacityChange();
    });
    sim_.events().schedule(0.3, [&] {
        EXPECT_FALSE(done);  // still parked
        setNicCapacityFactor(0, 0, 1.0);
    });
    sim_.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(tm_.rerouteCount(), 0u);
    EXPECT_EQ(tm_.inFlight(), 0u);
}

TEST_F(TransferRetryTest, RetryDisabledKeepsZeroPendingState)
{
    // The default (no faults) configuration must not grow
    // per-transfer bookkeeping: notifyCapacityChange is a no-op.
    bool done = false;
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 1e9,
              [&] { done = true; });
    tm_.notifyCapacityChange();
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(tm_.rerouteCount(), 0u);
}

TEST_F(TransferManagerTest, AbortAllAccountsEveryByte)
{
    // Byte conservation across the hard-failure abort path:
    // requested == delivered + aborted, and every started transfer
    // ends up completed or aborted — never lost.
    int completions = 0;
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 10e9,
              [&] { ++completions; });
    tm_.start(cluster_.gpuByRank(1), cluster_.gpuByRank(0), 80e12,
              [&] { ++completions; });
    sim_.events().schedule(1.0, [&] {
        // The 10 GB transfer finished long ago; the 80 TB one is
        // still in flight and gets the axe. Mirror the production
        // abort pairing: the owner cancels the scheduler's flows
        // right after the manager gives up on them.
        EXPECT_EQ(tm_.abortAll(), 1u);
        flows_.cancelAll();
    });
    sim_.run();
    EXPECT_EQ(completions, 1);

    const TransferManager::Stats &stats = tm_.stats();
    EXPECT_EQ(stats.started, 2u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.aborted, 1u);
    EXPECT_EQ(stats.conservation_violations, 0u);
    EXPECT_NEAR(stats.bytes_requested, 80e12 + 10e9, 1.0);
    EXPECT_NEAR(stats.bytes_delivered + stats.bytes_aborted,
                stats.bytes_requested, 1e3);
    EXPECT_GT(stats.bytes_aborted, 0.0);
    tm_.verifyConservation();  // must not assert
}

TEST_F(TransferManagerTest, AbortAllInvalidatesDelayedLaunches)
{
    // A transfer still inside its latency delay has no flow yet; the
    // abort must still account it and the stale launch event must
    // become a no-op rather than resurrect it.
    tm_.start(cluster_.gpuByRank(0), cluster_.gpuByRank(1), 1e9,
              [] { FAIL() << "aborted transfer completed"; });
    EXPECT_EQ(tm_.abortAll(), 1u);  // before any event ran
    sim_.run();
    EXPECT_EQ(tm_.stats().aborted, 1u);
    EXPECT_NEAR(tm_.stats().bytes_aborted, 1e9, 1.0);
    tm_.verifyConservation();
}

TEST_F(TransferManagerTest, DeathOnSelfTransfer)
{
    EXPECT_DEATH(tm_.start(cluster_.gpuByRank(0),
                           cluster_.gpuByRank(0), 1.0, nullptr),
                 "itself");
}

TEST_F(TransferManagerTest, DeathOnBadRateFactor)
{
    TransferOptions opts;
    opts.rate_factor = 1.5;
    EXPECT_DEATH(tm_.start(cluster_.gpuByRank(0),
                           cluster_.gpuByRank(1), 1.0, nullptr,
                           std::move(opts)),
                 "rate factor");
}

} // namespace
} // namespace dstrain
