/**
 * @file
 * Tests for the RDMA verbs latency model against the paper's Fig. 3
 * envelopes, with a parameterized sweep over ops and message sizes.
 */

#include <gtest/gtest.h>

#include "net/stress_test.hh"
#include "net/verbs.hh"

namespace dstrain {
namespace {

const NodeSpec kSpec;

TEST(VerbsTest, OpNames)
{
    EXPECT_STREQ(verbsOpName(VerbsOp::Send), "SEND");
    EXPECT_STREQ(verbsOpName(VerbsOp::RdmaRead), "RDMA READ");
    EXPECT_STREQ(verbsOpName(VerbsOp::RdmaWrite), "RDMA WRITE");
}

TEST(VerbsTest, PaperEnvelopeBelow64k)
{
    for (VerbsOp op :
         {VerbsOp::Send, VerbsOp::RdmaRead, VerbsOp::RdmaWrite}) {
        for (Bytes size = 2.0; size < 64.0 * units::KiB; size *= 2.0) {
            EXPECT_LT(verbsLatency(op, size,
                                   SocketPlacement::SameSocket, kSpec),
                      6e-6);
            EXPECT_LT(verbsLatency(op, size,
                                   SocketPlacement::CrossSocket,
                                   kSpec),
                      40e-6);
        }
    }
}

TEST(VerbsTest, ReadSlowerThanWriteAtSmallSizes)
{
    const Bytes size = 256.0;
    EXPECT_GT(
        verbsLatency(VerbsOp::RdmaRead, size,
                     SocketPlacement::SameSocket, kSpec),
        verbsLatency(VerbsOp::RdmaWrite, size,
                     SocketPlacement::SameSocket, kSpec));
}

TEST(VerbsTest, CrossSocketRoughlySevenTimesSlowerSmall)
{
    const double ratio =
        verbsLatency(VerbsOp::Send, 2.0,
                     SocketPlacement::CrossSocket, kSpec) /
        verbsLatency(VerbsOp::Send, 2.0, SocketPlacement::SameSocket,
                     kSpec);
    EXPECT_NEAR(ratio, 7.0, 0.2);
}

TEST(VerbsTest, StreamBandwidthMatchesStressCalibration)
{
    EXPECT_NEAR(verbsStreamBandwidth(SocketPlacement::SameSocket,
                                     false, kSpec),
                0.93 * 25e9, 1e6);
    EXPECT_NEAR(verbsStreamBandwidth(SocketPlacement::CrossSocket,
                                     false, kSpec),
                32e9 * 0.82 * 0.224, 1e6);
}

/** Parameterized: latency is monotone in message size. */
class VerbsMonotoneProperty
    : public testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(VerbsMonotoneProperty, LatencyMonotoneInSize)
{
    const auto op = static_cast<VerbsOp>(std::get<0>(GetParam()));
    const auto placement = std::get<1>(GetParam())
                               ? SocketPlacement::CrossSocket
                               : SocketPlacement::SameSocket;
    SimTime prev = verbsLatency(op, 1.0, placement, kSpec);
    for (Bytes size = 2.0; size <= 8.0 * units::MiB; size *= 2.0) {
        const SimTime cur = verbsLatency(op, size, placement, kSpec);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndPlacements, VerbsMonotoneProperty,
    testing::Combine(testing::Values(0, 1, 2), testing::Bool()));

// --- the Fig. 4 stress results, asserted as a regression test -------

TEST(StressTest, ReproducesPaperFractions)
{
    struct Case {
        bool gpu_direct;
        bool cross_socket;
        double paper;
    };
    const Case cases[] = {
        {false, false, 0.93},
        {false, true, 0.47},
        {true, false, 0.52},
        {true, true, 0.42},
    };
    for (const Case &c : cases) {
        StressConfig cfg;
        cfg.gpu_direct = c.gpu_direct;
        cfg.cross_socket = c.cross_socket;
        cfg.duration = 1.0;
        const StressResult r = runRoceStressTest(cfg);
        EXPECT_NEAR(r.roceFraction(), c.paper, 0.02)
            << "gpu_direct=" << c.gpu_direct
            << " cross=" << c.cross_socket;
    }
}

TEST(StressTest, GpuDirectBypassesDram)
{
    StressConfig cfg;
    cfg.gpu_direct = true;
    cfg.duration = 0.5;
    const StressResult r = runRoceStressTest(cfg);
    EXPECT_LT(r.dram.avg, 1e9);
    EXPECT_GT(r.pcie_gpu.avg, 1e9);
}

TEST(StressTest, CrossSocketLightsUpXgmi)
{
    StressConfig same;
    same.duration = 0.5;
    StressConfig cross = same;
    cross.cross_socket = true;
    EXPECT_LT(runRoceStressTest(same).xgmi.avg, 1e9);
    EXPECT_GT(runRoceStressTest(cross).xgmi.avg, 10e9);
}

} // namespace
} // namespace dstrain
