/**
 * @file
 * Property tests for the max-min fairness of the flow scheduler:
 * the formal definition (no flow's rate can be raised without
 * lowering a flow of equal or smaller rate) checked on constructed
 * and randomized scenarios by sampling live rates mid-run.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "util/rng.hh"

namespace dstrain {
namespace {

/** One shared 80 GBps NVLink pair, flows with assorted caps. */
TEST(FairnessTest, CappedFlowsFreeCapacityForOthers)
{
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());

    const Route &route = cluster.router().route(cluster.gpuByRank(0),
                                                cluster.gpuByRank(1));
    std::vector<FlowId> ids;
    const double caps[] = {5e9, 0.0, 0.0};  // 0 = uncapped
    for (double cap : caps) {
        FlowSpec spec;
        spec.route = route;
        spec.bytes = 1e12;  // long-lived
        spec.rate_cap = cap;
        ids.push_back(flows.start(std::move(spec)));
    }

    // Sample rates shortly after start: the capped flow pins at
    // 5 GBps; the other two split the remaining 75 GBps.
    sim.events().scheduleAfter(1e-3, [&] {
        EXPECT_NEAR(flows.currentRate(ids[0]), 5e9, 1e3);
        EXPECT_NEAR(flows.currentRate(ids[1]), 37.5e9, 1e3);
        EXPECT_NEAR(flows.currentRate(ids[2]), 37.5e9, 1e3);
    });
    sim.runUntil(2e-3);
}

TEST(FairnessTest, MultiHopFlowLimitedByItsBottleneck)
{
    // A GPU->remote-GPU flow (capped ~6.5 GBps by the SerDes model)
    // shares its NVLink-free path; an NVLink-only flow coexists at
    // full speed.
    Simulation sim;
    ClusterSpec spec;
    spec.nodes = 2;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());

    FlowSpec remote;
    remote.route = cluster.router().route(cluster.gpuByRank(0),
                                          cluster.gpuByRank(4));
    remote.bytes = 1e12;
    const FlowId rid = flows.start(std::move(remote));

    FlowSpec local;
    local.route = cluster.router().route(cluster.gpuByRank(1),
                                         cluster.gpuByRank(2));
    local.bytes = 1e12;
    const FlowId lid = flows.start(std::move(local));

    sim.events().scheduleAfter(1e-3, [&] {
        EXPECT_NEAR(flows.currentRate(rid), 32e9 * 0.82 * 0.248, 1e6);
        EXPECT_NEAR(flows.currentRate(lid), 80e9, 1e3);
    });
    sim.runUntil(2e-3);
}

/**
 * Randomized max-min property: on a single shared resource, the
 * water-filling outcome is: caps sorted ascending are granted until
 * the fair share drops below the next cap; everyone else gets the
 * equal residual share.
 */
class MaxMinProperty : public testing::TestWithParam<int>
{
};

TEST_P(MaxMinProperty, SingleResourceWaterFilling)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Simulation sim;
    Cluster cluster{ClusterSpec{}};
    FlowScheduler flows(sim, cluster.topology());
    const Route &route = cluster.router().route(cluster.gpuByRank(2),
                                                cluster.gpuByRank(3));
    const double capacity = 80e9;

    const int n = 2 + static_cast<int>(rng.below(6));
    std::vector<double> caps;
    std::vector<FlowId> ids;
    for (int i = 0; i < n; ++i) {
        const double cap = rng.uniform(2e9, 60e9);
        caps.push_back(cap);
        FlowSpec spec;
        spec.route = route;
        spec.bytes = 1e13;
        spec.rate_cap = cap;
        ids.push_back(flows.start(std::move(spec)));
    }

    // Reference water-filling.
    std::vector<double> expect(caps.size(), 0.0);
    {
        std::vector<std::size_t> order(caps.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return caps[a] < caps[b];
                  });
        double residual = capacity;
        std::size_t remaining = caps.size();
        for (std::size_t idx : order) {
            const double share = residual / static_cast<double>(remaining);
            expect[idx] = std::min(caps[idx], share);
            residual -= expect[idx];
            --remaining;
        }
    }

    sim.events().scheduleAfter(1e-3, [&] {
        double total = 0.0;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            EXPECT_NEAR(flows.currentRate(ids[i]), expect[i], 1e4)
                << "flow " << i << " cap " << caps[i];
            total += flows.currentRate(ids[i]);
        }
        EXPECT_LE(total, capacity * (1.0 + 1e-9));
    });
    sim.runUntil(2e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty, testing::Range(1, 16));

} // namespace
} // namespace dstrain
