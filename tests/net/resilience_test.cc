/**
 * @file
 * Tests for the degraded-mode resilience layer: the topology-change
 * bus, the reconvergence window of the ResilienceCoordinator, and
 * the router's dead-link avoidance + stale-route fallback.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "net/resilience.hh"

namespace dstrain {
namespace {

/** The RoCE resources a route traverses. */
std::vector<ResourceId>
roceResources(const Topology &topo, const Route &route)
{
    std::vector<ResourceId> rids;
    for (HalfLinkId hid : route.hops) {
        const HalfLink &hl = topo.halfLink(hid);
        if (hl.cls == LinkClass::Roce)
            rids.push_back(hl.resource);
    }
    return rids;
}

/** Every RoCE resource in the cluster. */
std::vector<ResourceId>
allRoce(const Topology &topo)
{
    std::vector<ResourceId> rids;
    for (const Resource &res : topo.resources())
        if (res.cls == LinkClass::Roce)
            rids.push_back(res.id);
    return rids;
}

TEST(ResilienceConfig, ValidateAcceptsDefaults)
{
    ResilienceConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(ResilienceConfig, ValidateRejectsNegativeKnobs)
{
    ResilienceConfig cfg;
    cfg.reconvergence_delay = -1e-3;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = ResilienceConfig{};
    cfg.collective_timeout = -1.0;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = ResilienceConfig{};
    cfg.max_collective_resumes = -1;
    EXPECT_FALSE(cfg.validate().empty());
}

TEST(TopologyChangeBus, DeliversToListenersInOrder)
{
    TopologyChangeBus bus;
    std::vector<int> order;
    bus.subscribe([&](const std::vector<ResourceId> &) {
        order.push_back(1);
    });
    bus.subscribe([&](const std::vector<ResourceId> &) {
        order.push_back(2);
    });
    EXPECT_EQ(bus.listenerCount(), 2u);
    bus.publish({ResourceId{0}});
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

class CoordinatorTest : public testing::Test
{
  protected:
    CoordinatorTest() : sim_(1), cluster_(makeSpec())
    {
        cluster_.router().setAvoidDeadLinks(true);
        ResilienceConfig cfg;
        cfg.enabled = true;
        cfg.reconvergence_delay = 2e-3;
        rc_ = std::make_unique<ResilienceCoordinator>(
            sim_, cluster_.router(), cfg);
    }

    static ClusterSpec
    makeSpec()
    {
        ClusterSpec spec;
        spec.nodes = 2;
        return spec;
    }

    void
    publishAt(SimTime when)
    {
        sim_.events().schedule(when, [this] {
            rc_->bus().publish({ResourceId{0}});
        });
    }

    Simulation sim_;
    Cluster cluster_;
    std::unique_ptr<ResilienceCoordinator> rc_;
};

TEST_F(CoordinatorTest, SingleChangeInvalidatesAfterDelay)
{
    publishAt(1e-3);
    sim_.events().schedule(2e-3, [this] {
        EXPECT_TRUE(rc_->inReconvergence());
        EXPECT_EQ(cluster_.router().cacheInvalidations(), 0u);
    });
    sim_.events().schedule(4e-3, [this] {
        EXPECT_FALSE(rc_->inReconvergence());
        EXPECT_EQ(cluster_.router().cacheInvalidations(), 1u);
    });
    sim_.run();
    EXPECT_EQ(rc_->stats().route_invalidations, 1u);
}

TEST_F(CoordinatorTest, OverlappingChangesExtendTheWindowOnce)
{
    // Second change lands inside the first window: one flush, at the
    // extended close (2e-3 + 2e-3 = 4e-3), not two.
    publishAt(1e-3);
    publishAt(2e-3);
    sim_.events().schedule(3.5e-3, [this] {
        EXPECT_TRUE(rc_->inReconvergence());
        EXPECT_EQ(cluster_.router().cacheInvalidations(), 0u);
    });
    sim_.events().schedule(4.5e-3, [this] {
        EXPECT_FALSE(rc_->inReconvergence());
        EXPECT_EQ(cluster_.router().cacheInvalidations(), 1u);
    });
    sim_.run();
    EXPECT_EQ(rc_->stats().route_invalidations, 1u);
}

TEST_F(CoordinatorTest, SeparatedChangesInvalidateSeparately)
{
    publishAt(1e-3);
    publishAt(10e-3);
    sim_.run();
    EXPECT_EQ(rc_->stats().route_invalidations, 2u);
    EXPECT_EQ(cluster_.router().cacheInvalidations(), 2u);
}

TEST_F(CoordinatorTest, EnsureFreshFlushesEarlyAndOnlyOnce)
{
    publishAt(1e-3);
    sim_.events().schedule(1.5e-3, [this] {
        rc_->ensureFresh();
        EXPECT_EQ(cluster_.router().cacheInvalidations(), 1u);
    });
    sim_.run();
    // The armed flush event at 3e-3 found nothing dirty: no second
    // invalidation.
    EXPECT_EQ(cluster_.router().cacheInvalidations(), 1u);
    EXPECT_EQ(rc_->stats().route_invalidations, 1u);
}

TEST_F(CoordinatorTest, EnsureFreshIsNoOpWhenClean)
{
    rc_->ensureFresh();
    EXPECT_EQ(cluster_.router().cacheInvalidations(), 0u);
    EXPECT_FALSE(rc_->inReconvergence());
}

class DeadLinkRoutingTest : public testing::Test
{
  protected:
    DeadLinkRoutingTest()
        : sim_(1), cluster_(makeSpec()),
          flows_(sim_, cluster_.topology())
    {
        cluster_.router().setAvoidDeadLinks(true);
    }

    static ClusterSpec
    makeSpec()
    {
        ClusterSpec spec;
        spec.nodes = 2;
        return spec;
    }

    void
    kill(const std::vector<ResourceId> &rids)
    {
        std::vector<std::pair<ResourceId, Bps>> batch;
        for (ResourceId rid : rids)
            batch.emplace_back(rid, 0.0);
        flows_.setCapacities(batch);
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
};

TEST_F(DeadLinkRoutingTest, ReroutesAroundDeadLinkAfterInvalidation)
{
    const Router &router = cluster_.router();
    const ComponentId src = cluster_.gpuByRank(0);
    const ComponentId dst = cluster_.gpuByRank(4);

    const Route before = router.routeForFlow(src, dst, 0);
    ASSERT_TRUE(before.valid());
    const std::vector<ResourceId> used =
        roceResources(cluster_.topology(), before);
    ASSERT_FALSE(used.empty());

    kill(used);
    router.invalidateRouteCaches();

    const Route after = router.routeForFlow(src, dst, 0);
    ASSERT_TRUE(after.valid());
    for (ResourceId rid : roceResources(cluster_.topology(), after)) {
        EXPECT_EQ(std::find(used.begin(), used.end(), rid), used.end())
            << "reconverged route still crosses a dead link";
    }
}

TEST_F(DeadLinkRoutingTest, StaleRouteFallbackOnFullPartition)
{
    const Router &router = cluster_.router();
    const ComponentId src = cluster_.gpuByRank(0);
    const ComponentId dst = cluster_.gpuByRank(4);

    kill(allRoce(cluster_.topology()));
    router.invalidateRouteCaches();

    // Every inter-node path is cut: the router must fall back to the
    // healthy-topology shortest path (the flow parks), not fatal().
    const Route stale = router.routeForFlow(src, dst, 0);
    EXPECT_TRUE(stale.valid());
}

TEST_F(DeadLinkRoutingTest, InvalidationCounterTracksFlushes)
{
    const Router &router = cluster_.router();
    EXPECT_EQ(router.cacheInvalidations(), 0u);
    router.invalidateRouteCaches();
    router.invalidateRouteCaches();
    EXPECT_EQ(router.cacheInvalidations(), 2u);
}

TEST_F(DeadLinkRoutingTest, DisabledAvoidanceKeepsNominalRoutes)
{
    cluster_.router().setAvoidDeadLinks(false);
    const Router &router = cluster_.router();
    const ComponentId src = cluster_.gpuByRank(0);
    const ComponentId dst = cluster_.gpuByRank(4);

    const Route before = router.routeForFlow(src, dst, 0);
    const std::vector<ResourceId> used =
        roceResources(cluster_.topology(), before);
    kill(used);
    router.invalidateRouteCaches();

    // Legacy behavior: capacities never influence path choice.
    const Route after = router.routeForFlow(src, dst, 0);
    EXPECT_EQ(after.hops, before.hops);
}

} // namespace
} // namespace dstrain
