/**
 * @file
 * Solver-equivalence fuzz: the region-scoped incremental solver must
 * produce rates bit-identical to the global water-filling oracle on
 * randomized interleavings of start / finish / setCapacity /
 * setCapacities / cancel over generated fabrics.
 *
 * Two layers of checking run at once:
 *
 *  - Twin lockstep: a Region-mode scheduler and a Global-mode
 *    scheduler are driven through the same op sequence on identical
 *    clusters, comparing every flow's rate (EXPECT_EQ on the doubles
 *    — bitwise for non-NaN values) after every op and every
 *    completion wave.
 *
 *  - Both twins run with verify_fair_share: the scheduler itself
 *    re-runs the from-scratch per-component oracle after every event
 *    and fatal()s on any divergence, which also covers the events
 *    that fire inside runUntil() between our checkpoints. (Verify
 *    mode disables the start/finish fast paths — an incrementally
 *    assigned rate equals a fresh fill mathematically but not always
 *    in the last bit — so the oracle checks region-closure
 *    correctness, not float dust; see DESIGN.md §6.1.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "util/rng.hh"
#include "util/task_pool.hh"

namespace dstrain {
namespace {

/** One simulation + cluster + scheduler under a chosen solver. */
struct Twin {
    Twin(const ClusterSpec &spec, FlowSolverMode mode, bool verify)
        : cluster(spec), flows(sim, cluster.topology(), mode, verify)
    {
    }

    Simulation sim;
    Cluster cluster;
    FlowScheduler flows;
    int done = 0;
};

/** Fuzz both solvers through one seeded op sequence. */
void
fuzzFabric(const ClusterSpec &spec, std::uint64_t seed, int ops)
{
    Twin region(spec, FlowSolverMode::Region, true);
    Twin global(spec, FlowSolverMode::Global, true);
    Rng rng(seed);

    // Fault candidates: the fabric's RoCE links (uplinks + trunks) —
    // the resources multi-link faults scale in real plans.
    std::vector<ResourceId> roce;
    std::vector<Bps> nominal;
    for (const Resource &r : region.cluster.topology().resources()) {
        if (r.cls == LinkClass::Roce) {
            roce.push_back(r.id);
            nominal.push_back(r.nominal_capacity);
        }
    }
    ASSERT_FALSE(roce.empty());

    const int gpus = region.cluster.spec().totalGpus();
    std::vector<FlowId> ids;  // same ids in both twins

    auto compareRates = [&] {
        for (FlowId id : ids) {
            ASSERT_EQ(region.flows.isActive(id),
                      global.flows.isActive(id))
                << "activity diverged for flow " << id;
            ASSERT_EQ(region.flows.currentRate(id),
                      global.flows.currentRate(id))
                << "rate diverged for flow " << id;
        }
        ASSERT_EQ(region.flows.activeCount(),
                  global.flows.activeCount());
        ASSERT_EQ(region.done, global.done);
    };

    const double fractions[] = {0.0, 0.25, 0.5, 1.0};
    SimTime t = 0.0;
    for (int op = 0; op < ops; ++op) {
        t += rng.uniform(1e-4, 5e-3);
        region.sim.runUntil(t);
        global.sim.runUntil(t);

        const std::uint64_t kind = rng.below(10);
        if (kind < 5) {
            // Start: a cross-GPU transfer on the ECMP route both
            // routers resolve identically (same topology, same key).
            const int a = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(gpus)));
            int b = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(gpus)));
            if (b == a)
                b = (a + 1) % gpus;
            const std::uint64_t key = rng.below(1u << 20);
            const Bytes bytes =
                static_cast<double>(1 + rng.below(64)) * 1e8;
            FlowId rid = 0;
            FlowId gid = 0;
            for (Twin *tw : {&region, &global}) {
                FlowSpec fs;
                fs.route = tw->cluster.router().routeForFlow(
                    tw->cluster.gpuByRank(a), tw->cluster.gpuByRank(b),
                    key);
                fs.bytes = bytes;
                fs.on_complete = [tw] { ++tw->done; };
                (tw == &region ? rid : gid) =
                    tw->flows.start(std::move(fs));
            }
            ASSERT_EQ(rid, gid);
            ids.push_back(rid);
        } else if (kind < 7) {
            // Single-link capacity change.
            const std::size_t i = rng.below(roce.size());
            const double f = fractions[rng.below(4)];
            region.flows.setCapacity(roce[i], nominal[i] * f);
            global.flows.setCapacity(roce[i], nominal[i] * f);
        } else if (kind == 7) {
            // Batched multi-link change (the fault-domain path).
            std::vector<std::pair<ResourceId, Bps>> batch;
            const std::size_t n = 1 + rng.below(4);
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t i = rng.below(roce.size());
                batch.emplace_back(roce[i],
                                   nominal[i] * fractions[rng.below(4)]);
            }
            region.flows.setCapacities(batch);
            global.flows.setCapacities(batch);
        } else if (!ids.empty()) {
            // Cancel a random still-active flow.
            const FlowId id = ids[rng.below(ids.size())];
            Bytes rrem = 0.0;
            Bytes grem = 0.0;
            const bool rok = region.flows.cancel(id, &rrem);
            const bool gok = global.flows.cancel(id, &grem);
            ASSERT_EQ(rok, gok);
            ASSERT_EQ(rrem, grem) << "cancel remainder diverged";
        }
        compareRates();
    }

    // Restore every link and drain: both twins must finish every
    // surviving flow at the same instant.
    for (std::size_t i = 0; i < roce.size(); ++i) {
        region.flows.setCapacity(roce[i], nominal[i]);
        global.flows.setCapacity(roce[i], nominal[i]);
    }
    compareRates();
    const SimTime rend = region.sim.run();
    const SimTime gend = global.sim.run();
    ASSERT_EQ(rend, gend) << "drain times diverged";
    ASSERT_EQ(region.done, global.done);
    ASSERT_EQ(region.flows.activeCount(), 0u);

    // The verify twin really ran its oracle, and the region solver
    // really ran scoped solves (not silent global fallbacks).
    EXPECT_GT(region.flows.stats().verified_solves, 0u);
    EXPECT_GT(region.flows.stats().region_solves, 0u);
}

ClusterSpec
fatTreeSpec()
{
    ClusterSpec spec;
    spec.nodes = 16;
    spec.fabric.kind = FabricKind::FatTree;
    spec.fabric.fat_tree_k = 4;
    return spec;
}

ClusterSpec
spineLeafSpec()
{
    ClusterSpec spec;
    spec.nodes = 8;
    spec.fabric.kind = FabricKind::SpineLeaf;
    spec.fabric.leaves = 4;
    spec.fabric.spines = 2;
    return spec;
}

class RegionSolverFuzz : public testing::TestWithParam<int>
{
};

TEST_P(RegionSolverFuzz, FatTreeBitIdenticalToOracle)
{
    fuzzFabric(fatTreeSpec(),
               static_cast<std::uint64_t>(GetParam()), 160);
}

TEST_P(RegionSolverFuzz, SpineLeafBitIdenticalToOracle)
{
    fuzzFabric(spineLeafSpec(),
               static_cast<std::uint64_t>(GetParam()) + 1000, 160);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionSolverFuzz, testing::Range(1, 7));

/** One simulation + cluster + scheduler built from explicit options. */
struct ImplTwin {
    ImplTwin(const ClusterSpec &spec, const FlowSchedulerOptions &opts)
        : cluster(spec), flows(sim, cluster.topology(), opts)
    {
    }

    Simulation sim;
    Cluster cluster;
    FlowScheduler flows;
    int done = 0;
};

/**
 * Implementation-equivalence fuzz: the completion index, the legacy
 * completion scan, pooled component fills and capacity-storm batching
 * are four implementations of one contract — bit-identical flow rates
 * and completion instants for any op history. Drive all four through
 * one seeded sequence of start / capacity-storm (including full
 * outages, so flows park and unpark) / cancel / cancelAll ops and
 * compare them after every op and at the drain.
 */
void
fuzzImplementationTwins(const ClusterSpec &spec, std::uint64_t seed,
                        int ops)
{
    TaskPool pool(2);
    FlowSchedulerOptions base_opts;  // index on, serial, unbatched
    FlowSchedulerOptions legacy_opts;
    legacy_opts.completion_index = false;
    FlowSchedulerOptions par_opts;
    par_opts.fill_pool = &pool;
    par_opts.parallel_fill_threshold = 2;

    ImplTwin base(spec, base_opts);
    ImplTwin legacy(spec, legacy_opts);
    ImplTwin par(spec, par_opts);
    ImplTwin batched(spec, base_opts);  // storms arrive batched
    ImplTwin *const twins[] = {&base, &legacy, &par, &batched};
    Rng rng(seed);

    std::vector<ResourceId> roce;
    std::vector<Bps> nominal;
    for (const Resource &r : base.cluster.topology().resources()) {
        if (r.cls == LinkClass::Roce) {
            roce.push_back(r.id);
            nominal.push_back(r.nominal_capacity);
        }
    }
    ASSERT_FALSE(roce.empty());

    const int gpus = base.cluster.spec().totalGpus();
    std::vector<FlowId> ids;

    auto compare = [&] {
        for (ImplTwin *tw : {&legacy, &par, &batched}) {
            for (FlowId id : ids) {
                ASSERT_EQ(base.flows.isActive(id),
                          tw->flows.isActive(id))
                    << "activity diverged for flow " << id;
                ASSERT_EQ(base.flows.currentRate(id),
                          tw->flows.currentRate(id))
                    << "rate diverged for flow " << id;
            }
            ASSERT_EQ(base.flows.activeCount(),
                      tw->flows.activeCount());
            ASSERT_EQ(base.flows.stalledCount(),
                      tw->flows.stalledCount());
            ASSERT_EQ(base.done, tw->done);
        }
    };

    const double fractions[] = {0.0, 0.25, 0.5, 1.0};
    SimTime t = 0.0;
    for (int op = 0; op < ops; ++op) {
        t += rng.uniform(1e-4, 5e-3);
        for (ImplTwin *tw : twins)
            tw->sim.runUntil(t);

        const std::uint64_t kind = rng.below(12);
        if (kind < 6) {
            const int a = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(gpus)));
            int b = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(gpus)));
            if (b == a)
                b = (a + 1) % gpus;
            const std::uint64_t key = rng.below(1u << 20);
            const Bytes bytes =
                static_cast<double>(1 + rng.below(64)) * 1e8;
            FlowId first = 0;
            for (ImplTwin *tw : twins) {
                FlowSpec fs;
                fs.route = tw->cluster.router().routeForFlow(
                    tw->cluster.gpuByRank(a), tw->cluster.gpuByRank(b),
                    key);
                fs.bytes = bytes;
                fs.on_complete = [tw] { ++tw->done; };
                const FlowId id = tw->flows.start(std::move(fs));
                if (tw == &base)
                    first = id;
                else
                    ASSERT_EQ(id, first);
            }
            ids.push_back(first);
        } else if (kind < 9) {
            // Capacity storm over a few links; the batched twin gets
            // it as one ScopedBatch (capacity-only batches are
            // state-equivalent), everyone else link by link.
            std::vector<std::pair<ResourceId, Bps>> storm;
            const std::size_t n = 1 + rng.below(4);
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t i = rng.below(roce.size());
                storm.emplace_back(roce[i],
                                   nominal[i] * fractions[rng.below(4)]);
            }
            for (ImplTwin *tw : {&base, &legacy, &par}) {
                for (const auto &[rid, cap] : storm)
                    tw->flows.setCapacity(rid, cap);
            }
            {
                FlowScheduler::ScopedBatch b(batched.flows);
                for (const auto &[rid, cap] : storm)
                    batched.flows.setCapacity(rid, cap);
            }
        } else if (kind == 9 && !ids.empty()) {
            const FlowId id = ids[rng.below(ids.size())];
            Bytes first = 0.0;
            bool first_ok = false;
            for (ImplTwin *tw : twins) {
                Bytes rem = 0.0;
                const bool ok = tw->flows.cancel(id, &rem);
                if (tw == &base) {
                    first = rem;
                    first_ok = ok;
                } else {
                    ASSERT_EQ(ok, first_ok);
                    ASSERT_EQ(rem, first) << "remainder diverged";
                }
            }
        } else if (kind == 10 && op > 0 && op % 37 == 0) {
            // Rare mass abort: empties the index / scan state of all
            // four twins at once.
            std::size_t first = 0;
            for (ImplTwin *tw : twins) {
                const std::size_t n = tw->flows.cancelAll();
                if (tw == &base)
                    first = n;
                else
                    ASSERT_EQ(n, first);
            }
            ids.clear();
        }
        compare();
    }

    for (std::size_t i = 0; i < roce.size(); ++i)
        for (ImplTwin *tw : twins)
            tw->flows.setCapacity(roce[i], nominal[i]);
    compare();
    const SimTime end = base.sim.run();
    for (ImplTwin *tw : {&legacy, &par, &batched})
        ASSERT_EQ(tw->sim.run(), end) << "drain times diverged";
    compare();
    ASSERT_EQ(base.flows.activeCount(), 0u);

    // Each twin really exercised its distinct machinery.
    EXPECT_GT(base.flows.stats().completion_index_updates, 0u);
    EXPECT_EQ(legacy.flows.stats().completion_index_updates, 0u);
    EXPECT_GT(batched.flows.stats().batched_events, 0u);
}

class ImplementationTwinFuzz : public testing::TestWithParam<int>
{
};

TEST_P(ImplementationTwinFuzz, FatTreeAllImplementationsBitIdentical)
{
    fuzzImplementationTwins(
        fatTreeSpec(), static_cast<std::uint64_t>(GetParam()) + 5000,
        140);
}

TEST_P(ImplementationTwinFuzz, SpineLeafAllImplementationsBitIdentical)
{
    fuzzImplementationTwins(
        spineLeafSpec(),
        static_cast<std::uint64_t>(GetParam()) + 6000, 140);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplementationTwinFuzz,
                         testing::Range(1, 6));

} // namespace
} // namespace dstrain
