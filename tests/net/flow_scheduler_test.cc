/**
 * @file
 * Tests for the max-min fair flow scheduler: single-flow timing,
 * fair sharing, per-flow caps, extra resources, and conservation
 * properties under randomized workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "util/rng.hh"
#include "util/task_pool.hh"

namespace dstrain {
namespace {

/** Fixture: a single-node cluster and a scheduler. */
class FlowSchedulerTest : public testing::Test
{
  protected:
    FlowSchedulerTest()
        : cluster_(ClusterSpec{}), flows_(sim_, cluster_.topology())
    {
    }

    Route
    gpuRoute(int a, int b)
    {
        return cluster_.router().route(cluster_.gpuByRank(a),
                                       cluster_.gpuByRank(b));
    }

    Simulation sim_;
    Cluster cluster_;
    FlowScheduler flows_;
};

TEST_F(FlowSchedulerTest, SingleFlowFinishesAtCapRate)
{
    // NVLink pair: 100 GBps * 0.8 efficiency = 80 GBps.
    bool done = false;
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    spec.on_complete = [&] { done = true; };
    flows_.start(std::move(spec));
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, TwoFlowsShareFairly)
{
    int done = 0;
    for (int i = 0; i < 2; ++i) {
        FlowSpec spec;
        spec.route = gpuRoute(0, 1);
        spec.bytes = 40e9;
        spec.on_complete = [&] { ++done; };
        flows_.start(std::move(spec));
    }
    sim_.run();
    EXPECT_EQ(done, 2);
    // 80 GB total over an 80 GBps link shared: 1 second.
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, ShorterFlowFreesCapacity)
{
    // Flow A: 20 GB, flow B: 60 GB on the same 80 GBps link.
    // Shared at 40 each: A done at 0.5 s; B then runs at 80:
    // remaining 40 GB -> finishes at 1.0 s.
    SimTime a_done = 0.0;
    SimTime b_done = 0.0;
    FlowSpec a;
    a.route = gpuRoute(0, 1);
    a.bytes = 20e9;
    a.on_complete = [&] { a_done = sim_.now(); };
    flows_.start(std::move(a));
    FlowSpec b;
    b.route = gpuRoute(0, 1);
    b.bytes = 60e9;
    b.on_complete = [&] { b_done = sim_.now(); };
    flows_.start(std::move(b));
    sim_.run();
    EXPECT_NEAR(a_done, 0.5, 1e-6);
    EXPECT_NEAR(b_done, 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, RateCapHonored)
{
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 10e9;
    spec.rate_cap = 10e9;  // cap below the 80 GBps link
    flows_.start(std::move(spec));
    sim_.run();
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, ZeroByteFlowCompletesAsync)
{
    bool done = false;
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 0.0;
    spec.on_complete = [&] { done = true; };
    flows_.start(std::move(spec));
    EXPECT_FALSE(done);  // not synchronous
    sim_.run();
    EXPECT_TRUE(done);
}

TEST_F(FlowSchedulerTest, IndependentLinksDoNotContend)
{
    // 0->1 and 2->3 use different NVLink pairs.
    FlowSpec a;
    a.route = gpuRoute(0, 1);
    a.bytes = 80e9;
    flows_.start(std::move(a));
    FlowSpec b;
    b.route = gpuRoute(2, 3);
    b.bytes = 80e9;
    flows_.start(std::move(b));
    sim_.run();
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, ExtraResourceConstrains)
{
    // Two flows on disjoint links but sharing one extra resource.
    ResourceId shared = cluster_.topology().addResource(
        LinkClass::IodXbar, 40e9, "test-xbar", 0, -1);
    for (int pair = 0; pair < 2; ++pair) {
        FlowSpec spec;
        spec.route = gpuRoute(pair * 2, pair * 2 + 1);
        spec.bytes = 20e9;
        spec.extra_resources = {shared};
        flows_.start(std::move(spec));
    }
    sim_.run();
    // 40 GB total through a 40 GBps pool: 1 second.
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, RateLogsRecordTraffic)
{
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 8e9;
    flows_.start(std::move(spec));
    sim_.run();
    flows_.finalizeLogs();

    Bytes total = 0.0;
    for (const Resource &r : cluster_.topology().resources())
        if (r.cls == LinkClass::NvLink)
            total += r.log.totalBytes();
    EXPECT_NEAR(total, 8e9, 1e3);
}

TEST_F(FlowSchedulerTest, IsActiveTracksFlowLifetime)
{
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    const FlowId id = flows_.start(std::move(spec));
    EXPECT_TRUE(flows_.isActive(id));
    EXPECT_GT(flows_.currentRate(id), 0.0);
    sim_.run();
    EXPECT_FALSE(flows_.isActive(id));
    EXPECT_DOUBLE_EQ(flows_.currentRate(id), 0.0);
    EXPECT_FALSE(flows_.isActive(id + 1000));  // never issued
}

TEST_F(FlowSchedulerTest, ZeroByteFlowIsNeverActive)
{
    // A degenerate transfer returns a valid id that behaves exactly
    // like a finished flow: inactive, rate 0.
    bool done = false;
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 0.0;
    spec.on_complete = [&] { done = true; };
    const FlowId id = flows_.start(std::move(spec));
    EXPECT_FALSE(flows_.isActive(id));
    EXPECT_DOUBLE_EQ(flows_.currentRate(id), 0.0);
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(flows_.isActive(id));
}

TEST_F(FlowSchedulerTest, UncontendedStartsTakeTheFastPath)
{
    // Flows on disjoint links never contend: after the first full
    // recompute no further ones are needed, and finishes are
    // incremental too.
    FlowSpec a;
    a.route = gpuRoute(0, 1);
    a.bytes = 80e9;
    flows_.start(std::move(a));
    FlowSpec b;
    b.route = gpuRoute(2, 3);
    b.bytes = 40e9;
    flows_.start(std::move(b));
    EXPECT_EQ(flows_.stats().recomputes, 0u);
    EXPECT_EQ(flows_.stats().fast_starts, 2u);
    sim_.run();
    EXPECT_EQ(flows_.stats().recomputes, 0u);
    EXPECT_EQ(flows_.stats().fast_finishes, 2u);
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, ContendedStartForcesRecompute)
{
    // A second flow on the same saturated link must trigger a full
    // water-filling pass and halve both rates.
    FlowSpec a;
    a.route = gpuRoute(0, 1);
    a.bytes = 80e9;
    const FlowId ida = flows_.start(std::move(a));
    FlowSpec b;
    b.route = gpuRoute(0, 1);
    b.bytes = 80e9;
    const FlowId idb = flows_.start(std::move(b));
    EXPECT_EQ(flows_.stats().fast_starts, 1u);  // only the first
    EXPECT_GE(flows_.stats().recomputes, 1u);
    EXPECT_NEAR(flows_.currentRate(ida), 40e9, 1e3);
    EXPECT_NEAR(flows_.currentRate(idb), 40e9, 1e3);
    sim_.run();
}

TEST_F(FlowSchedulerTest, FastAndSlowPathsAgreeOnRates)
{
    // Start a capped flow below the link capacity (fast path), then
    // force a recompute with a contended flow elsewhere on the same
    // link: the capped flow's rate must be unchanged by the full
    // pass, i.e. the incremental admission matched water-filling.
    FlowSpec capped;
    capped.route = gpuRoute(0, 1);
    capped.bytes = 10e9;
    capped.rate_cap = 8e9;
    const FlowId id = flows_.start(std::move(capped));
    EXPECT_EQ(flows_.stats().fast_starts, 1u);
    const Bps fast_rate = flows_.currentRate(id);
    EXPECT_NEAR(fast_rate, 8e9, 1.0);

    FlowSpec big;
    big.route = gpuRoute(0, 1);
    big.bytes = 80e9;
    flows_.start(std::move(big));  // forces full recompute
    EXPECT_GE(flows_.stats().recomputes, 1u);
    // 80 GBps link, fair share 40/40 but capped flow frozen at 8;
    // the big flow takes the rest.
    EXPECT_NEAR(flows_.currentRate(id), 8e9, 1.0);
    sim_.run();
}

/** Property: total bytes logged == total bytes injected. */
class FlowConservationProperty : public testing::TestWithParam<int>
{
};

TEST_P(FlowConservationProperty, BytesConserved)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Simulation sim;
    Cluster cluster(ClusterSpec{});
    FlowScheduler flows(sim, cluster.topology());

    // Random single-hop NVLink flows; each contributes its bytes to
    // exactly one resource.
    Bytes injected = 0.0;
    const int n = 20;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        const int a = static_cast<int>(rng.below(4));
        int b = static_cast<int>(rng.below(4));
        if (b == a)
            b = (a + 1) % 4;
        FlowSpec spec;
        spec.route = cluster.router().route(cluster.gpuByRank(a),
                                            cluster.gpuByRank(b));
        spec.bytes = rng.uniform(1e6, 5e9);
        injected += spec.bytes;
        spec.on_complete = [&completed] { ++completed; };
        flows.start(std::move(spec));
    }
    sim.run();
    flows.finalizeLogs();
    EXPECT_EQ(completed, n);

    Bytes logged = 0.0;
    for (const Resource &r : cluster.topology().resources())
        logged += r.log.totalBytes();
    EXPECT_NEAR(logged, injected, injected * 1e-6 + n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationProperty,
                         testing::Range(1, 13));

/** The distinct resources a route crosses. */
std::vector<ResourceId>
routeResources(const Topology &topo, const Route &route)
{
    std::vector<ResourceId> rids;
    for (HalfLinkId h : route.hops) {
        const ResourceId rid = topo.halfLink(h).resource;
        if (std::find(rids.begin(), rids.end(), rid) == rids.end())
            rids.push_back(rid);
    }
    return rids;
}

TEST_F(FlowSchedulerTest, SetCapacityDegradesActiveFlow)
{
    // 80 GB on the 80 GBps NVLink pair; halve every route resource at
    // t=0.5 s: 40 GB done, the rest at 40 GBps -> finish at 1.5 s.
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    const std::vector<ResourceId> rids =
        routeResources(cluster_.topology(), spec.route);
    bool done = false;
    spec.on_complete = [&] { done = true; };
    flows_.start(std::move(spec));
    sim_.events().schedule(0.5, [&] {
        for (ResourceId rid : rids) {
            const Resource &r = cluster_.topology().resource(rid);
            flows_.setCapacity(rid, r.nominal_capacity * 0.5);
        }
    });
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(sim_.now(), 1.5, 1e-6);
    EXPECT_GE(flows_.stats().capacity_updates, rids.size());
}

TEST_F(FlowSchedulerTest, ZeroCapacityStallsThenResumes)
{
    // A downed link freezes the flow at rate 0 (no completion event);
    // restoring the capacity resumes it with no bytes lost.
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    const std::vector<ResourceId> rids =
        routeResources(cluster_.topology(), spec.route);
    bool done = false;
    spec.on_complete = [&] { done = true; };
    const FlowId id = flows_.start(std::move(spec));
    sim_.events().schedule(0.5, [&] {
        for (ResourceId rid : rids)
            flows_.setCapacity(rid, 0.0);
    });
    sim_.events().schedule(0.75, [&] {
        EXPECT_TRUE(flows_.isActive(id));
        EXPECT_DOUBLE_EQ(flows_.currentRate(id), 0.0);
        EXPECT_FALSE(done);
    });
    sim_.events().schedule(1.0, [&] {
        for (ResourceId rid : rids) {
            const Resource &r = cluster_.topology().resource(rid);
            flows_.setCapacity(rid, r.nominal_capacity);
        }
    });
    sim_.run();
    // 40 GB before the outage, 40 GB after it: 0.5 + 0.5 + 0.5 s.
    EXPECT_TRUE(done);
    EXPECT_NEAR(sim_.now(), 1.5, 1e-6);
}

TEST_F(FlowSchedulerTest, SlackToSlackCapacityChangeIsFast)
{
    // A capped flow leaves the link unsaturated; trimming capacity
    // while it stays unsaturated must not trigger a re-waterfill.
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 10e9;
    spec.rate_cap = 10e9;
    const std::vector<ResourceId> rids =
        routeResources(cluster_.topology(), spec.route);
    flows_.start(std::move(spec));
    sim_.events().schedule(0.1, [&] {
        const std::uint64_t before = flows_.stats().recomputes;
        for (ResourceId rid : rids) {
            const Resource &r = cluster_.topology().resource(rid);
            flows_.setCapacity(rid, r.nominal_capacity * 0.9);
        }
        EXPECT_EQ(flows_.stats().recomputes, before);
        EXPECT_EQ(flows_.stats().fast_capacity_updates, rids.size());
    });
    sim_.run();
    // The cap still binds: unchanged finish time.
    EXPECT_NEAR(sim_.now(), 1.0, 1e-6);
}

TEST_F(FlowSchedulerTest, CancelAllRemovesEveryFlowSilently)
{
    // The hard-failure abort path: every active flow disappears at
    // once, no completion callbacks fire, and the touched resources
    // log a final zero rate so telemetry stays consistent.
    int completions = 0;
    for (int i = 0; i < 3; ++i) {
        FlowSpec spec;
        spec.route = gpuRoute(i, i + 1);
        spec.bytes = 80e9;
        spec.on_complete = [&] { ++completions; };
        flows_.start(std::move(spec));
    }
    sim_.events().schedule(0.2, [&] {
        EXPECT_EQ(flows_.activeCount(), 3u);
        EXPECT_EQ(flows_.cancelAll(), 3u);
        EXPECT_EQ(flows_.activeCount(), 0u);
        EXPECT_EQ(flows_.cancelAll(), 0u);  // idempotent when empty
    });
    sim_.run();
    EXPECT_EQ(completions, 0);
    EXPECT_EQ(flows_.stats().cancels, 3u);
    // The simulation drained: no completion events left dangling.
    EXPECT_NEAR(sim_.now(), 0.2, 1e-9);
}

TEST_F(FlowSchedulerTest, StalledFlowsParkOnTheStalledList)
{
    // A downed link parks its flows: they leave every fill / scan /
    // index structure (observable via stalledCount) until the
    // capacity restore unparks them.
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    const std::vector<ResourceId> rids =
        routeResources(cluster_.topology(), spec.route);
    const FlowId id = flows_.start(std::move(spec));
    EXPECT_EQ(flows_.stalledCount(), 0u);
    sim_.events().schedule(0.5, [&] {
        for (ResourceId rid : rids)
            flows_.setCapacity(rid, 0.0);
        EXPECT_EQ(flows_.stalledCount(), 1u);
        EXPECT_GE(flows_.stats().stalled_parks, 1u);
        EXPECT_TRUE(flows_.isActive(id));
    });
    sim_.events().schedule(1.0, [&] {
        for (ResourceId rid : rids) {
            const Resource &r = cluster_.topology().resource(rid);
            flows_.setCapacity(rid, r.nominal_capacity);
        }
        EXPECT_EQ(flows_.stalledCount(), 0u);
        EXPECT_GT(flows_.currentRate(id), 0.0);
    });
    sim_.run();
    EXPECT_NEAR(sim_.now(), 1.5, 1e-6);
}

TEST_F(FlowSchedulerTest, StallResumeKeepsCompletionOrder)
{
    // Three equal flows on one link finish at the same instant; their
    // callbacks must fire in ascending start order — and a stall /
    // resume cycle in the middle (which reinserts all three into the
    // completion index from the unpark path) must not perturb that
    // order.
    std::vector<int> order;
    std::vector<ResourceId> rids;
    for (int i = 0; i < 3; ++i) {
        FlowSpec spec;
        spec.route = gpuRoute(0, 1);
        spec.bytes = 30e9;
        if (i == 0)
            rids = routeResources(cluster_.topology(), spec.route);
        spec.on_complete = [&order, i] { order.push_back(i); };
        flows_.start(std::move(spec));
    }
    sim_.events().schedule(0.3, [&] {
        for (ResourceId rid : rids)
            flows_.setCapacity(rid, 0.0);
        EXPECT_EQ(flows_.stalledCount(), 3u);
    });
    sim_.events().schedule(0.8, [&] {
        for (ResourceId rid : rids) {
            const Resource &r = cluster_.topology().resource(rid);
            flows_.setCapacity(rid, r.nominal_capacity);
        }
    });
    sim_.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
    // 90 GB over 80 GBps plus the 0.5 s outage.
    EXPECT_NEAR(sim_.now(), 90.0 / 80.0 + 0.5, 1e-6);
    EXPECT_GE(flows_.stats().stalled_parks, 3u);
}

/** A self-contained sim + cluster + scheduler built from options. */
struct OptsTwin {
    explicit OptsTwin(const FlowSchedulerOptions &opts)
        : cluster(ClusterSpec{}), flows(sim, cluster.topology(), opts)
    {
    }

    Route
    gpuRoute(int a, int b)
    {
        return cluster.router().route(cluster.gpuByRank(a),
                                      cluster.gpuByRank(b));
    }

    Simulation sim;
    Cluster cluster;
    FlowScheduler flows;
};

TEST(FlowSchedulerBatchTest, CapacityStormMatchesUnbatchedCalls)
{
    // A capacity-only batch is state-equivalent to the per-link call
    // sequence: rates after the storm and the final drain time must
    // match bitwise, with the batch solving once instead of per link.
    OptsTwin plain{FlowSchedulerOptions{}};
    OptsTwin batched{FlowSchedulerOptions{}};

    std::vector<FlowId> ids;
    std::vector<ResourceId> rids;
    for (OptsTwin *tw : {&plain, &batched}) {
        for (int pair = 0; pair < 2; ++pair) {
            for (int dup = 0; dup < 2; ++dup) {
                FlowSpec spec;
                spec.route = tw->gpuRoute(pair * 2, pair * 2 + 1);
                if (tw == &plain && dup == 0)
                    for (ResourceId rid : routeResources(
                             tw->cluster.topology(), spec.route))
                        rids.push_back(rid);
                spec.bytes = 40e9;
                const FlowId id = tw->flows.start(std::move(spec));
                if (tw == &plain)
                    ids.push_back(id);
            }
        }
    }

    auto storm = [&](OptsTwin &tw, double factor) {
        for (ResourceId rid : rids) {
            const Resource &r = tw.cluster.topology().resource(rid);
            tw.flows.setCapacity(rid, r.nominal_capacity * factor);
        }
    };
    plain.sim.events().schedule(0.25, [&] { storm(plain, 0.5); });
    batched.sim.events().schedule(0.25, [&] {
        FlowScheduler::ScopedBatch batch(batched.flows);
        storm(batched, 0.5);
    });
    plain.sim.runUntil(0.5);
    batched.sim.runUntil(0.5);
    for (FlowId id : ids)
        ASSERT_EQ(plain.flows.currentRate(id),
                  batched.flows.currentRate(id))
            << "rate diverged for flow " << id;
    EXPECT_GT(batched.flows.stats().batched_events, 0u);
    EXPECT_LT(batched.flows.stats().recomputes +
                  batched.flows.stats().region_solves,
              plain.flows.stats().recomputes +
                  plain.flows.stats().region_solves);
    EXPECT_EQ(plain.sim.run(), batched.sim.run());
}

TEST(FlowSchedulerIndexTest, LegacyScanIsBitIdenticalAndCounted)
{
    // completion_index = false restores the legacy full scan; stored
    // finish times are the same values, so every completion instant
    // must match the indexed scheduler bitwise.
    FlowSchedulerOptions legacy_opts;
    legacy_opts.completion_index = false;
    OptsTwin indexed{FlowSchedulerOptions{}};
    OptsTwin legacy{legacy_opts};

    std::vector<SimTime> indexed_done;
    std::vector<SimTime> legacy_done;
    for (OptsTwin *tw : {&indexed, &legacy}) {
        std::vector<SimTime> &done =
            tw == &indexed ? indexed_done : legacy_done;
        for (int i = 0; i < 6; ++i) {
            FlowSpec spec;
            spec.route = tw->gpuRoute(i % 2 == 0 ? 0 : 2,
                                      i % 2 == 0 ? 1 : 3);
            spec.bytes = 10e9 * (i + 1);
            spec.on_complete = [&done, tw] {
                done.push_back(tw->sim.now());
            };
            tw->flows.start(std::move(spec));
        }
    }
    EXPECT_EQ(indexed.sim.run(), legacy.sim.run());
    ASSERT_EQ(indexed_done.size(), legacy_done.size());
    for (std::size_t i = 0; i < indexed_done.size(); ++i)
        EXPECT_EQ(indexed_done[i], legacy_done[i]);

    // The knob really switched implementations.
    EXPECT_GT(indexed.flows.stats().completion_index_updates, 0u);
    EXPECT_GT(indexed.flows.stats().completion_scans_avoided, 0u);
    EXPECT_EQ(legacy.flows.stats().completion_index_updates, 0u);
    EXPECT_EQ(legacy.flows.stats().completion_scans_avoided, 0u);
}

TEST(FlowSchedulerParallelTest, PooledFillsMatchSerialBitwise)
{
    // Batched starts force one solve spanning two components; with a
    // pool and a low threshold the components fill concurrently, and
    // the committed rates must equal the serial twin's bitwise.
    TaskPool pool(2);
    FlowSchedulerOptions par_opts;
    par_opts.fill_pool = &pool;
    par_opts.parallel_fill_threshold = 2;
    OptsTwin serial{FlowSchedulerOptions{}};
    OptsTwin par{par_opts};

    std::vector<FlowId> ids;
    for (OptsTwin *tw : {&serial, &par}) {
        FlowScheduler::ScopedBatch batch(tw->flows);
        for (int pair = 0; pair < 2; ++pair) {
            for (int dup = 0; dup < 2; ++dup) {
                FlowSpec spec;
                spec.route = tw->gpuRoute(pair * 2, pair * 2 + 1);
                spec.bytes = 20e9 + 10e9 * dup;
                const FlowId id = tw->flows.start(std::move(spec));
                if (tw == &serial)
                    ids.push_back(id);
            }
        }
    }
    for (FlowId id : ids)
        ASSERT_EQ(serial.flows.currentRate(id),
                  par.flows.currentRate(id))
            << "rate diverged for flow " << id;
    EXPECT_GT(par.flows.stats().parallel_component_solves, 0u);
    EXPECT_EQ(serial.flows.stats().parallel_component_solves, 0u);
    EXPECT_EQ(serial.sim.run(), par.sim.run());
}

TEST_F(FlowSchedulerTest, CancelReturnsRemainingBytes)
{
    FlowSpec spec;
    spec.route = gpuRoute(0, 1);
    spec.bytes = 80e9;
    bool completed = false;
    spec.on_complete = [&] { completed = true; };
    const FlowId id = flows_.start(std::move(spec));
    sim_.events().schedule(0.5, [&] {
        Bytes remaining = 0.0;
        EXPECT_TRUE(flows_.cancel(id, &remaining));
        EXPECT_NEAR(remaining, 40e9, 1e3);
        EXPECT_EQ(flows_.activeCount(), 0u);
        EXPECT_FALSE(flows_.cancel(id));  // already gone
    });
    sim_.run();
    EXPECT_FALSE(completed);
    EXPECT_EQ(flows_.stats().cancels, 1u);
}

} // namespace
} // namespace dstrain
