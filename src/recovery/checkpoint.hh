/**
 * @file
 * Checkpoint policy and checkpoint sizing.
 *
 * A checkpoint persists the strategy's *persistent* training state —
 * fp16 parameters plus the fp32 optimizer partition — to the node-local
 * NVMe volumes, through the same simulated drives and PCIe lanes the
 * paper characterizes. What each rank writes follows the ZeRO
 * partitioning arithmetic (model/memory.hh): DDP writes one full copy
 * from rank 0, Megatron one copy sharded across the first data-parallel
 * replica's model-parallel ranks, ZeRO-1/2 shard the optimizer across
 * all ranks but keep parameters per model-parallel group, and ZeRO-3
 * shards everything. See DESIGN.md "Recovery model".
 */

#ifndef DSTRAIN_RECOVERY_CHECKPOINT_HH
#define DSTRAIN_RECOVERY_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/parallelism.hh"
#include "util/config_error.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * When to write checkpoints. At most one of the two triggers may be
 * set; both zero (the default) disables checkpointing entirely and is
 * guaranteed not to perturb a run in any way.
 */
struct CheckpointPolicy {
    /** Write when at least this much sim time passed since the last
     * committed checkpoint (0 = off). Evaluated at iteration
     * boundaries, so the effective period is rounded up to whole
     * iterations. */
    SimTime interval = 0.0;

    /** Write every this many iterations (0 = off). */
    int every_iterations = 0;

    /** Is any trigger configured? */
    bool enabled() const
    {
        return interval > 0.0 || every_iterations > 0;
    }

    /** Structural checks; empty result = valid. */
    std::vector<ConfigError> validate() const;

    /** Round-trippable spec form: "2.5s", "3i", or "off". */
    std::string str() const;
};

/**
 * Parse a CLI checkpoint spec: "<seconds>" or "<seconds>s" for an
 * interval policy (e.g. "2.5" or "2.5s"), "<k>i" for an
 * every-k-iterations policy (e.g. "3i"), or "off". Problems are
 * appended to @p errors; the returned policy is disabled on error.
 */
CheckpointPolicy parseCheckpointSpec(const std::string &spec,
                                     std::vector<ConfigError> *errors);

/**
 * Bytes rank @p rank persists per checkpoint: its share of the fp16
 * parameters plus the fp32 optimizer state (2 + 12 bytes/param,
 * partitioned per the strategy as described in the file header).
 * @p total_gpus is the current world size (elastic recovery shrinks
 * it). Ranks holding no persistent shard return 0.
 */
Bytes checkpointShardBytes(const StrategyConfig &strategy,
                           std::int64_t params, int total_gpus,
                           int rank);

/** Aggregate checkpoint bytes across all @p total_gpus ranks. */
Bytes checkpointTotalBytes(const StrategyConfig &strategy,
                           std::int64_t params, int total_gpus);

/**
 * The Young/Daly first-order optimal checkpoint interval
 * sqrt(2 * delta * MTBF) for a per-checkpoint cost @p delta and mean
 * time between failures @p mtbf (both > 0).
 */
SimTime youngDalyInterval(SimTime delta, SimTime mtbf);

} // namespace dstrain

#endif // DSTRAIN_RECOVERY_CHECKPOINT_HH
