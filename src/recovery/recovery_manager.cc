/**
 * @file
 * Implementation of checkpoint scheduling and hard-failure recovery.
 */

#include "recovery/recovery_manager.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "hw/node_builder.hh"
#include "net/transfer_manager.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

const char *
recoveryPolicyName(RecoveryPolicyKind kind)
{
    switch (kind) {
      case RecoveryPolicyKind::Restart: return "restart";
      case RecoveryPolicyKind::Elastic: return "elastic";
    }
    panic("unknown RecoveryPolicyKind %d", static_cast<int>(kind));
}

bool
parseRecoveryPolicy(const std::string &name, RecoveryPolicyKind *out)
{
    DSTRAIN_ASSERT(out != nullptr, "parseRecoveryPolicy needs an output");
    if (name == "restart") {
        *out = RecoveryPolicyKind::Restart;
        return true;
    }
    if (name == "elastic") {
        *out = RecoveryPolicyKind::Elastic;
        return true;
    }
    return false;
}

std::vector<ConfigError>
RecoveryConfig::validate(const FaultPlan &faults, int nodes) const
{
    std::vector<ConfigError> errors = checkpoint.validate();
    if (detect_delay < 0.0)
        errors.push_back({"recovery.detect_delay", "must be >= 0"});
    if (rendezvous < 0.0)
        errors.push_back({"recovery.rendezvous", "must be >= 0"});
    if (replacement_delay < 0.0)
        errors.push_back({"recovery.replacement_delay", "must be >= 0"});

    bool any_hard = false;
    bool any_gpudown = false;
    bool any_nodedown = false;
    for (const FaultEvent &ev : faults.events) {
        if (!isHardFault(ev.kind))
            continue;
        any_hard = true;
        any_gpudown |= ev.kind == FaultKind::GpuDown;
        any_nodedown |= ev.kind == FaultKind::NodeDown;
    }
    if (any_nodedown && nodes < 2) {
        errors.push_back({"faults",
                          "nodedown recovery needs >= 2 nodes (the "
                          "checkpoint mirror must survive)"});
    }
    if (policy == RecoveryPolicyKind::Elastic && any_hard) {
        if (!checkpoint.enabled()) {
            errors.push_back({"recovery.policy",
                              "elastic recovery requires a checkpoint "
                              "policy (state must be re-shardable)"});
        }
        if (any_gpudown) {
            errors.push_back({"recovery.policy",
                              "elastic recovery handles nodedown faults "
                              "only (use restart for gpudown)"});
        }
    }
    return errors;
}

RecoveryManager::RecoveryManager(Simulation &sim, Cluster &cluster,
                                 TransferManager &tm, Executor &executor,
                                 RecoveryConfig cfg)
    : sim_(sim), cluster_(cluster), tm_(tm), executor_(executor),
      cfg_(std::move(cfg))
{
}

void
RecoveryManager::attachInjector(FaultInjector &injector)
{
    injector_ = &injector;
    injector.setHardFaultHandler(
        [this](std::size_t i) { onHardFault(i); });
}

void
RecoveryManager::arm(const StrategyConfig &strategy, std::int64_t params)
{
    DSTRAIN_ASSERT(!armed_, "RecoveryManager::arm() called twice");
    armed_ = true;
    strategy_ = strategy;
    params_ = params;
    world_ = cluster_.spec().totalGpus();
    node_alive_.assign(static_cast<std::size_t>(cluster_.nodeCount()),
                       true);
    executor_.setIterationHook(
        [this](int iter, SimTime now) { return onBoundary(iter, now); });
}

Bytes
RecoveryManager::shardBytes(int rank) const
{
    return checkpointShardBytes(strategy_, params_, world_, rank);
}

int
RecoveryManager::nextAliveNode(int node) const
{
    const int n = cluster_.nodeCount();
    for (int step = 1; step < n; ++step) {
        const int candidate = (node + step) % n;
        if (node_alive_[static_cast<std::size_t>(candidate)])
            return candidate;
    }
    panic("no surviving node to recover from (all %d nodes dead)", n);
}

bool
RecoveryManager::onBoundary(int iter, SimTime now)
{
    DSTRAIN_ASSERT(!in_recovery_ && !ckpt_writing_,
                   "iteration boundary fired mid-%s",
                   in_recovery_ ? "recovery" : "checkpoint");
    if (!cfg_.checkpoint.enabled())
        return false;
    const bool due =
        cfg_.checkpoint.every_iterations > 0
            ? iter % cfg_.checkpoint.every_iterations == 0
            : now - last_ckpt_time_ >= cfg_.checkpoint.interval;
    if (!due)
        return false;

    ckpt_writing_ = true;
    ckpt_hold_begin_ = now;
    ckpt_remaining_ = 0;
    for (int r = 0; r < world_; ++r) {
        const Bytes shard = shardBytes(r);
        if (shard <= 0.0)
            continue;
        ++ckpt_remaining_;
        executor_.rankStorageIo(
            r, true, shard, csprintf("ckpt.i%d.r%d", iter, r),
            [this, iter] { onShardWritten(iter); });
    }
    DSTRAIN_ASSERT(ckpt_remaining_ > 0,
                   "checkpoint of %lld params wrote nothing",
                   static_cast<long long>(params_));
    return true;  // hold the run until the writes land
}

void
RecoveryManager::onShardWritten(int iter)
{
    DSTRAIN_ASSERT(ckpt_writing_ && ckpt_remaining_ > 0,
                   "stray checkpoint-shard completion");
    if (--ckpt_remaining_ > 0)
        return;

    const SimTime now = sim_.now();
    ckpt_writing_ = false;
    committed_iter_ = iter;
    have_checkpoint_ = true;
    committed_resume_time_ = now;
    last_ckpt_time_ = now;
    ++checkpoints_;
    checkpoint_bytes_ += checkpointTotalBytes(strategy_, params_, world_);
    ckpt_windows_.push_back({ckpt_hold_begin_, now});
    executor_.resumeRun();
}

void
RecoveryManager::onHardFault(std::size_t event_index)
{
    DSTRAIN_ASSERT(armed_ && injector_ != nullptr,
                   "hard fault before RecoveryManager::arm()");
    const FaultEvent &ev = injector_->plan().events[event_index];
    if (in_recovery_) {
        fatal("hard fault '%s' at t=%.3fs struck while still recovering "
              "from an earlier failure",
              faultKindName(ev.kind), sim_.now());
    }

    const SimTime fault_time = sim_.now();
    const int resume_iter = have_checkpoint_ ? committed_iter_ : 0;
    lost_iterations_ += executor_.completedIterations() - resume_iter;
    lost_windows_.push_back({committed_resume_time_, fault_time});

    in_recovery_ = true;
    ckpt_writing_ = false;
    ckpt_remaining_ = 0;
    executor_.abortRun(resume_iter);

    const bool elastic = cfg_.policy == RecoveryPolicyKind::Elastic &&
                         ev.kind == FaultKind::NodeDown;
    inform("recovery: %s at t=%.3fs -> %s, rewinding to iteration %d%s",
           faultKindName(ev.kind), fault_time,
           elastic ? "elastic" : "restart", resume_iter,
           have_checkpoint_ ? "" : " (no checkpoint: replay from start)");
    if (elastic)
        beginElastic(event_index, fault_time);
    else
        beginRestart(event_index, fault_time);
}

void
RecoveryManager::beginRestart(std::size_t event_index, SimTime fault_time)
{
    const int dead_node = injector_->resolved(event_index).node;
    sim_.events().scheduleAfter(
        cfg_.detect_delay + cfg_.replacement_delay,
        [this, event_index, dead_node, fault_time] {
            // Replacement hardware joins: the dead links come back.
            injector_->restoreHard(event_index);
            sim_.events().scheduleAfter(
                cfg_.rendezvous, [this, dead_node, fault_time] {
                    issueRestoreReads(dead_node, [this, fault_time] {
                        finishRecovery(fault_time);
                    });
                });
        });
}

void
RecoveryManager::issueRestoreReads(int dead_node,
                                   std::function<void()> done)
{
    if (!have_checkpoint_) {
        // Nothing ever committed: re-initialize and replay from
        // iteration 0 — no restore IO.
        done();
        return;
    }
    auto remaining = std::make_shared<int>(1);
    auto shared_done = std::make_shared<std::function<void()>>(
        std::move(done));
    auto part = [remaining, shared_done] {
        if (--*remaining == 0)
            (*shared_done)();
    };
    for (int r = 0; r < world_; ++r) {
        const Bytes shard = shardBytes(r);
        if (shard <= 0.0)
            continue;
        const int phys = physicalRank(r);
        const int node = cluster_.nodeOfRank(phys);
        ++*remaining;
        if (node != dead_node) {
            executor_.rankStorageIo(r, false, shard,
                                    csprintf("restore.r%d", r), part);
            continue;
        }
        // The replacement node's NVMe is blank: read the shard from
        // the next node's checkpoint mirror and ship it over the
        // fabric. The read's join token passes to the ship.
        const int local = cluster_.localOfRank(phys);
        const int socket = gpuSocket(cluster_.nodeSpec(node), local);
        const int volume = executor_.placement().volumeForRank(local);
        const int mirror = nextAliveNode(dead_node);
        executor_.nodeStorageIo(
            mirror, socket, volume, false, shard,
            csprintf("restore.mirror.r%d", r),
            [this, mirror, dead_node, socket, shard, r, part] {
                const std::size_t s = static_cast<std::size_t>(socket);
                TransferOptions opts;
                opts.tag = csprintf("restore.ship.r%d", r);
                tm_.start(cluster_.node(mirror).drams[s],
                          cluster_.node(dead_node).drams[s], shard, part,
                          std::move(opts));
            });
    }
    part();  // release the issuing guard
}

void
RecoveryManager::beginElastic(std::size_t event_index, SimTime fault_time)
{
    const int dead_node = injector_->resolved(event_index).node;
    DSTRAIN_ASSERT(dead_node >= 0, "elastic recovery needs a nodedown");
    node_alive_[static_cast<std::size_t>(dead_node)] = false;

    if (comm_shrink_) {
        // Tell the collective engine which global ranks died so any
        // group formed from here on is reformed over the survivors.
        std::vector<int> dead_ranks;
        for (int r = 0; r < cluster_.spec().totalGpus(); ++r)
            if (cluster_.nodeOfRank(r) == dead_node)
                dead_ranks.push_back(r);
        comm_shrink_(dead_ranks);
    }

    sim_.events().scheduleAfter(
        cfg_.detect_delay + cfg_.rendezvous,
        [this, dead_node, fault_time] {
            auto remaining = std::make_shared<int>(1);
            auto finish = [this, dead_node, fault_time] {
                DSTRAIN_ASSERT(replan_ != nullptr,
                               "elastic recovery needs a replanner");
                std::vector<int> rank_map;
                std::vector<int> node_map;
                const IterationPlan *plan =
                    replan_(dead_node, &rank_map, &node_map);
                DSTRAIN_ASSERT(plan != nullptr, "replanner returned null");
                rank_map_ = rank_map;
                executor_.setPlanOverride(plan, std::move(rank_map),
                                          std::move(node_map));
                world_ -= cluster_.gpusOfNode(dead_node);
                DSTRAIN_ASSERT(world_ > 0, "no survivors to continue on");
                finishRecovery(fault_time);
            };
            auto part = [remaining,
                         finish = std::make_shared<
                             std::function<void()>>(finish)] {
                if (--*remaining == 0)
                    (*finish)();
            };

            int survivors = 0;
            for (const bool alive : node_alive_)
                survivors += alive ? 1 : 0;
            // Survivors reload their own shards from local NVMe; the
            // dead node's mirrored shards are read by its neighbor
            // and re-scattered equally across the survivors.
            for (int r = 0; r < world_; ++r) {
                const Bytes shard = shardBytes(r);
                if (shard <= 0.0)
                    continue;
                const int phys = physicalRank(r);
                const int node = cluster_.nodeOfRank(phys);
                ++*remaining;
                if (node != dead_node) {
                    executor_.rankStorageIo(
                        r, false, shard, csprintf("reshard.r%d", r),
                        part);
                    continue;
                }
                const int local = cluster_.localOfRank(phys);
                const int socket =
                    gpuSocket(cluster_.nodeSpec(node), local);
                const int volume =
                    executor_.placement().volumeForRank(local);
                const int mirror = nextAliveNode(dead_node);
                executor_.nodeStorageIo(
                    mirror, socket, volume, false, shard,
                    csprintf("reshard.mirror.r%d", r),
                    [this, mirror, socket, shard, r, survivors,
                     remaining, part] {
                        // Scatter equal shares to the other survivors;
                        // the mirror keeps its own share in DRAM.
                        const std::size_t s =
                            static_cast<std::size_t>(socket);
                        const Bytes share = shard / survivors;
                        const int n = cluster_.nodeCount();
                        for (int t = 0; t < n; ++t) {
                            if (t == mirror ||
                                !node_alive_[static_cast<std::size_t>(t)])
                                continue;
                            ++*remaining;
                            TransferOptions opts;
                            opts.tag =
                                csprintf("reshard.ship.r%d.n%d", r, t);
                            tm_.start(cluster_.node(mirror).drams[s],
                                      cluster_.node(t).drams[s], share,
                                      part, std::move(opts));
                        }
                        part();  // release the read's join token
                    });
            }
            part();  // release the issuing guard
        });
}

void
RecoveryManager::finishRecovery(SimTime fault_time)
{
    const SimTime now = sim_.now();
    DSTRAIN_ASSERT(in_recovery_, "finishRecovery outside a recovery");
    recovery_windows_.push_back({fault_time, now});
    ++recoveries_;
    time_to_recover_ = now - fault_time;
    committed_resume_time_ = now;
    // Rewound state equals the checkpoint: restart the interval clock
    // so the next write isn't due the instant the run resumes.
    last_ckpt_time_ = now;
    in_recovery_ = false;
    inform("recovery: resumed at t=%.3fs (down %.3fs)", now,
           time_to_recover_);
    executor_.resumeRun();
}

RecoveryReport
RecoveryManager::buildReport(const IterationResult &ex) const
{
    RecoveryReport r;
    r.active = true;
    r.checkpoints = checkpoints_;
    r.checkpoint_bytes = checkpoint_bytes_;
    r.recoveries = recoveries_;
    r.lost_iterations = lost_iterations_;
    r.time_to_recover = time_to_recover_;

    const SimTime begin = ex.measured_begin;
    const SimTime end = ex.measured_end;
    const SimTime wall = end - begin;
    const auto clipped = [&](const std::vector<Window> &windows) {
        SimTime total = 0.0;
        for (const Window &w : windows) {
            total += std::max(0.0, std::min(w.end, end) -
                                       std::max(w.begin, begin));
        }
        return total;
    };
    r.checkpoint_time = clipped(ckpt_windows_);
    r.recovery_time = clipped(recovery_windows_);
    r.lost_time = clipped(lost_windows_);

    if (wall <= 0.0)
        return r;

    // Committed FLOPs: each iteration counts once, at the completion
    // that survived to the end of the run.
    double flops = 0.0;
    DSTRAIN_ASSERT(ex.iteration_flops.size() == ex.iteration_ends.size(),
                   "iteration_flops out of sync with iteration_ends");
    for (std::size_t i = 0; i < ex.iteration_ends.size(); ++i) {
        const SimTime t = ex.iteration_ends[i];
        if (t > begin && t <= end)
            flops += ex.iteration_flops[i];
    }
    r.goodput_tflops = flops / wall / 1e12;
    const SimTime productive =
        wall - r.checkpoint_time - r.recovery_time - r.lost_time;
    // productive <= wall, so goodput <= throughput by construction;
    // when overhead consumed the whole window they degenerate equal.
    r.throughput_tflops =
        productive > 0.0 ? flops / productive / 1e12 : r.goodput_tflops;
    r.checkpoint_overhead = r.checkpoint_time / wall;
    return r;
}

} // namespace dstrain
