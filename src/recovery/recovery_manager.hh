/**
 * @file
 * RecoveryManager: checkpoint scheduling and hard-failure recovery.
 *
 * The manager sits between the fault injector and the executor. At
 * every iteration boundary it decides (per the CheckpointPolicy)
 * whether to hold the run and write a checkpoint — real simulated IO
 * through the executor's storage volumes, competing for the NVMe
 * drives and PCIe lanes the paper characterizes. When the injector
 * applies a hard fault (gpudown/nodedown), the manager aborts the
 * in-flight iteration, rewinds to the last committed checkpoint, and
 * drives one of two recovery policies:
 *
 *  - `restart`: failure detection -> replacement hardware joins (the
 *    dead links come back) -> rendezvous -> every rank reads its
 *    checkpoint shard; shards that lived on a dead node are read from
 *    the next surviving node's mirror and shipped to the replacement
 *    over the fabric -> the lost iterations replay.
 *  - `elastic`: failure detection -> rendezvous among survivors (the
 *    dead node's links stay down) -> survivors read their shards, the
 *    dead node's mirrored bytes are read by its neighbor and
 *    re-scattered across the survivors -> the run continues on a
 *    re-planned, degraded world.
 *
 * Checkpoint mirroring to the next node is assumed (not simulated as
 * extra write traffic); DESIGN.md "Recovery model" discusses the
 * assumption. All scheduling is plain DES events, so checkpointed and
 * recovered runs stay bit-reproducible.
 */

#ifndef DSTRAIN_RECOVERY_RECOVERY_MANAGER_HH
#define DSTRAIN_RECOVERY_RECOVERY_MANAGER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/executor.hh"
#include "fault/fault_injector.hh"
#include "recovery/checkpoint.hh"

namespace dstrain {

/** How a run survives a hard failure. */
enum class RecoveryPolicyKind {
    Restart,  ///< replace the hardware, restore, replay lost work
    Elastic,  ///< re-shard across survivors, continue degraded
};

/** Spec spelling of a policy ("restart", "elastic"). */
const char *recoveryPolicyName(RecoveryPolicyKind kind);

/** Parse a policy spelling; returns false when unknown. */
bool parseRecoveryPolicy(const std::string &name,
                         RecoveryPolicyKind *out);

/** Checkpoint/recovery configuration of one experiment. */
struct RecoveryConfig {
    RecoveryPolicyKind policy = RecoveryPolicyKind::Restart;

    CheckpointPolicy checkpoint;

    /** Time to detect a hard failure (heartbeat timeout). */
    SimTime detect_delay = 5e-3;

    /** Re-rendezvous / communicator re-init time after a failure. */
    SimTime rendezvous = 30e-3;

    /** Restart only: time for replacement hardware to join. */
    SimTime replacement_delay = 0.5;

    /** Anything configured beyond the defaults' no-op? */
    bool enabled() const { return checkpoint.enabled(); }

    /**
     * Structural checks against the fault plan and cluster shape;
     * empty result = valid. Elastic recovery requires a checkpoint
     * policy, nodedown-only hard faults and >= 2 nodes; nodedown
     * always requires >= 2 nodes (the checkpoint mirror must survive).
     */
    std::vector<ConfigError> validate(const FaultPlan &faults,
                                      int nodes) const;
};

/** Goodput/overhead accounting of one recovered run. */
struct RecoveryReport {
    /** Was a RecoveryManager active? (Gates report rendering.) */
    bool active = false;

    int checkpoints = 0;          ///< committed checkpoint writes
    Bytes checkpoint_bytes = 0.0; ///< total bytes persisted
    SimTime checkpoint_time = 0.0;///< run time spent holding for writes
    int recoveries = 0;           ///< hard faults survived
    SimTime recovery_time = 0.0;  ///< fault -> resume, summed
    SimTime lost_time = 0.0;      ///< discarded (replayed) work time
    int lost_iterations = 0;      ///< completed iterations discarded
    SimTime time_to_recover = 0.0;///< last fault -> resume

    /**
     * Committed-work rate over the wall-clock measurement window
     * (TFLOP/s). Counts each iteration once, at its final (committed)
     * completion; always <= throughput_tflops.
     */
    double goodput_tflops = 0.0;

    /** The same committed FLOPs over productive time only (wall minus
     * checkpoint holds, recovery and lost work). */
    double throughput_tflops = 0.0;

    /** Fraction of the measurement window spent in checkpoint holds. */
    double checkpoint_overhead = 0.0;
};

/**
 * Drives checkpoints and hard-failure recovery for one run. Construct
 * after the executor, arm() before running.
 */
class RecoveryManager
{
  public:
    /**
     * Elastic re-planning callback: build a degraded iteration plan
     * after physical node @p dead_node died, filling @p rank_map /
     * @p node_map with the plan-logical -> physical-survivor mapping.
     * The returned plan must stay alive for the rest of the run.
     */
    using ReplanFn = std::function<const IterationPlan *(
        int dead_node, std::vector<int> *rank_map,
        std::vector<int> *node_map)>;

    /** All references must outlive the manager. */
    RecoveryManager(Simulation &sim, Cluster &cluster,
                    TransferManager &tm, Executor &executor,
                    RecoveryConfig cfg);

    RecoveryManager(const RecoveryManager &) = delete;
    RecoveryManager &operator=(const RecoveryManager &) = delete;

    /** Install the elastic re-planner (required for Elastic policy). */
    void setReplanner(ReplanFn fn) { replan_ = std::move(fn); }

    /**
     * Hook fired when elastic recovery drops a node, with the dead
     * node's global GPU ranks. The experiment wires this to
     * CollectiveEngine::markRanksDead so every subsequent communicator
     * group reforms over the survivors (the elastic shrink).
     */
    void setCommShrinkHook(
        std::function<void(const std::vector<int> &)> hook)
    {
        comm_shrink_ = std::move(hook);
    }

    /**
     * Hook this manager up as @p injector's hard-fault sink. Call
     * before the injector arms; optional when the plan has no hard
     * faults.
     */
    void attachInjector(FaultInjector &injector);

    /**
     * Resolve checkpoint sizing for @p strategy / @p params and
     * install the executor's iteration hook. Call exactly once,
     * before Executor::run().
     */
    void arm(const StrategyConfig &strategy, std::int64_t params);

    /** Accounting over the run's measurement window. */
    RecoveryReport buildReport(const IterationResult &ex) const;

    /** The configuration in use. */
    const RecoveryConfig &config() const { return cfg_; }

    /** Bytes one rank persists per checkpoint in the current world. */
    Bytes shardBytes(int rank) const;

  private:
    /** A [begin, end) span of run time, clipped at report time. */
    struct Window {
        SimTime begin = 0.0;
        SimTime end = 0.0;
    };

    /** Executor iteration hook: returns true to hold for a write. */
    bool onBoundary(int iter, SimTime now);

    /** Injector hard-fault sink. */
    void onHardFault(std::size_t event_index);

    /** One checkpoint shard IO landed. */
    void onShardWritten(int iter);

    /** Restart-policy sequence after the abort. */
    void beginRestart(std::size_t event_index, SimTime fault_time);

    /** Elastic-policy sequence after the abort. */
    void beginElastic(std::size_t event_index, SimTime fault_time);

    /** Issue the checkpoint-read IO fan-out; @p done joins it. */
    void issueRestoreReads(int dead_node, std::function<void()> done);

    /** Recovery finished: record windows and release the run. */
    void finishRecovery(SimTime fault_time);

    /** The next surviving node after @p node (wrapping). */
    int nextAliveNode(int node) const;

    /** Plan-logical rank -> physical rank (mirror of the executor's
     * elastic rank map; identity before any re-plan). */
    int physicalRank(int plan_rank) const
    {
        return rank_map_.empty()
                   ? plan_rank
                   : rank_map_[static_cast<std::size_t>(plan_rank)];
    }

    Simulation &sim_;
    Cluster &cluster_;
    TransferManager &tm_;
    Executor &executor_;
    FaultInjector *injector_ = nullptr;
    RecoveryConfig cfg_;
    ReplanFn replan_;
    /** Elastic shrink sink (the collective engine's dead-rank marks). */
    std::function<void(const std::vector<int> &)> comm_shrink_;

    // --- checkpoint sizing (arm()) ---------------------------------------
    StrategyConfig strategy_;
    std::int64_t params_ = 0;
    int world_ = 0;  ///< current rank count (elastic shrinks it)
    bool armed_ = false;

    // --- run bookkeeping --------------------------------------------------
    int committed_iter_ = 0;       ///< iteration a restore resumes at
    bool have_checkpoint_ = false; ///< any committed checkpoint yet?
    SimTime committed_resume_time_ = 0.0;  ///< last commit/resume instant
    SimTime last_ckpt_time_ = 0.0; ///< interval-policy reference point
    bool ckpt_writing_ = false;
    int ckpt_remaining_ = 0;       ///< shard IOs still in flight
    SimTime ckpt_hold_begin_ = 0.0;
    bool in_recovery_ = false;
    std::vector<bool> node_alive_;
    std::vector<int> rank_map_;  ///< mirrors the executor's rank map

    // --- accounting --------------------------------------------------------
    int checkpoints_ = 0;
    Bytes checkpoint_bytes_ = 0.0;
    int recoveries_ = 0;
    int lost_iterations_ = 0;
    SimTime time_to_recover_ = 0.0;
    std::vector<Window> ckpt_windows_;
    std::vector<Window> recovery_windows_;
    std::vector<Window> lost_windows_;
};

} // namespace dstrain

#endif // DSTRAIN_RECOVERY_RECOVERY_MANAGER_HH
