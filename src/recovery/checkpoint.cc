/**
 * @file
 * Implementation of the checkpoint policy and sizing arithmetic.
 */

#include "recovery/checkpoint.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "model/memory.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

std::vector<ConfigError>
CheckpointPolicy::validate() const
{
    std::vector<ConfigError> errors;
    if (interval < 0.0)
        errors.push_back({"checkpoint.interval", "must be >= 0"});
    if (every_iterations < 0)
        errors.push_back({"checkpoint.every_iterations", "must be >= 0"});
    if (interval > 0.0 && every_iterations > 0) {
        errors.push_back({"checkpoint",
                          "interval and every_iterations are mutually "
                          "exclusive"});
    }
    return errors;
}

std::string
CheckpointPolicy::str() const
{
    if (every_iterations > 0)
        return csprintf("%di", every_iterations);
    if (interval > 0.0)
        return csprintf("%gs", interval);
    return "off";
}

CheckpointPolicy
parseCheckpointSpec(const std::string &spec,
                    std::vector<ConfigError> *errors)
{
    DSTRAIN_ASSERT(errors != nullptr,
                   "parseCheckpointSpec needs an error sink");
    CheckpointPolicy policy;
    const std::string item = trim(spec);
    if (item.empty() || item == "off")
        return policy;

    std::string number = item;
    char unit = 's';
    const char last = item.back();
    if (last == 's' || last == 'i') {
        unit = last;
        number = item.substr(0, item.size() - 1);
    }
    char *end = nullptr;
    const double v = std::strtod(number.c_str(), &end);
    // Reject non-finite explicitly: NaN slips through a <= range
    // check (every comparison is false).
    if (number.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(v) || v <= 0.0) {
        errors->push_back({"checkpoint['" + item + "']",
                           "expected '<seconds>[s]', '<k>i', or 'off'"});
        return policy;
    }
    if (unit == 'i') {
        if (v != std::floor(v)) {
            errors->push_back({"checkpoint['" + item + "']",
                               "iteration count must be an integer"});
            return policy;
        }
        policy.every_iterations = static_cast<int>(v);
    } else {
        policy.interval = v;
    }
    return policy;
}

Bytes
checkpointShardBytes(const StrategyConfig &strategy, std::int64_t params,
                     int total_gpus, int rank)
{
    DSTRAIN_ASSERT(total_gpus > 0 && rank >= 0 && rank < total_gpus,
                   "bad checkpoint rank %d of %d", rank, total_gpus);
    const ModelStateBytes state = modelStateBytes(params);
    const double n = static_cast<double>(total_gpus);
    const int mp = strategy.modelParallelSize();
    // Persistent state only: fp16 params + fp32 optimizer. Gradients
    // are transient and never checkpointed.
    switch (strategy.kind) {
      case StrategyKind::Ddp:
        // One full copy, written by rank 0.
        return rank == 0 ? state.fp16_params + state.fp32_optimizer
                         : 0.0;
      case StrategyKind::Megatron:
        // One copy sharded across the first data-parallel replica's
        // model-parallel ranks (the other replicas hold duplicates).
        return rank < mp ? (state.fp16_params + state.fp32_optimizer) /
                               mp
                         : 0.0;
      case StrategyKind::Zero1:
      case StrategyKind::Zero2: {
        // Optimizer state is partitioned across every rank; fp16
        // params stay whole per model-parallel group, so only the
        // first replica writes its parameter shard.
        const Bytes opt = state.fp32_optimizer / n;
        const Bytes par =
            rank < mp ? state.fp16_params / mp : 0.0;
        return opt + par;
      }
      case StrategyKind::Zero3:
      case StrategyKind::Fsdp:
        // Everything is partitioned: every rank writes an equal slice.
        return (state.fp16_params + state.fp32_optimizer) / n;
      case StrategyKind::Moe: {
        // The replicated shared third is written once by rank 0; the
        // expert two-thirds is partitioned across the first expert
        // group (other groups hold duplicates).
        const int ep = strategy.experts > 0
                           ? std::min(strategy.experts, total_gpus)
                           : total_gpus;
        const double f = 1.0 / 3.0;
        const Bytes full = state.fp16_params + state.fp32_optimizer;
        const Bytes shared = rank == 0 ? f * full : 0.0;
        const Bytes expert =
            rank < ep ? (1.0 - f) * full / ep : 0.0;
        return shared + expert;
      }
      case StrategyKind::Hybrid3d: {
        // fp16 params sharded over the first replica's MP ranks;
        // optimizer states ZeRO-partitioned across every rank.
        const Bytes opt = state.fp32_optimizer / n;
        const Bytes par = rank < mp ? state.fp16_params / mp : 0.0;
        return opt + par;
      }
    }
    panic("unknown StrategyKind %d", static_cast<int>(strategy.kind));
}

Bytes
checkpointTotalBytes(const StrategyConfig &strategy, std::int64_t params,
                     int total_gpus)
{
    Bytes total = 0.0;
    for (int r = 0; r < total_gpus; ++r)
        total += checkpointShardBytes(strategy, params, total_gpus, r);
    return total;
}

SimTime
youngDalyInterval(SimTime delta, SimTime mtbf)
{
    DSTRAIN_ASSERT(delta > 0.0 && mtbf > 0.0,
                   "Young/Daly needs positive cost (%g) and MTBF (%g)",
                   delta, mtbf);
    return std::sqrt(2.0 * delta * mtbf);
}

} // namespace dstrain
