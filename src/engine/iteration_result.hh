/**
 * @file
 * Results of executing an iteration plan: iteration boundaries, the
 * measurement window, achieved throughput, and task spans for
 * timeline rendering (paper Fig. 5).
 */

#ifndef DSTRAIN_ENGINE_ITERATION_RESULT_HH
#define DSTRAIN_ENGINE_ITERATION_RESULT_HH

#include <string>
#include <vector>

#include "strategies/iteration_plan.hh"
#include "util/units.hh"

namespace dstrain {

/** One executed task occurrence (for timelines). */
struct TaskSpan {
    int task_id = -1;
    int rank = -1;  ///< -1 for host-side work
    TaskKind kind = TaskKind::Barrier;
    ComputePhase phase = ComputePhase::Idle;
    SimTime begin = 0.0;
    SimTime end = 0.0;
    std::string label;
};

/** The outcome of Executor::run(). */
struct IterationResult {
    /** Completion time of every iteration, in order. */
    std::vector<SimTime> iteration_ends;

    /** Measurement window (excludes warm-up iterations). */
    SimTime measured_begin = 0.0;
    SimTime measured_end = 0.0;

    /** Executed GPU FLOPs per iteration (from the plan). */
    Flops flops_per_iteration = 0.0;

    /**
     * Committed GPU FLOPs of each iteration, parallel to
     * iteration_ends. Differs from flops_per_iteration * n only when
     * elastic recovery swaps in a re-planned (degraded) iteration
     * mid-run; the goodput accounting sums this vector.
     */
    std::vector<Flops> iteration_flops;

    /** Spans of the final iteration (timeline source). */
    std::vector<TaskSpan> spans;

    /** Number of measured (non-warm-up) iterations. */
    int measuredIterations() const;

    /** Mean measured iteration time. */
    SimTime avgIterationTime() const;

    /** Aggregate achieved TFLOP/s over the measurement window. */
    double achievedTflops() const;
};

} // namespace dstrain

#endif // DSTRAIN_ENGINE_ITERATION_RESULT_HH
