/**
 * @file
 * The plan executor: runs an IterationPlan on the simulated cluster,
 * dispatching compute to GPU/CPU queues, collectives to the
 * collective engine, staging transfers to the fabric, and IO to the
 * storage engine; produces iteration timings, spans, and (via the
 * topology's rate logs) all telemetry.
 */

#ifndef DSTRAIN_ENGINE_EXECUTOR_HH
#define DSTRAIN_ENGINE_EXECUTOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "engine/iteration_result.hh"
#include "storage/placement.hh"
#include "storage/volume.hh"
#include "strategies/strategy.hh"
#include "telemetry/probe.hh"

namespace dstrain {

/**
 * Calibration constants of the execution model. Like the memory
 * calibration, each constant documents the paper observation it is
 * fitted against.
 */
struct EngineCalibration {
    /**
     * Achievable fraction of the A100's 312 TFLOP/s fp16 peak for
     * the GEMM-dominated kernel blocks. Deeper models amortize the
     * fixed per-iteration framework/launch overheads better, so the
     * efficiency rises with the layer count (the paper's Sec. V-D
     * observation that throughput grows with model size):
     *
     *   eff(L) = max * (1 - dip * exp(-L / scale))
     *
     * Fitted to Table V: DDP@1.4B -> 438 TFLOP/s (L=26, eff 0.38),
     * ZeRO-2@5.2B -> 524 (L=101, eff 0.45).
     */
    double gemm_eff_max = 0.46;
    double gemm_eff_dip = 0.35;
    double gemm_eff_layer_scale = 40.0;

    /** eff(L) per the curve above. */
    double gemmEfficiency(int layers) const;

    /**
     * DeepSpeedCPUAdam throughput per socket. Fitted so ZeRO-Offload
     * on ZeRO-2 at 11.4 B reaches ~191 TFLOP/s (Fig. 11-a).
     */
    double cpu_adam_params_per_sec = 1.5e9;

    /** Host DRAM traffic of the CPU Adam step (fp32 state r/w). */
    double cpu_adam_dram_bytes_per_param = 28.0;

    /** Kernel-launch/setup overhead charged per collective. */
    SimTime collective_launch = 30e-6;

    /**
     * Fixed per-iteration framework overhead (data loader, Python
     * dispatch, profiler hooks). Amortizes away for large models —
     * part of the Table V size-sensitivity shape.
     */
    SimTime iteration_fixed = 20e-3;

    /**
     * Achievable fraction of the route cap for NCCL rings that span
     * nodes. With the end-to-end SerDes model of hw/serdes.cc the
     * per-flow caps already land on the stress-test rates, so the
     * default is 1.0; the knob remains for sensitivity studies.
     * Replaces (not compounds) a collective's own bandwidth factor
     * for spanning groups (large-block inter-node gathers are
     * efficient; the ZeRO-3 granularity penalty is an NVLink-side
     * effect).
     */
    double internode_comm_factor = 1.0;
};

/**
 * Executes plans. One executor per experiment; owns the storage
 * volumes derived from the NVMe placement.
 */
class Executor
{
  public:
    Executor(Simulation &sim, Cluster &cluster, FlowScheduler &flows,
             TransferManager &tm, CollectiveEngine &coll,
             AioEngine &aio, EngineCalibration cal = {});

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * Build the per-node storage volumes for @p placement (required
     * before running plans with NvmeIo tasks).
     */
    void configureStorage(const NvmePlacement &placement);

    /**
     * Configure how runs collect bandwidth telemetry (streaming
     * accumulators vs retained segments; see TelemetryConfig).
     * Applies to subsequent run() calls.
     */
    void configureTelemetry(const TelemetryConfig &telemetry)
    {
        telemetry_ = telemetry;
    }

    /** The telemetry configuration in use. */
    const TelemetryConfig &telemetry() const { return telemetry_; }

    /**
     * Run @p plan @p iterations times back to back, excluding the
     * first @p warmup iterations from the measurement window.
     * Runs the simulation to completion (synchronous).
     */
    IterationResult run(const IterationPlan &plan, int iterations,
                        int warmup = 1);

    /**
     * Called at each iteration boundary (after iteration @p completed
     * iterations have finished; never after the final one) with the
     * boundary time. Return true to *hold* the run: no further
     * iteration starts until resumeRun() — the checkpoint-write path.
     * Install before run(); cleared by nothing (reused across runs).
     */
    using IterationHook = std::function<bool(int, SimTime)>;

    /** Install the boundary hook (the RecoveryManager). */
    void setIterationHook(IterationHook hook)
    {
        iteration_hook_ = std::move(hook);
    }

    /**
     * Continue a run held by the iteration hook or rewound by
     * abortRun(). Schedules the next iteration on a fresh event.
     */
    void resumeRun();

    /**
     * Hard-failure abort: invalidate every scheduled continuation of
     * the current attempt, abort all in-flight transfers (delivered
     * vs aborted bytes land in TransferManager::stats()), cancel all
     * flows and pending IO, and rewind the iteration clock so the run
     * resumes from iteration @p resume_iter (the last committed
     * checkpoint boundary). The run stays held until resumeRun().
     */
    void abortRun(int resume_iter);

    /**
     * Execute subsequent iterations from @p plan instead of the run's
     * original plan, mapping the override plan's logical ranks and
     * nodes onto surviving physical ones (elastic recovery after a
     * node loss). @p plan must outlive the run; empty maps = identity.
     * Pass nullptr to clear.
     */
    void setPlanOverride(const IterationPlan *plan,
                         std::vector<int> rank_map,
                         std::vector<int> node_map);

    /** Iterations fully committed so far in the current run. */
    int completedIterations() const { return iter_index_; }

    /** End time of committed iteration @p i of the current run. */
    SimTime iterationEndTime(int i) const;

    /**
     * Issue a storage IO on behalf of logical rank @p plan_rank
     * against its placement volume (the checkpoint read/write path —
     * checkpoint traffic competes for the same simulated drives and
     * PCIe lanes as offload traffic). Physical node/socket/volume are
     * derived through the active rank map.
     */
    void rankStorageIo(int plan_rank, bool write, Bytes bytes,
                       const std::string &tag,
                       std::function<void()> on_done);

    /** Issue a storage IO against an explicit node/socket/volume. */
    void nodeStorageIo(int node, int socket, int volume, bool write,
                       Bytes bytes, const std::string &tag,
                       std::function<void()> on_done);

    /** The NVMe placement configured via configureStorage(). */
    const NvmePlacement &placement() const { return placement_; }

    /** The calibration in use. */
    const EngineCalibration &calibration() const { return cal_; }

    /**
     * Scale GPU @p rank's compute speed by @p factor in (0, 1]: the
     * fault injector's straggler model. A factor of 0.5 makes every
     * kernel block on that rank take twice as long. 1.0 = healthy.
     * Takes effect for subsequently dispatched compute tasks.
     */
    void setGpuSpeedFactor(int rank, double factor);

    /** Current compute-speed factor of GPU @p rank. */
    double gpuSpeedFactor(int rank) const;

  private:
    struct RunState;

    /** Dependency bookkeeping: called when a task finishes. */
    void onTaskDone(RunState &st, int task_id);

    /** Launch a task whose dependencies are satisfied. */
    void startTask(RunState &st, int task_id);

    /** Actually run a GPU compute task (front of the rank queue). */
    void dispatchGpu(RunState &st, int rank);

    /** Actually run a CPU optimizer task (front of a socket queue). */
    void dispatchCpu(RunState &st, int node, int socket);

    /**
     * The measurement window opens at @p t: truncate warm-up rate-log
     * history (unless retained) and arm the streaming accumulators on
     * the measurement grid.
     */
    void beginMeasurement(SimTime t);

    /** The plan iterations currently execute from. */
    const IterationPlan &activePlan() const
    {
        return plan_override_ != nullptr ? *plan_override_ : *run_plan_;
    }

    /** Logical plan rank -> physical rank (identity without a map). */
    int mapRank(int plan_rank) const
    {
        return rank_map_.empty()
                   ? plan_rank
                   : rank_map_[static_cast<std::size_t>(plan_rank)];
    }

    /** Logical plan node -> physical node (identity without a map). */
    int mapNode(int plan_node) const
    {
        return node_map_.empty()
                   ? plan_node
                   : node_map_[static_cast<std::size_t>(plan_node)];
    }

    /** Set up and launch iteration iter_index_ of the current run. */
    void startIteration();

    /** Iteration-boundary bookkeeping: hook, measurement, next iter. */
    void onIterationDone();

    /** Defer startIteration() to a fresh event (callbacks unwind). */
    void scheduleNextIteration();

    Simulation &sim_;
    Cluster &cluster_;
    FlowScheduler &flows_;
    TransferManager &tm_;
    CollectiveEngine &coll_;
    AioEngine &aio_;
    EngineCalibration cal_;
    TelemetryConfig telemetry_;

    /** Per-rank straggler factors; empty = all healthy. */
    std::vector<double> gpu_speed_;

    NvmePlacement placement_ = nvmePlacementConfig('B');
    /** volumes_[node][volume index] */
    std::vector<std::vector<std::unique_ptr<StorageVolume>>> volumes_;

    // --- run context (reset by run(), mutated by abort/resume) -----------
    const IterationPlan *run_plan_ = nullptr;   ///< run()'s plan
    const IterationPlan *plan_override_ = nullptr;  ///< elastic re-plan
    std::vector<int> rank_map_;  ///< plan rank -> physical rank
    std::vector<int> node_map_;  ///< plan node -> physical node
    int iterations_ = 0;
    int warmup_ = 0;
    int iter_index_ = 0;         ///< iterations committed so far
    bool paused_ = false;        ///< held by the hook or an abort
    bool measurement_started_ = false;
    /**
     * Attempt generation: bumped by abortRun() (and each run()); every
     * executor-scheduled event captures it and becomes a no-op when
     * stale, so an aborted iteration's in-flight continuations cannot
     * corrupt the replay.
     */
    std::uint64_t gen_ = 0;
    IterationHook iteration_hook_;
    std::shared_ptr<IterationResult> result_;
    std::shared_ptr<RunState> state_;
};

} // namespace dstrain

#endif // DSTRAIN_ENGINE_EXECUTOR_HH
