/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) export of executed task
 * spans — the shareable equivalent of the paper's NVIDIA Nsight
 * Systems timelines (Sec. III-B1). Each GPU rank becomes a trace
 * "thread", host-side optimizer work gets its own thread, and every
 * span becomes a complete ("X") event with its phase as the
 * category.
 */

#ifndef DSTRAIN_ENGINE_TRACE_EXPORT_HH
#define DSTRAIN_ENGINE_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "engine/iteration_result.hh"

namespace dstrain {

/** Options for the trace writer. */
struct TraceOptions {
    /** Display name of the trace process. */
    std::string process_name = "dstrain";

    /** Clip spans to [begin, end); 0/0 = everything. */
    SimTime begin = 0.0;
    SimTime end = 0.0;
};

/**
 * Render spans as a Chrome trace-event JSON document
 * (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
 *
 * Timestamps are microseconds, as the format requires.
 */
std::string renderChromeTrace(const std::vector<TaskSpan> &spans,
                              TraceOptions opts = {});

/**
 * Write a Chrome trace to @p path.
 * @return true on success (warn() and false otherwise).
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TaskSpan> &spans,
                      TraceOptions opts = {});

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &text);

} // namespace dstrain

#endif // DSTRAIN_ENGINE_TRACE_EXPORT_HH
