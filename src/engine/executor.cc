/**
 * @file
 * Implementation of the plan executor.
 */

#include "engine/executor.hh"

#include <functional>
#include <memory>

#include <cmath>

#include "util/logging.hh"

namespace dstrain {

double
EngineCalibration::gemmEfficiency(int layers) const
{
    return gemm_eff_max *
           (1.0 - gemm_eff_dip *
                      std::exp(-static_cast<double>(layers) /
                               gemm_eff_layer_scale));
}

/** Mutable state of one iteration execution. */
struct Executor::RunState {
    const IterationPlan *plan = nullptr;
    std::vector<int> pending_deps;
    std::vector<std::vector<int>> dependents;
    std::vector<SimTime> start_time;
    int remaining = 0;
    bool record_spans = false;
    std::vector<TaskSpan> *spans = nullptr;
    std::function<void()> on_done;

    // Per-GPU FIFO execution of compute tasks.
    std::map<int, std::deque<int>> gpu_queue;
    std::map<int, bool> gpu_busy;

    // Per-socket FIFO execution of CPU optimizer tasks.
    std::map<std::pair<int, int>, std::deque<int>> cpu_queue;
    std::map<std::pair<int, int>, bool> cpu_busy;
};

Executor::Executor(Simulation &sim, Cluster &cluster,
                   FlowScheduler &flows, TransferManager &tm,
                   CollectiveEngine &coll, AioEngine &aio,
                   EngineCalibration cal)
    : sim_(sim), cluster_(cluster), flows_(flows), tm_(tm), coll_(coll),
      aio_(aio), cal_(cal)
{
}

void
Executor::configureStorage(const NvmePlacement &placement)
{
    placement_ = placement;
    volumes_.clear();
    volumes_.resize(static_cast<std::size_t>(cluster_.nodeCount()));
    for (int node = 0; node < cluster_.nodeCount(); ++node) {
        for (const VolumeSpec &vs : placement.volumes) {
            volumes_[static_cast<std::size_t>(node)].push_back(
                std::make_unique<StorageVolume>(aio_, node, vs));
        }
    }
}

void
Executor::beginMeasurement(SimTime t)
{
    measurement_started_ = true;
    result_->measured_begin = t;
    Topology &topo = cluster_.topology();
    // A legacy (non-streaming) run needs the segments it would sweep,
    // so it implies retention regardless of the retain flag.
    const bool retained =
        telemetry_.retain_segments || !telemetry_.streaming;
    if (!retained && t > 0.0)
        topo.dropLogsBefore(t);
    if (telemetry_.streaming)
        topo.armStreams(t, telemetry_.bucket);
}

void
Executor::onTaskDone(RunState &st, int task_id)
{
    const PlanTask &t = st.plan->tasks()[static_cast<std::size_t>(task_id)];
    if (st.record_spans && t.kind != TaskKind::Barrier) {
        if (t.kind == TaskKind::Collective) {
            for (int r : t.group.ranks) {
                st.spans->push_back(TaskSpan{
                    t.id, r, t.kind, t.phase,
                    st.start_time[static_cast<std::size_t>(task_id)],
                    sim_.now(), t.label});
            }
        } else {
            st.spans->push_back(TaskSpan{
                t.id, t.rank, t.kind, t.phase,
                st.start_time[static_cast<std::size_t>(task_id)],
                sim_.now(), t.label});
        }
    }

    --st.remaining;
    for (int dep : st.dependents[static_cast<std::size_t>(task_id)]) {
        if (--st.pending_deps[static_cast<std::size_t>(dep)] == 0)
            startTask(st, dep);
    }
    if (st.remaining == 0 && st.on_done)
        st.on_done();
}

void
Executor::dispatchGpu(RunState &st, int rank)
{
    auto &queue = st.gpu_queue[rank];
    if (st.gpu_busy[rank] || queue.empty())
        return;
    const int task_id = queue.front();
    queue.pop_front();
    st.gpu_busy[rank] = true;

    const PlanTask &t = st.plan->tasks()[static_cast<std::size_t>(task_id)];
    const Flops peak =
        cluster_.nodeSpec(cluster_.nodeOfRank(mapRank(rank)))
            .gpu_peak_fp16;
    const double eff = cal_.gemmEfficiency(st.plan->modelLayers());
    const SimTime duration =
        t.flops / (peak * eff * gpuSpeedFactor(mapRank(rank)));
    st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();
    sim_.events().scheduleAfter(
        duration, [this, &st, task_id, rank, gen = gen_] {
            if (gen != gen_)
                return;  // the attempt was aborted mid-kernel
            st.gpu_busy[rank] = false;
            onTaskDone(st, task_id);
            dispatchGpu(st, rank);
        });
}

void
Executor::setGpuSpeedFactor(int rank, double factor)
{
    DSTRAIN_ASSERT(rank >= 0 && rank < cluster_.spec().totalGpus(),
                   "bad straggler rank %d", rank);
    DSTRAIN_ASSERT(factor > 0.0 && factor <= 1.0,
                   "bad GPU speed factor %g", factor);
    if (gpu_speed_.empty()) {
        gpu_speed_.assign(
            static_cast<std::size_t>(cluster_.spec().totalGpus()), 1.0);
    }
    gpu_speed_[static_cast<std::size_t>(rank)] = factor;
}

double
Executor::gpuSpeedFactor(int rank) const
{
    if (gpu_speed_.empty())
        return 1.0;
    DSTRAIN_ASSERT(rank >= 0 &&
                       static_cast<std::size_t>(rank) < gpu_speed_.size(),
                   "bad GPU rank %d", rank);
    return gpu_speed_[static_cast<std::size_t>(rank)];
}

void
Executor::dispatchCpu(RunState &st, int node, int socket)
{
    const auto key = std::make_pair(node, socket);
    auto &queue = st.cpu_queue[key];
    if (st.cpu_busy[key] || queue.empty())
        return;
    const int task_id = queue.front();
    queue.pop_front();
    st.cpu_busy[key] = true;

    const PlanTask &t = st.plan->tasks()[static_cast<std::size_t>(task_id)];
    const SimTime duration = t.cpu_params / cal_.cpu_adam_params_per_sec;
    const Bytes dram_traffic =
        t.cpu_params * cal_.cpu_adam_dram_bytes_per_param;
    st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();

    // The Adam step is memory-bound: model it as a DRAM flow pinned
    // at the rate the compute needs. Contention on the DRAM pool
    // stretches the step, which is exactly the physical effect.
    TransferOptions opts;
    opts.rate_cap = dram_traffic / duration;
    opts.tag = t.label;
    const NodeHandles &nh = cluster_.node(mapNode(node));
    tm_.start(nh.drams[static_cast<std::size_t>(socket)],
              nh.cpus[static_cast<std::size_t>(socket)], dram_traffic,
              [this, &st, task_id, key, gen = gen_] {
                  if (gen != gen_)
                      return;
                  st.cpu_busy[key] = false;
                  onTaskDone(st, task_id);
                  dispatchCpu(st, key.first, key.second);
              },
              std::move(opts));
}

void
Executor::startTask(RunState &st, int task_id)
{
    const PlanTask &t = st.plan->tasks()[static_cast<std::size_t>(task_id)];
    switch (t.kind) {
      case TaskKind::Barrier: {
        st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();
        sim_.events().scheduleAfter(
            0.0, [this, &st, task_id, gen = gen_] {
                if (gen == gen_)
                    onTaskDone(st, task_id);
            });
        break;
      }
      case TaskKind::GpuCompute: {
        st.gpu_queue[t.rank].push_back(task_id);
        dispatchGpu(st, t.rank);
        break;
      }
      case TaskKind::Collective: {
        st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();
        sim_.events().scheduleAfter(
            cal_.collective_launch +
                st.plan->tasks()[static_cast<std::size_t>(task_id)]
                    .extra_latency,
            [this, &st, task_id, gen = gen_] {
                if (gen != gen_)
                    return;
                const PlanTask &task =
                    st.plan->tasks()[static_cast<std::size_t>(task_id)];
                // Elastic recovery runs a re-planned group on the
                // surviving physical ranks.
                CommGroup group = task.group;
                for (int &r : group.ranks)
                    r = mapRank(r);
                CollectiveOptions opts;
                opts.pin_channels_to_nics = task.pin_channels;
                opts.bandwidth_factor = task.comm_bw_factor;
                opts.algorithm = task.algo;
                bool spans = false;
                const int node0 =
                    cluster_.nodeOfRank(group.ranks.front());
                for (int r : group.ranks)
                    spans = spans || cluster_.nodeOfRank(r) != node0;
                if (spans)
                    opts.bandwidth_factor = cal_.internode_comm_factor;
                opts.tag = task.label;
                auto done = [this, &st, task_id, gen] {
                    if (gen == gen_)
                        onTaskDone(st, task_id);
                };
                switch (task.op) {
                  case CollectiveOp::AllReduce:
                    coll_.allReduce(group, task.bytes, done, opts);
                    break;
                  case CollectiveOp::ReduceScatter:
                    coll_.reduceScatter(group, task.bytes, done, opts);
                    break;
                  case CollectiveOp::AllGather:
                    coll_.allGather(group, task.bytes, done, opts);
                    break;
                  case CollectiveOp::Broadcast:
                    coll_.broadcast(group, mapRank(task.root),
                                    task.bytes, done, opts);
                    break;
                  case CollectiveOp::Reduce:
                    coll_.reduce(group, mapRank(task.root), task.bytes,
                                 done, opts);
                    break;
                  case CollectiveOp::AllToAll:
                    coll_.allToAll(group, task.bytes, done, opts);
                    break;
                }
            });
        break;
      }
      case TaskKind::HostTransfer: {
        st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();
        const int rank = mapRank(t.rank);
        const int node = cluster_.nodeOfRank(rank);
        const int socket =
            gpuSocket(cluster_.nodeSpec(node), cluster_.localOfRank(rank));
        const NodeHandles &nh = cluster_.node(node);
        const ComponentId gpu = cluster_.gpuByRank(rank);
        const ComponentId dram =
            nh.drams[static_cast<std::size_t>(socket)];
        TransferOptions opts;
        opts.tag = t.label;
        tm_.start(t.to_host ? gpu : dram, t.to_host ? dram : gpu,
                  t.bytes,
                  [this, &st, task_id, gen = gen_] {
                      if (gen == gen_)
                          onTaskDone(st, task_id);
                  },
                  std::move(opts));
        break;
      }
      case TaskKind::CpuOptimizer: {
        st.cpu_queue[{t.node, t.socket}].push_back(task_id);
        dispatchCpu(st, t.node, t.socket);
        break;
      }
      case TaskKind::NvmeIo: {
        st.start_time[static_cast<std::size_t>(task_id)] = sim_.now();
        const int rank = mapRank(t.rank);
        const int node = cluster_.nodeOfRank(rank);
        const int socket =
            gpuSocket(cluster_.nodeSpec(node), cluster_.localOfRank(rank));
        nodeStorageIo(node, socket, t.volume, t.io_write, t.bytes,
                      t.label, [this, &st, task_id, gen = gen_] {
                          if (gen == gen_)
                              onTaskDone(st, task_id);
                      });
        break;
      }
    }
}

void
Executor::startIteration()
{
    if (iter_index_ >= iterations_)
        return;
    const IterationPlan &plan = activePlan();
    RunState &st = *state_;
    st = RunState{};
    st.plan = &plan;
    const std::size_t n = plan.size();
    st.pending_deps.assign(n, 0);
    st.dependents.assign(n, {});
    st.start_time.assign(n, 0.0);
    st.remaining = static_cast<int>(n);
    st.record_spans = (iter_index_ == iterations_ - 1);
    st.spans = &result_->spans;
    // A replay of the final iteration after an abort re-records its
    // timeline from scratch.
    if (st.record_spans)
        st.spans->clear();
    st.on_done = [this, gen = gen_] {
        if (gen == gen_)
            onIterationDone();
    };
    for (const PlanTask &t : plan.tasks()) {
        st.pending_deps[static_cast<std::size_t>(t.id)] =
            static_cast<int>(t.deps.size());
        for (int dep : t.deps)
            st.dependents[static_cast<std::size_t>(dep)].push_back(t.id);
    }
    // The fixed per-iteration framework overhead delays the first
    // tasks of the iteration.
    sim_.events().scheduleAfter(
        cal_.iteration_fixed, [this, gen = gen_] {
            if (gen != gen_)
                return;
            RunState &s2 = *state_;
            for (const PlanTask &t : s2.plan->tasks())
                if (t.deps.empty())
                    startTask(s2, t.id);
        });
}

void
Executor::onIterationDone()
{
    result_->iteration_ends.push_back(sim_.now());
    result_->iteration_flops.push_back(activePlan().totalGpuFlops());
    ++iter_index_;
    // The measurement window opens exactly where measured_begin
    // lands: the end of the last warm-up iteration. The flag keeps a
    // replay that re-crosses the warm-up boundary from truncating the
    // telemetry a second time.
    if (warmup_ > 0 && iter_index_ == warmup_ && !measurement_started_)
        beginMeasurement(sim_.now());
    // The boundary hook (checkpoint scheduler) may hold the run; it
    // resumes via resumeRun(). Never called after the final iteration.
    if (iteration_hook_ && iter_index_ < iterations_ &&
        iteration_hook_(iter_index_, sim_.now())) {
        paused_ = true;
        return;
    }
    scheduleNextIteration();
}

void
Executor::scheduleNextIteration()
{
    // Defer to a fresh event so the current callbacks fully unwind.
    sim_.events().scheduleAfter(0.0, [this, gen = gen_] {
        if (gen == gen_)
            startIteration();
    });
}

void
Executor::resumeRun()
{
    DSTRAIN_ASSERT(paused_, "resumeRun() without a held run");
    paused_ = false;
    scheduleNextIteration();
}

void
Executor::abortRun(int resume_iter)
{
    DSTRAIN_ASSERT(resume_iter >= 0 && resume_iter <= iter_index_,
                   "cannot resume at iteration %d (%d committed)",
                   resume_iter, iter_index_);
    // Invalidate every scheduled continuation of the current attempt
    // first, then tear down in-flight work top-down: transfers (which
    // records delivered/aborted bytes per pending transfer), then any
    // remaining flows (executor-owned DRAM flows and non-retry
    // traffic), then queued storage IO. Collective continuations live
    // inside the transfer manager's pending callbacks, so clearing it
    // drains the collectives too.
    ++gen_;
    tm_.abortAll();
    flows_.cancelAll();
    aio_.abortAll();
    // Rewind the iteration clock to the last committed boundary; the
    // lost iterations re-run (replay) after recovery resumes us.
    result_->iteration_ends.resize(static_cast<std::size_t>(resume_iter));
    result_->iteration_flops.resize(
        static_cast<std::size_t>(resume_iter));
    iter_index_ = resume_iter;
    paused_ = true;
}

void
Executor::setPlanOverride(const IterationPlan *plan,
                          std::vector<int> rank_map,
                          std::vector<int> node_map)
{
    if (plan != nullptr)
        plan->validate();
    plan_override_ = plan;
    rank_map_ = std::move(rank_map);
    node_map_ = std::move(node_map);
}

SimTime
Executor::iterationEndTime(int i) const
{
    DSTRAIN_ASSERT(result_ != nullptr && i >= 0 &&
                       static_cast<std::size_t>(i) <
                           result_->iteration_ends.size(),
                   "no committed iteration %d", i);
    return result_->iteration_ends[static_cast<std::size_t>(i)];
}

void
Executor::rankStorageIo(int plan_rank, bool write, Bytes bytes,
                        const std::string &tag,
                        std::function<void()> on_done)
{
    const int rank = mapRank(plan_rank);
    const int node = cluster_.nodeOfRank(rank);
    const int local = cluster_.localOfRank(rank);
    const int socket = gpuSocket(cluster_.nodeSpec(node), local);
    nodeStorageIo(node, socket, placement_.volumeForRank(local), write,
                  bytes, tag, std::move(on_done));
}

void
Executor::nodeStorageIo(int node, int socket, int volume, bool write,
                        Bytes bytes, const std::string &tag,
                        std::function<void()> on_done)
{
    DSTRAIN_ASSERT(node >= 0 &&
                       node < static_cast<int>(volumes_.size()) &&
                       volume >= 0 &&
                       volume < static_cast<int>(
                                    volumes_[static_cast<std::size_t>(
                                                 node)]
                                        .size()),
                   "IO '%s' has no volume %d on node %d "
                   "(configureStorage not called?)",
                   tag.c_str(), volume, node);
    StorageIo io;
    io.write = write;
    io.bytes = bytes;
    io.node = node;
    io.socket = socket;
    io.tag = tag;
    io.on_done = std::move(on_done);
    volumes_[static_cast<std::size_t>(node)]
            [static_cast<std::size_t>(volume)]
                ->io(std::move(io));
}

IterationResult
Executor::run(const IterationPlan &plan, int iterations, int warmup)
{
    DSTRAIN_ASSERT(iterations >= 1 && warmup >= 0 &&
                       warmup < iterations,
                   "bad iteration counts (%d total, %d warmup)",
                   iterations, warmup);
    plan.validate();

    // Reset the run context (executors are reused across runs); the
    // generation bump turns any event left over from a previous run
    // into a no-op.
    ++gen_;
    run_plan_ = &plan;
    plan_override_ = nullptr;
    rank_map_.clear();
    node_map_.clear();
    iterations_ = iterations;
    warmup_ = warmup;
    iter_index_ = 0;
    paused_ = false;
    measurement_started_ = false;
    result_ = std::make_shared<IterationResult>();
    result_->flops_per_iteration = plan.totalGpuFlops();
    state_ = std::make_shared<RunState>();

    // Apply the run's telemetry mode before any rate is logged: with
    // retention off the logs keep only streamed buckets and the O(1)
    // byte counters, bounding telemetry memory for the whole run.
    cluster_.topology().setRetainSegments(
        telemetry_.retain_segments || !telemetry_.streaming);
    if (warmup == 0)
        beginMeasurement(0.0);  // the measurement window is the run

    startIteration();
    sim_.run();
    sim_.checkEventLimit();

    if (paused_) {
        panic("run drained while held at iteration %d "
              "(recovery never resumed it)",
              iter_index_);
    }
    if (state_->remaining != 0) {
        panic("plan execution deadlocked with %d tasks outstanding",
              state_->remaining);
    }
    DSTRAIN_ASSERT(static_cast<int>(result_->iteration_ends.size()) ==
                       iterations,
                   "iteration count mismatch");

    result_->measured_end = result_->iteration_ends.back();
    flows_.finalizeLogs();
    return *result_;
}

} // namespace dstrain
