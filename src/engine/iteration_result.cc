/**
 * @file
 * Implementation of the iteration result helpers.
 */

#include "engine/iteration_result.hh"

#include "util/logging.hh"

namespace dstrain {

int
IterationResult::measuredIterations() const
{
    int count = 0;
    for (SimTime t : iteration_ends)
        if (t > measured_begin && t <= measured_end)
            ++count;
    return count;
}

SimTime
IterationResult::avgIterationTime() const
{
    const int n = measuredIterations();
    DSTRAIN_ASSERT(n > 0, "no measured iterations");
    return (measured_end - measured_begin) / n;
}

double
IterationResult::achievedTflops() const
{
    return flops_per_iteration / avgIterationTime() / 1e12;
}

} // namespace dstrain
