/**
 * @file
 * Implementation of the Chrome-trace exporter.
 */

#include "engine/trace_export.hh"

#include <algorithm>
#include <fstream>

#include "util/logging.hh"

namespace dstrain {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

namespace {

/** Trace "thread id" of a span (GPU ranks, then the host row). */
int
traceThread(const TaskSpan &span)
{
    if (span.kind == TaskKind::CpuOptimizer || span.rank < 0)
        return 1000;  // host thread
    return span.rank;
}

} // namespace

std::string
renderChromeTrace(const std::vector<TaskSpan> &spans, TraceOptions opts)
{
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&out, &first](const std::string &event) {
        if (!first)
            out += ",\n";
        first = false;
        out += event;
    };

    emit(csprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"args\":{\"name\":\"%s\"}}",
                  jsonEscape(opts.process_name).c_str()));

    std::vector<int> threads_seen;
    for (const TaskSpan &s : spans) {
        if (opts.end > opts.begin &&
            (s.end <= opts.begin || s.begin >= opts.end)) {
            continue;
        }
        const int tid = traceThread(s);
        if (std::find(threads_seen.begin(), threads_seen.end(), tid) ==
            threads_seen.end()) {
            threads_seen.push_back(tid);
            const std::string name =
                tid == 1000 ? "host" : csprintf("gpu%d", tid);
            emit(csprintf("{\"name\":\"thread_name\",\"ph\":\"M\","
                          "\"pid\":1,\"tid\":%d,"
                          "\"args\":{\"name\":\"%s\"}}",
                          tid, name.c_str()));
        }
        emit(csprintf(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
            jsonEscape(s.label).c_str(), computePhaseName(s.phase), tid,
            s.begin * 1e6, (s.end - s.begin) * 1e6));
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TaskSpan> &spans, TraceOptions opts)
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot open '%s' for trace export", path.c_str());
        return false;
    }
    file << renderChromeTrace(spans, std::move(opts));
    return static_cast<bool>(file);
}

} // namespace dstrain
