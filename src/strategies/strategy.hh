/**
 * @file
 * The strategy interface: each training library/configuration the
 * paper evaluates builds an IterationPlan describing exactly how one
 * training step computes and communicates on the cluster.
 */

#ifndef DSTRAIN_STRATEGIES_STRATEGY_HH
#define DSTRAIN_STRATEGIES_STRATEGY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.hh"
#include "model/parallelism.hh"
#include "model/transformer.hh"
#include "storage/placement.hh"
#include "strategies/iteration_plan.hh"

namespace dstrain {

/** Plan-granularity tuning (bounds simulation event counts). */
struct PlanTuning {
    /** Max compute blocks the layer stack is grouped into. */
    int max_blocks = 24;

    /** Gradient all-reduce/reduce-scatter buckets. */
    int grad_buckets = 8;

    /** NVMe optimizer-swap pipeline chunks per rank. */
    int nvme_chunks = 16;

    /**
     * Overlap the ZeRO-1/2 gradient reduction with the backward pass
     * (per-bucket dependencies), as newer DeepSpeed releases do.
     * Off by default: the DeepSpeed 0.7.x the paper measured reduces
     * after the backward pass (Fig. 10's peak-and-trough pattern).
     * See bench/ablation_overlap for the what-if.
     */
    bool overlap_grad_reduction = false;

    /**
     * FSDP prefetch lookahead: the all-gather for block b may run
     * while up to this many earlier blocks still compute (PyTorch's
     * forward_prefetch/backward_prefetch window). >= 1; unlike
     * ZeRO-3's strict depth-1 gather chain, this is what lets the
     * gather of layer L+1 fully overlap layer L's compute.
     */
    int fsdp_prefetch = 2;
};

/** Everything a strategy needs to build a plan. */
struct PlanContext {
    const Cluster &cluster;
    TransformerConfig model;
    int batch_per_gpu = 16;
    /** NVMe rank->volume mapping (ZeRO-Infinity only). */
    NvmePlacement placement = nvmePlacementConfig('B');
    PlanTuning tuning;

    /** Tokens processed by the whole cluster per iteration. */
    std::int64_t globalTokens() const;
};

class Strategy;

/**
 * One entry of the name-keyed strategy registry: how to spell a
 * strategy on the CLI, configure it from the tp/pp degrees, decide
 * whether a StrategyConfig belongs to it, and instantiate it.
 */
struct StrategyFactory {
    /** CLI spelling (`--strategy <name>`). */
    std::string name;

    /** One-line help text for the name. */
    std::string help;

    /**
     * Build this name's StrategyConfig. @p tp / @p pp are the CLI
     * degrees (0 = the entry's default).
     */
    std::function<StrategyConfig(int tp, int pp)> configure;

    /** Does instantiate() handle @p cfg? First match wins. */
    std::function<bool(const StrategyConfig &)> matches;

    /** Make the strategy for a matching config. */
    std::function<std::unique_ptr<Strategy>(const StrategyConfig &)>
        instantiate;
};

/**
 * Abstract strategy. Concrete classes: DdpStrategy,
 * MegatronStrategy, ZeroStrategy (stages 1-3), ZeroOffloadStrategy,
 * ZeroInfinityStrategy, FsdpStrategy, MoeStrategy, Hybrid3dStrategy.
 */
class Strategy
{
  public:
    explicit Strategy(StrategyConfig cfg);
    virtual ~Strategy() = default;

    Strategy(const Strategy &) = delete;
    Strategy &operator=(const Strategy &) = delete;

    /** The configuration this strategy realizes. */
    const StrategyConfig &config() const { return cfg_; }

    /** Build the task graph for one training iteration. */
    virtual IterationPlan buildIteration(const PlanContext &ctx) const = 0;

    /**
     * Factory dispatching on the configuration: walks the registry
     * in registration order and instantiates the first entry whose
     * matches() accepts @p cfg.
     */
    static std::unique_ptr<Strategy> create(const StrategyConfig &cfg);

    /**
     * Add a registry entry. The built-in strategies self-register on
     * first registry use; additional entries append after them.
     */
    static void registerFactory(StrategyFactory factory);

    /** All registered names, in registration order. */
    static std::vector<std::string> names();

    /** The entry spelled @p name, or nullptr. */
    static const StrategyFactory *find(const std::string &name);

  protected:
    StrategyConfig cfg_;
};

// --- shared helpers used by the concrete strategies --------------------

/**
 * Equivalent GEMM FLOPs of the on-GPU Adam step per parameter (the
 * step is HBM-bound; this constant converts it into engine time —
 * ~17 ms for 1.4 B params at A100 rates).
 */
inline constexpr double kGpuOptimizerFlopsPerParam = 1400.0;

/**
 * Fixed software latency of each ZeRO-3 just-in-time parameter
 * gather (DeepSpeed's fetch/partition coordination, Python-side
 * hooks and small-tensor fragmentation). Calibrated so ZeRO-3 lands
 * below ZeRO-1/2 in single-node throughput as in paper Fig. 7-a
 * (381 vs 391/524 TFLOP/s) and its 1.4 B timeline stretches to
 * ~0.7 s as in Fig. 5.
 */
inline constexpr SimTime kZero3FetchOverhead = 4e-3;

/**
 * Achievable fraction of ring bandwidth for ZeRO-3's just-in-time
 * parameter gathers: per-parameter granularity issues many small
 * NCCL calls that cannot saturate the links. Calibrated with
 * kZero3FetchOverhead against Fig. 5 (ZeRO-3 @ 1.4 B: ~0.7 s/iter)
 * and Fig. 7-a (ZeRO-3 @ 6.6 B: 381 TFLOP/s).
 */
inline constexpr double kZero3GatherBandwidthFactor = 0.30;

/** Effective block count for a model (min(layers, max_blocks)). */
int planBlocks(const TransformerConfig &model, const PlanTuning &tuning);

/**
 * Per-rank forward FLOPs for a pure data-parallel strategy
 * (each DP rank processes batch_per_gpu sequences).
 */
Flops dpForwardFlopsPerRank(const PlanContext &ctx);

/**
 * Append the plain data-parallel forward+backward compute chains for
 * every rank.
 *
 * @param[out] fwd_blocks  fwd_blocks[rank][block] = task id.
 * @param[out] bwd_blocks  bwd_blocks[rank][block] = task id, in
 *                         *reverse layer order* (block 0 runs first
 *                         in the backward pass = last layer block).
 */
void buildDataParallelCompute(
    IterationPlan &plan, const PlanContext &ctx,
    std::vector<std::vector<int>> &fwd_blocks,
    std::vector<std::vector<int>> &bwd_blocks);

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_STRATEGY_HH
