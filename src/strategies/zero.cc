/**
 * @file
 * Implementation of the ZeRO stage 1-3 plan builders.
 */

#include "strategies/zero.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

ZeroStrategy::ZeroStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.offload == OffloadTarget::None,
                   "ZeroStrategy models the no-offload stages");
}

IterationPlan
ZeroStrategy::buildIteration(const PlanContext &ctx) const
{
    return cfg_.kind == StrategyKind::Zero3 ? buildStage3(ctx)
                                            : buildStage12(ctx);
}

IterationPlan
ZeroStrategy::buildStage12(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes grad_bytes = 2.0 * params;
    const Bytes param_bytes = 2.0 * params;

    std::vector<std::vector<int>> fwd;
    std::vector<std::vector<int>> bwd;
    buildDataParallelCompute(plan, ctx, fwd, bwd);
    const int blocks = static_cast<int>(fwd[0].size());

    // Gradient reduction. Unlike PyTorch DDP, the DeepSpeed release
    // the paper measured (0.7.x) launches the stage-1/2 reduction
    // only after the backward pass completes — hence the
    // peak-and-trough RoCE pattern of paper Fig. 10 and the exposed
    // communication time behind Fig. 7-b. ZeRO-1 all-reduces
    // (gradients replicated); ZeRO-2 reduce-scatters.
    const CollectiveOp grad_op = cfg_.kind == StrategyKind::Zero1
                                     ? CollectiveOp::AllReduce
                                     : CollectiveOp::ReduceScatter;
    const int buckets = std::min(ctx.tuning.grad_buckets, blocks);
    int prev = -1;
    for (int k = 0; k < buckets; ++k) {
        // Overlapped mode gates bucket k on its own backward block
        // group; the paper-era mode gates on the full backward pass.
        const int b_end = ctx.tuning.overlap_grad_reduction
                              ? (k + 1) * blocks / buckets
                              : blocks;
        std::vector<int> deps;
        for (int r = 0; r < n; ++r)
            deps.push_back(bwd[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(b_end - 1)]);
        if (prev >= 0)
            deps.push_back(prev);
        prev = plan.collective(grad_op, CommGroup::worldOf(n),
                               grad_bytes / buckets, std::move(deps),
                               csprintf("zero grad bucket %d", k));
    }

    // Each rank updates its optimizer shard.
    std::vector<int> opt_tasks;
    for (int r = 0; r < n; ++r) {
        opt_tasks.push_back(plan.gpuCompute(
            r, kGpuOptimizerFlopsPerParam * params / n,
            ComputePhase::Optimizer, {prev}, csprintf("adam r%d", r)));
    }

    // Updated fp16 parameters are all-gathered back to every rank.
    plan.collective(CollectiveOp::AllGather, CommGroup::worldOf(n),
                    param_bytes, std::move(opt_tasks),
                    "zero param all-gather");

    plan.validate();
    return plan;
}

IterationPlan
ZeroStrategy::buildStage3(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes param_block = 2.0 * params / blocks;
    const Bytes grad_block = 2.0 * params / blocks;
    const Flops fwd_block = dpForwardFlopsPerRank(ctx) / blocks;
    const Flops bwd_block = 3.0 * fwd_block;

    // Forward: all-gather each block's parameters just in time
    // (prefetched: gathers chain on each other, compute chains on the
    // gather of its block and the previous compute block).
    std::vector<int> last_fwd(static_cast<std::size_t>(n), -1);
    int prev_ag = -1;
    std::vector<int> fwd_ag;
    for (int b = 0; b < blocks; ++b) {
        // Prefetch depth 1: the gather of block b may not start
        // before block b-1's compute (DeepSpeed's bounded prefetch).
        std::vector<int> ag_deps;
        if (prev_ag >= 0)
            ag_deps.push_back(prev_ag);
        for (int r = 0; r < n; ++r)
            if (last_fwd[static_cast<std::size_t>(r)] >= 0)
                ag_deps.push_back(last_fwd[static_cast<std::size_t>(r)]);
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("z3 fwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        fwd_ag.push_back(prev_ag);
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag};
            if (last_fwd[static_cast<std::size_t>(r)] >= 0)
                deps.push_back(last_fwd[static_cast<std::size_t>(r)]);
            last_fwd[static_cast<std::size_t>(r)] = plan.gpuCompute(
                r, fwd_block, ComputePhase::Forward, std::move(deps),
                csprintf("fwd r%d b%d", r, b));
        }
    }

    // Backward (reverse block order): gather parameters again, run
    // recompute+backward, reduce-scatter the block's gradients.
    std::vector<int> last_bwd = last_fwd;
    int prev_rs = -1;
    for (int b = blocks - 1; b >= 0; --b) {
        std::vector<int> ag_deps;
        if (prev_ag >= 0)
            ag_deps.push_back(prev_ag);
        for (int r = 0; r < n; ++r)
            if (last_bwd[static_cast<std::size_t>(r)] >= 0)
                ag_deps.push_back(last_bwd[static_cast<std::size_t>(r)]);
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("z3 bwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        std::vector<int> block_tasks;
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {
                prev_ag, last_bwd[static_cast<std::size_t>(r)]};
            last_bwd[static_cast<std::size_t>(r)] = plan.gpuCompute(
                r, bwd_block, ComputePhase::Backward, std::move(deps),
                csprintf("bwd r%d b%d", r, b));
            block_tasks.push_back(last_bwd[static_cast<std::size_t>(r)]);
        }
        if (prev_rs >= 0)
            block_tasks.push_back(prev_rs);
        prev_rs = plan.collective(CollectiveOp::ReduceScatter,
                                  CommGroup::worldOf(n), grad_block,
                                  std::move(block_tasks),
                                  csprintf("z3 rs b%d", b));
    }

    // Optimizer on each rank's 1/N shard; parameters stay partitioned
    // (next iteration's gathers pick up the fresh values).
    for (int r = 0; r < n; ++r) {
        plan.gpuCompute(r, kGpuOptimizerFlopsPerParam * params / n,
                        ComputePhase::Optimizer, {prev_rs},
                        csprintf("adam r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
