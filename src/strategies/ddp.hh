/**
 * @file
 * PyTorch Distributed Data-Parallel: the model is replicated on
 * every GPU; gradients are all-reduced in buckets overlapping the
 * backward pass (paper Sec. II-B, Fig. 5 first timeline); each rank
 * runs the full Adam step locally.
 */

#ifndef DSTRAIN_STRATEGIES_DDP_HH
#define DSTRAIN_STRATEGIES_DDP_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class DdpStrategy : public Strategy
{
  public:
    explicit DdpStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_DDP_HH
