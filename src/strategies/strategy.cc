/**
 * @file
 * Strategy base implementation, factory, and shared plan helpers.
 */

#include "strategies/strategy.hh"

#include <algorithm>

#include "model/flops.hh"
#include "strategies/ddp.hh"
#include "strategies/fsdp.hh"
#include "strategies/hybrid3d.hh"
#include "strategies/hybrid_zero.hh"
#include "strategies/megatron.hh"
#include "strategies/moe.hh"
#include "strategies/zero.hh"
#include "strategies/zero_infinity.hh"
#include "strategies/zero_offload.hh"
#include "util/logging.hh"

namespace dstrain {

std::int64_t
PlanContext::globalTokens() const
{
    return static_cast<std::int64_t>(batch_per_gpu) * model.seq_len *
           cluster.spec().totalGpus();
}

Strategy::Strategy(StrategyConfig cfg)
    : cfg_(cfg)
{
    validateStrategy(cfg_);
}

namespace {

/** The registry storage (lazily filled with the builtins). */
std::vector<StrategyFactory> &
registrySlot()
{
    static std::vector<StrategyFactory> entries;
    return entries;
}

template <typename S>
std::unique_ptr<Strategy>
makeStrategy(const StrategyConfig &cfg)
{
    return std::make_unique<S>(cfg);
}

/**
 * The built-in entries, in `--strategy` help order. zero1/zero2
 * promote to the hybrid TP+ZeRO mode when a TP degree is given, so
 * their configure/instantiate branch on it.
 */
void
registerBuiltins(std::vector<StrategyFactory> &reg)
{
    auto zeroEntry = [&](int stage, StrategyKind kind) {
        reg.push_back(
            {csprintf("zero%d", stage),
             csprintf("DeepSpeed ZeRO stage %d%s", stage,
                      stage < 3 ? " (--tp > 1 selects hybrid TP+ZeRO)"
                                : " (fully partitioned states)"),
             [stage](int tp, int) {
                 return tp > 1 && stage < 3
                            ? StrategyConfig::hybridZero(stage, tp)
                            : StrategyConfig::zero(stage);
             },
             [kind](const StrategyConfig &c) {
                 return c.kind == kind && c.offload == OffloadTarget::None;
             },
             [](const StrategyConfig &c) -> std::unique_ptr<Strategy> {
                 if (c.isHybridZero())
                     return std::make_unique<HybridZeroStrategy>(c);
                 return std::make_unique<ZeroStrategy>(c);
             }});
    };
    auto zeroCpuEntry = [&](int stage, StrategyKind kind) {
        reg.push_back(
            {csprintf("zero%d-cpu", stage),
             csprintf("ZeRO-%d + CPU optimizer offload (ZeRO-Offload)",
                      stage),
             [stage](int, int) {
                 return StrategyConfig::zeroOffloadCpu(stage);
             },
             [kind](const StrategyConfig &c) {
                 return c.kind == kind && c.offload == OffloadTarget::Cpu;
             },
             makeStrategy<ZeroOffloadStrategy>});
    };

    reg.push_back({"ddp",
                   "PyTorch DDP (replicated states, gradient all-reduce)",
                   [](int, int) { return StrategyConfig::ddp(); },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Ddp;
                   },
                   makeStrategy<DdpStrategy>});
    reg.push_back({"megatron",
                   "Megatron-LM TP x PP (defaults TP=4, PP=1)",
                   [](int tp, int pp) {
                       return StrategyConfig::megatron(tp > 0 ? tp : 4,
                                                       pp > 0 ? pp : 1);
                   },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Megatron;
                   },
                   makeStrategy<MegatronStrategy>});
    zeroEntry(1, StrategyKind::Zero1);
    zeroEntry(2, StrategyKind::Zero2);
    zeroEntry(3, StrategyKind::Zero3);
    zeroCpuEntry(1, StrategyKind::Zero1);
    zeroCpuEntry(2, StrategyKind::Zero2);
    zeroCpuEntry(3, StrategyKind::Zero3);
    reg.push_back({"zero3-nvme",
                   "ZeRO-Infinity (NVMe optimizer offload)",
                   [](int, int) {
                       return StrategyConfig::zeroInfinityNvme(false);
                   },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Zero3 &&
                              c.offload == OffloadTarget::Nvme &&
                              !c.offload_params;
                   },
                   makeStrategy<ZeroInfinityStrategy>});
    reg.push_back({"zero3-nvme-params",
                   "ZeRO-Infinity (NVMe optimizer + parameter offload)",
                   [](int, int) {
                       return StrategyConfig::zeroInfinityNvme(true);
                   },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Zero3 &&
                              c.offload == OffloadTarget::Nvme &&
                              c.offload_params;
                   },
                   makeStrategy<ZeroInfinityStrategy>});
    reg.push_back({"fsdp",
                   "PyTorch FSDP (flat-param shards, prefetched gathers)",
                   [](int, int) { return StrategyConfig::fsdp(); },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Fsdp;
                   },
                   makeStrategy<FsdpStrategy>});
    reg.push_back({"moe",
                   "Expert parallelism (all-to-all dispatch; --experts)",
                   [](int, int) { return StrategyConfig::moe(); },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Moe;
                   },
                   makeStrategy<MoeStrategy>});
    reg.push_back({"hybrid3d",
                   "3D hybrid: TP x PP + ZeRO-sharded DP "
                   "(defaults TP=2, PP=2)",
                   [](int tp, int pp) {
                       return StrategyConfig::hybrid3d(tp > 0 ? tp : 2,
                                                       pp > 0 ? pp : 2);
                   },
                   [](const StrategyConfig &c) {
                       return c.kind == StrategyKind::Hybrid3d;
                   },
                   makeStrategy<Hybrid3dStrategy>});
}

/**
 * The registry with the builtins guaranteed present. Lazy (not a
 * namespace-scope initializer) so registration survives static
 * archive linking and ordering.
 */
std::vector<StrategyFactory> &
strategyRegistry()
{
    auto &reg = registrySlot();
    static bool builtins_done = (registerBuiltins(reg), true);
    (void)builtins_done;
    return reg;
}

} // namespace

std::unique_ptr<Strategy>
Strategy::create(const StrategyConfig &cfg)
{
    validateStrategy(cfg);
    for (const StrategyFactory &f : strategyRegistry())
        if (f.matches(cfg))
            return f.instantiate(cfg);
    panic("no strategy registered for kind %s",
          strategyKindName(cfg.kind));
}

void
Strategy::registerFactory(StrategyFactory factory)
{
    DSTRAIN_ASSERT(!factory.name.empty() && factory.configure &&
                       factory.matches && factory.instantiate,
                   "incomplete strategy factory");
    DSTRAIN_ASSERT(!find(factory.name),
                   "duplicate strategy name '%s'", factory.name.c_str());
    strategyRegistry().push_back(std::move(factory));
}

std::vector<std::string>
Strategy::names()
{
    std::vector<std::string> out;
    for (const StrategyFactory &f : strategyRegistry())
        out.push_back(f.name);
    return out;
}

const StrategyFactory *
Strategy::find(const std::string &name)
{
    for (const StrategyFactory &f : strategyRegistry())
        if (f.name == name)
            return &f;
    return nullptr;
}

int
planBlocks(const TransformerConfig &model, const PlanTuning &tuning)
{
    return std::max(1, std::min(model.layers, tuning.max_blocks));
}

Flops
dpForwardFlopsPerRank(const PlanContext &ctx)
{
    const std::int64_t tokens_per_rank =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len;
    return forwardFlops(ctx.model, tokens_per_rank);
}

void
buildDataParallelCompute(IterationPlan &plan, const PlanContext &ctx,
                         std::vector<std::vector<int>> &fwd_blocks,
                         std::vector<std::vector<int>> &bwd_blocks)
{
    const int n = ctx.cluster.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const Flops fwd_rank = dpForwardFlopsPerRank(ctx);
    const Flops fwd_block = fwd_rank / blocks;
    const Flops bwd_block = 3.0 * fwd_block;  // recompute + backward

    fwd_blocks.assign(static_cast<std::size_t>(n), {});
    bwd_blocks.assign(static_cast<std::size_t>(n), {});
    for (int r = 0; r < n; ++r) {
        int prev = -1;
        for (int b = 0; b < blocks; ++b) {
            std::vector<int> deps;
            if (prev >= 0)
                deps.push_back(prev);
            prev = plan.gpuCompute(r, fwd_block, ComputePhase::Forward,
                                   std::move(deps),
                                   csprintf("fwd r%d b%d", r, b));
            fwd_blocks[static_cast<std::size_t>(r)].push_back(prev);
        }
        for (int b = 0; b < blocks; ++b) {
            std::vector<int> deps = {prev};
            prev = plan.gpuCompute(r, bwd_block, ComputePhase::Backward,
                                   std::move(deps),
                                   csprintf("bwd r%d b%d", r, b));
            bwd_blocks[static_cast<std::size_t>(r)].push_back(prev);
        }
    }
}

} // namespace dstrain
