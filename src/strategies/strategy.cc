/**
 * @file
 * Strategy base implementation, factory, and shared plan helpers.
 */

#include "strategies/strategy.hh"

#include <algorithm>

#include "model/flops.hh"
#include "strategies/ddp.hh"
#include "strategies/hybrid_zero.hh"
#include "strategies/megatron.hh"
#include "strategies/zero.hh"
#include "strategies/zero_infinity.hh"
#include "strategies/zero_offload.hh"
#include "util/logging.hh"

namespace dstrain {

std::int64_t
PlanContext::globalTokens() const
{
    return static_cast<std::int64_t>(batch_per_gpu) * model.seq_len *
           cluster.spec().totalGpus();
}

Strategy::Strategy(StrategyConfig cfg)
    : cfg_(cfg)
{
    validateStrategy(cfg_);
}

std::unique_ptr<Strategy>
Strategy::create(const StrategyConfig &cfg)
{
    validateStrategy(cfg);
    switch (cfg.kind) {
      case StrategyKind::Ddp:
        return std::make_unique<DdpStrategy>(cfg);
      case StrategyKind::Megatron:
        return std::make_unique<MegatronStrategy>(cfg);
      case StrategyKind::Zero1:
      case StrategyKind::Zero2:
      case StrategyKind::Zero3:
        if (cfg.isHybridZero())
            return std::make_unique<HybridZeroStrategy>(cfg);
        if (cfg.offload == OffloadTarget::Cpu)
            return std::make_unique<ZeroOffloadStrategy>(cfg);
        if (cfg.offload == OffloadTarget::Nvme)
            return std::make_unique<ZeroInfinityStrategy>(cfg);
        return std::make_unique<ZeroStrategy>(cfg);
    }
    panic("unknown StrategyKind %d", static_cast<int>(cfg.kind));
}

int
planBlocks(const TransformerConfig &model, const PlanTuning &tuning)
{
    return std::max(1, std::min(model.layers, tuning.max_blocks));
}

Flops
dpForwardFlopsPerRank(const PlanContext &ctx)
{
    const std::int64_t tokens_per_rank =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len;
    return forwardFlops(ctx.model, tokens_per_rank);
}

void
buildDataParallelCompute(IterationPlan &plan, const PlanContext &ctx,
                         std::vector<std::vector<int>> &fwd_blocks,
                         std::vector<std::vector<int>> &bwd_blocks)
{
    const int n = ctx.cluster.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const Flops fwd_rank = dpForwardFlopsPerRank(ctx);
    const Flops fwd_block = fwd_rank / blocks;
    const Flops bwd_block = 3.0 * fwd_block;  // recompute + backward

    fwd_blocks.assign(static_cast<std::size_t>(n), {});
    bwd_blocks.assign(static_cast<std::size_t>(n), {});
    for (int r = 0; r < n; ++r) {
        int prev = -1;
        for (int b = 0; b < blocks; ++b) {
            std::vector<int> deps;
            if (prev >= 0)
                deps.push_back(prev);
            prev = plan.gpuCompute(r, fwd_block, ComputePhase::Forward,
                                   std::move(deps),
                                   csprintf("fwd r%d b%d", r, b));
            fwd_blocks[static_cast<std::size_t>(r)].push_back(prev);
        }
        for (int b = 0; b < blocks; ++b) {
            std::vector<int> deps = {prev};
            prev = plan.gpuCompute(r, bwd_block, ComputePhase::Backward,
                                   std::move(deps),
                                   csprintf("bwd r%d b%d", r, b));
            bwd_blocks[static_cast<std::size_t>(r)].push_back(prev);
        }
    }
}

} // namespace dstrain
