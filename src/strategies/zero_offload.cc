/**
 * @file
 * Implementation of the ZeRO-Offload plan builders.
 */

#include "strategies/zero_offload.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

ZeroOffloadStrategy::ZeroOffloadStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.offload == OffloadTarget::Cpu,
                   "ZeroOffloadStrategy requires CPU offload");
}

IterationPlan
ZeroOffloadStrategy::buildIteration(const PlanContext &ctx) const
{
    return cfg_.kind == StrategyKind::Zero3 ? buildStage3(ctx)
                                            : buildStage12(ctx);
}

IterationPlan
ZeroOffloadStrategy::buildStage12(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const Cluster &cl = ctx.cluster;
    const int n = cl.spec().totalGpus();
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes grad_bytes = 2.0 * params;
    const Bytes shard_grad = grad_bytes / n;
    const Bytes shard_param = 2.0 * params / n;

    std::vector<std::vector<int>> fwd;
    std::vector<std::vector<int>> bwd;
    buildDataParallelCompute(plan, ctx, fwd, bwd);
    const int blocks = static_cast<int>(fwd[0].size());

    const CollectiveOp grad_op = cfg_.kind == StrategyKind::Zero1
                                     ? CollectiveOp::AllReduce
                                     : CollectiveOp::ReduceScatter;
    const int buckets = std::min(ctx.tuning.grad_buckets, blocks);

    // Gradient reduction + shard download, bucket by bucket, after
    // the backward pass (see ZeroStrategy::buildStage12). ZeRO-2
    // pipelines the host downloads against later buckets; ZeRO-1
    // (which all-reduces full gradients) downloads only after the
    // full reduction — the reason it trails ZeRO-2 in Fig. 11-a.
    std::vector<std::vector<int>> rank_downloads(
        static_cast<std::size_t>(n));
    int prev_red = -1;
    std::vector<int> reductions;
    for (int k = 0; k < buckets; ++k) {
        const int b_end = ctx.tuning.overlap_grad_reduction
                              ? (k + 1) * blocks / buckets
                              : blocks;
        std::vector<int> deps;
        for (int r = 0; r < n; ++r)
            deps.push_back(bwd[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(b_end - 1)]);
        if (prev_red >= 0)
            deps.push_back(prev_red);
        prev_red = plan.collective(grad_op, CommGroup::worldOf(n),
                                   grad_bytes / buckets, std::move(deps),
                                   csprintf("zoff grad bucket %d", k));
        reductions.push_back(prev_red);

        if (cfg_.kind == StrategyKind::Zero2) {
            for (int r = 0; r < n; ++r) {
                rank_downloads[static_cast<std::size_t>(r)].push_back(
                    plan.hostTransfer(
                        r, shard_grad / buckets, /*to_host=*/true,
                        {prev_red},
                        csprintf("grad dl r%d k%d", r, k)));
            }
        }
    }
    if (cfg_.kind == StrategyKind::Zero1) {
        for (int r = 0; r < n; ++r) {
            rank_downloads[static_cast<std::size_t>(r)].push_back(
                plan.hostTransfer(r, shard_grad, /*to_host=*/true,
                                  {prev_red},
                                  csprintf("grad dl r%d", r)));
        }
    }

    // CPU Adam per rank shard on the rank's socket, then parameter
    // upload and the closing all-gather.
    std::vector<int> uploads;
    for (int r = 0; r < n; ++r) {
        const int node = cl.nodeOfRank(r);
        const int socket =
            gpuSocket(cl.nodeSpec(node), cl.localOfRank(r));
        const int adam = plan.cpuOptimizer(
            node, socket, params / n,
            rank_downloads[static_cast<std::size_t>(r)],
            csprintf("cpu adam r%d", r));
        uploads.push_back(plan.hostTransfer(
            r, shard_param, /*to_host=*/false, {adam},
            csprintf("param ul r%d", r)));
    }
    plan.collective(CollectiveOp::AllGather, CommGroup::worldOf(n),
                    2.0 * params, std::move(uploads),
                    "zoff param all-gather");

    plan.validate();
    return plan;
}

IterationPlan
ZeroOffloadStrategy::buildStage3(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const Cluster &cl = ctx.cluster;
    const int n = cl.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes param_block = 2.0 * params / blocks;
    const Bytes grad_block = 2.0 * params / blocks;
    const Flops fwd_block = dpForwardFlopsPerRank(ctx) / blocks;

    // Stage-3 forward/backward with just-in-time parameter gathers
    // (as in ZeroStrategy), plus per-block gradient-shard downloads.
    std::vector<int> last(static_cast<std::size_t>(n), -1);
    int prev_ag = -1;
    for (int b = 0; b < blocks; ++b) {
        // Prefetch depth 1, as in ZeroStrategy::buildStage3.
        std::vector<int> ag_deps;
        if (prev_ag >= 0)
            ag_deps.push_back(prev_ag);
        for (int r = 0; r < n; ++r)
            if (last[static_cast<std::size_t>(r)] >= 0)
                ag_deps.push_back(last[static_cast<std::size_t>(r)]);
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("z3off fwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag};
            if (last[static_cast<std::size_t>(r)] >= 0)
                deps.push_back(last[static_cast<std::size_t>(r)]);
            last[static_cast<std::size_t>(r)] =
                plan.gpuCompute(r, fwd_block, ComputePhase::Forward,
                                std::move(deps),
                                csprintf("fwd r%d b%d", r, b));
        }
    }
    std::vector<std::vector<int>> downloads(static_cast<std::size_t>(n));
    int prev_rs = -1;
    for (int b = blocks - 1; b >= 0; --b) {
        std::vector<int> ag_deps = {prev_ag};
        for (int r = 0; r < n; ++r)
            ag_deps.push_back(last[static_cast<std::size_t>(r)]);
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("z3off bwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        std::vector<int> block_tasks;
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag,
                                     last[static_cast<std::size_t>(r)]};
            last[static_cast<std::size_t>(r)] = plan.gpuCompute(
                r, 3.0 * fwd_block, ComputePhase::Backward,
                std::move(deps), csprintf("bwd r%d b%d", r, b));
            block_tasks.push_back(last[static_cast<std::size_t>(r)]);
        }
        if (prev_rs >= 0)
            block_tasks.push_back(prev_rs);
        prev_rs = plan.collective(CollectiveOp::ReduceScatter,
                                  CommGroup::worldOf(n), grad_block,
                                  std::move(block_tasks),
                                  csprintf("z3off rs b%d", b));
        for (int r = 0; r < n; ++r) {
            downloads[static_cast<std::size_t>(r)].push_back(
                plan.hostTransfer(r, grad_block / n, /*to_host=*/true,
                                  {prev_rs},
                                  csprintf("grad dl r%d b%d", r, b)));
        }
    }

    // Host Adam per shard; updated fp16 shards return to the GPUs
    // (the next iteration's gathers redistribute them).
    for (int r = 0; r < n; ++r) {
        const int node = cl.nodeOfRank(r);
        const int socket =
            gpuSocket(cl.nodeSpec(node), cl.localOfRank(r));
        const int adam = plan.cpuOptimizer(
            node, socket, params / n,
            downloads[static_cast<std::size_t>(r)],
            csprintf("cpu adam r%d", r));
        plan.hostTransfer(r, 2.0 * params / n, /*to_host=*/false,
                          {adam}, csprintf("param ul r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
