/**
 * @file
 * Implementation of the hybrid ZeRO + tensor-parallel plan builder.
 */

#include "strategies/hybrid_zero.hh"

#include <algorithm>

#include "model/flops.hh"
#include "util/logging.hh"

namespace dstrain {

HybridZeroStrategy::HybridZeroStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.isHybridZero(),
                   "HybridZeroStrategy requires ZeRO-1/2 with TP > 1");
}

IterationPlan
HybridZeroStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int tp = cfg_.tensor_parallel;
    const int dp = cfg_.dataParallelSize(n);
    const double params =
        static_cast<double>(ctx.model.parameterCount());

    const std::int64_t tokens_replica =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len *
        tp;
    const Flops fwd_replica = forwardFlops(ctx.model, tokens_replica);
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const Flops fwd_rank_block = fwd_replica / tp / blocks;

    // Two activation all-reduces per layer per direction within the
    // TP group; recompute doubles the backward share (see megatron.cc).
    const Bytes act = static_cast<Bytes>(tokens_replica) *
                      ctx.model.hidden * 2.0;
    const Bytes ar_block =
        2.0 * act * ctx.model.layers / blocks;

    auto tp_group = [&](int g) {
        CommGroup grp;
        for (int t = 0; t < tp; ++t)
            grp.ranks.push_back(g * tp + t);
        return grp;
    };

    // ---- per-replica Megatron-style forward/backward ------------------
    std::vector<int> replica_done(static_cast<std::size_t>(dp), -1);
    for (int g = 0; g < dp; ++g) {
        int prev = -1;
        for (int phase = 0; phase < 2; ++phase) {
            const bool bwd = phase == 1;
            for (int b = 0; b < blocks; ++b) {
                std::vector<int> rank_tasks;
                for (int t = 0; t < tp; ++t) {
                    const int r = g * tp + t;
                    std::vector<int> deps;
                    if (prev >= 0)
                        deps.push_back(prev);
                    rank_tasks.push_back(plan.gpuCompute(
                        r,
                        (bwd ? 3.0 : 1.0) * fwd_rank_block,
                        bwd ? ComputePhase::Backward
                            : ComputePhase::Forward,
                        std::move(deps),
                        csprintf("hyb %s g%d b%d r%d",
                                 bwd ? "bwd" : "fwd", g, b, r)));
                }
                prev = plan.collective(
                    CollectiveOp::AllReduce, tp_group(g),
                    (bwd ? 2.0 : 1.0) * ar_block, std::move(rank_tasks),
                    csprintf("hyb tp-ar g%d b%d", g, b));
            }
        }
        replica_done[static_cast<std::size_t>(g)] = prev;
    }

    // ---- ZeRO gradient handling across replicas ------------------------
    // Gradients per rank: 2 P / tp bytes, reduced over the dp ranks
    // holding the same tensor-parallel position.
    const CollectiveOp grad_op = cfg_.kind == StrategyKind::Zero1
                                     ? CollectiveOp::AllReduce
                                     : CollectiveOp::ReduceScatter;
    std::vector<int> reductions;
    if (dp == 1)
        reductions = replica_done;  // nothing to reduce across
    for (int t = 0; t < tp && dp > 1; ++t) {
        CommGroup pos_group;
        std::vector<int> deps;
        for (int g = 0; g < dp; ++g) {
            pos_group.ranks.push_back(g * tp + t);
            deps.push_back(replica_done[static_cast<std::size_t>(g)]);
        }
        reductions.push_back(plan.collective(
            grad_op, std::move(pos_group), 2.0 * params / tp,
            std::move(deps), csprintf("hyb grad red t%d", t)));
    }
    const int grads_ready = plan.barrier(std::move(reductions),
                                         "hyb grads ready");

    // ---- sharded optimizer + parameter all-gather ----------------------
    std::vector<int> opt_tasks;
    for (int r = 0; r < n; ++r) {
        opt_tasks.push_back(plan.gpuCompute(
            r, kGpuOptimizerFlopsPerParam * params / (tp * dp),
            ComputePhase::Optimizer, {grads_ready},
            csprintf("adam r%d", r)));
    }
    for (int t = 0; t < tp && dp > 1; ++t) {
        CommGroup pos_group;
        for (int g = 0; g < dp; ++g)
            pos_group.ranks.push_back(g * tp + t);
        plan.collective(CollectiveOp::AllGather, std::move(pos_group),
                        2.0 * params / tp, opt_tasks,
                        csprintf("hyb param ag t%d", t));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
