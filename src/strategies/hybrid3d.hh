/**
 * @file
 * 3D hybrid parallelism: Megatron-style tensor + pipeline model
 * parallelism inside each replica, with *ZeRO-sharded* data
 * parallelism across replicas — gradients reduce-scatter over the
 * DP axis, each rank updates a 1/(mp x dp) optimizer shard, and the
 * fresh fp16 parameters all-gather back (DeepSpeed's 3D strategy,
 * paper Sec. II-C). Generalizes HybridZeroStrategy (TP only) to the
 * full DP x TP x PP grid.
 */

#ifndef DSTRAIN_STRATEGIES_HYBRID3D_HH
#define DSTRAIN_STRATEGIES_HYBRID3D_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class Hybrid3dStrategy : public Strategy
{
  public:
    explicit Hybrid3dStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_HYBRID3D_HH
