/**
 * @file
 * DeepSpeed ZeRO-Infinity (paper Sec. V-B/V-E): ZeRO-3 with the
 * optimizer states swapped against NVMe storage, and optionally the
 * fp16 parameters as well. The optimizer phase becomes a per-rank
 * read -> CPU-Adam -> write pipeline against the rank's mapped NVMe
 * volume (paper Fig. 14's soft-link rank mapping), making NVMe
 * aggregate bandwidth — and the drives' socket placement — the
 * dominant throughput factor (paper Table VI).
 */

#ifndef DSTRAIN_STRATEGIES_ZERO_INFINITY_HH
#define DSTRAIN_STRATEGIES_ZERO_INFINITY_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class ZeroInfinityStrategy : public Strategy
{
  public:
    explicit ZeroInfinityStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_ZERO_INFINITY_HH
