/**
 * @file
 * Implementation of the 3D hybrid (DP x TP x PP + ZeRO) plan builder.
 */

#include "strategies/hybrid3d.hh"

#include <algorithm>

#include "model/flops.hh"
#include "util/logging.hh"

namespace dstrain {

Hybrid3dStrategy::Hybrid3dStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Hybrid3d,
                   "wrong config kind");
}

IterationPlan
Hybrid3dStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int tp = cfg_.tensor_parallel;
    const int pp = cfg_.pipeline_parallel;
    const int mp = tp * pp;
    const int dp = cfg_.dataParallelSize(n);
    const double params =
        static_cast<double>(ctx.model.parameterCount());

    // Same GPipe schedule as MegatronStrategy: replica g on ranks
    // [g*mp, (g+1)*mp), pp micro-batches, tp ranks per stage in
    // lockstep with activation all-reduces.
    const int microbatches = std::max(1, pp);
    const std::int64_t tokens_replica =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len *
        mp;
    const std::int64_t tokens_mb = tokens_replica / microbatches;
    const Flops fwd_mb = forwardFlops(ctx.model, tokens_mb);

    const int layers_per_stage =
        std::max(1, ctx.model.layers / std::max(1, pp));
    const int sub_blocks = std::clamp(
        ctx.tuning.max_blocks / std::max(1, pp * microbatches), 1,
        layers_per_stage);

    const Bytes act_mb = static_cast<Bytes>(tokens_mb) * ctx.model.hidden *
                         2.0;
    const Bytes ar_per_subblock =
        2.0 * act_mb * layers_per_stage / sub_blocks;
    const Flops fwd_rank_sb = fwd_mb / mp / sub_blocks;

    auto stage_ranks = [&](int g, int s) {
        CommGroup grp;
        for (int t = 0; t < tp; ++t)
            grp.ranks.push_back(g * mp + s * tp + t);
        return grp;
    };
    const auto idx = [&](int s, int m) {
        return static_cast<std::size_t>(s) *
                   static_cast<std::size_t>(microbatches) +
               static_cast<std::size_t>(m);
    };
    std::vector<std::vector<int>> fwd_done(
        static_cast<std::size_t>(dp),
        std::vector<int>(static_cast<std::size_t>(pp * microbatches),
                         -1));
    std::vector<std::vector<int>> bwd_done = fwd_done;

    for (int g = 0; g < dp; ++g) {
        for (int s = 0; s < pp; ++s) {
            for (int m = 0; m < microbatches; ++m) {
                std::vector<int> cell_deps;
                if (s > 0)
                    cell_deps.push_back(fwd_done[g][idx(s - 1, m)]);
                if (m > 0)
                    cell_deps.push_back(fwd_done[g][idx(s, m - 1)]);

                int prev = -1;
                for (int b = 0; b < sub_blocks; ++b) {
                    std::vector<int> comp_deps = cell_deps;
                    if (prev >= 0)
                        comp_deps = {prev};
                    std::vector<int> rank_tasks;
                    for (int t = 0; t < tp; ++t) {
                        const int r = g * mp + s * tp + t;
                        rank_tasks.push_back(plan.gpuCompute(
                            r, fwd_rank_sb, ComputePhase::Forward,
                            comp_deps,
                            csprintf("h3d fwd g%d s%d m%d b%d r%d", g, s,
                                     m, b, r)));
                    }
                    if (tp > 1) {
                        prev = plan.collective(
                            CollectiveOp::AllReduce, stage_ranks(g, s),
                            ar_per_subblock, std::move(rank_tasks),
                            csprintf("h3d tp-ar fwd g%d s%d m%d b%d", g,
                                     s, m, b));
                    } else {
                        prev = plan.barrier(std::move(rank_tasks),
                                            "h3d fwd sync");
                    }
                }
                fwd_done[g][idx(s, m)] = prev;
            }
        }

        for (int s = pp - 1; s >= 0; --s) {
            for (int m = 0; m < microbatches; ++m) {
                std::vector<int> cell_deps = {
                    fwd_done[g][idx(pp - 1, microbatches - 1)]};
                if (s < pp - 1)
                    cell_deps.push_back(bwd_done[g][idx(s + 1, m)]);
                if (m > 0)
                    cell_deps.push_back(bwd_done[g][idx(s, m - 1)]);

                int prev = -1;
                for (int b = 0; b < sub_blocks; ++b) {
                    std::vector<int> comp_deps = cell_deps;
                    if (prev >= 0)
                        comp_deps = {prev};
                    std::vector<int> rank_tasks;
                    for (int t = 0; t < tp; ++t) {
                        const int r = g * mp + s * tp + t;
                        rank_tasks.push_back(plan.gpuCompute(
                            r, 3.0 * fwd_rank_sb, ComputePhase::Backward,
                            comp_deps,
                            csprintf("h3d bwd g%d s%d m%d b%d r%d", g, s,
                                     m, b, r)));
                    }
                    if (tp > 1) {
                        // Recompute re-runs the forward all-reduces.
                        prev = plan.collective(
                            CollectiveOp::AllReduce, stage_ranks(g, s),
                            2.0 * ar_per_subblock, std::move(rank_tasks),
                            csprintf("h3d tp-ar bwd g%d s%d m%d b%d", g,
                                     s, m, b));
                    } else {
                        prev = plan.barrier(std::move(rank_tasks),
                                            "h3d bwd sync");
                    }
                }
                bwd_done[g][idx(s, m)] = prev;
            }
        }
    }

    // ZeRO across the DP axis: per model-parallel position, the dp
    // replicas holding the same shard reduce-scatter their gradients
    // (instead of Megatron's all-reduce), update 1/dp of the shard's
    // optimizer states each, and all-gather the fresh parameters.
    std::vector<int> grads_ready;
    for (int g = 0; g < dp; ++g)
        grads_ready.push_back(bwd_done[g][idx(0, microbatches - 1)]);
    int opt_dep = plan.barrier(grads_ready, "h3d grads ready");

    auto dp_group = [&](int pos) {
        CommGroup grp;
        for (int g = 0; g < dp; ++g)
            grp.ranks.push_back(g * mp + pos);
        return grp;
    };
    if (dp > 1) {
        std::vector<int> rss;
        for (int pos = 0; pos < mp; ++pos) {
            rss.push_back(plan.collective(
                CollectiveOp::ReduceScatter, dp_group(pos),
                2.0 * params / mp, {opt_dep},
                csprintf("h3d dp-rs pos%d", pos)));
        }
        opt_dep = plan.barrier(std::move(rss), "h3d dp-rs done");
    }

    // Each rank owns 1/(mp x dp) of the optimizer states.
    std::vector<int> opt_tasks;
    for (int r = 0; r < n; ++r) {
        opt_tasks.push_back(plan.gpuCompute(
            r, kGpuOptimizerFlopsPerParam * params / (mp * dp),
            ComputePhase::Optimizer, {opt_dep}, csprintf("adam r%d", r)));
    }

    if (dp > 1) {
        const int opt_done = plan.barrier(std::move(opt_tasks),
                                          "h3d opt done");
        for (int pos = 0; pos < mp; ++pos) {
            plan.collective(CollectiveOp::AllGather, dp_group(pos),
                            2.0 * params / mp, {opt_done},
                            csprintf("h3d dp-ag pos%d", pos));
        }
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
