/**
 * @file
 * Implementation of the FSDP plan builder.
 */

#include "strategies/fsdp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

FsdpStrategy::FsdpStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Fsdp, "wrong config kind");
}

IterationPlan
FsdpStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const int prefetch = std::max(1, ctx.tuning.fsdp_prefetch);
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes param_block = 2.0 * params / blocks;
    const Bytes grad_block = 2.0 * params / blocks;
    const Flops fwd_block = dpForwardFlopsPerRank(ctx) / blocks;
    const Flops bwd_block = 3.0 * fwd_block;

    // Forward: gather each block's flat parameter ahead of use. The
    // gather of block b waits only on the gather chain and on block
    // b-1-prefetch's compute — so with the default window of 2, up to
    // two gathered-but-unconsumed blocks are in flight and the gather
    // of block L+1 runs concurrently with block L's compute.
    std::vector<std::vector<int>> fwd(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(blocks), -1));
    int prev_ag = -1;
    for (int b = 0; b < blocks; ++b) {
        std::vector<int> ag_deps;
        if (prev_ag >= 0)
            ag_deps.push_back(prev_ag);
        const int gate = b - 1 - prefetch;
        if (gate >= 0) {
            for (int r = 0; r < n; ++r)
                ag_deps.push_back(fwd[static_cast<std::size_t>(r)]
                                     [static_cast<std::size_t>(gate)]);
        }
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("fsdp fwd ag b%d", b));
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag};
            if (b > 0)
                deps.push_back(fwd[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(b - 1)]);
            fwd[static_cast<std::size_t>(r)]
               [static_cast<std::size_t>(b)] = plan.gpuCompute(
                r, fwd_block, ComputePhase::Forward, std::move(deps),
                csprintf("fwd r%d b%d", r, b));
        }
    }

    // Backward (reverse block order): parameters resharded after the
    // forward, so each block re-gathers — same prefetch window,
    // gated on the backward compute prefetch blocks ahead. Each
    // block's gradient reduce-scatters as soon as its backward
    // completes.
    std::vector<int> last_bwd(static_cast<std::size_t>(n), -1);
    for (int r = 0; r < n; ++r)
        last_bwd[static_cast<std::size_t>(r)] =
            fwd[static_cast<std::size_t>(r)]
               [static_cast<std::size_t>(blocks - 1)];
    std::vector<std::vector<int>> bwd(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(blocks), -1));
    int prev_rs = -1;
    for (int b = blocks - 1; b >= 0; --b) {
        std::vector<int> ag_deps = {prev_ag};
        const int gate = b + 1 + prefetch;
        if (gate <= blocks - 1) {
            // Block `gate` runs prefetch+1 backward steps before
            // block b, bounding the number of gathered shards live.
            for (int r = 0; r < n; ++r)
                ag_deps.push_back(bwd[static_cast<std::size_t>(r)]
                                     [static_cast<std::size_t>(gate)]);
        }
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("fsdp bwd ag b%d", b));
        std::vector<int> block_tasks;
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {
                prev_ag, last_bwd[static_cast<std::size_t>(r)]};
            last_bwd[static_cast<std::size_t>(r)] = plan.gpuCompute(
                r, bwd_block, ComputePhase::Backward, std::move(deps),
                csprintf("bwd r%d b%d", r, b));
            block_tasks.push_back(last_bwd[static_cast<std::size_t>(r)]);
            bwd[static_cast<std::size_t>(r)]
               [static_cast<std::size_t>(b)] =
                last_bwd[static_cast<std::size_t>(r)];
        }
        if (prev_rs >= 0)
            block_tasks.push_back(prev_rs);
        prev_rs = plan.collective(CollectiveOp::ReduceScatter,
                                  CommGroup::worldOf(n), grad_block,
                                  std::move(block_tasks),
                                  csprintf("fsdp rs b%d", b));
    }

    // Optimizer on each rank's 1/N shard; parameters stay sharded.
    for (int r = 0; r < n; ++r) {
        plan.gpuCompute(r, kGpuOptimizerFlopsPerParam * params / n,
                        ComputePhase::Optimizer, {prev_rs},
                        csprintf("adam r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
