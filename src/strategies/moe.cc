/**
 * @file
 * Implementation of the MoE expert-parallel plan builder.
 */

#include "strategies/moe.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

MoeStrategy::MoeStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Moe, "wrong config kind");
}

int
MoeStrategy::expertParallelSize(int total_gpus) const
{
    const int ep = cfg_.experts > 0 ? std::min(cfg_.experts, total_gpus)
                                    : total_gpus;
    DSTRAIN_ASSERT(total_gpus % ep == 0,
                   "GPU count %d not divisible by expert-parallel size %d",
                   total_gpus, ep);
    return ep;
}

IterationPlan
MoeStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int ep = expertParallelSize(n);
    const int groups = n / ep;
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Flops fwd_block = dpForwardFlopsPerRank(ctx) / blocks;
    const Flops bwd_block = 3.0 * fwd_block;

    // Per-rank token activations routed per layer: every token's
    // hidden vector crosses the group twice per MoE layer (dispatch
    // to its expert, combine back), fp16.
    const std::int64_t tokens_rank =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len;
    const Bytes a2a_block = static_cast<Bytes>(tokens_rank) *
                            ctx.model.hidden * 2.0 * ctx.model.layers /
                            blocks;

    // Expert group g = ranks [g*ep, (g+1)*ep).
    auto expert_group = [&](int g) {
        CommGroup grp;
        for (int j = 0; j < ep; ++j)
            grp.ranks.push_back(g * ep + j);
        return grp;
    };

    // Forward / backward: dense compute per block with the block's
    // dispatch + combine all-to-alls chained behind it (paper-era
    // DeepSpeed does not overlap the routing exchange with compute).
    std::vector<int> tail(static_cast<std::size_t>(n), -1);
    auto phase_blocks = [&](ComputePhase phase, Flops block_flops,
                            const char *tag) {
        for (int b = 0; b < blocks; ++b) {
            std::vector<std::vector<int>> group_tasks(
                static_cast<std::size_t>(groups));
            for (int r = 0; r < n; ++r) {
                std::vector<int> deps;
                if (tail[static_cast<std::size_t>(r)] >= 0)
                    deps.push_back(tail[static_cast<std::size_t>(r)]);
                const int t = plan.gpuCompute(
                    r, block_flops, phase, std::move(deps),
                    csprintf("%s r%d b%d", tag, r, b));
                tail[static_cast<std::size_t>(r)] = t;
                group_tasks[static_cast<std::size_t>(r / ep)].push_back(t);
            }
            if (ep < 2)
                continue;
            for (int g = 0; g < groups; ++g) {
                const int dispatch = plan.collective(
                    CollectiveOp::AllToAll, expert_group(g), a2a_block,
                    std::move(group_tasks[static_cast<std::size_t>(g)]),
                    csprintf("moe %s dispatch g%d b%d", tag, g, b));
                const int combine = plan.collective(
                    CollectiveOp::AllToAll, expert_group(g), a2a_block,
                    {dispatch},
                    csprintf("moe %s combine g%d b%d", tag, g, b));
                for (int j = 0; j < ep; ++j)
                    tail[static_cast<std::size_t>(g * ep + j)] = combine;
            }
        }
    };
    phase_blocks(ComputePhase::Forward, fwd_block, "fwd");
    phase_blocks(ComputePhase::Backward, bwd_block, "bwd");

    // Shared (attention/embedding) gradients all-reduce over the
    // whole world, bucketed and launched after the backward pass.
    const Bytes shared_grads = 2.0 * params * kMoeSharedFraction;
    const int buckets = std::min(ctx.tuning.grad_buckets, blocks);
    int prev = plan.barrier(tail, "moe grads ready");
    if (n > 1) {
        for (int k = 0; k < buckets; ++k) {
            prev = plan.collective(CollectiveOp::AllReduce,
                                   CommGroup::worldOf(n),
                                   shared_grads / buckets, {prev},
                                   csprintf("moe grad bucket %d", k));
        }
    }

    // Expert gradients: local to the group, but replicated across the
    // `groups` expert-group replicas — all-reduce per expert position.
    if (groups > 1) {
        std::vector<int> ars;
        const Bytes expert_grads_rank =
            2.0 * params * (1.0 - kMoeSharedFraction) / ep;
        for (int j = 0; j < ep; ++j) {
            CommGroup grp;
            for (int g = 0; g < groups; ++g)
                grp.ranks.push_back(g * ep + j);
            ars.push_back(plan.collective(
                CollectiveOp::AllReduce, std::move(grp),
                expert_grads_rank, {prev},
                csprintf("moe expert-ar pos%d", j)));
        }
        prev = plan.barrier(std::move(ars), "moe expert-ar done");
    }

    // Local optimizer: the full shared set (replicated) plus this
    // rank's expert slice.
    const double opt_params = params * kMoeSharedFraction +
                              params * (1.0 - kMoeSharedFraction) / ep;
    for (int r = 0; r < n; ++r) {
        plan.gpuCompute(r, kGpuOptimizerFlopsPerParam * opt_params,
                        ComputePhase::Optimizer, {prev},
                        csprintf("adam r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
