/**
 * @file
 * Implementation of the iteration plan.
 */

#include "strategies/iteration_plan.hh"

#include "util/logging.hh"

namespace dstrain {

const char *
taskKindName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::GpuCompute:
        return "gpu-compute";
      case TaskKind::Collective:
        return "collective";
      case TaskKind::HostTransfer:
        return "host-transfer";
      case TaskKind::CpuOptimizer:
        return "cpu-optimizer";
      case TaskKind::NvmeIo:
        return "nvme-io";
      case TaskKind::Barrier:
        return "barrier";
    }
    panic("unknown TaskKind %d", static_cast<int>(kind));
}

const char *
computePhaseName(ComputePhase phase)
{
    switch (phase) {
      case ComputePhase::Forward:
        return "fwd";
      case ComputePhase::Backward:
        return "bwd";
      case ComputePhase::Optimizer:
        return "opt";
      case ComputePhase::Communication:
        return "comm";
      case ComputePhase::Io:
        return "io";
      case ComputePhase::Idle:
        return "idle";
    }
    panic("unknown ComputePhase %d", static_cast<int>(phase));
}

int
IterationPlan::add(PlanTask task)
{
    task.id = static_cast<int>(tasks_.size());
    for (int dep : task.deps) {
        DSTRAIN_ASSERT(dep >= 0 && dep < task.id,
                       "task '%s' depends on invalid/future task %d",
                       task.label.c_str(), dep);
    }
    tasks_.push_back(std::move(task));
    return tasks_.back().id;
}

Flops
IterationPlan::totalGpuFlops() const
{
    Flops total = 0.0;
    for (const PlanTask &t : tasks_)
        if (t.kind == TaskKind::GpuCompute)
            total += t.flops;
    return total;
}

Bytes
IterationPlan::totalCollectiveBytes() const
{
    Bytes total = 0.0;
    for (const PlanTask &t : tasks_)
        if (t.kind == TaskKind::Collective)
            total += t.bytes;
    return total;
}

void
IterationPlan::validate() const
{
    // add() already enforces dep < id, which makes cycles impossible;
    // here we check per-kind field sanity.
    for (const PlanTask &t : tasks_) {
        switch (t.kind) {
          case TaskKind::GpuCompute:
            DSTRAIN_ASSERT(t.rank >= 0 && t.flops > 0.0,
                           "bad compute task '%s'", t.label.c_str());
            break;
          case TaskKind::Collective:
            DSTRAIN_ASSERT(t.group.size() >= 2 && t.bytes > 0.0,
                           "bad collective task '%s'", t.label.c_str());
            break;
          case TaskKind::HostTransfer:
            DSTRAIN_ASSERT(t.rank >= 0 && t.bytes > 0.0,
                           "bad host transfer '%s'", t.label.c_str());
            break;
          case TaskKind::CpuOptimizer:
            DSTRAIN_ASSERT(t.node >= 0 && t.socket >= 0 &&
                               t.cpu_params > 0.0,
                           "bad cpu optimizer task '%s'",
                           t.label.c_str());
            break;
          case TaskKind::NvmeIo:
            DSTRAIN_ASSERT(t.rank >= 0 && t.volume >= 0 && t.bytes > 0.0,
                           "bad nvme io task '%s'", t.label.c_str());
            break;
          case TaskKind::Barrier:
            break;
        }
    }
}

int
IterationPlan::gpuCompute(int rank, Flops flops, ComputePhase phase,
                          std::vector<int> deps, std::string label)
{
    PlanTask t;
    t.kind = TaskKind::GpuCompute;
    t.phase = phase;
    t.rank = rank;
    t.flops = flops;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

int
IterationPlan::collective(CollectiveOp op, CommGroup group, Bytes bytes,
                          std::vector<int> deps, std::string label,
                          bool pin_channels, SimTime extra_latency,
                          double bw_factor, CollectiveAlgo algo)
{
    PlanTask t;
    t.kind = TaskKind::Collective;
    t.extra_latency = extra_latency;
    t.comm_bw_factor = bw_factor;
    t.algo = algo;
    t.phase = ComputePhase::Communication;
    t.op = op;
    t.group = std::move(group);
    t.bytes = bytes;
    t.pin_channels = pin_channels;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

int
IterationPlan::hostTransfer(int rank, Bytes bytes, bool to_host,
                            std::vector<int> deps, std::string label)
{
    PlanTask t;
    t.kind = TaskKind::HostTransfer;
    t.phase = ComputePhase::Communication;
    t.rank = rank;
    t.bytes = bytes;
    t.to_host = to_host;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

int
IterationPlan::cpuOptimizer(int node, int socket, double params,
                            std::vector<int> deps, std::string label)
{
    PlanTask t;
    t.kind = TaskKind::CpuOptimizer;
    t.phase = ComputePhase::Optimizer;
    t.node = node;
    t.socket = socket;
    t.cpu_params = params;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

int
IterationPlan::nvmeIo(int rank, int volume, Bytes bytes, bool write,
                      std::vector<int> deps, std::string label)
{
    PlanTask t;
    t.kind = TaskKind::NvmeIo;
    t.phase = ComputePhase::Io;
    t.rank = rank;
    t.volume = volume;
    t.bytes = bytes;
    t.io_write = write;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

int
IterationPlan::barrier(std::vector<int> deps, std::string label)
{
    PlanTask t;
    t.kind = TaskKind::Barrier;
    t.deps = std::move(deps);
    t.label = std::move(label);
    return add(std::move(t));
}

} // namespace dstrain
