/**
 * @file
 * Megatron-LM tensor/pipeline model parallelism (paper Sec. II-B).
 *
 * The cluster's GPUs are split into model-parallel groups of
 * tp x pp consecutive ranks; the remaining factor is data
 * parallelism. Each transformer layer runs two tensor-parallel
 * all-reduces of the activation in the forward pass and two in the
 * backward pass (the f/g conjugate operators of the Megatron paper);
 * pipeline stages exchange boundary activations point-to-point; data
 * parallel replicas all-reduce gradients at the end.
 *
 * On the paper's dual-node runs the tensor-parallel group spans both
 * nodes, so the per-layer all-reduces ride RoCE — the cause of the
 * 0.19x-of-DDP throughput collapse (Sec. IV-C2).
 */

#ifndef DSTRAIN_STRATEGIES_MEGATRON_HH
#define DSTRAIN_STRATEGIES_MEGATRON_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class MegatronStrategy : public Strategy
{
  public:
    explicit MegatronStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_MEGATRON_HH
