/**
 * @file
 * Implementation of the Megatron-LM plan builder.
 */

#include "strategies/megatron.hh"

#include <algorithm>

#include "model/flops.hh"
#include "util/logging.hh"

namespace dstrain {

MegatronStrategy::MegatronStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Megatron,
                   "wrong config kind");
}

IterationPlan
MegatronStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const int tp = cfg_.tensor_parallel;
    const int pp = cfg_.pipeline_parallel;
    const int mp = tp * pp;
    const int dp = cfg_.dataParallelSize(n);
    const double params =
        static_cast<double>(ctx.model.parameterCount());

    // Per-GPU batch 16 => each model-parallel replica processes
    // 16 x mp sequences, split into pp micro-batches (GPipe-style).
    const int microbatches = std::max(1, pp);
    const std::int64_t tokens_replica =
        static_cast<std::int64_t>(ctx.batch_per_gpu) * ctx.model.seq_len *
        mp;
    const std::int64_t tokens_mb = tokens_replica / microbatches;
    const Flops fwd_mb = forwardFlops(ctx.model, tokens_mb);

    const int layers_per_stage =
        std::max(1, ctx.model.layers / std::max(1, pp));
    // Sub-blocks per (stage, microbatch), bounded by the tuning.
    const int sub_blocks = std::clamp(
        ctx.tuning.max_blocks / std::max(1, pp * microbatches), 1,
        layers_per_stage);

    // Tensor-parallel all-reduce volume: two activation all-reduces
    // per layer per direction (the f/g operators).
    const Bytes act_mb = static_cast<Bytes>(tokens_mb) * ctx.model.hidden *
                         2.0;  // fp16 activations of one micro-batch
    const Bytes ar_per_subblock =
        2.0 * act_mb * layers_per_stage / sub_blocks;

    // Per-rank compute per (stage, micro-batch, sub-block).
    const Flops fwd_rank_sb = fwd_mb / mp / sub_blocks;

    // Rank layout: replica g occupies ranks [g*mp, (g+1)*mp);
    // pipeline stage s within the replica owns tp consecutive ranks.
    auto stage_ranks = [&](int g, int s) {
        CommGroup grp;
        for (int t = 0; t < tp; ++t)
            grp.ranks.push_back(g * mp + s * tp + t);
        return grp;
    };

    // fwd_done[g][s][m] / bwd_done[g][s][m]: completion task of the
    // (stage, microbatch) cell, used for pipeline dependencies.
    const auto idx = [&](int s, int m) {
        return static_cast<std::size_t>(s) *
                   static_cast<std::size_t>(microbatches) +
               static_cast<std::size_t>(m);
    };
    std::vector<std::vector<int>> fwd_done(
        static_cast<std::size_t>(dp),
        std::vector<int>(static_cast<std::size_t>(pp * microbatches),
                         -1));
    std::vector<std::vector<int>> bwd_done = fwd_done;

    for (int g = 0; g < dp; ++g) {
        // ---- forward pipeline -----------------------------------------
        for (int s = 0; s < pp; ++s) {
            for (int m = 0; m < microbatches; ++m) {
                std::vector<int> cell_deps;
                if (s > 0)
                    cell_deps.push_back(fwd_done[g][idx(s - 1, m)]);
                if (m > 0)
                    cell_deps.push_back(fwd_done[g][idx(s, m - 1)]);

                int prev = -1;
                for (int b = 0; b < sub_blocks; ++b) {
                    std::vector<int> comp_deps = cell_deps;
                    if (prev >= 0)
                        comp_deps = {prev};
                    // The tp ranks of the stage compute in lockstep.
                    std::vector<int> rank_tasks;
                    for (int t = 0; t < tp; ++t) {
                        const int r = g * mp + s * tp + t;
                        rank_tasks.push_back(plan.gpuCompute(
                            r, fwd_rank_sb, ComputePhase::Forward,
                            comp_deps,
                            csprintf("mlm fwd g%d s%d m%d b%d r%d", g, s,
                                     m, b, r)));
                    }
                    if (tp > 1) {
                        prev = plan.collective(
                            CollectiveOp::AllReduce, stage_ranks(g, s),
                            ar_per_subblock, std::move(rank_tasks),
                            csprintf("mlm tp-ar fwd g%d s%d m%d b%d", g,
                                     s, m, b));
                    } else {
                        prev = plan.barrier(std::move(rank_tasks),
                                            "mlm fwd sync");
                    }
                }
                fwd_done[g][idx(s, m)] = prev;
            }
        }

        // ---- backward pipeline (reverse stage order) -------------------
        for (int s = pp - 1; s >= 0; --s) {
            for (int m = 0; m < microbatches; ++m) {
                std::vector<int> cell_deps = {
                    fwd_done[g][idx(pp - 1, microbatches - 1)]};
                if (s < pp - 1)
                    cell_deps.push_back(bwd_done[g][idx(s + 1, m)]);
                if (m > 0)
                    cell_deps.push_back(bwd_done[g][idx(s, m - 1)]);

                int prev = -1;
                for (int b = 0; b < sub_blocks; ++b) {
                    std::vector<int> comp_deps = cell_deps;
                    if (prev >= 0)
                        comp_deps = {prev};
                    std::vector<int> rank_tasks;
                    for (int t = 0; t < tp; ++t) {
                        const int r = g * mp + s * tp + t;
                        rank_tasks.push_back(plan.gpuCompute(
                            r, 3.0 * fwd_rank_sb, ComputePhase::Backward,
                            comp_deps,
                            csprintf("mlm bwd g%d s%d m%d b%d r%d", g, s,
                                     m, b, r)));
                    }
                    if (tp > 1) {
                        // Recompute re-runs the forward all-reduces,
                        // so the backward cell carries 2x the volume.
                        prev = plan.collective(
                            CollectiveOp::AllReduce, stage_ranks(g, s),
                            2.0 * ar_per_subblock, std::move(rank_tasks),
                            csprintf("mlm tp-ar bwd g%d s%d m%d b%d", g,
                                     s, m, b));
                    } else {
                        prev = plan.barrier(std::move(rank_tasks),
                                            "mlm bwd sync");
                    }
                }
                bwd_done[g][idx(s, m)] = prev;
            }
        }
    }

    // Data-parallel gradient all-reduce across replicas (per shard).
    std::vector<int> grads_ready;
    for (int g = 0; g < dp; ++g)
        grads_ready.push_back(bwd_done[g][idx(0, microbatches - 1)]);
    int opt_dep = plan.barrier(grads_ready, "mlm grads ready");
    if (dp > 1) {
        // One all-reduce per model-parallel position, grouped over the
        // dp replicas holding the same shard; modeled as mp concurrent
        // collectives of the shard size.
        std::vector<int> ars;
        for (int pos = 0; pos < mp; ++pos) {
            CommGroup grp;
            for (int g = 0; g < dp; ++g)
                grp.ranks.push_back(g * mp + pos);
            ars.push_back(plan.collective(
                CollectiveOp::AllReduce, std::move(grp),
                2.0 * params / mp, {opt_dep},
                csprintf("mlm dp-ar pos%d", pos)));
        }
        opt_dep = plan.barrier(std::move(ars), "mlm dp-ar done");
    }

    // Local optimizer step over each rank's parameter shard.
    for (int r = 0; r < n; ++r) {
        plan.gpuCompute(r, kGpuOptimizerFlopsPerParam * params / mp,
                        ComputePhase::Optimizer, {opt_dep},
                        csprintf("adam r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
