/**
 * @file
 * DeepSpeed ZeRO-Offload (paper Sec. V-A): model states are
 * partitioned as in the underlying ZeRO stage, but the optimizer
 * states live in host memory and the Adam step runs on the CPU
 * (DeepSpeedCPUAdam). Gradient shards stream to the host overlapping
 * the backward pass; updated fp16 parameters stream back and are
 * all-gathered. While the GPUs idle during the host step, the DRAM
 * and PCIe links light up — the bandwidth signature of paper
 * Fig. 12.
 */

#ifndef DSTRAIN_STRATEGIES_ZERO_OFFLOAD_HH
#define DSTRAIN_STRATEGIES_ZERO_OFFLOAD_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class ZeroOffloadStrategy : public Strategy
{
  public:
    explicit ZeroOffloadStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;

  private:
    IterationPlan buildStage12(const PlanContext &ctx) const;
    IterationPlan buildStage3(const PlanContext &ctx) const;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_ZERO_OFFLOAD_HH
