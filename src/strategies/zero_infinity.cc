/**
 * @file
 * Implementation of the ZeRO-Infinity plan builder.
 */

#include "strategies/zero_infinity.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

ZeroInfinityStrategy::ZeroInfinityStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Zero3 &&
                       cfg.offload == OffloadTarget::Nvme,
                   "ZeroInfinityStrategy requires ZeRO-3 + NVMe");
}

IterationPlan
ZeroInfinityStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const Cluster &cl = ctx.cluster;
    const int n = cl.spec().totalGpus();
    const int blocks = planBlocks(ctx.model, ctx.tuning);
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes param_block = 2.0 * params / blocks;
    const Bytes grad_block = 2.0 * params / blocks;
    const Flops fwd_block = dpForwardFlopsPerRank(ctx) / blocks;

    const auto volume_of = [&](int r) {
        return ctx.placement.volumeForRank(cl.localOfRank(r));
    };

    // ---- forward: (param page-in ->) all-gather -> compute ------------
    std::vector<int> last(static_cast<std::size_t>(n), -1);
    int prev_ag = -1;
    for (int b = 0; b < blocks; ++b) {
        // Prefetch depth 1, as in ZeroStrategy::buildStage3.
        std::vector<int> ag_deps;
        if (prev_ag >= 0)
            ag_deps.push_back(prev_ag);
        for (int r = 0; r < n; ++r)
            if (last[static_cast<std::size_t>(r)] >= 0)
                ag_deps.push_back(last[static_cast<std::size_t>(r)]);
        if (cfg_.offload_params) {
            // Each rank pages its parameter shard for this block in
            // from NVMe and stages it to the GPU before the gather.
            std::vector<int> staged;
            for (int r = 0; r < n; ++r) {
                const int rd = plan.nvmeIo(
                    r, volume_of(r), param_block / n, /*write=*/false,
                    ag_deps, csprintf("param pg-in r%d b%d", r, b));
                staged.push_back(plan.hostTransfer(
                    r, param_block / n, /*to_host=*/false, {rd},
                    csprintf("param h2d r%d b%d", r, b)));
            }
            ag_deps = std::move(staged);
        }
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("zinf fwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag};
            if (last[static_cast<std::size_t>(r)] >= 0)
                deps.push_back(last[static_cast<std::size_t>(r)]);
            last[static_cast<std::size_t>(r)] =
                plan.gpuCompute(r, fwd_block, ComputePhase::Forward,
                                std::move(deps),
                                csprintf("fwd r%d b%d", r, b));
        }
    }

    // ---- backward: gather again, compute, reduce-scatter, download ----
    std::vector<std::vector<int>> grad_dl(static_cast<std::size_t>(n));
    int prev_rs = -1;
    for (int b = blocks - 1; b >= 0; --b) {
        std::vector<int> ag_deps = {prev_ag};
        for (int r = 0; r < n; ++r)
            ag_deps.push_back(last[static_cast<std::size_t>(r)]);
        if (cfg_.offload_params) {
            std::vector<int> staged;
            for (int r = 0; r < n; ++r) {
                const int rd = plan.nvmeIo(
                    r, volume_of(r), param_block / n, /*write=*/false,
                    ag_deps, csprintf("param pg-in bwd r%d b%d", r, b));
                staged.push_back(plan.hostTransfer(
                    r, param_block / n, /*to_host=*/false, {rd},
                    csprintf("param h2d bwd r%d b%d", r, b)));
            }
            ag_deps = std::move(staged);
        }
        prev_ag = plan.collective(CollectiveOp::AllGather,
                                  CommGroup::worldOf(n), param_block,
                                  std::move(ag_deps),
                                  csprintf("zinf bwd ag b%d", b),
                                  /*pin_channels=*/true,
                                  kZero3FetchOverhead,
                                  kZero3GatherBandwidthFactor);
        std::vector<int> block_tasks;
        for (int r = 0; r < n; ++r) {
            std::vector<int> deps = {prev_ag,
                                     last[static_cast<std::size_t>(r)]};
            last[static_cast<std::size_t>(r)] = plan.gpuCompute(
                r, 3.0 * fwd_block, ComputePhase::Backward,
                std::move(deps), csprintf("bwd r%d b%d", r, b));
            block_tasks.push_back(last[static_cast<std::size_t>(r)]);
        }
        if (prev_rs >= 0)
            block_tasks.push_back(prev_rs);
        prev_rs = plan.collective(CollectiveOp::ReduceScatter,
                                  CommGroup::worldOf(n), grad_block,
                                  std::move(block_tasks),
                                  csprintf("zinf rs b%d", b));
        for (int r = 0; r < n; ++r) {
            grad_dl[static_cast<std::size_t>(r)].push_back(
                plan.hostTransfer(r, grad_block / n, /*to_host=*/true,
                                  {prev_rs},
                                  csprintf("grad dl r%d b%d", r, b)));
        }
    }

    // ---- optimizer swap pipeline per rank ------------------------------
    // The fp32 optimizer shard (12 bytes/param) streams NVMe -> host,
    // the CPU Adam consumes it chunk by chunk, and the refreshed
    // state streams back — a read/compute/write pipeline whose depth
    // is tuning.nvme_chunks.
    const int chunks = std::max(1, ctx.tuning.nvme_chunks);
    const Bytes opt_shard = 12.0 * params / n;
    for (int r = 0; r < n; ++r) {
        const int node = cl.nodeOfRank(r);
        const int socket =
            gpuSocket(cl.nodeSpec(node), cl.localOfRank(r));
        const int vol = volume_of(r);

        int prev_read = -1;
        int last_adam = -1;
        for (int c = 0; c < chunks; ++c) {
            std::vector<int> rd_deps =
                grad_dl[static_cast<std::size_t>(r)];
            if (prev_read >= 0)
                rd_deps = {prev_read};
            prev_read =
                plan.nvmeIo(r, vol, opt_shard / chunks, /*write=*/false,
                            std::move(rd_deps),
                            csprintf("opt rd r%d c%d", r, c));
            last_adam = plan.cpuOptimizer(
                node, socket, params / n / chunks, {prev_read},
                csprintf("cpu adam r%d c%d", r, c));
            plan.nvmeIo(r, vol, opt_shard / chunks, /*write=*/true,
                        {last_adam}, csprintf("opt wr r%d c%d", r, c));
        }

        // Fresh fp16 parameter shard back to the GPU (and to NVMe
        // when parameters are offloaded).
        const int ul = plan.hostTransfer(r, 2.0 * params / n,
                                         /*to_host=*/false, {last_adam},
                                         csprintf("param ul r%d", r));
        if (cfg_.offload_params) {
            plan.nvmeIo(r, vol, 2.0 * params / n, /*write=*/true,
                        {last_adam}, csprintf("param pg-out r%d", r));
        }
        (void)ul;
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
