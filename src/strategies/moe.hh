/**
 * @file
 * Mixture-of-experts expert parallelism: each rank in an expert
 * group hosts distinct experts; tokens route to their expert via an
 * all-to-all *dispatch* before the expert FFN and return via an
 * all-to-all *combine* after it, in both the forward and backward
 * pass (GShard / DeepSpeed-MoE). The shared (attention/embedding)
 * parameters stay data-parallel and all-reduce their gradients;
 * expert parameters are local to their group and, when the expert
 * groups are replicated, all-reduce across replicas.
 */

#ifndef DSTRAIN_STRATEGIES_MOE_HH
#define DSTRAIN_STRATEGIES_MOE_HH

#include "strategies/strategy.hh"

namespace dstrain {

/**
 * Fraction of the model's parameters shared across all ranks
 * (attention + embeddings); the remaining 1 - f is expert FFN weight,
 * partitioned over the expert-parallel group. Matches the roughly
 * 1/3 attention : 2/3 FFN split of the paper's GPT-style models.
 */
inline constexpr double kMoeSharedFraction = 1.0 / 3.0;

/** See file comment. */
class MoeStrategy : public Strategy
{
  public:
    explicit MoeStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;

    /**
     * The expert-parallel group size on @p total_gpus: the configured
     * expert count (one expert per rank), capped by the cluster;
     * 0 experts = one per GPU = the whole world.
     */
    int expertParallelSize(int total_gpus) const;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_MOE_HH
