/**
 * @file
 * Implementation of the DDP plan builder.
 */

#include "strategies/ddp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

DdpStrategy::DdpStrategy(StrategyConfig cfg)
    : Strategy(cfg)
{
    DSTRAIN_ASSERT(cfg.kind == StrategyKind::Ddp, "wrong config kind");
}

IterationPlan
DdpStrategy::buildIteration(const PlanContext &ctx) const
{
    IterationPlan plan;
    plan.setModelLayers(ctx.model.layers);
    const int n = ctx.cluster.spec().totalGpus();
    const double params =
        static_cast<double>(ctx.model.parameterCount());
    const Bytes grad_bytes = 2.0 * params;  // fp16 gradients

    std::vector<std::vector<int>> fwd;
    std::vector<std::vector<int>> bwd;
    buildDataParallelCompute(plan, ctx, fwd, bwd);
    const int blocks = static_cast<int>(fwd[0].size());

    // Bucketed gradient all-reduce overlapping the backward pass:
    // bucket k becomes ready once the corresponding backward block
    // group finishes on *every* rank; buckets all-reduce in order
    // (NCCL stream semantics), each depending on its predecessor.
    const int buckets = std::min(ctx.tuning.grad_buckets, blocks);
    std::vector<int> ar_tasks;
    int prev_ar = -1;
    for (int k = 0; k < buckets; ++k) {
        // Backward blocks [k*blocks/buckets, (k+1)*blocks/buckets).
        const int b_end = (k + 1) * blocks / buckets;
        std::vector<int> deps;
        for (int r = 0; r < n; ++r)
            deps.push_back(bwd[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(b_end - 1)]);
        if (prev_ar >= 0)
            deps.push_back(prev_ar);
        prev_ar = plan.collective(CollectiveOp::AllReduce,
                                  CommGroup::worldOf(n),
                                  grad_bytes / buckets, std::move(deps),
                                  csprintf("ddp ar bucket %d", k));
        ar_tasks.push_back(prev_ar);
    }

    // Local optimizer step on every rank after its gradients are in.
    for (int r = 0; r < n; ++r) {
        plan.gpuCompute(r, kGpuOptimizerFlopsPerParam * params,
                        ComputePhase::Optimizer, {prev_ar},
                        csprintf("adam r%d", r));
    }

    plan.validate();
    return plan;
}

} // namespace dstrain
