/**
 * @file
 * DeepSpeed ZeRO stages 1-3 without offloading (paper Sec. II-C,
 * Table I):
 *
 *  - ZeRO-1: optimizer states partitioned. Gradients are all-reduced
 *    as in DDP; each rank updates its 1/N optimizer shard and the
 *    updated fp16 parameters are all-gathered.
 *  - ZeRO-2: gradients also partitioned: the all-reduce becomes a
 *    bucketed reduce-scatter overlapping the backward pass.
 *  - ZeRO-3: parameters also partitioned: each layer block's
 *    parameters are all-gathered just-in-time in both the forward
 *    and the backward pass (the +50% communication volume the paper
 *    quotes), and gradients reduce-scatter per block.
 */

#ifndef DSTRAIN_STRATEGIES_ZERO_HH
#define DSTRAIN_STRATEGIES_ZERO_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class ZeroStrategy : public Strategy
{
  public:
    explicit ZeroStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;

  private:
    IterationPlan buildStage12(const PlanContext &ctx) const;
    IterationPlan buildStage3(const PlanContext &ctx) const;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_ZERO_HH
