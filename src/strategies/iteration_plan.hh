/**
 * @file
 * The iteration plan: a task graph describing one training iteration
 * of a strategy — GPU compute blocks, collectives, host staging
 * transfers, CPU optimizer work and NVMe IO, with explicit
 * dependencies. Strategies *build* plans; the engine *executes* them
 * on the simulated hardware.
 */

#ifndef DSTRAIN_STRATEGIES_ITERATION_PLAN_HH
#define DSTRAIN_STRATEGIES_ITERATION_PLAN_HH

#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "model/transformer.hh"
#include "util/units.hh"

namespace dstrain {

/** The kinds of work a plan can schedule. */
enum class TaskKind {
    GpuCompute,   ///< GEMM-dominated kernel block on one GPU
    Collective,   ///< a NCCL-style collective over a group
    HostTransfer, ///< GPU <-> host-DRAM staging over PCIe
    CpuOptimizer, ///< CPU Adam over a parameter partition
    NvmeIo,       ///< read/write against an NVMe volume
    Barrier,      ///< pure synchronization point
};

/** Human-readable task-kind name. */
const char *taskKindName(TaskKind kind);

/** Phases for timeline coloring (paper Fig. 5 categories). */
enum class ComputePhase {
    Forward,
    Backward,
    Optimizer,
    Communication,
    Io,
    Idle,
};

/** Short phase label for timeline rendering. */
const char *computePhaseName(ComputePhase phase);

/** One node of the task graph. */
struct PlanTask {
    int id = -1;
    TaskKind kind = TaskKind::Barrier;
    ComputePhase phase = ComputePhase::Idle;
    std::string label;
    std::vector<int> deps;  ///< ids of prerequisite tasks

    // GpuCompute / HostTransfer / NvmeIo: the acting global GPU rank.
    int rank = -1;

    // GpuCompute.
    Flops flops = 0.0;

    // Collective.
    CollectiveOp op = CollectiveOp::AllReduce;
    CommGroup group;
    Bytes bytes = 0.0;
    int root = 0;
    /** Pin the collective's channels to NICs (inter-node groups). */
    bool pin_channels = true;

    /** Per-hop bandwidth factor of the collective (see strategy.hh). */
    double comm_bw_factor = 1.0;

    /**
     * Schedule family for the collective; Auto defers to the
     * engine's `--collective-algo` spec (default: ring).
     */
    CollectiveAlgo algo = CollectiveAlgo::Auto;

    // HostTransfer: direction and size.
    bool to_host = false;
    // (bytes field shared with Collective.)

    // CpuOptimizer: parameters to process and where.
    double cpu_params = 0.0;
    int node = -1;
    int socket = -1;

    // NvmeIo: volume index within the node's placement, direction.
    int volume = -1;
    bool io_write = false;

    /**
     * Extra fixed software latency charged before the task starts
     * (Collective only): models DeepSpeed's parameter-fetch
     * coordination in ZeRO-3 (see zero.cc).
     */
    SimTime extra_latency = 0.0;
};

/**
 * A buildable, immutable-after-build task graph.
 */
class IterationPlan
{
  public:
    /** Add a task; its id is assigned and returned. */
    int add(PlanTask task);

    /** All tasks, id-ordered. */
    const std::vector<PlanTask> &tasks() const { return tasks_; }

    /** Number of tasks. */
    std::size_t size() const { return tasks_.size(); }

    /**
     * Total executed FLOPs of the plan's GpuCompute tasks (the
     * quantity the achieved-TFLOP/s metric divides by the measured
     * iteration time).
     */
    Flops totalGpuFlops() const;

    /** Total collective payload bytes (diagnostics/tests). */
    Bytes totalCollectiveBytes() const;

    /** fatal() if the dependency graph is not a DAG over valid ids. */
    void validate() const;

    /** Record the model depth (drives the engine's efficiency curve). */
    void setModelLayers(int layers) { model_layers_ = layers; }

    /** The recorded model depth (defaults to 24). */
    int modelLayers() const { return model_layers_; }

    // --- convenience builders -----------------------------------------

    int gpuCompute(int rank, Flops flops, ComputePhase phase,
                   std::vector<int> deps, std::string label);

    int collective(CollectiveOp op, CommGroup group, Bytes bytes,
                   std::vector<int> deps, std::string label,
                   bool pin_channels = true, SimTime extra_latency = 0.0,
                   double bw_factor = 1.0,
                   CollectiveAlgo algo = CollectiveAlgo::Auto);

    int hostTransfer(int rank, Bytes bytes, bool to_host,
                     std::vector<int> deps, std::string label);

    int cpuOptimizer(int node, int socket, double params,
                     std::vector<int> deps, std::string label);

    int nvmeIo(int rank, int volume, Bytes bytes, bool write,
               std::vector<int> deps, std::string label);

    int barrier(std::vector<int> deps, std::string label);

  private:
    std::vector<PlanTask> tasks_;
    int model_layers_ = 24;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_ITERATION_PLAN_HH
