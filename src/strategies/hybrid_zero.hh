/**
 * @file
 * Hybrid parallelism: Megatron-style tensor parallelism inside each
 * model replica with ZeRO stage 1/2 partitioning across the
 * data-parallel replicas — the combination the DeepSpeed
 * announcement describes and the paper mentions but does not
 * evaluate (Sec. II-C, [119]). An extension of this reproduction;
 * see bench/extension_hybrid for the study.
 *
 * Schedule per iteration:
 *  - every TP group runs the Megatron forward/backward with its two
 *    activation all-reduces per layer per direction;
 *  - gradients reduce across the DP replicas per tensor-parallel
 *    position (all-reduce for stage 1, reduce-scatter for stage 2);
 *  - each rank updates its optimizer shard (1 / (tp * dp) of the
 *    model) and the fresh fp16 shards all-gather across replicas.
 */

#ifndef DSTRAIN_STRATEGIES_HYBRID_ZERO_HH
#define DSTRAIN_STRATEGIES_HYBRID_ZERO_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class HybridZeroStrategy : public Strategy
{
  public:
    explicit HybridZeroStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_HYBRID_ZERO_HH
