/**
 * @file
 * PyTorch FSDP (FullyShardedDataParallel): model states sharded 1/N
 * like ZeRO-3, but with per-block *flat parameters* gathered at full
 * link bandwidth and a bounded prefetch window
 * (PlanTuning::fsdp_prefetch) that lets the all-gather of block L+1
 * overlap block L's compute. Parameters reshard after the forward
 * pass and are re-gathered for the backward; each block's gradients
 * reduce-scatter as soon as its backward completes.
 *
 * Contrast with ZeroStrategy::buildStage3: no per-parameter fetch
 * coordination (kZero3FetchOverhead) and no small-call bandwidth
 * penalty (kZero3GatherBandwidthFactor) — the flat-param design
 * issues one large NCCL call per block.
 */

#ifndef DSTRAIN_STRATEGIES_FSDP_HH
#define DSTRAIN_STRATEGIES_FSDP_HH

#include "strategies/strategy.hh"

namespace dstrain {

/** See file comment. */
class FsdpStrategy : public Strategy
{
  public:
    explicit FsdpStrategy(StrategyConfig cfg);

    IterationPlan buildIteration(const PlanContext &ctx) const override;
};

} // namespace dstrain

#endif // DSTRAIN_STRATEGIES_FSDP_HH
