/**
 * @file
 * Implementation of the NVMe drive model.
 */

#include "storage/nvme_device.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

NvmeDevice::NvmeDevice(const Cluster &cluster, int node, int index,
                       NvmeCacheConfig cfg)
    : cfg_(cfg)
{
    controller_ =
        cluster.topology().findComponent(ComponentKind::NvmeDrive, node,
                                         index);
    media_ = cluster.topology().findComponent(ComponentKind::NvmeMedia,
                                              node, index);
    if (controller_ == kNoComponent || media_ == kNoComponent)
        fatal("node %d has no NVMe drive with index %d", node, index);

    const auto &spec = cluster.nodeSpec(node);
    DSTRAIN_ASSERT(index >= 0 &&
                       index < static_cast<int>(spec.nvme_drives.size()),
                   "drive index %d out of spec range", index);
    media_rate_ =
        spec.nvme_drives[static_cast<std::size_t>(index)].media_rate;
    socket_ =
        spec.nvme_drives[static_cast<std::size_t>(index)].socket;
}

void
NvmeDevice::drainTo(SimTime now)
{
    DSTRAIN_ASSERT(now >= last_drain_, "drive time went backwards");
    fill_ = std::max(0.0, fill_ - media_rate_ * (now - last_drain_));
    last_drain_ = now;
}

Bytes
NvmeDevice::absorbWrite(SimTime now, Bytes bytes)
{
    DSTRAIN_ASSERT(bytes >= 0.0, "negative write size");
    drainTo(now);
    const Bytes burst = std::min(bytes, cfg_.capacity - fill_);
    fill_ += burst;
    return burst;
}

Bytes
NvmeDevice::cacheFill(SimTime now)
{
    drainTo(now);
    return fill_;
}

} // namespace dstrain
