/**
 * @file
 * Implementation of the async-IO engine.
 */

#include "storage/aio_engine.hh"

#include "util/logging.hh"

namespace dstrain {

AioEngine::AioEngine(TransferManager &tm, AioConfig cfg)
    : tm_(tm), cfg_(cfg)
{
}

NvmeDevice &
AioEngine::device(int node, int drive_index)
{
    auto key = std::make_pair(node, drive_index);
    auto it = devices_.find(key);
    if (it == devices_.end()) {
        it = devices_
                 .emplace(key, std::make_unique<NvmeDevice>(
                                   tm_.cluster(), node, drive_index,
                                   cfg_.cache))
                 .first;
    }
    return *it->second;
}

void
AioEngine::submit(int drive_index, StorageIo io)
{
    DSTRAIN_ASSERT(io.bytes >= 0.0, "negative IO size");
    NvmeDevice &dev = device(io.node, drive_index);
    const ComponentId dram = tm_.cluster()
                                 .node(io.node)
                                 .drams[static_cast<std::size_t>(io.socket)];

    Simulation &sim = tm_.sim();
    auto launch = [this, &dev, dram, io = std::move(io),
                   epoch = epoch_]() mutable {
        if (epoch != epoch_)
            return;  // aborted before the submit latency elapsed
        const SimTime now = tm_.sim().now();

        Bytes burst = 0.0;
        Bytes sustained = io.bytes;
        if (io.write) {
            burst = dev.absorbWrite(now, io.bytes);
            sustained = io.bytes - burst;
        }

        // Join: the request completes when both portions land.
        auto remaining = std::make_shared<int>(0);
        auto on_done = std::make_shared<std::function<void()>>(
            std::move(io.on_done));
        auto part_done = [this, remaining, on_done] {
            if (--*remaining == 0) {
                ++completed_;
                if (*on_done)
                    (*on_done)();
            }
        };

        TransferOptions opts;
        opts.tag = io.tag;
        // model_serdes_contention is a whole-experiment ablation
        // toggle, so the template spec is authoritative even on
        // heterogeneous clusters.
        if (dev.socket() != io.socket &&
            tm_.cluster().spec().node.model_serdes_contention) {
            // Cross-socket storage stream: consumes the shared IOD
            // crossbar path (paper Sec. III-C4 / Table VI).
            opts.extra_resources.push_back(
                tm_.cluster().node(io.node).iod_crossing);
        }
        if (burst > 0.0) {
            ++*remaining;
            tm_.start(dram, dev.controller(), burst, part_done, opts);
        }
        if (sustained > 0.0) {
            ++*remaining;
            if (io.write)
                tm_.start(dram, dev.media(), sustained, part_done, opts);
            else
                tm_.start(dev.media(), dram, sustained, part_done, opts);
        }
        if (*remaining == 0) {
            // Zero-byte IO: complete asynchronously.
            tm_.sim().events().scheduleAfter(
                0.0, [this, on_done, epoch] {
                    if (epoch != epoch_)
                        return;
                    ++completed_;
                    if (*on_done)
                        (*on_done)();
                });
        }
    };
    sim.events().scheduleAfter(cfg_.submit_latency * latency_factor_,
                               std::move(launch));
}

void
AioEngine::setLatencyFactor(double factor)
{
    DSTRAIN_ASSERT(factor >= 1.0, "latency factor %g < 1", factor);
    latency_factor_ = factor;
}

} // namespace dstrain
