/**
 * @file
 * Implementation of storage volumes.
 */

#include "storage/volume.hh"

#include "util/logging.hh"

namespace dstrain {

StorageVolume::StorageVolume(AioEngine &engine, int node, VolumeSpec spec)
    : engine_(engine), node_(node), spec_(std::move(spec))
{
    DSTRAIN_ASSERT(!spec_.drives.empty(), "volume '%s' has no drives",
                   spec_.name.c_str());
}

void
StorageVolume::io(StorageIo io)
{
    DSTRAIN_ASSERT(io.node == node_,
                   "IO for node %d issued against volume on node %d",
                   io.node, node_);

    const std::size_t n = spec_.drives.size();
    if (n == 1) {
        engine_.submit(spec_.drives.front(), std::move(io));
        return;
    }

    // RAID0: even striping; completion = join over members.
    auto remaining = std::make_shared<int>(static_cast<int>(n));
    auto on_done =
        std::make_shared<std::function<void()>>(std::move(io.on_done));
    for (int drive : spec_.drives) {
        StorageIo part;
        part.write = io.write;
        part.bytes = io.bytes / static_cast<double>(n);
        part.node = io.node;
        part.socket = io.socket;
        part.tag = io.tag + "/" + spec_.name;
        part.on_done = [remaining, on_done] {
            if (--*remaining == 0 && *on_done)
                (*on_done)();
        };
        engine_.submit(drive, std::move(part));
    }
}

Bps
StorageVolume::aggregateMediaRate()
{
    Bps total = 0.0;
    for (int drive : spec_.drives)
        total += engine_.device(node_, drive).mediaRate();
    return total;
}

} // namespace dstrain
