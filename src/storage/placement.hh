/**
 * @file
 * The NVMe drive-placement configurations of paper Fig. 14 /
 * Table VI (Sec. V-E): how many drives, which socket each attaches
 * to, how they are grouped into (RAID0) volumes, and which volume
 * each local GPU rank offloads to. Since ZeRO-Infinity supports only
 * one offload path, the paper used UNIX soft links to map each rank
 * to its own volume — here the mapping is explicit.
 *
 *   A: 1 drive  (CPU1), one volume, all ranks.
 *   B: 2 drives (CPU1), RAID0, all ranks.        <- paper default
 *   C: 2 drives (one per CPU), RAID0 spanning sockets.
 *   D: 2 drives (one per CPU), no RAID, ranks use the local drive.
 *   E: 4 drives (2 per CPU), single RAID0 spanning sockets.
 *   F: 4 drives (2 per CPU), two RAID0 volumes, ranks use local.
 *   G: 4 drives (2 per CPU), no RAID, one drive per rank (local).
 *
 * Extension beyond the paper (its Sec. V-E future-work prediction —
 * "if all eight slots are populated, the throughput will potentially
 * be comparable to CPU offload"):
 *
 *   H: 8 drives (4 per CPU), four socket-local 2-drive RAID0
 *      volumes, one volume per rank.
 */

#ifndef DSTRAIN_STORAGE_PLACEMENT_HH
#define DSTRAIN_STORAGE_PLACEMENT_HH

#include <string>
#include <vector>

#include "hw/node_builder.hh"
#include "storage/volume.hh"

namespace dstrain {

/** A full drive-placement configuration. */
struct NvmePlacement {
    char id = 'B';
    std::string description;

    /** Drives to install per node (socket attachments). */
    std::vector<NvmeDriveSpec> drives;

    /** Volume groupings over those drives. */
    std::vector<VolumeSpec> volumes;

    /**
     * Volume index each local GPU rank offloads to
     * (size == GPUs per node; ranks beyond the list wrap around).
     */
    std::vector<int> rank_to_volume;

    /** Volume for a local rank (wrapping). */
    int volumeForRank(int local_rank) const;
};

/**
 * The placement configuration named by @p id ('A' through 'G' from
 * the paper, plus the 'H' extension). fatal() on unknown ids.
 */
NvmePlacement nvmePlacementConfig(char id);

/** The paper's seven configurations A-G, in paper order. */
std::vector<NvmePlacement> allNvmePlacements();

/** Install the placement's drives into a node spec. */
void applyPlacement(const NvmePlacement &placement, NodeSpec &spec);

} // namespace dstrain

#endif // DSTRAIN_STORAGE_PLACEMENT_HH
