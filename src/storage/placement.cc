/**
 * @file
 * Implementation of the NVMe placement configurations.
 */

#include "storage/placement.hh"

#include "util/logging.hh"

namespace dstrain {

int
NvmePlacement::volumeForRank(int local_rank) const
{
    DSTRAIN_ASSERT(!rank_to_volume.empty(),
                   "placement %c has no rank mapping", id);
    return rank_to_volume[static_cast<std::size_t>(local_rank) %
                          rank_to_volume.size()];
}

NvmePlacement
nvmePlacementConfig(char id)
{
    NvmePlacement p;
    p.id = id;
    switch (id) {
      case 'A':
        p.description = "1 drive on CPU1, single volume";
        p.drives = {NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"nvme0", {0}}};
        p.rank_to_volume = {0, 0, 0, 0};
        break;
      case 'B':
        p.description = "2 drives on CPU1, RAID0";
        p.drives = {NvmeDriveSpec{1}, NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"md0", {0, 1}}};
        p.rank_to_volume = {0, 0, 0, 0};
        break;
      case 'C':
        p.description = "2 drives, one per CPU, RAID0 spanning sockets";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"md0", {0, 1}}};
        p.rank_to_volume = {0, 0, 0, 0};
        break;
      case 'D':
        p.description = "2 drives, one per CPU, no RAID, local mapping";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"nvme0", {0}}, VolumeSpec{"nvme1", {1}}};
        // GPUs 0-1 sit on socket 0, GPUs 2-3 on socket 1.
        p.rank_to_volume = {0, 0, 1, 1};
        break;
      case 'E':
        p.description = "4 drives (2 per CPU), single RAID0 spanning";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{0}, NvmeDriveSpec{1},
                    NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"md0", {0, 1, 2, 3}}};
        p.rank_to_volume = {0, 0, 0, 0};
        break;
      case 'F':
        p.description = "4 drives, two RAID0 volumes (one per CPU)";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{0}, NvmeDriveSpec{1},
                    NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"md0", {0, 1}}, VolumeSpec{"md1", {2, 3}}};
        p.rank_to_volume = {0, 0, 1, 1};
        break;
      case 'G':
        p.description = "4 drives, no RAID, one drive per rank (local)";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{0}, NvmeDriveSpec{1},
                    NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"nvme0", {0}}, VolumeSpec{"nvme1", {1}},
                     VolumeSpec{"nvme2", {2}}, VolumeSpec{"nvme3", {3}}};
        p.rank_to_volume = {0, 1, 2, 3};
        break;
      case 'H':
        // Extension: every PCIe slot populated (paper Sec. V-E's
        // future-work scenario).
        p.description = "8 drives (4 per CPU), four local RAID0 pairs";
        p.drives = {NvmeDriveSpec{0}, NvmeDriveSpec{0}, NvmeDriveSpec{0},
                    NvmeDriveSpec{0}, NvmeDriveSpec{1}, NvmeDriveSpec{1},
                    NvmeDriveSpec{1}, NvmeDriveSpec{1}};
        p.volumes = {VolumeSpec{"md0", {0, 1}}, VolumeSpec{"md1", {2, 3}},
                     VolumeSpec{"md2", {4, 5}}, VolumeSpec{"md3", {6, 7}}};
        p.rank_to_volume = {0, 1, 2, 3};
        break;
      default:
        fatal("unknown NVMe placement configuration '%c' "
              "(expected 'A'..'H')",
              id);
    }
    return p;
}

std::vector<NvmePlacement>
allNvmePlacements()
{
    std::vector<NvmePlacement> out;
    for (char id = 'A'; id <= 'G'; ++id)
        out.push_back(nvmePlacementConfig(id));
    return out;
}

void
applyPlacement(const NvmePlacement &placement, NodeSpec &spec)
{
    spec.nvme_drives = placement.drives;
}

} // namespace dstrain
