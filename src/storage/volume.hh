/**
 * @file
 * Storage volumes: a single drive or an mdadm-style RAID0 stripe set.
 *
 * RAID0 is transparent to the IO issuer (paper Sec. V-B2): a request
 * is striped evenly across all member drives and completes when the
 * slowest member finishes. Members on the neighboring socket cost
 * xGMI traffic — the root cause of the placement effects in paper
 * Table VI.
 */

#ifndef DSTRAIN_STORAGE_VOLUME_HH
#define DSTRAIN_STORAGE_VOLUME_HH

#include <memory>
#include <string>
#include <vector>

#include "storage/aio_engine.hh"

namespace dstrain {

/** Static description of one volume. */
struct VolumeSpec {
    std::string name;        ///< e.g. "md0" or "nvme2"
    std::vector<int> drives; ///< member drive indices within the node
};

/**
 * An IO target composed of one or more drives on one node.
 */
class StorageVolume
{
  public:
    /** @param engine the AIO engine; @param node the owning node. */
    StorageVolume(AioEngine &engine, int node, VolumeSpec spec);

    /** The volume description. */
    const VolumeSpec &spec() const { return spec_; }

    /**
     * Issue @p io against this volume (striped across members).
     * io.node must equal the volume's node.
     */
    void io(StorageIo io);

    /** Aggregate sustained media rate of the member drives. */
    Bps aggregateMediaRate();

  private:
    AioEngine &engine_;
    int node_;
    VolumeSpec spec_;
};

} // namespace dstrain

#endif // DSTRAIN_STORAGE_VOLUME_HH
