/**
 * @file
 * Asynchronous IO engine: the dstrain equivalent of DeepSpeed's
 * libaio path (DeepNVMe). It turns storage requests into flows on
 * the simulated fabric: reads stream NVMe media -> DRAM, writes
 * split into a cache burst (DRAM -> controller, PCIe-limited) and a
 * sustained part (DRAM -> media, NAND-limited).
 *
 * IO is issued from the DRAM pool of the requesting rank's socket,
 * so a request against a drive on the neighboring socket generates
 * xGMI traffic and picks up the IOD SerDes degradation — the effect
 * behind paper Table VI's RAID-spanning-sockets penalty.
 */

#ifndef DSTRAIN_STORAGE_AIO_ENGINE_HH
#define DSTRAIN_STORAGE_AIO_ENGINE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/transfer_manager.hh"
#include "storage/nvme_device.hh"

namespace dstrain {

/** Engine tunables (paper Sec. V-E mentions sweeping aio settings). */
struct AioConfig {
    /** Per-op submission/completion software overhead. */
    SimTime submit_latency = 30e-6;

    /** Drive-cache tunables, applied to every drive. */
    NvmeCacheConfig cache;
};

/** One storage request. */
struct StorageIo {
    bool write = false;       ///< false = read
    Bytes bytes = 0.0;
    int node = 0;             ///< node issuing the IO
    int socket = 0;           ///< socket whose DRAM stages the data
    std::function<void()> on_done;
    std::string tag;
};

/**
 * The async-IO engine: owns per-drive device state and issues flows.
 */
class AioEngine
{
  public:
    AioEngine(TransferManager &tm, AioConfig cfg = {});

    AioEngine(const AioEngine &) = delete;
    AioEngine &operator=(const AioEngine &) = delete;

    /** Submit an IO against drive @p drive_index of @p io.node. */
    void submit(int drive_index, StorageIo io);

    /** Device state for a drive (lazily created). */
    NvmeDevice &device(int node, int drive_index);

    /** Completed request count (diagnostics). */
    std::uint64_t completedCount() const { return completed_; }

    /** The engine's configuration. */
    const AioConfig &config() const { return cfg_; }

    /**
     * Multiplier on the per-op submission latency (>= 1.0), used by
     * the fault injector to model a misbehaving NVMe software stack
     * during a degradation window. 1.0 = healthy.
     */
    void setLatencyFactor(double factor);

    /** The current submission-latency multiplier. */
    double latencyFactor() const { return latency_factor_; }

    /**
     * Invalidate every submitted-but-not-yet-launched IO and every
     * zero-byte completion still in the event queue (the hard-failure
     * abort path). IOs whose flows are already running are aborted by
     * the owning TransferManager's abortAll(); this only stops new
     * storage traffic from materializing afterwards.
     */
    void abortAll() { ++epoch_; }

  private:
    TransferManager &tm_;
    AioConfig cfg_;
    double latency_factor_ = 1.0;
    std::map<std::pair<int, int>, std::unique_ptr<NvmeDevice>> devices_;
    std::uint64_t completed_ = 0;
    /** Bumped by abortAll(); stale scheduled work checks it. */
    std::uint64_t epoch_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_STORAGE_AIO_ENGINE_HH
