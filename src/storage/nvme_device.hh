/**
 * @file
 * Per-drive NVMe behavior model.
 *
 * Paper Sec. V-B3 attributes the "abrupt peak and low utilization"
 * pattern on the PCIe-NVME links to the drive's internal DRAM cache:
 * writes land in the cache at near-PCIe speed until it fills, after
 * which throughput drops to the NAND media rate. dstrain models this
 * with a write-back cache of fixed capacity draining at the media
 * rate: each write op is split into a *burst* portion (absorbed by
 * the cache, limited only by the PCIe x4 link) and a *sustained*
 * portion that flows through the shared NvmeMedia resource. Reads
 * stream from NAND at the media rate (the optimizer-state working
 * sets of ZeRO-Infinity are far larger than the cache, so read hits
 * are negligible).
 */

#ifndef DSTRAIN_STORAGE_NVME_DEVICE_HH
#define DSTRAIN_STORAGE_NVME_DEVICE_HH

#include "hw/cluster.hh"
#include "util/units.hh"

namespace dstrain {

/** Tunables of the drive cache model. */
struct NvmeCacheConfig {
    /** Usable write-back cache capacity. */
    Bytes capacity = 1.5 * units::GB;
};

/**
 * Mutable per-drive state (cache fill level). One instance per
 * physical drive per experiment; owned by the AioEngine.
 */
class NvmeDevice
{
  public:
    /**
     * @param cluster the built cluster (component lookup).
     * @param node    node index of the drive.
     * @param index   in-node drive index.
     * @param cfg     cache tunables.
     */
    NvmeDevice(const Cluster &cluster, int node, int index,
               NvmeCacheConfig cfg);

    /** The drive's controller component (PCIe endpoint). */
    ComponentId controller() const { return controller_; }

    /** The drive's media component (NAND constraint endpoint). */
    ComponentId media() const { return media_; }

    /** Sustained media rate (read/write shared). */
    Bps mediaRate() const { return media_rate_; }

    /** Socket the drive's PCIe lanes attach to. */
    int socket() const { return socket_; }

    /**
     * Account a write of @p bytes arriving at time @p now.
     *
     * @return the number of bytes absorbed by the DRAM cache (the
     *         remainder must flow through the media resource).
     */
    Bytes absorbWrite(SimTime now, Bytes bytes);

    /** Current cache fill after draining to time @p now (test hook). */
    Bytes cacheFill(SimTime now);

  private:
    /** Drain the cache at the media rate up to time @p now. */
    void drainTo(SimTime now);

    ComponentId controller_ = kNoComponent;
    ComponentId media_ = kNoComponent;
    Bps media_rate_ = 0.0;
    int socket_ = -1;
    NvmeCacheConfig cfg_;
    Bytes fill_ = 0.0;
    SimTime last_drain_ = 0.0;
};

} // namespace dstrain

#endif // DSTRAIN_STORAGE_NVME_DEVICE_HH
