/**
 * @file
 * Implementation of the parallel sweep runner.
 */

#include "core/sweep_runner.hh"

#include <algorithm>
#include <mutex>
#include <thread>

#include "util/task_pool.hh"

namespace dstrain {

SweepRunner::SweepRunner(int jobs)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs;
}

std::vector<ExperimentReport>
SweepRunner::run(std::vector<ExperimentConfig> configs,
                 const Progress &progress) const
{
    const std::size_t total = configs.size();
    std::vector<ExperimentReport> reports(total);

    if (jobs_ == 1 || total <= 1) {
        // Inline: no threads, same claim order, same results.
        for (std::size_t i = 0; i < total; ++i) {
            reports[i] = runExperiment(std::move(configs[i]));
            if (progress)
                progress(i + 1, total, i);
        }
        return reports;
    }

    std::size_t done = 0;  // guarded by progress_mutex
    std::mutex progress_mutex;

    // The pool's caller thread participates, so jobs_ workers means
    // jobs_ - 1 spawned threads (never more threads than points).
    const std::size_t nworkers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), total);
    TaskPool pool(static_cast<int>(nworkers) - 1);
    pool.parallelFor(total, [&](std::size_t i, int) {
        reports[i] = runExperiment(std::move(configs[i]));
        // Count inside the lock so `done` is monotonic from the
        // callback's point of view.
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        if (progress)
            progress(done, total, i);
    });
    return reports;
}

} // namespace dstrain
