/**
 * @file
 * SweepRunner: run many independent experiments concurrently.
 *
 * Every paper table/figure is produced by sweeping a family of
 * ExperimentConfigs; each Experiment owns its own Simulation, cluster
 * and engines, so the points are embarrassingly parallel. SweepRunner
 * is a bounded worker pool (a per-sweep TaskPool) over that
 * structure: configs are claimed
 * from an atomic cursor, results land at the index of their config
 * (deterministic ordering regardless of completion order), and an
 * optional progress callback is invoked — serialized — as each point
 * completes.
 *
 * Determinism: a report depends only on its config (seeded RNG,
 * single-threaded DES per experiment), so a sweep at --jobs N is
 * byte-identical to the same sweep at --jobs 1; the determinism
 * regression tests and bench/micro_flow_scheduler.cc assert this.
 */

#ifndef DSTRAIN_CORE_SWEEP_RUNNER_HH
#define DSTRAIN_CORE_SWEEP_RUNNER_HH

#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace dstrain {

/** A bounded worker pool for independent experiment runs. */
class SweepRunner
{
  public:
    /**
     * Called (serialized, from worker threads) after each point
     * completes: points done so far, total points, and the index of
     * the point that just finished.
     */
    using Progress =
        std::function<void(std::size_t done, std::size_t total,
                           std::size_t index)>;

    /**
     * @param jobs worker threads; <= 0 means one per hardware
     * thread. jobs == 1 runs inline on the calling thread.
     */
    explicit SweepRunner(int jobs = 0);

    /** The resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Run every config; result i corresponds to configs[i].
     * @param configs the sweep points (consumed).
     * @param progress optional completion callback.
     */
    std::vector<ExperimentReport>
    run(std::vector<ExperimentConfig> configs,
        const Progress &progress = {}) const;

  private:
    int jobs_;
};

} // namespace dstrain

#endif // DSTRAIN_CORE_SWEEP_RUNNER_HH
