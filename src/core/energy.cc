/**
 * @file
 * Implementation of the energy estimate.
 */

#include "core/energy.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace dstrain {

EnergyReport
estimateEnergy(const ExperimentReport &report,
               const ExperimentConfig &cfg, const PowerModel &power)
{
    const auto &exec = report.execution;
    DSTRAIN_ASSERT(exec.iteration_ends.size() >= 2,
                   "need at least two iterations for the energy "
                   "estimate (spans cover the final one)");
    const SimTime begin =
        exec.iteration_ends[exec.iteration_ends.size() - 2];
    const SimTime end = exec.iteration_ends.back();
    const SimTime window = end - begin;
    DSTRAIN_ASSERT(window > 0.0, "empty final iteration");

    const int gpus = cfg.cluster.totalGpus();
    // Per-node sums so heterogeneous groups are billed for their own
    // hardware.
    int sockets = 0;
    int drives = 0;
    int nics = 0;
    for (int n = 0; n < cfg.cluster.nodeCount(); ++n) {
        const NodeSpec &node = cfg.cluster.nodeSpecOf(n);
        sockets += node.sockets;
        drives += static_cast<int>(node.nvme_drives.size());
        nics += node.nics;
    }

    // Busy time per GPU rank (compute spans only; NCCL kernels are
    // folded into the busy-idle delta they overlap) and per socket.
    std::map<int, SimTime> gpu_busy;
    std::map<std::pair<int, int>, SimTime> cpu_busy;
    SimTime storage_active = 0.0;
    for (const TaskSpan &s : exec.spans) {
        const SimTime overlap =
            std::max(0.0, std::min(s.end, end) - std::max(s.begin, begin));
        if (overlap <= 0.0)
            continue;
        switch (s.kind) {
          case TaskKind::GpuCompute:
            gpu_busy[s.rank] += overlap;
            break;
          case TaskKind::CpuOptimizer:
            // Socket identity is not on the span; attribute evenly.
            cpu_busy[{0, 0}] += overlap;
            break;
          case TaskKind::NvmeIo:
            storage_active += overlap;
            break;
          default:
            break;
        }
    }

    SimTime gpu_busy_total = 0.0;
    for (auto &[rank, t] : gpu_busy)
        gpu_busy_total += std::min(t, window);
    SimTime cpu_busy_total = 0.0;
    for (auto &[key, t] : cpu_busy)
        cpu_busy_total += t;
    // CPU optimizer work spreads across the node's sockets.
    cpu_busy_total = std::min(cpu_busy_total,
                              window * static_cast<double>(sockets));
    storage_active = std::min(
        storage_active, window * std::max(1.0, static_cast<double>(drives)));

    EnergyReport out;
    out.gpu_busy_fraction = gpus > 0 ? gpu_busy_total / (window * gpus)
                                     : 0.0;
    out.cpu_busy_fraction =
        sockets > 0 ? cpu_busy_total / (window * sockets) : 0.0;

    out.gpu_joules = power.gpu_idle * window * gpus +
                     (power.gpu_busy - power.gpu_idle) * gpu_busy_total;
    out.cpu_joules = power.cpu_idle * window * sockets +
                     (power.cpu_busy - power.cpu_idle) * cpu_busy_total;
    out.storage_joules =
        power.nvme_idle * window * drives +
        (power.nvme_active - power.nvme_idle) * storage_active;
    out.platform_joules = (power.nic * nics +
                           power.node_base * cfg.cluster.nodeCount()) *
                          window;

    out.joules_per_iteration = out.gpu_joules + out.cpu_joules +
                               out.storage_joules +
                               out.platform_joules;
    out.avg_power_watts = out.joules_per_iteration / window;

    const double tokens = static_cast<double>(cfg.batch_per_gpu) *
                          256.0 * gpus;  // paper's fixed seq length
    out.tokens_per_joule = tokens / out.joules_per_iteration;
    return out;
}

std::string
summarizeEnergy(const EnergyReport &energy)
{
    return csprintf(
        "%.1f kJ/iter, %.1f kW avg, %.2f tokens/J "
        "(GPU busy %.0f%%, CPU busy %.0f%%)",
        energy.joules_per_iteration / 1e3,
        energy.avg_power_watts / 1e3, energy.tokens_per_joule,
        100.0 * energy.gpu_busy_fraction,
        100.0 * energy.cpu_busy_fraction);
}

} // namespace dstrain
