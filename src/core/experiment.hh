/**
 * @file
 * The top-level dstrain API: configure a cluster, a strategy and a
 * model size; run the simulated training; get back the paper's
 * metrics (achieved model size, compute throughput, memory
 * composition, per-interconnect bandwidth).
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   ExperimentConfig cfg;
 *   cfg.cluster.nodes = 2;
 *   cfg.strategy = StrategyConfig::zero(3);
 *   cfg.model_billions = 0.0;           // 0 = largest that fits
 *   Experiment exp(cfg);
 *   ExperimentReport report = exp.run();
 * @endcode
 */

#ifndef DSTRAIN_CORE_EXPERIMENT_HH
#define DSTRAIN_CORE_EXPERIMENT_HH

#include <memory>

#include "collectives/communicator.hh"
#include "engine/executor.hh"
#include "fault/fault_injector.hh"
#include "net/flow_scheduler.hh"
#include "net/resilience.hh"
#include "memplan/capacity_solver.hh"
#include "memplan/composition.hh"
#include "recovery/recovery_manager.hh"
#include "telemetry/summary.hh"
#include "util/config_error.hh"

namespace dstrain {

class TaskPool;

/** Everything that defines one experiment run. */
struct ExperimentConfig {
    /** The cluster (defaults to one XE8545 node). */
    ClusterSpec cluster;

    /** The training strategy. */
    StrategyConfig strategy;

    /**
     * Model size in billions of parameters (snapped to the paper
     * ladder); 0 means "the largest model that fits" (the paper's
     * achieved-model-size methodology).
     */
    double model_billions = 0.0;

    int batch_per_gpu = 16;

    /** Iterations to simulate and how many to discard as warm-up. */
    int iterations = 6;
    int warmup = 2;

    PlanTuning tuning;

    /** NVMe drive placement (ZeRO-Infinity only). */
    NvmePlacement placement = nvmePlacementConfig('B');

    MemoryCalibration memory_cal;
    EngineCalibration engine_cal;

    /**
     * Collective-algorithm selection (`--collective-algo`): a default
     * schedule family plus optional per-op overrides. The shipped
     * default (ring everywhere, all-to-all pairwise) reproduces the
     * NCCL-ring behavior every baseline was calibrated against.
     */
    CollectiveAlgoSpec collective_algos;

    /**
     * Telemetry collection mode (streaming by default). Benches that
     * re-probe with ad-hoc windows or bucket widths after run() must
     * set telemetry.retain_segments.
     */
    TelemetryConfig telemetry;

    /**
     * Faults to inject during the run (empty = none; an empty plan
     * produces bit-identical reports to a plain run). See
     * fault/fault_plan.hh and the README quickstart.
     */
    FaultPlan faults;

    /**
     * Checkpoint policy and hard-failure recovery. A disabled
     * checkpoint policy with no hard faults is a guaranteed no-op
     * (bit-identical reports to a plain run). Hard faults (gpudown /
     * nodedown) in `faults` require either a checkpoint policy or
     * acceptance of a full from-scratch replay. See
     * recovery/recovery_manager.hh and DESIGN.md "Recovery model".
     */
    RecoveryConfig recovery;

    /**
     * Degraded-mode network resilience (`--resilience`): routing
     * reconvergence after hard link cuts, the collective progress
     * watchdog and elastic communicator shrink. Disabled (the
     * default) is bit-identical to the pre-resilience engine; see
     * net/resilience.hh and DESIGN.md "Degraded-mode semantics".
     */
    ResilienceConfig resilience;

    std::uint64_t seed = 1;

    /**
     * Fair-share solver mode. Region (the default) re-solves only the
     * contention region an event touches; Global runs the full
     * water-filling oracle on every event. Both are bit-identical;
     * Global exists as the reference and for perf comparison.
     */
    FlowSolverMode flow_solver = FlowSolverMode::Region;

    /**
     * Debug cross-check: run the global oracle after every scheduler
     * event and fatal() if any flow's rate differs bitwise from the
     * region solver's. Slow; use for fuzzing and CI smoke, not runs.
     */
    bool verify_fair_share = false;

    /**
     * Keep the scheduler's incremental completion-time index (the
     * default). False restores the legacy full scan over active flows
     * when scheduling the next completion — bit-identical results,
     * O(active) per event; exists for A/B perf comparison and as the
     * fallback escape hatch.
     */
    bool use_completion_index = true;

    /**
     * Worker threads for filling independent fair-share components of
     * one solve concurrently. 1 (the default) = serial; 0 = one per
     * hardware thread; N > 1 = exactly N. Results are committed in
     * canonical component order, so any value is bit-identical to
     * serial.
     */
    int solver_threads = 1;

    /**
     * Check every field for structural validity; empty result = OK.
     * Experiment::run() panics on a non-empty result; the CLI prints
     * each error and exits instead.
     */
    std::vector<ConfigError> validate() const;
};

/** The metrics one run produces. */
struct ExperimentReport {
    StrategyConfig strategy;
    LadderEntry model;              ///< the size actually trained
    SimTime iteration_time = 0.0;   ///< mean measured iteration time
    double tflops = 0.0;            ///< aggregate achieved TFLOP/s
    MemoryFootprint footprint;
    MemoryComposition composition;
    BandwidthRow bandwidth;         ///< Table IV row
    IterationResult execution;      ///< raw timings + spans
    TelemetryStats telemetry;       ///< telemetry-engine counters

    /** Flow-scheduler work counters (solves, fast paths, completion
     * index, batching; not part of the report fingerprint). */
    FlowScheduler::Stats scheduler;

    /** Per-fault impact deltas (empty when no faults configured). */
    std::vector<FaultImpact> faults;

    /** Per-(op, algorithm) collective usage and volume accounting. */
    std::vector<CollectiveUsage> collectives;

    /** Goodput/recovery accounting (inactive when no checkpoint
     * policy and no hard faults are configured). */
    RecoveryReport recovery;

    /** Degraded-mode counters (all zero unless resilience was enabled
     * and the fabric was actually damaged). */
    ResilienceStats resilience;
};

/**
 * One experiment: owns the simulation, the cluster and every engine;
 * remains inspectable after run() for figure-specific probing.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig cfg);
    ~Experiment();

    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    /** Run the experiment (once per Experiment instance). */
    ExperimentReport run();

    // --- post-run inspection --------------------------------------------

    const ExperimentConfig &config() const { return cfg_; }
    Cluster &cluster() { return *cluster_; }
    Simulation &sim() { return *sim_; }

    /** The resolved model (after ladder snap / capacity solve). */
    const LadderEntry &model() const { return model_; }

    /** The flow scheduler (post-run stats inspection). */
    FlowScheduler &flows() { return *flows_; }

    /** The transfer manager (post-run reroute counters). */
    TransferManager &transfers() { return *tm_; }

    /** The recovery manager (null without checkpoints/hard faults). */
    RecoveryManager *recovery() { return rm_.get(); }

    /** The resilience coordinator (null unless enabled). */
    ResilienceCoordinator *resilience() { return resilience_.get(); }

  private:
    ExperimentConfig cfg_;
    LadderEntry model_;
    std::unique_ptr<TaskPool> pool_;  ///< solver_threads != 1 only
    std::unique_ptr<Simulation> sim_;
    std::unique_ptr<Cluster> cluster_;
    std::unique_ptr<FlowScheduler> flows_;
    std::unique_ptr<TransferManager> tm_;
    std::unique_ptr<CollectiveEngine> coll_;
    std::unique_ptr<AioEngine> aio_;
    std::unique_ptr<Executor> executor_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<ResilienceCoordinator> resilience_;
    std::unique_ptr<RecoveryManager> rm_;
    /** Elastic recovery's degraded planning context + plan: built by
     * the replan callback, kept alive for the rest of the run. */
    std::unique_ptr<Cluster> degraded_cluster_;
    std::unique_ptr<IterationPlan> degraded_plan_;
    bool ran_ = false;
};

/** Convenience: configure + run in one call. */
ExperimentReport runExperiment(ExperimentConfig cfg);

} // namespace dstrain

#endif // DSTRAIN_CORE_EXPERIMENT_HH
