/**
 * @file
 * Implementation of the paper-configuration presets.
 */

#include "core/presets.hh"

#include "util/logging.hh"

namespace dstrain {

ClusterSpec
xe8545Cluster(int nodes)
{
    DSTRAIN_ASSERT(nodes >= 1, "need at least one node");
    ClusterSpec spec;
    spec.nodes = nodes;
    return spec;  // NodeSpec defaults are the Table II XE8545
}

StrategyConfig
paperMegatron(int nodes)
{
    // Model parallelism spans all GPUs: 4-way on one node, 8-way
    // across two (paper Sec. IV intro).
    return StrategyConfig::megatron(nodes == 1 ? 4 : 8, 1);
}

std::vector<StrategyConfig>
comparisonLineup(int nodes)
{
    return {
        StrategyConfig::ddp(),   paperMegatron(nodes),
        StrategyConfig::zero(1), StrategyConfig::zero(2),
        StrategyConfig::zero(3),
    };
}

std::vector<StrategyConfig>
consolidationLineup()
{
    return {
        StrategyConfig::zeroOffloadCpu(2),
        StrategyConfig::zeroOffloadCpu(3),
        StrategyConfig::zeroInfinityNvme(false),
        StrategyConfig::zeroInfinityNvme(true),
    };
}

std::vector<StrategyConfig>
largestModelLineup()
{
    return {
        StrategyConfig::zeroOffloadCpu(1),
        StrategyConfig::zeroOffloadCpu(2),
        StrategyConfig::zeroInfinityNvme(true),
    };
}

std::vector<StrategyConfig>
sensitivityLineup()
{
    return {
        StrategyConfig::ddp(),
        paperMegatron(1),
        StrategyConfig::zero(1),
        StrategyConfig::zero(2),
        StrategyConfig::zero(3),
        StrategyConfig::zeroOffloadCpu(1),
        StrategyConfig::zeroOffloadCpu(2),
        // The paper's Table V row is labeled "optimizer offload" but
        // reaches 33.3 B, which requires the parameters offloaded
        // too (Fig. 13-c's GPU composition confirms); we model it as
        // optimizer+parameter offload.
        StrategyConfig::zeroInfinityNvme(true),
    };
}

ExperimentConfig
paperExperiment(int nodes, const StrategyConfig &strategy,
                double billions)
{
    ExperimentConfig cfg;
    cfg.cluster = xe8545Cluster(nodes);
    cfg.strategy = strategy;
    cfg.model_billions = billions;
    return cfg;
}

} // namespace dstrain
