/**
 * @file
 * Canned configurations matching the paper's experimental setup:
 * the XE8545 cluster, the strategy lineups of each figure, and the
 * Megatron degrees used per node count (TP=4 single node, TP=8
 * spanning both nodes for dual-node runs — the configuration whose
 * inter-node all-reduces cause the Sec. IV-C2 throughput collapse).
 */

#ifndef DSTRAIN_CORE_PRESETS_HH
#define DSTRAIN_CORE_PRESETS_HH

#include <vector>

#include "core/experiment.hh"

namespace dstrain {

/** The paper's cluster: @p nodes XE8545 nodes (Table II defaults). */
ClusterSpec xe8545Cluster(int nodes);

/** The paper's Megatron configuration for a node count. */
StrategyConfig paperMegatron(int nodes);

/**
 * The Fig. 6/7 lineup for a node count: DDP, Megatron, ZeRO-1/2/3.
 */
std::vector<StrategyConfig> comparisonLineup(int nodes);

/**
 * The Fig. 11 consolidation lineup: dual-node Megatron vs
 * single-node ZeRO-Offload (ZeRO-2/3) and ZeRO-Infinity
 * (optimizer / optimizer+parameter NVMe offload).
 */
std::vector<StrategyConfig> consolidationLineup();

/** The Fig. 13 largest-single-node lineup. */
std::vector<StrategyConfig> largestModelLineup();

/** The Table V sensitivity lineup (8 configurations). */
std::vector<StrategyConfig> sensitivityLineup();

/**
 * A ready-to-run ExperimentConfig for one paper configuration.
 *
 * @param nodes     1 or 2.
 * @param strategy  the strategy.
 * @param billions  model size; 0 = largest fitting.
 */
ExperimentConfig paperExperiment(int nodes,
                                 const StrategyConfig &strategy,
                                 double billions = 0.0);

} // namespace dstrain

#endif // DSTRAIN_CORE_PRESETS_HH
