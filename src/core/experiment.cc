/**
 * @file
 * Implementation of the experiment facade.
 */

#include "core/experiment.hh"

#include "model/flops.hh"
#include "util/logging.hh"
#include "util/task_pool.hh"

namespace dstrain {

namespace {

/**
 * Per-fault iteration-time delta: mean length of measured iterations
 * overlapping the fault window over the mean of clean ones.
 */
void
fillIterationSlowdowns(const IterationResult &ex,
                       std::vector<FaultImpact> &faults)
{
    for (FaultImpact &im : faults) {
        const SimTime f0 = im.applied_at;
        const SimTime f1 =
            im.restored ? im.restored_at : ex.measured_end;
        double dirty_sum = 0.0;
        double clean_sum = 0.0;
        int dirty_n = 0;
        int clean_n = 0;
        SimTime begin = 0.0;
        for (SimTime end : ex.iteration_ends) {
            const SimTime start = begin;
            begin = end;
            if (start < ex.measured_begin)
                continue;  // warm-up iteration
            if (start < f1 && end > f0) {
                dirty_sum += end - start;
                ++dirty_n;
            } else {
                clean_sum += end - start;
                ++clean_n;
            }
        }
        if (dirty_n > 0 && clean_n > 0) {
            im.iteration_slowdown =
                (dirty_sum / dirty_n) / (clean_sum / clean_n);
        }
    }
}

/**
 * The spec of the cluster shrunk to the surviving nodes (the elastic
 * recovery path). Group-aware: a dead node shrinks the group that
 * owned it, so the survivors keep their own hardware.
 */
ClusterSpec
degradedSpec(const ClusterSpec &full, const std::vector<bool> &alive)
{
    ClusterSpec degraded = full;
    if (degraded.groups.empty()) {
        degraded.nodes = 0;
        for (const bool a : alive)
            degraded.nodes += a ? 1 : 0;
        return degraded;
    }
    for (std::size_t n = 0; n < alive.size(); ++n) {
        if (alive[n])
            continue;
        // Walk the dead node to its owning group in the *full* spec
        // (indices there are stable) and shrink the degraded copy.
        int rest = static_cast<int>(n);
        for (std::size_t gi = 0; gi < full.groups.size(); ++gi) {
            if (rest < full.groups[gi].count) {
                degraded.groups[gi].count -= 1;
                break;
            }
            rest -= full.groups[gi].count;
        }
    }
    return degraded;
}

} // namespace

std::vector<ConfigError>
ExperimentConfig::validate() const
{
    std::vector<ConfigError> errors;
    if (cluster.nodeCount() < 1)
        errors.push_back({"cluster.nodes", "must be >= 1"});
    if (cluster.groups.empty() && cluster.node.gpus < 1)
        errors.push_back({"cluster.node.gpus", "must be >= 1"});
    for (std::size_t i = 0; i < cluster.groups.size(); ++i) {
        const NodeGroup &g = cluster.groups[i];
        if (g.count < 1 || g.node.gpus < 1 || g.node.nics < 1) {
            errors.push_back(
                {csprintf("cluster.groups[%zu]", i),
                 "needs count >= 1, gpus >= 1 and nics >= 1"});
        }
    }
    for (ConfigError &e : cluster.fabric.validate())
        errors.push_back(std::move(e));
    if (model_billions < 0.0)
        errors.push_back(
            {"model_billions", "must be >= 0 (0 = largest that fits)"});
    if (batch_per_gpu < 1)
        errors.push_back({"batch_per_gpu", "must be >= 1"});
    if (iterations < 1)
        errors.push_back({"iterations", "must be >= 1"});
    if (warmup < 0)
        errors.push_back({"warmup", "must be >= 0"});
    else if (iterations >= 1 && warmup >= iterations)
        errors.push_back(
            {"warmup", csprintf("must be < iterations (%d >= %d)",
                                warmup, iterations)});
    if (telemetry.bucket <= 0.0)
        errors.push_back({"telemetry.bucket", "must be positive"});
    if (solver_threads < 0)
        errors.push_back(
            {"solver_threads", "must be >= 0 (0 = hardware threads)"});
    for (ConfigError &e : faults.validate())
        errors.push_back(std::move(e));
    for (ConfigError &e : recovery.validate(faults, cluster.nodeCount()))
        errors.push_back(std::move(e));
    for (ConfigError &e : resilience.validate())
        errors.push_back(std::move(e));
    return errors;
}

Experiment::Experiment(ExperimentConfig cfg)
    : cfg_(std::move(cfg))
{
    validateStrategy(cfg_.strategy);

    // NVMe strategies must train against the configured placement's
    // drives; install them into the node spec before building.
    // Checkpoints write to the same volumes, so a checkpoint policy
    // also needs the drives installed.
    if (cfg_.strategy.offload == OffloadTarget::Nvme ||
        cfg_.recovery.checkpoint.enabled()) {
        applyPlacement(cfg_.placement, cfg_.cluster.node);
        for (NodeGroup &g : cfg_.cluster.groups)
            applyPlacement(cfg_.placement, g.node);
    }

    // Resolve the model size.
    if (cfg_.model_billions > 0.0) {
        model_ = ladderEntryFor(cfg_.model_billions);
        if (!fitsCluster(TransformerConfig::gpt2Like(model_.layers),
                         cfg_.strategy, cfg_.cluster, cfg_.batch_per_gpu,
                         cfg_.memory_cal)) {
            warn("%s cannot fit %.1fB on this cluster per the memory "
                 "model; simulating anyway (throughput study)",
                 cfg_.strategy.displayName().c_str(), model_.billions);
        }
    } else {
        model_ = solveMaxModel(cfg_.strategy, cfg_.cluster,
                               cfg_.batch_per_gpu, cfg_.memory_cal)
                     .entry;
    }

    sim_ = std::make_unique<Simulation>(cfg_.seed);
    cluster_ = std::make_unique<Cluster>(cfg_.cluster);
    if (cfg_.solver_threads != 1) {
        // The experiment thread participates as a pool worker, so
        // N explicit threads means N - 1 spawned ones (0 = one per
        // hardware thread, TaskPool's own default).
        pool_ = std::make_unique<TaskPool>(
            cfg_.solver_threads > 1 ? cfg_.solver_threads - 1 : 0);
    }
    FlowSchedulerOptions fopts;
    fopts.mode = cfg_.flow_solver;
    fopts.verify_fair_share = cfg_.verify_fair_share;
    fopts.completion_index = cfg_.use_completion_index;
    fopts.fill_pool = pool_.get();
    flows_ = std::make_unique<FlowScheduler>(*sim_, cluster_->topology(),
                                             fopts);
    tm_ = std::make_unique<TransferManager>(*sim_, *cluster_, *flows_);
    coll_ = std::make_unique<CollectiveEngine>(*tm_);
    coll_->setAlgoSpec(cfg_.collective_algos);
    aio_ = std::make_unique<AioEngine>(*tm_);
    executor_ = std::make_unique<Executor>(*sim_, *cluster_, *flows_,
                                           *tm_, *coll_, *aio_,
                                           cfg_.engine_cal);
    executor_->configureStorage(cfg_.placement);
    executor_->configureTelemetry(cfg_.telemetry);
    if (!cfg_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(
            *sim_, *cluster_, *flows_, *tm_, *executor_, *aio_,
            cfg_.faults);
    }
    if (cfg_.resilience.enabled) {
        // Degraded mode: routes avoid dead links after the
        // reconvergence window, transfers defer reroute scans to the
        // window's close, collectives get the progress watchdog and
        // the degraded-schedule fallback.
        cluster_->router().setAvoidDeadLinks(true);
        resilience_ = std::make_unique<ResilienceCoordinator>(
            *sim_, cluster_->router(), cfg_.resilience);
        tm_->setResilience(resilience_.get());
        coll_->configureResilience(resilience_.get());
        if (injector_)
            injector_->setTopologyBus(&resilience_->bus());
    }
    if (cfg_.recovery.checkpoint.enabled() ||
        hasHardFaults(cfg_.faults)) {
        rm_ = std::make_unique<RecoveryManager>(*sim_, *cluster_, *tm_,
                                                *executor_, cfg_.recovery);
        if (injector_)
            rm_->attachInjector(*injector_);
        if (resilience_ &&
            cfg_.recovery.policy == RecoveryPolicyKind::Elastic) {
            rm_->setCommShrinkHook(
                [this](const std::vector<int> &dead_ranks) {
                    coll_->markRanksDead(dead_ranks);
                });
        }
    }
}

Experiment::~Experiment() = default;

ExperimentReport
Experiment::run()
{
    DSTRAIN_ASSERT(!ran_, "Experiment::run() called twice");
    ran_ = true;

    const std::vector<ConfigError> errors = cfg_.validate();
    if (!errors.empty())
        panic("invalid experiment config:\n%s",
              formatConfigErrors(errors).c_str());

    const TransformerConfig model_cfg =
        TransformerConfig::gpt2Like(model_.layers);

    PlanContext ctx{*cluster_, model_cfg, cfg_.batch_per_gpu,
                    cfg_.placement, cfg_.tuning};
    std::unique_ptr<Strategy> strategy =
        Strategy::create(cfg_.strategy);
    IterationPlan plan = strategy->buildIteration(ctx);

    if (injector_)
        injector_->arm();
    if (rm_) {
        rm_->arm(cfg_.strategy, model_.params);
        if (cfg_.recovery.policy == RecoveryPolicyKind::Elastic) {
            // Elastic re-plan: build the same strategy's iteration on
            // a cluster shrunk to the surviving nodes and map its
            // logical ranks/nodes onto the physical survivors.
            auto alive = std::make_shared<std::vector<bool>>(
                static_cast<std::size_t>(cfg_.cluster.nodeCount()),
                true);
            rm_->setReplanner(
                [this, model_cfg, alive](
                    int dead_node, std::vector<int> *rank_map,
                    std::vector<int> *node_map) -> const IterationPlan * {
                    (*alive)[static_cast<std::size_t>(dead_node)] = false;
                    degraded_cluster_ = std::make_unique<Cluster>(
                        degradedSpec(cfg_.cluster, *alive));
                    PlanContext dctx{*degraded_cluster_, model_cfg,
                                     cfg_.batch_per_gpu, cfg_.placement,
                                     cfg_.tuning};
                    degraded_plan_ = std::make_unique<IterationPlan>(
                        Strategy::create(cfg_.strategy)
                            ->buildIteration(dctx));
                    rank_map->clear();
                    node_map->clear();
                    for (int n = 0; n < cluster_->nodeCount(); ++n) {
                        if (!(*alive)[static_cast<std::size_t>(n)])
                            continue;
                        node_map->push_back(n);
                        for (int l = 0; l < cluster_->gpusOfNode(n);
                             ++l) {
                            rank_map->push_back(cluster_->rankOf(n, l));
                        }
                    }
                    return degraded_plan_.get();
                });
        }
    }

    ExperimentReport report;
    report.strategy = cfg_.strategy;
    report.model = model_;
    report.execution =
        executor_->run(plan, cfg_.iterations, cfg_.warmup);
    tm_->verifyConservation();
    report.iteration_time = report.execution.avgIterationTime();
    report.tflops = report.execution.achievedTflops();

    report.footprint = computeFootprint(
        model_cfg, cfg_.strategy, cfg_.cluster, cfg_.batch_per_gpu,
        cfg_.memory_cal);
    report.composition = composeMemory(
        cfg_.strategy.displayName(), report.footprint,
        cfg_.cluster.totalGpus(), cfg_.cluster.nodeCount());

    report.bandwidth = measureBandwidthRow(
        cfg_.strategy.displayName(), cluster_->topology(),
        report.execution.measured_begin, report.execution.measured_end,
        cfg_.telemetry.bucket);
    report.telemetry = cluster_->topology().telemetryStats();

    if (injector_) {
        injector_->finalize(report.execution.measured_begin,
                            report.execution.measured_end);
        report.faults = injector_->impacts();
        fillIterationSlowdowns(report.execution, report.faults);
    }
    if (rm_)
        report.recovery = rm_->buildReport(report.execution);
    if (resilience_)
        report.resilience = resilience_->stats();
    report.collectives = coll_->usage();
    report.scheduler = flows_->stats();
    return report;
}

ExperimentReport
runExperiment(ExperimentConfig cfg)
{
    Experiment exp(std::move(cfg));
    return exp.run();
}

} // namespace dstrain
