/**
 * @file
 * Implementation of the experiment facade.
 */

#include "core/experiment.hh"

#include "model/flops.hh"
#include "util/logging.hh"

namespace dstrain {

Experiment::Experiment(ExperimentConfig cfg)
    : cfg_(std::move(cfg))
{
    validateStrategy(cfg_.strategy);

    // NVMe strategies must train against the configured placement's
    // drives; install them into the node spec before building.
    if (cfg_.strategy.offload == OffloadTarget::Nvme)
        applyPlacement(cfg_.placement, cfg_.cluster.node);

    // Resolve the model size.
    if (cfg_.model_billions > 0.0) {
        model_ = ladderEntryFor(cfg_.model_billions);
        if (!fitsCluster(TransformerConfig::gpt2Like(model_.layers),
                         cfg_.strategy, cfg_.cluster, cfg_.batch_per_gpu,
                         cfg_.memory_cal)) {
            warn("%s cannot fit %.1fB on this cluster per the memory "
                 "model; simulating anyway (throughput study)",
                 cfg_.strategy.displayName().c_str(), model_.billions);
        }
    } else {
        model_ = solveMaxModel(cfg_.strategy, cfg_.cluster,
                               cfg_.batch_per_gpu, cfg_.memory_cal)
                     .entry;
    }

    sim_ = std::make_unique<Simulation>(cfg_.seed);
    cluster_ = std::make_unique<Cluster>(cfg_.cluster);
    flows_ = std::make_unique<FlowScheduler>(*sim_, cluster_->topology());
    tm_ = std::make_unique<TransferManager>(*sim_, *cluster_, *flows_);
    coll_ = std::make_unique<CollectiveEngine>(*tm_);
    aio_ = std::make_unique<AioEngine>(*tm_);
    executor_ = std::make_unique<Executor>(*sim_, *cluster_, *flows_,
                                           *tm_, *coll_, *aio_,
                                           cfg_.engine_cal);
    executor_->configureStorage(cfg_.placement);
    executor_->configureTelemetry(cfg_.telemetry);
}

Experiment::~Experiment() = default;

ExperimentReport
Experiment::run()
{
    DSTRAIN_ASSERT(!ran_, "Experiment::run() called twice");
    ran_ = true;

    const TransformerConfig model_cfg =
        TransformerConfig::gpt2Like(model_.layers);

    PlanContext ctx{*cluster_, model_cfg, cfg_.batch_per_gpu,
                    cfg_.placement, cfg_.tuning};
    std::unique_ptr<Strategy> strategy =
        Strategy::create(cfg_.strategy);
    IterationPlan plan = strategy->buildIteration(ctx);

    ExperimentReport report;
    report.strategy = cfg_.strategy;
    report.model = model_;
    report.execution =
        executor_->run(plan, cfg_.iterations, cfg_.warmup);
    report.iteration_time = report.execution.avgIterationTime();
    report.tflops = report.execution.achievedTflops();

    report.footprint = computeFootprint(
        model_cfg, cfg_.strategy, cfg_.cluster.totalGpus(),
        cfg_.cluster.nodes, cfg_.batch_per_gpu, cfg_.memory_cal);
    report.composition = composeMemory(
        cfg_.strategy.displayName(), report.footprint,
        cfg_.cluster.totalGpus(), cfg_.cluster.nodes);

    report.bandwidth = measureBandwidthRow(
        cfg_.strategy.displayName(), cluster_->topology(),
        report.execution.measured_begin, report.execution.measured_end,
        cfg_.telemetry.bucket);
    report.telemetry = cluster_->topology().telemetryStats();
    return report;
}

ExperimentReport
runExperiment(ExperimentConfig cfg)
{
    Experiment exp(std::move(cfg));
    return exp.run();
}

} // namespace dstrain
