/**
 * @file
 * Report rendering: turn ExperimentReports into the tables and
 * figure-style text blocks the benches print.
 */

#ifndef DSTRAIN_CORE_REPORT_HH
#define DSTRAIN_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace dstrain {

/** One-line summary ("ZeRO-3: 6.6B, 381 TFLOP/s, iter 2.27 s"). */
std::string summarizeReport(const ExperimentReport &report);

/**
 * One-line summary of the telemetry-engine counters ("telemetry: 420
 * stream buckets, 0 segments retained, 18432 deposits, 12.4 KiB").
 */
std::string summarizeTelemetry(const TelemetryStats &stats);

/**
 * Two-line summary of the flow-scheduler work counters: solves and
 * incremental fast paths on the first line, completion-index /
 * batching / parallel-fill counters on the second.
 */
std::string summarizeScheduler(const FlowScheduler::Stats &stats);

/**
 * A comparison table over several reports: model size, throughput,
 * iteration time, memory totals.
 */
TextTable comparisonTable(const std::vector<ExperimentReport> &reports);

/** A memory-composition table (paper Fig. 11-b / 13-c style). */
TextTable
compositionTable(const std::vector<ExperimentReport> &reports);

/**
 * A horizontal ASCII bar chart: one row per (label, value) with
 * bars scaled to the maximum value.
 */
std::string barChart(const std::vector<std::string> &labels,
                     const std::vector<double> &values,
                     const std::string &unit, int width = 50);

/**
 * A one-line ASCII sparkline of a series (downsampled to @p width
 * columns; glyphs " .:-=+*#%@" scale with the bucket mean relative
 * to the series maximum). Used for the bandwidth-pattern figures.
 */
std::string sparkline(const std::vector<double> &values, int width = 80);

/**
 * A per-fault impact table: affected links with nominal vs faulted
 * capacity, before/during/after average bandwidth, and the measured
 * iteration-time slowdown. Empty table when the report has no faults.
 */
TextTable faultImpactTable(const ExperimentReport &report);

/**
 * One-line goodput summary of a recovered run ("goodput 312.4 of
 * 356.1 TFLOP/s, 3 ckpts (1.2% overhead), 1 recovery, 2 iters
 * lost"). Empty string when the report has no recovery section.
 */
std::string summarizeRecovery(const RecoveryReport &recovery);

/**
 * One-line summary of the degraded-mode resilience counters
 * ("resilience: 2 route invalidations, 1 deferred scan, ..."). Empty
 * string when no counter fired.
 */
std::string summarizeResilience(const ResilienceStats &stats);

/**
 * A goodput/recovery comparison table over several reports:
 * goodput vs throughput, checkpoint count/overhead, recoveries,
 * lost work, time-to-recover. Reports without an active recovery
 * section render as dashes.
 */
TextTable recoveryTable(const std::vector<ExperimentReport> &reports);

/**
 * A per-(op, algorithm) collective-usage table: invocation count,
 * payload bytes and total fabric bytes for every collective flavor
 * the run issued. Empty table when the run issued none.
 */
TextTable collectiveUsageTable(const ExperimentReport &report);

/**
 * A bit-exact serialization of every numeric field of a report
 * (floats rendered with the hex "%a" format, so two fingerprints
 * compare equal iff the reports are bit-identical). Used by the
 * determinism regression tests and the sweep benches to assert that
 * SweepRunner output is independent of the job count.
 */
std::string reportFingerprint(const ExperimentReport &report);

} // namespace dstrain

#endif // DSTRAIN_CORE_REPORT_HH
