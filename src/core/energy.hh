/**
 * @file
 * Energy estimation — an extension beyond the paper. The paper's
 * introduction motivates the work with training cost and
 * environmental impact but never quantifies energy; with the
 * execution spans in hand the simulator can. The model is a
 * utilization-based power estimate: every device draws idle power
 * for the whole iteration and the busy-idle delta for the time the
 * spans show it working.
 */

#ifndef DSTRAIN_CORE_ENERGY_HH
#define DSTRAIN_CORE_ENERGY_HH

#include "core/experiment.hh"

namespace dstrain {

/** Device power constants (watts). Defaults follow the Table II
 *  hardware: 400 W A100-SXM4, 280 W TDP EPYC 7763, D7-P5600 and
 *  ConnectX-6 datasheet figures, plus a per-node platform floor
 *  (fans, VRs, DIMMs). */
struct PowerModel {
    double gpu_busy = 400.0;
    double gpu_idle = 85.0;
    double cpu_busy = 280.0;   ///< per socket
    double cpu_idle = 95.0;    ///< per socket
    double nvme_active = 22.0; ///< per drive
    double nvme_idle = 6.0;
    double nic = 22.0;         ///< per NIC (roughly constant)
    double node_base = 250.0;  ///< platform floor per node
};

/** The energy estimate for one experiment. */
struct EnergyReport {
    double joules_per_iteration = 0.0;
    double avg_power_watts = 0.0;        ///< whole cluster
    double tokens_per_joule = 0.0;
    double gpu_busy_fraction = 0.0;      ///< mean across ranks
    double cpu_busy_fraction = 0.0;      ///< mean across sockets

    // Per-iteration breakdown (joules).
    double gpu_joules = 0.0;
    double cpu_joules = 0.0;
    double storage_joules = 0.0;
    double platform_joules = 0.0;        ///< NICs + node floor
};

/**
 * Estimate per-iteration energy from the final iteration's spans.
 *
 * @param report the finished experiment report.
 * @param cfg    the configuration it ran with (cluster shape, batch).
 * @param power  power constants.
 */
EnergyReport estimateEnergy(const ExperimentReport &report,
                            const ExperimentConfig &cfg,
                            const PowerModel &power = {});

/** One-line rendering ("2.1 kJ/iter, 4.1 kW avg, 7.9 tokens/J"). */
std::string summarizeEnergy(const EnergyReport &energy);

} // namespace dstrain

#endif // DSTRAIN_CORE_ENERGY_HH
