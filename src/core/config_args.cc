/**
 * @file
 * Implementation of the shared flag-to-config plumbing.
 */

#include "core/config_args.hh"

#include <algorithm>

#include "core/presets.hh"
#include "collectives/algorithms.hh"
#include "strategies/strategy.hh"
#include "util/logging.hh"

namespace dstrain {

std::optional<StrategyConfig>
parseStrategyName(const std::string &name, int tp, int pp)
{
    const StrategyFactory *factory = Strategy::find(name);
    if (!factory)
        return std::nullopt;
    return factory->configure(tp, pp);
}

std::string
strategyNameHelp()
{
    std::string help;
    for (const std::string &name : Strategy::names()) {
        if (!help.empty())
            help += " | ";
        help += name;
    }
    return help;
}

void
addExperimentOptions(ArgParser &args)
{
    args.addOption("nodes", "1", "number of compute nodes");
    args.addOption(
        "fabric", "single",
        "fabric spec: single | fat-tree[:k=<k>[,oversub=<f>]] | rail "
        "| spine-leaf[:leaves=<L>,spines=<S>] (common keys: "
        "ecmp=on|off, seed=<n>, paths=<n>)");
    args.addOption(
        "nodes-spec", "",
        "heterogeneous node groups "
        "'<count>:gpus=<g>,nics=<n>[,roce=<Gbps>][,gpu-mem=<GiB>]"
        "[;...]' (overrides --nodes)");
    args.addOption("strategy", "zero3", strategyNameHelp());
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("tp", "0",
                   "tensor-parallel degree (megatron/hybrid/hybrid3d)");
    args.addOption("pp", "0",
                   "pipeline-parallel degree (megatron/hybrid3d)");
    args.addOption("experts", "0",
                   "MoE expert count (moe strategy; 0 = one per GPU)");
    args.addOption(
        "collective-algo", "",
        "collective schedule family: '<algo>' default and/or "
        "'<op>=<algo>' overrides, comma-separated (algos: auto | ring "
        "| pairwise | tree | hierarchical; ops: all-reduce, "
        "reduce-scatter, all-gather, broadcast, reduce, all-to-all); "
        "empty = calibrated ring default");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption("placement", "B",
                   "NVMe drive placement (A-G paper, H extension)");
    args.addOption("bucket", "0.1",
                   "telemetry sampling bucket in seconds");
    args.addOption(
        "faults", "",
        "comma-separated fault spec "
        "<kind>@<begin>[+<duration>]:<target>[:<fraction>], e.g. "
        "'degrade@1+0.5:roce:0.4,straggler@0+2:rank3:0.6'");
    args.addOption(
        "checkpoint", "off",
        "checkpoint policy: '<seconds>[s]' interval, '<k>i' "
        "every-k-iterations, or 'off'");
    args.addOption("recovery", "restart",
                   "hard-fault recovery policy: restart | elastic");
    args.addFlag("resilience",
                 "enable degraded-mode network resilience: routing "
                 "reconvergence around dead links, the collective "
                 "progress watchdog and elastic communicator shrink");
    args.addOption("reconverge", "0.002",
                   "routing-reconvergence delay in seconds "
                   "(with --resilience)");
    args.addOption("collective-timeout", "0.025",
                   "collective per-round progress timeout in seconds; "
                   "0 disables the watchdog (with --resilience)");
    args.addOption("flow-solver", "region",
                   "fair-share solver: region (scoped incremental) | "
                   "global (full-pass oracle)");
    args.addFlag("verify-fair-share",
                 "run the global oracle after every scheduler event "
                 "and abort on any bitwise rate divergence (slow)");
    args.addFlag("no-completion-index",
                 "schedule completions with the legacy full scan over "
                 "active flows instead of the incremental index "
                 "(bit-identical; A/B perf comparison)");
    args.addOption("solver-threads", "1",
                   "threads for parallel fair-share component fills "
                   "(1 = serial, 0 = hardware threads; any value is "
                   "bit-identical)");
    args.addFlag("retain-segments",
                 "keep the full rate-log history instead of the "
                 "streaming bucket accumulators (more memory)");
    args.addFlag("no-serdes",
                 "disable the IOD SerDes contention model (ablation)");
}

ParsedExperiment
experimentFromArgs(const ArgParser &args)
{
    ParsedExperiment out;

    auto strategy = parseStrategyName(
        args.get("strategy"), args.getInt("tp"), args.getInt("pp"));
    if (!strategy) {
        out.errors.push_back(
            {"strategy",
             csprintf("unknown strategy '%s' (expected %s)",
                      args.get("strategy").c_str(),
                      strategyNameHelp().c_str())});
        return out;
    }
    if (strategy->kind == StrategyKind::Moe)
        strategy->experts = args.getInt("experts");
    else if (args.getInt("experts") != 0) {
        out.errors.push_back(
            {"experts", "--experts applies to the moe strategy only"});
        return out;
    }

    out.config = paperExperiment(args.getInt("nodes"), *strategy,
                                 args.getDouble("model"));
    out.config.batch_per_gpu = args.getInt("batch");
    // Executor needs at least one measured (post-warmup) iteration.
    out.config.iterations =
        std::max(out.config.warmup + 1, args.getInt("iterations"));

    const std::string placement = args.get("placement");
    if (placement.size() != 1 || placement[0] < 'A' ||
        placement[0] > 'H') {
        out.errors.push_back(
            {"placement", csprintf("'%s' is not a placement letter "
                                   "(A-G paper, H extension)",
                                   placement.c_str())});
    } else {
        out.config.placement = nvmePlacementConfig(placement[0]);
    }

    out.config.cluster.fabric =
        parseFabricSpec(args.get("fabric"), &out.errors);
    if (!args.get("nodes-spec").empty()) {
        out.config.cluster.groups = parseNodesSpec(
            args.get("nodes-spec"), out.config.cluster.node,
            &out.errors);
    }

    if (!args.get("collective-algo").empty()) {
        std::string algo_err;
        const auto spec = parseCollectiveAlgoSpec(
            args.get("collective-algo"), &algo_err);
        if (spec)
            out.config.collective_algos = *spec;
        else
            out.errors.push_back({"collective-algo", algo_err});
    }

    out.config.cluster.node.model_serdes_contention =
        !args.getFlag("no-serdes");
    out.config.telemetry.bucket = args.getDouble("bucket");
    out.config.telemetry.retain_segments =
        args.getFlag("retain-segments");

    const std::string solver = args.get("flow-solver");
    if (solver == "region") {
        out.config.flow_solver = FlowSolverMode::Region;
    } else if (solver == "global") {
        out.config.flow_solver = FlowSolverMode::Global;
    } else {
        out.errors.push_back(
            {"flow-solver",
             csprintf("unknown solver '%s' (expected region | global)",
                      solver.c_str())});
    }
    out.config.verify_fair_share = args.getFlag("verify-fair-share");
    out.config.use_completion_index =
        !args.getFlag("no-completion-index");
    out.config.solver_threads = args.getInt("solver-threads");

    if (!args.get("faults").empty())
        out.config.faults =
            parseFaultSpec(args.get("faults"), &out.errors);

    out.config.resilience.enabled = args.getFlag("resilience");
    out.config.resilience.reconvergence_delay =
        args.getDouble("reconverge");
    out.config.resilience.collective_timeout =
        args.getDouble("collective-timeout");

    out.config.recovery.checkpoint =
        parseCheckpointSpec(args.get("checkpoint"), &out.errors);
    if (!parseRecoveryPolicy(args.get("recovery"),
                             &out.config.recovery.policy)) {
        out.errors.push_back(
            {"recovery",
             csprintf("unknown recovery policy '%s' (expected "
                      "restart | elastic)",
                      args.get("recovery").c_str())});
    }

    // Structural validation last; skip anything already reported
    // (parseFaultSpec runs the plan's own validate()).
    for (ConfigError &e : out.config.validate()) {
        const bool dup = std::any_of(
            out.errors.begin(), out.errors.end(),
            [&](const ConfigError &have) {
                return have.field == e.field &&
                       have.message == e.message;
            });
        if (!dup)
            out.errors.push_back(std::move(e));
    }
    return out;
}

} // namespace dstrain
