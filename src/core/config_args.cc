/**
 * @file
 * Implementation of the shared flag-to-config plumbing.
 */

#include "core/config_args.hh"

#include <algorithm>

#include "core/presets.hh"
#include "util/logging.hh"

namespace dstrain {

std::optional<StrategyConfig>
parseStrategyName(const std::string &name, int tp, int pp)
{
    if (name == "ddp")
        return StrategyConfig::ddp();
    if (name == "megatron")
        return StrategyConfig::megatron(tp > 0 ? tp : 4,
                                        pp > 0 ? pp : 1);
    if (name == "zero1")
        return tp > 1 ? StrategyConfig::hybridZero(1, tp)
                      : StrategyConfig::zero(1);
    if (name == "zero2")
        return tp > 1 ? StrategyConfig::hybridZero(2, tp)
                      : StrategyConfig::zero(2);
    if (name == "zero3")
        return StrategyConfig::zero(3);
    if (name == "zero1-cpu")
        return StrategyConfig::zeroOffloadCpu(1);
    if (name == "zero2-cpu")
        return StrategyConfig::zeroOffloadCpu(2);
    if (name == "zero3-cpu")
        return StrategyConfig::zeroOffloadCpu(3);
    if (name == "zero3-nvme")
        return StrategyConfig::zeroInfinityNvme(false);
    if (name == "zero3-nvme-params")
        return StrategyConfig::zeroInfinityNvme(true);
    return std::nullopt;
}

const char *
strategyNameHelp()
{
    return "ddp | megatron | zero1 | zero2 | zero3 | zero1-cpu | "
           "zero2-cpu | zero3-cpu | zero3-nvme | zero3-nvme-params";
}

void
addExperimentOptions(ArgParser &args)
{
    args.addOption("nodes", "1", "number of compute nodes");
    args.addOption(
        "fabric", "single",
        "fabric spec: single | fat-tree[:k=<k>[,oversub=<f>]] | rail "
        "| spine-leaf[:leaves=<L>,spines=<S>] (common keys: "
        "ecmp=on|off, seed=<n>, paths=<n>)");
    args.addOption(
        "nodes-spec", "",
        "heterogeneous node groups "
        "'<count>:gpus=<g>,nics=<n>[,roce=<Gbps>][,gpu-mem=<GiB>]"
        "[;...]' (overrides --nodes)");
    args.addOption("strategy", "zero3", strategyNameHelp());
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("tp", "0",
                   "tensor-parallel degree (megatron/hybrid)");
    args.addOption("pp", "0", "pipeline-parallel degree (megatron)");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption("placement", "B",
                   "NVMe drive placement (A-G paper, H extension)");
    args.addOption("bucket", "0.1",
                   "telemetry sampling bucket in seconds");
    args.addOption(
        "faults", "",
        "comma-separated fault spec "
        "<kind>@<begin>[+<duration>]:<target>[:<fraction>], e.g. "
        "'degrade@1+0.5:roce:0.4,straggler@0+2:rank3:0.6'");
    args.addOption(
        "checkpoint", "off",
        "checkpoint policy: '<seconds>[s]' interval, '<k>i' "
        "every-k-iterations, or 'off'");
    args.addOption("recovery", "restart",
                   "hard-fault recovery policy: restart | elastic");
    args.addOption("flow-solver", "region",
                   "fair-share solver: region (scoped incremental) | "
                   "global (full-pass oracle)");
    args.addFlag("verify-fair-share",
                 "run the global oracle after every scheduler event "
                 "and abort on any bitwise rate divergence (slow)");
    args.addFlag("no-completion-index",
                 "schedule completions with the legacy full scan over "
                 "active flows instead of the incremental index "
                 "(bit-identical; A/B perf comparison)");
    args.addOption("solver-threads", "1",
                   "threads for parallel fair-share component fills "
                   "(1 = serial, 0 = hardware threads; any value is "
                   "bit-identical)");
    args.addFlag("retain-segments",
                 "keep the full rate-log history instead of the "
                 "streaming bucket accumulators (more memory)");
    args.addFlag("no-serdes",
                 "disable the IOD SerDes contention model (ablation)");
}

ParsedExperiment
experimentFromArgs(const ArgParser &args)
{
    ParsedExperiment out;

    const auto strategy = parseStrategyName(
        args.get("strategy"), args.getInt("tp"), args.getInt("pp"));
    if (!strategy) {
        out.errors.push_back(
            {"strategy",
             csprintf("unknown strategy '%s' (expected %s)",
                      args.get("strategy").c_str(),
                      strategyNameHelp())});
        return out;
    }

    out.config = paperExperiment(args.getInt("nodes"), *strategy,
                                 args.getDouble("model"));
    out.config.batch_per_gpu = args.getInt("batch");
    // Executor needs at least one measured (post-warmup) iteration.
    out.config.iterations =
        std::max(out.config.warmup + 1, args.getInt("iterations"));

    const std::string placement = args.get("placement");
    if (placement.size() != 1 || placement[0] < 'A' ||
        placement[0] > 'H') {
        out.errors.push_back(
            {"placement", csprintf("'%s' is not a placement letter "
                                   "(A-G paper, H extension)",
                                   placement.c_str())});
    } else {
        out.config.placement = nvmePlacementConfig(placement[0]);
    }

    out.config.cluster.fabric =
        parseFabricSpec(args.get("fabric"), &out.errors);
    if (!args.get("nodes-spec").empty()) {
        out.config.cluster.groups = parseNodesSpec(
            args.get("nodes-spec"), out.config.cluster.node,
            &out.errors);
    }

    out.config.cluster.node.model_serdes_contention =
        !args.getFlag("no-serdes");
    out.config.telemetry.bucket = args.getDouble("bucket");
    out.config.telemetry.retain_segments =
        args.getFlag("retain-segments");

    const std::string solver = args.get("flow-solver");
    if (solver == "region") {
        out.config.flow_solver = FlowSolverMode::Region;
    } else if (solver == "global") {
        out.config.flow_solver = FlowSolverMode::Global;
    } else {
        out.errors.push_back(
            {"flow-solver",
             csprintf("unknown solver '%s' (expected region | global)",
                      solver.c_str())});
    }
    out.config.verify_fair_share = args.getFlag("verify-fair-share");
    out.config.use_completion_index =
        !args.getFlag("no-completion-index");
    out.config.solver_threads = args.getInt("solver-threads");

    if (!args.get("faults").empty())
        out.config.faults =
            parseFaultSpec(args.get("faults"), &out.errors);

    out.config.recovery.checkpoint =
        parseCheckpointSpec(args.get("checkpoint"), &out.errors);
    if (!parseRecoveryPolicy(args.get("recovery"),
                             &out.config.recovery.policy)) {
        out.errors.push_back(
            {"recovery",
             csprintf("unknown recovery policy '%s' (expected "
                      "restart | elastic)",
                      args.get("recovery").c_str())});
    }

    // Structural validation last; skip anything already reported
    // (parseFaultSpec runs the plan's own validate()).
    for (ConfigError &e : out.config.validate()) {
        const bool dup = std::any_of(
            out.errors.begin(), out.errors.end(),
            [&](const ConfigError &have) {
                return have.field == e.field &&
                       have.message == e.message;
            });
        if (!dup)
            out.errors.push_back(std::move(e));
    }
    return out;
}

} // namespace dstrain
