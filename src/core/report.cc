/**
 * @file
 * Implementation of the report rendering.
 */

#include "core/report.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

std::string
summarizeReport(const ExperimentReport &report)
{
    return csprintf("%-28s %6.1fB params  %8.1f TFLOP/s  iter %s",
                    report.strategy.displayName().c_str(),
                    report.model.billions, report.tflops,
                    formatTime(report.iteration_time).c_str());
}

std::string
summarizeTelemetry(const TelemetryStats &stats)
{
    return csprintf(
        "telemetry: %llu stream buckets, %llu segments retained, "
        "%llu deposits, %.1f KiB",
        static_cast<unsigned long long>(stats.stream_buckets),
        static_cast<unsigned long long>(stats.segments_retained),
        static_cast<unsigned long long>(stats.buckets_touched),
        static_cast<double>(stats.memory_bytes) / 1024.0);
}

std::string
summarizeScheduler(const FlowScheduler::Stats &stats)
{
    std::string out = csprintf(
        "scheduler: %llu solves (%llu region, peak %llu flows), "
        "%llu fast starts, %llu fast finishes, %llu/%llu fast "
        "capacity updates, %llu cancels, %llu stalled parks",
        static_cast<unsigned long long>(stats.recomputes),
        static_cast<unsigned long long>(stats.region_solves),
        static_cast<unsigned long long>(stats.region_peak),
        static_cast<unsigned long long>(stats.fast_starts),
        static_cast<unsigned long long>(stats.fast_finishes),
        static_cast<unsigned long long>(stats.fast_capacity_updates),
        static_cast<unsigned long long>(stats.capacity_updates),
        static_cast<unsigned long long>(stats.cancels),
        static_cast<unsigned long long>(stats.stalled_parks));
    out += csprintf(
        "\nscheduler: %llu index updates, %llu scans avoided, "
        "%llu batched events, %llu parallel component solves, "
        "%llu rate updates",
        static_cast<unsigned long long>(stats.completion_index_updates),
        static_cast<unsigned long long>(stats.completion_scans_avoided),
        static_cast<unsigned long long>(stats.batched_events),
        static_cast<unsigned long long>(stats.parallel_component_solves),
        static_cast<unsigned long long>(stats.rate_updates));
    return out;
}

TextTable
comparisonTable(const std::vector<ExperimentReport> &reports)
{
    TextTable table({"Configuration", "Model (B params)",
                     "Throughput (TFLOP/s)", "Iteration (s)",
                     "GPU mem/GPU (GB)", "CPU mem/node (GB)",
                     "NVMe/node (GB)"});
    for (const ExperimentReport &r : reports) {
        table.addRow({
            r.strategy.displayName(),
            csprintf("%.1f", r.model.billions),
            csprintf("%.1f", r.tflops),
            csprintf("%.3f", r.iteration_time),
            csprintf("%.1f", r.footprint.gpu_per_gpu / units::GB),
            csprintf("%.1f", r.footprint.cpu_per_node / units::GB),
            csprintf("%.1f", r.footprint.nvme_per_node / units::GB),
        });
    }
    return table;
}

TextTable
compositionTable(const std::vector<ExperimentReport> &reports)
{
    TextTable table({"Configuration", "Total (GB)", "GPU", "CPU",
                     "NVMe"});
    for (const ExperimentReport &r : reports) {
        const MemoryComposition &c = r.composition;
        table.addRow({
            r.strategy.displayName(),
            csprintf("%.0f", c.total() / units::GB),
            compositionCell(c.gpu, c.gpuShare()),
            compositionCell(c.cpu, c.cpuShare()),
            compositionCell(c.nvme, c.nvmeShare()),
        });
    }
    return table;
}

std::string
barChart(const std::vector<std::string> &labels,
         const std::vector<double> &values, const std::string &unit,
         int width)
{
    DSTRAIN_ASSERT(labels.size() == values.size(),
                   "bar chart labels/values mismatch");
    double max_v = 0.0;
    std::size_t max_label = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        max_v = std::max(max_v, values[i]);
        max_label = std::max(max_label, labels[i].size());
    }
    if (max_v <= 0.0)
        max_v = 1.0;

    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const int bar = static_cast<int>(values[i] / max_v * width);
        out += csprintf("%s |%s%s %.1f %s\n",
                        padRight(labels[i], max_label).c_str(),
                        std::string(static_cast<std::size_t>(bar), '#')
                            .c_str(),
                        std::string(
                            static_cast<std::size_t>(width - bar), ' ')
                            .c_str(),
                        values[i], unit.c_str());
    }
    return out;
}

std::string
sparkline(const std::vector<double> &values, int width)
{
    static const char glyphs[] = " .:-=+*#%@";
    constexpr int kLevels = 9;
    if (values.empty() || width <= 0)
        return "";
    double max_v = 0.0;
    for (double v : values)
        max_v = std::max(max_v, v);
    if (max_v <= 0.0)
        max_v = 1.0;

    std::string out;
    const std::size_t n = values.size();
    const int cols = std::min<int>(width, static_cast<int>(n));
    for (int c = 0; c < cols; ++c) {
        const std::size_t lo = static_cast<std::size_t>(c) * n /
                               static_cast<std::size_t>(cols);
        const std::size_t hi = (static_cast<std::size_t>(c) + 1) * n /
                               static_cast<std::size_t>(cols);
        double sum = 0.0;
        for (std::size_t i = lo; i < std::max(hi, lo + 1); ++i)
            sum += values[i];
        const double mean = sum / std::max<std::size_t>(hi - lo, 1);
        const int level =
            static_cast<int>(mean / max_v * kLevels + 0.5);
        out += glyphs[std::clamp(level, 0, kLevels)];
    }
    return out;
}

TextTable
faultImpactTable(const ExperimentReport &report)
{
    TextTable table({"Fault", "Link", "Nominal", "Faulted",
                     "Avg before", "Avg during", "Avg after",
                     "Iter slowdown"});
    for (const FaultImpact &im : report.faults) {
        for (std::size_t k = 0; k < im.links.size(); ++k) {
            const LinkImpact &li = im.links[k];
            table.addRow({
                k == 0 ? im.event.str() : "",
                li.label,
                formatBandwidth(li.nominal),
                formatBandwidth(li.faulted),
                formatBandwidth(li.avg_before),
                formatBandwidth(li.avg_during),
                formatBandwidth(li.avg_after),
                k == 0 ? csprintf("%.2fx", im.iteration_slowdown) : "",
            });
        }
        // Stragglers / NVMe latency faults may touch no links at all;
        // still show the slowdown row.
        if (im.links.empty()) {
            table.addRow({im.event.str(), "-", "-", "-", "-", "-", "-",
                          csprintf("%.2fx", im.iteration_slowdown)});
        }
    }
    return table;
}

std::string
summarizeRecovery(const RecoveryReport &recovery)
{
    if (!recovery.active)
        return "";
    return csprintf(
        "goodput %.1f of %.1f TFLOP/s, %d ckpt%s (%.1f%% overhead), "
        "%d recover%s, %d iter%s lost",
        recovery.goodput_tflops, recovery.throughput_tflops,
        recovery.checkpoints, recovery.checkpoints == 1 ? "" : "s",
        recovery.checkpoint_overhead * 100.0, recovery.recoveries,
        recovery.recoveries == 1 ? "y" : "ies",
        recovery.lost_iterations,
        recovery.lost_iterations == 1 ? "" : "s");
}

std::string
summarizeResilience(const ResilienceStats &stats)
{
    if (!stats.any())
        return "";
    return csprintf(
        "resilience: %llu route invalidation%s, %llu deferred scan%s, "
        "%llu collective timeout%s, %llu fallback%s, %llu comm "
        "shrink%s",
        static_cast<unsigned long long>(stats.route_invalidations),
        stats.route_invalidations == 1 ? "" : "s",
        static_cast<unsigned long long>(stats.reconvergence_waits),
        stats.reconvergence_waits == 1 ? "" : "s",
        static_cast<unsigned long long>(stats.collective_timeouts),
        stats.collective_timeouts == 1 ? "" : "s",
        static_cast<unsigned long long>(stats.collective_fallbacks),
        stats.collective_fallbacks == 1 ? "" : "s",
        static_cast<unsigned long long>(stats.comm_shrinks),
        stats.comm_shrinks == 1 ? "" : "s");
}

TextTable
recoveryTable(const std::vector<ExperimentReport> &reports)
{
    TextTable table({"Configuration", "Goodput (TFLOP/s)",
                     "Throughput (TFLOP/s)", "Ckpts",
                     "Ckpt overhead", "Recoveries", "Lost (s)",
                     "Lost iters", "TTR (s)"});
    for (const ExperimentReport &r : reports) {
        const RecoveryReport &rc = r.recovery;
        if (!rc.active) {
            table.addRow({r.strategy.displayName(),
                          csprintf("%.1f", r.tflops),
                          csprintf("%.1f", r.tflops), "-", "-", "-",
                          "-", "-", "-"});
            continue;
        }
        table.addRow({
            r.strategy.displayName(),
            csprintf("%.1f", rc.goodput_tflops),
            csprintf("%.1f", rc.throughput_tflops),
            csprintf("%d", rc.checkpoints),
            csprintf("%.2f%%", rc.checkpoint_overhead * 100.0),
            csprintf("%d", rc.recoveries),
            csprintf("%.3f", rc.lost_time),
            csprintf("%d", rc.lost_iterations),
            csprintf("%.3f", rc.time_to_recover),
        });
    }
    return table;
}

TextTable
collectiveUsageTable(const ExperimentReport &report)
{
    TextTable table({"Collective", "Algorithm", "Invocations",
                     "Payload", "Fabric traffic"});
    for (const CollectiveUsage &u : report.collectives) {
        table.addRow({
            collectiveOpName(u.op),
            collectiveAlgoName(u.algo),
            csprintf("%llu",
                     static_cast<unsigned long long>(u.invocations)),
            formatBytes(u.payload_bytes),
            formatBytes(u.fabric_bytes),
        });
    }
    return table;
}

std::string
reportFingerprint(const ExperimentReport &report)
{
    std::string out;
    out += report.strategy.displayName();
    out += csprintf("|model=%a/%d/%lld", report.model.billions,
                    report.model.layers,
                    static_cast<long long>(report.model.params));
    out += csprintf("|iter=%a|tflops=%a", report.iteration_time,
                    report.tflops);
    out += csprintf("|fp=%a/%a/%a", report.footprint.gpu_per_gpu,
                    report.footprint.cpu_per_node,
                    report.footprint.nvme_per_node);
    out += csprintf("|mem=%a/%a/%a", report.composition.gpu,
                    report.composition.cpu, report.composition.nvme);
    out += "|bw=";
    for (const BandwidthSummary &s : report.bandwidth.per_class)
        out += csprintf("%a/%a/%a;", s.avg, s.p90, s.peak);
    out += csprintf("|win=%a..%a|flops=%a",
                    report.execution.measured_begin,
                    report.execution.measured_end,
                    report.execution.flops_per_iteration);
    out += "|ends=";
    for (SimTime t : report.execution.iteration_ends)
        out += csprintf("%a;", t);
    out += csprintf("|spans=%zu", report.execution.spans.size());
    for (const TaskSpan &s : report.execution.spans)
        out += csprintf("%d/%d/%a/%a;", s.task_id, s.rank, s.begin,
                        s.end);
    // Only faulted runs carry this section, so a run with an empty
    // FaultPlan fingerprints identically to a plain run.
    if (!report.faults.empty()) {
        out += csprintf("|faults=%zu", report.faults.size());
        for (const FaultImpact &im : report.faults) {
            out += csprintf("%s/%a/%a/%d/%a:", im.event.str().c_str(),
                            im.applied_at, im.restored_at,
                            im.restored ? 1 : 0,
                            im.iteration_slowdown);
            for (const LinkImpact &li : im.links)
                out += csprintf("%s=%a/%a/%a/%a/%a,", li.label.c_str(),
                                li.nominal, li.faulted, li.avg_before,
                                li.avg_during, li.avg_after);
            out += ";";
        }
    }
    // Gated on a non-ring algorithm actually being used: the default
    // spec resolves every op the presets issue to ring, so plain runs
    // (and explicit `--collective-algo ring` runs) fingerprint
    // identically to the pre-algorithm-library goldens.
    bool non_ring = false;
    for (const CollectiveUsage &u : report.collectives)
        non_ring |= u.algo != CollectiveAlgo::Ring;
    if (non_ring) {
        out += csprintf("|collectives=%zu", report.collectives.size());
        for (const CollectiveUsage &u : report.collectives) {
            out += csprintf("%s/%s/%llu/%a/%a;", collectiveOpName(u.op),
                            collectiveAlgoName(u.algo),
                            static_cast<unsigned long long>(
                                u.invocations),
                            u.payload_bytes, u.fabric_bytes);
        }
    }
    // Likewise gated: a disabled checkpoint policy with no hard
    // faults never constructs a RecoveryManager, so plain runs are
    // unaffected.
    if (report.recovery.active) {
        const RecoveryReport &rc = report.recovery;
        out += csprintf("|recovery=%d/%a/%a/%d/%a/%a/%d/%a/%a/%a/%a",
                        rc.checkpoints, rc.checkpoint_bytes,
                        rc.checkpoint_time, rc.recoveries,
                        rc.recovery_time, rc.lost_time,
                        rc.lost_iterations, rc.time_to_recover,
                        rc.goodput_tflops, rc.throughput_tflops,
                        rc.checkpoint_overhead);
    }
    // Gated on a counter actually firing: resilience enabled on a
    // healthy fabric changes no routing decision and no schedule, so
    // it fingerprints identically to a plain run.
    if (report.resilience.any()) {
        const ResilienceStats &rs = report.resilience;
        out += csprintf(
            "|resilience=%llu/%llu/%llu/%llu/%llu",
            static_cast<unsigned long long>(rs.route_invalidations),
            static_cast<unsigned long long>(rs.reconvergence_waits),
            static_cast<unsigned long long>(rs.collective_timeouts),
            static_cast<unsigned long long>(rs.collective_fallbacks),
            static_cast<unsigned long long>(rs.comm_shrinks));
    }
    return out;
}

} // namespace dstrain
