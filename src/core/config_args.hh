/**
 * @file
 * Shared CLI-flag-to-ExperimentConfig plumbing: every dstrain
 * subcommand (run, sweep, faults) declares the same experiment
 * options and builds its ExperimentConfig the same way, so flag
 * spellings, defaults and validation live in exactly one place.
 */

#ifndef DSTRAIN_CORE_CONFIG_ARGS_HH
#define DSTRAIN_CORE_CONFIG_ARGS_HH

#include <optional>

#include "core/experiment.hh"
#include "util/args.hh"

namespace dstrain {

/** Result of turning parsed flags into a config. */
struct ParsedExperiment {
    ExperimentConfig config;
    std::vector<ConfigError> errors;

    /** True when the config is usable (no errors). */
    bool ok() const { return errors.empty(); }
};

/**
 * Map a CLI strategy name (e.g. "zero3", "zero2-cpu", "megatron")
 * to its configuration; nullopt for an unknown name. @p tp / @p pp
 * override the tensor/pipeline-parallel degrees where applicable.
 */
std::optional<StrategyConfig>
parseStrategyName(const std::string &name, int tp = 0, int pp = 0);

/**
 * The names parseStrategyName() accepts (" | "-joined, for help
 * text), enumerated from the strategy registry.
 */
std::string strategyNameHelp();

/**
 * Declare the experiment-defining options (--nodes, --strategy,
 * --model, --tp, --pp, --batch, --iterations, --placement, --bucket,
 * --faults, --checkpoint, --recovery, --retain-segments, --no-serdes)
 * on @p args. Output-side
 * flags (--csv, --trace, ...) remain each subcommand's own business.
 */
void addExperimentOptions(ArgParser &args);

/**
 * Build an ExperimentConfig from options declared by
 * addExperimentOptions(). Collects every problem (unknown strategy,
 * malformed --faults spec, out-of-range fields) rather than stopping
 * at the first; check ok() before using the config.
 */
ParsedExperiment experimentFromArgs(const ArgParser &args);

} // namespace dstrain

#endif // DSTRAIN_CORE_CONFIG_ARGS_HH
