/**
 * @file
 * Implementation of the topology view.
 */

#include "collectives/topology_view.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

bool
TopologyView::spansNodes(const CommGroup &group) const
{
    if (group.ranks.empty())
        return false;
    const int first = cluster_->nodeOfRank(group.ranks.front());
    for (int r : group.ranks)
        if (cluster_->nodeOfRank(r) != first)
            return true;
    return false;
}

CommGroup
TopologyView::orderNodeMajor(const CommGroup &group) const
{
    CommGroup out = group;
    std::stable_sort(out.ranks.begin(), out.ranks.end(),
                     [this](int a, int b) {
                         return cluster_->nodeOfRank(a) <
                                cluster_->nodeOfRank(b);
                     });
    return out;
}

int
TopologyView::interNodeHops(const CommGroup &group) const
{
    const int n = group.size();
    if (n < 2)
        return 0;
    int hops = 0;
    for (int i = 0; i < n; ++i) {
        const int a = group.ranks[static_cast<std::size_t>(i)];
        const int b = group.ranks[static_cast<std::size_t>((i + 1) % n)];
        if (cluster_->nodeOfRank(a) != cluster_->nodeOfRank(b))
            ++hops;
    }
    return hops;
}

Bps
TopologyView::ringBottleneckBandwidth(const CommGroup &group) const
{
    DSTRAIN_ASSERT(group.size() >= 2, "ring needs >= 2 ranks");
    Bps worst = std::numeric_limits<Bps>::max();
    const int n = group.size();
    for (int i = 0; i < n; ++i) {
        const int a = group.ranks[static_cast<std::size_t>(i)];
        const int b = group.ranks[static_cast<std::size_t>((i + 1) % n)];
        const Route &r = cluster_->router().route(cluster_->gpuByRank(a),
                                                  cluster_->gpuByRank(b));
        worst = std::min(worst, r.rate_cap);
    }
    return worst;
}

std::vector<int>
TopologyView::nodesOf(const CommGroup &group) const
{
    std::vector<int> nodes;
    for (int r : group.ranks) {
        const int node = cluster_->nodeOfRank(r);
        if (std::find(nodes.begin(), nodes.end(), node) == nodes.end())
            nodes.push_back(node);
    }
    return nodes;
}

CommGroup
TopologyView::ranksOnNode(const CommGroup &group, int node) const
{
    CommGroup out;
    for (int r : group.ranks)
        if (cluster_->nodeOfRank(r) == node)
            out.ranks.push_back(r);
    return out;
}

bool
TopologyView::uniformRanksPerNode(const CommGroup &group) const
{
    const std::vector<int> nodes = nodesOf(group);
    if (nodes.empty())
        return false;
    const int first =
        ranksOnNode(group, nodes.front()).size();
    for (int node : nodes)
        if (ranksOnNode(group, node).size() != first)
            return false;
    return true;
}

int
resolveChannels(const CommGroup &group, int requested,
                const TopologyView &view)
{
    if (requested > 0)
        return requested;
    return view.spansNodes(group) ? 2 : 1;
}

} // namespace dstrain
