/**
 * @file
 * Communicator groups and the collective-communication engine.
 *
 * Collectives are modeled as per-round transfer schedules emitted by
 * a pluggable CollectiveAlgorithm (collectives/algorithms.hh). The
 * default is the ring family NCCL selects on this topology:
 * reduce-scatter and all-gather run N-1 rounds in which every rank
 * ships `bytes / N` to its ring neighbor; all-reduce is a
 * reduce-scatter followed by an all-gather; broadcast is a pipelined
 * ring. Pairwise, tree and hierarchical two-level schedules are
 * selectable per invocation (CollectiveOptions::algorithm) or per
 * engine (CollectiveAlgoSpec, the `--collective-algo` grammar).
 * Every round's transfers are real flows on the simulated fabric, so
 * link telemetry sees exactly the traffic pattern the paper's
 * profilers saw.
 *
 * For groups spanning nodes the engine splits traffic across
 * channels pinned to the node's NICs round-robin — mirroring NCCL's
 * multi-channel behavior and reproducing the paper's observation
 * that a portion of inter-node GPU traffic crosses the xGMI links to
 * reach the neighboring CPU's NIC (Sec. IV-E2).
 */

#ifndef DSTRAIN_COLLECTIVES_COMMUNICATOR_HH
#define DSTRAIN_COLLECTIVES_COMMUNICATOR_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "net/transfer_manager.hh"

namespace dstrain {

/** An ordered set of global GPU ranks participating in a collective. */
struct CommGroup {
    std::vector<int> ranks;

    /** Group size. */
    int size() const { return static_cast<int>(ranks.size()); }

    /** A group over ranks [0, n). */
    static CommGroup worldOf(int n);
};

/** The collective operations the training strategies use. */
enum class CollectiveOp {
    AllReduce,
    ReduceScatter,
    AllGather,
    Broadcast,
    Reduce,
    AllToAll,
};

/** Number of CollectiveOp values (spec tables are indexed by op). */
constexpr int kNumCollectiveOps = 6;

/** Human-readable collective name (timeline labels). */
const char *collectiveOpName(CollectiveOp op);

/**
 * The schedule families a collective can run as. Auto defers the
 * choice: per invocation to the engine's spec, and in the spec to
 * the topology-aware policy (chooseCollectiveAlgorithm).
 */
enum class CollectiveAlgo {
    Auto,
    Ring,
    Pairwise,
    Tree,
    Hierarchical,
};

/** Human-readable algorithm name (CLI, report tables). */
const char *collectiveAlgoName(CollectiveAlgo algo);

/**
 * Per-engine algorithm selection: a default plus optional per-op
 * overrides, populated from the `--collective-algo` grammar
 * (parseCollectiveAlgoSpec in algorithms.hh). The shipped default —
 * ring for every op — reproduces the pre-library engine bit for bit.
 */
struct CollectiveAlgoSpec {
    /** Algorithm when no per-op override matches; Auto = topology pick. */
    CollectiveAlgo default_algo = CollectiveAlgo::Ring;

    /** Per-op override; Auto = fall through to default_algo. */
    std::array<CollectiveAlgo, kNumCollectiveOps> per_op{};

    /** The requested (possibly Auto) algorithm for @p op. */
    CollectiveAlgo requestedFor(CollectiveOp op) const
    {
        const CollectiveAlgo o =
            per_op[static_cast<std::size_t>(static_cast<int>(op))];
        return o != CollectiveAlgo::Auto ? o : default_algo;
    }
};

/** One transfer of a collective round (global src/dst ranks). */
struct CollectiveHop {
    int src_rank;
    int dst_rank;
    Bytes bytes;
};

/** One round: every entry transfers concurrently; rounds barrier. */
using CollectiveRound = std::vector<CollectiveHop>;

/** Tuning knobs for one collective invocation. */
struct CollectiveOptions {
    /**
     * Number of parallel channels (rings). 0 = automatic: 1 for
     * intra-node groups, 2 (one per NIC) for inter-node groups
     * (resolveChannels in topology_view.hh).
     */
    int channels = 0;

    /**
     * Pin channel c's inter-node egress/ingress to NIC (c % nics).
     * This is what produces cross-socket xGMI traffic for GPUs whose
     * socket does not own the pinned NIC.
     */
    bool pin_channels_to_nics = true;

    /**
     * Per-hop achievable-bandwidth factor (<= 1.0): ZeRO-3's
     * fine-grained gathers use ~0.3 (see strategies/strategy.hh).
     */
    double bandwidth_factor = 1.0;

    /**
     * Schedule family for this invocation. Auto defers to the
     * engine's CollectiveAlgoSpec (whose shipped default is Ring).
     */
    CollectiveAlgo algorithm = CollectiveAlgo::Auto;

    /** Debug label. */
    std::string tag;
};

/**
 * Per-(op, algorithm) accounting of what the engine actually ran —
 * the algorithm recorded is the concrete one after Auto resolution
 * and fallback, so the report shows what was simulated, not what was
 * asked for.
 */
struct CollectiveUsage {
    CollectiveOp op;
    CollectiveAlgo algo;
    std::uint64_t invocations = 0;
    /** Sum of logical payloads passed to the collective calls. */
    Bytes payload_bytes = 0;
    /** Closed-form fabric bytes (collectiveTotalVolume) for them. */
    Bytes fabric_bytes = 0;
};

/**
 * Executes collectives on the simulated fabric.
 */
class CollectiveEngine
{
  public:
    using Callback = std::function<void()>;

    explicit CollectiveEngine(TransferManager &tm);

    CollectiveEngine(const CollectiveEngine &) = delete;
    CollectiveEngine &operator=(const CollectiveEngine &) = delete;

    /**
     * Engine-wide algorithm selection (the `--collective-algo`
     * spec). Per-invocation CollectiveOptions::algorithm wins over
     * it. Default: ring everywhere.
     */
    void setAlgoSpec(const CollectiveAlgoSpec &spec) { spec_ = spec; }

    /** The engine-wide algorithm spec. */
    const CollectiveAlgoSpec &algoSpec() const { return spec_; }

    /**
     * Attach the degraded-mode resilience coordinator
     * (net/resilience.hh). Enables the per-round progress watchdog
     * (config().collective_timeout), the degraded-schedule fallback
     * (config().collective_fallback) and dead-rank group filtering.
     * nullptr detaches; detached behavior is bit-identical to the
     * pre-resilience engine.
     */
    void configureResilience(ResilienceCoordinator *rc)
    {
        resilience_ = rc;
    }

    /**
     * Mark @p ranks dead (the elastic communicator shrink): every
     * subsequent group is reformed over its surviving ranks before
     * the algorithm resolves, so a strategy that still names a lost
     * rank degrades instead of panicking. No-op without an attached
     * resilience coordinator.
     */
    void markRanksDead(const std::vector<int> &ranks);

    /** Forget dead-rank marks (replacement restart revives all). */
    void clearDeadRanks() { dead_ranks_.clear(); }

    /**
     * All-reduce @p bytes per rank across @p group.
     * @p on_done fires when every rank holds the reduced result.
     */
    void allReduce(const CommGroup &group, Bytes bytes, Callback on_done,
                   CollectiveOptions opts = {});

    /** Reduce-scatter @p bytes per rank (each keeps bytes/N). */
    void reduceScatter(const CommGroup &group, Bytes bytes,
                       Callback on_done, CollectiveOptions opts = {});

    /** All-gather so every rank ends with @p bytes total. */
    void allGather(const CommGroup &group, Bytes bytes, Callback on_done,
                   CollectiveOptions opts = {});

    /** Pipelined ring broadcast of @p bytes from @p root. */
    void broadcast(const CommGroup &group, int root, Bytes bytes,
                   Callback on_done, CollectiveOptions opts = {});

    /**
     * Rooted reduce of @p bytes (ring reduce; root ends with the
     * sum). Used by ZeRO-2's gradient reduction.
     */
    void reduce(const CommGroup &group, int root, Bytes bytes,
                Callback on_done, CollectiveOptions opts = {});

    /**
     * All-to-all of @p bytes per rank: every rank holds @p bytes of
     * which 1/N is destined to each peer (MoE token dispatch and
     * combine). Runs as N-1 pairwise-exchange rounds.
     */
    void allToAll(const CommGroup &group, Bytes bytes, Callback on_done,
                  CollectiveOptions opts = {});

    /** Plain point-to-point send between two ranks. */
    void pointToPoint(int src_rank, int dst_rank, Bytes bytes,
                      Callback on_done, const std::string &tag = "p2p");

    /** Number of collectives completed (test/diagnostic hook). */
    std::uint64_t completedCount() const { return completed_; }

    /** What ran so far, keyed by (op, concrete algorithm). */
    const std::vector<CollectiveUsage> &usage() const { return usage_; }

  private:
    /**
     * Execute @p rounds sequentially (round barrier) on channel
     * @p channel of @p channels, then invoke @p on_done.
     */
    void runRounds(const CommGroup &group,
                   std::vector<CollectiveRound> rounds,
                   int channel, int channels, bool pin,
                   double bw_factor, const std::string &tag,
                   Callback on_done);

    /**
     * Resolve the algorithm, split @p bytes across channels, fetch
     * each channel's rounds from the algorithm and run them.
     */
    void runOp(CollectiveOp op, const CommGroup &group, int root,
               Bytes bytes, CollectiveOptions opts, Callback on_done);

    /** Fold one invocation into the usage table. */
    void recordUsage(CollectiveOp op, CollectiveAlgo algo, int n,
                     Bytes bytes);

    /**
     * Resolve the pinned route waypoints for a hop: the src node's
     * and dst node's NIC of the channel. Empty for intra-node hops
     * and unpinned collectives (shortest path).
     */
    std::vector<ComponentId>
    viaNics(int src_rank, int dst_rank, int channel, bool pin) const;

    /** Is @p rank marked dead (elastic shrink)? */
    bool rankDead(int rank) const;

    /**
     * Is a participating node's intra-node NVLink domain cut? The
     * structural assumption of the hierarchical schedule; when true
     * the degraded fallback re-resolves to ring/pairwise.
     */
    bool hierarchicalDomainCut(const CommGroup &group) const;

    TransferManager &tm_;
    CollectiveAlgoSpec spec_;
    std::vector<CollectiveUsage> usage_;
    std::uint64_t completed_ = 0;
    ResilienceCoordinator *resilience_ = nullptr;
    /** Sorted unique ranks lost to hard faults (elastic shrink). */
    std::vector<int> dead_ranks_;
};

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_COMMUNICATOR_HH
