/**
 * @file
 * Communicator groups and the collective-communication engine.
 *
 * Collectives are modeled as their ring algorithms (the algorithms
 * NCCL selects on this topology): reduce-scatter and all-gather run
 * N-1 rounds in which every rank ships `bytes / N` to its ring
 * neighbor; all-reduce is a reduce-scatter followed by an all-gather;
 * broadcast is a pipelined ring. Every round's transfers are real
 * flows on the simulated fabric, so link telemetry sees exactly the
 * traffic pattern the paper's profilers saw.
 *
 * For groups spanning nodes the engine splits traffic across
 * channels pinned to the node's NICs round-robin — mirroring NCCL's
 * multi-channel behavior and reproducing the paper's observation
 * that a portion of inter-node GPU traffic crosses the xGMI links to
 * reach the neighboring CPU's NIC (Sec. IV-E2).
 */

#ifndef DSTRAIN_COLLECTIVES_COMMUNICATOR_HH
#define DSTRAIN_COLLECTIVES_COMMUNICATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "net/transfer_manager.hh"

namespace dstrain {

/** An ordered set of global GPU ranks participating in a collective. */
struct CommGroup {
    std::vector<int> ranks;

    /** Group size. */
    int size() const { return static_cast<int>(ranks.size()); }

    /** A group over ranks [0, n). */
    static CommGroup worldOf(int n);
};

/** The collective operations the training strategies use. */
enum class CollectiveOp {
    AllReduce,
    ReduceScatter,
    AllGather,
    Broadcast,
    Reduce,
};

/** Human-readable collective name (timeline labels). */
const char *collectiveOpName(CollectiveOp op);

/** Tuning knobs for one collective invocation. */
struct CollectiveOptions {
    /**
     * Number of parallel channels (rings). 0 = automatic: 1 for
     * intra-node groups, 2 (one per NIC) for inter-node groups.
     */
    int channels = 0;

    /**
     * Pin channel c's inter-node egress/ingress to NIC (c % nics).
     * This is what produces cross-socket xGMI traffic for GPUs whose
     * socket does not own the pinned NIC.
     */
    bool pin_channels_to_nics = true;

    /**
     * Per-hop achievable-bandwidth factor (<= 1.0): ZeRO-3's
     * fine-grained gathers use ~0.3 (see strategies/strategy.hh).
     */
    double bandwidth_factor = 1.0;

    /** Debug label. */
    std::string tag;
};

/**
 * Executes collectives on the simulated fabric.
 */
class CollectiveEngine
{
  public:
    using Callback = std::function<void()>;

    explicit CollectiveEngine(TransferManager &tm);

    CollectiveEngine(const CollectiveEngine &) = delete;
    CollectiveEngine &operator=(const CollectiveEngine &) = delete;

    /**
     * All-reduce @p bytes per rank across @p group.
     * @p on_done fires when every rank holds the reduced result.
     */
    void allReduce(const CommGroup &group, Bytes bytes, Callback on_done,
                   CollectiveOptions opts = {});

    /** Reduce-scatter @p bytes per rank (each keeps bytes/N). */
    void reduceScatter(const CommGroup &group, Bytes bytes,
                       Callback on_done, CollectiveOptions opts = {});

    /** All-gather so every rank ends with @p bytes total. */
    void allGather(const CommGroup &group, Bytes bytes, Callback on_done,
                   CollectiveOptions opts = {});

    /** Pipelined ring broadcast of @p bytes from @p root. */
    void broadcast(const CommGroup &group, int root, Bytes bytes,
                   Callback on_done, CollectiveOptions opts = {});

    /**
     * Rooted reduce of @p bytes (ring reduce; root ends with the
     * sum). Used by ZeRO-2's gradient reduction.
     */
    void reduce(const CommGroup &group, int root, Bytes bytes,
                Callback on_done, CollectiveOptions opts = {});

    /** Plain point-to-point send between two ranks. */
    void pointToPoint(int src_rank, int dst_rank, Bytes bytes,
                      Callback on_done, const std::string &tag = "p2p");

    /** Number of collectives completed (test/diagnostic hook). */
    std::uint64_t completedCount() const { return completed_; }

  private:
    /** One ring round: every entry transfers concurrently. */
    struct Hop {
        int src_rank;
        int dst_rank;
        Bytes bytes;
    };
    using Round = std::vector<Hop>;

    /**
     * Execute @p rounds sequentially (round barrier) on channel
     * @p channel of @p channels, then invoke @p on_done.
     */
    void runRounds(const CommGroup &group, std::vector<Round> rounds,
                   int channel, int channels, bool pin,
                   double bw_factor, const std::string &tag,
                   Callback on_done);

    /** Split a collective across channels and run them. */
    void runChanneled(const CommGroup &group, Bytes bytes,
                      CollectiveOptions opts, const std::string &kind,
                      std::function<std::vector<Round>(int, Bytes)> maker,
                      Callback on_done);

    /** Does the group span more than one node? */
    bool spansNodes(const CommGroup &group) const;

    /**
     * Resolve the pinned route waypoints for a hop: the src node's
     * and dst node's NIC of the channel. Empty for intra-node hops
     * and unpinned collectives (shortest path).
     */
    std::vector<ComponentId>
    viaNics(int src_rank, int dst_rank, int channel, bool pin) const;

    TransferManager &tm_;
    std::uint64_t completed_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_COMMUNICATOR_HH
