/**
 * @file
 * The pluggable collective-algorithm library.
 *
 * A CollectiveAlgorithm turns (op, group, payload) into per-round
 * transfer schedules; the CollectiveEngine executes the rounds as
 * real flows. Four families are implemented, mirroring the regimes
 * NCCL (and HCL's agRunRing/agRunPairwise split) selects:
 *
 *  - Ring: the node-major rings the engine has always modeled —
 *    bandwidth-optimal, N-1 rounds of bytes/N chunks, pipelined for
 *    the rooted ops. Bit-identical to the pre-library engine.
 *  - Pairwise: direct exchange; round r sends rank i's chunk
 *    straight to rank (i + r + 1) mod N. Also the canonical
 *    all-to-all schedule.
 *  - Tree: binomial broadcast/reduce (log2 N rounds of full-payload
 *    hops — latency-optimal) and recursive doubling/halving
 *    all-gather/reduce-scatter for power-of-two groups.
 *  - Hierarchical: the two-level decomposition — intra-node rings
 *    reduce/spread on NVLink, per-local-rank rail rings cross the
 *    inter-node fabric exactly once per chunk, cutting RoCE volume
 *    from (N-1)/N to (M-1)/N per payload byte on M nodes.
 *
 * `chooseCollectiveAlgorithm` is the topology-aware `auto` policy;
 * `resolveCollectiveAlgorithm` applies it plus the deterministic
 * fallback chain for unsupported (op, group) combinations, so the
 * algorithm recorded in usage accounting is always the one that ran.
 */

#ifndef DSTRAIN_COLLECTIVES_ALGORITHMS_HH
#define DSTRAIN_COLLECTIVES_ALGORITHMS_HH

#include <optional>
#include <string>
#include <vector>

#include "collectives/communicator.hh"
#include "collectives/topology_view.hh"
#include "hw/cluster.hh"

namespace dstrain {

/**
 * One schedule family. Implementations are stateless singletons
 * (collectiveAlgorithm below); rounds() must be a pure function of
 * its arguments so repeated runs are deterministic.
 */
class CollectiveAlgorithm
{
  public:
    virtual ~CollectiveAlgorithm() = default;

    /** The family's CollectiveAlgo tag. */
    virtual CollectiveAlgo id() const = 0;

    /** Human-readable name (== collectiveAlgoName(id())). */
    const char *name() const { return collectiveAlgoName(id()); }

    /**
     * Can this family natively schedule @p op over @p group? When
     * not, resolveCollectiveAlgorithm falls back deterministically
     * (ring for the rooted ops, pairwise for all-to-all).
     */
    virtual bool supports(CollectiveOp op, const CommGroup &group,
                          const TopologyView &view) const = 0;

    /**
     * The transfer schedule for one channel's share of the payload.
     * @p share is the per-rank logical payload of this channel
     * (bytes / channels); @p root is the root rank for Broadcast and
     * Reduce and ignored otherwise. Rounds execute sequentially with
     * a barrier between them; hops within a round run concurrently.
     */
    virtual std::vector<CollectiveRound>
    rounds(CollectiveOp op, const CommGroup &group, Bytes share,
           int root, const TopologyView &view) const = 0;
};

/** The singleton implementation of @p algo (not Auto). */
const CollectiveAlgorithm &collectiveAlgorithm(CollectiveAlgo algo);

/**
 * The topology-aware `auto` policy: hierarchical for the unrooted
 * bandwidth ops on multi-node groups with a uniform rank-per-node
 * layout, tree for small payloads and the rooted ops on larger
 * groups, pairwise for all-to-all, ring otherwise.
 */
CollectiveAlgo chooseCollectiveAlgorithm(CollectiveOp op,
                                         const CommGroup &group,
                                         Bytes bytes,
                                         const TopologyView &view);

/**
 * Resolve @p requested (possibly Auto) to the concrete algorithm
 * that will run @p op over @p group: Auto goes through
 * chooseCollectiveAlgorithm, then unsupported combinations fall back
 * (all-to-all -> Pairwise, everything else -> Ring). Never returns
 * Auto; the result always supports (op, group).
 */
CollectiveAlgo resolveCollectiveAlgorithm(CollectiveOp op,
                                          const CommGroup &group,
                                          Bytes bytes,
                                          CollectiveAlgo requested,
                                          const TopologyView &view);

/** Parse one algorithm name (`ring`, `pairwise`, `tree`, `hierarchical`, `auto`). */
std::optional<CollectiveAlgo> parseCollectiveAlgo(const std::string &name);

/**
 * Parse the `--collective-algo` grammar: a comma-separated list of
 * either a bare algorithm name (sets the default) or `<op>=<algo>`
 * overrides, e.g. `auto`, `tree`, `allgather=hierarchical`,
 * `ring,allreduce=hierarchical,alltoall=pairwise`. Op names accept
 * both the compact (`allreduce`) and display (`all-reduce`) forms.
 * Returns std::nullopt and fills @p error on a malformed spec.
 */
std::optional<CollectiveAlgoSpec>
parseCollectiveAlgoSpec(const std::string &spec, std::string *error);

/**
 * @deprecated Use TopologyView::orderNodeMajor. Thin wrapper kept
 * for one PR while callers migrate.
 */
CommGroup orderNodeMajor(const CommGroup &group, const Cluster &cluster);

/** @deprecated Use TopologyView::interNodeHops. */
int interNodeHops(const CommGroup &group, const Cluster &cluster);

/** @deprecated Use TopologyView::ringBottleneckBandwidth. */
Bps ringBottleneckBandwidth(const CommGroup &group,
                            const Cluster &cluster);

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_ALGORITHMS_HH
