/**
 * @file
 * Topology-aware collective algorithm selection, mirroring what NCCL
 * does on the XE8545: intra-node groups ride the NVLink mesh with a
 * single ring; inter-node groups use one ring per NIC with the ring
 * ordered node-major so each ring crosses the inter-node fabric
 * exactly twice (once out, once back).
 */

#ifndef DSTRAIN_COLLECTIVES_ALGORITHMS_HH
#define DSTRAIN_COLLECTIVES_ALGORITHMS_HH

#include <vector>

#include "collectives/communicator.hh"
#include "hw/cluster.hh"

namespace dstrain {

/**
 * Order the ranks of @p group node-major (all ranks of node 0, then
 * node 1, ...), preserving relative order within a node. This is the
 * canonical ring order: it minimizes inter-node hops per ring.
 */
CommGroup orderNodeMajor(const CommGroup &group, const Cluster &cluster);

/**
 * Number of inter-node ring hops for a node-major ring over
 * @p group — 0 for intra-node groups, otherwise the number of
 * adjacent rank pairs whose nodes differ plus the wraparound hop.
 */
int interNodeHops(const CommGroup &group, const Cluster &cluster);

/**
 * The bottleneck per-hop effective bandwidth of a ring over
 * @p group: the slowest hop (NVLink pair intra-node, the NIC/RoCE
 * path inter-node, including protocol efficiency and SerDes
 * degradation).
 */
Bps ringBottleneckBandwidth(const CommGroup &group,
                            const Cluster &cluster);

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_ALGORITHMS_HH
