/**
 * @file
 * Implementation of the collective volume formulas.
 */

#include "collectives/volume.hh"

#include "util/logging.hh"

namespace dstrain {

Bytes
collectiveSendVolumePerRank(CollectiveOp op, int n, Bytes bytes)
{
    DSTRAIN_ASSERT(n >= 2, "collective needs >= 2 ranks");
    const double frac = static_cast<double>(n - 1) / n;
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * frac * bytes;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return frac * bytes;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        // Ring pipeline: every non-terminal rank forwards the whole
        // payload once; averaged per rank this is (n-1)/n * bytes.
        return frac * bytes;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

Bytes
collectiveTotalVolume(CollectiveOp op, int n, Bytes bytes)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * (n - 1) * bytes;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return static_cast<double>(n - 1) * bytes;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        return static_cast<double>(n - 1) * bytes;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

SimTime
ringCollectiveIdealTime(CollectiveOp op, int n, Bytes bytes,
                        Bps per_hop_bw)
{
    DSTRAIN_ASSERT(per_hop_bw > 0.0, "zero bandwidth");
    const Bytes chunk = bytes / n;
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * (n - 1) * chunk / per_hop_bw;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return (n - 1) * chunk / per_hop_bw;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        // Pipelined with k slices: (k + n - 2)/k * bytes / bw; the
        // engine uses k = 8.
        return (8.0 + n - 2.0) / 8.0 * bytes / per_hop_bw;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

} // namespace dstrain
