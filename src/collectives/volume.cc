/**
 * @file
 * Implementation of the collective volume formulas.
 */

#include "collectives/volume.hh"

#include "util/logging.hh"

namespace dstrain {

Bytes
collectiveSendVolumePerRank(CollectiveOp op, int n, Bytes bytes)
{
    DSTRAIN_ASSERT(n >= 2, "collective needs >= 2 ranks");
    const double frac = static_cast<double>(n - 1) / n;
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * frac * bytes;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return frac * bytes;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        // Ring pipeline: every non-terminal rank forwards the whole
        // payload once; averaged per rank this is (n-1)/n * bytes.
        return frac * bytes;
      case CollectiveOp::AllToAll:
        // Each rank ships bytes/n to each of its n-1 peers.
        return frac * bytes;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

Bytes
collectiveTotalVolume(CollectiveOp op, int n, Bytes bytes)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * (n - 1) * bytes;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return static_cast<double>(n - 1) * bytes;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        return static_cast<double>(n - 1) * bytes;
      case CollectiveOp::AllToAll:
        return static_cast<double>(n - 1) * bytes;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

SimTime
ringCollectiveIdealTime(CollectiveOp op, int n, Bytes bytes,
                        Bps per_hop_bw)
{
    DSTRAIN_ASSERT(per_hop_bw > 0.0, "zero bandwidth");
    const Bytes chunk = bytes / n;
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * (n - 1) * chunk / per_hop_bw;
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllGather:
        return (n - 1) * chunk / per_hop_bw;
      case CollectiveOp::Broadcast:
      case CollectiveOp::Reduce:
        // Pipelined with k slices: (k + n - 2)/k * bytes / bw; the
        // engine uses k = 8.
        return (8.0 + n - 2.0) / 8.0 * bytes / per_hop_bw;
      case CollectiveOp::AllToAll:
        // n-1 pairwise-exchange rounds of bytes/n each.
        return (n - 1) * chunk / per_hop_bw;
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

Bytes
collectiveInterNodeBytes(CollectiveOp op, CollectiveAlgo algo,
                         int nodes, int ranks_per_node, Bytes bytes)
{
    DSTRAIN_ASSERT(nodes >= 2 && ranks_per_node >= 1,
                   "inter-node volume needs >= 2 nodes");
    const int n = nodes * ranks_per_node;
    const double m = nodes;
    double payloads = 0.0;  // full-payload crossings of the fabric
    switch (algo) {
      case CollectiveAlgo::Hierarchical:
        // Only the rail rings touch the fabric: 2(m-1) (all-reduce)
        // or (m-1) rounds of n hops carrying bytes/n each.
        switch (op) {
          case CollectiveOp::AllReduce:
            payloads = 2.0 * (m - 1.0);
            break;
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
            payloads = m - 1.0;
            break;
          default:
            panic("no inter-node closed form for %s/%s",
                  collectiveOpName(op), collectiveAlgoName(algo));
        }
        break;
      case CollectiveAlgo::Ring:
        // A node-major ring crosses the fabric m times per lap, so
        // each of the n-1 rounds ships m chunks of bytes/n across.
        switch (op) {
          case CollectiveOp::AllReduce:
            payloads = 2.0 * (n - 1.0) * m / n;
            break;
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
            payloads = (n - 1.0) * m / n;
            break;
          default:
            panic("no inter-node closed form for %s/%s",
                  collectiveOpName(op), collectiveAlgoName(algo));
        }
        break;
      default:
        panic("no inter-node closed form for algorithm %s",
              collectiveAlgoName(algo));
    }
    return payloads * bytes;
}

} // namespace dstrain
