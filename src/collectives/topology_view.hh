/**
 * @file
 * Read-only topology queries collective algorithms need.
 *
 * TopologyView wraps a Cluster and answers the questions a
 * CollectiveAlgorithm asks while laying out its rounds: which node a
 * rank lives on, the canonical node-major ring order, how many ring
 * hops cross the inter-node fabric, and the bottleneck bandwidth of a
 * ring. Keeping these behind one helper (instead of the former free
 * functions in algorithms.hh) gives every algorithm the same
 * vocabulary and keeps Cluster out of their signatures.
 */

#ifndef DSTRAIN_COLLECTIVES_TOPOLOGY_VIEW_HH
#define DSTRAIN_COLLECTIVES_TOPOLOGY_VIEW_HH

#include <vector>

#include "collectives/communicator.hh"
#include "hw/cluster.hh"

namespace dstrain {

/** Topology queries over one Cluster, consumed by CollectiveAlgorithm. */
class TopologyView
{
  public:
    explicit TopologyView(const Cluster &cluster) : cluster_(&cluster) {}

    /** The wrapped cluster. */
    const Cluster &cluster() const { return *cluster_; }

    /** Node index hosting global rank @p rank. */
    int nodeOfRank(int rank) const { return cluster_->nodeOfRank(rank); }

    /** Does the group span more than one node? */
    bool spansNodes(const CommGroup &group) const;

    /**
     * Order the ranks of @p group node-major (all ranks of node 0,
     * then node 1, ...), preserving relative order within a node.
     * This is the canonical ring order: it minimizes inter-node hops
     * per ring.
     */
    CommGroup orderNodeMajor(const CommGroup &group) const;

    /**
     * Number of inter-node ring hops for a node-major ring over
     * @p group — 0 for intra-node groups, otherwise the number of
     * adjacent rank pairs whose nodes differ plus the wraparound hop.
     */
    int interNodeHops(const CommGroup &group) const;

    /**
     * The bottleneck per-hop effective bandwidth of a ring over
     * @p group: the slowest hop (NVLink pair intra-node, the
     * NIC/RoCE path inter-node, including protocol efficiency and
     * SerDes degradation).
     */
    Bps ringBottleneckBandwidth(const CommGroup &group) const;

    /** Distinct nodes of @p group, in order of first appearance. */
    std::vector<int> nodesOf(const CommGroup &group) const;

    /**
     * Ranks of @p group living on @p node, preserving group order.
     */
    CommGroup ranksOnNode(const CommGroup &group, int node) const;

    /**
     * Does every node hosting part of @p group host the same number
     * of its ranks? (The precondition for the two-level hierarchical
     * decomposition.)
     */
    bool uniformRanksPerNode(const CommGroup &group) const;

  private:
    const Cluster *cluster_;
};

/**
 * Resolve CollectiveOptions::channels: 0 means automatic — one ring
 * for intra-node groups, two (one per NIC) for groups spanning nodes.
 * The single source of truth shared by the engine and any volume or
 * bench accounting.
 */
int resolveChannels(const CommGroup &group, int requested,
                    const TopologyView &view);

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_TOPOLOGY_VIEW_HH
