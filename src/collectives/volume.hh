/**
 * @file
 * Closed-form communication-volume accounting for the ring
 * collectives. These formulas are the ground truth the property
 * tests check the simulated traffic against, and what the strategy
 * documentation quotes (e.g. ZeRO-3's "+50% communication volume"
 * claim, paper Sec. II-C).
 */

#ifndef DSTRAIN_COLLECTIVES_VOLUME_HH
#define DSTRAIN_COLLECTIVES_VOLUME_HH

#include "collectives/communicator.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * Bytes *sent by each rank* for one collective over @p n ranks moving
 * a logical payload of @p bytes.
 */
Bytes collectiveSendVolumePerRank(CollectiveOp op, int n, Bytes bytes);

/** Total bytes crossing the fabric for the collective. */
Bytes collectiveTotalVolume(CollectiveOp op, int n, Bytes bytes);

/**
 * Lower-bound completion time of a ring collective when every hop
 * sustains @p per_hop_bw: the round count times the per-round time.
 * (Latency terms excluded; the tests add them separately.)
 */
SimTime ringCollectiveIdealTime(CollectiveOp op, int n, Bytes bytes,
                                Bps per_hop_bw);

/**
 * Bytes crossing the *inter-node* fabric for one collective over
 * @p nodes nodes of @p ranks_per_node group ranks each, under
 * @p algo's schedule. Defined for the bandwidth ops (all-reduce,
 * reduce-scatter, all-gather) on the node-major Ring and the
 * two-level Hierarchical schedules — the pair whose RoCE footprints
 * the paper's regimes distinguish: hierarchical ships (M-1) payloads
 * across the fabric where the flat ring ships (N-1) * M / N.
 */
Bytes collectiveInterNodeBytes(CollectiveOp op, CollectiveAlgo algo,
                               int nodes, int ranks_per_node,
                               Bytes bytes);

} // namespace dstrain

#endif // DSTRAIN_COLLECTIVES_VOLUME_HH
