/**
 * @file
 * Implementation of the collective engine: algorithm resolution,
 * channel splitting and round-by-round flow execution.
 */

#include "collectives/communicator.hh"

#include <memory>
#include <numeric>
#include <tuple>

#include "collectives/algorithms.hh"
#include "collectives/topology_view.hh"
#include "collectives/volume.hh"
#include "util/logging.hh"

namespace dstrain {

CommGroup
CommGroup::worldOf(int n)
{
    CommGroup g;
    g.ranks.resize(static_cast<std::size_t>(n));
    std::iota(g.ranks.begin(), g.ranks.end(), 0);
    return g;
}

const char *
collectiveOpName(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return "all-reduce";
      case CollectiveOp::ReduceScatter:
        return "reduce-scatter";
      case CollectiveOp::AllGather:
        return "all-gather";
      case CollectiveOp::Broadcast:
        return "broadcast";
      case CollectiveOp::Reduce:
        return "reduce";
      case CollectiveOp::AllToAll:
        return "all-to-all";
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

const char *
collectiveAlgoName(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::Auto:
        return "auto";
      case CollectiveAlgo::Ring:
        return "ring";
      case CollectiveAlgo::Pairwise:
        return "pairwise";
      case CollectiveAlgo::Tree:
        return "tree";
      case CollectiveAlgo::Hierarchical:
        return "hierarchical";
    }
    panic("unknown CollectiveAlgo %d", static_cast<int>(algo));
}

CollectiveEngine::CollectiveEngine(TransferManager &tm)
    : tm_(tm)
{
}

std::vector<ComponentId>
CollectiveEngine::viaNics(int src_rank, int dst_rank, int channel,
                          bool pin) const
{
    Cluster &cl = tm_.cluster();
    if (!pin)
        return {};
    const int src_node = cl.nodeOfRank(src_rank);
    const int dst_node = cl.nodeOfRank(dst_rank);
    if (src_node == dst_node)
        return {};  // intra-node: NVLink
    const auto &src_nics = cl.node(src_node).nics;
    const auto &dst_nics = cl.node(dst_node).nics;
    DSTRAIN_ASSERT(!src_nics.empty() && !dst_nics.empty(),
                   "nodes %d/%d lack NICs", src_node, dst_node);
    return {src_nics[static_cast<std::size_t>(channel) %
                     src_nics.size()],
            dst_nics[static_cast<std::size_t>(channel) %
                     dst_nics.size()]};
}

void
CollectiveEngine::runRounds(const CommGroup &group,
                            std::vector<CollectiveRound> rounds,
                            int channel, int channels, bool pin,
                            double bw_factor, const std::string &tag,
                            Callback on_done)
{
    // Self-destructing state machine: advance() launches round i and
    // recurses when all of its transfers land.
    struct State {
        CollectiveEngine *eng;
        CommGroup group;
        std::vector<CollectiveRound> rounds;
        int channel;
        int channels;
        bool pin;
        double bw_factor = 1.0;
        std::string tag;
        Callback on_done;
        std::size_t next_round = 0;
        int outstanding = 0;
    };
    auto st = std::make_shared<State>();
    st->eng = this;
    st->group = group;
    st->rounds = std::move(rounds);
    st->channel = channel;
    st->channels = channels;
    st->pin = pin;
    st->bw_factor = bw_factor;
    st->tag = tag;
    st->on_done = std::move(on_done);

    // advance is stored so the completion lambdas can call it.
    auto advance = std::make_shared<std::function<void()>>();
    *advance = [st, advance]() {
        if (st->next_round >= st->rounds.size()) {
            if (st->on_done)
                st->on_done();
            return;
        }
        const CollectiveRound &round = st->rounds[st->next_round++];
        DSTRAIN_ASSERT(!round.empty(), "empty collective round");
        st->outstanding = static_cast<int>(round.size());
        for (const CollectiveHop &hop : round) {
            Cluster &cl = st->eng->tm_.cluster();
            TransferOptions opts;
            opts.waypoints = st->eng->viaNics(
                hop.src_rank, hop.dst_rank, st->channel, st->pin);
            opts.rate_factor = st->bw_factor;
            // On multipath fabrics, ECMP spreads the channels over
            // the equal-cost trunks (deterministically).
            opts.flow_key = static_cast<std::uint64_t>(st->channel);
            opts.tag = st->tag;
            st->eng->tm_.start(
                cl.gpuByRank(hop.src_rank), cl.gpuByRank(hop.dst_rank),
                hop.bytes,
                [st, advance] {
                    if (--st->outstanding == 0)
                        (*advance)();
                },
                std::move(opts));
        }
    };
    (*advance)();
}

void
CollectiveEngine::recordUsage(CollectiveOp op, CollectiveAlgo algo,
                              int n, Bytes bytes)
{
    for (CollectiveUsage &u : usage_) {
        if (u.op == op && u.algo == algo) {
            ++u.invocations;
            u.payload_bytes += bytes;
            u.fabric_bytes += collectiveTotalVolume(op, n, bytes);
            return;
        }
    }
    CollectiveUsage u;
    u.op = op;
    u.algo = algo;
    u.invocations = 1;
    u.payload_bytes = bytes;
    u.fabric_bytes = collectiveTotalVolume(op, n, bytes);
    usage_.push_back(u);
}

void
CollectiveEngine::runOp(CollectiveOp op, const CommGroup &group,
                        int root, Bytes bytes, CollectiveOptions opts,
                        Callback on_done)
{
    const std::string kind = collectiveOpName(op);
    DSTRAIN_ASSERT(group.size() >= 2, "%s needs >= 2 ranks (got %d)",
                   kind.c_str(), group.size());
    const TopologyView view(tm_.cluster());
    const int channels = resolveChannels(group, opts.channels, view);

    const CollectiveAlgo requested =
        opts.algorithm != CollectiveAlgo::Auto ? opts.algorithm
                                               : spec_.requestedFor(op);
    const CollectiveAlgo algo =
        resolveCollectiveAlgorithm(op, group, bytes, requested, view);
    const CollectiveAlgorithm &impl = collectiveAlgorithm(algo);
    recordUsage(op, algo, group.size(), bytes);

    const std::string tag =
        opts.tag.empty() ? kind : opts.tag + "/" + kind;

    auto remaining = std::make_shared<int>(channels);
    auto done = std::make_shared<Callback>(std::move(on_done));
    for (int c = 0; c < channels; ++c) {
        const Bytes share = bytes / channels;
        std::vector<CollectiveRound> rounds =
            impl.rounds(op, group, share, root, view);
        runRounds(group, std::move(rounds), c, channels,
                  opts.pin_channels_to_nics, opts.bandwidth_factor, tag,
                  [this, remaining, done] {
                      if (--*remaining == 0) {
                          ++completed_;
                          if (*done)
                              (*done)();
                      }
                  });
    }
}

void
CollectiveEngine::reduceScatter(const CommGroup &group, Bytes bytes,
                                Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::ReduceScatter, group, -1, bytes,
          std::move(opts), std::move(on_done));
}

void
CollectiveEngine::allGather(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllGather, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::allReduce(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllReduce, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::broadcast(const CommGroup &group, int root, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::Broadcast, group, root, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::reduce(const CommGroup &group, int root, Bytes bytes,
                         Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::Reduce, group, root, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::allToAll(const CommGroup &group, Bytes bytes,
                           Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllToAll, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::pointToPoint(int src_rank, int dst_rank, Bytes bytes,
                               Callback on_done, const std::string &tag)
{
    Cluster &cl = tm_.cluster();
    TransferOptions opts;
    opts.tag = tag;
    tm_.start(cl.gpuByRank(src_rank), cl.gpuByRank(dst_rank), bytes,
              std::move(on_done), std::move(opts));
}

} // namespace dstrain
