/**
 * @file
 * Implementation of the collective engine (ring algorithms).
 */

#include "collectives/communicator.hh"

#include <memory>
#include <tuple>
#include <numeric>

#include "util/logging.hh"

namespace dstrain {

CommGroup
CommGroup::worldOf(int n)
{
    CommGroup g;
    g.ranks.resize(static_cast<std::size_t>(n));
    std::iota(g.ranks.begin(), g.ranks.end(), 0);
    return g;
}

const char *
collectiveOpName(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return "all-reduce";
      case CollectiveOp::ReduceScatter:
        return "reduce-scatter";
      case CollectiveOp::AllGather:
        return "all-gather";
      case CollectiveOp::Broadcast:
        return "broadcast";
      case CollectiveOp::Reduce:
        return "reduce";
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

CollectiveEngine::CollectiveEngine(TransferManager &tm)
    : tm_(tm)
{
}

bool
CollectiveEngine::spansNodes(const CommGroup &group) const
{
    const Cluster &cl = tm_.cluster();
    if (group.ranks.empty())
        return false;
    const int first = cl.nodeOfRank(group.ranks.front());
    for (int r : group.ranks)
        if (cl.nodeOfRank(r) != first)
            return true;
    return false;
}

std::vector<ComponentId>
CollectiveEngine::viaNics(int src_rank, int dst_rank, int channel,
                          bool pin) const
{
    Cluster &cl = tm_.cluster();
    if (!pin)
        return {};
    const int src_node = cl.nodeOfRank(src_rank);
    const int dst_node = cl.nodeOfRank(dst_rank);
    if (src_node == dst_node)
        return {};  // intra-node: NVLink
    const auto &src_nics = cl.node(src_node).nics;
    const auto &dst_nics = cl.node(dst_node).nics;
    DSTRAIN_ASSERT(!src_nics.empty() && !dst_nics.empty(),
                   "nodes %d/%d lack NICs", src_node, dst_node);
    return {src_nics[static_cast<std::size_t>(channel) %
                     src_nics.size()],
            dst_nics[static_cast<std::size_t>(channel) %
                     dst_nics.size()]};
}

void
CollectiveEngine::runRounds(const CommGroup &group,
                            std::vector<Round> rounds, int channel,
                            int channels, bool pin, double bw_factor,
                            const std::string &tag, Callback on_done)
{
    // Self-destructing state machine: advance() launches round i and
    // recurses when all of its transfers land.
    struct State {
        CollectiveEngine *eng;
        CommGroup group;
        std::vector<Round> rounds;
        int channel;
        int channels;
        bool pin;
        double bw_factor = 1.0;
        std::string tag;
        Callback on_done;
        std::size_t next_round = 0;
        int outstanding = 0;
    };
    auto st = std::make_shared<State>();
    st->eng = this;
    st->group = group;
    st->rounds = std::move(rounds);
    st->channel = channel;
    st->channels = channels;
    st->pin = pin;
    st->bw_factor = bw_factor;
    st->tag = tag;
    st->on_done = std::move(on_done);

    // advance is stored so the completion lambdas can call it.
    auto advance = std::make_shared<std::function<void()>>();
    *advance = [st, advance]() {
        if (st->next_round >= st->rounds.size()) {
            if (st->on_done)
                st->on_done();
            return;
        }
        const Round &round = st->rounds[st->next_round++];
        DSTRAIN_ASSERT(!round.empty(), "empty collective round");
        st->outstanding = static_cast<int>(round.size());
        for (const Hop &hop : round) {
            Cluster &cl = st->eng->tm_.cluster();
            TransferOptions opts;
            opts.waypoints = st->eng->viaNics(
                hop.src_rank, hop.dst_rank, st->channel, st->pin);
            opts.rate_factor = st->bw_factor;
            // On multipath fabrics, ECMP spreads the channels over
            // the equal-cost trunks (deterministically).
            opts.flow_key = static_cast<std::uint64_t>(st->channel);
            opts.tag = st->tag;
            st->eng->tm_.start(
                cl.gpuByRank(hop.src_rank), cl.gpuByRank(hop.dst_rank),
                hop.bytes,
                [st, advance] {
                    if (--st->outstanding == 0)
                        (*advance)();
                },
                std::move(opts));
        }
    };
    (*advance)();
}

void
CollectiveEngine::runChanneled(
    const CommGroup &group, Bytes bytes, CollectiveOptions opts,
    const std::string &kind,
    std::function<std::vector<Round>(int, Bytes)> maker, Callback on_done)
{
    DSTRAIN_ASSERT(group.size() >= 2, "%s needs >= 2 ranks (got %d)",
                   kind.c_str(), group.size());
    int channels = opts.channels;
    if (channels == 0)
        channels = spansNodes(group) ? 2 : 1;

    const std::string tag =
        opts.tag.empty() ? kind : opts.tag + "/" + kind;

    auto remaining = std::make_shared<int>(channels);
    auto done = std::make_shared<Callback>(std::move(on_done));
    for (int c = 0; c < channels; ++c) {
        const Bytes share = bytes / channels;
        std::vector<Round> rounds = maker(c, share);
        runRounds(group, std::move(rounds), c, channels,
                  opts.pin_channels_to_nics, opts.bandwidth_factor, tag,
                  [this, remaining, done] {
                      if (--*remaining == 0) {
                          ++completed_;
                          if (*done)
                              (*done)();
                      }
                  });
    }
}

void
CollectiveEngine::reduceScatter(const CommGroup &group, Bytes bytes,
                                Callback on_done, CollectiveOptions opts)
{
    const int n = group.size();
    auto maker = [&group, n](int, Bytes share) {
        std::vector<Round> rounds;
        const Bytes chunk = share / n;
        for (int r = 0; r < n - 1; ++r) {
            Round round;
            for (int i = 0; i < n; ++i) {
                round.push_back(Hop{group.ranks[static_cast<std::size_t>(i)],
                                    group.ranks[static_cast<std::size_t>(
                                        (i + 1) % n)],
                                    chunk});
            }
            rounds.push_back(std::move(round));
        }
        return rounds;
    };
    runChanneled(group, bytes, std::move(opts), "reduce-scatter", maker,
                 std::move(on_done));
}

void
CollectiveEngine::allGather(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    // Identical traffic pattern to reduce-scatter (ring all-gather).
    const int n = group.size();
    auto maker = [&group, n](int, Bytes share) {
        std::vector<Round> rounds;
        const Bytes chunk = share / n;
        for (int r = 0; r < n - 1; ++r) {
            Round round;
            for (int i = 0; i < n; ++i) {
                round.push_back(Hop{group.ranks[static_cast<std::size_t>(i)],
                                    group.ranks[static_cast<std::size_t>(
                                        (i + 1) % n)],
                                    chunk});
            }
            rounds.push_back(std::move(round));
        }
        return rounds;
    };
    runChanneled(group, bytes, std::move(opts), "all-gather", maker,
                 std::move(on_done));
}

void
CollectiveEngine::allReduce(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    // Ring all-reduce: reduce-scatter rounds then all-gather rounds.
    const int n = group.size();
    auto maker = [&group, n](int, Bytes share) {
        std::vector<Round> rounds;
        const Bytes chunk = share / n;
        for (int phase = 0; phase < 2; ++phase) {
            for (int r = 0; r < n - 1; ++r) {
                Round round;
                for (int i = 0; i < n; ++i) {
                    round.push_back(
                        Hop{group.ranks[static_cast<std::size_t>(i)],
                            group.ranks[static_cast<std::size_t>((i + 1) %
                                                                 n)],
                            chunk});
                }
                rounds.push_back(std::move(round));
            }
        }
        return rounds;
    };
    runChanneled(group, bytes, std::move(opts), "all-reduce", maker,
                 std::move(on_done));
}

void
CollectiveEngine::broadcast(const CommGroup &group, int root, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    // Pipelined ring broadcast: the payload is cut into slices that
    // travel down the ring; with k slices the makespan approaches
    // (1 + (n-2)/k) * bytes / bw. Rounds model the pipeline steps.
    const int n = group.size();
    const int slices = 8;
    // Rotate the ring so the root is first.
    std::vector<int> order;
    std::size_t root_pos = 0;
    for (std::size_t i = 0; i < group.ranks.size(); ++i)
        if (group.ranks[i] == root)
            root_pos = i;
    for (int i = 0; i < n; ++i)
        order.push_back(group.ranks[(root_pos + static_cast<std::size_t>(i))
                                    % group.ranks.size()]);

    auto maker = [order, n, slices](int, Bytes share) {
        std::vector<Round> rounds;
        const Bytes slice = share / slices;
        // Pipeline steps: at step t, link i (i -> i+1) carries slice
        // (t - i) when 0 <= t - i < slices.
        const int steps = slices + n - 2;
        for (int t = 0; t < steps; ++t) {
            Round round;
            for (int i = 0; i < n - 1; ++i) {
                const int s = t - i;
                if (s < 0 || s >= slices)
                    continue;
                round.push_back(Hop{order[static_cast<std::size_t>(i)],
                                    order[static_cast<std::size_t>(i + 1)],
                                    slice});
            }
            if (!round.empty())
                rounds.push_back(std::move(round));
        }
        return rounds;
    };
    runChanneled(group, bytes, std::move(opts), "broadcast", maker,
                 std::move(on_done));
}

void
CollectiveEngine::reduce(const CommGroup &group, int root, Bytes bytes,
                         Callback on_done, CollectiveOptions opts)
{
    // Ring reduce toward the root: same pipeline as broadcast but in
    // the opposite direction (traffic volume is identical).
    const int n = group.size();
    const int slices = 8;
    std::vector<int> order;
    std::size_t root_pos = 0;
    for (std::size_t i = 0; i < group.ranks.size(); ++i)
        if (group.ranks[i] == root)
            root_pos = i;
    // order[0] is the farthest rank; order[n-1] == root.
    for (int i = 0; i < n; ++i)
        order.push_back(
            group.ranks[(root_pos + 1 + static_cast<std::size_t>(i)) %
                        group.ranks.size()]);

    auto maker = [order, n, slices](int, Bytes share) {
        std::vector<Round> rounds;
        const Bytes slice = share / slices;
        const int steps = slices + n - 2;
        for (int t = 0; t < steps; ++t) {
            Round round;
            for (int i = 0; i < n - 1; ++i) {
                const int s = t - i;
                if (s < 0 || s >= slices)
                    continue;
                round.push_back(Hop{order[static_cast<std::size_t>(i)],
                                    order[static_cast<std::size_t>(i + 1)],
                                    slice});
            }
            if (!round.empty())
                rounds.push_back(std::move(round));
        }
        return rounds;
    };
    runChanneled(group, bytes, std::move(opts), "reduce", maker,
                 std::move(on_done));
}

void
CollectiveEngine::pointToPoint(int src_rank, int dst_rank, Bytes bytes,
                               Callback on_done, const std::string &tag)
{
    Cluster &cl = tm_.cluster();
    TransferOptions opts;
    opts.tag = tag;
    tm_.start(cl.gpuByRank(src_rank), cl.gpuByRank(dst_rank), bytes,
              std::move(on_done), std::move(opts));
}

} // namespace dstrain
