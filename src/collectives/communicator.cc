/**
 * @file
 * Implementation of the collective engine: algorithm resolution,
 * channel splitting and round-by-round flow execution.
 */

#include "collectives/communicator.hh"

#include <algorithm>
#include <memory>
#include <numeric>
#include <tuple>

#include "collectives/algorithms.hh"
#include "collectives/topology_view.hh"
#include "collectives/volume.hh"
#include "net/resilience.hh"
#include "util/logging.hh"

namespace dstrain {

CommGroup
CommGroup::worldOf(int n)
{
    CommGroup g;
    g.ranks.resize(static_cast<std::size_t>(n));
    std::iota(g.ranks.begin(), g.ranks.end(), 0);
    return g;
}

const char *
collectiveOpName(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return "all-reduce";
      case CollectiveOp::ReduceScatter:
        return "reduce-scatter";
      case CollectiveOp::AllGather:
        return "all-gather";
      case CollectiveOp::Broadcast:
        return "broadcast";
      case CollectiveOp::Reduce:
        return "reduce";
      case CollectiveOp::AllToAll:
        return "all-to-all";
    }
    panic("unknown CollectiveOp %d", static_cast<int>(op));
}

const char *
collectiveAlgoName(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::Auto:
        return "auto";
      case CollectiveAlgo::Ring:
        return "ring";
      case CollectiveAlgo::Pairwise:
        return "pairwise";
      case CollectiveAlgo::Tree:
        return "tree";
      case CollectiveAlgo::Hierarchical:
        return "hierarchical";
    }
    panic("unknown CollectiveAlgo %d", static_cast<int>(algo));
}

CollectiveEngine::CollectiveEngine(TransferManager &tm)
    : tm_(tm)
{
}

std::vector<ComponentId>
CollectiveEngine::viaNics(int src_rank, int dst_rank, int channel,
                          bool pin) const
{
    Cluster &cl = tm_.cluster();
    if (!pin)
        return {};
    const int src_node = cl.nodeOfRank(src_rank);
    const int dst_node = cl.nodeOfRank(dst_rank);
    if (src_node == dst_node)
        return {};  // intra-node: NVLink
    const auto &src_nics = cl.node(src_node).nics;
    const auto &dst_nics = cl.node(dst_node).nics;
    DSTRAIN_ASSERT(!src_nics.empty() && !dst_nics.empty(),
                   "nodes %d/%d lack NICs", src_node, dst_node);
    return {src_nics[static_cast<std::size_t>(channel) %
                     src_nics.size()],
            dst_nics[static_cast<std::size_t>(channel) %
                     dst_nics.size()]};
}

void
CollectiveEngine::runRounds(const CommGroup &group,
                            std::vector<CollectiveRound> rounds,
                            int channel, int channels, bool pin,
                            double bw_factor, const std::string &tag,
                            Callback on_done)
{
    // Self-destructing state machine: advance() launches round i and
    // recurses when all of its transfers land. With resilience
    // attached, a per-round progress watchdog (the NCCL-watchdog
    // model) additionally rescues rounds stranded on a dead route:
    // stalled hops are cancelled byte-conservingly and relaunched
    // with the undelivered remainder once routing has reconverged —
    // completed rounds never re-run.
    struct State {
        CollectiveEngine *eng;
        CommGroup group;
        std::vector<CollectiveRound> rounds;
        int channel;
        int channels;
        bool pin;
        double bw_factor = 1.0;
        std::string tag;
        Callback on_done;
        std::size_t next_round = 0;
        int outstanding = 0;
        /** Current round's hops; bytes shrink on rescue relaunch. */
        CollectiveRound cur;
        /** Transfer ids of the current round (0 = untracked). */
        std::vector<std::uint64_t> xids;
        /** Bumped per round launch: stale watchdog events bail. */
        std::uint64_t round_gen = 0;
        /** Watchdog rescues performed for this invocation. */
        int resumes = 0;
    };
    auto st = std::make_shared<State>();
    st->eng = this;
    st->group = group;
    st->rounds = std::move(rounds);
    st->channel = channel;
    st->channels = channels;
    st->pin = pin;
    st->bw_factor = bw_factor;
    st->tag = tag;
    st->on_done = std::move(on_done);

    ResilienceCoordinator *rc = resilience_;
    const SimTime timeout =
        rc != nullptr ? rc->config().collective_timeout : 0.0;

    // advance is stored so the completion lambdas can call it.
    auto advance = std::make_shared<std::function<void()>>();
    // Launches hop i of the current round (initial launch and
    // watchdog relaunch share it so both attempts are identical).
    auto start_hop =
        std::make_shared<std::function<void(std::size_t)>>();
    // The watchdog body; parameters pin the (round, abort-epoch) it
    // was armed for.
    auto watch = std::make_shared<
        std::function<void(std::uint64_t, std::uint64_t)>>();

    *start_hop = [st, advance](std::size_t i) {
        Cluster &cl = st->eng->tm_.cluster();
        const CollectiveHop &hop = st->cur[i];
        TransferOptions opts;
        opts.waypoints = st->eng->viaNics(
            hop.src_rank, hop.dst_rank, st->channel, st->pin);
        opts.rate_factor = st->bw_factor;
        // On multipath fabrics, ECMP spreads the channels over
        // the equal-cost trunks (deterministically).
        opts.flow_key = static_cast<std::uint64_t>(st->channel);
        opts.tag = st->tag;
        st->xids[i] = st->eng->tm_.start(
            cl.gpuByRank(hop.src_rank), cl.gpuByRank(hop.dst_rank),
            hop.bytes,
            [st, advance] {
                if (--st->outstanding == 0)
                    (*advance)();
            },
            std::move(opts));
    };

    *advance = [st, advance, start_hop, watch, rc, timeout]() {
        if (st->next_round >= st->rounds.size()) {
            if (st->on_done)
                st->on_done();
            return;
        }
        const CollectiveRound &round = st->rounds[st->next_round++];
        DSTRAIN_ASSERT(!round.empty(), "empty collective round");
        st->cur = round;
        st->xids.assign(round.size(), 0);
        st->outstanding = static_cast<int>(round.size());
        ++st->round_gen;
        for (std::size_t i = 0; i < st->cur.size(); ++i)
            (*start_hop)(i);
        if (rc != nullptr && timeout > 0.0) {
            TransferManager &tm = st->eng->tm_;
            const std::uint64_t gen = st->round_gen;
            const std::uint64_t epoch = tm.abortEpoch();
            tm.sim().events().scheduleAfter(
                timeout, [watch, gen, epoch] { (*watch)(gen, epoch); });
        }
    };

    *watch = [st, watch, start_hop, advance, rc,
              timeout](std::uint64_t gen, std::uint64_t epoch) {
        TransferManager &tm = st->eng->tm_;
        if (epoch != tm.abortEpoch())
            return;  // hard-fault abort killed this attempt
        if (gen != st->round_gen || st->outstanding == 0)
            return;  // the round completed; a new watchdog owns the next
        bool rescued = false;
        if (st->resumes < rc->config().max_collective_resumes) {
            for (std::size_t i = 0; i < st->xids.size(); ++i) {
                if (st->xids[i] == 0 ||
                    !tm.transferStalled(st->xids[i]))
                    continue;
                // Byte-conserving round resume: the stalled hop's
                // delivered bytes stay delivered, only the remainder
                // relaunches — after routing has reconverged, so the
                // fresh transfer resolves around the cut.
                const Bytes rem = tm.cancelTransfer(st->xids[i]);
                st->xids[i] = 0;
                rescued = true;
                if (rem <= 0.0) {
                    // Everything had landed; the cancelled callback
                    // never fires, so settle the hop as a completion
                    // (deferred: advancing mid-loop would launch the
                    // next round while hops are still under review).
                    tm.sim().events().scheduleAfter(
                        0.0, [st, advance] {
                            if (--st->outstanding == 0)
                                (*advance)();
                        });
                    continue;
                }
                st->cur[i].bytes = rem;
                const std::uint64_t g = st->round_gen;
                const std::uint64_t e = tm.abortEpoch();
                const SimTime at = rc->reconvergedAt();
                tm.sim().events().schedule(
                    at, [st, start_hop, i, g, e] {
                        TransferManager &tm2 = st->eng->tm_;
                        if (e != tm2.abortEpoch() ||
                            g != st->round_gen)
                            return;
                        (*start_hop)(i);
                    });
            }
        }
        if (rescued) {
            ++rc->stats().collective_timeouts;
            ++st->resumes;
        }
        if (st->outstanding > 0 &&
            st->resumes < rc->config().max_collective_resumes) {
            const std::uint64_t g = st->round_gen;
            const std::uint64_t e = tm.abortEpoch();
            tm.sim().events().scheduleAfter(
                timeout, [watch, g, e] { (*watch)(g, e); });
        }
    };

    (*advance)();
}

void
CollectiveEngine::markRanksDead(const std::vector<int> &ranks)
{
    if (ranks.empty())
        return;
    dead_ranks_.insert(dead_ranks_.end(), ranks.begin(), ranks.end());
    std::sort(dead_ranks_.begin(), dead_ranks_.end());
    dead_ranks_.erase(
        std::unique(dead_ranks_.begin(), dead_ranks_.end()),
        dead_ranks_.end());
    // One elastic communicator-shrink event; per-group reforms are
    // counted again as they happen in runOp.
    if (resilience_ != nullptr)
        ++resilience_->stats().comm_shrinks;
}

bool
CollectiveEngine::rankDead(int rank) const
{
    return std::binary_search(dead_ranks_.begin(), dead_ranks_.end(),
                              rank);
}

bool
CollectiveEngine::hierarchicalDomainCut(const CommGroup &group) const
{
    Cluster &cl = tm_.cluster();
    const Topology &topo = cl.topology();
    std::vector<std::uint8_t> involved(
        static_cast<std::size_t>(cl.nodeCount()), 0);
    for (const int r : group.ranks)
        involved[static_cast<std::size_t>(cl.nodeOfRank(r))] = 1;
    for (const Resource &res : topo.resources()) {
        if (res.cls != LinkClass::NvLink || res.node < 0)
            continue;
        if (involved[static_cast<std::size_t>(res.node)] &&
            res.capacity <= 0.0)
            return true;
    }
    return false;
}

void
CollectiveEngine::recordUsage(CollectiveOp op, CollectiveAlgo algo,
                              int n, Bytes bytes)
{
    for (CollectiveUsage &u : usage_) {
        if (u.op == op && u.algo == algo) {
            ++u.invocations;
            u.payload_bytes += bytes;
            u.fabric_bytes += collectiveTotalVolume(op, n, bytes);
            return;
        }
    }
    CollectiveUsage u;
    u.op = op;
    u.algo = algo;
    u.invocations = 1;
    u.payload_bytes = bytes;
    u.fabric_bytes = collectiveTotalVolume(op, n, bytes);
    usage_.push_back(u);
}

void
CollectiveEngine::runOp(CollectiveOp op, const CommGroup &group,
                        int root, Bytes bytes, CollectiveOptions opts,
                        Callback on_done)
{
    const std::string kind = collectiveOpName(op);
    DSTRAIN_ASSERT(group.size() >= 2, "%s needs >= 2 ranks (got %d)",
                   kind.c_str(), group.size());
    const TopologyView view(tm_.cluster());

    // Elastic communicator shrink: reform the group over survivors
    // before the algorithm resolves, so a strategy that still names
    // a lost rank degrades instead of panicking inside the schedule.
    CommGroup live = group;
    if (resilience_ != nullptr && !dead_ranks_.empty()) {
        std::vector<int> alive;
        alive.reserve(live.ranks.size());
        for (const int r : live.ranks)
            if (!rankDead(r))
                alive.push_back(r);
        if (alive.size() != live.ranks.size()) {
            ++resilience_->stats().comm_shrinks;
            live.ranks = std::move(alive);
        }
    }
    if (live.size() < 2) {
        // Degenerate post-shrink group: a lone survivor has nothing
        // to exchange. Complete asynchronously (callers expect the
        // callback after, not during, the invocation).
        if (on_done)
            tm_.sim().events().scheduleAfter(0.0, std::move(on_done));
        return;
    }
    if (root >= 0 && rankDead(root))
        root = live.ranks.front();

    const int channels = resolveChannels(live, opts.channels, view);

    const CollectiveAlgo requested =
        opts.algorithm != CollectiveAlgo::Auto ? opts.algorithm
                                               : spec_.requestedFor(op);
    CollectiveAlgo algo =
        resolveCollectiveAlgorithm(op, live, bytes, requested, view);
    if (resilience_ != nullptr &&
        resilience_->config().collective_fallback) {
        // Degraded-schedule fallback: an algorithm whose structural
        // assumption is cut re-resolves deterministically through
        // the Auto policy's universal fallbacks (all-to-all ->
        // pairwise, everything else -> ring). Tree's pow2 assumption
        // after rank loss resolves inside resolveCollectiveAlgorithm
        // (the shrunk group fails supports()); hierarchical's
        // intra-node NVLink domain is checked here because the
        // schedule, not the group shape, depends on it.
        CollectiveAlgo degraded = algo;
        if (degraded == CollectiveAlgo::Hierarchical &&
            hierarchicalDomainCut(live)) {
            degraded = op == CollectiveOp::AllToAll
                           ? CollectiveAlgo::Pairwise
                           : CollectiveAlgo::Ring;
        }
        const bool shrunk = live.size() != group.size();
        const CollectiveAlgo healthy =
            shrunk ? resolveCollectiveAlgorithm(op, group, bytes,
                                                requested, view)
                   : algo;
        if (degraded != healthy)
            ++resilience_->stats().collective_fallbacks;
        algo = degraded;
    }
    const CollectiveAlgorithm &impl = collectiveAlgorithm(algo);
    recordUsage(op, algo, live.size(), bytes);

    const std::string tag =
        opts.tag.empty() ? kind : opts.tag + "/" + kind;

    auto remaining = std::make_shared<int>(channels);
    auto done = std::make_shared<Callback>(std::move(on_done));
    for (int c = 0; c < channels; ++c) {
        const Bytes share = bytes / channels;
        std::vector<CollectiveRound> rounds =
            impl.rounds(op, live, share, root, view);
        runRounds(live, std::move(rounds), c, channels,
                  opts.pin_channels_to_nics, opts.bandwidth_factor, tag,
                  [this, remaining, done] {
                      if (--*remaining == 0) {
                          ++completed_;
                          if (*done)
                              (*done)();
                      }
                  });
    }
}

void
CollectiveEngine::reduceScatter(const CommGroup &group, Bytes bytes,
                                Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::ReduceScatter, group, -1, bytes,
          std::move(opts), std::move(on_done));
}

void
CollectiveEngine::allGather(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllGather, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::allReduce(const CommGroup &group, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllReduce, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::broadcast(const CommGroup &group, int root, Bytes bytes,
                            Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::Broadcast, group, root, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::reduce(const CommGroup &group, int root, Bytes bytes,
                         Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::Reduce, group, root, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::allToAll(const CommGroup &group, Bytes bytes,
                           Callback on_done, CollectiveOptions opts)
{
    runOp(CollectiveOp::AllToAll, group, -1, bytes, std::move(opts),
          std::move(on_done));
}

void
CollectiveEngine::pointToPoint(int src_rank, int dst_rank, Bytes bytes,
                               Callback on_done, const std::string &tag)
{
    Cluster &cl = tm_.cluster();
    TransferOptions opts;
    opts.tag = tag;
    tm_.start(cl.gpuByRank(src_rank), cl.gpuByRank(dst_rank), bytes,
              std::move(on_done), std::move(opts));
}

} // namespace dstrain
