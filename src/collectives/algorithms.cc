/**
 * @file
 * Implementation of the collective-algorithm library and the
 * topology-aware `auto` selection policy.
 */

#include "collectives/algorithms.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Payloads below this ride the latency-optimal tree under `auto`. */
constexpr Bytes kTreeSmallPayload = 256.0 * 1024.0;

/** group.ranks rotated so @p root sits at position 0. */
std::vector<int>
rotatedFromRoot(const CommGroup &group, int root, int extra)
{
    const int n = group.size();
    std::vector<int> order;
    std::size_t root_pos = 0;
    for (std::size_t i = 0; i < group.ranks.size(); ++i)
        if (group.ranks[i] == root)
            root_pos = i;
    for (int i = 0; i < n; ++i)
        order.push_back(group.ranks[(root_pos +
                                     static_cast<std::size_t>(extra + i)) %
                                    group.ranks.size()]);
    return order;
}

/**
 * The N-1 neighbor-ring rounds of reduce-scatter / all-gather;
 * all-reduce runs two phases of them. Chunk arithmetic matches the
 * pre-library engine exactly (share / n once, reused per hop).
 */
std::vector<CollectiveRound>
ringUnrooted(const CommGroup &group, Bytes share, int phases)
{
    const int n = group.size();
    std::vector<CollectiveRound> rounds;
    const Bytes chunk = share / n;
    for (int phase = 0; phase < phases; ++phase) {
        for (int r = 0; r < n - 1; ++r) {
            CollectiveRound round;
            for (int i = 0; i < n; ++i) {
                round.push_back(
                    CollectiveHop{group.ranks[static_cast<std::size_t>(i)],
                                  group.ranks[static_cast<std::size_t>(
                                      (i + 1) % n)],
                                  chunk});
            }
            rounds.push_back(std::move(round));
        }
    }
    return rounds;
}

/**
 * Pipelined ring for the rooted ops: the payload is cut into slices
 * that travel down the ring; with k slices the makespan approaches
 * (1 + (n-2)/k) * bytes / bw. Rounds model the pipeline steps: at
 * step t, link i (i -> i+1) carries slice (t - i).
 */
std::vector<CollectiveRound>
ringPipeline(const std::vector<int> &order, Bytes share)
{
    const int n = static_cast<int>(order.size());
    const int slices = 8;
    std::vector<CollectiveRound> rounds;
    const Bytes slice = share / slices;
    const int steps = slices + n - 2;
    for (int t = 0; t < steps; ++t) {
        CollectiveRound round;
        for (int i = 0; i < n - 1; ++i) {
            const int s = t - i;
            if (s < 0 || s >= slices)
                continue;
            round.push_back(
                CollectiveHop{order[static_cast<std::size_t>(i)],
                              order[static_cast<std::size_t>(i + 1)],
                              slice});
        }
        if (!round.empty())
            rounds.push_back(std::move(round));
    }
    return rounds;
}

/**
 * Direct-exchange rounds: round r has every rank i ship one chunk
 * straight to rank (i + r + 1) mod n. One phase is reduce-scatter,
 * all-gather or all-to-all; all-reduce runs two.
 */
std::vector<CollectiveRound>
pairwiseExchange(const CommGroup &group, Bytes share, int phases)
{
    const int n = group.size();
    std::vector<CollectiveRound> rounds;
    const Bytes chunk = share / n;
    for (int phase = 0; phase < phases; ++phase) {
        for (int r = 0; r < n - 1; ++r) {
            CollectiveRound round;
            for (int i = 0; i < n; ++i) {
                round.push_back(
                    CollectiveHop{group.ranks[static_cast<std::size_t>(i)],
                                  group.ranks[static_cast<std::size_t>(
                                      (i + r + 1) % n)],
                                  chunk});
            }
            rounds.push_back(std::move(round));
        }
    }
    return rounds;
}

bool
isPowerOfTwo(int n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

/** Binomial broadcast from order[0]: round k doubles the frontier. */
std::vector<CollectiveRound>
binomialBroadcast(const std::vector<int> &order, Bytes share)
{
    const int n = static_cast<int>(order.size());
    std::vector<CollectiveRound> rounds;
    for (int k = 0; (1 << k) < n; ++k) {
        CollectiveRound round;
        for (int p = 0; p < (1 << k); ++p) {
            const int q = p + (1 << k);
            if (q >= n)
                break;
            round.push_back(
                CollectiveHop{order[static_cast<std::size_t>(p)],
                              order[static_cast<std::size_t>(q)], share});
        }
        rounds.push_back(std::move(round));
    }
    return rounds;
}

/** Binomial reduce toward order[0]: the broadcast mirrored. */
std::vector<CollectiveRound>
binomialReduce(const std::vector<int> &order, Bytes share)
{
    const int n = static_cast<int>(order.size());
    int levels = 0;
    while ((1 << levels) < n)
        ++levels;
    std::vector<CollectiveRound> rounds;
    for (int k = levels - 1; k >= 0; --k) {
        CollectiveRound round;
        for (int p = 0; p < (1 << k); ++p) {
            const int q = p + (1 << k);
            if (q >= n)
                break;
            round.push_back(
                CollectiveHop{order[static_cast<std::size_t>(q)],
                              order[static_cast<std::size_t>(p)], share});
        }
        if (!round.empty())
            rounds.push_back(std::move(round));
    }
    return rounds;
}

/** Recursive-doubling all-gather (power-of-two groups only). */
std::vector<CollectiveRound>
recursiveDoubling(const CommGroup &group, Bytes share)
{
    const int n = group.size();
    std::vector<CollectiveRound> rounds;
    for (int dist = 1; dist < n; dist *= 2) {
        CollectiveRound round;
        const Bytes bytes = share * dist / n;
        for (int i = 0; i < n; ++i) {
            round.push_back(
                CollectiveHop{group.ranks[static_cast<std::size_t>(i)],
                              group.ranks[static_cast<std::size_t>(
                                  i ^ dist)],
                              bytes});
        }
        rounds.push_back(std::move(round));
    }
    return rounds;
}

/** Recursive-halving reduce-scatter (power-of-two groups only). */
std::vector<CollectiveRound>
recursiveHalving(const CommGroup &group, Bytes share)
{
    const int n = group.size();
    std::vector<CollectiveRound> rounds;
    Bytes bytes = share / 2;
    for (int dist = n / 2; dist >= 1; dist /= 2) {
        CollectiveRound round;
        for (int i = 0; i < n; ++i) {
            round.push_back(
                CollectiveHop{group.ranks[static_cast<std::size_t>(i)],
                              group.ranks[static_cast<std::size_t>(
                                  i ^ dist)],
                              bytes});
        }
        rounds.push_back(std::move(round));
        bytes /= 2;
    }
    return rounds;
}

// ---------------------------------------------------------------- Ring

class RingAlgorithm final : public CollectiveAlgorithm
{
  public:
    CollectiveAlgo id() const override { return CollectiveAlgo::Ring; }

    bool
    supports(CollectiveOp op, const CommGroup &group,
             const TopologyView &) const override
    {
        return group.size() >= 2 && op != CollectiveOp::AllToAll;
    }

    std::vector<CollectiveRound>
    rounds(CollectiveOp op, const CommGroup &group, Bytes share,
           int root, const TopologyView &) const override
    {
        switch (op) {
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
            return ringUnrooted(group, share, 1);
          case CollectiveOp::AllReduce:
            return ringUnrooted(group, share, 2);
          case CollectiveOp::Broadcast:
            return ringPipeline(rotatedFromRoot(group, root, 0), share);
          case CollectiveOp::Reduce:
            // Toward the root: same pipeline in the opposite
            // direction; order[n-1] == root.
            return ringPipeline(rotatedFromRoot(group, root, 1), share);
          case CollectiveOp::AllToAll:
            break;
        }
        panic("ring cannot schedule %s", collectiveOpName(op));
    }
};

// ------------------------------------------------------------ Pairwise

class PairwiseAlgorithm final : public CollectiveAlgorithm
{
  public:
    CollectiveAlgo id() const override { return CollectiveAlgo::Pairwise; }

    bool
    supports(CollectiveOp op, const CommGroup &group,
             const TopologyView &) const override
    {
        switch (op) {
          case CollectiveOp::AllReduce:
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
          case CollectiveOp::AllToAll:
            return group.size() >= 2;
          case CollectiveOp::Broadcast:
          case CollectiveOp::Reduce:
            return false;
        }
        return false;
    }

    std::vector<CollectiveRound>
    rounds(CollectiveOp op, const CommGroup &group, Bytes share, int,
           const TopologyView &) const override
    {
        switch (op) {
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
          case CollectiveOp::AllToAll:
            return pairwiseExchange(group, share, 1);
          case CollectiveOp::AllReduce:
            return pairwiseExchange(group, share, 2);
          case CollectiveOp::Broadcast:
          case CollectiveOp::Reduce:
            break;
        }
        panic("pairwise cannot schedule %s", collectiveOpName(op));
    }
};

// ---------------------------------------------------------------- Tree

class TreeAlgorithm final : public CollectiveAlgorithm
{
  public:
    CollectiveAlgo id() const override { return CollectiveAlgo::Tree; }

    bool
    supports(CollectiveOp op, const CommGroup &group,
             const TopologyView &) const override
    {
        const int n = group.size();
        if (n < 2)
            return false;
        switch (op) {
          case CollectiveOp::Broadcast:
          case CollectiveOp::Reduce:
          case CollectiveOp::AllReduce:
            return true;
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
            // Recursive halving/doubling needs a power-of-two group.
            return isPowerOfTwo(n);
          case CollectiveOp::AllToAll:
            return false;
        }
        return false;
    }

    std::vector<CollectiveRound>
    rounds(CollectiveOp op, const CommGroup &group, Bytes share,
           int root, const TopologyView &) const override
    {
        switch (op) {
          case CollectiveOp::Broadcast:
            return binomialBroadcast(rotatedFromRoot(group, root, 0),
                                     share);
          case CollectiveOp::Reduce:
            return binomialReduce(rotatedFromRoot(group, root, 0),
                                  share);
          case CollectiveOp::AllReduce: {
            // Reduce to rank 0 of the group, then fan back out.
            auto rounds = binomialReduce(group.ranks, share);
            auto bcast = binomialBroadcast(group.ranks, share);
            rounds.insert(rounds.end(),
                          std::make_move_iterator(bcast.begin()),
                          std::make_move_iterator(bcast.end()));
            return rounds;
          }
          case CollectiveOp::AllGather:
            return recursiveDoubling(group, share);
          case CollectiveOp::ReduceScatter:
            return recursiveHalving(group, share);
          case CollectiveOp::AllToAll:
            break;
        }
        panic("tree cannot schedule %s", collectiveOpName(op));
    }
};

// -------------------------------------------------------- Hierarchical

class HierarchicalAlgorithm final : public CollectiveAlgorithm
{
  public:
    CollectiveAlgo id() const override
    {
        return CollectiveAlgo::Hierarchical;
    }

    bool
    supports(CollectiveOp op, const CommGroup &group,
             const TopologyView &view) const override
    {
        switch (op) {
          case CollectiveOp::AllReduce:
          case CollectiveOp::ReduceScatter:
          case CollectiveOp::AllGather:
            break;
          default:
            return false;
        }
        return group.size() >= 2 && view.spansNodes(group) &&
               view.uniformRanksPerNode(group);
    }

    std::vector<CollectiveRound>
    rounds(CollectiveOp op, const CommGroup &group, Bytes share, int,
           const TopologyView &view) const override
    {
        // Node-major layout: g.ranks[node * gpn + j] is node
        // `node`'s j-th member; rail j strings the j-th member of
        // every node into one inter-node ring.
        const CommGroup g = view.orderNodeMajor(group);
        const int n = g.size();
        const int m = static_cast<int>(view.nodesOf(g).size());
        DSTRAIN_ASSERT(m >= 2 && n % m == 0,
                       "hierarchical needs a uniform multi-node group");
        const int gpn = n / m;

        std::vector<CollectiveRound> rounds;

        // One neighbor-ring round inside every node concurrently.
        auto intra_rounds = [&](Bytes chunk, int count) {
            for (int r = 0; r < count; ++r) {
                CollectiveRound round;
                for (int node = 0; node < m; ++node) {
                    for (int j = 0; j < gpn; ++j) {
                        round.push_back(CollectiveHop{
                            railRank(g, node, j, gpn),
                            railRank(g, node, (j + 1) % gpn, gpn),
                            chunk});
                    }
                }
                rounds.push_back(std::move(round));
            }
        };
        // One ring round along every rail concurrently.
        auto inter_rounds = [&](Bytes chunk, int count) {
            for (int r = 0; r < count; ++r) {
                CollectiveRound round;
                for (int j = 0; j < gpn; ++j) {
                    for (int node = 0; node < m; ++node) {
                        round.push_back(CollectiveHop{
                            railRank(g, node, j, gpn),
                            railRank(g, (node + 1) % m, j, gpn),
                            chunk});
                    }
                }
                rounds.push_back(std::move(round));
            }
        };

        const Bytes node_chunk = share / gpn;
        const Bytes rail_chunk = node_chunk / m;
        switch (op) {
          case CollectiveOp::AllReduce:
            // Intra reduce-scatter, rail all-reduce, intra
            // all-gather: each payload byte crosses the inter-node
            // fabric 2(m-1)/n times instead of the flat ring's
            // 2(n-1) m / n.
            intra_rounds(node_chunk, gpn - 1);
            inter_rounds(rail_chunk, 2 * (m - 1));
            intra_rounds(node_chunk, gpn - 1);
            break;
          case CollectiveOp::ReduceScatter:
            intra_rounds(node_chunk, gpn - 1);
            inter_rounds(rail_chunk, m - 1);
            break;
          case CollectiveOp::AllGather:
            inter_rounds(rail_chunk, m - 1);
            intra_rounds(node_chunk, gpn - 1);
            break;
          default:
            panic("hierarchical cannot schedule %s",
                  collectiveOpName(op));
        }
        return rounds;
    }

  private:
    static int
    railRank(const CommGroup &g, int node, int j, int gpn)
    {
        return g.ranks[static_cast<std::size_t>(node * gpn + j)];
    }
};

const RingAlgorithm kRing;
const PairwiseAlgorithm kPairwise;
const TreeAlgorithm kTree;
const HierarchicalAlgorithm kHierarchical;

} // namespace

const CollectiveAlgorithm &
collectiveAlgorithm(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::Ring:
        return kRing;
      case CollectiveAlgo::Pairwise:
        return kPairwise;
      case CollectiveAlgo::Tree:
        return kTree;
      case CollectiveAlgo::Hierarchical:
        return kHierarchical;
      case CollectiveAlgo::Auto:
        break;
    }
    panic("no implementation for CollectiveAlgo %d",
          static_cast<int>(algo));
}

CollectiveAlgo
chooseCollectiveAlgorithm(CollectiveOp op, const CommGroup &group,
                          Bytes bytes, const TopologyView &view)
{
    const int n = group.size();
    if (op == CollectiveOp::AllToAll)
        return CollectiveAlgo::Pairwise;
    if (op == CollectiveOp::Broadcast || op == CollectiveOp::Reduce)
        return n > 2 ? CollectiveAlgo::Tree : CollectiveAlgo::Ring;
    // Bandwidth ops: prefer the two-level decomposition whenever the
    // group actually has an intra-node tier to exploit.
    if (kHierarchical.supports(op, group, view) &&
        n > static_cast<int>(view.nodesOf(group).size())) {
        return CollectiveAlgo::Hierarchical;
    }
    // Small payloads are latency-bound: log2 N rounds beat N-1.
    if (bytes < kTreeSmallPayload && kTree.supports(op, group, view))
        return CollectiveAlgo::Tree;
    return CollectiveAlgo::Ring;
}

CollectiveAlgo
resolveCollectiveAlgorithm(CollectiveOp op, const CommGroup &group,
                           Bytes bytes, CollectiveAlgo requested,
                           const TopologyView &view)
{
    if (requested == CollectiveAlgo::Auto)
        requested = chooseCollectiveAlgorithm(op, group, bytes, view);
    if (collectiveAlgorithm(requested).supports(op, group, view))
        return requested;
    return op == CollectiveOp::AllToAll ? CollectiveAlgo::Pairwise
                                        : CollectiveAlgo::Ring;
}

std::optional<CollectiveAlgo>
parseCollectiveAlgo(const std::string &name)
{
    if (name == "auto")
        return CollectiveAlgo::Auto;
    if (name == "ring")
        return CollectiveAlgo::Ring;
    if (name == "pairwise")
        return CollectiveAlgo::Pairwise;
    if (name == "tree")
        return CollectiveAlgo::Tree;
    if (name == "hierarchical")
        return CollectiveAlgo::Hierarchical;
    return std::nullopt;
}

namespace {

std::optional<CollectiveOp>
parseCollectiveOpName(const std::string &name)
{
    if (name == "allreduce" || name == "all-reduce")
        return CollectiveOp::AllReduce;
    if (name == "reducescatter" || name == "reduce-scatter")
        return CollectiveOp::ReduceScatter;
    if (name == "allgather" || name == "all-gather")
        return CollectiveOp::AllGather;
    if (name == "broadcast")
        return CollectiveOp::Broadcast;
    if (name == "reduce")
        return CollectiveOp::Reduce;
    if (name == "alltoall" || name == "all-to-all")
        return CollectiveOp::AllToAll;
    return std::nullopt;
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

} // namespace

std::optional<CollectiveAlgoSpec>
parseCollectiveAlgoSpec(const std::string &spec, std::string *error)
{
    CollectiveAlgoSpec out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = trimmed(spec.substr(pos, comma - pos));
        pos = comma + 1;
        if (tok.empty()) {
            if (spec.empty())
                break;  // empty spec = defaults
            if (error)
                *error = "empty element in collective-algo spec";
            return std::nullopt;
        }
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            const auto algo = parseCollectiveAlgo(tok);
            if (!algo) {
                if (error)
                    *error = "unknown collective algorithm '" + tok +
                             "' (ring, pairwise, tree, hierarchical, "
                             "auto)";
                return std::nullopt;
            }
            out.default_algo = *algo;
            continue;
        }
        const std::string op_name = trimmed(tok.substr(0, eq));
        const std::string algo_name = trimmed(tok.substr(eq + 1));
        const auto op = parseCollectiveOpName(op_name);
        if (!op) {
            if (error)
                *error = "unknown collective op '" + op_name +
                         "' (allreduce, reducescatter, allgather, "
                         "broadcast, reduce, alltoall)";
            return std::nullopt;
        }
        const auto algo = parseCollectiveAlgo(algo_name);
        if (!algo) {
            if (error)
                *error = "unknown collective algorithm '" + algo_name +
                         "' (ring, pairwise, tree, hierarchical, auto)";
            return std::nullopt;
        }
        out.per_op[static_cast<std::size_t>(static_cast<int>(*op))] =
            *algo;
    }
    return out;
}

CommGroup
orderNodeMajor(const CommGroup &group, const Cluster &cluster)
{
    return TopologyView(cluster).orderNodeMajor(group);
}

int
interNodeHops(const CommGroup &group, const Cluster &cluster)
{
    return TopologyView(cluster).interNodeHops(group);
}

Bps
ringBottleneckBandwidth(const CommGroup &group, const Cluster &cluster)
{
    return TopologyView(cluster).ringBottleneckBandwidth(group);
}

} // namespace dstrain
