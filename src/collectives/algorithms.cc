/**
 * @file
 * Implementation of the topology-aware collective helpers.
 */

#include "collectives/algorithms.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

CommGroup
orderNodeMajor(const CommGroup &group, const Cluster &cluster)
{
    CommGroup out = group;
    std::stable_sort(out.ranks.begin(), out.ranks.end(),
                     [&cluster](int a, int b) {
                         return cluster.nodeOfRank(a) <
                                cluster.nodeOfRank(b);
                     });
    return out;
}

int
interNodeHops(const CommGroup &group, const Cluster &cluster)
{
    const int n = group.size();
    if (n < 2)
        return 0;
    int hops = 0;
    for (int i = 0; i < n; ++i) {
        const int a = group.ranks[static_cast<std::size_t>(i)];
        const int b = group.ranks[static_cast<std::size_t>((i + 1) % n)];
        if (cluster.nodeOfRank(a) != cluster.nodeOfRank(b))
            ++hops;
    }
    return hops;
}

Bps
ringBottleneckBandwidth(const CommGroup &group, const Cluster &cluster)
{
    DSTRAIN_ASSERT(group.size() >= 2, "ring needs >= 2 ranks");
    Bps worst = std::numeric_limits<Bps>::max();
    const int n = group.size();
    for (int i = 0; i < n; ++i) {
        const int a = group.ranks[static_cast<std::size_t>(i)];
        const int b = group.ranks[static_cast<std::size_t>((i + 1) % n)];
        const Route &r = cluster.router().route(cluster.gpuByRank(a),
                                                cluster.gpuByRank(b));
        worst = std::min(worst, r.rate_cap);
    }
    return worst;
}

} // namespace dstrain
