/**
 * @file
 * Implementation of the Table IV-style summaries.
 */

#include "telemetry/summary.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace dstrain {

BandwidthRow
measureBandwidthRow(const std::string &config, const Topology &topo,
                    SimTime begin, SimTime end, SimTime bucket)
{
    BandwidthRow row;
    row.config = config;
    // One walk of topo.resources() for all seven classes.
    for (const BandwidthSeries &series :
         probeAllClasses(topo, begin, end, bucket))
        row.per_class.push_back(series.summary());
    return row;
}

TextTable
makeBandwidthTable()
{
    std::vector<std::string> headers = {"Configuration"};
    for (LinkClass cls : tableIvClasses()) {
        headers.push_back(csprintf("%s avg", linkClassName(cls)));
        headers.push_back(csprintf("%s 90th", linkClassName(cls)));
        headers.push_back(csprintf("%s peak", linkClassName(cls)));
    }
    return TextTable(std::move(headers));
}

void
addBandwidthRow(TextTable &table, const BandwidthRow &row)
{
    std::vector<std::string> cells = {row.config};
    for (const BandwidthSummary &s : row.per_class) {
        cells.push_back(csprintf("%.2f", s.avg / units::GBps));
        cells.push_back(csprintf("%.2f", s.p90 / units::GBps));
        cells.push_back(csprintf("%.2f", s.peak / units::GBps));
    }
    table.addRow(std::move(cells));
}

} // namespace dstrain
