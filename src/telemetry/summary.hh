/**
 * @file
 * Table IV-style summary rows: one configuration's (avg, 90th, peak)
 * per interconnect class, rendered through util/table.
 */

#ifndef DSTRAIN_TELEMETRY_SUMMARY_HH
#define DSTRAIN_TELEMETRY_SUMMARY_HH

#include <string>
#include <vector>

#include "telemetry/probe.hh"
#include "util/table.hh"

namespace dstrain {

/** One row of Table IV. */
struct BandwidthRow {
    std::string config;
    std::vector<BandwidthSummary> per_class;  ///< tableIvClasses() order
};

/** Measure a full row over [begin, end). */
BandwidthRow
measureBandwidthRow(const std::string &config, const Topology &topo,
                    SimTime begin, SimTime end,
                    SimTime bucket = kDefaultTelemetryBucket);

/** Build the Table IV header (Config + Avg/90th/Peak per class). */
TextTable makeBandwidthTable();

/** Append a measured row (values in GBps, two significant styles). */
void addBandwidthRow(TextTable &table, const BandwidthRow &row);

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_SUMMARY_HH
