/**
 * @file
 * Bandwidth probes: select the topology resources belonging to one
 * interconnect class (optionally one node) and produce the
 * aggregate-bidirectional bandwidth series the paper reports
 * (Table IV: "aggregate bidirectional per-node bandwidth").
 */

#ifndef DSTRAIN_TELEMETRY_PROBE_HH
#define DSTRAIN_TELEMETRY_PROBE_HH

#include "hw/topology.hh"
#include "telemetry/series.hh"

namespace dstrain {

/** Default sampling bucket (the paper samples at ~0.1-1 s). */
inline constexpr SimTime kDefaultTelemetryBucket = 0.1;

/**
 * Bandwidth series for one interconnect class.
 *
 * Sums both directions of every matching resource — the paper's
 * "aggregate bidirectional" convention — and divides by the number
 * of nodes carrying matching resources to report *per-node* figures.
 *
 * @param node restrict to one node (-1 = all nodes, per-node
 *             averaged).
 */
BandwidthSeries
probeClassBandwidth(const Topology &topo, LinkClass cls, SimTime begin,
                    SimTime end, SimTime bucket = kDefaultTelemetryBucket,
                    int node = -1);

/**
 * Per-node aggregate bidirectional summary for one class — one cell
 * group of paper Table IV.
 */
BandwidthSummary
summarizeClassBandwidth(const Topology &topo, LinkClass cls,
                        SimTime begin, SimTime end,
                        SimTime bucket = kDefaultTelemetryBucket);

/** The seven interconnect classes in paper Table IV column order. */
const std::vector<LinkClass> &tableIvClasses();

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_PROBE_HH
