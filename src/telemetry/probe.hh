/**
 * @file
 * Bandwidth probes: select the topology resources belonging to one
 * interconnect class (optionally one node) and produce the
 * aggregate-bidirectional bandwidth series the paper reports
 * (Table IV: "aggregate bidirectional per-node bandwidth").
 */

#ifndef DSTRAIN_TELEMETRY_PROBE_HH
#define DSTRAIN_TELEMETRY_PROBE_HH

#include "hw/topology.hh"
#include "telemetry/series.hh"

namespace dstrain {

/** Default sampling bucket (the paper samples at ~0.1-1 s). */
inline constexpr SimTime kDefaultTelemetryBucket = 0.1;

/**
 * How an engine run collects bandwidth telemetry.
 *
 * The default is the streaming engine: every rate log folds its
 * history online into buckets of `bucket` width starting at the
 * measurement window, warm-up history is truncated when measurement
 * begins, and no segments are retained — O(buckets) memory per
 * resource regardless of rate-change density. Set `retain_segments`
 * to keep the full piecewise-constant history as well (needed to
 * re-probe with ad-hoc windows or bucket widths after the run, e.g.
 * the figure benches' per-iteration series). Setting `streaming` to
 * false falls back to the legacy end-of-run segment sweep (implies
 * retention).
 */
struct TelemetryConfig {
    SimTime bucket = kDefaultTelemetryBucket;  ///< sampling bucket width
    bool streaming = true;        ///< arm online bucket accumulators
    bool retain_segments = false; ///< also keep full segment history
};

/**
 * Bandwidth series for one interconnect class.
 *
 * Sums both directions of every matching resource — the paper's
 * "aggregate bidirectional" convention — and divides by the number
 * of nodes carrying matching resources to report *per-node* figures.
 *
 * @param node restrict to one node (-1 = all nodes, per-node
 *             averaged).
 */
BandwidthSeries
probeClassBandwidth(const Topology &topo, LinkClass cls, SimTime begin,
                    SimTime end, SimTime bucket = kDefaultTelemetryBucket,
                    int node = -1);

/**
 * Single-pass multi-class probe: walk topo.resources() once and
 * produce the series of every Table IV class together, in
 * tableIvClasses() order. Equivalent to (and bit-identical with)
 * calling probeClassBandwidth() once per class, at one seventh of the
 * resource-walk cost.
 */
std::vector<BandwidthSeries>
probeAllClasses(const Topology &topo, SimTime begin, SimTime end,
                SimTime bucket = kDefaultTelemetryBucket, int node = -1);

/**
 * Per-node aggregate bidirectional summary for one class — one cell
 * group of paper Table IV.
 */
BandwidthSummary
summarizeClassBandwidth(const Topology &topo, LinkClass cls,
                        SimTime begin, SimTime end,
                        SimTime bucket = kDefaultTelemetryBucket);

/** The seven interconnect classes in paper Table IV column order. */
const std::vector<LinkClass> &tableIvClasses();

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_PROBE_HH
