/**
 * @file
 * Implementation of the bandwidth probes.
 */

#include "telemetry/probe.hh"

#include <set>

#include "util/logging.hh"

namespace dstrain {

BandwidthSeries
probeClassBandwidth(const Topology &topo, LinkClass cls, SimTime begin,
                    SimTime end, SimTime bucket, int node)
{
    std::vector<const RateLog *> logs;
    std::set<int> nodes_with_class;
    for (const Resource &r : topo.resources()) {
        if (r.cls != cls)
            continue;
        nodes_with_class.insert(r.node);
        if (node >= 0 && r.node != node)
            continue;
        logs.push_back(&r.log);
    }
    BandwidthSeries series = bucketizeRateLogs(logs, begin, end, bucket);
    if (node < 0 && nodes_with_class.size() > 1) {
        const double scale =
            1.0 / static_cast<double>(nodes_with_class.size());
        for (double &v : series.values)
            v *= scale;
    }
    return series;
}

BandwidthSummary
summarizeClassBandwidth(const Topology &topo, LinkClass cls,
                        SimTime begin, SimTime end, SimTime bucket)
{
    return probeClassBandwidth(topo, cls, begin, end, bucket).summary();
}

const std::vector<LinkClass> &
tableIvClasses()
{
    static const std::vector<LinkClass> classes = {
        LinkClass::Dram,    LinkClass::Xgmi,   LinkClass::PcieGpu,
        LinkClass::PcieNvme, LinkClass::PcieNic, LinkClass::NvLink,
        LinkClass::Roce,
    };
    return classes;
}

} // namespace dstrain
