/**
 * @file
 * Implementation of the bandwidth probes.
 */

#include "telemetry/probe.hh"

#include <algorithm>
#include <cstdint>

#include "util/logging.hh"

namespace dstrain {
namespace {

/** Nodes handled without heap allocation by the per-probe flat set. */
constexpr std::size_t kMaxInlineNodes = 64;

/**
 * Assemble the series for one class's logs: from the streamed bucket
 * arrays when every log covers the requested window/grid, otherwise
 * by the legacy segment sweep. A sweep over a log that carried
 * traffic but retained no segments would silently read as idle, so
 * that combination panics instead.
 */
BandwidthSeries
seriesForLogs(const std::vector<const RateLog *> &logs, SimTime begin,
              SimTime end, SimTime bucket)
{
    bool streamed = !logs.empty();
    for (const RateLog *log : logs) {
        if (!log->streamCovers(begin, end, bucket)) {
            streamed = false;
            break;
        }
    }
    if (streamed)
        return sumStreamedBuckets(logs, begin, end, bucket);
    for (const RateLog *log : logs) {
        DSTRAIN_ASSERT(
            log->retainSegments() || log->totalBytes() == 0.0,
            "probe window/bucket does not match the streamed grid and "
            "segments were not retained; enable "
            "TelemetryConfig::retain_segments for ad-hoc probes");
    }
    return bucketizeRateLogs(logs, begin, end, bucket);
}

} // namespace

BandwidthSeries
probeClassBandwidth(const Topology &topo, LinkClass cls, SimTime begin,
                    SimTime end, SimTime bucket, int node)
{
    // Counted flat presence array instead of a per-call std::set:
    // slot 0 is the switch (node -1), slots 1..N the nodes.
    const std::size_t node_slots =
        static_cast<std::size_t>(topo.nodeCount()) + 1;
    std::uint8_t seen_inline[kMaxInlineNodes] = {};
    std::vector<std::uint8_t> seen_heap;
    std::uint8_t *node_seen = seen_inline;
    if (node_slots > kMaxInlineNodes) {
        seen_heap.assign(node_slots, 0);
        node_seen = seen_heap.data();
    }

    std::vector<const RateLog *> logs;
    int nodes_with_class = 0;
    for (const Resource &r : topo.resources()) {
        if (r.cls != cls)
            continue;
        std::uint8_t &seen =
            node_seen[static_cast<std::size_t>(r.node + 1)];
        if (!seen) {
            seen = 1;
            ++nodes_with_class;
        }
        if (node >= 0 && r.node != node)
            continue;
        logs.push_back(&r.log);
    }
    BandwidthSeries series = seriesForLogs(logs, begin, end, bucket);
    if (node < 0 && nodes_with_class > 1) {
        const double scale = 1.0 / static_cast<double>(nodes_with_class);
        for (double &v : series.values)
            v *= scale;
    }
    return series;
}

std::vector<BandwidthSeries>
probeAllClasses(const Topology &topo, SimTime begin, SimTime end,
                SimTime bucket, int node)
{
    const std::vector<LinkClass> &classes = tableIvClasses();
    const std::size_t n_cls = classes.size();

    // Dense class -> output-slot map so the resource walk is a flat
    // lookup (classes outside Table IV map to -1 and are skipped).
    int slot_of[kNumLinkClasses];
    std::fill(std::begin(slot_of), std::end(slot_of), -1);
    for (std::size_t i = 0; i < n_cls; ++i)
        slot_of[static_cast<int>(classes[i])] = static_cast<int>(i);

    const std::size_t node_slots =
        static_cast<std::size_t>(topo.nodeCount()) + 1;
    std::vector<std::uint8_t> node_seen(n_cls * node_slots, 0);
    std::vector<int> nodes_with_class(n_cls, 0);
    std::vector<std::vector<const RateLog *>> logs(n_cls);

    for (const Resource &r : topo.resources()) {
        const int slot = slot_of[static_cast<int>(r.cls)];
        if (slot < 0)
            continue;
        const std::size_t cls_i = static_cast<std::size_t>(slot);
        std::uint8_t &seen = node_seen[cls_i * node_slots +
                                       static_cast<std::size_t>(r.node + 1)];
        if (!seen) {
            seen = 1;
            ++nodes_with_class[cls_i];
        }
        if (node >= 0 && r.node != node)
            continue;
        logs[cls_i].push_back(&r.log);
    }

    std::vector<BandwidthSeries> out;
    out.reserve(n_cls);
    for (std::size_t i = 0; i < n_cls; ++i) {
        BandwidthSeries series =
            seriesForLogs(logs[i], begin, end, bucket);
        if (node < 0 && nodes_with_class[i] > 1) {
            const double scale =
                1.0 / static_cast<double>(nodes_with_class[i]);
            for (double &v : series.values)
                v *= scale;
        }
        out.push_back(std::move(series));
    }
    return out;
}

BandwidthSummary
summarizeClassBandwidth(const Topology &topo, LinkClass cls,
                        SimTime begin, SimTime end, SimTime bucket)
{
    return probeClassBandwidth(topo, cls, begin, end, bucket).summary();
}

const std::vector<LinkClass> &
tableIvClasses()
{
    static const std::vector<LinkClass> classes = {
        LinkClass::Dram,    LinkClass::Xgmi,   LinkClass::PcieGpu,
        LinkClass::PcieNvme, LinkClass::PcieNic, LinkClass::NvLink,
        LinkClass::Roce,
    };
    return classes;
}

} // namespace dstrain
