/**
 * @file
 * ASCII timeline rendering of executed task spans — the textual
 * counterpart of the paper's Fig. 5 nsys timelines. One row per GPU
 * rank (plus a host row when CPU optimizer work exists); each column
 * is a time slot colored by the dominant activity:
 *
 *   F forward GEMMs       B backward GEMMs     O optimizer
 *   C communication       I NVMe/storage IO    . idle
 */

#ifndef DSTRAIN_TELEMETRY_TIMELINE_HH
#define DSTRAIN_TELEMETRY_TIMELINE_HH

#include <string>
#include <vector>

#include "engine/iteration_result.hh"

namespace dstrain {

/** Rendering options. */
struct TimelineOptions {
    int width = 100;        ///< character columns
    bool include_host = true;
};

/**
 * Render the spans within [begin, end) as an ASCII timeline.
 *
 * @param spans  executed spans (from IterationResult).
 * @param ranks  number of GPU rank rows to draw.
 */
std::string renderTimeline(const std::vector<TaskSpan> &spans, int ranks,
                           SimTime begin, SimTime end,
                           TimelineOptions opts = {});

/** The slot character for a phase. */
char phaseGlyph(ComputePhase phase);

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_TIMELINE_HH
