/**
 * @file
 * Converts resource rate logs into time-bucketed bandwidth series —
 * the simulated counterpart of the paper's uProf / nvidia-smi /
 * hardware-counter sampling.
 */

#ifndef DSTRAIN_TELEMETRY_SERIES_HH
#define DSTRAIN_TELEMETRY_SERIES_HH

#include <vector>

#include "hw/link.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace dstrain {

/** A bucketed bandwidth series. */
struct BandwidthSeries {
    SimTime begin = 0.0;
    SimTime bucket = 0.0;             ///< bucket width
    std::vector<double> values;       ///< average Bps per bucket

    /** Statistics over the buckets. */
    SampleSeries samples() const;

    /** Paper-style (avg, 90th, peak). */
    BandwidthSummary summary() const;
};

/**
 * Bucket the sum of the given rate logs over [begin, end).
 *
 * Each bucket holds the time-average of the summed rates within it,
 * i.e. bytes transferred in the bucket divided by the bucket width.
 */
BandwidthSeries
bucketizeRateLogs(const std::vector<const RateLog *> &logs, SimTime begin,
                  SimTime end, SimTime bucket);

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_SERIES_HH
