/**
 * @file
 * Converts resource rate logs into time-bucketed bandwidth series —
 * the simulated counterpart of the paper's uProf / nvidia-smi /
 * hardware-counter sampling.
 */

#ifndef DSTRAIN_TELEMETRY_SERIES_HH
#define DSTRAIN_TELEMETRY_SERIES_HH

#include <vector>

#include "hw/link.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace dstrain {

/** A bucketed bandwidth series. */
struct BandwidthSeries {
    SimTime begin = 0.0;
    SimTime bucket = 0.0;             ///< bucket width
    std::vector<double> values;       ///< average Bps per bucket

    /** Statistics over the buckets. */
    SampleSeries samples() const;

    /** Paper-style (avg, 90th, peak). */
    BandwidthSummary summary() const;
};

/**
 * Bucket the sum of the given rate logs over [begin, end) by sweeping
 * their retained segments (the legacy end-of-run integrator; requires
 * retention — see RateLog::setRetainSegments).
 *
 * Each bucket holds the time-average of the summed rates within it,
 * i.e. bytes transferred in the bucket divided by the bucket width.
 * Accumulation runs per log: each log's segments integrate into a
 * per-log partial first, then partials add in log order — the same
 * association order as the streaming accumulator, which is what makes
 * sumStreamedBuckets() bit-identical to this sweep.
 */
BandwidthSeries
bucketizeRateLogs(const std::vector<const RateLog *> &logs, SimTime begin,
                  SimTime end, SimTime bucket);

/**
 * Assemble the same series from the logs' streamed bucket arrays
 * instead of a segment sweep — O(logs x buckets), independent of how
 * many rate changes occurred. Every log must satisfy
 * RateLog::streamCovers(begin, end, bucket); the result is
 * bit-identical to bucketizeRateLogs() over the same history.
 */
BandwidthSeries
sumStreamedBuckets(const std::vector<const RateLog *> &logs, SimTime begin,
                   SimTime end, SimTime bucket);

} // namespace dstrain

#endif // DSTRAIN_TELEMETRY_SERIES_HH
