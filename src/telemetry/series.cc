/**
 * @file
 * Implementation of the bandwidth-series bucketing.
 */

#include "telemetry/series.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dstrain {

SampleSeries
BandwidthSeries::samples() const
{
    SampleSeries s;
    for (double v : values)
        s.add(v);
    return s;
}

BandwidthSummary
BandwidthSeries::summary() const
{
    return samples().summary();
}

namespace {

/** Shared shell of both assembly paths: the empty bucketed series. */
BandwidthSeries
emptySeries(SimTime begin, SimTime end, SimTime bucket)
{
    DSTRAIN_ASSERT(end > begin, "empty telemetry window");
    DSTRAIN_ASSERT(bucket > 0.0, "non-positive bucket width");
    const std::size_t n_buckets = static_cast<std::size_t>(
        std::ceil((end - begin) / bucket - 1e-9));
    BandwidthSeries series;
    series.begin = begin;
    series.bucket = bucket;
    series.values.assign(std::max<std::size_t>(n_buckets, 1), 0.0);
    return series;
}

} // namespace

BandwidthSeries
bucketizeRateLogs(const std::vector<const RateLog *> &logs, SimTime begin,
                  SimTime end, SimTime bucket)
{
    BandwidthSeries series = emptySeries(begin, end, bucket);

    // Integrate each log into its own partial, then sum partials in
    // log order. This fixed association order (per-log time order,
    // then log order) is shared with RateLog::fold() +
    // sumStreamedBuckets(), keeping both paths bit-identical despite
    // floating-point addition being non-associative.
    std::vector<double> partial(series.values.size(), 0.0);
    for (const RateLog *log : logs) {
        std::fill(partial.begin(), partial.end(), 0.0);
        for (const RateLog::Segment &seg : log->segments()) {
            if (seg.end <= begin || seg.begin >= end || seg.rate == 0.0)
                continue;
            const SimTime s0 = std::max(seg.begin, begin);
            const SimTime s1 = std::min(seg.end, end);
            // Deposit the segment's bytes into overlapping buckets.
            auto first = static_cast<std::size_t>((s0 - begin) / bucket);
            auto last = static_cast<std::size_t>((s1 - begin) / bucket);
            last = std::min(last, partial.size() - 1);
            for (std::size_t b = first; b <= last; ++b) {
                const SimTime b0 = begin + static_cast<double>(b) * bucket;
                const SimTime b1 = b0 + bucket;
                const SimTime overlap =
                    std::max(0.0, std::min(s1, b1) - std::max(s0, b0));
                partial[b] += seg.rate * overlap / bucket;
            }
        }
        for (std::size_t b = 0; b < series.values.size(); ++b)
            series.values[b] += partial[b];
    }
    return series;
}

BandwidthSeries
sumStreamedBuckets(const std::vector<const RateLog *> &logs, SimTime begin,
                   SimTime end, SimTime bucket)
{
    BandwidthSeries series = emptySeries(begin, end, bucket);

    for (const RateLog *log : logs) {
        DSTRAIN_ASSERT(log->streamCovers(begin, end, bucket),
                       "rate log stream does not cover the requested "
                       "window/grid");
        // The streamed array may be shorter (no trailing activity) or
        // one bucket longer (history ending exactly on the window
        // end; the sweep clips that empty boundary bucket too).
        const std::vector<double> &sv = log->streamValues();
        const std::size_t n = std::min(sv.size(), series.values.size());
        for (std::size_t b = 0; b < n; ++b)
            series.values[b] += sv[b];
    }
    return series;
}

} // namespace dstrain
