/**
 * @file
 * Implementation of the bandwidth-series bucketing.
 */

#include "telemetry/series.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dstrain {

SampleSeries
BandwidthSeries::samples() const
{
    SampleSeries s;
    for (double v : values)
        s.add(v);
    return s;
}

BandwidthSummary
BandwidthSeries::summary() const
{
    return samples().summary();
}

BandwidthSeries
bucketizeRateLogs(const std::vector<const RateLog *> &logs, SimTime begin,
                  SimTime end, SimTime bucket)
{
    DSTRAIN_ASSERT(end > begin, "empty telemetry window");
    DSTRAIN_ASSERT(bucket > 0.0, "non-positive bucket width");

    const std::size_t n_buckets = static_cast<std::size_t>(
        std::ceil((end - begin) / bucket - 1e-9));
    BandwidthSeries series;
    series.begin = begin;
    series.bucket = bucket;
    series.values.assign(std::max<std::size_t>(n_buckets, 1), 0.0);

    for (const RateLog *log : logs) {
        for (const RateLog::Segment &seg : log->segments()) {
            if (seg.end <= begin || seg.begin >= end || seg.rate == 0.0)
                continue;
            const SimTime s0 = std::max(seg.begin, begin);
            const SimTime s1 = std::min(seg.end, end);
            // Deposit the segment's bytes into overlapping buckets.
            auto first = static_cast<std::size_t>((s0 - begin) / bucket);
            auto last = static_cast<std::size_t>((s1 - begin) / bucket);
            last = std::min(last, series.values.size() - 1);
            for (std::size_t b = first; b <= last; ++b) {
                const SimTime b0 = begin + static_cast<double>(b) * bucket;
                const SimTime b1 = b0 + bucket;
                const SimTime overlap =
                    std::max(0.0, std::min(s1, b1) - std::max(s0, b0));
                series.values[b] += seg.rate * overlap / bucket;
            }
        }
    }
    return series;
}

} // namespace dstrain
