/**
 * @file
 * Implementation of the ASCII timeline renderer.
 */

#include "telemetry/timeline.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace dstrain {

char
phaseGlyph(ComputePhase phase)
{
    switch (phase) {
      case ComputePhase::Forward:
        return 'F';
      case ComputePhase::Backward:
        return 'B';
      case ComputePhase::Optimizer:
        return 'O';
      case ComputePhase::Communication:
        return 'C';
      case ComputePhase::Io:
        return 'I';
      case ComputePhase::Idle:
        return '.';
    }
    return '?';
}

namespace {

/** Priority when multiple phases overlap a slot (compute wins). */
int
phasePriority(ComputePhase phase)
{
    switch (phase) {
      case ComputePhase::Forward:
      case ComputePhase::Backward:
        return 4;
      case ComputePhase::Optimizer:
        return 3;
      case ComputePhase::Io:
        return 2;
      case ComputePhase::Communication:
        return 1;
      case ComputePhase::Idle:
        return 0;
    }
    return 0;
}

} // namespace

std::string
renderTimeline(const std::vector<TaskSpan> &spans, int ranks,
               SimTime begin, SimTime end, TimelineOptions opts)
{
    DSTRAIN_ASSERT(end > begin, "empty timeline window");
    DSTRAIN_ASSERT(opts.width > 0, "bad timeline width");
    const SimTime slot = (end - begin) / opts.width;

    const int host_rows = opts.include_host ? 1 : 0;
    std::vector<std::string> rows(
        static_cast<std::size_t>(ranks + host_rows),
        std::string(static_cast<std::size_t>(opts.width), '.'));
    std::vector<std::vector<int>> prio(
        rows.size(), std::vector<int>(static_cast<std::size_t>(opts.width),
                                      0));

    for (const TaskSpan &s : spans) {
        if (s.end <= begin || s.begin >= end)
            continue;
        int row;
        if (s.kind == TaskKind::CpuOptimizer) {
            if (!opts.include_host)
                continue;
            row = ranks;
        } else if (s.rank >= 0 && s.rank < ranks) {
            row = s.rank;
        } else {
            continue;
        }
        const int p = phasePriority(s.phase);
        auto first = static_cast<int>((std::max(s.begin, begin) - begin) /
                                      slot);
        // Slots are half-open: a span ending exactly on a slot
        // boundary must not paint the slot that starts there.
        auto last = static_cast<int>(std::ceil(
                        (std::min(s.end, end) - begin) / slot)) -
                    1;
        first = std::clamp(first, 0, opts.width - 1);
        last = std::clamp(last, 0, opts.width - 1);
        if (last < first)
            continue;
        for (int c = first; c <= last; ++c) {
            if (p > prio[static_cast<std::size_t>(row)]
                        [static_cast<std::size_t>(c)]) {
                prio[static_cast<std::size_t>(row)]
                    [static_cast<std::size_t>(c)] = p;
                rows[static_cast<std::size_t>(row)]
                    [static_cast<std::size_t>(c)] = phaseGlyph(s.phase);
            }
        }
    }

    std::string out;
    for (int r = 0; r < ranks; ++r)
        out += csprintf("gpu%-2d |%s|\n", r,
                        rows[static_cast<std::size_t>(r)].c_str());
    if (opts.include_host)
        out += csprintf("host  |%s|\n",
                        rows[static_cast<std::size_t>(ranks)].c_str());
    out += csprintf("       window %s  (F fwd, B bwd, O opt, C comm, "
                    "I io, . idle)\n",
                    formatTime(end - begin).c_str());
    return out;
}

} // namespace dstrain
