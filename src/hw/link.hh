/**
 * @file
 * Link/interconnect primitives of the hardware model.
 *
 * The paper characterizes seven interconnect classes (Table III):
 * CPU-DRAM, CPU-CPU (xGMI), CPU-GPU (PCIe), GPU-GPU (NVLink),
 * CPU-NIC (PCIe), CPU-NVME (PCIe) and inter-node RoCE. dstrain models
 * each physical interconnect *direction* as a `Resource` with a fixed
 * capacity; half-duplex interconnects (DRAM) use a single shared
 * resource for both directions. Flows consume resource capacity and
 * the per-resource `RateLog` records the piecewise-constant aggregate
 * rate history that telemetry later buckets into the paper's
 * avg/90th/peak summaries.
 */

#ifndef DSTRAIN_HW_LINK_HH
#define DSTRAIN_HW_LINK_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace dstrain {

/** The interconnect classes of paper Table III. */
enum class LinkClass {
    Dram,      ///< CPU memory channels (half-duplex, shared)
    Xgmi,      ///< inter-socket Infinity Fabric (IFIS)
    PcieGpu,   ///< PCIe 4.0 x16 between CPU and GPU
    PcieNvme,  ///< PCIe 4.0 x4 between CPU and one NVMe drive
    PcieNic,   ///< PCIe 4.0 x16 between CPU and NIC
    NvLink,    ///< NVLink 3.0 GPU-GPU bundle
    Roce,      ///< NIC <-> switch Ethernet/RoCE
    NvmeMedia, ///< internal NVMe media throughput (device-side cap)
    IodXbar,   ///< the EPYC IOD crossbar path for sustained
               ///< SerDes-to-SerDes storage streams (Sec. III-C4)
};

/** Number of distinct LinkClass values (for array-indexed tables). */
inline constexpr int kNumLinkClasses = 9;

/** Human-readable class name, matching the paper's column headers. */
const char *linkClassName(LinkClass cls);

/**
 * Achievable fraction of theoretical capacity for a class (protocol
 * and encoding overhead). Calibrated so the stress tests of paper
 * Sec. III-C reproduce: e.g. same-socket CPU-RoCE reaches 93% of the
 * RoCE line rate.
 */
double linkClassEfficiency(LinkClass cls);

/** How a link attaches at a CPU IOD (for SerDes-contention counting). */
enum class PortKind {
    MemCtrl,  ///< via the DDR memory controller (DRAM)
    SerDes,   ///< via an x16 I/O SerDes set (PCIe, xGMI)
    Device,   ///< endpoint is not a CPU (GPU/NIC/NVMe/switch side)
};

/**
 * Piecewise-constant rate history of one resource.
 *
 * The flow scheduler calls setRate() whenever the aggregate rate on
 * the resource changes; closed segments accumulate and the open
 * segment is tracked separately. finalize() closes the open segment
 * at end-of-run so integration and bucketing see the full history.
 */
class RateLog
{
  public:
    /** One closed interval of constant rate. */
    struct Segment {
        SimTime begin;
        SimTime end;
        Bps rate;
    };

    /** Record a rate change at time @p t. No-op if rate unchanged. */
    void setRate(SimTime t, Bps rate);

    /** Rate of the open segment. */
    Bps currentRate() const { return current_rate_; }

    /** Close the open segment at @p t (idempotent for same t). */
    void finalize(SimTime t);

    /** Closed segments, in time order. */
    const std::vector<Segment> &segments() const { return segments_; }

    /** Total bytes transferred across all closed segments. */
    Bytes totalBytes() const;

    /** Forget all history (segments and open state). */
    void clear();

    /**
     * Drop closed segments that end at or before @p t (history
     * truncation between warm-up and measurement windows).
     */
    void dropBefore(SimTime t);

  private:
    std::vector<Segment> segments_;
    SimTime open_since_ = 0.0;
    Bps current_rate_ = 0.0;
};

/** Identifies one capacity resource inside a Topology. */
using ResourceId = int;

/** An invalid/absent resource id. */
inline constexpr ResourceId kNoResource = -1;

/**
 * One direction of an interconnect (or a shared half-duplex pool):
 * the unit of bandwidth contention in the flow model.
 */
struct Resource {
    ResourceId id = kNoResource;
    LinkClass cls = LinkClass::Dram;
    Bps capacity = 0.0;   ///< theoretical capacity of this direction
    std::string label;    ///< e.g. "n0.pcie-gpu0.fwd"
    int node = -1;        ///< owning node index, -1 for the switch
    int socket = -1;      ///< owning socket within node, -1 if n/a
    RateLog log;          ///< aggregate-rate history for telemetry
};

} // namespace dstrain

#endif // DSTRAIN_HW_LINK_HH
