/**
 * @file
 * Link/interconnect primitives of the hardware model.
 *
 * The paper characterizes seven interconnect classes (Table III):
 * CPU-DRAM, CPU-CPU (xGMI), CPU-GPU (PCIe), GPU-GPU (NVLink),
 * CPU-NIC (PCIe), CPU-NVME (PCIe) and inter-node RoCE. dstrain models
 * each physical interconnect *direction* as a `Resource` with a fixed
 * capacity; half-duplex interconnects (DRAM) use a single shared
 * resource for both directions. Flows consume resource capacity and
 * the per-resource `RateLog` records the aggregate rate history that
 * telemetry turns into the paper's avg/90th/peak summaries — either
 * online (streaming bucket accumulators) or from retained
 * piecewise-constant segments.
 */

#ifndef DSTRAIN_HW_LINK_HH
#define DSTRAIN_HW_LINK_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace dstrain {

/** The interconnect classes of paper Table III. */
enum class LinkClass {
    Dram,      ///< CPU memory channels (half-duplex, shared)
    Xgmi,      ///< inter-socket Infinity Fabric (IFIS)
    PcieGpu,   ///< PCIe 4.0 x16 between CPU and GPU
    PcieNvme,  ///< PCIe 4.0 x4 between CPU and one NVMe drive
    PcieNic,   ///< PCIe 4.0 x16 between CPU and NIC
    NvLink,    ///< NVLink 3.0 GPU-GPU bundle
    Roce,      ///< NIC <-> switch Ethernet/RoCE
    NvmeMedia, ///< internal NVMe media throughput (device-side cap)
    IodXbar,   ///< the EPYC IOD crossbar path for sustained
               ///< SerDes-to-SerDes storage streams (Sec. III-C4)
};

/** Number of distinct LinkClass values (for array-indexed tables). */
inline constexpr int kNumLinkClasses = 9;

/** Human-readable class name, matching the paper's column headers. */
const char *linkClassName(LinkClass cls);

/**
 * Achievable fraction of theoretical capacity for a class (protocol
 * and encoding overhead). Calibrated so the stress tests of paper
 * Sec. III-C reproduce: e.g. same-socket CPU-RoCE reaches 93% of the
 * RoCE line rate.
 */
// Defined inline: called per hop in route analysis and per
// resource at scheduler registration — hot enough that the call
// outweighs the switch.
inline double
linkClassEfficiency(LinkClass cls)
{
    // Protocol/encoding efficiency: the achievable fraction of the
    // quoted line rate under ideal (same-socket, uncontended)
    // conditions. RoCE is calibrated to the paper's 93% stress-test
    // result; PCIe/NVLink values follow common microbenchmark
    // achievable rates; DRAM accounts for refresh/turnaround.
    switch (cls) {
      case LinkClass::Dram:
        return 0.85;
      case LinkClass::Xgmi:
        return 0.88;
      case LinkClass::PcieGpu:
      case LinkClass::PcieNvme:
      case LinkClass::PcieNic:
        return 0.82;
      case LinkClass::NvLink:
        return 0.80;
      case LinkClass::Roce:
        return 0.93;
      case LinkClass::NvmeMedia:
      case LinkClass::IodXbar:
        return 1.0;  // these capacities are already effective rates
    }
    panic("unknown LinkClass %d", static_cast<int>(cls));
}

/** How a link attaches at a CPU IOD (for SerDes-contention counting). */
enum class PortKind {
    MemCtrl,  ///< via the DDR memory controller (DRAM)
    SerDes,   ///< via an x16 I/O SerDes set (PCIe, xGMI)
    Device,   ///< endpoint is not a CPU (GPU/NIC/NVMe/switch side)
};

/**
 * Aggregate-rate history of one resource.
 *
 * The flow scheduler calls setRate() whenever the aggregate rate on
 * the resource changes. Each rate change closes one constant-rate
 * interval, which is consumed two independent ways:
 *
 *  - **Streaming** (the default telemetry path): once armStream()
 *    has been called, every closed interval is folded into a
 *    per-bucket accumulator on the grid `begin + k * bucket` in O(1)
 *    amortized time, carrying partial-bucket overlap exactly. The
 *    fold mirrors the segment integrator in bucketizeRateLogs()
 *    operation for operation, so streamed series are bit-identical
 *    to a segment sweep over the same history (DESIGN.md §6.4).
 *  - **Retention** (opt-in, on by default for bare logs): closed
 *    intervals are stored as Segments so arbitrary windows and
 *    bucket widths can be re-integrated after the fact. Runs that
 *    only need the standard telemetry grid disable retention
 *    (TelemetryConfig::retain_segments) and keep O(buckets) memory
 *    instead of O(rate changes).
 *
 * finalize() closes the open interval at end-of-run so both paths
 * see the full history.
 */
class RateLog
{
  public:
    /** One closed interval of constant rate. */
    struct Segment {
        SimTime begin;
        SimTime end;
        Bps rate;
    };

    /** Record a rate change at time @p t. No-op if rate unchanged.
     * Inline: the scheduler calls this once per solved resource per
     * solve, and most calls take one of the two cheap early paths
     * (unchanged rate, or same-timestamp overwrite). */
    void setRate(SimTime t, Bps rate)
    {
        DSTRAIN_ASSERT(t >= open_since_, "rate log time went backwards");
        if (rate == current_rate_)
            return;
        if (t > open_since_)
            close(t);
        open_since_ = t;
        current_rate_ = rate;
    }

    /** Rate of the open segment. */
    Bps currentRate() const { return current_rate_; }

    /** Close the open segment at @p t (idempotent for same t). */
    void finalize(SimTime t);

    /** Retained closed segments, in time order (see retention). */
    const std::vector<Segment> &segments() const { return segments_; }

    /** Total bytes across all closed history (O(1) running sum). */
    Bytes totalBytes() const { return total_bytes_; }

    /**
     * Total bytes carried through time @p t: the closed history plus
     * the open interval's contribution up to @p t. O(1) and exact for
     * any @p t at or after the last rate change; used by the fault
     * injector to compute before/during/after window averages without
     * retained segments.
     */
    Bytes bytesThrough(SimTime t) const
    {
        return total_bytes_ +
               current_rate_ * std::max(0.0, t - open_since_);
    }

    /** Forget all history (segments, buckets, and open state). */
    void clear();

    /**
     * Drop closed history that ends at or before @p t (history
     * truncation between warm-up and measurement windows). With
     * retention on, straddling segments are clipped to begin at
     * @p t; without retention there is nothing stored, so only the
     * byte counter resets to the post-@p t window.
     */
    void dropBefore(SimTime t);

    // --- segment retention ----------------------------------------------

    /**
     * Keep closed segments? Defaults to true so directly-driven logs
     * (unit tests, ad-hoc probes) behave like a full history.
     * Configure before recording: toggling mid-history leaves
     * previously retained segments in place but stops (or starts)
     * retention for future closes.
     */
    void setRetainSegments(bool retain) { retain_segments_ = retain; }

    /** Whether closed segments are being retained. */
    bool retainSegments() const { return retain_segments_; }

    // --- streaming bucket accumulator -------------------------------------

    /**
     * Arm the online accumulator on the grid `begin + k * bucket`.
     * Rate changes closed after arming fold into per-bucket sums;
     * history closed before arming (or before @p begin) is excluded,
     * exactly like a segment sweep clipped at @p begin. Re-arming
     * resets the accumulated buckets.
     */
    void armStream(SimTime begin, SimTime bucket);

    /** Is the streaming accumulator armed? */
    bool streamArmed() const { return stream_armed_; }

    /** Grid origin of the armed accumulator. */
    SimTime streamBegin() const { return stream_begin_; }

    /** Bucket width of the armed accumulator. */
    SimTime streamBucket() const { return stream_bucket_; }

    /** Time the accumulator has folded history up to. */
    SimTime streamEnd() const { return stream_end_; }

    /**
     * Per-bucket average-rate sums (same unit as a BandwidthSeries
     * value). The array grows lazily with activity; buckets past the
     * last deposit are implicitly zero.
     */
    const std::vector<double> &streamValues() const
    {
        return stream_values_;
    }

    /**
     * Can a series over [@p begin, @p end) at @p bucket be read
     * straight from the streamed buckets? Requires an exact grid
     * match and that no folded history extends past @p end (a
     * segment sweep would clip there; the accumulator does not).
     */
    bool streamCovers(SimTime begin, SimTime end, SimTime bucket) const
    {
        return stream_armed_ && stream_begin_ == begin &&
               stream_bucket_ == bucket && stream_end_ <= end;
    }

    // --- observability ----------------------------------------------------

    /** Bucket deposits performed by the accumulator so far. */
    std::uint64_t bucketsTouched() const { return buckets_touched_; }

    /** Heap bytes held by this log (segments + stream buckets). */
    std::size_t memoryBytes() const
    {
        return segments_.capacity() * sizeof(Segment) +
               stream_values_.capacity() * sizeof(double);
    }

  private:
    /** Close the open interval at @p t (fold / count / retain). */
    void close(SimTime t);

    /** Fold one closed interval into the armed bucket accumulator. */
    void fold(SimTime s_begin, SimTime s_end, Bps rate);

    std::vector<Segment> segments_;
    std::vector<double> stream_values_;
    SimTime open_since_ = 0.0;
    Bps current_rate_ = 0.0;
    Bytes total_bytes_ = 0.0;
    SimTime stream_begin_ = 0.0;
    SimTime stream_bucket_ = 0.0;
    SimTime stream_end_ = 0.0;
    std::uint64_t buckets_touched_ = 0;
    bool retain_segments_ = true;
    bool stream_armed_ = false;
};

/** Identifies one capacity resource inside a Topology. */
using ResourceId = int;

/** An invalid/absent resource id. */
inline constexpr ResourceId kNoResource = -1;

/**
 * One direction of an interconnect (or a shared half-duplex pool):
 * the unit of bandwidth contention in the flow model.
 */
struct Resource {
    ResourceId id = kNoResource;
    LinkClass cls = LinkClass::Dram;

    /**
     * Current theoretical capacity of this direction. Equals
     * `nominal_capacity` on a healthy link; the fault injector lowers
     * it mid-run through FlowScheduler::setCapacity (never directly,
     * so the scheduler's effective-capacity array stays in sync).
     */
    Bps capacity = 0.0;

    /** As-built capacity (what `capacity` returns to after a fault). */
    Bps nominal_capacity = 0.0;

    std::string label;    ///< e.g. "n0.pcie-gpu0.fwd"
    int node = -1;        ///< owning node index, -1 for the switch
    int socket = -1;      ///< owning socket within node, -1 if n/a
    RateLog log;          ///< aggregate-rate history for telemetry
};

} // namespace dstrain

#endif // DSTRAIN_HW_LINK_HH
