/**
 * @file
 * Implementation of route computation: BFS with transit filtering,
 * plus equal-cost shortest-path enumeration for deterministic ECMP.
 */

#include "hw/routing.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** May this component forward traffic that is not addressed to it? */
bool
isTransit(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::CpuIod:
      case ComponentKind::Nic:
      case ComponentKind::Switch:
      case ComponentKind::NvmeDrive:  // forwards to its own media
        return true;
      case ComponentKind::DramPool:
      case ComponentKind::Gpu:
      case ComponentKind::NvmeMedia:
        return false;
    }
    return false;
}

/** Which SerDes set does a link class use at the CPU IOD? */
bool
usesSerdes(LinkClass cls, SerdesSide *side)
{
    switch (cls) {
      case LinkClass::PcieGpu:
      case LinkClass::PcieNvme:
      case LinkClass::PcieNic:
        *side = SerdesSide::Pcie;
        return true;
      case LinkClass::Xgmi:
        *side = SerdesSide::Xgmi;
        return true;
      default:
        return false;
    }
}

/** SplitMix64 finalizer: the ECMP path-selection hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

Router::Router(const Topology &topo, bool model_serdes, EcmpConfig ecmp)
    : topo_(topo), model_serdes_(model_serdes), ecmp_(ecmp)
{
}

bool
Router::edgeDead(HalfLinkId hid) const
{
    const HalfLink &hl = topo_.halfLink(hid);
    return topo_.resource(hl.resource).capacity <= 0.0;
}

void
Router::invalidateRouteCaches() const
{
    cache_.clear();
    ecmp_cache_.clear();
    rev_dist_cache_.clear();
    tree_src_ = kNoComponent;
    tree_scratch_.complete = false;
    ++invalidations_;
}

Route
Router::staleRoute(ComponentId src, ComponentId dst) const
{
    // Self-contained unfiltered BFS over the Nav arrays: mirrors
    // sourceTree()'s traversal order exactly, minus the capacity
    // filter and the shared scratch (mixing filtered and unfiltered
    // levels in one tree would corrupt both).
    const Nav &nv = nav();
    const std::size_t n = topo_.componentCount();
    std::vector<HalfLinkId> via(n, -1);
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<ComponentId> queue;
    seen[static_cast<std::size_t>(src)] = 1;
    queue.push_back(src);
    bool hit = false;
    for (std::size_t head = 0; head < queue.size() && !hit; ++head) {
        const std::size_t cur = static_cast<std::size_t>(queue[head]);
        const std::uint32_t end = nv.out_begin[cur + 1];
        for (std::uint32_t k = nv.out_begin[cur]; k < end; ++k) {
            const std::size_t next =
                static_cast<std::size_t>(nv.out_to[k]);
            if (seen[next])
                continue;
            seen[next] = 1;
            via[next] = nv.out_edge[k];
            if (static_cast<ComponentId>(next) == dst) {
                hit = true;
                break;
            }
            if (nv.transit[next])
                queue.push_back(static_cast<ComponentId>(next));
        }
    }
    if (!hit)
        return Route{};
    std::vector<HalfLinkId> hops;
    for (ComponentId cur = dst; cur != src;) {
        const HalfLinkId hid = via[static_cast<std::size_t>(cur)];
        DSTRAIN_ASSERT(hid >= 0, "broken BFS back-pointer");
        hops.push_back(hid);
        cur = topo_.halfLink(hid).from;
    }
    std::reverse(hops.begin(), hops.end());
    return finishRoute(std::move(hops));
}

const Route &
Router::route(ComponentId src, ComponentId dst) const
{
    DSTRAIN_ASSERT(src != dst, "route from component %d to itself", src);
    DSTRAIN_ASSERT(src >= 0 && dst >= 0 &&
                       static_cast<std::size_t>(src) <
                           topo_.componentCount() &&
                       static_cast<std::size_t>(dst) <
                           topo_.componentCount(),
                   "component id out of range");
    const std::uint64_t key = cacheKey(src, dst);
    auto it = cache_.find(key);
    if (it == cache_.end())
        it = cache_.emplace(key, computeRoute(src, dst)).first;
    const Route &r = it->second;
    if (!r.valid()) {
        fatal("no route from %s to %s in this topology",
              topo_.component(src).name.c_str(),
              topo_.component(dst).name.c_str());
    }
    return r;
}

Router::EcmpEntry &
Router::ecmpEntry(ComponentId src, ComponentId dst) const
{
    const std::uint64_t key = cacheKey(src, dst);
    auto it = ecmp_cache_.find(key);
    if (it == ecmp_cache_.end()) {
        EcmpEntry e;
        e.paths = computeEqualCost(src, dst);
        e.done.assign(e.paths.size(), 0);
        it = ecmp_cache_.emplace(key, std::move(e)).first;
    }
    return it->second;
}

const Route &
Router::finishedPath(EcmpEntry &e, std::size_t i) const
{
    // In-place finish keeps every previously returned reference
    // stable: the Route object's address never changes, only its
    // analysis fields fill in, and that happens before anyone can
    // hold a reference to path i.
    if (!e.done[i]) {
        e.paths[i] = finishRoute(std::move(e.paths[i].hops));
        e.done[i] = 1;
    }
    return e.paths[i];
}

const std::vector<Route> &
Router::equalCostRoutes(ComponentId src, ComponentId dst) const
{
    // The public list is fully analyzed: external callers may read
    // any path's latency/cap. Flow routing goes through routeForFlow
    // below, which finishes only the selected path.
    EcmpEntry &e = ecmpEntry(src, dst);
    for (std::size_t i = 0; i < e.paths.size(); ++i)
        finishedPath(e, i);
    return e.paths;
}

const Route &
Router::routeForFlow(ComponentId src, ComponentId dst,
                     std::uint64_t flow_key) const
{
    if (!ecmp_.enabled)
        return route(src, dst);
    EcmpEntry &e = ecmpEntry(src, dst);
    // A unique shortest path is returned through the plain cache, so
    // single-path fabrics behave (and fingerprint) exactly like the
    // pre-ECMP router.
    if (e.paths.size() <= 1)
        return route(src, dst);
    const std::uint64_t h =
        mix64(mix64(cacheKey(src, dst) ^ ecmp_.seed) + flow_key);
    return finishedPath(
        e, static_cast<std::size_t>(h % e.paths.size()));
}

Route
Router::routeThrough(ComponentId src,
                     const std::vector<ComponentId> &waypoints,
                     ComponentId dst, std::uint64_t flow_key) const
{
    std::vector<HalfLinkId> hops;
    ComponentId cur = src;
    for (ComponentId wp : waypoints) {
        const Route &seg = routeForFlow(cur, wp, flow_key);
        hops.insert(hops.end(), seg.hops.begin(), seg.hops.end());
        cur = wp;
    }
    const Route &last = routeForFlow(cur, dst, flow_key);
    hops.insert(hops.end(), last.hops.begin(), last.hops.end());
    return finishRoute(std::move(hops));
}

Route
Router::routeVia(ComponentId src, ComponentId via, ComponentId dst) const
{
    return routeThrough(src, {via}, dst);
}

Route
Router::routeVia2(ComponentId src, ComponentId via_a, ComponentId via_b,
                  ComponentId dst) const
{
    return routeThrough(src, {via_a, via_b}, dst);
}

const Router::Nav &
Router::nav() const
{
    if (!nav_.out_begin.empty())
        return nav_;

    const std::size_t n = topo_.componentCount();
    const std::size_t m = topo_.halfLinkCount();
    Nav nv;
    nv.transit.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
        nv.transit[c] =
            isTransit(topo_.component(static_cast<ComponentId>(c)).kind)
                ? 1
                : 0;
    }
    nv.in_begin.assign(n + 1, 0);
    for (std::size_t h = 0; h < m; ++h) {
        const HalfLink &hl = topo_.halfLink(static_cast<HalfLinkId>(h));
        ++nv.in_begin[static_cast<std::size_t>(hl.to) + 1];
    }
    // Forward CSR: concatenating the per-component adjacency lists
    // preserves Topology::outgoing() order exactly. The endpoint
    // array rides alongside so the BFS/DFS inner loops touch only
    // sequential memory.
    nv.out_begin.reserve(n + 1);
    nv.out_edge.reserve(m);
    nv.out_to.reserve(m);
    for (std::size_t c = 0; c < n; ++c) {
        nv.out_begin.push_back(
            static_cast<std::uint32_t>(nv.out_edge.size()));
        for (HalfLinkId hid : topo_.outgoing(static_cast<ComponentId>(c))) {
            nv.out_edge.push_back(hid);
            nv.out_to.push_back(topo_.halfLink(hid).to);
        }
    }
    nv.out_begin.push_back(static_cast<std::uint32_t>(nv.out_edge.size()));
    // Reverse CSR: filling in ascending half-link id order keeps each
    // in-edge bucket sorted by id, matching the per-`to` push order a
    // plain reverse-adjacency build would produce.
    for (std::size_t c = 0; c < n; ++c)
        nv.in_begin[c + 1] += nv.in_begin[c];
    nv.in_edge.resize(m);
    nv.in_from.resize(m);
    std::vector<std::uint32_t> cursor(nv.in_begin.begin(),
                                      nv.in_begin.end() - 1);
    for (std::size_t h = 0; h < m; ++h) {
        const HalfLink &hl = topo_.halfLink(static_cast<HalfLinkId>(h));
        const std::uint32_t at =
            cursor[static_cast<std::size_t>(hl.to)]++;
        nv.in_edge[at] = static_cast<HalfLinkId>(h);
        nv.in_from[at] = hl.from;
    }
    nav_ = std::move(nv);
    return nav_;
}

const Router::SourceTree &
Router::sourceTree(ComponentId src, ComponentId dst) const
{
    SourceTree &tree = tree_scratch_;
    // A cached tree serves this query when it reached the requested
    // dst (levels up to dist[dst] are final in any truncated tree) or
    // when its BFS ran to exhaustion (then "unstamped" really means
    // "unreachable" for every dst).
    if (tree_src_ == src &&
        (tree.complete ||
         tree.reaches(static_cast<std::size_t>(dst))))
        return tree;

    // Plain BFS: hop count metric, deterministic order because
    // adjacency lists are in insertion order and the queue is FIFO.
    // Non-transit components get their first-visit edge and level
    // recorded but are never enqueued — a per-destination BFS enters
    // its (non-transit) dst the same way, so the tree serves every
    // destination at once, bit-identically.
    //
    // The walk stops the instant dst is assigned: FIFO order has
    // already finalized every level below dist[dst] by then, which is
    // all the via-chain walk and the equal-cost DAG pruning ever
    // read (deeper entries only matter through reaches(), where
    // "never assigned" filters exactly the edges the level checks
    // would). Stale via/dist entries from earlier builds are fenced
    // by the epoch stamp instead of cleared, so a rebuild writes only
    // what it visits.
    const Nav &nv = nav();
    const std::size_t n = topo_.componentCount();
    if (tree.stamp.size() != n) {
        tree.via.resize(n);
        tree.dist.resize(n);
        tree.stamp.assign(n, 0);
        tree.epoch = 0;
    }
    if (++tree.epoch == 0) {
        // Epoch wrapped: old stamps could alias the new epoch, so
        // restamp from scratch once every 2^32 builds.
        std::fill(tree.stamp.begin(), tree.stamp.end(), 0u);
        tree.epoch = 1;
    }
    std::vector<ComponentId> &queue = tree_queue_;
    queue.clear();

    const std::size_t s = static_cast<std::size_t>(src);
    tree.via[s] = -1;
    tree.dist[s] = 0;
    tree.stamp[s] = tree.epoch;
    bool hit = src == dst;
    if (!hit) {
        queue.push_back(src);
        for (std::size_t head = 0; head < queue.size() && !hit;
             ++head) {
            const std::size_t cur =
                static_cast<std::size_t>(queue[head]);
            const std::uint32_t end = nv.out_begin[cur + 1];
            for (std::uint32_t k = nv.out_begin[cur]; k < end; ++k) {
                const std::size_t next =
                    static_cast<std::size_t>(nv.out_to[k]);
                if (tree.stamp[next] == tree.epoch)
                    continue;
                // Degraded mode: a hard-failed edge attracts no new
                // shortest paths (no-op while healthy — capacities
                // are all positive, so no edge is ever skipped).
                if (avoid_dead_ && edgeDead(nv.out_edge[k]))
                    continue;
                tree.stamp[next] = tree.epoch;
                tree.dist[next] = tree.dist[cur] + 1;
                tree.via[next] = nv.out_edge[k];
                if (static_cast<ComponentId>(next) == dst) {
                    hit = true;
                    break;
                }
                if (nv.transit[next])
                    queue.push_back(static_cast<ComponentId>(next));
            }
        }
    }
    tree.complete = !hit;
    tree_src_ = src;
    return tree;
}

const std::vector<int> &
Router::distToDst(ComponentId dst) const
{
    auto it = rev_dist_cache_.find(dst);
    if (it != rev_dist_cache_.end())
        return it->second;

    // BFS from dst over reversed edges; interior nodes must be
    // transit, mirroring the forward traversal's filter.
    const Nav &nv = nav();
    const std::size_t n = topo_.componentCount();
    std::vector<int> dist(n, std::numeric_limits<int>::max());
    std::vector<ComponentId> queue;
    queue.reserve(n);
    dist[static_cast<std::size_t>(dst)] = 0;
    queue.push_back(dst);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t cur = static_cast<std::size_t>(queue[head]);
        const std::uint32_t end = nv.in_begin[cur + 1];
        for (std::uint32_t k = nv.in_begin[cur]; k < end; ++k) {
            const std::size_t prev =
                static_cast<std::size_t>(nv.in_from[k]);
            if (dist[prev] != std::numeric_limits<int>::max())
                continue;
            if (avoid_dead_ && edgeDead(nv.in_edge[k]))
                continue;
            dist[prev] = dist[cur] + 1;
            if (nv.transit[prev])
                queue.push_back(static_cast<ComponentId>(prev));
        }
    }
    return rev_dist_cache_.emplace(dst, std::move(dist)).first->second;
}

Route
Router::computeRoute(ComponentId src, ComponentId dst) const
{
    const SourceTree &tree = sourceTree(src, dst);
    if (!tree.reaches(static_cast<std::size_t>(dst)) ||
        tree.via[static_cast<std::size_t>(dst)] < 0) {
        // Degraded mode with dst fully cut off: serve the healthy-
        // topology path (stale FIB — the flow parks on the dead hop
        // until the fault restores or the transfer layer reroutes).
        if (avoid_dead_)
            return staleRoute(src, dst);
        return Route{};
    }

    std::vector<HalfLinkId> hops;
    for (ComponentId cur = dst; cur != src;) {
        HalfLinkId hid = tree.via[static_cast<std::size_t>(cur)];
        DSTRAIN_ASSERT(hid >= 0, "broken BFS back-pointer");
        hops.push_back(hid);
        cur = topo_.halfLink(hid).from;
    }
    std::reverse(hops.begin(), hops.end());
    return finishRoute(std::move(hops));
}

std::vector<Route>
Router::computeEqualCost(ComponentId src, ComponentId dst) const
{
    DSTRAIN_ASSERT(src != dst, "route from component %d to itself",
                   src);

    // The enumeration runs off the *reverse* tree alone. A node at
    // DFS depth d sits on a shortest path (invariant maintained by
    // the prune below), so for an out-edge to `next`:
    //
    //   rev[next] == target - (d + 1)
    //     ==> dist[next] >= d + 1   (triangle inequality: a shorter
    //         forward path would compose with next's reverse path
    //         into a sub-target src->dst walk; `next` is transit or
    //         dst here, so it may sit interior to that composition)
    //     and dist[next] <= dist[cur] + 1 = d + 1  (edge relaxation;
    //         cur is transit-or-src, so the forward BFS expands it)
    //     ==> dist[next] == d + 1 exactly.
    //
    // I.e. the old forward-tree level check is implied: the DAG — and
    // the DFS enumeration order the ECMP hash indexes into, which
    // follows forward adjacency order — is bit-identical to the
    // two-tree version, and a route-cache miss on a multi-path pair
    // costs one BFS (reverse, shared per destination), not two.
    constexpr int kUnreached = std::numeric_limits<int>::max();
    const std::vector<int> &rev = distToDst(dst);
    const int target = rev[static_cast<std::size_t>(src)];
    if (target == kUnreached) {
        // Degraded mode: no surviving path — fall back to the stale
        // healthy-topology route (see computeRoute).
        if (avoid_dead_) {
            std::vector<Route> one;
            one.push_back(staleRoute(src, dst));
            if (one.front().valid())
                return one;
        }
        fatal("no route from %s to %s in this topology",
              topo_.component(src).name.c_str(),
              topo_.component(dst).name.c_str());
    }

    // Depth-first enumeration of the DAG in adjacency order, capped
    // at max_paths. Depth is bounded by the shortest-path length, so
    // plain recursion is safe.
    const Nav &nv = nav();
    std::vector<Route> paths;
    std::vector<HalfLinkId> hops;
    const std::size_t cap = static_cast<std::size_t>(
        std::max(1, ecmp_.max_paths));
    auto dfs = [&](auto &&self, ComponentId cur, int d) -> void {
        if (paths.size() >= cap)
            return;
        if (cur == dst) {
            // Hop list only; the crossing/latency/cap analysis is
            // deferred to first selection (see EcmpEntry).
            Route r;
            r.hops = hops;
            paths.push_back(std::move(r));
            return;
        }
        const std::uint32_t end =
            nv.out_begin[static_cast<std::size_t>(cur) + 1];
        for (std::uint32_t k = nv.out_begin[static_cast<std::size_t>(cur)];
             k < end; ++k) {
            const HalfLinkId hid = nv.out_edge[k];
            ComponentId next = nv.out_to[k];
            if (next != dst && !nv.transit[static_cast<std::size_t>(next)])
                continue;
            if (avoid_dead_ && edgeDead(hid))
                continue;
            // On-a-shortest-path prune: exactly remaining-distance
            // budget left at next. Descending blindly is not enough —
            // from a spine every leaf is one hop away, and without
            // this check the DFS walks whole subtrees that can never
            // reach dst on budget.
            if (rev[static_cast<std::size_t>(next)] == kUnreached ||
                d + 1 + rev[static_cast<std::size_t>(next)] != target) {
                continue;
            }
            hops.push_back(hid);
            self(self, next, d + 1);
            hops.pop_back();
            if (paths.size() >= cap)
                return;
        }
    };
    dfs(dfs, src, 0);
    if (paths.empty() && avoid_dead_) {
        // The reverse distances were cached before a further cut:
        // the pruned DAG no longer reaches dst. Serve the stale
        // path; the next cache flush recomputes both consistently.
        paths.push_back(staleRoute(src, dst));
        if (!paths.front().valid())
            paths.clear();
    }
    DSTRAIN_ASSERT(!paths.empty(), "DAG enumeration found no path");
    if (paths.size() == 1 && !avoid_dead_) {
        // The unique shortest path must be the BFS one; keeping the
        // exact object aligned keeps routeForFlow bit-identical.
        // (Only this branch pays for the forward tree. Degraded mode
        // skips the check: the forward tree and the reverse
        // distances may snapshot different instants between cache
        // flushes.)
        DSTRAIN_ASSERT(paths.front().hops == route(src, dst).hops,
                       "unique path disagrees with BFS route");
    }
    return paths;
}

Route
Router::finishRoute(std::vector<HalfLinkId> hops) const
{
    Route r;
    r.hops = std::move(hops);
    if (r.hops.empty())
        return r;

    Bps min_effective = std::numeric_limits<Bps>::max();
    Bps min_serdes_hop = std::numeric_limits<Bps>::max();
    for (std::size_t i = 0; i < r.hops.size(); ++i) {
        const HalfLink &hl = topo_.halfLink(r.hops[i]);
        r.latency += hl.latency;
        const Resource &res = topo_.resource(hl.resource);
        // Route caps model the *uncontended protocol* limit of the
        // path, so they are computed from the as-built capacity: a
        // fault is contention, enforced by the flow scheduler's live
        // effective-capacity array, not by the per-flow cap (which
        // would otherwise pin a flow to the degraded rate for its
        // whole life, even after the fault clears).
        const Bps effective =
            res.nominal_capacity * linkClassEfficiency(res.cls);
        min_effective = std::min(min_effective, effective);
        SerdesSide side;
        if (usesSerdes(res.cls, &side))
            min_serdes_hop = std::min(min_serdes_hop, effective);

        // A SerDes crossing happens at an intermediate CPU IOD where
        // both the inbound and the outbound hop attach via SerDes.
        if (i + 1 < r.hops.size()) {
            const HalfLink &next = topo_.halfLink(r.hops[i + 1]);
            const Component &mid = topo_.component(hl.to);
            if (mid.kind != ComponentKind::CpuIod)
                continue;
            SerdesSide in_side;
            SerdesSide out_side;
            if (hl.toPort == PortKind::SerDes &&
                next.fromPort == PortKind::SerDes &&
                usesSerdes(hl.cls, &in_side) &&
                usesSerdes(next.cls, &out_side)) {
                r.crossings.push_back(SerdesCrossing{in_side, out_side});
            }
        }
    }
    r.serdes_factor = serdesDegradation(r.crossings);
    // The IOD contention degrades the SerDes-attached hops only (see
    // hw/serdes.hh); the route cap is the slower of the plain
    // bottleneck and the degraded SerDes bottleneck.
    r.rate_cap = min_effective;
    if (model_serdes_ && !r.crossings.empty() &&
        min_serdes_hop < std::numeric_limits<Bps>::max()) {
        r.rate_cap =
            std::min(min_effective, min_serdes_hop * r.serdes_factor);
    }
    return r;
}

} // namespace dstrain
