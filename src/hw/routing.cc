/**
 * @file
 * Implementation of route computation: BFS with transit filtering,
 * plus equal-cost shortest-path enumeration for deterministic ECMP.
 */

#include "hw/routing.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** May this component forward traffic that is not addressed to it? */
bool
isTransit(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::CpuIod:
      case ComponentKind::Nic:
      case ComponentKind::Switch:
      case ComponentKind::NvmeDrive:  // forwards to its own media
        return true;
      case ComponentKind::DramPool:
      case ComponentKind::Gpu:
      case ComponentKind::NvmeMedia:
        return false;
    }
    return false;
}

/** Which SerDes set does a link class use at the CPU IOD? */
bool
usesSerdes(LinkClass cls, SerdesSide *side)
{
    switch (cls) {
      case LinkClass::PcieGpu:
      case LinkClass::PcieNvme:
      case LinkClass::PcieNic:
        *side = SerdesSide::Pcie;
        return true;
      case LinkClass::Xgmi:
        *side = SerdesSide::Xgmi;
        return true;
      default:
        return false;
    }
}

/** SplitMix64 finalizer: the ECMP path-selection hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

Router::Router(const Topology &topo, bool model_serdes, EcmpConfig ecmp)
    : topo_(topo), model_serdes_(model_serdes), ecmp_(ecmp)
{
}

const Route &
Router::route(ComponentId src, ComponentId dst) const
{
    DSTRAIN_ASSERT(src != dst, "route from component %d to itself", src);
    DSTRAIN_ASSERT(src >= 0 && dst >= 0 &&
                       static_cast<std::size_t>(src) <
                           topo_.componentCount() &&
                       static_cast<std::size_t>(dst) <
                           topo_.componentCount(),
                   "component id out of range");
    const std::uint64_t key = cacheKey(src, dst);
    auto it = cache_.find(key);
    if (it == cache_.end())
        it = cache_.emplace(key, computeRoute(src, dst)).first;
    const Route &r = it->second;
    if (!r.valid()) {
        fatal("no route from %s to %s in this topology",
              topo_.component(src).name.c_str(),
              topo_.component(dst).name.c_str());
    }
    return r;
}

const std::vector<Route> &
Router::equalCostRoutes(ComponentId src, ComponentId dst) const
{
    const std::uint64_t key = cacheKey(src, dst);
    auto it = ecmp_cache_.find(key);
    if (it == ecmp_cache_.end())
        it = ecmp_cache_.emplace(key, computeEqualCost(src, dst)).first;
    return it->second;
}

const Route &
Router::routeForFlow(ComponentId src, ComponentId dst,
                     std::uint64_t flow_key) const
{
    if (!ecmp_.enabled)
        return route(src, dst);
    const std::vector<Route> &paths = equalCostRoutes(src, dst);
    // A unique shortest path is returned through the plain cache, so
    // single-path fabrics behave (and fingerprint) exactly like the
    // pre-ECMP router.
    if (paths.size() <= 1)
        return route(src, dst);
    const std::uint64_t h =
        mix64(mix64(cacheKey(src, dst) ^ ecmp_.seed) + flow_key);
    return paths[static_cast<std::size_t>(h % paths.size())];
}

Route
Router::routeThrough(ComponentId src,
                     const std::vector<ComponentId> &waypoints,
                     ComponentId dst, std::uint64_t flow_key) const
{
    std::vector<HalfLinkId> hops;
    ComponentId cur = src;
    for (ComponentId wp : waypoints) {
        const Route &seg = routeForFlow(cur, wp, flow_key);
        hops.insert(hops.end(), seg.hops.begin(), seg.hops.end());
        cur = wp;
    }
    const Route &last = routeForFlow(cur, dst, flow_key);
    hops.insert(hops.end(), last.hops.begin(), last.hops.end());
    return finishRoute(std::move(hops));
}

Route
Router::routeVia(ComponentId src, ComponentId via, ComponentId dst) const
{
    return routeThrough(src, {via}, dst);
}

Route
Router::routeVia2(ComponentId src, ComponentId via_a, ComponentId via_b,
                  ComponentId dst) const
{
    return routeThrough(src, {via_a, via_b}, dst);
}

const Router::SourceTree &
Router::sourceTree(ComponentId src) const
{
    auto it = tree_cache_.find(src);
    if (it != tree_cache_.end())
        return it->second;

    // Plain BFS: hop count metric, deterministic order because
    // adjacency lists are in insertion order and the queue is FIFO.
    // Non-transit components get their first-visit edge and level
    // recorded but are never enqueued — a per-destination BFS enters
    // its (non-transit) dst the same way, so the tree serves every
    // destination at once, bit-identically.
    const std::size_t n = topo_.componentCount();
    SourceTree tree;
    tree.via.assign(n, -1);
    tree.dist.assign(n, std::numeric_limits<int>::max());
    std::deque<ComponentId> queue;

    tree.dist[static_cast<std::size_t>(src)] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
        ComponentId cur = queue.front();
        queue.pop_front();
        for (HalfLinkId hid : topo_.outgoing(cur)) {
            const HalfLink &hl = topo_.halfLink(hid);
            ComponentId next = hl.to;
            if (tree.dist[static_cast<std::size_t>(next)] !=
                std::numeric_limits<int>::max()) {
                continue;
            }
            tree.dist[static_cast<std::size_t>(next)] =
                tree.dist[static_cast<std::size_t>(cur)] + 1;
            tree.via[static_cast<std::size_t>(next)] = hid;
            if (isTransit(topo_.component(next).kind))
                queue.push_back(next);
        }
    }
    return tree_cache_.emplace(src, std::move(tree)).first->second;
}

const std::vector<int> &
Router::distToDst(ComponentId dst) const
{
    auto it = rev_dist_cache_.find(dst);
    if (it != rev_dist_cache_.end())
        return it->second;

    const std::size_t n = topo_.componentCount();
    if (incoming_.empty()) {
        incoming_.resize(n);
        for (std::size_t i = 0; i < topo_.halfLinkCount(); ++i) {
            const HalfLinkId hid = static_cast<HalfLinkId>(i);
            incoming_[static_cast<std::size_t>(topo_.halfLink(hid).to)]
                .push_back(hid);
        }
    }

    // BFS from dst over reversed edges; interior nodes must be
    // transit, mirroring the forward traversal's filter.
    std::vector<int> dist(n, std::numeric_limits<int>::max());
    std::deque<ComponentId> queue;
    dist[static_cast<std::size_t>(dst)] = 0;
    queue.push_back(dst);
    while (!queue.empty()) {
        ComponentId cur = queue.front();
        queue.pop_front();
        for (HalfLinkId hid : incoming_[static_cast<std::size_t>(cur)]) {
            ComponentId prev = topo_.halfLink(hid).from;
            if (dist[static_cast<std::size_t>(prev)] !=
                std::numeric_limits<int>::max()) {
                continue;
            }
            dist[static_cast<std::size_t>(prev)] =
                dist[static_cast<std::size_t>(cur)] + 1;
            if (isTransit(topo_.component(prev).kind))
                queue.push_back(prev);
        }
    }
    return rev_dist_cache_.emplace(dst, std::move(dist)).first->second;
}

Route
Router::computeRoute(ComponentId src, ComponentId dst) const
{
    const SourceTree &tree = sourceTree(src);
    if (tree.via[static_cast<std::size_t>(dst)] < 0)
        return Route{};

    std::vector<HalfLinkId> hops;
    for (ComponentId cur = dst; cur != src;) {
        HalfLinkId hid = tree.via[static_cast<std::size_t>(cur)];
        DSTRAIN_ASSERT(hid >= 0, "broken BFS back-pointer");
        hops.push_back(hid);
        cur = topo_.halfLink(hid).from;
    }
    std::reverse(hops.begin(), hops.end());
    return finishRoute(std::move(hops));
}

std::vector<Route>
Router::computeEqualCost(ComponentId src, ComponentId dst) const
{
    // Establish reachability (fatal otherwise) and the shortest
    // length through the plain cache first.
    const Route &first = route(src, dst);

    // The shortest-path DAG: the union of edges with
    // dist[to] == dist[from] + 1, taken from the per-source tree.
    // Levels strictly increase along any shortest path, so paths
    // routed *through* dst would need dist > target and are excluded
    // by the level checks below — no per-destination BFS needed.
    constexpr int kUnreached = std::numeric_limits<int>::max();
    const std::vector<int> &dist = sourceTree(src).dist;
    const std::vector<int> &rev = distToDst(dst);
    const int target = dist[static_cast<std::size_t>(dst)];
    DSTRAIN_ASSERT(target != kUnreached, "BFS disagrees with route()");

    // Depth-first enumeration of the DAG in adjacency order, capped
    // at max_paths. Depth is bounded by the shortest-path length, so
    // plain recursion is safe.
    std::vector<Route> paths;
    std::vector<HalfLinkId> hops;
    const std::size_t cap = static_cast<std::size_t>(
        std::max(1, ecmp_.max_paths));
    auto dfs = [&](auto &&self, ComponentId cur) -> void {
        if (paths.size() >= cap)
            return;
        if (cur == dst) {
            paths.push_back(finishRoute(hops));
            return;
        }
        const int d = dist[static_cast<std::size_t>(cur)];
        for (HalfLinkId hid : topo_.outgoing(cur)) {
            const HalfLink &hl = topo_.halfLink(hid);
            ComponentId next = hl.to;
            if (next != dst && !isTransit(topo_.component(next).kind))
                continue;
            if (dist[static_cast<std::size_t>(next)] != d + 1)
                continue;
            // On-a-shortest-path prune: descending into a DAG level
            // is not enough — from a spine every leaf sits at d + 1,
            // and without this check the DFS walks whole subtrees
            // that can never reach dst. The prune drops exactly the
            // path-less branches, so the surviving paths (and their
            // DFS order, which ECMP hashes index into) are unchanged.
            if (rev[static_cast<std::size_t>(next)] == kUnreached ||
                d + 1 + rev[static_cast<std::size_t>(next)] != target) {
                continue;
            }
            hops.push_back(hid);
            self(self, next);
            hops.pop_back();
            if (paths.size() >= cap)
                return;
        }
    };
    dfs(dfs, src);
    DSTRAIN_ASSERT(!paths.empty(), "DAG enumeration found no path");
    if (paths.size() == 1) {
        // The unique shortest path must be the BFS one; keeping the
        // exact object aligned keeps routeForFlow bit-identical.
        DSTRAIN_ASSERT(paths.front().hops == first.hops,
                       "unique path disagrees with BFS route");
    }
    return paths;
}

Route
Router::finishRoute(std::vector<HalfLinkId> hops) const
{
    Route r;
    r.hops = std::move(hops);
    if (r.hops.empty())
        return r;

    Bps min_effective = std::numeric_limits<Bps>::max();
    Bps min_serdes_hop = std::numeric_limits<Bps>::max();
    for (std::size_t i = 0; i < r.hops.size(); ++i) {
        const HalfLink &hl = topo_.halfLink(r.hops[i]);
        r.latency += hl.latency;
        const Resource &res = topo_.resource(hl.resource);
        // Route caps model the *uncontended protocol* limit of the
        // path, so they are computed from the as-built capacity: a
        // fault is contention, enforced by the flow scheduler's live
        // effective-capacity array, not by the per-flow cap (which
        // would otherwise pin a flow to the degraded rate for its
        // whole life, even after the fault clears).
        const Bps effective =
            res.nominal_capacity * linkClassEfficiency(res.cls);
        min_effective = std::min(min_effective, effective);
        SerdesSide side;
        if (usesSerdes(res.cls, &side))
            min_serdes_hop = std::min(min_serdes_hop, effective);

        // A SerDes crossing happens at an intermediate CPU IOD where
        // both the inbound and the outbound hop attach via SerDes.
        if (i + 1 < r.hops.size()) {
            const HalfLink &next = topo_.halfLink(r.hops[i + 1]);
            const Component &mid = topo_.component(hl.to);
            if (mid.kind != ComponentKind::CpuIod)
                continue;
            SerdesSide in_side;
            SerdesSide out_side;
            if (hl.toPort == PortKind::SerDes &&
                next.fromPort == PortKind::SerDes &&
                usesSerdes(hl.cls, &in_side) &&
                usesSerdes(next.cls, &out_side)) {
                r.crossings.push_back(SerdesCrossing{in_side, out_side});
            }
        }
    }
    r.serdes_factor = serdesDegradation(r.crossings);
    // The IOD contention degrades the SerDes-attached hops only (see
    // hw/serdes.hh); the route cap is the slower of the plain
    // bottleneck and the degraded SerDes bottleneck.
    r.rate_cap = min_effective;
    if (model_serdes_ && !r.crossings.empty() &&
        min_serdes_hop < std::numeric_limits<Bps>::max()) {
        r.rate_cap =
            std::min(min_effective, min_serdes_hop * r.serdes_factor);
    }
    return r;
}

} // namespace dstrain
