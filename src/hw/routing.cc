/**
 * @file
 * Implementation of route computation (BFS with transit filtering).
 */

#include "hw/routing.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** May this component forward traffic that is not addressed to it? */
bool
isTransit(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::CpuIod:
      case ComponentKind::Nic:
      case ComponentKind::Switch:
      case ComponentKind::NvmeDrive:  // forwards to its own media
        return true;
      case ComponentKind::DramPool:
      case ComponentKind::Gpu:
      case ComponentKind::NvmeMedia:
        return false;
    }
    return false;
}

/** Which SerDes set does a link class use at the CPU IOD? */
bool
usesSerdes(LinkClass cls, SerdesSide *side)
{
    switch (cls) {
      case LinkClass::PcieGpu:
      case LinkClass::PcieNvme:
      case LinkClass::PcieNic:
        *side = SerdesSide::Pcie;
        return true;
      case LinkClass::Xgmi:
        *side = SerdesSide::Xgmi;
        return true;
      default:
        return false;
    }
}

} // namespace

Router::Router(const Topology &topo, bool model_serdes)
    : topo_(topo), model_serdes_(model_serdes)
{
    const std::size_t n = topo_.componentCount();
    cache_.resize(n * n);
    cached_.resize(n * n, false);
}

const Route &
Router::route(ComponentId src, ComponentId dst) const
{
    DSTRAIN_ASSERT(src != dst, "route from component %d to itself", src);
    const std::size_t n = topo_.componentCount();
    const std::size_t key =
        static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst);
    DSTRAIN_ASSERT(key < cache_.size(), "component id out of range");
    if (!cached_[key]) {
        cache_[key] = computeRoute(src, dst);
        cached_[key] = true;
    }
    const Route &r = cache_[key];
    if (!r.valid()) {
        fatal("no route from %s to %s in this topology",
              topo_.component(src).name.c_str(),
              topo_.component(dst).name.c_str());
    }
    return r;
}

Route
Router::routeThrough(ComponentId src,
                     const std::vector<ComponentId> &waypoints,
                     ComponentId dst) const
{
    std::vector<HalfLinkId> hops;
    ComponentId cur = src;
    for (ComponentId wp : waypoints) {
        const Route &seg = route(cur, wp);
        hops.insert(hops.end(), seg.hops.begin(), seg.hops.end());
        cur = wp;
    }
    const Route &last = route(cur, dst);
    hops.insert(hops.end(), last.hops.begin(), last.hops.end());
    return finishRoute(std::move(hops));
}

Route
Router::routeVia(ComponentId src, ComponentId via, ComponentId dst) const
{
    return routeThrough(src, {via}, dst);
}

Route
Router::routeVia2(ComponentId src, ComponentId via_a, ComponentId via_b,
                  ComponentId dst) const
{
    return routeThrough(src, {via_a, via_b}, dst);
}

Route
Router::computeRoute(ComponentId src, ComponentId dst) const
{
    // Plain BFS: hop count metric, deterministic order because
    // adjacency lists are in insertion order and the queue is FIFO.
    const std::size_t n = topo_.componentCount();
    std::vector<HalfLinkId> via(n, -1);
    std::vector<bool> seen(n, false);
    std::deque<ComponentId> queue;

    seen[static_cast<std::size_t>(src)] = true;
    queue.push_back(src);
    bool found = false;
    while (!queue.empty() && !found) {
        ComponentId cur = queue.front();
        queue.pop_front();
        for (HalfLinkId hid : topo_.outgoing(cur)) {
            const HalfLink &hl = topo_.halfLink(hid);
            ComponentId next = hl.to;
            if (seen[static_cast<std::size_t>(next)])
                continue;
            if (next != dst && !isTransit(topo_.component(next).kind))
                continue;
            seen[static_cast<std::size_t>(next)] = true;
            via[static_cast<std::size_t>(next)] = hid;
            if (next == dst) {
                found = true;
                break;
            }
            queue.push_back(next);
        }
    }

    if (!found)
        return Route{};

    std::vector<HalfLinkId> hops;
    for (ComponentId cur = dst; cur != src;) {
        HalfLinkId hid = via[static_cast<std::size_t>(cur)];
        DSTRAIN_ASSERT(hid >= 0, "broken BFS back-pointer");
        hops.push_back(hid);
        cur = topo_.halfLink(hid).from;
    }
    std::reverse(hops.begin(), hops.end());
    return finishRoute(std::move(hops));
}

Route
Router::finishRoute(std::vector<HalfLinkId> hops) const
{
    Route r;
    r.hops = std::move(hops);
    if (r.hops.empty())
        return r;

    Bps min_effective = std::numeric_limits<Bps>::max();
    Bps min_serdes_hop = std::numeric_limits<Bps>::max();
    for (std::size_t i = 0; i < r.hops.size(); ++i) {
        const HalfLink &hl = topo_.halfLink(r.hops[i]);
        r.latency += hl.latency;
        const Resource &res = topo_.resource(hl.resource);
        // Route caps model the *uncontended protocol* limit of the
        // path, so they are computed from the as-built capacity: a
        // fault is contention, enforced by the flow scheduler's live
        // effective-capacity array, not by the per-flow cap (which
        // would otherwise pin a flow to the degraded rate for its
        // whole life, even after the fault clears).
        const Bps effective =
            res.nominal_capacity * linkClassEfficiency(res.cls);
        min_effective = std::min(min_effective, effective);
        SerdesSide side;
        if (usesSerdes(res.cls, &side))
            min_serdes_hop = std::min(min_serdes_hop, effective);

        // A SerDes crossing happens at an intermediate CPU IOD where
        // both the inbound and the outbound hop attach via SerDes.
        if (i + 1 < r.hops.size()) {
            const HalfLink &next = topo_.halfLink(r.hops[i + 1]);
            const Component &mid = topo_.component(hl.to);
            if (mid.kind != ComponentKind::CpuIod)
                continue;
            SerdesSide in_side;
            SerdesSide out_side;
            if (hl.toPort == PortKind::SerDes &&
                next.fromPort == PortKind::SerDes &&
                usesSerdes(hl.cls, &in_side) &&
                usesSerdes(next.cls, &out_side)) {
                r.crossings.push_back(SerdesCrossing{in_side, out_side});
            }
        }
    }
    r.serdes_factor = serdesDegradation(r.crossings);
    // The IOD contention degrades the SerDes-attached hops only (see
    // hw/serdes.hh); the route cap is the slower of the plain
    // bottleneck and the degraded SerDes bottleneck.
    r.rate_cap = min_effective;
    if (model_serdes_ && !r.crossings.empty() &&
        min_serdes_hop < std::numeric_limits<Bps>::max()) {
        r.rate_cap =
            std::min(min_effective, min_serdes_hop * r.serdes_factor);
    }
    return r;
}

} // namespace dstrain
