/**
 * @file
 * Implementation of the XE8545 node builder.
 */

#include "hw/node_builder.hh"

#include <string>

#include "util/logging.hh"

namespace dstrain {

int
gpuSocket(const NodeSpec &spec, int gpu_index)
{
    DSTRAIN_ASSERT(gpu_index >= 0 && gpu_index < spec.gpus,
                   "gpu index %d out of range", gpu_index);
    // Fig. 2-b: a pair of GPUs hangs off each CPU. Generalized:
    // first half of the GPUs on socket 0, second half on socket 1.
    const int per_socket = (spec.gpus + spec.sockets - 1) / spec.sockets;
    return gpu_index / per_socket;
}

NodeHandles
buildNode(Topology &topo, int node, const NodeSpec &spec)
{
    DSTRAIN_ASSERT(spec.sockets == 2,
                   "the XE8545 model requires exactly 2 sockets (got %d)",
                   spec.sockets);
    DSTRAIN_ASSERT(spec.gpus >= 1, "need at least one GPU per node");
    DSTRAIN_ASSERT(spec.nics >= 1, "need at least one NIC per node");

    NodeHandles h;
    const std::string prefix = "n" + std::to_string(node) + ".";

    // CPUs and their DRAM pools.
    for (int s = 0; s < spec.sockets; ++s) {
        ComponentId cpu = topo.addComponent(
            ComponentKind::CpuIod, prefix + "cpu" + std::to_string(s), node, s,
            s);
        ComponentId dram = topo.addComponent(
            ComponentKind::DramPool, prefix + "dram" + std::to_string(s), node,
            s, s);
        h.cpus.push_back(cpu);
        h.drams.push_back(dram);

        // DRAM: eight half-duplex channels modeled as one shared
        // pool per socket (the paper reports aggregate per-node DRAM
        // bandwidth, 25.6 GBps x 16 channels across two sockets).
        const Bps dram_pool =
            spec.dram_channel * static_cast<double>(spec.dram_channels);
        topo.addSharedLink(LinkClass::Dram, dram_pool, cpu, dram,
                           PortKind::MemCtrl, PortKind::Device,
                           spec.dram_latency,
                           prefix + "dram" + std::to_string(s));
    }

    // xGMI: three IFIS links aggregated into one duplex bundle.
    const Bps xgmi =
        spec.xgmi_per_link * static_cast<double>(spec.xgmi_links);
    topo.addDuplexLink(LinkClass::Xgmi, xgmi, h.cpus[0], h.cpus[1],
                       PortKind::SerDes, PortKind::SerDes,
                       spec.xgmi_latency, prefix + "xgmi");

    // GPUs: PCIe x16 to the owning socket + full NVLink mesh.
    for (int g = 0; g < spec.gpus; ++g) {
        ComponentId gpu = topo.addComponent(
            ComponentKind::Gpu, prefix + "gpu" + std::to_string(g), node,
            gpuSocket(spec, g), g);
        h.gpus.push_back(gpu);
        topo.addDuplexLink(LinkClass::PcieGpu, spec.pcie_x16,
                           h.cpus[static_cast<std::size_t>(
                               gpuSocket(spec, g))],
                           gpu, PortKind::SerDes, PortKind::Device,
                           spec.pcie_latency,
                           prefix + "pcie-gpu" + std::to_string(g));
    }
    const Bps nvlink_pair = spec.nvlink_per_link *
                            static_cast<double>(spec.nvlink_links_per_pair);
    for (int a = 0; a < spec.gpus; ++a) {
        for (int b = a + 1; b < spec.gpus; ++b) {
            topo.addDuplexLink(LinkClass::NvLink, nvlink_pair,
                               h.gpus[static_cast<std::size_t>(a)],
                               h.gpus[static_cast<std::size_t>(b)],
                               PortKind::Device, PortKind::Device,
                               spec.nvlink_latency,
                               prefix + "nvlink" + std::to_string(a) + "-" + std::to_string(b));
        }
    }

    // NICs on PCIe link #2, round-robined across sockets (the
    // default, 2 NICs x 2 sockets, is the XE8545's one-per-socket
    // layout).
    for (int i = 0; i < spec.nics; ++i) {
        const int s = i % spec.sockets;
        ComponentId nic = topo.addComponent(
            ComponentKind::Nic, prefix + "nic" + std::to_string(i), node, s, i);
        h.nics.push_back(nic);
        topo.addDuplexLink(LinkClass::PcieNic, spec.pcie_x16,
                           h.cpus[static_cast<std::size_t>(s)], nic,
                           PortKind::SerDes, PortKind::Device,
                           spec.pcie_latency,
                           prefix + "pcie-nic" + std::to_string(i));
    }

    // The shared IOD crossbar path consumed by cross-socket storage
    // streams (see NodeSpec::iod_storage_crossing).
    h.iod_crossing = topo.addResource(LinkClass::IodXbar,
                                      spec.iod_storage_crossing,
                                      prefix + "iod-xbar", node, -1);

    // NVMe scratch drives on bifurcated x4 lanes.
    for (std::size_t d = 0; d < spec.nvme_drives.size(); ++d) {
        const NvmeDriveSpec &ds = spec.nvme_drives[d];
        DSTRAIN_ASSERT(ds.socket >= 0 && ds.socket < spec.sockets,
                       "nvme drive %zu on bad socket %d", d, ds.socket);
        ComponentId drive = topo.addComponent(
            ComponentKind::NvmeDrive, prefix + "nvme" + std::to_string(d),
            node, ds.socket, static_cast<int>(d));
        h.nvmes.push_back(drive);
        topo.addDuplexLink(LinkClass::PcieNvme, spec.pcie_x4,
                           h.cpus[static_cast<std::size_t>(ds.socket)],
                           drive, PortKind::SerDes, PortKind::Device,
                           spec.pcie_latency,
                           prefix + "pcie-nvme" + std::to_string(d));

        // The NAND media behind the controller: a half-duplex
        // (read/write shared) constraint. Cache-burst traffic
        // terminates at the controller and bypasses it.
        ComponentId media = topo.addComponent(
            ComponentKind::NvmeMedia,
            prefix + "nvme" + std::to_string(d) + ".media", node, ds.socket,
            static_cast<int>(d));
        h.nvme_medias.push_back(media);
        topo.addSharedLink(LinkClass::NvmeMedia, ds.media_rate, drive,
                           media, PortKind::Device, PortKind::Device,
                           20e-6, prefix + "nvme" + std::to_string(d) + ".media");
    }

    return h;
}

} // namespace dstrain
